#!/usr/bin/env python
"""Produce and gate the compositional-topogen run-manifest artifact for CI.

Runs the generate → validate → prune → size funnel over a seed-stable
sample of the composed structure space with tracing on, writes
``manifest.json`` + ``trace.jsonl`` to ``--out``, and fails loudly when
the contract drifts:

* the manifest no longer validates against the checked-in JSON Schema
  (report schema v8 / manifest schema v7 with the ``topogen`` section
  and ``topogen_*`` rollups);
* the symbolic pruning pass cuts the sized set by less than 5x;
* the funnel's best sized design stops being feasible, or falls behind
  the legacy ``select_enumerate`` reference over the canned registry on
  the same Table 1-style specs (modest tolerance — the funnel sizes by
  simulation, the reference by equations).

Exit code 0 prints the structural manifest digest; any contract
violation exits 1.

Usage::

    PYTHONPATH=src python scripts/topogen_smoke.py --out topogen-artifacts
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

from repro.core.specs import Spec, SpecSet
from repro.engine import (
    EngineConfig,
    EvaluationEngine,
    MANIFEST_SCHEMA_VERSION,
    REPORT_SCHEMA_VERSION,
    SchemaError,
    manifest_digest,
    validate_manifest,
)
from repro.engine.trace import finish_run
from repro.opt.anneal import AnnealSchedule
from repro.synthesis.compose import TopologyFunnel
from repro.synthesis.topology import default_candidates, select_enumerate

TABLE1_SPECS = SpecSet([Spec.at_least("gain_db", 60.0),
                        Spec.at_least("gbw", 5e6),
                        Spec.minimize("power", good=1e-4)])

MIN_PRUNE_RATIO = 5.0
#: The funnel sizes real netlists by simulation with a breadth-first
#: budget; the reference optimizes analytic equations.  It must land in
#: the same cost regime, with a little slack for the model gap.
REFERENCE_TOLERANCE = 1.10
REFERENCE_SLACK = 0.05


def _fail(message: str) -> None:
    print(f"TOPOGEN GATE FAILED: {message}", file=sys.stderr)
    sys.exit(1)


def _gate_manifest(manifest: dict, sample: int, keep: int) -> None:
    try:
        validate_manifest(manifest)
    except SchemaError as exc:
        _fail(f"manifest does not validate: {exc}")
    if manifest["schema_version"] != MANIFEST_SCHEMA_VERSION:
        _fail(f"manifest schema_version {manifest['schema_version']} != "
              f"pinned {MANIFEST_SCHEMA_VERSION}")
    report = manifest["report"]
    if report["schema_version"] != REPORT_SCHEMA_VERSION:
        _fail(f"report schema_version {report['schema_version']} != "
              f"pinned {REPORT_SCHEMA_VERSION}")
    topogen = report["topogen"]
    if topogen["generated"] != sample:
        _fail(f"expected {sample} generated structures, rollup says "
              f"{topogen['generated']}")
    if topogen["valid"] + topogen["invalid"] != topogen["generated"]:
        _fail("valid + invalid != generated in the topogen rollup")
    if topogen["sized"] != keep:
        _fail(f"expected {keep} sized survivors, rollup says "
              f"{topogen['sized']}")
    ratio = topogen["prune_ratio"]
    if ratio is None or ratio < MIN_PRUNE_RATIO:
        _fail(f"symbolic pruning ratio {ratio} < {MIN_PRUNE_RATIO}x")
    rollups = manifest["rollups"]
    for key in ("generated", "valid", "survivors", "sized", "prune_ratio"):
        if rollups[f"topogen_{key}"] != topogen[key]:
            _fail(f"manifest rollup topogen_{key} disagrees with the "
                  f"report section")
    if not any(s["name"] == "topogen" for s in report["spans"]):
        _fail("topogen root span missing from the trace")


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--out", type=Path, default=Path("topogen-artifacts"),
                        help="directory for manifest.json + trace.jsonl")
    parser.add_argument("--seed", type=int, default=3)
    parser.add_argument("--sample", type=int, default=30,
                        help="structures drawn from the grammar")
    parser.add_argument("--keep", type=int, default=5,
                        help="survivors of the symbolic pruning pass")
    args = parser.parse_args(argv)
    if args.sample < args.keep * MIN_PRUNE_RATIO:
        _fail(f"--sample {args.sample} cannot satisfy the {MIN_PRUNE_RATIO}x"
              f" prune gate with --keep {args.keep}")

    config = EngineConfig(cache=True, trace=True, trace_dir=args.out)
    engine = EvaluationEngine.from_config(config)
    try:
        funnel = TopologyFunnel(
            TABLE1_SPECS, engine=engine, seed=args.seed,
            sample=args.sample, keep=args.keep,
            schedule=AnnealSchedule(moves_per_temperature=16, cooling=0.7,
                                    max_evaluations=160))
        result = funnel.run()
        manifest = finish_run("topogen_funnel", engine, seed=args.seed,
                              config=config)
    finally:
        engine.close()

    if manifest is None:
        _fail("traced run produced no manifest")
    manifest_path = args.out / "manifest.json"
    if not manifest_path.is_file():
        _fail(f"{manifest_path} was not written")
    manifest = json.loads(manifest_path.read_text())
    _gate_manifest(manifest, args.sample, args.keep)

    if result.best is None:
        _fail("funnel sized no structure at all")
    if not result.best.sizing.feasible:
        _fail(f"funnel best {result.best.topology} is not feasible")
    reference = select_enumerate(TABLE1_SPECS, default_candidates(), seed=1)
    bound = reference.sizing.cost * REFERENCE_TOLERANCE + REFERENCE_SLACK
    if not result.best.sizing.cost <= bound:
        _fail(f"funnel best cost {result.best.sizing.cost:.4g} worse than "
              f"legacy enumerate reference {reference.sizing.cost:.4g} "
              f"(bound {bound:.4g})")

    digest = manifest_digest(manifest)
    print(f"manifest: {manifest_path}")
    print(f"topogen: "
          f"{json.dumps(manifest['report']['topogen'], sort_keys=True)}")
    print(f"funnel best: {result.best.topology} "
          f"cost={result.best.sizing.cost:.4g} "
          f"(reference {reference.topology} "
          f"cost={reference.sizing.cost:.4g})")
    print(f"prune: {len(result.ranked)} ranked -> "
          f"{len(result.survivors)} sized ({result.prune_ratio:.1f}x)")
    print(f"structural digest: {digest}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
