#!/usr/bin/env python
"""Produce and gate the pulse-detector run-manifest artifact for CI.

Runs the Table 1 pulse-detector flow (synthesize → verify → check) with
tracing on, writes ``manifest.json`` + ``trace.jsonl`` to ``--out``, and
fails loudly when the observability contract drifts:

* the manifest no longer validates against the checked-in JSON Schema
  (``repro/engine/run_manifest_schema.json``);
* ``schema_version`` / report ``schema_version`` moved without this
  gate being updated;
* a required report key disappeared;
* a JobGraph stage is missing from the span tree.

Exit code 0 prints the structural manifest digest — stable across
reruns of the same seed + config (``--out`` is part of the config, so
compare digests produced with the same output directory); any contract
violation exits 1.

Usage::

    PYTHONPATH=src python scripts/pulse_detector_manifest.py --out run-artifacts
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

from repro.engine import (
    EngineConfig,
    MANIFEST_SCHEMA_VERSION,
    REPORT_SCHEMA_VERSION,
    SchemaError,
    check_report,
    manifest_digest,
    validate_manifest,
)
from repro.engine.schema import REQUIRED_REPORT_KEYS
from repro.opt.anneal import AnnealSchedule
from repro.synthesis.pulse_detector import pulse_detector_flow

EXPECTED_STAGES = ("synthesize", "verify", "check")


def _fail(message: str) -> None:
    print(f"MANIFEST GATE FAILED: {message}", file=sys.stderr)
    sys.exit(1)


def _gate(manifest: dict) -> None:
    """The drift gate: schema, versions, required keys, stage coverage."""
    try:
        validate_manifest(manifest)
    except SchemaError as exc:
        _fail(f"manifest does not validate: {exc}")
    if manifest["schema_version"] != MANIFEST_SCHEMA_VERSION:
        _fail(f"manifest schema_version {manifest['schema_version']} != "
              f"pinned {MANIFEST_SCHEMA_VERSION}")
    report = manifest["report"]
    try:
        check_report(report)
    except SchemaError as exc:
        _fail(f"engine report drifted: {exc}")
    if report["schema_version"] != REPORT_SCHEMA_VERSION:
        _fail(f"report schema_version {report['schema_version']} != "
              f"pinned {REPORT_SCHEMA_VERSION}")
    missing = [k for k in REQUIRED_REPORT_KEYS if k not in report]
    if missing:
        _fail(f"report lost required keys: {missing}")

    flow_spans = [s for s in report["spans"]
                  if s["name"] == "pulse_detector_flow"]
    if len(flow_spans) != 1:
        _fail("expected exactly one pulse_detector_flow root span")
    stages = {child["name"]: child for child in flow_spans[0]["children"]}
    for name in EXPECTED_STAGES:
        span = stages.get(name)
        if span is None:
            _fail(f"stage span {name!r} missing from the trace")
        if span["duration_s"] < 0.0:
            _fail(f"stage {name!r} has a negative duration")
    timers = report["timers"]
    for name in EXPECTED_STAGES:
        if f"stage.{name}" not in timers:
            _fail(f"stage timer stage.{name} missing from the report")


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--out", type=Path, default=Path("run-artifacts"),
                        help="directory for manifest.json + trace.jsonl")
    parser.add_argument("--seed", type=int, default=1)
    parser.add_argument("--quick", action="store_true",
                        help="small annealing schedule (smoke runs)")
    args = parser.parse_args(argv)

    schedule = AnnealSchedule(moves_per_temperature=60, cooling=0.8,
                              max_evaluations=4000) if args.quick else None
    config = EngineConfig(trace=True, trace_dir=args.out)
    run = pulse_detector_flow(seed=args.seed, schedule=schedule,
                              config=config)

    manifest_path = args.out / "manifest.json"
    if not manifest_path.is_file():
        _fail(f"{manifest_path} was not written")
    manifest = json.loads(manifest_path.read_text())
    _gate(manifest)

    events_path = args.out / "trace.jsonl"
    if not events_path.is_file():
        _fail(f"{events_path} was not written")
    n_events = sum(1 for line in events_path.read_text().splitlines()
                   if json.loads(line))

    digest = manifest_digest(manifest)
    print(f"manifest: {manifest_path}")
    print(f"trace events: {n_events} ({events_path})")
    print(f"rollups: {json.dumps(manifest['rollups'], sort_keys=True)}")
    print("solver: "
          f"{json.dumps(manifest['report']['solver'], sort_keys=True)}")
    print("kernel: "
          f"{json.dumps(manifest['report']['kernel'], sort_keys=True)}")
    print("surrogate: "
          f"{json.dumps(manifest['report']['surrogate'], sort_keys=True)}")
    print(f"check: specs_met={run.check['specs_met']:.0f} "
          f"feasible={run.check['feasible']:.0f} "
          f"peaking_time_rel_err={run.check['peaking_time_rel_err']:.4f}")
    print(f"structural digest: {digest}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
