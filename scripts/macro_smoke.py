#!/usr/bin/env python
"""Produce and gate the memory-macro run-manifest artifact for CI.

Runs the tile → route → signoff flow over a 32x32 bitcell macro with
tracing on, writes ``manifest.json`` + ``trace.jsonl`` to ``--out``, and
fails loudly when the contract drifts:

* the routed mesh is illegal — blockage violations, unstitched rails,
  or a missing ``macro_flow`` root span;
* signoff leaves the IR/EM/droop envelope, or the annealed mesh stops
  beating the uniform-width reference on rail metal area at equal
  constraints;
* the manifest no longer validates against the checked-in JSON Schema
  (report schema v9 / manifest schema v8 with the ``macro`` section and
  ``macro_*`` rollups);
* ``macro_workload()`` fails to round-trip through a shard fleet
  (``--shards 2``) with the zero-silent-drops accounting invariant.

Exit code 0 prints the structural manifest digest; any contract
violation exits 1.

Usage::

    PYTHONPATH=src python scripts/macro_smoke.py --out macro-artifacts \
        --shards 2
"""

from __future__ import annotations

import argparse
import json
import sys
import tempfile
from pathlib import Path

from repro.engine import (
    EngineConfig,
    EvaluationEngine,
    MANIFEST_SCHEMA_VERSION,
    REPORT_SCHEMA_VERSION,
    SchemaError,
    ServeConfig,
    manifest_digest,
    validate_manifest,
)
from repro.engine.schema import check_report
from repro.engine.trace import finish_run
from repro.macro import (
    MacroSpec,
    SignoffSpec,
    macro_workload,
    optimize_mesh,
    tile_macro,
    uniform_mesh,
)
from repro.serve import ShardRouter


def _fail(message: str) -> None:
    print(f"MACRO GATE FAILED: {message}", file=sys.stderr)
    sys.exit(1)


def _find_span(spans: list, name: str) -> dict | None:
    for span in spans:
        if span["name"] == name:
            return span
        hit = _find_span(span.get("children", []), name)
        if hit is not None:
            return hit
    return None


def _gate_manifest(manifest: dict, rows: int, cols: int) -> None:
    try:
        validate_manifest(manifest)
    except SchemaError as exc:
        _fail(f"manifest does not validate: {exc}")
    if manifest["schema_version"] != MANIFEST_SCHEMA_VERSION:
        _fail(f"manifest schema_version {manifest['schema_version']} != "
              f"pinned {MANIFEST_SCHEMA_VERSION}")
    report = manifest["report"]
    if report["schema_version"] != REPORT_SCHEMA_VERSION:
        _fail(f"report schema_version {report['schema_version']} != "
              f"pinned {REPORT_SCHEMA_VERSION}")
    macro = report["macro"]
    if macro["tiled"] < 1:
        _fail(f"macro rollup recorded no tilings: {macro}")
    if macro["units"] < rows * cols:
        _fail(f"expected >= {rows * cols} tiled units, rollup says "
              f"{macro['units']}")
    if macro["blockage_violations"] != 0:
        _fail(f"routed mesh crossed {macro['blockage_violations']} "
              f"blocked crossings")
    if macro["signoffs"] < 1:
        _fail("macro rollup recorded no signoffs")
    if macro["rails"] < 4:
        _fail(f"macro rollup recorded only {macro['rails']} rails")
    if macro["vias"] < 1:
        _fail("macro rollup recorded no via stitches")
    for key in ("tiled", "units", "rails", "vias", "signoffs",
                "blockage_violations"):
        if manifest["rollups"][f"macro_{key}"] != macro[key]:
            _fail(f"manifest rollup macro_{key} disagrees with the "
                  f"report section")
    if _find_span(report["spans"], "macro_flow") is None:
        _fail("macro_flow root span missing from the trace")


def _gate_fleet(shards: int, store_dir: Path) -> dict:
    serve = ServeConfig(shards=shards, shared_store_dir=str(store_dir))
    router = ShardRouter(EngineConfig(executor="thread", workers=2,
                                      serve=serve))
    router.register(macro_workload())
    points = [{"array": {"rows": 8, "cols": 8, "strap_every": 4},
               "mesh": {"h_rails": h, "v_rails": v,
                        "h_width_nm": 3_000, "v_width_nm": 3_000}}
              for h in (2, 3) for v in (2, 3)]
    points.append(dict(points[0]))  # fleet-wide dedup through the store
    with router:
        handles = [router.submit("macro", p) for p in points]
        results = [h.result(timeout=300) for h in handles]
        report = router.report()
    if results[0] != results[-1]:
        _fail("duplicate macro request returned a different result")
    if not all(r["feasible"] for r in results):
        _fail(f"fleet-served macros went infeasible: "
              f"{[r['feasible'] for r in results]}")
    serve_section = report["serve"]
    if serve_section["requests"] != (serve_section["admitted"]
                                     + serve_section["rejected"]):
        _fail(f"requests != admitted + rejected: {serve_section}")
    settled = (serve_section["completed"] + serve_section["expired"]
               + serve_section["cancelled"] + serve_section["errored"])
    if serve_section["admitted"] != settled:
        _fail(f"admitted != completed + expired + cancelled + errored: "
              f"{serve_section}")
    if len(serve_section["shards"]) != shards:
        _fail(f"expected {shards} shard entries: {serve_section}")
    try:
        check_report(report)
    except SchemaError as exc:
        _fail(f"fleet report does not validate: {exc}")
    return serve_section


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--out", type=Path, default=Path("macro-artifacts"),
                        help="directory for manifest.json + trace.jsonl")
    parser.add_argument("--rows", type=int, default=32)
    parser.add_argument("--cols", type=int, default=32)
    parser.add_argument("--seed", type=int, default=1)
    parser.add_argument("--shards", type=int, default=2,
                        help="fleet width for the workload round trip")
    args = parser.parse_args(argv)

    spec = MacroSpec(rows=args.rows, cols=args.cols, strap_every=8,
                     name=f"m{args.rows}x{args.cols}")
    signoff = SignoffSpec()
    config = EngineConfig(trace=True, trace_dir=args.out)
    engine = EvaluationEngine.from_config(config)
    try:
        with engine.tracer.span("macro_flow"):
            with engine.tracer.span("tile"):
                macro = tile_macro(spec)
            with engine.tracer.span("uniform"):
                uniform = uniform_mesh(macro, signoff)
            with engine.tracer.span("optimize"):
                annealed = optimize_mesh(macro, signoff, seed=args.seed)
        manifest = finish_run("macro_flow", engine, seed=args.seed,
                              config=config)
    finally:
        engine.close()

    mesh = annealed.mesh
    if mesh.blockage_violations != 0:
        _fail(f"annealed mesh has {mesh.blockage_violations} blockage "
              f"violations")
    if not mesh.is_fully_stitched():
        _fail("annealed mesh is not fully stitched")
    if not annealed.feasible:
        _fail(f"annealed mesh fails signoff: ir={annealed.worst_ir_drop:.4g}"
              f" droop={annealed.worst_droop:.4g} "
              f"em={len(annealed.em_violations)}")
    if annealed.worst_ir_drop > signoff.max_ir_drop:
        _fail(f"IR drop {annealed.worst_ir_drop:.4g} V > limit "
              f"{signoff.max_ir_drop} V")
    if annealed.worst_droop > signoff.max_droop:
        _fail(f"droop {annealed.worst_droop:.4g} V > limit "
              f"{signoff.max_droop} V")
    if annealed.em_violations:
        _fail(f"EM violations: {annealed.em_violations}")
    if uniform.feasible and annealed.metal_area >= uniform.metal_area:
        _fail(f"annealed metal area {annealed.metal_area} did not beat "
              f"uniform {uniform.metal_area}")

    if manifest is None:
        _fail("traced run produced no manifest")
    manifest_path = args.out / "manifest.json"
    if not manifest_path.is_file():
        _fail(f"{manifest_path} was not written")
    manifest = json.loads(manifest_path.read_text())
    _gate_manifest(manifest, args.rows, args.cols)

    with tempfile.TemporaryDirectory() as tmp:
        serve_section = _gate_fleet(args.shards, Path(tmp) / "store")

    digest = manifest_digest(manifest)
    print(f"manifest: {manifest_path}")
    print(f"macro: {json.dumps(manifest['report']['macro'], sort_keys=True)}")
    print(f"uniform: area={uniform.metal_area} "
          f"feasible={uniform.feasible} (mesh {uniform.mesh.spec.describe()})")
    print(f"annealed: area={annealed.metal_area} "
          f"ir={annealed.worst_ir_drop:.4g} V "
          f"droop={annealed.worst_droop:.4g} V em=0 "
          f"(mesh {mesh.spec.describe()}, {annealed.evaluations} evals)")
    if uniform.feasible:
        print(f"area win: {uniform.metal_area / annealed.metal_area:.2f}x "
              f"less rail metal than the uniform reference")
    print(f"fleet: {serve_section['completed']} completed over "
          f"{len(serve_section['shards'])} shards, invariant ok")
    print(f"structural digest: {digest}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
