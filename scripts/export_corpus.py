#!/usr/bin/env python
"""Export a surrogate training corpus from an evaluation-cache directory.

Joins a disk :class:`~repro.engine.EvalCache` (content-addressed
``*.pkl`` performance records) with the ``corpus_index.jsonl`` sidecar
that maps cache keys back to the sizing dictionaries that produced them
(written by screened sizing runs and by serve brokers configured with
``corpus_dir``), and writes the resulting (features, cost) corpus as
JSONL — the warm-start file screened runs read on boot.

Without ``--space``, raw sizing values (sorted by parameter name) are
used as features and the cached value must be numeric; with
``--space pulse_detector``, sizings are featurized through the design
space's log/linear scaling and costs come from the block's spec set.

Usage::

    PYTHONPATH=src python scripts/export_corpus.py \
        --cache-dir run-cache --index run-cache/corpus_index.jsonl \
        --out corpus.jsonl [--space pulse_detector] [--max-records 4096]
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from repro.engine import EvalCache
from repro.surrogate import Corpus, CorpusIndex, FeatureSpec, harvest_cache


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--cache-dir", type=Path, required=True,
                        help="disk cache directory (*.pkl records)")
    parser.add_argument("--index", type=Path, required=True,
                        help="corpus_index.jsonl mapping keys to sizings")
    parser.add_argument("--out", type=Path, required=True,
                        help="output corpus JSONL path")
    parser.add_argument("--space", choices=["pulse_detector"],
                        help="featurize/cost through a known design space")
    parser.add_argument("--max-records", type=int, default=4096)
    args = parser.parse_args(argv)

    if not args.cache_dir.is_dir():
        print(f"error: {args.cache_dir} is not a directory",
              file=sys.stderr)
        return 1
    index = CorpusIndex.load(args.index)
    if not index:
        print(f"error: no index records in {args.index}", file=sys.stderr)
        return 1

    feature_spec = cost_fn = None
    if args.space == "pulse_detector":
        from repro.synthesis.pulse_detector import (
            pulse_detector_space,
            pulse_detector_specs,
        )
        feature_spec = FeatureSpec.from_continuous(
            pulse_detector_space().to_continuous())
        cost_fn = pulse_detector_specs().cost

    cache = EvalCache(disk_dir=args.cache_dir)
    corpus = harvest_cache(cache, index, feature_spec=feature_spec,
                           cost_fn=cost_fn,
                           corpus=Corpus(max_records=args.max_records))
    if len(corpus) == 0:
        print("error: harvest produced no records (keys in the index "
              "never joined a cached success)", file=sys.stderr)
        return 1
    path = corpus.to_jsonl(args.out)
    finite = sum(1 for r in corpus.records
                 if r.cost == r.cost and abs(r.cost) != float("inf"))
    print(f"index keys: {len(index)}")
    print(f"corpus records: {len(corpus)} ({finite} finite-cost)")
    print(f"wrote: {path}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
