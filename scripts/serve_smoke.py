#!/usr/bin/env python
"""Boot the serving layer and gate the zero-silent-drops contract for CI.

Starts a :class:`repro.serve.Broker` (``--shards 1``, the default) or a
:class:`repro.serve.ShardRouter` fleet (``--shards N``) over
thread-executor engines, exposes it through an HTTP facade — the stdlib
thread-per-request server for the single broker, the asyncio front door
for the fleet — and drives a mixed-priority workload through the typed
:class:`repro.serve.ServeClient`: an interactive client issuing small
blocking requests over HTTP while a batch client saturates the queue
in-process (plus a deliberately over-quota session and a cancelled
request, so the rejection paths fire).  The gate then fails loudly
unless:

* ``GET /healthz`` answers ``ok`` while the load is running;
* the engine report validates (``check_report``, report schema v7);
* the serve accounting invariant holds exactly — zero silent drops,
  fleet-wide::

      requests == admitted + rejected
      admitted == completed + expired + cancelled + errored

  and, when sharded, the per-shard breakdown sums to the fleet totals;
* every admitted-and-not-cancelled request produced a result;
* a serial :func:`repro.serve.replay` of the recorded request stream
  reproduces every completed result digest — the shard count changed
  *where* requests ran, never *what* they computed.

Usage::

    PYTHONPATH=src python scripts/serve_smoke.py --out run-artifacts
    PYTHONPATH=src python scripts/serve_smoke.py --shards 4
"""

from __future__ import annotations

import argparse
import json
import sys
import tempfile
import threading
import time
from pathlib import Path

from repro.engine import (
    EngineConfig,
    SchemaError,
    ServeConfig,
    check_report,
)
from repro.serve import (
    Broker,
    RejectedError,
    ServeClient,
    Session,
    ShardRouter,
    Workload,
    make_async_server,
    make_server,
    replay,
)


def _fail(message: str) -> None:
    print(f"SERVE SMOKE FAILED: {message}", file=sys.stderr)
    sys.exit(1)


def _simulate(point: dict) -> dict:
    # A stand-in simulator call: a few ms of blocking latency, then a
    # deterministic result (what replay re-checks).
    time.sleep(0.002)
    x = float(point["x"])
    return {"y": x * x, "stage": point.get("stage", 0)}


def _simulate_key(point: dict) -> str:
    return f"sim:{point['x']}:{point.get('stage', 0)}"


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--out", type=Path, default=None,
                        help="optional directory for requests.jsonl")
    parser.add_argument("--shards", type=int, default=1,
                        help="fleet width; 1 = single broker (default)")
    parser.add_argument("--interactive-requests", type=int, default=12)
    parser.add_argument("--batch-requests", type=int, default=64)
    args = parser.parse_args(argv)
    sharded = args.shards > 1

    store_dir = None
    if sharded:
        base = args.out if args.out is not None else \
            Path(tempfile.mkdtemp(prefix="serve-smoke-"))
        store_dir = str(Path(base) / "shared-store")
    config = EngineConfig(
        executor="thread", workers=16, cache=True, trace=not sharded,
        serve=ServeConfig(max_batch=16, max_wait_ms=5.0,
                          max_queue_depth=512, shards=args.shards,
                          shared_store_dir=store_dir,
                          synthesize_workload="simulate"))
    workload = Workload("simulate", _simulate, key_fn=_simulate_key)
    if sharded:
        backend = ShardRouter(config)
        make_facade = make_async_server
    else:
        backend = Broker.from_config(config)
        make_facade = make_server
    backend.register(workload)

    http_results: list[dict] = []
    http_errors: list[str] = []

    with backend, make_facade(backend) as server:
        url = server.url
        client = ServeClient(url, client="designer")

        def interactive_client() -> None:
            for i in range(args.interactive_requests):
                try:
                    http_results.append(client.evaluate(
                        "simulate", {"x": i}, priority="interactive"))
                except Exception as exc:
                    http_errors.append(f"interactive #{i}: {exc!r}")

        sweeper = Session(backend, "sweeper", priority="batch")
        sweeper.map("simulate", [{"x": i % 16, "stage": i // 16}
                                 for i in range(args.batch_requests)])

        thread = threading.Thread(target=interactive_client)
        thread.start()

        health = client.healthz()
        if health.get("status") != "ok":
            _fail(f"/healthz under load: {health}")

        # One of everything the accounting must absorb loudly:
        over_quota = Session(backend, "greedy", quota=1)
        over_quota.submit("simulate", {"x": 1})
        try:
            over_quota.submit("simulate", {"x": 2})
            _fail("quota breach was not rejected")
        except RejectedError:
            pass
        victim = backend.submit("simulate", {"x": 999}, client="fickle")
        victim.cancel()

        thread.join()
        for handle in sweeper.results(timeout=60):
            handle.result(timeout=60)
        for handle in over_quota.handles:
            handle.result(timeout=60)
        try:
            victim.result(timeout=60)
        except Exception:
            pass  # cancelled (counted), or completed if dispatch won

        metrics = client.metrics()
        if metrics.get("schema_version") is None:
            _fail(f"/metrics did not return a report: {metrics}")
        client.close()

    if http_errors:
        _fail("; ".join(http_errors))
    expected = [{"y": float(i * i), "stage": 0}
                for i in range(args.interactive_requests)]
    if http_results != expected:
        _fail(f"interactive results wrong: {http_results[:3]}...")

    report = backend.report()
    try:
        check_report(report)
    except SchemaError as exc:
        _fail(f"engine report drifted: {exc}")
    serve = report["serve"]
    if serve["requests"] != serve["admitted"] + serve["rejected"]:
        _fail(f"silent drop at admission: {serve}")
    settled = (serve["completed"] + serve["expired"] + serve["cancelled"]
               + serve["errored"])
    if serve["admitted"] != settled:
        _fail(f"admitted request unaccounted for: {serve}")
    if serve["errored"]:
        _fail(f"dispatcher-side engine errors under smoke load: {serve}")
    if serve["rejected"] < 1:
        _fail(f"smoke load failed to exercise rejection: {serve}")
    want = (args.interactive_requests + args.batch_requests + 1)
    if sharded:
        # Fleet cancellation is best-effort (the cancel races dispatch
        # across a process boundary): the victim settles as cancelled
        # *or* completed — either way it is accounted, never dropped.
        if serve["completed"] not in (want, want + 1):
            _fail(f"completed {serve['completed']} != expected "
                  f"{want} (+1)")
        if len(serve["shards"]) != args.shards:
            _fail(f"expected {args.shards} shard entries: {serve}")
        for lane in ("completed", "expired", "cancelled", "errored"):
            total = sum(s[lane] for s in serve["shards"])
            if total != serve[lane]:
                _fail(f"per-shard {lane} {total} != fleet {serve[lane]}")
    else:
        if serve["cancelled"] < 1:
            _fail(f"smoke load failed to exercise cancellation: {serve}")
        if serve["completed"] != want:
            _fail(f"completed {serve['completed']} != expected {want}")

    rep = replay(backend.request_log, backend.workloads)
    if not rep.ok:
        _fail(f"replay diverged: {rep.as_dict()}")
    if args.out is not None:
        backend.write_request_trace(args.out / "requests.jsonl")

    mbs = serve["mean_batch_size"]
    print(f"healthz under load: ok ({url}, shards={args.shards})")
    print(f"serve: {json.dumps(serve, sort_keys=True)}")
    print(f"accounting: requests={serve['requests']} = "
          f"admitted {serve['admitted']} + rejected {serve['rejected']}; "
          f"admitted = completed {serve['completed']} + expired "
          f"{serve['expired']} + cancelled {serve['cancelled']} "
          f"+ errored {serve['errored']}")
    print(f"batching: {serve['batches']} batches, mean size {mbs:.1f}, "
          f"p99 latency {serve['latency_p99_s'] * 1e3:.0f} ms")
    if sharded:
        spread = {s["shard"]: s["completed"] for s in serve["shards"]}
        print(f"shards: completed by shard {spread}, "
              f"restarts {sum(s['restarts'] for s in serve['shards'])}")
    print(f"replay: {rep.replayed} replayed, {rep.matched} matched")
    print("SERVE SMOKE OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
