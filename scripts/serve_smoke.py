#!/usr/bin/env python
"""Boot the serving layer and gate the zero-silent-drops contract for CI.

Starts a :class:`repro.serve.Broker` over a thread-executor engine,
exposes it through the stdlib HTTP facade, and drives a mixed-priority
workload: an interactive client issuing small blocking requests over
HTTP while a batch client saturates the queue in-process (plus a
deliberately over-quota session and a cancelled request, so every
rejection path fires at least once).  The gate then fails loudly unless:

* ``GET /healthz`` answers ``ok`` while the load is running;
* the engine report validates (``check_report``, report schema v4);
* the serve accounting invariant holds exactly — zero silent drops::

      requests == admitted + rejected
      admitted == completed + expired + cancelled + errored

* every admitted-and-not-cancelled request produced a result;
* a serial :func:`repro.serve.replay` of the recorded request stream
  reproduces every completed result digest.

Usage::

    PYTHONPATH=src python scripts/serve_smoke.py --out run-artifacts
"""

from __future__ import annotations

import argparse
import json
import sys
import threading
import time
import urllib.request
from pathlib import Path

from repro.engine import (
    EngineConfig,
    SchemaError,
    ServeConfig,
    check_report,
)
from repro.serve import (
    Broker,
    RejectedError,
    Session,
    Workload,
    make_server,
    replay,
)


def _fail(message: str) -> None:
    print(f"SERVE SMOKE FAILED: {message}", file=sys.stderr)
    sys.exit(1)


def _simulate(point: dict) -> dict:
    # A stand-in simulator call: a few ms of blocking latency, then a
    # deterministic result (what replay re-checks).
    time.sleep(0.002)
    x = float(point["x"])
    return {"y": x * x, "stage": point.get("stage", 0)}


def _http_json(url: str, body: dict | None = None,
               timeout: float = 30.0) -> tuple[int, dict]:
    if body is None:
        req = urllib.request.Request(url)
    else:
        req = urllib.request.Request(
            url, data=json.dumps(body).encode(),
            headers={"Content-Type": "application/json"})
    try:
        with urllib.request.urlopen(req, timeout=timeout) as resp:
            return resp.status, json.loads(resp.read())
    except urllib.error.HTTPError as exc:
        return exc.code, json.loads(exc.read())


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--out", type=Path, default=None,
                        help="optional directory for requests.jsonl")
    parser.add_argument("--interactive-requests", type=int, default=12)
    parser.add_argument("--batch-requests", type=int, default=64)
    args = parser.parse_args(argv)

    config = EngineConfig(
        executor="thread", workers=16, cache=True, trace=True,
        serve=ServeConfig(max_batch=16, max_wait_ms=5.0,
                          max_queue_depth=512))
    broker = Broker.from_config(config)
    broker.register(Workload("simulate", _simulate,
                             key_fn=lambda p: f"sim:{p['x']}:"
                             f"{p.get('stage', 0)}"))

    http_results: list[dict] = []
    http_errors: list[str] = []

    with broker, make_server(broker,
                             synthesize_workload="simulate") as server:
        def interactive_client() -> None:
            for i in range(args.interactive_requests):
                status, out = _http_json(
                    server.url + "/evaluate",
                    {"workload": "simulate", "point": {"x": i},
                     "client": "designer", "priority": "interactive"})
                if status != 200:
                    http_errors.append(f"interactive #{i}: HTTP {status} "
                                       f"{out}")
                else:
                    http_results.append(out["result"])

        sweeper = Session(broker, "sweeper", priority="batch")
        sweeper.map("simulate", [{"x": i % 16, "stage": i // 16}
                                 for i in range(args.batch_requests)])

        thread = threading.Thread(target=interactive_client)
        thread.start()

        status, health = _http_json(server.url + "/healthz")
        if status != 200 or health.get("status") != "ok":
            _fail(f"/healthz under load: HTTP {status} {health}")

        # One of everything the accounting must absorb loudly:
        over_quota = Session(broker, "greedy", quota=1)
        over_quota.submit("simulate", {"x": 1})
        try:
            over_quota.submit("simulate", {"x": 2})
            _fail("quota breach was not rejected")
        except RejectedError:
            pass
        victim = broker.submit("simulate", {"x": 999}, client="fickle")
        victim.cancel()

        thread.join()
        for handle in sweeper.results(timeout=60):
            handle.result(timeout=60)
        for handle in over_quota.handles:
            handle.result(timeout=60)

        status, metrics = _http_json(server.url + "/metrics")
        if status != 200:
            _fail(f"/metrics: HTTP {status}")

    if http_errors:
        _fail("; ".join(http_errors))
    expected = [{"y": float(i * i), "stage": 0}
                for i in range(args.interactive_requests)]
    if http_results != expected:
        _fail(f"interactive results wrong: {http_results[:3]}...")

    report = broker.report()
    try:
        check_report(report)
    except SchemaError as exc:
        _fail(f"engine report drifted: {exc}")
    serve = report["serve"]
    if serve["requests"] != serve["admitted"] + serve["rejected"]:
        _fail(f"silent drop at admission: {serve}")
    settled = (serve["completed"] + serve["expired"] + serve["cancelled"]
               + serve["errored"])
    if serve["admitted"] != settled:
        _fail(f"admitted request unaccounted for: {serve}")
    if serve["errored"]:
        _fail(f"dispatcher-side engine errors under smoke load: {serve}")
    if serve["rejected"] < 1 or serve["cancelled"] < 1:
        _fail(f"smoke load failed to exercise rejection/cancellation: "
              f"{serve}")
    # ... + 1: the over-quota session's single admitted request (the
    # cancelled victim settles under serve.cancelled, not completed).
    want = (args.interactive_requests + args.batch_requests + 1)
    if serve["completed"] != want:
        _fail(f"completed {serve['completed']} != expected {want}")

    rep = replay(broker.request_log, broker.workloads)
    if not rep.ok:
        _fail(f"replay diverged: {rep.as_dict()}")
    if args.out is not None:
        broker.write_request_trace(args.out / "requests.jsonl")

    mbs = serve["mean_batch_size"]
    print(f"healthz under load: ok ({server.url})")
    print(f"serve: {json.dumps(serve, sort_keys=True)}")
    print(f"accounting: requests={serve['requests']} = "
          f"admitted {serve['admitted']} + rejected {serve['rejected']}; "
          f"admitted = completed {serve['completed']} + expired "
          f"{serve['expired']} + cancelled {serve['cancelled']} "
          f"+ errored {serve['errored']}")
    print(f"batching: {serve['batches']} batches, mean size {mbs:.1f}, "
          f"p99 latency {serve['latency_p99_s'] * 1e3:.0f} ms")
    print(f"replay: {rep.replayed} replayed, {rep.matched} matched")
    print("SERVE SMOKE OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
