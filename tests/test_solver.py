"""Differential tests for the shared factor-once/solve-many solver layer.

The layer (:mod:`repro.analysis.solver`) must be *invisible* numerically:
dense LU, sparse LU and the seed dense path (``np.linalg.solve`` via
``mna.solve_dense``) agree to solver tolerance on the library circuits
and on power grids, all three solve directions match their definitional
``np.linalg.solve`` counterparts, and reusing a cached factorization is
bit-identical to the first pass.  On top of that the cache's hit/miss
accounting — both local and through the tracer — must add up.
"""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis import (
    dc_operating_point,
    noise_analysis,
    small_signal_system,
)
from repro.analysis.mna import SingularCircuitError, solve_dense
from repro.analysis.solver import (
    SPARSE_SIZE_THRESHOLD,
    FactorizationCache,
    FactorizedOperator,
    factorize,
    solve_once,
)
from repro.circuits.library import (
    five_transistor_ota,
    rc_ladder,
    two_stage_miller,
)
from repro.engine.trace import Tracer
from repro.msystem.powergrid import GridSegment, PowerGrid


# ----------------------------------------------------------------------
# fixtures: matrices with the structure the analyses actually produce
# ----------------------------------------------------------------------

def _ota_testbench():
    ckt = five_transistor_ota()
    ckt.vsource("tb_vip", "inp", "0", dc=1.5, ac=1.0)
    ckt.vsource("tb_vin", "inn", "0", dc=1.5, ac=0.0)
    return ckt


def _miller_testbench():
    ckt = two_stage_miller()
    ckt.vsource("tb_vip", "inp", "0", dc=1.5, ac=1.0)
    ckt.vsource("tb_vin", "inn", "0", dc=1.5, ac=0.0)
    return ckt


def _ac_matrix(circuit, freq_hz):
    """(A, b) of the linearized system G + jωC at one frequency."""
    ss = small_signal_system(circuit)
    return ss.G + 2j * math.pi * freq_hz * ss.C, ss.b_ac.astype(complex)


def _mesh_grid(nx: int, ny: int, width_nm: int = 10_000) -> PowerGrid:
    """Synthetic nx-by-ny mesh power grid: pads at corners, loads inside."""
    def node(i, j):
        return i * ny + j

    segments = []
    for i in range(nx):
        for j in range(ny):
            if i + 1 < nx:
                segments.append(GridSegment(
                    f"h_{i}_{j}", node(i, j), node(i + 1, j),
                    50_000, width_nm))
            if j + 1 < ny:
                segments.append(GridSegment(
                    f"v_{i}_{j}", node(i, j), node(i, j + 1),
                    50_000, width_nm))
    names = [f"n{i}_{j}" for i in range(nx) for j in range(ny)]
    pads = [node(0, 0), node(0, ny - 1), node(nx - 1, 0),
            node(nx - 1, ny - 1)]
    loads = {node(i, j): 1e-3 * (1 + (i * ny + j) % 5)
             for i in range(1, nx - 1) for j in range(1, ny - 1)}
    peaks = {n: 5e-3 for n in list(loads)[::3]}
    return PowerGrid(segments, names, pads, loads, peaks,
                     analog_nodes=[node(nx // 2, ny // 2)])


# ----------------------------------------------------------------------
# dense vs sparse vs seed path
# ----------------------------------------------------------------------

class TestDifferential:
    @pytest.mark.parametrize("make", [_ota_testbench, _miller_testbench])
    @pytest.mark.parametrize("freq", [10.0, 1e5, 1e8])
    def test_library_circuits_all_paths_agree(self, make, freq):
        A, b = _ac_matrix(make(), freq)
        x_seed = solve_dense(A, b)
        x_dense = factorize(A, prefer_sparse=False).solve(b)
        x_sparse = factorize(A, prefer_sparse=True).solve(b)
        np.testing.assert_allclose(x_dense, x_seed, rtol=1e-9, atol=1e-30)
        np.testing.assert_allclose(x_sparse, x_seed, rtol=1e-9, atol=1e-30)

    def test_power_grid_all_paths_agree(self):
        grid = _mesh_grid(8, 8)
        G = grid._conductance_matrix()
        b = np.zeros(grid.n_nodes)
        for pad in grid.pad_nodes:
            b[pad] += grid.vdd / 0.05
        for n, i in grid.load_currents.items():
            b[n] -= i
        x_seed = np.linalg.solve(G.toarray(), b)
        x_dense = factorize(G, prefer_sparse=False).solve(b)
        x_sparse = factorize(G, prefer_sparse=True).solve(b)
        np.testing.assert_allclose(x_dense, x_seed, rtol=1e-9)
        np.testing.assert_allclose(x_sparse, x_seed, rtol=1e-9)

    @pytest.mark.parametrize("prefer_sparse", [False, True])
    def test_transpose_and_adjoint_solves(self, prefer_sparse):
        A, _ = _ac_matrix(_ota_testbench(), 1e6)
        rng = np.random.default_rng(7)
        b = rng.normal(size=A.shape[0]) + 1j * rng.normal(size=A.shape[0])
        op = factorize(A, prefer_sparse=prefer_sparse)
        np.testing.assert_allclose(
            op.solve_transpose(b), np.linalg.solve(A.T, b), rtol=1e-9)
        np.testing.assert_allclose(
            op.solve_adjoint(b), np.linalg.solve(A.conj().T, b), rtol=1e-9)

    def test_complex_rhs_on_real_sparse_factorization(self):
        # SuperLU only solves in the factorization dtype; the layer must
        # split a complex RHS over a real factorization transparently.
        G = _mesh_grid(6, 6)._conductance_matrix()
        rng = np.random.default_rng(3)
        b = rng.normal(size=G.shape[0]) + 1j * rng.normal(size=G.shape[0])
        op = factorize(G, prefer_sparse=True)
        np.testing.assert_allclose(
            op.solve(b), np.linalg.solve(G.toarray(), b), rtol=1e-9)

    def test_solve_once_matches_seed(self):
        A, b = _ac_matrix(_ota_testbench(), 1e3)
        np.testing.assert_allclose(
            solve_once(A, b), solve_dense(A, b), rtol=1e-9, atol=1e-30)

    def test_auto_selection_by_size_and_density(self):
        small = np.eye(4)
        assert factorize(small).mode == "dense"
        big_sparse = _mesh_grid(12, 12)._conductance_matrix()
        assert big_sparse.shape[0] >= SPARSE_SIZE_THRESHOLD
        assert factorize(big_sparse).mode == "sparse"
        n = SPARSE_SIZE_THRESHOLD
        dense_big = np.ones((n, n)) + n * np.eye(n)
        assert factorize(dense_big).mode == "dense"

    @pytest.mark.parametrize("prefer_sparse", [False, True])
    def test_singular_matrix_raises(self, prefer_sparse):
        A = np.zeros((4, 4))
        A[0, 0] = 1.0  # rows 1..3 empty: structurally singular
        with pytest.raises(SingularCircuitError):
            factorize(A, prefer_sparse=prefer_sparse).solve(np.ones(4))


# ----------------------------------------------------------------------
# cache accounting
# ----------------------------------------------------------------------

class TestFactorizationCache:
    def test_hit_miss_accounting(self):
        cache = FactorizationCache()
        A = np.eye(3) * 2.0
        op1 = cache.get_or_factorize("k", lambda: A)
        op2 = cache.get_or_factorize("k", lambda: A)
        assert op1 is op2
        assert (cache.hits, cache.misses) == (1, 1)
        assert cache.hit_rate == 0.5
        assert cache.stats() == {"entries": 1, "hits": 1, "misses": 1,
                                 "hit_rate": 0.5}

    def test_lru_eviction(self):
        cache = FactorizationCache(max_entries=2)
        mats = {k: np.eye(2) * (i + 1) for i, k in enumerate("abc")}
        for k in "abc":
            cache.get_or_factorize(k, lambda k=k: mats[k])
        assert len(cache) == 2
        # "a" was evicted; rebuilding it is a miss, "c" is still a hit.
        cache.get_or_factorize("a", lambda: mats["a"])
        cache.get_or_factorize("c", lambda: mats["c"])
        assert (cache.hits, cache.misses) == (1, 4)

    def test_build_not_called_on_hit(self):
        cache = FactorizationCache()
        calls = []

        def build():
            calls.append(1)
            return np.eye(3)

        cache.get_or_factorize("k", build)
        cache.get_or_factorize("k", build)
        assert len(calls) == 1

    def test_counters_reach_the_tracer(self):
        tracer = Tracer()
        cache = FactorizationCache()
        A, b = _ac_matrix(_ota_testbench(), 1e4)
        with tracer.span("run"):
            op = cache.get_or_factorize(1e4, lambda: A)
            op.solve(b)
            cache.get_or_factorize(1e4, lambda: A).solve(b)
        t = tracer.telemetry
        assert t.get("solver.cache_misses") == 1
        assert t.get("solver.cache_hits") == 1
        assert t.get("solver.factorizations") == 1
        assert t.get("solver.factor_dense") == 1
        assert t.get("solver.solves") == 2

    def test_powergrid_metrics_share_one_factorization(self):
        grid = _mesh_grid(6, 6)
        tracer = Tracer()
        with tracer.span("grid"):
            grid.worst_ir_drop()
            grid.segment_currents()
            grid._droop_bound(grid.analog_nodes[0])
        t = tracer.telemetry
        assert t.get("solver.factorizations") == 1
        assert t.get("solver.factor_sparse") == 1

    def test_transient_newton_nonconv_counter(self):
        from repro.analysis.transient import _newton_nonconv
        tracer = Tracer()
        _newton_nonconv(0.0, 1e-9)  # no active tracer: must not raise
        with tracer.span("tran"):
            _newton_nonconv(1e-8, 1e-9)
        assert tracer.telemetry.get("analysis.newton_nonconv") == 1
        # The counter is a plain telemetry counter, so it reaches the
        # manifest rollup surface like every other analysis.* counter.
        assert "analysis.newton_nonconv" in \
            tracer.telemetry.report()["counters"]

    def test_engine_report_surfaces_solver_rollup(self):
        from repro.engine.schema import check_report, solver_rollup
        counters = {"solver.factorizations": 3, "solver.factor_dense": 2,
                    "solver.factor_sparse": 1, "solver.solves": 10,
                    "solver.cache_hits": 6, "solver.cache_misses": 4}
        roll = solver_rollup(counters)
        assert roll["factorizations"] == 3
        assert roll["solves"] == 10
        assert roll["hit_rate"] == pytest.approx(0.6)
        assert solver_rollup({})["hit_rate"] is None

        from repro.engine import EvaluationEngine
        engine = EvaluationEngine()
        report = engine.report()
        check_report(report)  # schema v3 requires the solver section
        assert report["solver"]["factorizations"] == 0


# ----------------------------------------------------------------------
# factored-once reuse is bit-identical
# ----------------------------------------------------------------------

class TestReuseBitIdentical:
    def test_ac_sweep_reuse(self):
        ss = small_signal_system(_ota_testbench())
        freqs = [10.0, 1e3, 1e6, 1e3]  # revisit 1e3: pure cache hit
        first = [ss.solve_at(f).copy() for f in freqs]
        again = [ss.solve_at(f) for f in freqs]
        for a, b in zip(first, again):
            assert np.array_equal(a, b)
        assert ss._factors.hits >= len(freqs) + 1

    def test_noise_sweep_reuse(self):
        ckt = _ota_testbench()
        freqs = np.array([10.0, 1e4, 1e7])
        ss = small_signal_system(ckt)
        n1 = noise_analysis(ckt, "out", freqs, ss=ss)
        n2 = noise_analysis(ckt, "out", freqs, ss=ss)
        assert np.array_equal(n1.output_psd, n2.output_psd)
        assert np.array_equal(n1.gain, n2.gain)

    def test_noise_matches_fresh_system(self):
        ckt = _miller_testbench()
        freqs = np.array([100.0, 1e5])
        op = dc_operating_point(ckt)
        warm = small_signal_system(ckt, op)
        warm.solve_at(100.0)  # pre-factorize: noise must reuse, not drift
        n_warm = noise_analysis(ckt, "out", freqs, op=op, ss=warm)
        n_cold = noise_analysis(ckt, "out", freqs, op=op)
        assert np.array_equal(n_warm.output_psd, n_cold.output_psd)

    @given(n=st.integers(min_value=1, max_value=6),
           r=st.floats(min_value=10.0, max_value=1e6),
           c=st.floats(min_value=1e-15, max_value=1e-9),
           freqs=st.lists(st.floats(min_value=1.0, max_value=1e9),
                          min_size=1, max_size=6))
    @settings(max_examples=25, deadline=None)
    def test_property_cached_equals_uncached(self, n, r, c, freqs):
        ckt = rc_ladder(n, r=r, c=c)
        cached = small_signal_system(ckt)
        first = [cached.solve_at(f).copy() for f in freqs]
        again = [cached.solve_at(f) for f in freqs]
        fresh = small_signal_system(ckt)
        uncached = [fresh.solve_at(f) for f in freqs]
        for a, b, u in zip(first, again, uncached):
            assert np.array_equal(a, b)
            assert np.array_equal(a, u)


class TestOperatorShape:
    def test_modes_and_metadata(self):
        A, _ = _ac_matrix(_ota_testbench(), 1e3)
        op = factorize(A)
        assert isinstance(op, FactorizedOperator)
        assert op.mode == "dense"
        assert op.size == A.shape[0]

    def test_rejects_nonsquare(self):
        with pytest.raises(ValueError):
            factorize(np.ones((3, 2)))
