"""Tests for the optimization substrate: annealing, GA, intervals, ordering."""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.opt import (
    AnnealSchedule,
    Annealer,
    CategoricalGene,
    ContinuousSpace,
    Equation,
    FloatGene,
    GeneticOptimizer,
    Interval,
    IntervalError,
    OrderingError,
    UnderConstrained,
    anneal_continuous,
    order_equations,
)


class TestAnnealer:
    def test_quadratic_bowl(self):
        space = ContinuousSpace(["x", "y"], np.array([0.1, 0.1]),
                                np.array([10.0, 10.0]))
        result = anneal_continuous(
            lambda p: (p["x"] - 2.0) ** 2 + (p["y"] - 3.0) ** 2,
            space, seed=3)
        best = space.to_dict(result.best_state)
        assert best["x"] == pytest.approx(2.0, abs=0.2)
        assert best["y"] == pytest.approx(3.0, abs=0.3)

    def test_log_scale_spans_decades(self):
        space = ContinuousSpace(["r"], np.array([1.0]), np.array([1e6]))
        target = 1e4
        result = anneal_continuous(
            lambda p: abs(math.log10(p["r"] / target)), space, seed=7)
        assert result.best_state[0] == pytest.approx(target, rel=0.5)

    def test_history_monotone_nonincreasing(self):
        space = ContinuousSpace(["x"], np.array([0.1]), np.array([10.0]))
        result = anneal_continuous(lambda p: (p["x"] - 5) ** 2, space, seed=1)
        assert all(a >= b for a, b in zip(result.history, result.history[1:]))

    def test_discrete_state_annealing(self):
        # Order a small permutation to minimize inversions.
        target = list(range(8))

        def cost(perm):
            return sum(1 for i in range(len(perm))
                       for j in range(i + 1, len(perm))
                       if perm[i] > perm[j])

        def propose(perm, rng, frac):
            i, j = rng.integers(len(perm), size=2)
            perm[i], perm[j] = perm[j], perm[i]
            return perm

        ann = Annealer(cost, propose, copy_state=list, seed=5,
                       schedule=AnnealSchedule(moves_per_temperature=300,
                                               stop_after_stale=15))
        start = list(reversed(target))
        result = ann.run(start)
        assert result.best_cost == 0
        assert result.best_state == target

    def test_evaluation_budget_respected(self):
        space = ContinuousSpace(["x"], np.array([0.1]), np.array([10.0]))
        sched = AnnealSchedule(max_evaluations=300)
        result = anneal_continuous(lambda p: p["x"], space,
                                   schedule=sched, seed=1)
        assert result.evaluations <= 310

    def test_bad_bounds_rejected(self):
        with pytest.raises(ValueError):
            ContinuousSpace(["x"], np.array([2.0]), np.array([1.0]))
        with pytest.raises(ValueError):
            ContinuousSpace(["x"], np.array([-1.0]), np.array([1.0]),
                            log_scale=True)


class TestGenetic:
    def test_float_optimization(self):
        genes = [FloatGene("x", 0.1, 100.0), FloatGene("y", 0.1, 100.0)]
        ga = GeneticOptimizer(
            genes, lambda g: (g["x"] - 7) ** 2 + (g["y"] - 3) ** 2,
            population=30, seed=2)
        result = ga.run(generations=60)
        assert result.best["x"] == pytest.approx(7.0, abs=1.0)
        assert result.best["y"] == pytest.approx(3.0, abs=1.0)

    def test_categorical_choice(self):
        genes = [CategoricalGene("topo", ("ota", "two_stage", "folded")),
                 FloatGene("w", 1.0, 100.0)]
        # two_stage with w near 50 is optimal.
        scores = {"ota": 5.0, "two_stage": 0.0, "folded": 2.0}

        def fitness(g):
            return scores[g["topo"]] + abs(g["w"] - 50.0) / 50.0

        ga = GeneticOptimizer(genes, fitness, population=30, seed=4)
        result = ga.run(generations=40)
        assert result.best["topo"] == "two_stage"

    def test_target_early_stop(self):
        genes = [FloatGene("x", 0.0, 1.0, log_scale=False)]
        ga = GeneticOptimizer(genes, lambda g: g["x"], population=20, seed=1)
        result = ga.run(generations=500, target=0.05)
        assert result.generations < 500

    def test_history_improves(self):
        genes = [FloatGene("x", 0.1, 10.0)]
        ga = GeneticOptimizer(genes, lambda g: (g["x"] - 5) ** 2,
                              population=20, seed=3)
        result = ga.run(generations=30)
        assert result.history[-1] <= result.history[0]

    def test_duplicate_gene_names_rejected(self):
        with pytest.raises(ValueError):
            GeneticOptimizer([FloatGene("x", 0, 1, log_scale=False),
                              FloatGene("x", 0, 1, log_scale=False)],
                             lambda g: 0.0)


class TestInterval:
    def test_add_sub(self):
        a, b = Interval(1, 2), Interval(10, 20)
        assert (a + b) == Interval(11, 22)
        assert (b - a) == Interval(8, 19)

    def test_mul_signs(self):
        assert Interval(-2, 3) * Interval(-1, 4) == Interval(-8, 12)

    def test_division_through_zero_rejected(self):
        with pytest.raises(IntervalError):
            Interval(1, 2) / Interval(-1, 1)

    def test_inverse(self):
        assert Interval(2, 4).inverse() == Interval(0.25, 0.5)

    def test_even_power_straddling_zero(self):
        assert (Interval(-2, 3) ** 2) == Interval(0, 9)

    def test_odd_power(self):
        assert (Interval(-2, 3) ** 3) == Interval(-8, 27)

    def test_sqrt_and_log(self):
        assert Interval(4, 9).sqrt() == Interval(2, 3)
        with pytest.raises(IntervalError):
            Interval(-1, 1).sqrt()

    def test_intersects(self):
        assert Interval(0, 2).intersects(Interval(1, 3))
        assert not Interval(0, 1).intersects(Interval(2, 3))

    def test_scalar_coercion(self):
        assert (Interval(1, 2) + 1) == Interval(2, 3)
        assert (2 * Interval(1, 2)) == Interval(2, 4)
        assert (1 / Interval(1, 2)) == Interval(0.5, 1.0)

    @given(st.floats(-100, 100), st.floats(-100, 100),
           st.floats(-100, 100), st.floats(-100, 100),
           st.floats(0, 1), st.floats(0, 1))
    @settings(max_examples=60)
    def test_mul_contains_all_products(self, a1, a2, b1, b2, t1, t2):
        ia, ib = Interval.make(a1, a2), Interval.make(b1, b2)
        # Clamp: floating-point lo + t·width can land a hair outside hi.
        x = min(max(ia.lo + t1 * ia.width, ia.lo), ia.hi)
        y = min(max(ib.lo + t2 * ib.width, ib.lo), ib.hi)
        assert (ia * ib).contains(x * y) or abs(x * y) > 1e290

    @given(st.floats(-50, 50), st.floats(-50, 50),
           st.floats(-50, 50), st.floats(-50, 50))
    @settings(max_examples=60)
    def test_add_inclusion(self, a1, a2, b1, b2):
        ia, ib = Interval.make(a1, a2), Interval.make(b1, b2)
        s = ia + ib
        assert s.contains(ia.lo + ib.lo) and s.contains(ia.hi + ib.hi)


class TestOrdering:
    def test_simple_chain(self):
        eqs = [
            Equation.make("e1", {"a", "b"}, lambda v: v["b"] - 2 * v["a"]),
            Equation.make("e2", {"b", "c"}, lambda v: v["c"] - v["b"] - 1),
        ]
        plan = order_equations(eqs, knowns=["a"])
        assert plan.block_sizes() == [1, 1]
        sol = plan.solve({"a": 3.0})
        assert sol["b"] == pytest.approx(6.0)
        assert sol["c"] == pytest.approx(7.0)

    def test_simultaneous_block(self):
        # x + y = 3, x - y = 1 → must be one 2-block.
        eqs = [
            Equation.make("sum", {"x", "y"}, lambda v: v["x"] + v["y"] - 3),
            Equation.make("diff", {"x", "y"}, lambda v: v["x"] - v["y"] - 1),
        ]
        plan = order_equations(eqs, knowns=[])
        assert plan.block_sizes() == [2]
        sol = plan.solve({})
        assert sol["x"] == pytest.approx(2.0)
        assert sol["y"] == pytest.approx(1.0)

    def test_ordering_minimizes_blocks(self):
        # A chain a→b→c→d plus one coupled pair; only the pair should be
        # simultaneous.
        eqs = [
            Equation.make("e1", {"a", "b"}, lambda v: v["b"] - v["a"] ** 2),
            Equation.make("e2", {"b", "c"}, lambda v: v["c"] - v["b"] - 1),
            Equation.make("p1", {"c", "u", "w"},
                          lambda v: v["u"] + v["w"] - v["c"]),
            Equation.make("p2", {"u", "w"}, lambda v: v["u"] - 2 * v["w"]),
        ]
        plan = order_equations(eqs, knowns=["a"])
        sizes = plan.block_sizes()
        assert sorted(sizes) == [1, 1, 2]
        sol = plan.solve({"a": 2.0})
        assert sol["b"] == pytest.approx(4.0)
        assert sol["c"] == pytest.approx(5.0)
        assert sol["u"] == pytest.approx(10.0 / 3.0)
        assert sol["w"] == pytest.approx(5.0 / 3.0)

    def test_under_constrained_reports_free_vars(self):
        eqs = [Equation.make("e1", {"a", "b", "c"},
                             lambda v: v["a"] + v["b"] + v["c"])]
        with pytest.raises(UnderConstrained) as exc_info:
            order_equations(eqs, knowns=["a"])
        assert len(exc_info.value.free_variables) == 1

    def test_over_constrained_rejected(self):
        eqs = [
            Equation.make("e1", {"x"}, lambda v: v["x"] - 1),
            Equation.make("e2", {"x"}, lambda v: v["x"] - 2),
        ]
        with pytest.raises(OrderingError):
            order_equations(eqs, knowns=[])

    def test_nonlinear_single_equation(self):
        eqs = [Equation.make("sq", {"x", "y"}, lambda v: v["y"] - v["x"] ** 2)]
        plan = order_equations(eqs, knowns=["y"])
        sol = plan.solve({"y": 16.0}, guess=5.0)
        assert sol["x"] == pytest.approx(4.0, rel=1e-6)

    def test_missing_known_value(self):
        eqs = [Equation.make("e1", {"a", "b"}, lambda v: v["b"] - v["a"])]
        plan = order_equations(eqs, knowns=["a"])
        with pytest.raises(OrderingError):
            plan.solve({})

    def test_reordering_with_different_knowns(self):
        # The same declarative model solved in two directions — the DONALD
        # selling point.
        eqs = [
            Equation.make("ohm", {"v", "i", "r"},
                          lambda x: x["v"] - x["i"] * x["r"]),
            Equation.make("power", {"p", "v", "i"},
                          lambda x: x["p"] - x["v"] * x["i"]),
        ]
        forward = order_equations(eqs, knowns=["v", "r"])
        sol = forward.solve({"v": 10.0, "r": 2.0})
        assert sol["i"] == pytest.approx(5.0)
        assert sol["p"] == pytest.approx(50.0)
        backward = order_equations(eqs, knowns=["p", "i"])
        sol2 = backward.solve({"p": 50.0, "i": 5.0}, guess=3.0)
        assert sol2["v"] == pytest.approx(10.0)
        assert sol2["r"] == pytest.approx(2.0)
