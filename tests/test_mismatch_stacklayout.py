"""Tests for mismatch statistics and merged stack layout generation."""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.mismatch import (
    area_for_offset,
    gradient_offset,
    monte_carlo_offsets,
    pair_offset_statistics,
    pelgrom_sigma,
)
from repro.circuits.devices import NMOS_DEFAULT, Mosfet
from repro.circuits.netlist import Circuit
from repro.layout.devicegen import generate_mosfet, generate_stack_layout
from repro.layout.stacking import extract_stacks
from repro.layout.technology import DEFAULT_TECH, LAYER_CONTACT


def _mos(name="m1", w=20e-6, l=2e-6, nodes=("d", "g", "s", "0")):
    return Mosfet(name, nodes, NMOS_DEFAULT, w, l)


class TestPelgrom:
    def test_sigma_scales_inverse_sqrt_area(self):
        small = pelgrom_sigma(_mos(w=10e-6, l=1e-6))
        big = pelgrom_sigma(_mos(w=40e-6, l=1e-6))
        assert big.sigma_vt == pytest.approx(small.sigma_vt / 2, rel=1e-9)

    def test_typical_magnitude(self):
        # 20x2 um device: sigma_vt = 15 mV·um / sqrt(40 um²) ≈ 2.4 mV.
        sigma = pelgrom_sigma(_mos(w=20e-6, l=2e-6))
        assert sigma.sigma_vt == pytest.approx(2.37e-3, rel=0.02)

    def test_offset_includes_beta_term(self):
        sigma = pelgrom_sigma(_mos())
        tight = sigma.offset_sigma(gm_over_id=20.0)
        loose = sigma.offset_sigma(gm_over_id=5.0)
        assert loose > tight  # low gm/Id exposes the beta mismatch

    def test_gradient_zero_for_common_centroid(self):
        assert gradient_offset(0.0) == 0.0
        assert gradient_offset(100e-6) > 0.0

    @given(st.floats(min_value=1e-4, max_value=1e-2))
    @settings(max_examples=30)
    def test_area_for_offset_inverts_pelgrom(self, sigma_target):
        area = area_for_offset(sigma_target)
        # Build a square device with that area and check the offset.
        side = math.sqrt(area)
        dev = _mos(w=side, l=side)
        achieved = pelgrom_sigma(dev).offset_sigma(10.0)
        assert achieved == pytest.approx(sigma_target, rel=1e-6)

    def test_yield_improves_with_margin(self):
        stats = pair_offset_statistics(_mos())
        y_tight = stats.yield_within(stats.sigma_random)
        y_loose = stats.yield_within(4 * stats.sigma_random)
        assert y_loose > y_tight
        assert y_loose > 0.999

    def test_systematic_shifts_yield(self):
        centered = pair_offset_statistics(_mos())
        shifted = pair_offset_statistics(_mos(),
                                         centroid_distance_m=1e-3)
        limit = 3 * centered.sigma_random
        assert shifted.yield_within(limit) < centered.yield_within(limit)

    def test_monte_carlo_matches_analytic(self):
        dev = _mos()
        stats = pair_offset_statistics(dev)
        samples = monte_carlo_offsets(dev, n=20000, seed=3)
        assert np.std(samples) == pytest.approx(stats.sigma_random,
                                                rel=0.05)
        assert np.mean(samples) == pytest.approx(stats.systematic,
                                                 abs=3 * stats.sigma_random
                                                 / math.sqrt(20000))


class TestStackLayout:
    def _chain_circuit(self, n=3) -> Circuit:
        c = Circuit("chain")
        for i in range(n):
            c.mosfet(f"m{i}", f"n{i + 1}", f"g{i}", f"n{i}", "0",
                     NMOS_DEFAULT, 10e-6, 1e-6)
        return c

    def _stack(self, n=3):
        circuit = self._chain_circuit(n)
        return extract_stacks(circuit).stacks[0]

    def test_stack_layout_generated(self):
        layout = generate_stack_layout(self._stack())
        assert layout.kind == "stack"
        assert layout.cell.shapes

    def test_shared_regions_save_area(self):
        """n-device stack: n+1 regions vs 2n for separate devices."""
        n = 4
        stack = self._stack(n)
        merged = generate_stack_layout(stack)
        separate_width = sum(
            generate_mosfet(d, fingers=1).bbox().width
            for d in stack.devices)
        assert merged.bbox().width < separate_width

    def test_junction_region_count(self):
        """Contacted regions = devices + 1 (the stacking saving)."""
        n = 3
        stack = self._stack(n)
        merged = generate_stack_layout(stack)
        # Count metal1 region straps: one per junction region.
        regions = [s for s in merged.cell.shapes_on("metal1")]
        assert len(regions) == n + 1

    def test_gate_ports_per_device(self):
        stack = self._stack(3)
        layout = generate_stack_layout(stack)
        for dev in stack.devices:
            assert f"g_{dev.name}" in layout.cell.ports

    def test_edge_nets(self):
        stack = self._stack(3)
        layout = generate_stack_layout(stack)
        assert layout.left_net == stack.nets[0]
        assert layout.right_net == stack.nets[-1]

    def test_stack_placeable(self):
        """Stack layouts drop into the KOAN placer like devices."""
        from repro.layout.placer import KoanPlacer, has_overlaps
        from repro.opt.anneal import AnnealSchedule
        circuit = self._chain_circuit(3)
        stacks = extract_stacks(circuit).stacks
        layouts = [generate_stack_layout(s, name=f"stk{i}")
                   for i, s in enumerate(stacks)]
        # Add a second stack so there is something to place against.
        other = Circuit("o")
        other.mosfet("ma", "x", "ga", "y", "0", NMOS_DEFAULT, 10e-6, 1e-6)
        other.mosfet("mb", "y", "gb", "z", "0", NMOS_DEFAULT, 10e-6, 1e-6)
        layouts += [generate_stack_layout(s, name=f"ostk{i}")
                    for i, s in enumerate(extract_stacks(other).stacks)]
        placer = KoanPlacer(layouts, seed=1)
        result = placer.run(AnnealSchedule(moves_per_temperature=40,
                                           cooling=0.75,
                                           max_evaluations=1200))
        assert not has_overlaps(result.placement)

    def test_ota_mirror_stack(self):
        """The OTA's m3/m4 mirror stacks into one merged row."""
        from repro.circuits.library import five_transistor_ota
        ota = five_transistor_ota()
        result = extract_stacks(ota)
        mirror = next(s for s in result.stacks
                      if {d.name for d in s.devices} == {"m3", "m4"})
        layout = generate_stack_layout(mirror)
        assert layout.cell.shapes_on("nwell")  # PMOS stack gets a well
        assert "g_m3" in layout.cell.ports

    def test_gds_export(self):
        from repro.layout.gdslite import read_gds_rect_count, write_gds
        layout = generate_stack_layout(self._stack())
        assert read_gds_rect_count(write_gds([layout.cell])) > 5

    def test_empty_stack_rejected(self):
        from repro.layout.stacking import Stack
        with pytest.raises(ValueError):
            generate_stack_layout(Stack([], ["a"]))
