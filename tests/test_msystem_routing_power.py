"""Tests for channel routing, WREN global routing, SNR mapping and RAIL."""

import pytest

from repro.msystem.blocks import demo_mixed_signal_system
from repro.msystem.channel_router import (
    ChannelNet,
    ChannelRoutingError,
    channel_density,
    route_channel,
)
from repro.msystem.floorplan import WrightFloorplanner
from repro.msystem.global_router import WrenGlobalRouter
from repro.msystem.noise_constraints import (
    SnrBudget,
    achieved_snr_db,
    map_budget_to_segments,
    verify_segment_budgets,
)
from repro.msystem.blocks import SignalNet
from repro.msystem.powergrid import (
    RailSpec,
    build_grid,
    synthesize_rail,
    uniform_grid_result,
)
from repro.opt.anneal import AnnealSchedule

FAST = AnnealSchedule(moves_per_temperature=80, cooling=0.85,
                      max_evaluations=6000)


def _floorplan(seed=3):
    blocks, nets = demo_mixed_signal_system()
    return WrightFloorplanner(blocks, nets, seed=seed).run(FAST), nets


class TestChannelRouter:
    def _nets(self):
        return [
            ChannelNet("a", top_pins=[1], bottom_pins=[5]),
            ChannelNet("b", top_pins=[3], bottom_pins=[8]),
            ChannelNet("c", top_pins=[6], bottom_pins=[2]),
        ]

    def test_basic_routing_covers_all_nets(self):
        result = route_channel(self._nets())
        names = {a.net for a in result.assignments if not a.is_shield}
        assert names == {"a", "b", "c"}

    def test_track_count_at_least_density(self):
        nets = self._nets()
        result = route_channel(nets)
        assert result.height >= channel_density(nets)

    def test_nonoverlapping_nets_share_track(self):
        nets = [ChannelNet("a", [1], [2]), ChannelNet("b", [10], [12])]
        result = route_channel(nets)
        ya = result.track_of("a").track_y
        yb = result.track_of("b").track_y
        assert ya == yb

    def test_vertical_constraint_orders_tracks(self):
        # Column 4: 'top' has the top pin, 'bot' the bottom pin → 'top'
        # must get a higher (earlier) track.
        nets = [ChannelNet("top", [4], [9]),
                ChannelNet("bot", [8], [4])]
        result = route_channel(nets)
        assert result.track_of("top").track_y < \
            result.track_of("bot").track_y

    def test_cyclic_constraint_rejected_without_doglegs(self):
        nets = [ChannelNet("a", [1], [2]), ChannelNet("b", [2], [1])]
        with pytest.raises(ChannelRoutingError):
            route_channel(nets, allow_doglegs=False)

    def test_cycle_broken_by_dogleg(self):
        nets = [ChannelNet("a", [1], [2]), ChannelNet("b", [2], [1])]
        result = route_channel(nets, allow_doglegs=True)
        from repro.msystem.channel_router import base_net_name
        routed = {base_net_name(t.net) for t in result.assignments
                  if not t.is_shield}
        assert routed == {"a", "b"}
        # The split net occupies two tracks.
        assert len([t for t in result.assignments
                    if not t.is_shield]) == 3

    def test_shield_between_incompatible(self):
        nets = [
            ChannelNet("clk", [1], [9], net_class="noisy"),
            ChannelNet("vin", [2], [8], net_class="sensitive"),
        ]
        result = route_channel(nets, insert_shields=True)
        assert result.shields >= 1
        assert result.adjacent_incompatible_pairs(
            {n.name: n for n in nets}) == []

    def test_no_shield_when_disabled(self):
        nets = [
            ChannelNet("clk", [1], [9], net_class="noisy"),
            ChannelNet("vin", [2], [8], net_class="sensitive"),
        ]
        result = route_channel(nets, insert_shields=False)
        assert result.shields == 0

    def test_segregated_channels(self):
        nets = [
            ChannelNet("clk", [1], [9], net_class="noisy"),
            ChannelNet("d0", [3], [7], net_class="noisy"),
            ChannelNet("vin", [2], [8], net_class="sensitive"),
            ChannelNet("vref", [4], [6], net_class="sensitive"),
        ]
        result = route_channel(nets, segregate=True)
        noisy_y = [result.track_of(n).track_y for n in ("clk", "d0")]
        sens_y = [result.track_of(n).track_y for n in ("vin", "vref")]
        # All noisy tracks strictly above (or below) all sensitive ones.
        assert max(noisy_y) < min(sens_y) or min(noisy_y) > max(sens_y)

    def test_wide_spacing_net_grows_channel(self):
        thin = [ChannelNet("a", [1], [9]), ChannelNet("b", [2], [8])]
        wide = [ChannelNet("a", [1], [9], spacing=5),
                ChannelNet("b", [2], [8], spacing=5)]
        assert route_channel(wide).height > route_channel(thin).height

    def test_density_computation(self):
        nets = [ChannelNet("a", [0], [10]), ChannelNet("b", [5], [15]),
                ChannelNet("c", [12], [20])]
        assert channel_density(nets) == 2

    def test_incompatible_never_share_track(self):
        nets = [ChannelNet("clk", [1], [5], net_class="noisy"),
                ChannelNet("vin", [10], [15], net_class="sensitive")]
        result = route_channel(nets)
        assert result.track_of("clk").track_y != \
            result.track_of("vin").track_y


class TestWrenGlobalRouter:
    def test_routes_all_demo_nets(self):
        fp, nets = _floorplan()
        result = WrenGlobalRouter(fp).route(nets)
        assert not result.failed
        assert len(result.routes) == len(nets)

    def test_routes_avoid_block_interiors(self):
        fp, nets = _floorplan()
        router = WrenGlobalRouter(fp)
        result = router.route(nets)
        for route in result.routes.values():
            for tile in route.tiles:
                assert tile not in router.blocked

    def test_noise_aware_reduces_exposure(self):
        fp, nets = _floorplan()
        aware = WrenGlobalRouter(fp, noise_aware=True).route(nets)
        blind = WrenGlobalRouter(fp, noise_aware=False).route(nets)
        assert aware.total_exposure <= blind.total_exposure

    def test_segments_for_mapper(self):
        fp, nets = _floorplan()
        result = WrenGlobalRouter(fp).route(nets)
        route = result.routes["afe_to_adc"]
        segs = route.segments(result.tile_nm)
        assert len(segs) == len(route.tiles)
        assert all(length > 0 for _, length in segs)


class TestSnrConstraints:
    def test_budget_from_snr(self):
        net = SignalNet("vin", [], net_class="sensitive", snr_limit_db=60.0)
        budget = SnrBudget.for_net(net, net_ground_cap=1e-12)
        # 60 dB with 0.3/3.3 signal ratio: Cc/Cg ≈ 9.1e-5.
        assert budget.coupling_budget == pytest.approx(
            1e-12 * (0.3 / 3.3) * 1e-3, rel=1e-6)

    def test_budget_requires_limit(self):
        net = SignalNet("d", [], net_class="noisy")
        with pytest.raises(ValueError):
            SnrBudget.for_net(net, 1e-12)

    def test_mapper_proportional_to_length(self):
        budget = SnrBudget("vin", 60.0, 1e-15)
        segs = [("s1", 100), ("s2", 300)]
        mapped = map_budget_to_segments(budget, segs, reserve=0.0)
        assert mapped[1].coupling_bound == pytest.approx(
            3 * mapped[0].coupling_bound)
        assert sum(m.coupling_bound for m in mapped) == pytest.approx(1e-15)

    def test_mapper_reserve(self):
        budget = SnrBudget("vin", 60.0, 1e-15)
        mapped = map_budget_to_segments(budget, [("s", 10)], reserve=0.2)
        assert mapped[0].coupling_bound == pytest.approx(0.8e-15)

    def test_achieved_snr_roundtrip(self):
        net = SignalNet("vin", [], net_class="sensitive",
                        snr_limit_db=60.0)
        cg = 1e-12
        budget = SnrBudget.for_net(net, cg)
        # Using exactly the budget must achieve exactly the SNR limit.
        assert achieved_snr_db(budget.coupling_budget, cg) == \
            pytest.approx(60.0, abs=1e-6)

    def test_verify_segment_budgets(self):
        budget = SnrBudget("vin", 60.0, 1e-15)
        mapped = map_budget_to_segments(budget, [("s1", 1), ("s2", 1)],
                                        reserve=0.0)
        verdict = verify_segment_budgets(
            mapped, {"s1": 0.4e-15, "s2": 0.9e-15})
        assert verdict["s1"] and not verdict["s2"]


class TestRail:
    def test_grid_builds(self):
        fp, _ = _floorplan()
        grid = build_grid(fp)
        assert len(grid.segments) >= len(fp.placed) + 4
        assert grid.worst_ir_drop() > 0

    def test_wider_grid_less_drop(self):
        fp, _ = _floorplan()
        thin = uniform_grid_result(fp, 4_000)
        wide = uniform_grid_result(fp, 40_000)
        assert wide.worst_ir_drop < thin.worst_ir_drop
        assert wide.worst_droop < thin.worst_droop

    def test_naive_grid_fails_specs(self):
        fp, _ = _floorplan()
        naive = uniform_grid_result(fp, 4_000)
        assert not naive.feasible

    def test_rail_synthesis_meets_all_constraints(self):
        fp, _ = _floorplan()
        spec = RailSpec()
        result = synthesize_rail(fp, spec, seed=2)
        assert result.feasible
        assert result.worst_ir_drop <= spec.max_ir_drop
        assert result.worst_droop <= spec.max_droop
        assert not result.em_violations

    def test_rail_cheaper_than_feasible_uniform(self):
        """RAIL's point: tuned widths beat the uniform grid that meets
        the same specs."""
        fp, _ = _floorplan()
        rail = synthesize_rail(fp, seed=2)
        # Find the cheapest feasible uniform width by scan.
        uniform_area = None
        for width in (20_000, 40_000, 60_000, 80_000, 120_000):
            u = uniform_grid_result(fp, width)
            if u.feasible:
                uniform_area = u.metal_area
                break
        assert uniform_area is not None
        assert rail.metal_area < uniform_area

    def test_transient_droop_positive(self):
        fp, _ = _floorplan()
        grid = build_grid(fp, default_width_nm=20_000)
        droop = grid.transient_droop()
        assert droop > 0.0

    def test_em_violations_on_skinny_grid(self):
        fp, _ = _floorplan()
        grid = build_grid(fp, default_width_nm=200)
        assert grid.em_violations()


class TestChannelDefinition:
    def test_channels_found_between_blocks(self, ):
        from repro.msystem.channels import define_channels
        fp, _ = _floorplan(seed=1)
        channels = define_channels(fp)
        assert channels
        for ch in channels:
            # Channel rectangles lie outside every block.
            for placed in fp.placed.values():
                assert ch.rect.intersection(placed.rect()) is None

    def test_channel_assignment_and_routing(self):
        from repro.msystem.channels import (
            assign_nets_to_channels,
            define_channels,
            route_all_channels,
        )
        from repro.msystem.global_router import WrenGlobalRouter
        fp, nets = _floorplan(seed=1)
        channels = define_channels(fp)
        routing = WrenGlobalRouter(fp).route(nets)
        problems = assign_nets_to_channels(channels, routing, nets)
        assert problems
        report = route_all_channels(problems)
        assert not report.unroutable
        assert report.total_tracks > 0

    def test_detailed_shielding_respects_classes(self):
        from repro.msystem.channels import (
            assign_nets_to_channels,
            define_channels,
            route_all_channels,
        )
        from repro.msystem.global_router import WrenGlobalRouter
        fp, nets = _floorplan(seed=1)
        problems = assign_nets_to_channels(
            define_channels(fp), WrenGlobalRouter(fp).route(nets), nets)
        report = route_all_channels(problems, insert_shields=True)
        # Any channel that carries both noisy and sensitive nets must
        # have no unshielded incompatible adjacency.
        for problem in problems:
            result = report.results.get(problem.channel.name)
            if result is None:
                continue
            classes = {n.net_class for n in problem.nets}
            if {"noisy", "sensitive"} <= classes:
                by_name = {n.name: n for n in problem.nets}
                assert result.adjacent_incompatible_pairs(by_name) == []

    def test_segregation_reduces_or_matches_shields(self):
        from repro.msystem.channels import (
            assign_nets_to_channels,
            define_channels,
            route_all_channels,
        )
        from repro.msystem.global_router import WrenGlobalRouter
        fp, nets = _floorplan(seed=1)
        problems = assign_nets_to_channels(
            define_channels(fp), WrenGlobalRouter(fp).route(nets), nets)
        shielded = route_all_channels(problems, insert_shields=True)
        segregated = route_all_channels(problems, segregate=True)
        assert segregated.total_shields <= shielded.total_shields
