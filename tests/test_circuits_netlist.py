"""Unit tests for the circuit container, devices and hierarchy flattening."""

import pytest

from repro.circuits.devices import (
    NMOS_DEFAULT,
    Capacitor,
    Mosfet,
    Resistor,
    SubcktInstance,
    Waveform,
)
from repro.circuits.netlist import GROUND, Circuit, NetlistError, SubcktDef


class TestDevices:
    def test_resistor_positive(self):
        with pytest.raises(ValueError):
            Resistor("r1", ("a", "b"), -1.0)

    def test_capacitor_nonnegative(self):
        with pytest.raises(ValueError):
            Capacitor("c1", ("a", "b"), -1e-12)

    def test_mosfet_dimensions(self):
        with pytest.raises(ValueError):
            Mosfet("m1", ("d", "g", "s", "b"), NMOS_DEFAULT, w=-1e-6, l=1e-6)
        with pytest.raises(ValueError):
            Mosfet("m1", ("d", "g", "s", "b"), NMOS_DEFAULT, w=1e-6, l=1e-6, m=0)

    def test_mosfet_terminals(self):
        m = Mosfet("m1", ("d", "g", "s", "b"), NMOS_DEFAULT, 1e-6, 1e-6)
        assert (m.drain, m.gate, m.source, m.bulk) == ("d", "g", "s", "b")

    def test_mosfet_beta(self):
        m = Mosfet("m1", ("d", "g", "s", "b"), NMOS_DEFAULT, w=20e-6, l=2e-6, m=2)
        assert m.beta == pytest.approx(NMOS_DEFAULT.kp * 10 * 2)

    def test_renamed(self):
        r = Resistor("r1", ("a", "b"), 1e3)
        r2 = r.renamed({"a": "x"})
        assert r2.nodes == ("x", "b")
        assert r.nodes == ("a", "b")  # original untouched

    def test_with_prefix(self):
        r = Resistor("r1", ("a", "b"), 1e3)
        assert r.with_prefix("x1.").name == "x1.r1"


class TestWaveform:
    def test_dc(self):
        assert Waveform().value_at(1.0, 2.5) == 2.5

    def test_pulse_levels(self):
        wf = Waveform("pulse", (0.0, 1.0, 1e-9, 1e-10, 1e-10, 5e-9, 20e-9))
        assert wf.value_at(0.0, 0.0) == 0.0
        assert wf.value_at(3e-9, 0.0) == pytest.approx(1.0)
        assert wf.value_at(8e-9, 0.0) == pytest.approx(0.0)

    def test_pulse_periodic(self):
        wf = Waveform("pulse", (0.0, 1.0, 0.0, 1e-12, 1e-12, 5e-9, 10e-9))
        assert wf.value_at(12e-9, 0.0) == pytest.approx(1.0)
        assert wf.value_at(17e-9, 0.0) == pytest.approx(0.0)

    def test_pulse_rise_interpolates(self):
        wf = Waveform("pulse", (0.0, 2.0, 0.0, 2e-9, 1e-12, 5e-9, 0.0))
        assert wf.value_at(1e-9, 0.0) == pytest.approx(1.0)

    def test_sin(self):
        wf = Waveform("sin", (0.5, 1.0, 1e6))
        assert wf.value_at(0.0, 0.0) == pytest.approx(0.5)
        assert wf.value_at(0.25e-6, 0.0) == pytest.approx(1.5)

    def test_sin_delay(self):
        wf = Waveform("sin", (0.0, 1.0, 1e6, 1e-6))
        assert wf.value_at(0.5e-6, 0.0) == 0.0

    def test_pwl(self):
        wf = Waveform("pwl", points=((0.0, 0.0), (1e-6, 1.0), (2e-6, 0.5)))
        assert wf.value_at(0.5e-6, 0.0) == pytest.approx(0.5)
        assert wf.value_at(1.5e-6, 0.0) == pytest.approx(0.75)
        assert wf.value_at(5e-6, 0.0) == pytest.approx(0.5)  # holds last

    def test_pwl_before_first_point(self):
        wf = Waveform("pwl", points=((1e-6, 1.0), (2e-6, 2.0)))
        assert wf.value_at(0.0, 0.0) == 1.0


class TestCircuit:
    def test_add_duplicate_name_rejected(self):
        c = Circuit("t")
        c.resistor("r1", "a", "b", 1e3)
        with pytest.raises(NetlistError):
            c.resistor("r1", "b", "c", 2e3)

    def test_nets_ground_first(self):
        c = Circuit("t")
        c.resistor("r1", "a", "0", 1e3)
        c.resistor("r2", "b", "a", 1e3)
        nets = c.nets()
        assert nets[0] == GROUND
        assert set(nets) == {"0", "a", "b"}

    def test_device_lookup(self):
        c = Circuit("t")
        c.resistor("r1", "a", "0", 1e3)
        assert c.device("r1").value == 1e3
        with pytest.raises(KeyError):
            c.device("r9")

    def test_update_device(self):
        c = Circuit("t")
        c.resistor("r1", "a", "0", 1e3)
        c.update_device("r1", value=2e3)
        assert c.device("r1").value == 2e3

    def test_connected_devices(self):
        c = Circuit("t")
        c.resistor("r1", "a", "0", 1e3)
        c.capacitor("c1", "a", "b", 1e-12)
        assert {d.name for d in c.connected_devices("a")} == {"r1", "c1"}

    def test_copy_is_independent(self):
        c = Circuit("t")
        c.resistor("r1", "a", "0", 1e3)
        c2 = c.copy()
        c2.update_device("r1", value=5e3)
        assert c.device("r1").value == 1e3

    def test_mosfets_property(self):
        c = Circuit("t")
        c.mosfet("m1", "d", "g", "0", "0", NMOS_DEFAULT, 1e-6, 1e-6)
        c.resistor("r1", "d", "0", 1e3)
        assert [m.name for m in c.mosfets] == ["m1"]


class TestHierarchy:
    def _divider_subckt(self) -> SubcktDef:
        body = Circuit("divider_body")
        body.resistor("r1", "in", "out", 1e3)
        body.resistor("r2", "out", "0", 1e3)
        return SubcktDef("div", ("in", "out"), body)

    def test_flatten_renames_internals(self):
        c = Circuit("top")
        c.define_subckt(self._divider_subckt())
        c.vsource("vin", "a", "0", dc=1.0)
        c.add(SubcktInstance("x1", ("a", "b"), "div"))
        flat = c.flattened()
        names = {d.name for d in flat.devices}
        assert "x1.r1" in names and "x1.r2" in names
        nets = set(flat.nets())
        assert "a" in nets and "b" in nets and "0" in nets

    def test_flatten_two_instances_disjoint(self):
        c = Circuit("top")
        c.define_subckt(self._divider_subckt())
        c.add(SubcktInstance("x1", ("a", "m"), "div"))
        c.add(SubcktInstance("x2", ("m", "b"), "div"))
        flat = c.flattened()
        assert len(flat.devices) == 4
        # Shared net "m" joins x1.r1, x1.r2 and x2.r1.
        assert len([d for d in flat.devices if "m" in d.nodes]) == 3

    def test_flatten_nested(self):
        inner = Circuit("inner")
        inner.resistor("r", "p", "0", 1e3)
        mid = Circuit("mid")
        mid.add(SubcktInstance("xi", ("q",), "inner"))
        mid.resistor("rm", "q", "0", 2e3)
        top = Circuit("top")
        top.define_subckt(SubcktDef("inner", ("p",), inner))
        top.define_subckt(SubcktDef("mid", ("q",), mid))
        # Subckt bodies resolve against the defining circuit's table.
        mid.subckts = top.subckts
        top.add(SubcktInstance("x1", ("n",), "mid"))
        flat = top.flattened()
        assert {d.name for d in flat.devices} == {"x1.xi.r", "x1.rm"}

    def test_port_count_mismatch(self):
        c = Circuit("top")
        c.define_subckt(self._divider_subckt())
        c.add(SubcktInstance("x1", ("a",), "div"))
        with pytest.raises(NetlistError):
            c.flattened()

    def test_unknown_subckt(self):
        c = Circuit("top")
        c.add(SubcktInstance("x1", ("a", "b"), "nosuch"))
        with pytest.raises(NetlistError):
            c.flattened()

    def test_ground_never_renamed(self):
        c = Circuit("top")
        c.define_subckt(self._divider_subckt())
        c.add(SubcktInstance("x1", ("a", "b"), "div"))
        flat = c.flattened()
        assert "x1.0" not in flat.nets()
