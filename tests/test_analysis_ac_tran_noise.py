"""Tests for AC, transient, noise and sensitivity analyses vs. theory."""

import math

import numpy as np
import pytest

from repro.analysis import (
    ParameterRef,
    ac_adjoint_sensitivities,
    ac_analysis,
    bode_metrics,
    dc_operating_point,
    equivalent_noise_charge,
    finite_difference_sensitivities,
    logspace_frequencies,
    noise_analysis,
    small_signal_system,
    transient,
)
from repro.circuits.devices import BOLTZMANN, ROOM_TEMP_K, Waveform
from repro.circuits.library import (
    common_source_amp,
    five_transistor_ota,
    rc_ladder,
    rlc_tank,
    two_stage_miller,
    voltage_divider,
)
from repro.circuits.netlist import Circuit


def _rc_lowpass(r=1e3, c=1e-9):
    ckt = Circuit("rc")
    ckt.vsource("vin", "a", "0", dc=0.0, ac=1.0)
    ckt.resistor("r1", "a", "out", r)
    ckt.capacitor("c1", "out", "0", c)
    return ckt


class TestAc:
    def test_rc_pole_location(self):
        r, c = 1e3, 1e-9
        f_pole = 1 / (2 * math.pi * r * c)
        res = ac_analysis(_rc_lowpass(r, c), np.array([f_pole]))
        assert abs(res.v("out")[0]) == pytest.approx(1 / math.sqrt(2), rel=1e-6)

    def test_rc_phase_at_pole(self):
        r, c = 1e3, 1e-9
        f_pole = 1 / (2 * math.pi * r * c)
        res = ac_analysis(_rc_lowpass(r, c), np.array([f_pole]))
        assert np.angle(res.v("out")[0]) == pytest.approx(-math.pi / 4, rel=1e-6)

    def test_rc_bode_metrics(self):
        r, c = 1e3, 1e-9
        f_pole = 1 / (2 * math.pi * r * c)
        res = ac_analysis(_rc_lowpass(r, c),
                          logspace_frequencies(10, 1e9, 20))
        m = bode_metrics(res, "out")
        assert m.dc_gain == pytest.approx(1.0, rel=1e-3)
        assert m.bandwidth_3db == pytest.approx(f_pole, rel=0.05)

    def test_rlc_resonance(self):
        l, c = 1e-9, 1e-12
        f0 = 1 / (2 * math.pi * math.sqrt(l * c))
        res = ac_analysis(rlc_tank(5.0, l, c),   # Q = sqrt(L/C)/R ~ 6.3
                          np.array([f0 / 100, f0, f0 * 100]))
        mags = np.abs(res.v("out"))
        assert mags[1] > 2 * mags[0]  # peaking at resonance (Q > 1)
        assert mags[2] < 0.01         # rolls off above

    def test_divider_flat(self):
        res = ac_analysis(voltage_divider(1e3, 1e3),
                          logspace_frequencies(1, 1e6, 4))
        assert np.allclose(np.abs(res.v("out")), 0.5, rtol=1e-6)

    def test_ota_gain_matches_gm_ro(self):
        ota = five_transistor_ota()
        ota.vsource("vip", "inp", "0", dc=1.5, ac=1.0)
        ota.vsource("vin_", "inn", "0", dc=1.5)
        op = dc_operating_point(ota)
        m2, m4 = op.mos["m2"], op.mos["m4"]
        expected = m2.gm / (m2.gds + m4.gds)
        res = ac_analysis(ota, np.array([10.0]), op=op)
        assert abs(res.v("out")[0]) == pytest.approx(expected, rel=0.05)

    def test_two_stage_has_higher_gain_than_ota(self):
        def gain(build):
            ckt = build()
            ckt.vsource("vip", "inp", "0", dc=1.5, ac=1.0)
            ckt.vsource("vin_", "inn", "0", dc=1.5)
            res = ac_analysis(ckt, np.array([1.0]))
            return abs(res.v("out")[0])
        assert gain(two_stage_miller) > 3 * gain(five_transistor_ota)

    def test_miller_compensation_single_pole_rolloff(self):
        amp = two_stage_miller()
        amp.vsource("vip", "inp", "0", dc=1.5, ac=1.0)
        amp.vsource("vin_", "inn", "0", dc=1.5)
        res = ac_analysis(amp, logspace_frequencies(1, 1e9, 10))
        m = bode_metrics(res, "out")
        assert m.phase_margin_deg > 30.0
        assert m.unity_gain_freq > m.bandwidth_3db


class TestTransient:
    def test_rc_step_response(self):
        c = Circuit("rc")
        c.vsource("vin", "a", "0", dc=0.0,
                  waveform=Waveform("pulse", (0, 1, 0, 1e-12, 1e-12, 1, 2)))
        c.resistor("r1", "a", "out", 1e3)
        c.capacitor("c1", "out", "0", 1e-9)
        tr = transient(c, 5e-6, 2e-8)
        tau = 1e-6
        for t_check in (0.5e-6, 1e-6, 2e-6):
            expected = 1 - math.exp(-t_check / tau)
            assert tr.value_at("out", t_check) == pytest.approx(expected, abs=5e-3)

    def test_sin_steady_state(self):
        c = Circuit("sin")
        c.vsource("vin", "a", "0", dc=0.0,
                  waveform=Waveform("sin", (0.0, 1.0, 1e6)))
        c.resistor("r1", "a", "out", 1.0)
        tr = transient(c, 2e-6, 1e-8)
        assert tr.value_at("out", 0.25e-6) == pytest.approx(1.0, abs=1e-2)

    def test_initial_condition_from_op(self):
        # DC source charged: output starts at the DC solution.
        c = Circuit("ic")
        c.vsource("vin", "a", "0", dc=2.0)
        c.resistor("r1", "a", "out", 1e3)
        c.capacitor("c1", "out", "0", 1e-9)
        tr = transient(c, 1e-6, 1e-8)
        assert tr.v("out")[0] == pytest.approx(2.0, rel=1e-3)

    def test_settling_time(self):
        c = Circuit("rc")
        c.vsource("vin", "a", "0", dc=0.0,
                  waveform=Waveform("pulse", (0, 1, 0, 1e-12, 1e-12, 1, 2)))
        c.resistor("r1", "a", "out", 1e3)
        c.capacitor("c1", "out", "0", 1e-9)
        tr = transient(c, 10e-6, 2e-8)
        ts = tr.settling_time("out", final=1.0, band=0.01)
        # 1% settling of a single pole is ~4.6 tau = 4.6 us.
        assert 3e-6 < ts < 6e-6

    def test_peak_measurement(self):
        c = Circuit("peak")
        c.vsource("vin", "a", "0", dc=0.0,
                  waveform=Waveform("pwl", points=((0, 0), (1e-6, 1), (2e-6, 0))))
        c.resistor("r1", "a", "out", 1.0)
        tr = transient(c, 3e-6, 1e-8)
        t_pk, v_pk = tr.peak("out")
        assert v_pk == pytest.approx(1.0, abs=0.02)
        assert t_pk == pytest.approx(1e-6, abs=5e-8)

    def test_mos_inverter_switches(self):
        from repro.circuits.devices import NMOS_DEFAULT
        c = Circuit("inv")
        c.vsource("vdd_src", "vdd", "0", dc=3.3)
        c.vsource("vin", "g", "0", dc=0.0,
                  waveform=Waveform("pulse", (0, 3.3, 1e-9, 1e-10, 1e-10, 1e-8, 1)))
        c.resistor("rl", "vdd", "out", 10e3)
        c.mosfet("m1", "out", "g", "0", "0", NMOS_DEFAULT, 20e-6, 1e-6)
        c.capacitor("cl", "out", "0", 10e-15)
        tr = transient(c, 8e-9, 5e-11)
        assert tr.v("out")[0] == pytest.approx(3.3, rel=1e-2)  # off: pulled up
        assert tr.value_at("out", 6e-9) < 0.5                   # on: pulled low

    def test_invalid_args(self):
        with pytest.raises(ValueError):
            transient(_rc_lowpass(), -1.0, 1e-9)
        with pytest.raises(ValueError):
            transient(_rc_lowpass(), 1e-6, 0.0)


class TestNoise:
    def test_resistor_divider_thermal(self):
        # Two equal resistors: output noise = 4kT·(R/2).
        r = 10e3
        res = noise_analysis(voltage_divider(r, r, 1.0), "out",
                             np.logspace(2, 5, 10))
        expected = 4 * BOLTZMANN * ROOM_TEMP_K * (r / 2)
        assert res.output_psd[0] == pytest.approx(expected, rel=1e-3)
        assert res.output_psd[-1] == pytest.approx(expected, rel=1e-3)

    def test_rc_integrated_noise_is_kt_over_c(self):
        # Total noise of an RC lowpass integrates to kT/C, independent of R.
        c_val = 1e-12
        ckt = _rc_lowpass(1e3, c_val)
        freqs = np.logspace(0, 12, 400)
        res = noise_analysis(ckt, "out", freqs)
        v2 = res.output_rms() ** 2
        assert v2 == pytest.approx(BOLTZMANN * ROOM_TEMP_K / c_val, rel=0.02)

    def test_mos_flicker_dominates_low_freq(self):
        cs = common_source_amp(vgs=1.0)
        res = noise_analysis(cs, "out", np.logspace(0, 8, 30))
        flicker = [c for c in res.contributions if c.kind == "flicker"]
        thermal = [c for c in res.contributions
                   if c.kind == "thermal" and c.device == "m1"]
        assert flicker and thermal
        assert flicker[0].psd[0] > thermal[0].psd[0]      # 1/f wins at 1 Hz
        assert flicker[0].psd[-1] < thermal[0].psd[-1]    # thermal wins at 100 MHz

    def test_gain_available_with_ac_source(self):
        cs = common_source_amp(vgs=1.0)
        res = noise_analysis(cs, "out", np.logspace(2, 4, 5))
        assert res.gain is not None
        inp = res.input_referred_psd()
        assert np.all(inp > 0)

    def test_dominant_contributor(self):
        # Output node sees r1 || r2; both transfers are equal, so the
        # smaller resistor's larger current noise (4kT/R) dominates.
        res = noise_analysis(voltage_divider(10.0, 100e3, 1.0), "out",
                             np.logspace(2, 4, 5))
        assert res.dominant_contributor() == "r1"

    def test_enc_scaling(self):
        res = noise_analysis(voltage_divider(1e3, 1e3, 1.0), "out",
                             np.logspace(2, 6, 30))
        enc1 = equivalent_noise_charge(res, gain_v_per_coulomb=1e12)
        enc2 = equivalent_noise_charge(res, gain_v_per_coulomb=2e12)
        assert enc1 == pytest.approx(2 * enc2, rel=1e-9)


class TestSensitivity:
    def test_fd_divider_sensitivity(self):
        ckt = voltage_divider(1e3, 1e3, 2.0)

        def perf(c):
            return dc_operating_point(c).v("out")

        refs = [ParameterRef("r1", "value"), ParameterRef("r2", "value")]
        sens = finite_difference_sensitivities(ckt, perf, refs)
        # vout = vin·r2/(r1+r2): dv/dr1 = -vin·r2/(r1+r2)^2 = -0.5e-3
        assert sens[refs[0]] == pytest.approx(-2.0 * 1e3 / 4e6, rel=1e-3)
        assert sens[refs[1]] == pytest.approx(+2.0 * 1e3 / 4e6, rel=1e-3)

    def test_fd_does_not_mutate(self):
        ckt = voltage_divider(1e3, 1e3, 2.0)
        refs = [ParameterRef("r1", "value")]
        finite_difference_sensitivities(
            ckt, lambda c: dc_operating_point(c).v("out"), refs)
        assert ckt.device("r1").value == 1e3

    def test_adjoint_matches_finite_difference(self):
        ckt = _rc_lowpass(1e3, 1e-9)
        ss = small_signal_system(ckt)
        f_test = 1e5
        adjoint = {s.device: s.d_mag
                   for s in ac_adjoint_sensitivities(ss, "out", f_test)}

        def mag_out(c):
            res = ac_analysis(c, np.array([f_test]))
            return abs(res.v("out")[0])

        refs = [ParameterRef("r1", "value"), ParameterRef("c1", "value")]
        fd = finite_difference_sensitivities(ckt, mag_out, refs, rel_step=1e-4)
        assert adjoint["r1"] == pytest.approx(fd[refs[0]], rel=1e-2)
        assert adjoint["c1"] == pytest.approx(fd[refs[1]], rel=1e-2)
