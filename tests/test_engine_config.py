"""EngineConfig / EvaluationEngine.from_config and the kwarg migration.

One typed config object replaces the scattered executor / cache /
retry_policy / fault_injector / tracer kwargs.  The legacy spellings
must keep working behind a ``DeprecationWarning``; mixing both in one
call is an error.
"""

import json

import pytest

from repro.engine import (
    EngineConfig,
    EvalCache,
    EvaluationEngine,
    FaultInjector,
    ParallelExecutor,
    RetryPolicy,
    SerialExecutor,
    Telemetry,
    Tracer,
)
from repro.engine.config import resolve_flow_engine


def _double(x):
    return 2 * x


class TestBuildParts:
    def test_default_is_serial_uncached_untraced(self):
        engine = EvaluationEngine.from_config(EngineConfig())
        assert isinstance(engine.executor, SerialExecutor)
        assert engine.cache is None
        assert engine.tracer is None
        assert engine.config is not None

    def test_parallel_shorthand(self):
        config = EngineConfig(executor="parallel", workers=2, chunksize=3)
        engine = EvaluationEngine.from_config(config)
        try:
            assert isinstance(engine.executor, ParallelExecutor)
            assert engine.executor.workers == 2
            assert engine.map_evaluate(_double, [1, 2, 3]) == [2, 4, 6]
        finally:
            engine.close()

    def test_explicit_executor_instance_used_as_is(self):
        executor = SerialExecutor()
        engine = EvaluationEngine.from_config(EngineConfig(executor=executor))
        assert engine.executor is executor

    def test_unknown_executor_kind_rejected(self):
        with pytest.raises(ValueError, match="serial"):
            EngineConfig(executor="distributed").build_executor()

    def test_cache_true_builds_fresh_cache(self):
        config = EngineConfig(cache=True, cache_entries=7)
        engine = EvaluationEngine.from_config(config)
        assert isinstance(engine.cache, EvalCache)
        assert engine.cache.max_entries == 7

    def test_cache_instance_shared(self):
        cache = EvalCache()
        a = EvaluationEngine.from_config(EngineConfig(cache=cache))
        b = EvaluationEngine.from_config(EngineConfig(cache=cache))
        a.map_evaluate(_double, [5], key_fn=str)
        b.map_evaluate(_double, [5], key_fn=str)
        assert b.report()["counters"]["engine.cache_hits"] == 1

    def test_retry_and_faults_installed_on_executor(self):
        policy = RetryPolicy(max_attempts=3)
        injector = FaultInjector(rate=0.0, seed=1)
        engine = EvaluationEngine.from_config(
            EngineConfig(retry_policy=policy, fault_injector=injector))
        assert engine.executor.retry_policy is policy
        assert engine.executor.fault_injector is injector


class TestTracerWiring:
    def test_trace_true_builds_tracer_sharing_telemetry(self):
        engine = EvaluationEngine.from_config(EngineConfig(trace=True))
        assert isinstance(engine.tracer, Tracer)
        assert engine.tracer.telemetry is engine.telemetry

    def test_explicit_tracer_wins(self):
        tracer = Tracer()
        engine = EvaluationEngine.from_config(EngineConfig(tracer=tracer))
        assert engine.tracer is tracer
        assert tracer.telemetry is engine.telemetry

    def test_trace_dir_implies_trace(self, tmp_path):
        config = EngineConfig(trace_dir=tmp_path)
        engine = EvaluationEngine.from_config(config)
        assert engine.tracer is not None
        assert config.describe()["trace"] is True

    def test_explicit_telemetry_respected(self):
        telemetry = Telemetry()
        engine = EvaluationEngine.from_config(
            EngineConfig(telemetry=telemetry, trace=True))
        assert engine.telemetry is telemetry
        assert engine.tracer.telemetry is telemetry


class TestDescribe:
    def test_describe_is_json_safe(self, tmp_path):
        config = EngineConfig(
            executor="parallel", workers=4, cache=True,
            disk_cache_dir=tmp_path / "cache",
            retry_policy=RetryPolicy(max_attempts=2, timeout_s=1.5),
            fault_injector=FaultInjector(rate=0.2, seed=9),
            trace_dir=tmp_path / "runs")
        desc = config.describe()
        round_tripped = json.loads(json.dumps(desc, sort_keys=True))
        assert round_tripped == desc
        assert desc["executor"] == "parallel"
        assert desc["retry_policy"]["max_attempts"] == 2
        assert desc["fault_injector"]["rate"] == 0.2

    def test_describe_names_executor_instances(self):
        desc = EngineConfig(executor=SerialExecutor()).describe()
        assert desc["executor"] == "SerialExecutor"


class TestDeprecationShims:
    def test_legacy_engine_kwargs_warn(self):
        with pytest.warns(DeprecationWarning, match="from_config"):
            engine = EvaluationEngine(retry_policy=RetryPolicy())
        assert engine.executor.retry_policy is not None
        with pytest.warns(DeprecationWarning, match="from_config"):
            EvaluationEngine(fault_injector=FaultInjector(rate=0.0, seed=1))

    def test_plain_constructor_does_not_warn(self):
        import warnings as _w
        with _w.catch_warnings():
            _w.simplefilter("error", DeprecationWarning)
            EvaluationEngine(cache=EvalCache())

    def test_resolve_flow_engine_warns_on_legacy_kwargs(self):
        engine = EvaluationEngine()
        with pytest.warns(DeprecationWarning, match="my_flow"):
            got, policy, owned = resolve_flow_engine(engine, None, None,
                                                     "my_flow")
        assert got is engine and owned is False

    def test_resolve_flow_engine_builds_owned_engine_from_config(self):
        policy = RetryPolicy(max_attempts=4)
        engine, got_policy, owned = resolve_flow_engine(
            None, None, EngineConfig(retry_policy=policy), "my_flow")
        assert owned is True
        assert got_policy is policy
        assert engine.config is not None

    def test_config_plus_legacy_kwargs_is_an_error(self):
        with pytest.raises(ValueError, match="not both"):
            resolve_flow_engine(EvaluationEngine(), None, EngineConfig(),
                                "my_flow")

    def test_no_engine_no_config_passes_through(self):
        engine, policy, owned = resolve_flow_engine(None, None, None, "f")
        assert engine is None and policy is None and owned is False
