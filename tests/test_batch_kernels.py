"""Differential conformance harness for the batched evaluation kernels.

The batched path (:mod:`repro.analysis.batch` + the engine's ``batcher``
hook) must be *indistinguishable* from the scalar path everywhere a user
can observe: results, cache keys, netlists, failure records, span-tree
shapes and manifest digests.  This file is the gate — every cell of the

    seed x topology x {scalar, batched} x {serial, parallel}
         x {fault, no-fault} x {surrogate on, off}

matrix runs both paths and cross-checks them, plus hypothesis properties
for the stamp kernels themselves.

Numerical contract (documented in ``repro.analysis.batch``):

* assembled stamps are bitwise identical to ``MnaSystem.linear_stamps``;
* a singleton batch delegates to the scalar dispatcher bit-identically;
* K >= 2 batched solves match scalar ones to rtol 1e-9 (the stacked
  LAPACK ``gesv`` and scipy's LU are different factorization flavours),
  transient trajectories to rtol 1e-6 (step-by-step accumulation);
* within one mode, reruns (and serial vs parallel executors) are
  bit-identical, and so are their manifest digests.
"""

import os
import threading

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis import api
from repro.analysis.ac import logspace_frequencies
from repro.analysis.api import AcSpec, DcSpec, NoiseSpec, TranSpec
from repro.analysis.batch import (
    BatchTopologyError,
    StampPlan,
    batched_dc,
    run_batch,
    topology_signature,
)
from repro.analysis.mna import (
    BatchSingularError,
    MnaSystem,
    SingularCircuitError,
    mos_capacitances,
    solve_dense,
    solve_dense_batched,
)
from repro.circuits.library import (
    common_source_amp,
    five_transistor_ota,
    rc_ladder,
    rlc_tank,
    voltage_divider,
)
from repro.circuits.netlist import Circuit
from repro.engine import (
    EngineConfig,
    EvalCache,
    EvaluationEngine,
    FaultInjector,
    ServeConfig,
    SurrogateConfig,
    Tracer,
    build_manifest,
    is_failure,
    manifest_digest,
    validate_manifest,
)
from repro.opt.anneal import AnnealSchedule
from repro.serve import Broker, Workload
from repro.core.specs import Spec, SpecSet
from repro.synthesis import DesignSpace
from repro.synthesis.simulation_based import (
    BatchEvaluator,
    SimulationBasedSizer,
    SimulationEvaluator,
)

RTOL = 1e-9
TRAN_RTOL = 1e-6


# ----------------------------------------------------------------------
# Topology families: same-topology variants parameterized by one factor
# ----------------------------------------------------------------------

def _rc(f: float) -> Circuit:
    return rc_ladder(4, r=1e3 * f, c=1e-12 * (0.5 + f))


def _tank(f: float) -> Circuit:
    return rlc_tank(r=50.0 * f, l=1e-9 * f, c=1e-12 / f)


def _divider(f: float) -> Circuit:
    return voltage_divider(r1=1e3 * f, r2=2e3 / f, vin=1.0 + f)


def _cs_amp(f: float) -> Circuit:
    return common_source_amp(w=20e-6 * f, r_load=10e3 * f)


LINEAR_FAMILIES = {"rc_ladder": _rc, "rlc_tank": _tank, "divider": _divider}

FACTORS = st.lists(st.floats(min_value=0.1, max_value=8.0,
                             allow_nan=False, allow_infinity=False),
                   min_size=2, max_size=6)


def _assert_op_close(a, b, rtol=RTOL):
    assert set(a.voltages) == set(b.voltages)
    for net, v in a.voltages.items():
        assert v == pytest.approx(b.voltages[net], rel=rtol, abs=1e-15)
    assert set(a.branch_currents) == set(b.branch_currents)
    for name, i in a.branch_currents.items():
        assert i == pytest.approx(b.branch_currents[name], rel=rtol,
                                  abs=1e-15)


def _assert_ac_close(a, b, rtol=RTOL):
    assert np.array_equal(a.freqs, b.freqs)
    assert set(a.phasors) == set(b.phasors)
    for net in a.phasors:
        np.testing.assert_allclose(a.phasors[net], b.phasors[net],
                                   rtol=rtol, atol=1e-18)


# ----------------------------------------------------------------------
# Hypothesis properties: the stamp kernels themselves
# ----------------------------------------------------------------------

class TestStampProperties:
    @settings(max_examples=20, deadline=None)
    @given(FACTORS)
    def test_assembled_stamps_bitwise_equal_linear_stamps(self, factors):
        """Property: every (n, n) slice of the stacked assembly equals the
        scalar ``MnaSystem.linear_stamps`` *bitwise* — not just rtol."""
        for make in LINEAR_FAMILIES.values():
            circuits = [make(f) for f in factors]
            plan = StampPlan(circuits[0])
            G, C, b_dc, b_ac = plan.assemble(plan.param_block(circuits))
            for k, circuit in enumerate(circuits):
                Gs, Cs, bs, bas = MnaSystem(circuit).linear_stamps()
                assert np.array_equal(G[k], Gs)
                assert np.array_equal(C[k], Cs)
                assert np.array_equal(b_dc[k], bs)
                assert np.array_equal(b_ac[k], bas)

    @settings(max_examples=15, deadline=None)
    @given(FACTORS)
    def test_batch_order_invariance(self, factors):
        """Property: member k's result does not depend on who its batch
        neighbours are or where it sits in the stack."""
        circuits = [_rc(f) for f in factors]
        spec = AcSpec(freqs=logspace_frequencies(1e3, 1e8, 3))
        forward = run_batch(circuits, spec)
        perm = list(reversed(range(len(circuits))))
        backward = run_batch([circuits[i] for i in perm], spec)
        for pos, k in enumerate(perm):
            a, b = forward[k], backward[pos]
            for net in a.phasors:
                assert np.array_equal(a.phasors[net], b.phasors[net])

    @settings(max_examples=15, deadline=None)
    @given(st.floats(min_value=0.1, max_value=8.0))
    def test_singleton_batch_is_bit_identical_to_scalar(self, f):
        """Property: K=1 delegates to ``api.run`` — bitwise, not rtol."""
        circuit = _rc(f)
        specs = [
            DcSpec(),
            AcSpec(freqs=logspace_frequencies(1e3, 1e8, 2)),
            TranSpec(t_stop=2e-8, dt=1e-9),
            NoiseSpec(out="n4", freqs=np.logspace(3, 7, 5)),
        ]
        for spec in specs:
            batched = run_batch([circuit], spec)[0]
            scalar = api.run(circuit, spec)
            if isinstance(spec, DcSpec):
                assert np.array_equal(batched.x, scalar.x)
            elif isinstance(spec, AcSpec):
                for net in scalar.phasors:
                    assert np.array_equal(batched.phasors[net],
                                          scalar.phasors[net])
            elif isinstance(spec, TranSpec):
                assert np.array_equal(batched.times, scalar.times)
                for net in scalar.voltages:
                    assert np.array_equal(batched.voltages[net],
                                          scalar.voltages[net])
            else:
                assert np.array_equal(batched.output_psd, scalar.output_psd)

    def test_topology_signature_stable_across_sizings(self):
        assert topology_signature(_rc(0.5)) == topology_signature(_rc(4.0))
        assert topology_signature(_rc(1.0)) != topology_signature(_tank(1.0))


# ----------------------------------------------------------------------
# run_batch: every spec kind, conformance + fallback accounting
# ----------------------------------------------------------------------

def _counted(fn):
    """Run ``fn`` under a fresh traced span; return (value, counters)."""
    tracer = Tracer()
    with tracer.span("kernels"):
        value = fn()
    return value, dict(tracer.telemetry.counters)


class TestRunBatchConformance:
    FACTORS = [0.4, 1.0, 2.5, 6.0]

    def circuits(self, make=_rc):
        return [make(f) for f in self.FACTORS]

    def test_dc_conformance(self):
        circuits = self.circuits()
        batched, counters = _counted(lambda: run_batch(circuits, DcSpec()))
        scalar = [api.run(c, DcSpec()) for c in circuits]
        for b, s in zip(batched, scalar):
            _assert_op_close(b, s)
        assert counters["kernel.batched_solves"] == 1
        assert "kernel.fallback.dc" not in counters

    def test_ac_conformance(self):
        circuits = self.circuits(_tank)
        spec = AcSpec(freqs=logspace_frequencies(1e6, 1e10, 4))
        batched, counters = _counted(lambda: run_batch(circuits, spec))
        scalar = [api.run(c, spec) for c in circuits]
        for b, s in zip(batched, scalar):
            _assert_ac_close(b, s)
        assert counters["kernel.batched_solves"] == len(spec.freqs)

    def test_transient_conformance(self):
        circuits = self.circuits()
        spec = TranSpec(t_stop=5e-8, dt=1e-9)
        batched, _ = _counted(lambda: run_batch(circuits, spec))
        scalar = [api.run(c, spec) for c in circuits]
        for b, s in zip(batched, scalar):
            assert np.array_equal(b.times, s.times)
            assert set(b.voltages) == set(s.voltages)
            for net in s.voltages:
                np.testing.assert_allclose(b.voltages[net],
                                           s.voltages[net],
                                           rtol=TRAN_RTOL, atol=1e-15)

    def test_noise_conformance(self):
        circuits = self.circuits()
        spec = NoiseSpec(out="n4", freqs=np.logspace(3, 7, 7))
        batched, _ = _counted(lambda: run_batch(circuits, spec))
        scalar = [api.run(c, spec) for c in circuits]
        for b, s in zip(batched, scalar):
            np.testing.assert_allclose(b.output_psd, s.output_psd,
                                       rtol=RTOL)
            assert ({(c.device, c.kind) for c in b.contributions}
                    == {(c.device, c.kind) for c in s.contributions})

    def test_nonlinear_topology_falls_back_bitwise(self):
        """Nonlinear DC/transient replay the scalar path per member — the
        results are the *same objects the scalar loop makes*, so bitwise."""
        circuits = self.circuits(_cs_amp)
        batched, counters = _counted(lambda: run_batch(circuits, DcSpec()))
        scalar = [api.run(c, DcSpec()) for c in circuits]
        for b, s in zip(batched, scalar):
            assert np.array_equal(b.x, s.x)
            assert b.iterations == s.iterations
        assert counters["kernel.fallback.dc"] == len(circuits)

    def test_nonlinear_ac_stays_batched(self):
        """AC on a MOS topology batches the sweep over per-member
        linearizations — no fallback, rtol conformance."""
        circuits = self.circuits(_cs_amp)
        spec = AcSpec(freqs=logspace_frequencies(1e4, 1e9, 3))
        batched, counters = _counted(lambda: run_batch(circuits, spec))
        scalar = [api.run(c, spec) for c in circuits]
        for b, s in zip(batched, scalar):
            _assert_ac_close(b, s)
        assert "kernel.fallback.ac" not in counters
        assert counters["kernel.batched_solves"] == len(spec.freqs)

    def test_warm_start_and_shared_op_fall_back(self):
        circuits = self.circuits()
        x0 = np.zeros(MnaSystem(circuits[0]).size)
        _, counters = _counted(
            lambda: run_batch(circuits, DcSpec(x0=x0)))
        assert counters["kernel.fallback.dc"] == len(circuits)
        op = api.run(circuits[0], DcSpec())
        spec = AcSpec(freqs=np.array([1e6]), op=op)
        _, counters = _counted(lambda: run_batch(circuits, spec))
        assert counters["kernel.fallback.ac"] == len(circuits)

    def test_singular_member_aborts_and_replays_scalar(self):
        """A value-induced bad member aborts the stacked solve with its
        index attributed; run_batch then replays the scalar loop, which
        raises the same SingularCircuitError a scalar sweep would, and
        ``kernel.batch_aborts`` records the abort."""
        from repro.analysis.batch import batched_ac
        circuits = [_rc(0.5), rc_ladder(4, r=1e3, c=np.inf), _rc(2.0)]
        spec = AcSpec(freqs=np.array([1e6]))
        with np.errstate(invalid="ignore"):
            with pytest.raises(BatchSingularError) as err:
                batched_ac(circuits, spec.freqs)
            assert err.value.members == (1,)

            def run():
                with pytest.raises(SingularCircuitError):
                    run_batch(circuits, spec)
            _, counters = _counted(run)
            assert counters["kernel.batch_aborts"] == 1
            assert counters["kernel.fallback.ac"] == len(circuits)
            # The scalar loop fails the same way at the same member.
            assert api.run(circuits[0], spec) is not None
            with pytest.raises(SingularCircuitError):
                api.run(circuits[1], spec)

    def test_mixed_topology_batch_is_rejected(self):
        with pytest.raises(BatchTopologyError):
            run_batch([_rc(1.0), _tank(1.0)], DcSpec())

    def test_empty_batch(self):
        assert run_batch([], DcSpec()) == []


# ----------------------------------------------------------------------
# Satellite guards: mna dtype/shape checks and error normalization
# ----------------------------------------------------------------------

class TestMnaGuards:
    def test_stamp_nonlinear_rejects_batch_tensors(self):
        system = MnaSystem(_cs_amp(1.0))
        n = system.size
        x = np.zeros(n)
        G = np.zeros((n, n))
        rhs = np.zeros(n)
        with pytest.raises(ValueError, match="repro.analysis.batch"):
            system.stamp_nonlinear(np.zeros((3, n)), G, rhs)
        with pytest.raises(ValueError, match="length"):
            system.stamp_nonlinear(np.zeros(n + 1), G, rhs)
        with pytest.raises(TypeError, match="float"):
            system.stamp_nonlinear(np.zeros(n, dtype=complex), G, rhs)
        with pytest.raises(ValueError, match="Jacobian"):
            system.stamp_nonlinear(x, np.zeros((3, n, n)), rhs)
        system.stamp_nonlinear(x, G, rhs)  # the scalar shapes still work

    def test_mos_capacitances_guards(self):
        from types import SimpleNamespace
        dev = _cs_amp(1.0).mosfets[0]
        cgs, cgd, cgb = mos_capacitances(dev, "saturation")
        assert cgs > 0 and cgd > 0 and cgb >= 0
        batched = SimpleNamespace(name=dev.name, model=dev.model,
                                  w=np.array([1e-6, 2e-6]), l=dev.l,
                                  m=dev.m)
        with pytest.raises(TypeError, match="scalar W/L"):
            mos_capacitances(batched, "saturation")
        with pytest.raises(ValueError, match="unknown operating region"):
            mos_capacitances(dev, "weak-inversion")

    def test_solve_dense_normalizes_linalgerror(self):
        singular = np.zeros((2, 2))
        with pytest.raises(SingularCircuitError) as err:
            solve_dense(singular, np.ones(2))
        assert not isinstance(err.value, BatchSingularError)
        with pytest.raises(SingularCircuitError, match="non-finite"):
            solve_dense(np.array([[np.inf, 0.0], [0.0, 1.0]]), np.ones(2))
        with pytest.raises(ValueError, match="solve_dense_batched"):
            solve_dense(np.zeros((2, 3, 3)), np.ones(3))

    def test_solve_dense_batched_names_singular_members(self):
        A = np.stack([np.eye(2), np.zeros((2, 2)), 2 * np.eye(2),
                      np.zeros((2, 2))])
        with pytest.raises(BatchSingularError) as err:
            solve_dense_batched(A, np.ones(2))
        assert err.value.members == (1, 3)
        bad = np.stack([np.eye(2), np.array([[np.inf, 0], [0, 1]])])
        with pytest.raises(BatchSingularError) as err:
            solve_dense_batched(bad, np.ones(2))
        assert err.value.members == (1,)
        with pytest.raises(ValueError, match="solve_dense"):
            solve_dense_batched(np.eye(2), np.ones(2))

    def test_solve_dense_batched_matches_solve_dense(self):
        rng = np.random.default_rng(7)
        A = rng.normal(size=(5, 4, 4)) + 4 * np.eye(4)
        b = rng.normal(size=(5, 4))
        X = solve_dense_batched(A, b)
        for k in range(5):
            np.testing.assert_allclose(X[k], solve_dense(A[k], b[k]),
                                       rtol=RTOL, atol=1e-15)


# ----------------------------------------------------------------------
# Satellite: cache enumeration under concurrent writers
# ----------------------------------------------------------------------

class TestCacheConcurrency:
    def test_items_under_concurrent_writers(self):
        cache = EvalCache(max_entries=512)
        stop = threading.Event()
        errors = []

        def writer(tag):
            i = 0
            try:
                while not stop.is_set():
                    cache.put(f"{tag}:{i}", i)
                    i += 1
            except Exception as exc:  # pragma: no cover - the assertion
                errors.append(exc)

        threads = [threading.Thread(target=writer, args=(t,))
                   for t in range(4)]
        for t in threads:
            t.start()
        try:
            for _ in range(300):
                snapshot = cache.items()
                assert isinstance(snapshot, list)
                for key, value in snapshot:
                    assert key.endswith(f":{value}")
        finally:
            stop.set()
            for t in threads:
                t.join()
        assert not errors

    def test_scan_disk_under_concurrent_writer(self, tmp_path):
        cache = EvalCache(max_entries=64, disk_dir=tmp_path)
        (tmp_path / "corrupt.pkl").write_bytes(b"\x00not-a-pickle")
        stop = threading.Event()

        def writer():
            i = 0
            while not stop.is_set():
                cache.put(f"w{i:04d}", {"v": i})
                i += 1

        thread = threading.Thread(target=writer)
        thread.start()
        try:
            for _ in range(50):
                for key, value in cache.scan_disk():
                    if key.startswith("w"):
                        assert value == {"v": int(key[1:])}
                    assert key != "corrupt"
        finally:
            stop.set()
            thread.join()
        # The corrupt entry is skipped, everything readable is yielded.
        keys = [k for k, _ in cache.scan_disk()]
        assert "corrupt" not in keys and keys == sorted(keys)


# ----------------------------------------------------------------------
# The differential matrix: engine-level scalar vs batched
# ----------------------------------------------------------------------

OTA_SPACE = DesignSpace(
    variables={"w_in": (5e-6, 500e-6), "w_load": (5e-6, 200e-6),
               "w_tail": (5e-6, 200e-6), "i_bias": (2e-6, 500e-6)},
    fixed={"l_in": 2e-6, "l_load": 2e-6, "l_tail": 2e-6,
           "c_load": 2e-12, "vdd": 3.3})

OTA_SPECS = SpecSet([
    Spec.at_least("gain_db", 40.0),
    Spec.at_least("gbw", 10e6),
    Spec.minimize("power", good=1e-4),
])

SCHEDULE = AnnealSchedule(moves_per_temperature=15, cooling=0.8,
                          max_evaluations=120, stop_after_stale=4)


def _ota_candidates(seed: int, n: int) -> list[dict[str, float]]:
    rng = np.random.default_rng(seed)
    points = []
    for _ in range(n):
        draw = {name: lo + (hi - lo) * rng.random()
                for name, (lo, hi) in OTA_SPACE.variables.items()}
        points.append(OTA_SPACE.complete(draw))
    return points


# Injected fault rate for the faulted matrix cells; the CI `kernels` job
# pins REPRO_FAULT_RATE=0.1, locally the default keeps the cells hot.
FAULT_RATE = float(os.environ.get("REPRO_FAULT_RATE", "0.2"))


def _evaluator() -> SimulationEvaluator:
    return SimulationEvaluator(builder=five_transistor_ota,
                               raise_failures=True)


def _filter_kernel_counters(tree):
    """Span-tree copy with ``kernel.*`` counter keys removed — the only
    place the two modes may legitimately differ."""
    if isinstance(tree, list):
        return [_filter_kernel_counters(t) for t in tree]
    out = {}
    for key, value in tree.items():
        if key == "counters":
            out[key] = {k: v for k, v in value.items()
                        if not k.startswith("kernel.")}
        elif key == "children":
            out[key] = _filter_kernel_counters(value)
        else:
            out[key] = value
    return out


def _run_cell(seed: int, *, batched: bool, executor: str,
              fault_rate: float = 0.0, n_points: int = 10):
    """One matrix cell: fixed candidate stream through map_evaluate."""
    injector = FaultInjector(rate=fault_rate, seed=seed) \
        if fault_rate else None
    config = EngineConfig(executor=executor, workers=2, cache=True,
                          trace=True, fault_injector=injector,
                          batch_kernel=batched)
    engine = EvaluationEngine.from_config(config)
    evaluator = _evaluator()
    batcher = BatchEvaluator(evaluator) if batched else None
    points = _ota_candidates(seed, n_points)
    with engine.tracer.span("differential"):
        results = engine.map_evaluate(evaluator.simulate, points,
                                      key_fn=evaluator.cache_key,
                                      batcher=batcher)
    report = engine.report()
    manifest = build_manifest("differential", engine, seed=seed,
                              config=config)
    cache_keys = sorted(key for key, _ in engine.cache.items())
    structure = engine.tracer.structure()
    netlists = [repr(evaluator.build_testbench(p)) for p in points]
    engine.close()
    return {
        "results": results,
        "report": report,
        "manifest": manifest,
        "digest": manifest_digest(manifest),
        "cache_keys": cache_keys,
        "structure": structure,
        "netlists": netlists,
    }


def _assert_results_conform(scalar, batched, rtol=RTOL):
    assert len(scalar) == len(batched)
    for s, b in zip(scalar, batched):
        if is_failure(s) or is_failure(b):
            assert is_failure(s) and is_failure(b)
            assert s.exception_type == b.exception_type
            continue
        assert set(s) == set(b)
        for name in s:
            assert b[name] == pytest.approx(s[name], rel=rtol, abs=1e-300)


class TestEngineDifferential:
    @pytest.mark.parametrize("seed", [3, 11])
    @pytest.mark.parametrize("fault_rate", [0.0, FAULT_RATE])
    def test_matrix_cell(self, seed, fault_rate):
        # Faulted cells stretch the candidate stream so at least one
        # injection lands even at low REPRO_FAULT_RATE settings (the
        # injector is deterministic per token, so every cell sees the
        # exact same hits).
        n_points = max(10, int(np.ceil(3.0 / fault_rate))) \
            if fault_rate else 10
        cells = {
            (mode, executor): _run_cell(seed, batched=(mode == "batched"),
                                        executor=executor,
                                        fault_rate=fault_rate,
                                        n_points=n_points)
            for mode in ("scalar", "batched")
            for executor in ("serial", "parallel")
        }
        ss = cells[("scalar", "serial")]
        sp = cells[("scalar", "parallel")]
        bs = cells[("batched", "serial")]
        bp = cells[("batched", "parallel")]

        # Netlists and cache keys: identical across every cell.
        for cell in cells.values():
            assert cell["netlists"] == ss["netlists"]
            assert cell["cache_keys"] == ss["cache_keys"]

        # Within-mode, serial == parallel bit-identically.
        for a, b in ((ss, sp), (bs, bp)):
            assert len(a["results"]) == len(b["results"])
            for x, y in zip(a["results"], b["results"]):
                if is_failure(x):
                    assert is_failure(y)
                    assert x.exception_type == y.exception_type
                else:
                    assert x == y

        # Across modes, per-point conformance at rtol.
        _assert_results_conform(ss["results"], bs["results"])

        # Failure records (injected faults) match across all four cells.
        records = [
            [{k: v for k, v in rec.items() if k != "elapsed_s"}
             for rec in cell["report"]["failures"]["records"]]
            for cell in cells.values()
        ]
        assert all(r == records[0] for r in records[1:])
        if fault_rate:
            assert ss["report"]["failures"]["total"] > 0
            assert bs["report"]["kernel"]["fault_exclusions"] \
                == ss["report"]["failures"]["total"]

        # Span-tree shapes agree across modes once kernel.* counters —
        # the batched path's only deliberate addition — are filtered.
        assert _filter_kernel_counters(bs["structure"]) \
            == _filter_kernel_counters(ss["structure"])

        # The batched cells actually batched something (all points share
        # the OTA topology, none are fault-scheduled in the clean run).
        kernel = bs["report"]["kernel"]
        assert kernel["groups"] >= 1
        if not fault_rate:
            assert kernel["batched_points"] == len(bs["results"])
            assert kernel["scalar_points"] == 0
        else:
            assert kernel["batched_points"] + kernel["scalar_points"] \
                == len(bs["results"])
        for cell in cells.values():
            validate_manifest(cell["manifest"])

    @pytest.mark.parametrize("batched", [False, True])
    def test_rerun_determinism_and_manifest_digest(self, batched):
        a = _run_cell(5, batched=batched, executor="serial")
        b = _run_cell(5, batched=batched, executor="serial")
        assert a["results"] == b["results"]
        assert a["digest"] == b["digest"]
        assert a["structure"] == b["structure"]

    @pytest.mark.parametrize("batched", [False, True])
    def test_sizing_with_surrogate_is_mode_deterministic(self, batched):
        def run():
            config = EngineConfig(
                cache=True, batch_kernel=batched,
                surrogate=SurrogateConfig(min_fit=16, refit_every=8))
            sizer = SimulationBasedSizer(
                _evaluator(), OTA_SPACE, OTA_SPECS, schedule=SCHEDULE,
                seed=7, batch_size=8, config=config)
            engine = sizer.engine
            result = sizer.run()
            return result, engine.report()

        (r1, rep1), (r2, rep2) = run(), run()
        assert r1.sizes == r2.sizes
        assert r1.cost == r2.cost
        assert r1.history == r2.history
        assert rep1["surrogate"]["predictions"] == \
            rep2["surrogate"]["predictions"]
        if batched:
            assert rep1["kernel"]["batches"] >= 1
        else:
            assert rep1["kernel"]["batches"] == 0

    def test_sizing_scalar_vs_batched_without_surrogate(self):
        """Unscreened sizing: the two modes walk the same annealing
        trajectory on this workload (per-point costs agree to ~1e-9,
        far below the annealer's acceptance contrasts here)."""
        def run(batched):
            config = EngineConfig(cache=True, batch_kernel=batched)
            sizer = SimulationBasedSizer(
                _evaluator(), OTA_SPACE, OTA_SPECS, schedule=SCHEDULE,
                seed=11, batch_size=8, config=config)
            engine = sizer.engine
            result = sizer.run()
            return result, engine.report()

        (rs, _), (rb, rep_b) = run(False), run(True)
        assert rs.evaluations == rb.evaluations
        assert rb.cost == pytest.approx(rs.cost, rel=1e-6)
        for name in rs.sizes:
            assert rb.sizes[name] == pytest.approx(rs.sizes[name], rel=1e-6)
        assert rep_b["kernel"]["batched_points"] > 0


# ----------------------------------------------------------------------
# Serve layer: MicroBatcher batches ride the kernel path
# ----------------------------------------------------------------------

class TestServeBatched:
    def test_workload_batcher_reaches_kernel(self):
        evaluator = _evaluator()
        config = EngineConfig(
            cache=True,
            serve=ServeConfig(max_batch=8, max_wait_ms=100.0))
        engine = EvaluationEngine.from_config(config)
        broker = Broker(engine, config=config.serve, owns_engine=True)
        broker.register(Workload("ota", evaluator.simulate,
                                 key_fn=evaluator.cache_key,
                                 batcher=BatchEvaluator(evaluator)))
        points = _ota_candidates(21, 8)
        with broker:
            handles = [broker.submit("ota", p) for p in points]
            results = [h.result(timeout=60) for h in handles]
        report = engine.report()
        scalar = [_evaluator().simulate(p) for p in points]
        _assert_results_conform(scalar, results)
        kernel = report["kernel"]
        # Every evaluated point went through the batcher hook, whether it
        # was vectorized or (sub-min_batch micro-batches) fell back.
        assert kernel["groups"] >= 1
        assert kernel["batched_points"] + kernel["scalar_points"] \
            == report["counters"]["engine.evaluations"]
