"""Tests for device generators, constraint extraction and stacking."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.circuits.devices import (
    NMOS_DEFAULT,
    PMOS_DEFAULT,
    Capacitor,
    Mosfet,
    Resistor,
)
from repro.circuits.library import five_transistor_ota, two_stage_miller
from repro.circuits.netlist import Circuit
from repro.layout.constraints import extract_constraints
from repro.layout.devicegen import (
    generate_capacitor,
    generate_device,
    generate_mosfet,
    generate_resistor,
    good_finger_count,
)
from repro.layout.stacking import (
    enumerate_stackings,
    extract_stacks,
    minimum_stack_count,
    stack_junction_savings,
)
from repro.layout.technology import (
    DEFAULT_TECH,
    LAYER_CONTACT,
    LAYER_NDIFF,
    LAYER_NWELL,
    LAYER_PDIFF,
    LAYER_POLY,
)


def _mos(name="m1", w=10e-6, l=1e-6, nodes=("d", "g", "s", "0"),
         model=NMOS_DEFAULT):
    return Mosfet(name, nodes, model, w, l)


class TestMosGenerator:
    def test_single_finger_structure(self):
        lay = generate_mosfet(_mos(), fingers=1)
        cell = lay.cell
        assert len(cell.shapes_on(LAYER_NDIFF)) == 1
        polys = cell.shapes_on(LAYER_POLY)
        assert len(polys) == 1  # one gate, no head strap needed
        assert set(cell.ports) == {"g", "s", "d"}

    def test_fingers_share_regions(self):
        one = generate_mosfet(_mos(), fingers=1)
        four = generate_mosfet(_mos(), fingers=4)
        # 4 fingers → 5 S/D regions vs 2, but each finger is 1/4 as tall:
        # the folded device must be wider and much shorter.
        assert four.width > one.width
        assert four.height < one.height

    def test_even_fingers_source_on_both_edges(self):
        lay = generate_mosfet(_mos(), fingers=2)
        assert lay.left_net == "s"
        assert lay.right_net == "s"

    def test_odd_fingers_drain_on_right(self):
        lay = generate_mosfet(_mos(), fingers=1)
        assert lay.left_net == "s" and lay.right_net == "d"

    def test_pmos_gets_nwell(self):
        dev = _mos(model=PMOS_DEFAULT, nodes=("d", "g", "s", "vdd"))
        lay = generate_mosfet(dev)
        assert lay.cell.shapes_on(LAYER_NWELL)
        assert lay.cell.shapes_on(LAYER_PDIFF)

    def test_contacts_present(self):
        lay = generate_mosfet(_mos(), fingers=2)
        assert len(lay.cell.shapes_on(LAYER_CONTACT)) >= 3

    def test_port_nets(self):
        lay = generate_mosfet(_mos())
        assert lay.port_nets == {"g": "g", "s": "s", "d": "d", "b": "0"}

    def test_bad_fingers(self):
        with pytest.raises(ValueError):
            generate_mosfet(_mos(), fingers=0)

    @given(st.floats(min_value=2e-6, max_value=500e-6),
           st.integers(min_value=1, max_value=8))
    @settings(max_examples=30, deadline=None)
    def test_area_scales_with_width(self, w, fingers):
        lay = generate_mosfet(_mos(w=w), fingers=fingers)
        # Active diffusion area must at least cover W·L.
        diff = lay.cell.shapes_on(LAYER_NDIFF)[0].rect
        assert diff.height * lay.fingers >= w * 1e9 * 0.9

    def test_good_finger_count_wide_device(self):
        wide = _mos(w=500e-6, l=1e-6)
        assert good_finger_count(wide) > 1
        narrow = _mos(w=5e-6, l=1e-6)
        assert good_finger_count(narrow) == 1


class TestPassiveGenerators:
    def test_resistor_squares(self):
        dev = Resistor("r1", ("a", "b"), 100e3)
        lay = generate_resistor(dev)
        assert set(lay.cell.ports) == {"a", "b"}
        assert lay.kind == "resistor"

    def test_large_resistor_serpentines(self):
        small = generate_resistor(Resistor("r1", ("a", "b"), 10e3))
        big = generate_resistor(Resistor("r2", ("a", "b"), 10e6))
        assert big.bbox().area > small.bbox().area
        # Serpentine: the big one must not be a single long strip.
        assert big.bbox().width < 100 * big.bbox().height

    def test_capacitor_area_matches_density(self):
        c_val = 2e-12
        lay = generate_capacitor(Capacitor("c1", ("t", "b"), c_val))
        top = lay.cell.shapes_on("captop")[0].rect
        area_m2 = top.area * 1e-18
        assert area_m2 == pytest.approx(c_val / DEFAULT_TECH.cap_density,
                                        rel=0.1)

    def test_dispatch(self):
        assert generate_device(_mos()).kind == "mos"
        assert generate_device(Resistor("r", ("a", "b"), 1e3)).kind == \
            "resistor"
        with pytest.raises(TypeError):
            from repro.circuits.devices import VoltageSource
            generate_device(VoltageSource("v", ("a", "0")))


class TestConstraintExtraction:
    def test_ota_diff_pair_found(self):
        cs = extract_constraints(five_transistor_ota())
        pairs = {frozenset((p.device_a, p.device_b))
                 for p in cs.symmetry_pairs}
        assert frozenset(("m1", "m2")) in pairs

    def test_ota_mirror_found(self):
        cs = extract_constraints(five_transistor_ota())
        groups = [set(g.devices) for g in cs.match_groups]
        assert {"m3", "m4"} in groups

    def test_net_pairs_differential(self):
        cs = extract_constraints(five_transistor_ota())
        pairs = {frozenset((n.net_a, n.net_b)) for n in cs.net_pairs}
        assert frozenset(("inp", "inn")) in pairs

    def test_two_stage_constraints(self):
        cs = extract_constraints(two_stage_miller())
        assert cs.symmetry_pairs  # diff pair must be found
        assert len(cs.match_groups) >= 2

    def test_no_false_pair_on_different_sizes(self):
        c = Circuit("t")
        c.mosfet("ma", "d1", "g1", "s", "0", NMOS_DEFAULT, 10e-6, 1e-6)
        c.mosfet("mb", "d2", "g2", "s", "0", NMOS_DEFAULT, 20e-6, 1e-6)
        cs = extract_constraints(c)
        assert not cs.symmetry_pairs

    def test_partner_lookup(self):
        cs = extract_constraints(five_transistor_ota())
        assert cs.partner_of("m1") == "m2"
        assert cs.partner_of("m5") in (None, "m6")


class TestStacking:
    def _chain(self, n: int) -> Circuit:
        """n series devices: a perfect single stack."""
        c = Circuit("chain")
        for i in range(n):
            c.mosfet(f"m{i}", f"n{i + 1}", f"g{i}", f"n{i}", "0",
                     NMOS_DEFAULT, 10e-6, 1e-6)
        return c

    def test_series_chain_is_one_stack(self):
        c = self._chain(5)
        result = extract_stacks(c)
        assert result.stack_count == 1
        assert result.merged_junctions == 4

    def test_min_count_matches_euler_bound(self):
        c = self._chain(5)
        assert minimum_stack_count(c.mosfets) == 1

    def test_star_needs_multiple_stacks(self):
        # Four devices all sharing one net: 4 odd vertices → 2 stacks.
        c = Circuit("star")
        for i in range(4):
            c.mosfet(f"m{i}", "hub", f"g{i}", f"leaf{i}", "0",
                     NMOS_DEFAULT, 10e-6, 1e-6)
        assert minimum_stack_count(c.mosfets) == 2
        result = extract_stacks(c)
        assert result.stack_count == 2

    def test_extraction_achieves_minimum(self):
        ota = five_transistor_ota()
        result = extract_stacks(ota)
        from repro.layout.stacking import group_devices
        expected = sum(minimum_stack_count(devs)
                       for devs in group_devices(ota).values())
        assert result.stack_count == expected

    def test_incompatible_devices_not_stacked(self):
        c = Circuit("mix")
        c.mosfet("mn", "x", "g1", "y", "0", NMOS_DEFAULT, 10e-6, 1e-6)
        c.mosfet("mp", "y", "g2", "z", "vdd", PMOS_DEFAULT, 10e-6, 1e-6)
        result = extract_stacks(c)
        assert result.stack_count == 2  # polarity split

    def test_different_widths_not_stacked(self):
        c = Circuit("widths")
        c.mosfet("ma", "x", "g1", "y", "0", NMOS_DEFAULT, 10e-6, 1e-6)
        c.mosfet("mb", "y", "g2", "z", "0", NMOS_DEFAULT, 30e-6, 1e-6)
        assert extract_stacks(c).stack_count == 2

    def test_stacks_validate(self):
        result = extract_stacks(two_stage_miller())
        for stack in result.stacks:
            stack.validate()  # raises on inconsistency

    def test_enumeration_finds_all_optimal(self):
        c = self._chain(3)
        partitions = enumerate_stackings(c.mosfets)
        # A 3-chain has exactly one optimal stacking (the full trail; its
        # reversal is the same physical stack and is deduplicated).
        assert len(partitions) == 1
        assert len(partitions[0]) == 1
        assert len(partitions[0][0]) == 3

    def test_enumeration_grows_fast(self):
        sizes = [2, 4, 6]
        counts = []
        for n in sizes:
            c = Circuit("par")
            # n parallel devices between the same two nets: worst case.
            for i in range(n):
                c.mosfet(f"m{i}", "a", f"g{i}", "b", "0",
                         NMOS_DEFAULT, 10e-6, 1e-6)
            counts.append(len(enumerate_stackings(c.mosfets,
                                                  limit=50_000)))
        assert counts[0] < counts[1] < counts[2]

    def test_junction_savings_fraction(self):
        c = self._chain(5)
        result = extract_stacks(c)
        assert stack_junction_savings(result, c) == 1.0


class TestGuardRing:
    def _ringed_cell(self):
        from repro.layout.geometry import Cell, Rect
        from repro.layout.guardring import add_guard_ring
        cell = Cell("victim")
        cell.add_shape("metal1", Rect(0, 0, 20_000, 10_000), "out")
        return add_guard_ring(cell, net="0")

    def test_ring_encloses_original(self):
        from repro.layout.geometry import Rect
        result = self._ringed_cell()
        original = Rect(0, 0, 20_000, 10_000)
        ring = result.ring_rect
        assert ring.x1 < original.x1 and ring.x2 > original.x2
        assert ring.y1 < original.y1 and ring.y2 > original.y2

    def test_ring_contacted(self):
        result = self._ringed_cell()
        assert result.contact_count > 10
        assert result.cell.shapes_on("contact")

    def test_ring_port_created(self):
        result = self._ringed_cell()
        assert "guard_0" in result.cell.ports

    def test_well_ring_adds_nwell(self):
        from repro.layout.geometry import Cell, Rect
        from repro.layout.guardring import add_guard_ring
        cell = Cell("v")
        cell.add_shape("metal1", Rect(0, 0, 5_000, 5_000))
        result = add_guard_ring(cell, net="vdd", well_ring=True)
        assert result.cell.shapes_on("nwell")

    def test_attenuation_model(self):
        from repro.layout.guardring import (
            guard_ring_attenuation,
            ring_resistance_estimate,
        )
        import pytest as _pytest
        result = self._ringed_cell()
        r_ring = ring_resistance_estimate(result)
        assert r_ring < 1.0  # many parallel contacts: well under an ohm
        att = guard_ring_attenuation(r_ring, 200.0)
        assert att < 0.05  # >20x reduction
        with _pytest.raises(ValueError):
            guard_ring_attenuation(-1.0, 10.0)

    def test_gds_export(self):
        from repro.layout.gdslite import read_gds_rect_count, write_gds
        result = self._ringed_cell()
        assert read_gds_rect_count(write_gds([result.cell])) > 10
