"""Tests for the Table 1 pulse detector, RF front-end, and hierarchy engine."""

import pytest

from repro.core.specs import Spec, SpecSet
from repro.synthesis import (
    DesignTask,
    FlowError,
    MANUAL_DESIGN,
    PulseDetectorDesign,
    cascade_iip3_dbm,
    cascade_noise_figure,
    default_plan_library,
    pulse_detector_performance,
    pulse_detector_specs,
    receiver_performance,
    run_design_task,
    synthesize_pulse_detector,
)
from repro.synthesis.hierarchy import StepKind
from repro.synthesis.rf_frontend import BlockSpec


class TestPulseDetectorModel:
    def test_manual_design_meets_all_specs(self):
        perf = pulse_detector_performance(MANUAL_DESIGN.sizes())
        assert pulse_detector_specs().all_satisfied(perf)

    def test_manual_matches_table1_column(self):
        """The calibrated manual point reproduces Table 1's manual column."""
        perf = pulse_detector_performance(MANUAL_DESIGN.sizes())
        assert perf["peaking_time"] == pytest.approx(1.1e-6, rel=0.05)
        assert perf["counting_rate"] == pytest.approx(200e3, rel=0.1)
        assert perf["noise_enc"] == pytest.approx(750.0, rel=0.1)
        assert perf["gain"] == pytest.approx(20.0, rel=0.05)
        assert perf["output_range"] >= 1.0
        assert perf["power"] == pytest.approx(40e-3, rel=0.1)
        assert perf["area"] == pytest.approx(0.7e-6, rel=0.15)

    def test_peaking_time_is_n_tau(self):
        d = PulseDetectorDesign(i_csa=1e-3, w_in=500e-6, c_fb=0.1e-12,
                                r_fb=50e6, tau=0.2e-6, i_shaper=0.3e-3)
        perf = pulse_detector_performance(d.sizes())
        assert perf["peaking_time"] == pytest.approx(4 * 0.2e-6)

    def test_noise_decreases_with_current(self):
        base = MANUAL_DESIGN.sizes()
        lo = pulse_detector_performance(dict(base, i_csa=0.5e-3))
        hi = pulse_detector_performance(dict(base, i_csa=4e-3))
        assert hi["noise_enc"] < lo["noise_enc"]

    def test_noise_has_optimum_in_width(self):
        """Capacitive matching: ENC is non-monotone in input width."""
        base = MANUAL_DESIGN.sizes()
        widths = [100e-6, 400e-6, 900e-6, 2000e-6, 3000e-6]
        encs = [pulse_detector_performance(dict(base, w_in=w))["noise_enc"]
                for w in widths]
        best = min(range(len(encs)), key=lambda i: encs[i])
        assert 0 < best < len(encs) - 1

    def test_rate_vs_reset_tradeoff(self):
        base = MANUAL_DESIGN.sizes()
        fast = pulse_detector_performance(dict(base, r_fb=10e6))
        slow = pulse_detector_performance(dict(base, r_fb=400e6))
        assert fast["counting_rate"] > slow["counting_rate"]
        assert fast["noise_enc"] > slow["noise_enc"]  # parallel noise

    def test_gain_capped_by_shaper(self):
        # Large C_fb needs more shaper gain than A_SHAPER_MAX provides, so
        # the chain cannot reach 20 V/fC there.
        base = MANUAL_DESIGN.sizes()
        perf = pulse_detector_performance(dict(base, c_fb=1e-12))
        assert perf["gain"] < 20.0 * 0.92


class TestPulseDetectorSynthesis:
    def test_synthesis_beats_manual_on_power(self):
        manual = pulse_detector_performance(MANUAL_DESIGN.sizes())
        result = synthesize_pulse_detector(seed=1)
        assert result.feasible
        ratio = manual["power"] / result.performance["power"]
        assert 3.0 <= ratio <= 16.0  # Table 1 reports ~5.7x

    def test_synthesis_meets_every_spec(self):
        result = synthesize_pulse_detector(seed=2)
        report = pulse_detector_specs().report(result.performance)
        assert report.all_satisfied

    def test_transient_verification_of_manual_design(self):
        """Simulating the built circuit confirms the model's peaking time."""
        from repro.synthesis import verified_peaking_time
        measured = verified_peaking_time(MANUAL_DESIGN)
        model = pulse_detector_performance(MANUAL_DESIGN.sizes())
        assert measured["peaking_time"] == pytest.approx(
            model["peaking_time"], rel=0.35)
        assert measured["gain"] == pytest.approx(model["gain"], rel=0.35)


class TestRfFrontend:
    def test_friis_single_block(self):
        blocks = [BlockSpec("lna", 20.0, 3.0, 0.0)]
        assert cascade_noise_figure(blocks) == pytest.approx(3.0)

    def test_friis_second_stage_suppressed_by_gain(self):
        lna = BlockSpec("lna", 20.0, 2.0, 0.0)
        noisy_mixer = BlockSpec("mixer", 10.0, 15.0, 5.0)
        nf = cascade_noise_figure([lna, noisy_mixer])
        assert nf < 4.0  # LNA gain suppresses mixer noise

    def test_iip3_dominated_by_late_stages(self):
        lna = BlockSpec("lna", 20.0, 2.0, 10.0)
        weak_vga = BlockSpec("vga", 20.0, 10.0, -10.0)
        iip3 = cascade_iip3_dbm([lna, weak_vga])
        # Referred to the input, the VGA's IIP3 is degraded by LNA gain.
        assert iip3 < -25.0

    def test_performance_dict_complete(self):
        params = {"lna_gain": 15.0, "lna_nf": 3.0, "lna_iip3": -5.0,
                  "mixer_gain": 10.0, "mixer_nf": 10.0, "mixer_iip3": 5.0,
                  "vga_gain": 40.0, "vga_nf": 15.0, "vga_iip3": 10.0}
        perf = receiver_performance(params)
        assert set(perf) == {"gain_db", "nf_db", "iip3_dbm", "sndr_db",
                             "power"}
        assert perf["gain_db"] == pytest.approx(15 + 10 - 2 + 40)

    def test_lower_nf_costs_power(self):
        base = {"lna_gain": 15.0, "lna_nf": 3.0, "lna_iip3": -5.0,
                "mixer_gain": 10.0, "mixer_nf": 10.0, "mixer_iip3": 5.0,
                "vga_gain": 40.0, "vga_nf": 15.0, "vga_iip3": 10.0}
        quiet = receiver_performance(dict(base, lna_nf=1.2))
        assert quiet["power"] > receiver_performance(base)["power"]
        assert quiet["nf_db"] < receiver_performance(base)["nf_db"]


class TestHierarchyEngine:
    def _plan_translate(self, topology, specs):
        lib = default_plan_library()
        plan = lib.get(topology)
        spec_map = {"gbw": 10e6, "slew_rate": 5e6, "c_load": 2e-12,
                    "gain": 100.0, "vdd": 3.3, "phase_margin": 60.0}
        result = plan.execute(spec_map)
        return result.sizes, result.performance

    def test_flow_succeeds_with_plan_strategy(self):
        specs = SpecSet([Spec.at_least("gbw", 9e6),
                         Spec.at_least("gain", 100.0)])
        task = DesignTask(
            name="ota_cell", specs=specs,
            select=lambda s: ["five_transistor_ota"],
            translate=self._plan_translate)
        outcome = run_design_task(task)
        assert outcome.topology == "five_transistor_ota"
        assert outcome.sizes["w_in"] > 0
        steps = [e.step for e in outcome.log.events]
        assert StepKind.TOPOLOGY in steps and StepKind.TRANSLATE in steps

    def test_flow_falls_back_to_next_topology(self):
        specs = SpecSet([Spec.at_least("gain", 5000.0),
                         Spec.at_least("gbw", 9e6)])
        task = DesignTask(
            name="high_gain_cell", specs=specs,
            select=lambda s: ["five_transistor_ota", "two_stage_miller"],
            translate=lambda topo, s: self._plan_translate(
                topo, s) if topo != "five_transistor_ota"
            else (_ for _ in ()).throw(RuntimeError("gain infeasible")),
        )
        outcome = run_design_task(task)
        assert outcome.topology == "two_stage_miller"
        assert outcome.log.failures()  # the OTA failure was recorded

    def test_flow_error_when_everything_fails(self):
        specs = SpecSet([Spec.at_least("gain", 1e9)])
        task = DesignTask(
            name="impossible", specs=specs,
            select=lambda s: ["five_transistor_ota"],
            translate=self._plan_translate, max_redesigns=2)
        with pytest.raises(FlowError):
            run_design_task(task)

    def test_verification_gate(self):
        specs = SpecSet([Spec.at_least("gbw", 9e6)])
        calls = {"n": 0}

        def verify(topology, sizes):
            calls["n"] += 1
            return {"gbw": 10e6}

        task = DesignTask(
            name="verified_cell", specs=specs,
            select=lambda s: ["five_transistor_ota"],
            translate=self._plan_translate,
            verify=verify)
        outcome = run_design_task(task)
        assert calls["n"] == 1
        assert outcome.verified == {"gbw": 10e6}
