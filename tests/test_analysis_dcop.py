"""Unit tests for DC operating-point analysis against hand calculations."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.dcop import ConvergenceError, dc_operating_point, dc_sweep
from repro.analysis.mna import MnaSystem, mos_level1, threshold_voltage
from repro.circuits.devices import NMOS_DEFAULT, PMOS_DEFAULT, Mosfet
from repro.circuits.library import (
    common_source_amp,
    five_transistor_ota,
    two_stage_miller,
    voltage_divider,
)
from repro.circuits.netlist import Circuit, NetlistError


class TestLinearDc:
    def test_voltage_divider(self):
        op = dc_operating_point(voltage_divider(1e3, 3e3, 4.0))
        assert op.v("out") == pytest.approx(3.0, rel=1e-6)

    @given(st.floats(min_value=10.0, max_value=1e6),
           st.floats(min_value=10.0, max_value=1e6),
           st.floats(min_value=-10.0, max_value=10.0))
    @settings(max_examples=30, deadline=None)
    def test_divider_formula(self, r1, r2, vin):
        op = dc_operating_point(voltage_divider(r1, r2, vin))
        assert op.v("out") == pytest.approx(vin * r2 / (r1 + r2),
                                            rel=1e-5, abs=1e-6)

    def test_source_current(self):
        op = dc_operating_point(voltage_divider(1e3, 1e3, 2.0))
        assert op.i("vin") == pytest.approx(-1e-3, rel=1e-5)

    def test_current_source_into_resistor(self):
        c = Circuit("ir")
        c.isource("i1", "0", "out", dc=1e-3)  # 1 mA into node 'out'
        c.resistor("r1", "out", "0", 2e3)
        op = dc_operating_point(c)
        assert op.v("out") == pytest.approx(2.0, rel=1e-5)

    def test_vcvs(self):
        c = Circuit("e")
        c.vsource("v1", "in", "0", dc=0.5)
        c.add(__import__("repro.circuits.devices", fromlist=["Vcvs"]).Vcvs(
            "e1", ("out", "0", "in", "0"), gain=4.0))
        c.resistor("rl", "out", "0", 1e3)
        op = dc_operating_point(c)
        assert op.v("out") == pytest.approx(2.0, rel=1e-6)

    def test_vccs(self):
        from repro.circuits.devices import Vccs
        c = Circuit("g")
        c.vsource("v1", "in", "0", dc=1.0)
        c.add(Vccs("g1", ("0", "out", "in", "0"), gm=1e-3))
        c.resistor("rl", "out", "0", 1e3)
        op = dc_operating_point(c)
        assert op.v("out") == pytest.approx(1.0, rel=1e-5)

    def test_inductor_is_dc_short(self):
        c = Circuit("l")
        c.vsource("v1", "a", "0", dc=1.0)
        c.inductor("l1", "a", "b", 1e-9)
        c.resistor("r1", "b", "0", 1e3)
        op = dc_operating_point(c)
        assert op.v("b") == pytest.approx(1.0, rel=1e-6)

    def test_floating_node_via_gmin(self):
        # A capacitor-only node is floating at DC; gmin keeps it solvable.
        c = Circuit("f")
        c.vsource("v1", "a", "0", dc=1.0)
        c.resistor("r1", "a", "b", 1e3)
        c.capacitor("c1", "b", "0", 1e-12)
        op = dc_operating_point(c)
        assert op.v("b") == pytest.approx(1.0, rel=1e-3)

    def test_no_ground_raises(self):
        c = Circuit("ng")
        c.resistor("r1", "a", "b", 1e3)
        with pytest.raises(NetlistError):
            dc_operating_point(c)


class TestMosLevel1:
    def _mos(self, w=10e-6, l=1e-6):
        return Mosfet("m1", ("d", "g", "s", "b"), NMOS_DEFAULT, w, l)

    def test_cutoff(self):
        ids, gm, gds, gmb, info = mos_level1(self._mos(), 1.0, 0.2, 0.0, 0.0)
        assert ids == 0.0 and gm == 0.0
        assert info[0] == "cutoff"

    def test_saturation_current(self):
        m = self._mos()
        vgs, vds = 1.5, 2.0
        ids, gm, gds, gmb, info = mos_level1(m, vds, vgs, 0.0, 0.0)
        vov = vgs - NMOS_DEFAULT.vto
        expected = 0.5 * m.beta * vov ** 2 * (1 + NMOS_DEFAULT.lambda_ * vds)
        assert info[0] == "saturation"
        assert ids == pytest.approx(expected, rel=1e-12)
        assert gm == pytest.approx(m.beta * vov * (1 + NMOS_DEFAULT.lambda_ * vds))

    def test_triode_current(self):
        m = self._mos()
        vgs, vds = 2.0, 0.2
        ids, gm, gds, _, info = mos_level1(m, vds, vgs, 0.0, 0.0)
        assert info[0] == "triode"
        vov = vgs - NMOS_DEFAULT.vto
        core = vov * vds - 0.5 * vds ** 2
        assert ids == pytest.approx(
            m.beta * core * (1 + NMOS_DEFAULT.lambda_ * vds), rel=1e-12)

    def test_continuity_at_pinchoff(self):
        m = self._mos()
        vgs = 1.7
        vov = vgs - NMOS_DEFAULT.vto
        below, *_ = mos_level1(m, vov - 1e-9, vgs, 0.0, 0.0)
        above, *_ = mos_level1(m, vov + 1e-9, vgs, 0.0, 0.0)
        assert below == pytest.approx(above, rel=1e-6)

    def test_pmos_current_sign(self):
        m = Mosfet("mp", ("d", "g", "s", "s"), PMOS_DEFAULT, 10e-6, 1e-6)
        # Source at 3.3 V, gate at 1.5 V, drain at 0: strongly on PMOS.
        ids, gm, *_ = mos_level1(m, 0.0, 1.5, 3.3, 3.3)
        assert ids < 0  # conventional current flows source->drain
        assert gm > 0

    def test_body_effect_raises_vth(self):
        assert threshold_voltage(NMOS_DEFAULT, -1.0) > threshold_voltage(
            NMOS_DEFAULT, 0.0)

    @given(st.floats(min_value=0.8, max_value=3.0),
           st.floats(min_value=0.0, max_value=3.0))
    @settings(max_examples=50, deadline=None)
    def test_current_nonnegative_and_monotone_in_vgs(self, vgs, vds):
        m = self._mos()
        ids, *_ = mos_level1(m, vds, vgs, 0.0, 0.0)
        ids2, *_ = mos_level1(m, vds, vgs + 0.1, 0.0, 0.0)
        assert ids >= 0.0
        assert ids2 >= ids


class TestNonlinearDc:
    def test_common_source_kcl(self):
        cs = common_source_amp(w=20e-6, l=2e-6, r_load=10e3, vgs=1.0)
        op = dc_operating_point(cs)
        m = op.mos["m1"]
        # KCL: resistor current equals drain current.
        i_r = (3.3 - op.v("out")) / 10e3
        assert m.ids == pytest.approx(i_r, rel=1e-4)

    def test_ota_all_saturated(self):
        ota = five_transistor_ota()
        ota.vsource("vip", "inp", "0", dc=1.5)
        ota.vsource("vin_", "inn", "0", dc=1.5)
        op = dc_operating_point(ota)
        assert op.saturated("m1", "m2", "m3", "m4", "m5")

    def test_ota_tail_current_mirror(self):
        ota = five_transistor_ota({"i_bias": 20e-6})
        ota.vsource("vip", "inp", "0", dc=1.5)
        ota.vsource("vin_", "inn", "0", dc=1.5)
        op = dc_operating_point(ota)
        # Tail current mirrors i_bias (same W/L): ~20 µA split evenly.
        assert op.mos["m1"].ids == pytest.approx(10e-6, rel=0.15)
        assert op.mos["m2"].ids == pytest.approx(10e-6, rel=0.15)

    def test_two_stage_converges(self):
        amp = two_stage_miller()
        amp.vsource("vip", "inp", "0", dc=1.5)
        amp.vsource("vin_", "inn", "0", dc=1.5)
        op = dc_operating_point(amp)
        assert 0.0 < op.v("out") < 3.3

    def test_diode_forward_drop(self):
        from repro.circuits.devices import Diode, DiodeModel
        c = Circuit("d")
        c.vsource("v1", "a", "0", dc=3.0)
        c.resistor("r1", "a", "b", 1e3)
        c.add(Diode("d1", ("b", "0"), DiodeModel("dm", i_sat=1e-14)))
        op = dc_operating_point(c)
        assert 0.55 < op.v("b") < 0.85

    def test_dc_sweep_monotone(self):
        cs = common_source_amp(w=20e-6, l=2e-6, r_load=10e3, vgs=0.9)
        ops = dc_sweep(cs, "vin", np.linspace(0.8, 1.4, 7))
        outs = [o.v("out") for o in ops]
        assert all(a >= b - 1e-9 for a, b in zip(outs, outs[1:]))

    def test_supply_power(self):
        ota = five_transistor_ota()
        ota.vsource("vip", "inp", "0", dc=1.5)
        ota.vsource("vin_", "inn", "0", dc=1.5)
        op = dc_operating_point(ota)
        p = op.power(("vdd_src",), ota)
        assert 1e-6 < p < 1e-2
