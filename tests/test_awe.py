"""Tests for asymptotic waveform evaluation against analytic references."""

import math

import numpy as np
import pytest

from repro.analysis import ac_analysis, small_signal_system, transient
from repro.awe import (
    MomentEngine,
    PadeError,
    bandwidth_estimate,
    delay_estimate,
    pade_model,
    peak_response,
    reduce_circuit,
)
from repro.circuits.devices import Waveform
from repro.circuits.library import rc_ladder
from repro.circuits.netlist import Circuit


def _rc(r=1e3, c=1e-9) -> Circuit:
    ckt = Circuit("rc")
    ckt.vsource("vin", "a", "0", dc=0.0, ac=1.0)
    ckt.resistor("r1", "a", "out", r)
    ckt.capacitor("c1", "out", "0", c)
    return ckt


class TestMoments:
    def test_rc_moments_analytic(self):
        # H(s) = 1/(1+sRC): moments 1, -RC, (RC)², ...
        r, c = 1e3, 1e-9
        ss = small_signal_system(_rc(r, c))
        eng = MomentEngine(ss.G, ss.C, np.real(ss.b_ac))
        m = eng.moments(ss.node("out"), 4)
        rc = r * c
        assert m[0] == pytest.approx(1.0, rel=1e-9)
        assert m[1] == pytest.approx(-rc, rel=1e-6)
        assert m[2] == pytest.approx(rc ** 2, rel=1e-6)
        assert m[3] == pytest.approx(-rc ** 3, rel=1e-6)

    def test_moment_caching(self):
        ss = small_signal_system(_rc())
        eng = MomentEngine(ss.G, ss.C, np.real(ss.b_ac))
        first = eng.moments(ss.node("out"), 3)
        second = eng.moments(ss.node("out"), 3)
        assert np.array_equal(first, second)


class TestPade:
    def test_single_pole_exact(self):
        rc = 1e-6
        moments = np.array([1.0, -rc, rc ** 2, -rc ** 3])
        model = pade_model(moments, order=1)
        assert model.poles[0] == pytest.approx(-1 / rc, rel=1e-9)
        assert model.dc_value() == pytest.approx(1.0, rel=1e-9)

    def test_two_pole_recovery(self):
        # H(s) = 1/((1+s/p1)(1+s/p2)) with known poles.
        p1, p2 = 1e6, 1e8
        k1 = -p1 * p2 / (p2 - p1)  # residues of partial fractions
        k2 = p1 * p2 / (p2 - p1)

        def moment(k):
            return -(k1 / (-p1) ** (k + 1) + k2 / (-p2) ** (k + 1))

        moments = np.array([moment(k) for k in range(4)])
        model = pade_model(moments, order=2)
        found = sorted(np.abs(model.poles.real))
        assert found[0] == pytest.approx(p1, rel=1e-4)
        assert found[1] == pytest.approx(p2, rel=1e-2)

    def test_too_few_moments(self):
        with pytest.raises(PadeError):
            pade_model(np.array([1.0, -1.0]), order=2)

    def test_degenerate_order_reduces(self):
        # Single-pole moments asked for order 2: Hankel is singular, the
        # model should still come back (order reduced), matching the pole.
        rc = 1e-6
        moments = np.array([1.0, -rc, rc ** 2, -rc ** 3])
        model = pade_model(moments, order=2)
        assert any(np.isclose(model.poles.real, -1 / rc, rtol=1e-6))

    def test_step_response_single_pole(self):
        rc = 1e-6
        model = pade_model(np.array([1.0, -rc, rc ** 2, -rc ** 3]), 1)
        t = np.array([rc, 2 * rc, 5 * rc])
        expected = 1 - np.exp(-t / rc)
        assert np.allclose(model.step_response(t), expected, rtol=1e-6)


class TestReduceCircuit:
    def test_rc_bandwidth(self):
        r, c = 1e3, 1e-9
        ss = small_signal_system(_rc(r, c))
        model = reduce_circuit(ss, "out", order=2)
        assert bandwidth_estimate(model) == pytest.approx(
            1 / (2 * math.pi * r * c), rel=1e-3)

    def test_ladder_frequency_response_matches_ac(self):
        lad = rc_ladder(6, r=1e3, c=1e-12)
        ss = small_signal_system(lad)
        model = reduce_circuit(ss, "n6", order=3)
        freqs = np.logspace(5, 8.5, 12)
        awe_resp = np.abs(model.frequency_response(freqs))
        ac = ac_analysis(lad, freqs, ss=ss)
        exact = np.abs(ac.v("n6"))
        # AWE captures the dominant poles: accurate while the response is
        # in-band, progressively worse deep in the stopband.
        in_band = exact > 0.4
        assert np.allclose(awe_resp[in_band], exact[in_band], rtol=0.05)

    def test_ladder_delay_vs_transient(self):
        lad = rc_ladder(5, r=1e3, c=1e-12)
        ss = small_signal_system(lad)
        model = reduce_circuit(ss, "n5", order=3)
        t50_awe = delay_estimate(model, 0.5)
        # Reference: transient simulation of the same ladder with a step.
        ckt = rc_ladder(5, r=1e3, c=1e-12)
        ckt.update_device(
            "vin", dc=0.0,
            waveform=Waveform("pulse", (0.0, 1.0, 0.0, 1e-13, 1e-13, 1.0, 2.0)))
        tr = transient(ckt, 60e-9, 0.1e-9)
        wave = tr.v("n5")
        k = int(np.argmax(wave >= 0.5))
        t50_sim = tr.times[k]
        assert t50_awe == pytest.approx(t50_sim, rel=0.15)

    def test_dc_value_matches(self):
        lad = rc_ladder(4)
        ss = small_signal_system(lad)
        model = reduce_circuit(ss, "n4", order=2)
        assert model.dc_value() == pytest.approx(1.0, rel=1e-3)

    def test_peak_response_monotone_step(self):
        ss = small_signal_system(_rc())
        model = reduce_circuit(ss, "out", order=1)
        t_pk, v_pk = peak_response(model, 10e-6)
        assert v_pk == pytest.approx(1.0, rel=1e-2)

    def test_ground_output_rejected(self):
        ss = small_signal_system(_rc())
        with pytest.raises(ValueError):
            reduce_circuit(ss, "0")
