"""Edge-case tests for small utilities across the toolkit."""

import math

import numpy as np
import pytest

from repro.awe import pade_model
from repro.awe.waveform import delay_estimate
from repro.core.specs import Spec, SpecSet
from repro.layout.gdslite import _gds_double
from repro.layout.geometry import Orientation, Rect
from repro.msystem.channel_router import base_net_name
from repro.opt.anneal import AnnealSchedule, Annealer


class TestAnnealerInternals:
    def test_initial_temperature_positive(self):
        ann = Annealer(lambda x: x * x,
                       lambda x, rng, f: x + rng.normal(0, 1.0),
                       seed=1)
        t0 = ann.initial_temperature(5.0)
        assert t0 > 0

    def test_initial_temperature_flat_landscape(self):
        # No uphill moves ever: fallback temperature still positive.
        ann = Annealer(lambda x: 0.0, lambda x, rng, f: x, seed=1)
        assert ann.initial_temperature(1.0) > 0

    def test_explicit_temperature_respected(self):
        calls = {"n": 0}

        def cost(x):
            calls["n"] += 1
            return abs(x)

        ann = Annealer(cost, lambda x, rng, f: x + rng.normal(0, 0.1),
                       schedule=AnnealSchedule(moves_per_temperature=10,
                                               max_evaluations=100),
                       seed=1)
        result = ann.run(1.0, temperature=0.5)
        assert result.evaluations <= 101


class TestAweEdges:
    def test_delay_estimate_zero_dc(self):
        # A model with zero DC value has no 50% crossing.
        model = pade_model(np.array([1.0, -1e-6, 1e-12, -1e-18]), 1)
        model.residues = model.residues * 0.0
        assert delay_estimate(model) == 0.0

    def test_delay_monotone_in_time_constant(self):
        fast = pade_model(np.array([1.0, -1e-7, 1e-14, -1e-21]), 1)
        slow = pade_model(np.array([1.0, -1e-6, 1e-12, -1e-18]), 1)
        assert delay_estimate(fast) < delay_estimate(slow)


class TestSpecReportFormat:
    def test_objective_row_shows_dash(self):
        ss = SpecSet([Spec.minimize("power", good=1e-3)])
        text = ss.report({"power": 2e-3}).to_text()
        assert "minimize" in text

    def test_missing_metric_marked_failed(self):
        ss = SpecSet([Spec.at_least("gain", 10.0)])
        report = ss.report({})
        assert not report.all_satisfied


class TestOrientationGeometry:
    def test_mx90_my90_are_transposes(self):
        r = Rect(0, 0, 10, 4)
        t1 = r.transformed(Orientation.MX90)
        t2 = r.transformed(Orientation.MY90)
        assert t1.width == r.height and t1.height == r.width
        assert t2.width == r.height and t2.height == r.width

    def test_swaps_axes_flags(self):
        swapping = {o for o in Orientation if o.swaps_axes}
        assert swapping == {Orientation.R90, Orientation.R270,
                            Orientation.MX90, Orientation.MY90}


class TestGdsDouble:
    def test_known_encoding_of_one(self):
        # 1.0 in GDSII excess-64: exponent 65, mantissa 0.0625 * 16 = 1/16.
        data = _gds_double(1.0)
        assert data[0] == 0x41
        assert data[1] == 0x10

    def test_zero(self):
        assert _gds_double(0.0) == b"\x00" * 8

    def test_negative_sets_sign_bit(self):
        assert _gds_double(-1.0)[0] & 0x80

    @pytest.mark.parametrize("value", [1e-9, 1e-3, 0.5, 2.0, 1e6])
    def test_roundtrip_decode(self, value):
        data = _gds_double(value)
        sign = -1.0 if data[0] & 0x80 else 1.0
        exponent = (data[0] & 0x7F) - 64
        mantissa = int.from_bytes(data[1:], "big") / (1 << 56)
        decoded = sign * mantissa * 16.0 ** exponent
        assert decoded == pytest.approx(value, rel=1e-12)


class TestChannelHelpers:
    def test_base_net_name_strips_dogleg_suffix(self):
        assert base_net_name("clk~t0") == "clk"
        assert base_net_name("clk") == "clk"
        assert base_net_name("a~b~t1") == "a"


class TestMnaEdges:
    def test_update_device_ac(self):
        from repro.circuits.library import voltage_divider
        from repro.analysis import ac_analysis
        d = voltage_divider(1e3, 1e3, 1.0)
        d.update_device("vin", ac=2.0)
        res = ac_analysis(d, np.array([10.0]))
        assert abs(res.v("out")[0]) == pytest.approx(1.0, rel=1e-6)

    def test_cccs_gain(self):
        from repro.circuits.devices import Cccs
        from repro.circuits.netlist import Circuit
        from repro.analysis import dc_operating_point
        c = Circuit("f")
        c.vsource("vctl", "a", "0", dc=1.0)
        c.resistor("rc", "a", "0", 1e3)  # control current = 1 mA... but
        # the branch current of vctl is what F senses: -1 mA.
        c.add(Cccs("f1", ("0", "out"), "vctl", gain=2.0))
        c.resistor("rl", "out", "0", 1e3)
        op = dc_operating_point(c)
        # i(vctl) = -1 mA; F injects 2*i into 'out' branch sense.
        assert op.v("out") == pytest.approx(-2.0, rel=1e-6)

    def test_ccvs_transresistance(self):
        from repro.circuits.devices import Ccvs
        from repro.circuits.netlist import Circuit
        from repro.analysis import dc_operating_point
        c = Circuit("h")
        c.vsource("vctl", "a", "0", dc=1.0)
        c.resistor("rc", "a", "0", 1e3)
        c.add(Ccvs("h1", ("out", "0"), "vctl", transres=500.0))
        c.resistor("rl", "out", "0", 1e3)
        op = dc_operating_point(c)
        assert op.v("out") == pytest.approx(-0.5, rel=1e-6)
