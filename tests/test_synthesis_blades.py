"""Tests for the BLADES-style rule-based sizing system."""

import math

import pytest

from repro.synthesis.blades import (
    Consultation,
    InferenceError,
    Rule,
    RuleEngine,
    size_ota_with_rules,
)


class TestRuleEngine:
    def _simple_rules(self):
        return [
            Rule("a-from-x", lambda f: "x" in f,
                 lambda f: {"a": f["x"] * 2}, ("a",), priority=5),
            Rule("b-from-a", lambda f: "a" in f,
                 lambda f: {"b": f["a"] + 1}, ("b",)),
        ]

    def test_forward_chaining(self):
        engine = RuleEngine(self._simple_rules())
        result = engine.run({"x": 3.0}, goals=("b",))
        assert result.facts["a"] == 6.0
        assert result.facts["b"] == 7.0
        assert result.goals_met

    def test_rule_fires_once(self):
        count = {"n": 0}

        def action(f):
            count["n"] += 1
            return {"y": 1}

        engine = RuleEngine([
            Rule("once", lambda f: True, action, ("y",)),
        ])
        engine.run({}, goals=())
        assert count["n"] == 1

    def test_priority_ordering(self):
        order = []
        engine = RuleEngine([
            Rule("low", lambda f: True,
                 lambda f: order.append("low") or {"l": 1}, ("l",),
                 priority=1),
            Rule("high", lambda f: True,
                 lambda f: order.append("high") or {"h": 1}, ("h",),
                 priority=9),
        ])
        engine.run({})
        assert order == ["high", "low"]

    def test_missing_goal_raises(self):
        engine = RuleEngine(self._simple_rules())
        with pytest.raises(InferenceError, match="could not establish"):
            engine.consult({}, goals=("b",))

    def test_duplicate_rule_names_rejected(self):
        rule = Rule("r", lambda f: True, lambda f: {}, ())
        with pytest.raises(ValueError):
            RuleEngine([rule, rule])

    def test_condition_keyerror_treated_as_not_ready(self):
        engine = RuleEngine([
            Rule("needs-x", lambda f: f["x"] > 0,
                 lambda f: {"y": 1}, ("y",)),
        ])
        result = engine.run({})
        assert "y" not in result.facts

    def test_trace_records_cycles(self):
        engine = RuleEngine(self._simple_rules())
        result = engine.run({"x": 1.0})
        assert [f.rule for f in result.trace] == ["a-from-x", "b-from-a"]
        assert "cycle 1" in result.explain()


class TestOtaRuleBase:
    def test_sizes_derived(self):
        result = size_ota_with_rules(gbw=10e6, slew_rate=5e6,
                                     c_load=2e-12)
        facts = result.facts
        assert facts["i_tail"] == pytest.approx(1e-5)
        gm = 2 * math.pi * 10e6 * 2e-12
        assert facts["gm_in"] == pytest.approx(gm)
        assert facts["w_in"] > 0 and facts["w_tail"] > 0

    def test_agrees_with_design_plan(self):
        """BLADES and IDAC encode the same expertise: same answer."""
        from repro.synthesis.plan_library import build_ota_plan
        rules = size_ota_with_rules(gbw=10e6, slew_rate=5e6, c_load=2e-12)
        plan = build_ota_plan().execute(
            {"gbw": 10e6, "slew_rate": 5e6, "c_load": 2e-12,
             "gain": 100.0, "vdd": 3.3})
        for key in ("w_in", "w_load", "w_tail", "i_bias"):
            assert rules.facts[key] == pytest.approx(plan.sizes[key],
                                                     rel=1e-6)

    def test_gain_goal_checked(self):
        result = size_ota_with_rules(gbw=10e6, slew_rate=5e6,
                                     c_load=2e-12, gain=100.0)
        assert result.facts["gain_ok"]

    def test_unreachable_gain_diagnosed(self):
        with pytest.raises(InferenceError, match="gain"):
            size_ota_with_rules(gbw=10e6, slew_rate=5e6, c_load=2e-12,
                                gain=1e6)

    def test_explanation_names_rules(self):
        result = size_ota_with_rules(gbw=10e6, slew_rate=5e6,
                                     c_load=2e-12)
        text = result.explain()
        assert "tail-from-slew" in text and "gm-from-gbw" in text

    def test_sized_circuit_simulates(self):
        import numpy as np
        from repro.analysis import ac_analysis, bode_metrics, \
            logspace_frequencies
        from repro.circuits.library import five_transistor_ota
        result = size_ota_with_rules(gbw=10e6, slew_rate=5e6,
                                     c_load=2e-12)
        sizes = {k: result.facts[k]
                 for k in ("w_in", "l_in", "w_load", "l_load", "w_tail",
                           "l_tail", "i_bias")}
        sizes["c_load"] = 2e-12
        ckt = five_transistor_ota(sizes)
        ckt.vsource("vip", "inp", "0", dc=1.5, ac=1.0)
        ckt.vsource("vin_", "inn", "0", dc=1.5)
        metrics = bode_metrics(
            ac_analysis(ckt, logspace_frequencies(100, 1e9, 5)), "out")
        assert metrics.unity_gain_freq == pytest.approx(10e6, rel=0.5)
