"""The unified typed analysis API (repro.analysis.api).

``api.run(circuit, spec)`` must round-trip all four analysis kinds with
results equal to the legacy free functions, count ``analysis.<kind>`` on
the active tracer, and reject non-spec payloads.  The legacy free
functions are thin wrappers over the same dispatcher, so both entry
points share one implementation and one cache key space.
"""

import numpy as np
import pytest

from repro.analysis import (
    AcSpec,
    DcSpec,
    NoiseSpec,
    TranSpec,
    ac_analysis,
    api,
    dc_operating_point,
    logspace_frequencies,
    noise_analysis,
    transient,
)
from repro.circuits.devices import Waveform
from repro.circuits.library import five_transistor_ota, voltage_divider
from repro.circuits.netlist import Circuit
from repro.engine import Tracer


def _rc_lowpass(r=1e3, c=1e-9):
    ckt = Circuit("rc")
    ckt.vsource("vin", "a", "0", dc=0.0, ac=1.0)
    ckt.resistor("r1", "a", "out", r)
    ckt.capacitor("c1", "out", "0", c)
    return ckt


def _rc_step():
    ckt = Circuit("rc_step")
    ckt.vsource("vin", "a", "0", dc=0.0,
                waveform=Waveform("pulse", (0, 1, 0, 1e-12, 1e-12, 1, 2)))
    ckt.resistor("r1", "a", "out", 1e3)
    ckt.capacitor("c1", "out", "0", 1e-9)
    return ckt


def _ota_testbench():
    ota = five_transistor_ota()
    ota.vsource("vip", "inp", "0", dc=1.5, ac=1.0)
    ota.vsource("vin_", "inn", "0", dc=1.5)
    return ota


class TestRoundTrip:
    """api.run(circuit, spec) == legacy free function, all four kinds."""

    def test_dc(self):
        via_api = api.run(_ota_testbench(), DcSpec())
        legacy = dc_operating_point(_ota_testbench())
        assert via_api.voltages == legacy.voltages
        assert via_api.mos.keys() == legacy.mos.keys()

    def test_dc_with_options(self):
        ckt = voltage_divider(1e3, 1e3)
        via_api = api.run(ckt, DcSpec(gmin=1e-9))
        legacy = dc_operating_point(ckt, gmin=1e-9)
        assert via_api.voltages == legacy.voltages

    def test_ac(self):
        freqs = logspace_frequencies(10, 1e9, 7)
        via_api = api.run(_rc_lowpass(), AcSpec(freqs=freqs))
        legacy = ac_analysis(_rc_lowpass(), freqs)
        assert np.array_equal(via_api.v("out"), legacy.v("out"))

    def test_ac_with_precomputed_op(self):
        ota = _ota_testbench()
        op = dc_operating_point(ota)
        freqs = logspace_frequencies(10, 1e8, 5)
        via_api = api.run(ota, AcSpec(freqs=freqs, op=op))
        legacy = ac_analysis(ota, freqs, op=op)
        assert np.array_equal(via_api.v("out"), legacy.v("out"))

    def test_tran(self):
        via_api = api.run(_rc_step(), TranSpec(t_stop=2e-6, dt=2e-8))
        legacy = transient(_rc_step(), 2e-6, 2e-8)
        assert np.array_equal(via_api.times, legacy.times)
        assert np.array_equal(via_api.v("out"), legacy.v("out"))

    def test_noise(self):
        freqs = np.logspace(2, 6, 5)
        via_api = api.run(voltage_divider(1e3, 1e3, 1.0),
                          NoiseSpec(out="out", freqs=freqs))
        legacy = noise_analysis(voltage_divider(1e3, 1e3, 1.0), "out", freqs)
        assert np.array_equal(via_api.output_psd, legacy.output_psd)


class TestDispatch:
    def test_rejects_non_spec(self):
        with pytest.raises(TypeError, match="not an analysis spec"):
            api.run(_rc_lowpass(), {"kind": "dc"})

    def test_specs_are_frozen(self):
        spec = DcSpec()
        with pytest.raises(AttributeError):
            spec.gmin = 1.0

    def test_kind_tags(self):
        assert (DcSpec.kind, AcSpec.kind, TranSpec.kind, NoiseSpec.kind) \
            == ("dc", "ac", "tran", "noise")

    def test_errors_propagate_identically(self):
        with pytest.raises(ValueError):
            api.run(_rc_lowpass(), TranSpec(t_stop=-1.0, dt=1e-9))
        with pytest.raises(ValueError):
            transient(_rc_lowpass(), -1.0, 1e-9)


class TestTracerCounting:
    def test_each_kind_counts_on_active_span(self):
        tracer = Tracer()
        with tracer.span("measure") as span:
            api.run(_ota_testbench(), DcSpec())
            api.run(_rc_lowpass(), AcSpec(freqs=np.array([1e3])))
            api.run(voltage_divider(1e3, 1e3, 1.0),
                    NoiseSpec(out="out", freqs=np.array([1e3])))
        # Internal nested calls count too (ac without a precomputed op
        # solves its own dc first), so dc >= 1 while noise is exactly 1.
        assert span.counters["analysis.dc"] >= 1
        assert span.counters["analysis.ac"] >= 1
        assert span.counters["analysis.noise"] == 1

    def test_legacy_wrappers_count_too(self):
        tracer = Tracer()
        with tracer.span("measure") as span:
            dc_operating_point(_ota_testbench())
        assert span.counters["analysis.dc"] == 1

    def test_nested_internal_calls_are_counted(self):
        # transient's use_ic_op solves a DC operating point first: both
        # the tran and the internal dc land in the counters —
        # deterministic, so structurally stable across runs.
        tracer = Tracer()
        with tracer.span("measure") as span:
            api.run(_rc_step(), TranSpec(t_stop=1e-7, dt=1e-9))
        assert span.counters["analysis.tran"] == 1
        assert span.counters["analysis.dc"] == 1

    def test_no_tracer_no_error(self):
        api.run(_rc_lowpass(), AcSpec(freqs=np.array([1e3])))
