"""Integration tests for the closed-loop cell flow and chip assembly."""

import pytest

from repro.core.specs import Spec, SpecSet
from repro.flows import (
    CellFlowError,
    assemble_chip,
    design_ota_cell,
    layout_cell,
)
from repro.msystem import demo_mixed_signal_system
from repro.msystem.powergrid import RailSpec
from repro.opt.anneal import AnnealSchedule

FP_FAST = AnnealSchedule(moves_per_temperature=80, cooling=0.85,
                         max_evaluations=6000)


class TestCellFlow:
    SPECS = SpecSet([
        Spec.at_least("gbw", 8e6),
        Spec.at_least("gain", 80.0),
        Spec.at_least("slew_rate", 4e6),
    ])

    def test_flow_produces_spec_compliant_layout(self):
        design = design_ota_cell(self.SPECS, seed=2)
        assert self.SPECS.all_satisfied(design.post_layout)
        assert design.area_um2 > 0

    def test_flow_artifacts_complete(self):
        design = design_ota_cell(self.SPECS, seed=2)
        assert design.layout_cell.shapes
        assert len(design.extracted_circuit.devices) > \
            len(design.schematic.devices)
        assert design.log  # audit trail exists

    def test_post_layout_gbw_not_better_than_pre(self):
        design = design_ota_cell(self.SPECS, seed=2)
        assert design.post_layout["gbw"] <= design.pre_layout["gbw"] * 1.02

    def test_impossible_specs_raise(self):
        impossible = SpecSet([Spec.at_least("gbw", 8e6),
                              Spec.at_least("gain", 1e6)])
        with pytest.raises(CellFlowError):
            design_ota_cell(impossible, seed=1, max_iterations=2)

    def test_layout_cell_standalone(self):
        from repro.circuits.library import five_transistor_ota
        placement, routing, extraction, cell = layout_cell(
            five_transistor_ota(), seed=4)
        assert not routing.failed
        assert extraction.total_wire_cap() > 0
        assert cell.bbox().area > 0

    def test_gds_export_of_flow_result(self):
        from repro.layout.gdslite import read_gds_rect_count, write_gds
        design = design_ota_cell(self.SPECS, seed=2)
        data = write_gds([design.layout_cell])
        assert read_gds_rect_count(data) > 50


class TestChipFlow:
    def test_assembly_end_to_end(self):
        blocks, nets = demo_mixed_signal_system()
        plan = assemble_chip(blocks, nets, seed=1,
                             floorplan_schedule=FP_FAST)
        assert not plan.routing.failed
        assert plan.power.feasible
        assert plan.snr_budgets  # sensitive nets got budgets

    def test_report_renders(self):
        blocks, nets = demo_mixed_signal_system()
        plan = assemble_chip(blocks, nets, seed=1,
                             floorplan_schedule=FP_FAST)
        text = plan.report()
        assert "power grid" in text and "SNR map" in text

    def test_segment_budgets_cover_routes(self):
        blocks, nets = demo_mixed_signal_system()
        plan = assemble_chip(blocks, nets, seed=1,
                             floorplan_schedule=FP_FAST)
        for name, budgets in plan.segment_budgets.items():
            route = plan.routing.routes[name]
            assert len(budgets) == len(route.tiles)
            total = sum(b.coupling_bound for b in budgets)
            assert total <= plan.snr_budgets[name].coupling_budget

    def test_noise_aware_flag_propagates(self):
        blocks, nets = demo_mixed_signal_system()
        aware = assemble_chip(blocks, nets, seed=1, noise_aware=True,
                              floorplan_schedule=FP_FAST)
        blind = assemble_chip(blocks, nets, seed=1, noise_aware=False,
                              floorplan_schedule=FP_FAST)
        assert aware.floorplan.noise <= blind.floorplan.noise

    def test_power_meets_custom_spec(self):
        blocks, nets = demo_mixed_signal_system()
        spec = RailSpec(max_ir_drop=0.15, max_droop=0.4)
        plan = assemble_chip(blocks, nets, rail_spec=spec, seed=2,
                             floorplan_schedule=FP_FAST)
        assert plan.power.worst_ir_drop <= 0.15
        assert plan.power.worst_droop <= 0.4
