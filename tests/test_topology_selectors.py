"""Differential test suite for the four topology selectors.

The four generations of selection (rules, intervals, GA, enumeration) run
over one shared candidate registry, so they can cross-check each other:
rule-based picks must survive the interval pre-filter, enumeration is the
reference optimum, the GA should land within tolerance of it, and every
selector must be seed-stable.  The regression classes pin the two crashes/
misrankings the hardening pass fixed: a NaN-cost candidate winning
``select_enumerate`` forever, and ``select_genetic`` crashing when the
winning genome's model raises during re-evaluation.
"""

import math

import pytest

from repro.core.specs import Spec, SpecSet
from repro.engine.telemetry import Telemetry
from repro.synthesis.equation_based import DesignSpace, SizingResult
from repro.synthesis.topology import (
    IntervalSelection,
    TopologyCandidate,
    _cost_improves,
    default_candidates,
    interval_feasible,
    select_enumerate,
    select_genetic,
    select_interval,
    select_rule_based,
)

EASY = SpecSet([Spec.at_least("gain_db", 40.0),
                Spec.at_least("gbw", 5e6),
                Spec.minimize("power", good=1e-4)])
HARD = SpecSet([Spec.at_least("gain_db", 75.0),
                Spec.at_least("gbw", 5e6),
                Spec.minimize("power", good=1e-4)])


class TestCostImproves:
    def test_normal_ordering(self):
        assert _cost_improves(1.0, 2.0)
        assert not _cost_improves(2.0, 1.0)
        assert not _cost_improves(1.0, 1.0)

    def test_nan_challenger_never_wins(self):
        assert not _cost_improves(float("nan"), 1.0)
        assert not _cost_improves(float("nan"), float("inf"))

    def test_nan_incumbent_always_loses(self):
        assert _cost_improves(1.0, float("nan"))
        assert _cost_improves(float("inf"), float("nan"))

    def test_nan_vs_nan_keeps_incumbent(self):
        assert not _cost_improves(float("nan"), float("nan"))


class TestDifferentialSelectors:
    """The selectors cross-check each other over the shared registry."""

    @pytest.mark.parametrize("gain_db", [30.0, 45.0, 60.0, 75.0])
    def test_rule_picks_survive_interval_prefilter(self, gain_db):
        # Intervals over-approximate the reachable set, so anything the
        # rules accept must not be interval-rejected.
        cands = default_candidates()
        specs = SpecSet([Spec.at_least("gain_db", gain_db)])
        ruled = set(select_rule_based(specs, cands))
        interval = set(select_interval(specs, cands))
        assert ruled <= interval

    def test_enumerate_is_reference_optimum(self):
        # Enumeration sizes every candidate; its winner's cost must be
        # no worse than any single candidate sized the same way.
        cands = default_candidates()
        best = select_enumerate(EASY, cands, seed=1)
        assert best.sizing.feasible
        for cand in cands:
            single = select_enumerate(EASY, [cand], seed=1)
            assert best.sizing.cost <= single.sizing.cost + 1e-12

    def test_genetic_within_tolerance_of_enumeration(self):
        cands = default_candidates()
        reference = select_enumerate(HARD, cands, seed=1)
        ga = select_genetic(HARD, cands, generations=25, population=40,
                            seed=2)
        assert ga.sizing.feasible
        # The GA explores topology + sizing jointly with a far smaller
        # budget; it must land in the same cost regime, not match it.
        assert ga.sizing.cost <= reference.sizing.cost + 1.0

    def test_selectors_are_seed_stable(self):
        cands = default_candidates()
        e1 = select_enumerate(EASY, cands, seed=3)
        e2 = select_enumerate(EASY, cands, seed=3)
        assert e1.topology == e2.topology
        assert e1.sizing.cost == e2.sizing.cost
        assert e1.sizing.sizes == e2.sizing.sizes
        g1 = select_genetic(EASY, cands, generations=8, population=16,
                            seed=5)
        g2 = select_genetic(EASY, cands, generations=8, population=16,
                            seed=5)
        assert g1.topology == g2.topology
        assert g1.sizing.cost == g2.sizing.cost
        assert g1.sizing.sizes == g2.sizing.sizes


# ----------------------------------------------------------------------
# Regression: NaN-cost candidate used to win select_enumerate forever
# ----------------------------------------------------------------------

def _toy_candidate(name, model):
    return TopologyCandidate(
        name=name, model=model,
        space=DesignSpace(variables={"w": (1e-6, 1e-4)}))


class _ScriptedSizer:
    """EquationBasedSizer stand-in returning a scripted cost per model."""

    costs: dict = {}

    def __init__(self, model, space, specs, seed=0, **kwargs):
        self.model = model
        self.space = space

    def run(self, x0=None):
        return SizingResult(
            sizes={"w": 2e-6}, performance={}, cost=self.costs[self.model],
            feasible=False, evaluations=1, runtime_s=0.0)


class TestEnumerateNanRegression:
    def test_nan_first_candidate_cannot_win(self, monkeypatch):
        def nan_model(sizes):
            return {}

        def good_model(sizes):
            return {}

        _ScriptedSizer.costs = {nan_model: float("nan"), good_model: 1.0}
        monkeypatch.setattr("repro.synthesis.topology.EquationBasedSizer",
                            _ScriptedSizer)
        result = select_enumerate(
            SpecSet([Spec.minimize("power", good=1e-4)]),
            [_toy_candidate("nan_first", nan_model),
             _toy_candidate("finite", good_model)])
        # Pre-fix, `cost < nan` is always False and the NaN incumbent
        # could never be displaced.
        assert result.topology == "finite"
        assert result.sizing.cost == 1.0

    def test_all_nan_still_returns_a_result(self, monkeypatch):
        def nan_model(sizes):
            return {}

        _ScriptedSizer.costs = {nan_model: float("nan")}
        monkeypatch.setattr("repro.synthesis.topology.EquationBasedSizer",
                            _ScriptedSizer)
        result = select_enumerate(
            SpecSet([Spec.minimize("power", good=1e-4)]),
            [_toy_candidate("only", nan_model)])
        assert result.topology == "only"
        assert math.isnan(result.sizing.cost)


# ----------------------------------------------------------------------
# Regression: select_genetic crashed when the winner's model raises
# ----------------------------------------------------------------------

class TestGeneticWinnerCrashRegression:
    def test_always_raising_model_yields_infeasible_result(self):
        def broken_model(sizes):
            raise ValueError("model always raises")

        specs = SpecSet([Spec.at_least("gain_db", 40.0)])
        result = select_genetic(specs, [_toy_candidate("broken",
                                                       broken_model)],
                                generations=3, population=8, seed=1)
        # Every genome scores the 1e6 penalty; re-evaluating the winner
        # raises too.  Pre-fix this crashed the whole selection.
        assert result.topology == "broken"
        assert result.sizing.feasible is False
        assert result.sizing.performance == {}
        assert result.sizing.warnings

    def test_mixed_registry_still_prefers_working_model(self):
        def broken_model(sizes):
            raise ValueError("model always raises")

        def working_model(sizes):
            return {"gain_db": 50.0, "power": 1e-4}

        specs = SpecSet([Spec.at_least("gain_db", 40.0),
                         Spec.minimize("power", good=1e-4)])
        result = select_genetic(
            specs,
            [_toy_candidate("broken", broken_model),
             _toy_candidate("working", working_model)],
            generations=10, population=20, seed=1)
        assert result.topology == "working"
        assert result.sizing.feasible


# ----------------------------------------------------------------------
# Interval telemetry: unproven passes are now observable
# ----------------------------------------------------------------------

def _interval_unsafe_model(sizes):
    # math.log10 cannot take an Interval — the TypeError is exactly the
    # "model not interval-safe" path the selector must survive.
    return {"gain_db": 20.0 * math.log10(sizes["w"] * 1e9)}


class TestIntervalUnprovenTelemetry:
    def test_unsafe_model_passes_but_counts(self):
        telemetry = Telemetry()
        cand = _toy_candidate("unsafe", _interval_unsafe_model)
        assert interval_feasible(cand, SpecSet([]), telemetry=telemetry)
        assert telemetry.get("topology.interval_unproven") == 1

    def test_selection_surfaces_unproven_names(self):
        telemetry = Telemetry()
        unsafe = _toy_candidate("unsafe", _interval_unsafe_model)
        cands = default_candidates() + [unsafe]
        specs = SpecSet([Spec.at_least("gain_db", 40.0)])
        selection = select_interval(specs, cands, telemetry=telemetry)
        assert isinstance(selection, IntervalSelection)
        assert "unsafe" in selection
        assert selection.unproven == ("unsafe",)
        assert telemetry.get("topology.interval_unproven") == 1

    def test_provable_registry_reports_no_unproven(self):
        telemetry = Telemetry()
        specs = SpecSet([Spec.at_least("gain_db", 40.0)])
        selection = select_interval(specs, default_candidates(),
                                    telemetry=telemetry)
        assert selection.unproven == ()
        assert telemetry.get("topology.interval_unproven") == 0

    def test_selection_still_behaves_like_a_list(self):
        specs = SpecSet([Spec.at_least("gain_db", 40.0)])
        selection = select_interval(specs, default_candidates())
        assert selection == list(selection)
        assert selection[0] == "five_transistor_ota"
