"""Golden-file regression test for the Table 1 pulse-detector benchmark.

The pulse-detector synthesis (seed 1, fixed schedule) and the paper's
manual reference design are pinned to ``tests/golden/pulse_detector.json``.
Any drift in the analytic performance models, the spec-cost function, the
annealer's move/acceptance sequence, or the engine's determinism shows up
here as a concrete metric delta instead of a silent behaviour change.

Regeneration (after an *intentional* model change only)::

    PYTHONPATH=src REPRO_REGENERATE_GOLDEN=1 \
        python -m pytest -q tests/test_golden_pulse_detector.py

The manual design is a pure model evaluation and is compared tight
(rtol 1e-12); the synthesized point is the outcome of thousands of
floating-point annealing steps and gets rtol 1e-6 headroom for platform
libm differences.
"""

import json
import os
from pathlib import Path

import pytest

from repro.opt.anneal import AnnealSchedule
from repro.synthesis.pulse_detector import (
    MANUAL_DESIGN,
    pulse_detector_performance,
    synthesize_pulse_detector,
)

GOLDEN_PATH = Path(__file__).parent / "golden" / "pulse_detector.json"
REGENERATE = bool(os.environ.get("REPRO_REGENERATE_GOLDEN"))

MANUAL_RTOL = 1e-12
SYNTH_RTOL = 1e-6


def _load_golden() -> dict:
    with open(GOLDEN_PATH) as fh:
        return json.load(fh)


def _synthesize():
    golden = _load_golden()
    sched = golden["synthesized"]["schedule"]
    schedule = AnnealSchedule(
        moves_per_temperature=sched["moves_per_temperature"],
        cooling=sched["cooling"],
        max_evaluations=sched["max_evaluations"])
    return synthesize_pulse_detector(seed=golden["synthesized"]["seed"],
                                     schedule=schedule)


def _assert_metrics(actual: dict, expected: dict, rtol: float,
                    context: str) -> None:
    assert set(actual) == set(expected), (
        f"{context}: metric set changed "
        f"(+{sorted(set(actual) - set(expected))} "
        f"-{sorted(set(expected) - set(actual))})")
    for name, want in expected.items():
        assert actual[name] == pytest.approx(want, rel=rtol, abs=1e-300), (
            f"{context}: {name} drifted from golden "
            f"{want!r} to {actual[name]!r}")


@pytest.mark.skipif(REGENERATE, reason="regenerating golden file")
class TestPulseDetectorGolden:
    def test_manual_design_performance(self):
        """The reference design's model evaluation is bit-stable."""
        golden = _load_golden()["manual_design"]
        assert MANUAL_DESIGN.sizes() == golden["sizes"]
        _assert_metrics(pulse_detector_performance(MANUAL_DESIGN.sizes()),
                        golden["performance"], MANUAL_RTOL, "manual design")

    def test_synthesized_design_matches_golden(self):
        """Seeded synthesis lands on the pinned sizing and performance."""
        golden = _load_golden()["synthesized"]
        result = _synthesize()
        assert result.feasible == golden["feasible"]
        assert result.cost == pytest.approx(golden["cost"], rel=SYNTH_RTOL)
        _assert_metrics(result.sizes, golden["sizes"], SYNTH_RTOL,
                        "synthesized sizes")
        _assert_metrics(result.performance, golden["performance"],
                        SYNTH_RTOL, "synthesized performance")

    def test_synthesis_is_run_to_run_deterministic(self):
        """Two fresh runs agree exactly — the golden can only break via a
        code change, never via run-to-run noise."""
        a, b = _synthesize(), _synthesize()
        assert a.sizes == b.sizes
        assert a.cost == b.cost
        assert a.performance == b.performance


@pytest.mark.skipif(not REGENERATE, reason="set REPRO_REGENERATE_GOLDEN=1")
def test_regenerate_golden():
    golden = _load_golden()
    result = _synthesize()
    golden["manual_design"]["sizes"] = MANUAL_DESIGN.sizes()
    golden["manual_design"]["performance"] = \
        pulse_detector_performance(MANUAL_DESIGN.sizes())
    golden["synthesized"].update(
        feasible=result.feasible, cost=result.cost, sizes=result.sizes,
        performance=result.performance)
    with open(GOLDEN_PATH, "w") as fh:
        json.dump(golden, fh, indent=2, sort_keys=True)
        fh.write("\n")
