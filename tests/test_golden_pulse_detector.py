"""Golden-file regression test for the Table 1 pulse-detector benchmark.

The pulse-detector synthesis (seed 1, fixed schedule) and the paper's
manual reference design are pinned to ``tests/golden/pulse_detector.json``.
Any drift in the analytic performance models, the spec-cost function, the
annealer's move/acceptance sequence, or the engine's determinism shows up
here as a concrete metric delta instead of a silent behaviour change.

Regeneration (after an *intentional* model change only)::

    PYTHONPATH=src REPRO_REGENERATE_GOLDEN=1 \
        python -m pytest -q tests/test_golden_pulse_detector.py

The manual design is a pure model evaluation and is compared tight
(rtol 1e-12); the synthesized point is the outcome of thousands of
floating-point annealing steps and gets rtol 1e-6 headroom for platform
libm differences.
"""

import json
import os
from pathlib import Path

import pytest

from repro.opt.anneal import AnnealSchedule
from repro.synthesis.pulse_detector import (
    MANUAL_DESIGN,
    pulse_detector_performance,
    synthesize_csa_batched,
    synthesize_pulse_detector,
)

GOLDEN_PATH = Path(__file__).parent / "golden" / "pulse_detector.json"
REGENERATE = bool(os.environ.get("REPRO_REGENERATE_GOLDEN"))

MANUAL_RTOL = 1e-12
SYNTH_RTOL = 1e-6


def _load_golden() -> dict:
    with open(GOLDEN_PATH) as fh:
        return json.load(fh)


def _synthesize():
    golden = _load_golden()
    sched = golden["synthesized"]["schedule"]
    schedule = AnnealSchedule(
        moves_per_temperature=sched["moves_per_temperature"],
        cooling=sched["cooling"],
        max_evaluations=sched["max_evaluations"])
    return synthesize_pulse_detector(seed=golden["synthesized"]["seed"],
                                     schedule=schedule)


def _synthesize_batched(batch_kernel: bool = True):
    golden = _load_golden()["batched_sizing"]
    sched = golden["schedule"]
    schedule = AnnealSchedule(
        moves_per_temperature=sched["moves_per_temperature"],
        cooling=sched["cooling"],
        max_evaluations=sched["max_evaluations"],
        stop_after_stale=sched["stop_after_stale"])
    return synthesize_csa_batched(seed=golden["seed"], schedule=schedule,
                                  batch_kernel=batch_kernel,
                                  batch_size=golden["batch_size"])


def _assert_metrics(actual: dict, expected: dict, rtol: float,
                    context: str) -> None:
    assert set(actual) == set(expected), (
        f"{context}: metric set changed "
        f"(+{sorted(set(actual) - set(expected))} "
        f"-{sorted(set(expected) - set(actual))})")
    for name, want in expected.items():
        assert actual[name] == pytest.approx(want, rel=rtol, abs=1e-300), (
            f"{context}: {name} drifted from golden "
            f"{want!r} to {actual[name]!r}")


@pytest.mark.skipif(REGENERATE, reason="regenerating golden file")
class TestPulseDetectorGolden:
    def test_manual_design_performance(self):
        """The reference design's model evaluation is bit-stable."""
        golden = _load_golden()["manual_design"]
        assert MANUAL_DESIGN.sizes() == golden["sizes"]
        _assert_metrics(pulse_detector_performance(MANUAL_DESIGN.sizes()),
                        golden["performance"], MANUAL_RTOL, "manual design")

    def test_synthesized_design_matches_golden(self):
        """Seeded synthesis lands on the pinned sizing and performance."""
        golden = _load_golden()["synthesized"]
        result = _synthesize()
        assert result.feasible == golden["feasible"]
        assert result.cost == pytest.approx(golden["cost"], rel=SYNTH_RTOL)
        _assert_metrics(result.sizes, golden["sizes"], SYNTH_RTOL,
                        "synthesized sizes")
        _assert_metrics(result.performance, golden["performance"],
                        SYNTH_RTOL, "synthesized performance")

    def test_synthesis_is_run_to_run_deterministic(self):
        """Two fresh runs agree exactly — the golden can only break via a
        code change, never via run-to-run noise."""
        a, b = _synthesize(), _synthesize()
        assert a.sizes == b.sizes
        assert a.cost == b.cost
        assert a.performance == b.performance


@pytest.mark.skipif(REGENERATE, reason="regenerating golden file")
class TestBatchedSizingGolden:
    """The vectorized-kernel CSA sizing trajectory is pinned.

    Unlike the analytic synthesis above, this run goes through the full
    simulation stack — ``StampPlan`` assembly, stacked LU, the engine's
    batcher dispatch — so any numerical drift in the batched kernels
    surfaces here as a trajectory delta.
    """

    def test_batched_sizing_matches_golden(self):
        golden = _load_golden()["batched_sizing"]
        result = _synthesize_batched()
        assert result.feasible == golden["feasible"]
        assert result.evaluations == golden["evaluations"]
        assert result.cost == pytest.approx(golden["cost"], rel=SYNTH_RTOL)
        _assert_metrics(result.sizes, golden["sizes"], SYNTH_RTOL,
                        "batched sizes")
        _assert_metrics(result.performance, golden["performance"],
                        SYNTH_RTOL, "batched performance")
        assert len(result.history) == len(golden["history"])
        for step, (got, want) in enumerate(zip(result.history,
                                               golden["history"])):
            assert got == pytest.approx(want, rel=SYNTH_RTOL), (
                f"batched sizing history diverged at temperature {step}")

    def test_batched_equals_scalar_trajectory(self):
        """The golden is mode-independent: turning the kernels off must
        land on the exact same annealing trajectory."""
        batched = _synthesize_batched(batch_kernel=True)
        scalar = _synthesize_batched(batch_kernel=False)
        assert batched.sizes == scalar.sizes
        assert batched.cost == scalar.cost
        assert batched.performance == scalar.performance
        assert batched.history == scalar.history


@pytest.mark.skipif(not REGENERATE, reason="set REPRO_REGENERATE_GOLDEN=1")
def test_regenerate_golden():
    golden = _load_golden()
    result = _synthesize()
    golden["manual_design"]["sizes"] = MANUAL_DESIGN.sizes()
    golden["manual_design"]["performance"] = \
        pulse_detector_performance(MANUAL_DESIGN.sizes())
    golden["synthesized"].update(
        feasible=result.feasible, cost=result.cost, sizes=result.sizes,
        performance=result.performance)
    batched = _synthesize_batched()
    golden["batched_sizing"].update(
        feasible=batched.feasible, cost=batched.cost, sizes=batched.sizes,
        performance=batched.performance, evaluations=batched.evaluations,
        history=list(batched.history))
    with open(GOLDEN_PATH, "w") as fh:
        json.dump(golden, fh, indent=2, sort_keys=True)
        fh.write("\n")
