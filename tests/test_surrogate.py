"""Tests for the cache-trained surrogate screening subsystem.

Covers the four surrogate modules (features / model / corpus / screen),
the cache enumeration API they harvest through, the optimizer and sizer
hooks, the serve-broker corpus sidecar, the schema v5 / manifest v4
contract — and the differential matrix the determinism story rests on:
seed × {surrogate on, off} × {serial, parallel} must produce
per-configuration identical trajectories, with the screened final cost
within tolerance of the unscreened baseline.
"""

import json
import pickle

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.specs import Spec, SpecSet
from repro.engine import (
    EngineConfig,
    EvalCache,
    EvaluationEngine,
    ServeConfig,
    SurrogateConfig,
    build_manifest,
    canonical_key,
    check_report,
    manifest_digest,
    validate_manifest,
)
from repro.engine.faults import EvalFailure
from repro.opt.anneal import AnnealSchedule, anneal_continuous
from repro.opt.genetic import FloatGene, GeneticOptimizer
from repro.surrogate import (
    Corpus,
    CorpusIndex,
    CorpusRecord,
    FeatureSpec,
    RbfSurrogate,
    SurrogateScreen,
    harvest_cache,
)
from repro.synthesis.pulse_detector import (
    pulse_detector_performance,
    pulse_detector_space,
    pulse_detector_specs,
)

SPECS = pulse_detector_specs()
SPACE = pulse_detector_space()


def _pd_cost(point: dict) -> float:
    """Module-level (picklable) pulse-detector cost for worker dispatch."""
    return SPECS.cost(pulse_detector_performance(point))


def _pd_key(x) -> str:
    return canonical_key("pd", x)


SCHEDULE = AnnealSchedule(moves_per_temperature=24, cooling=0.7,
                          max_evaluations=400, stop_after_stale=4)


def _stable_surrogate(section: dict) -> dict:
    """Surrogate report section minus the wall-clock latency rollups."""
    return {k: v for k, v in section.items()
            if not k.endswith("_latency_p50_s")}
SCREEN_CFG = SurrogateConfig(min_fit=32, refit_every=16,
                             simulate_fraction=0.25, explore_fraction=0.1)


# ----------------------------------------------------------------------
# Cache enumeration API (satellite)
# ----------------------------------------------------------------------

class TestCacheEnumeration:
    def test_items_snapshots_lru_without_touching_stats(self):
        cache = EvalCache(max_entries=8)
        for i in range(3):
            cache.put(f"k{i}", {"v": i})
        cache.get("k0")  # promote k0 to most-recent
        before = dict(cache.stats.as_dict())
        items = cache.items()
        assert [k for k, _ in items] == ["k1", "k2", "k0"]
        assert dict(items)["k2"] == {"v": 2}
        assert cache.stats.as_dict() == before
        # ...and enumeration did not perturb recency either.
        assert [k for k, _ in cache.items()] == ["k1", "k2", "k0"]

    def test_scan_disk_sorted_and_resilient(self, tmp_path):
        cache = EvalCache(max_entries=4, disk_dir=tmp_path)
        for i in range(3):
            cache.put(f"key{i}", {"v": i})
        # Corrupt pickle and a persisted failure record: both skipped.
        (tmp_path / "zzz.pkl").write_bytes(b"not a pickle")
        failure = EvalFailure(exception_type="Boom", message="x",
                              token="t", attempts=1)
        with open(tmp_path / "aaa.pkl", "wb") as fh:
            pickle.dump(failure, fh)
        fresh = EvalCache(max_entries=4, disk_dir=tmp_path)
        scanned = list(fresh.scan_disk())
        assert [k for k, _ in scanned] == ["key0", "key1", "key2"]
        assert scanned[1][1] == {"v": 1}
        assert len(fresh) == 0  # nothing promoted into the LRU

    def test_scan_disk_without_disk_layer_is_empty(self):
        assert list(EvalCache().scan_disk()) == []


# ----------------------------------------------------------------------
# Featurization
# ----------------------------------------------------------------------

class TestFeatureSpec:
    def test_from_continuous_sorted_and_scaled(self):
        spec = FeatureSpec.from_continuous(SPACE.to_continuous())
        assert list(spec.names) == sorted(spec.names)
        v = spec.encode(dict(pulse_detector_space().variables and {
            n: (lo * hi) ** 0.5
            for n, (lo, hi) in SPACE.variables.items()}))
        assert v.shape == (len(spec.names),)
        # Geometric midpoint of a log-scaled box is the feature midpoint.
        assert np.allclose(v, 0.5)

    def test_encode_missing_parameter_raises(self):
        spec = FeatureSpec.from_continuous(SPACE.to_continuous())
        with pytest.raises(ValueError, match="missing parameter"):
            spec.encode({"i_csa": 1e-3})

    def test_encode_ignores_extra_keys(self):
        spec = FeatureSpec.from_continuous(SPACE.to_continuous())
        point = {n: (lo * hi) ** 0.5
                 for n, (lo, hi) in SPACE.variables.items()}
        assert np.array_equal(spec.encode(point),
                              spec.encode({**point, "vdd": 3.3}))

    def test_from_genes_mixed(self):
        from repro.opt.genetic import CategoricalGene
        genes = [FloatGene("w", 1e-6, 1e-4),
                 CategoricalGene("topo", ("a", "b", "c"))]
        spec = FeatureSpec.from_genes(genes)
        v = spec.encode({"topo": "b", "w": 1e-5})
        assert v[0] == pytest.approx(0.5)  # topo index 1 of 3 → 0.5
        assert 0.0 < v[1] < 1.0
        back = spec.decode(v)
        assert back["topo"] == "b"
        assert back["w"] == pytest.approx(1e-5)

    @given(st.dictionaries(
        st.sampled_from(sorted(SPACE.variables)),
        st.floats(min_value=0.0, max_value=1.0),
        min_size=len(SPACE.variables), max_size=len(SPACE.variables)))
    @settings(max_examples=25, deadline=None)
    def test_key_order_independent(self, unit_point):
        spec = FeatureSpec.from_continuous(SPACE.to_continuous())
        point = {n: lo * (hi / lo) ** u for (n, (lo, hi)), u in
                 zip(sorted(SPACE.variables.items()), sorted(unit_point
                     .items()) and [unit_point[n] for n in
                                    sorted(unit_point)])}
        shuffled = dict(reversed(list(point.items())))
        assert np.array_equal(spec.encode(point), spec.encode(shuffled))

    @given(st.lists(st.floats(min_value=0.0, max_value=1.0),
                    min_size=len(SPACE.variables),
                    max_size=len(SPACE.variables)))
    @settings(max_examples=25, deadline=None)
    def test_round_trips_scaling(self, unit):
        spec = FeatureSpec.from_continuous(SPACE.to_continuous())
        vec = np.array(unit)
        point = spec.decode(vec)
        assert np.allclose(spec.encode(point), vec, atol=1e-9)


# ----------------------------------------------------------------------
# Model
# ----------------------------------------------------------------------

class TestRbfSurrogate:
    def _data(self, n=60, seed=0):
        rng = np.random.default_rng(seed)
        X = rng.random((n, 2))
        y = np.sin(3 * X[:, 0]) + X[:, 1] ** 2
        return X, y

    def test_fits_smooth_function(self):
        X, y = self._data()
        model = RbfSurrogate(length_scale=0.3).fit(X, y)
        pred = model.predict(X)
        assert float(np.max(np.abs(pred - y))) < 0.05

    def test_byte_stable_training(self):
        X, y = self._data(n=700)  # forces the seeded center subsample
        Xq = np.random.default_rng(9).random((20, 2))
        a = RbfSurrogate(max_centers=256, seed=5).fit(X, y)
        b = RbfSurrogate(max_centers=256, seed=5).fit(X, y)
        assert a.n_fit == b.n_fit == 256
        assert a.predict(Xq).tobytes() == b.predict(Xq).tobytes()
        assert a.uncertainty(Xq).tobytes() == b.uncertainty(Xq).tobytes()

    def test_uncertainty_grows_away_from_data(self):
        X, y = self._data()
        model = RbfSurrogate(length_scale=0.2).fit(X, y)
        near = model.uncertainty(X[:5])
        far = model.uncertainty(np.full((1, 2), 40.0))
        assert float(far[0]) > float(np.max(near))

    def test_nonfinite_targets_dropped(self):
        X, y = self._data()
        y = y.copy()
        y[::3] = np.inf
        model = RbfSurrogate().fit(X, y)
        assert model.n_fit == np.isfinite(y).sum()

    def test_too_few_rows_raises(self):
        with pytest.raises(ValueError, match="at least 2"):
            RbfSurrogate().fit(np.ones((1, 2)), np.ones(1))

    def test_predict_before_fit_raises(self):
        with pytest.raises(RuntimeError):
            RbfSurrogate().predict(np.ones((1, 2)))


# ----------------------------------------------------------------------
# Corpus / index / harvest
# ----------------------------------------------------------------------

class TestCorpus:
    def test_dedup_and_eviction(self):
        corpus = Corpus(max_records=3)
        assert corpus.add(CorpusRecord((0.1,), 1.0, key="a"))
        assert not corpus.add(CorpusRecord((0.9,), 9.0, key="a"))
        for i in range(4):
            corpus.add(CorpusRecord((float(i),), float(i), key=f"k{i}"))
        assert len(corpus) == 3
        # ...and the evicted key can re-enter (bound, not a tombstone).
        assert corpus.add(CorpusRecord((0.1,), 1.0, key="a"))

    def test_keyless_dedup_by_features(self):
        corpus = Corpus()
        assert corpus.add(CorpusRecord((0.25, 0.5), 1.0))
        assert not corpus.add(CorpusRecord((0.25, 0.5), 2.0))

    def test_jsonl_round_trip(self, tmp_path):
        corpus = Corpus()
        corpus.add(CorpusRecord((0.1, 0.2), 3.0, key="a",
                                sizes={"w": 1e-6},
                                performance={"gain": 10.0}))
        corpus.add(CorpusRecord((0.3, 0.4), float("inf"), key="b"))
        path = corpus.to_jsonl(tmp_path / "corpus.jsonl")
        loaded = Corpus.from_jsonl(path)
        assert len(loaded) == 2
        assert loaded.records[0].performance == {"gain": 10.0}
        X, y = loaded.matrix()  # infinite-cost record excluded
        assert X.shape == (1, 2) and y.tolist() == [3.0]

    def test_index_round_trip_and_dedup(self, tmp_path):
        path = tmp_path / "corpus_index.jsonl"
        with CorpusIndex(path) as index:
            assert index.record("k1", {"w": 1.0})
            assert not index.record("k1", {"w": 2.0})
            assert index.record("k2", {"w": 3.0})
        assert CorpusIndex.load(path) == {"k1": {"w": 1.0},
                                          "k2": {"w": 3.0}}

    def test_harvest_joins_both_cache_layers(self, tmp_path):
        disk = tmp_path / "cache"
        spec = FeatureSpec.from_continuous(SPACE.to_continuous())
        specs = pulse_detector_specs()
        mid = {n: (lo * hi) ** 0.5 for n, (lo, hi) in
               SPACE.variables.items()}
        hot = {**mid, "i_csa": 1e-3}
        # Disk-only entry (written by a previous process)...
        old = EvalCache(disk_dir=disk)
        old.put("key_disk", pulse_detector_performance(mid))
        # ...plus a memory entry in the live cache.
        cache = EvalCache(disk_dir=disk)
        cache.put("key_mem", pulse_detector_performance(hot))
        index = {"key_disk": mid, "key_mem": hot, "key_absent": mid}
        corpus = harvest_cache(cache, index, feature_spec=spec,
                               cost_fn=specs.cost)
        assert {r.key for r in corpus.records} == {"key_disk", "key_mem"}
        for r in corpus.records:
            assert r.cost == pytest.approx(
                specs.cost(pulse_detector_performance(r.sizes)))

    def test_harvest_numeric_values_without_cost_fn(self):
        cache = EvalCache()
        cache.put("k", 4.5)
        corpus = harvest_cache(cache, {"k": {"x": 2.0}})
        assert corpus.records[0].cost == 4.5
        assert corpus.records[0].features == (2.0,)


# ----------------------------------------------------------------------
# Screening policy
# ----------------------------------------------------------------------

class _CountingEval:
    """Fake raw evaluator: f(x) = (x - 0.3)^2 over 1-D states."""

    def __init__(self, fn=None):
        self.calls = 0
        self.seen: list[float] = []
        self.fn = fn if fn is not None else lambda x: (x - 0.3) ** 2

    def __call__(self, states):
        self.calls += len(states)
        self.seen.extend(states)
        return [self.fn(s) for s in states]


class TestScreen:
    CFG = SurrogateConfig(min_fit=16, refit_every=8, simulate_fraction=0.25,
                          explore_fraction=0.0, miss_window=8,
                          max_miss_rate=0.3, fallback_batches=2)

    def _warm_screen(self, evaluate, cfg=None):
        screen = SurrogateScreen(lambda s: np.array([s]),
                                 config=cfg or self.CFG)
        rng = np.random.default_rng(0)
        screen.screen(evaluate, list(rng.random(24)))  # cold: all real
        return screen

    def test_cold_simulates_everything(self):
        ev = _CountingEval()
        screen = SurrogateScreen(lambda s: np.array([s]), config=self.CFG)
        out = screen.screen(ev, [0.1, 0.2, 0.9])
        assert ev.calls == 3
        assert out == [ev.fn(0.1), ev.fn(0.2), ev.fn(0.9)]
        assert not screen.model.is_fit

    def test_active_screening_avoids_sims(self):
        ev = _CountingEval()
        screen = self._warm_screen(ev)
        before = ev.calls
        batch = list(np.linspace(0.35, 0.95, 16))
        out = screen.screen(ev, batch)
        assert screen.model.is_fit
        assert 0 < ev.calls - before < len(batch)
        assert len(out) == len(batch)

    def test_winner_predictions_are_verified(self):
        ev = _CountingEval()
        screen = self._warm_screen(ev)
        # A batch full of near-optimal points: their predictions undercut
        # best_real, so the winner rule must promote them to real sims.
        batch = [0.3, 0.300001, 0.2999]
        screen.screen(ev, batch)
        assert set(batch) <= set(ev.seen)
        # Inductively, the best value the screen ever *returned* as real
        # equals the best real evaluation seen so far.
        assert screen.best_real == pytest.approx(min(ev.fn(s)
                                                     for s in ev.seen))

    def test_miss_storm_triggers_fallback(self):
        ev = _CountingEval()
        screen = self._warm_screen(ev)
        # The landscape changes under the model: every verification
        # misses, the rolling window fills, fallback engages.
        shifted = _CountingEval(fn=lambda x: 50.0 + x)
        for lo in (0.0, 0.25, 0.5, 0.75):
            screen.screen(shifted, list(np.linspace(lo, lo + 0.2, 12)))
        assert screen._fallback_left > 0 or shifted.calls >= 20

    def test_failures_pass_through_unabsorbed(self):
        failure = EvalFailure(exception_type="Boom", message="m",
                              token="t", attempts=1)
        ev = _CountingEval(fn=lambda x: failure)
        screen = SurrogateScreen(lambda s: np.array([s]), config=self.CFG)
        out = screen.screen(ev, [0.1, 0.2])
        assert out == [failure, failure]
        assert len(screen.corpus) == 0
        assert screen.best_real == float("inf")

    def test_counters_flow_into_engine_report(self):
        engine = EvaluationEngine.from_config(EngineConfig())
        ev = _CountingEval()
        screen = SurrogateScreen(lambda s: np.array([s]), config=self.CFG,
                                 telemetry=engine.telemetry)
        rng = np.random.default_rng(1)
        screen.screen(ev, list(rng.random(24)))
        screen.screen(ev, list(np.linspace(0.4, 0.9, 16)))
        report = engine.report()
        engine.close()
        check_report(report)
        sur = report["surrogate"]
        assert sur["fits"] >= 1
        assert sur["predictions"] == sur["screened"] == 16
        assert sur["simulated"] + sur["sims_avoided"] == sur["screened"]
        assert sur["avoid_rate"] == pytest.approx(
            sur["sims_avoided"] / sur["screened"])
        assert sur["predict_latency_p50_s"] is not None


# ----------------------------------------------------------------------
# Differential matrix: seed × {on, off} × {serial, parallel}
# ----------------------------------------------------------------------

def _run_anneal(seed: int, executor: str, screened: bool):
    cont = SPACE.to_continuous()
    engine = EvaluationEngine.from_config(EngineConfig(
        executor=executor, workers=2, cache=True, trace=True))
    screen = None
    if screened:
        spec = FeatureSpec.from_continuous(cont)
        screen = SurrogateScreen(
            featurize=lambda x: spec.encode(cont.to_dict(x)),
            config=SCREEN_CFG, telemetry=engine.telemetry,
            tracer=engine.tracer)
    result = anneal_continuous(_pd_cost, cont, schedule=SCHEDULE,
                               seed=seed, executor=engine.keyed(_pd_key),
                               batch_size=8, surrogate=screen)
    report = engine.report()
    engine.close()
    return result, report


class TestDifferentialMatrix:
    @pytest.mark.parametrize("seed", [3, 11])
    def test_screened_trajectory_deterministic_per_seed(self, seed):
        a, ra = _run_anneal(seed, "serial", screened=True)
        b, rb = _run_anneal(seed, "serial", screened=True)
        assert a.history == b.history
        assert a.best_state.tobytes() == b.best_state.tobytes()
        assert a.best_cost == b.best_cost
        assert _stable_surrogate(ra["surrogate"]) == \
            _stable_surrogate(rb["surrogate"])

    @pytest.mark.parametrize("screened", [False, True])
    def test_serial_parallel_identical(self, screened):
        s, rs = _run_anneal(7, "serial", screened)
        p, rp = _run_anneal(7, "parallel", screened)
        assert s.history == p.history
        assert s.best_state.tobytes() == p.best_state.tobytes()
        assert s.best_cost == p.best_cost
        assert _stable_surrogate(rs["surrogate"]) == \
            _stable_surrogate(rp["surrogate"])
        from repro.engine.trace import strip_volatile
        assert strip_volatile(rs["spans"]) == strip_volatile(rp["spans"])

    @pytest.mark.parametrize("seed", [3, 7, 11])
    def test_screened_cost_within_tolerance_and_saves_sims(self, seed):
        off, r_off = _run_anneal(seed, "serial", screened=False)
        on, r_on = _run_anneal(seed, "serial", screened=True)
        evals_off = r_off["counters"]["engine.evaluations"]
        evals_on = r_on["counters"]["engine.evaluations"]
        assert evals_on < evals_off
        assert r_on["surrogate"]["sims_avoided"] > 0
        # Final cost within tolerance of the unscreened baseline.
        assert on.best_cost <= off.best_cost * 2.0 + 0.1
        # The winner rule guarantees best_cost is a *real* evaluation.
        best_point = SPACE.to_continuous().to_dict(on.best_state)
        assert on.best_cost == pytest.approx(_pd_cost(best_point))

    def test_surrogate_off_section_is_all_zero(self):
        _, report = _run_anneal(3, "serial", screened=False)
        sur = report["surrogate"]
        assert sur["fits"] == sur["predictions"] == sur["screened"] == 0
        assert sur["avoid_rate"] is None
        assert sur["fit_latency_p50_s"] is None


# ----------------------------------------------------------------------
# GA hook
# ----------------------------------------------------------------------

class TestGeneticHook:
    GENES = [FloatGene("x", 0.01, 1.0, log_scale=False),
             FloatGene("y", 0.01, 1.0, log_scale=False)]

    @staticmethod
    def _fitness(g):
        return (g["x"] - 0.4) ** 2 + (g["y"] - 0.6) ** 2

    def _run(self, screened: bool):
        screen = None
        if screened:
            spec = FeatureSpec.from_genes(self.GENES)
            screen = SurrogateScreen(spec.encode, config=SurrogateConfig(
                min_fit=24, refit_every=12))
        ga = GeneticOptimizer(self.GENES, self._fitness, population=24,
                              seed=5, surrogate=screen)
        return ga.run(generations=12), screen

    def test_screened_ga_deterministic_and_close(self):
        base, _ = self._run(False)
        a, screen_a = self._run(True)
        b, _ = self._run(True)
        assert a.history == b.history
        assert a.best == b.best
        assert len(screen_a.corpus) > 0
        assert a.best_fitness <= base.best_fitness + 0.05
        # Claimed winners are verified: the reported best is real.
        assert a.best_fitness == pytest.approx(self._fitness(a.best))


# ----------------------------------------------------------------------
# Schema v5 / manifest v4
# ----------------------------------------------------------------------

class TestSchema:
    def test_fresh_engine_report_validates(self):
        engine = EvaluationEngine.from_config(EngineConfig(trace=True))
        report = engine.report()
        engine.close()
        check_report(report)
        assert report["schema_version"] == 9

    def test_manifest_v4_with_surrogate_rollups(self):
        config = EngineConfig(trace=True, surrogate=SurrogateConfig())
        _, report = None, None
        cont = SPACE.to_continuous()
        engine = EvaluationEngine.from_config(config)
        spec = FeatureSpec.from_continuous(cont)
        screen = SurrogateScreen(
            featurize=lambda x: spec.encode(cont.to_dict(x)),
            config=SCREEN_CFG, telemetry=engine.telemetry,
            tracer=engine.tracer)
        anneal_continuous(_pd_cost, cont, schedule=SCHEDULE, seed=3,
                          executor=engine.keyed(_pd_key), batch_size=8,
                          surrogate=screen)
        manifest = build_manifest("anneal_pd", engine, seed=3,
                                  config=config)
        engine.close()
        validate_manifest(manifest)
        assert manifest["schema_version"] == 8
        assert manifest["rollups"]["surrogate_sims_avoided"] > 0
        assert manifest["run"]["config"]["surrogate"]["min_fit"] == 64

    def test_manifest_digest_stable_across_screened_reruns(self):
        def one_manifest():
            cont = SPACE.to_continuous()
            engine = EvaluationEngine.from_config(
                EngineConfig(trace=True, cache=True))
            spec = FeatureSpec.from_continuous(cont)
            screen = SurrogateScreen(
                featurize=lambda x: spec.encode(cont.to_dict(x)),
                config=SCREEN_CFG, telemetry=engine.telemetry,
                tracer=engine.tracer)
            anneal_continuous(_pd_cost, cont, schedule=SCHEDULE, seed=11,
                              executor=engine.keyed(_pd_key), batch_size=8,
                              surrogate=screen)
            manifest = build_manifest("anneal_pd", engine, seed=11)
            engine.close()
            return manifest
        assert manifest_digest(one_manifest()) == \
            manifest_digest(one_manifest())

    def test_surrogate_config_validation(self):
        with pytest.raises(ValueError, match="simulate_fraction"):
            SurrogateConfig(simulate_fraction=0.0)
        with pytest.raises(ValueError, match="max_corpus"):
            SurrogateConfig(min_fit=100, max_corpus=50)
        with pytest.raises(ValueError, match="miss_tol"):
            SurrogateConfig(miss_tol=-1.0)


# ----------------------------------------------------------------------
# Sizer + serve corpus plumbing
# ----------------------------------------------------------------------

class TestSizerIntegration:
    def _sizer(self, tmp_path, seed=1):
        from repro.synthesis import (
            DesignSpace,
            SimulationBasedSizer,
            SimulationEvaluator,
        )
        from repro.circuits.library import five_transistor_ota

        def builder(sizes):
            keys = ("w_in", "l_in", "w_load", "l_load", "w_tail", "l_tail",
                    "i_bias", "c_load", "vdd")
            return five_transistor_ota(
                {k: v for k, v in sizes.items() if k in keys})
        space = DesignSpace(
            variables={"w_in": (5e-6, 500e-6), "w_load": (5e-6, 200e-6),
                       "i_bias": (2e-6, 500e-6)},
            fixed={"w_tail": 30e-6, "l_in": 2e-6, "l_load": 2e-6,
                   "l_tail": 2e-6, "c_load": 2e-12, "vdd": 3.3})
        specs = SpecSet([Spec.at_least("gain_db", 30.0),
                         Spec.minimize("power", good=1e-4)])
        config = EngineConfig(
            cache=True, disk_cache_dir=tmp_path / "cache", trace=True,
            surrogate=SurrogateConfig(
                min_fit=24, refit_every=12, corpus_dir=str(tmp_path)))
        return SimulationBasedSizer(
            SimulationEvaluator(builder=builder), space, specs,
            schedule=AnnealSchedule(moves_per_temperature=12, cooling=0.7,
                                    max_evaluations=180,
                                    stop_after_stale=3),
            seed=seed, batch_size=6, config=config)

    def test_screened_sizing_persists_corpus(self, tmp_path):
        sizer = self._sizer(tmp_path)
        result = sizer.run()
        assert result.performance  # final point re-measured for real
        corpus_path = tmp_path / "corpus.jsonl"
        index_path = tmp_path / "corpus_index.jsonl"
        assert corpus_path.exists() and index_path.exists()
        records = [json.loads(line) for line in
                   corpus_path.read_text().splitlines()]
        assert records and all("features" in r and "cost" in r
                               for r in records)
        assert CorpusIndex.load(index_path)
        report = sizer.engine.report()
        check_report(report)
        assert report["surrogate"]["fits"] >= 1
        assert report["surrogate"]["sims_avoided"] > 0

    def test_second_run_warm_starts_from_corpus(self, tmp_path):
        self._sizer(tmp_path, seed=1).run()
        first = len((tmp_path / "corpus.jsonl").read_text().splitlines())
        sizer = self._sizer(tmp_path, seed=2)
        sizer.run()
        report = sizer.engine.report()
        # Warm start: the corpus grew across runs and the second run
        # screened from its very first post-probe batch.
        second = len((tmp_path / "corpus.jsonl").read_text().splitlines())
        assert second > first
        assert report["surrogate"]["sims_avoided"] > 0


class TestServeCorpus:
    def test_broker_records_completed_keyed_requests(self, tmp_path):
        from repro.serve import Broker, Workload

        engine = EvaluationEngine.from_config(EngineConfig(
            cache=True, disk_cache_dir=tmp_path / "cache"))
        broker = Broker(engine, config=ServeConfig(
            max_wait_ms=0, corpus_dir=str(tmp_path)), owns_engine=True)
        broker.register(Workload(
            "perf", pulse_detector_performance,
            key_fn=lambda p: canonical_key("pd_serve", p)))
        mid = {n: (lo * hi) ** 0.5 for n, (lo, hi) in
               SPACE.variables.items()}
        points = [{**mid, "i_csa": mid["i_csa"] * (1 + 0.1 * i)}
                  for i in range(4)]
        with broker:
            handles = [broker.submit("perf", p) for p in points]
            for h in handles:
                h.result(timeout=10)
        index = CorpusIndex.load(tmp_path / "corpus_index.jsonl")
        assert len(index) == 4
        # Served traffic is harvestable: keys join the disk cache layer.
        fresh = EvalCache(disk_dir=tmp_path / "cache")
        spec = FeatureSpec.from_continuous(SPACE.to_continuous())
        corpus = harvest_cache(fresh, index, feature_spec=spec,
                               cost_fn=SPECS.cost)
        assert len(corpus) == 4
