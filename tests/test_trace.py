"""Structured tracing, run manifests and the versioned report schema.

The observability layer (repro.engine.trace / schema / config) promises:

1. spans nest along the flow hierarchy, with monotonic durations and
   inclusive telemetry-counter deltas;
2. the *structure* of a trace (names, nesting, order, statuses, counters,
   structural event fields) is a pure function of (seed, config) —
   identical for serial and parallel executors, with and without injected
   faults — while wall-clock fields are stripped by ``strip_volatile``;
3. ``engine.report()`` follows schema v2 and run manifests validate
   against the checked-in JSON Schema, with a byte-stable structural
   digest;
4. ``Telemetry.merge`` is deterministic regardless of merge order.
"""

import json
import os

import pytest

from repro.circuits.library import five_transistor_ota
from repro.core.specs import Spec, SpecSet
from repro.engine import (
    EngineConfig,
    EvalCache,
    EvalFailure,
    EvaluationEngine,
    FaultInjector,
    JobGraph,
    MANIFEST_SCHEMA_VERSION,
    REPORT_SCHEMA_VERSION,
    RetryPolicy,
    SchemaError,
    SerialExecutor,
    Telemetry,
    Tracer,
    build_manifest,
    check_report,
    current_tracer,
    manifest_digest,
    strip_volatile,
    validate_manifest,
)
from repro.engine import trace as trace_mod
from repro.opt.anneal import AnnealSchedule
from repro.synthesis.equation_based import DesignSpace
from repro.synthesis.simulation_based import (
    SimulationBasedSizer,
    SimulationEvaluator,
)

FAULT_RATE = float(os.environ.get("REPRO_FAULT_RATE", "0.1"))


def _square(x):
    return x * x


# ----------------------------------------------------------------------
# Span mechanics
# ----------------------------------------------------------------------

class TestSpans:
    def test_paths_follow_nesting(self):
        tracer = Tracer()
        with tracer.span("flow") as flow:
            with tracer.span("stage") as stage:
                with tracer.span("inner") as inner:
                    pass
        assert flow.path == "flow"
        assert stage.path == "flow/stage"
        assert inner.path == "flow/stage/inner"
        assert [s.path for s in flow.walk()] == \
            ["flow", "flow/stage", "flow/stage/inner"]

    def test_indices_record_global_start_order(self):
        tracer = Tracer()
        with tracer.span("a"):
            with tracer.span("b"):
                pass
        with tracer.span("c"):
            pass
        assert [r.index for r in tracer.roots] == [0, 2]
        assert tracer.roots[0].children[0].index == 1

    def test_counter_deltas_are_inclusive(self):
        tracer = Tracer()
        with tracer.span("outer") as outer:
            tracer.count("work", 1)
            with tracer.span("inner") as inner:
                tracer.count("work", 2)
        assert inner.counters == {"work": 2}
        assert outer.counters == {"work": 3}  # child's work included

    def test_error_status_and_reraise(self):
        tracer = Tracer()
        with pytest.raises(ValueError):
            with tracer.span("doomed"):
                raise ValueError("boom")
        span = tracer.roots[0]
        assert span.status == "error"
        assert span.duration_s >= 0.0
        # The stack unwound: a new span is a root again.
        with tracer.span("next"):
            pass
        assert tracer.roots[1].path == "next"

    def test_simulator_calls_sums_engine_and_analysis_counters(self):
        tracer = Tracer()
        with tracer.span("s") as span:
            tracer.count("engine.evaluations", 3)
            tracer.count("analysis.dc", 2)
            tracer.count("analysis.tran", 1)
            tracer.count("unrelated", 9)
        assert span.simulator_calls() == 6

    def test_active_tracer_and_suspension(self):
        tracer = Tracer()
        assert current_tracer() is None
        with tracer.span("s"):
            assert current_tracer() is tracer
            with trace_mod.suspended():
                assert current_tracer() is None
            assert current_tracer() is tracer
        assert current_tracer() is None

    def test_events_carry_seq_span_and_structural_fields(self):
        tracer = Tracer()
        with tracer.span("s"):
            tracer.event("custom", points=4, wall_s=0.25)
        kinds = [e["kind"] for e in tracer.events]
        assert kinds == ["span_start", "custom", "span_end"]
        assert [e["seq"] for e in tracer.events] == [0, 1, 2]
        assert tracer.events[1]["span"] == "s"
        stripped = tracer.event_structure()[1]
        assert stripped["points"] == 4
        assert "wall_s" not in stripped and "t_rel" not in stripped

    def test_write_events_is_jsonl(self, tmp_path):
        tracer = Tracer()
        with tracer.span("s"):
            tracer.event("e", n=1)
        path = tracer.write_events(tmp_path / "trace.jsonl")
        lines = path.read_text().splitlines()
        assert len(lines) == 3
        assert all(json.loads(line)["kind"] for line in lines)


class TestStripVolatile:
    def test_removes_wall_clock_keys_recursively(self):
        obj = {
            "duration_s": 1.2, "worker_s": 0.5, "t_rel": 0.1,
            "timers": {"x": 1}, "counters": {"n": 3},
            "children": [{"wall_s": 0.2, "name": "c"}],
        }
        assert strip_volatile(obj) == {
            "counters": {"n": 3}, "children": [{"name": "c"}],
        }

    def test_preserves_non_dict_values(self):
        assert strip_volatile([1, "a", None]) == [1, "a", None]


# ----------------------------------------------------------------------
# Telemetry.merge determinism (ISSUE satellite)
# ----------------------------------------------------------------------

class TestTelemetryMergeDeterminism:
    @staticmethod
    def _failure(i, exc="ConvergenceError"):
        return EvalFailure(exc, f"failure {i}", token=f"t{i:03d}")

    def test_merge_order_does_not_change_records(self):
        parts = []
        for chunk in ([self._failure(3), self._failure(1)],
                      [self._failure(2, "WorkerCrashError")],
                      [self._failure(0)]):
            t = Telemetry()
            for f in chunk:
                t.record_failure(f)
            parts.append(t)

        merged_ab = Telemetry()
        for t in parts:
            merged_ab.merge(t)
        merged_ba = Telemetry()
        for t in reversed(parts):
            merged_ba.merge(t)
        assert [f.as_dict() for f in merged_ab.failure_records] == \
            [f.as_dict() for f in merged_ba.failure_records]
        assert merged_ab.counters == merged_ba.counters

    def test_merged_records_are_sorted_and_bounded(self):
        a, b = Telemetry(max_failure_records=3), Telemetry()
        for i in (5, 1):
            a.record_failure(self._failure(i))
        for i in (4, 0, 2):
            b.record_failure(self._failure(i))
        a.merge(b)
        tokens = [f.token for f in a.failure_records]
        assert tokens == ["t000", "t001", "t002"]  # sorted, capped at 3
        assert a.failure_count() == 5  # counters still see everything


# ----------------------------------------------------------------------
# Engine integration: schema v2 report, batch/failure events
# ----------------------------------------------------------------------

class TestEngineReportSchema:
    def test_untraced_report_is_schema_v2_with_empty_spans(self):
        engine = EvaluationEngine()
        engine.map_evaluate(_square, [1, 2])
        report = engine.report()
        check_report(report)  # raises on drift
        assert report["schema_version"] == REPORT_SCHEMA_VERSION
        assert report["spans"] == []

    def test_traced_report_embeds_span_tree(self):
        engine = EvaluationEngine.from_config(
            EngineConfig(cache=True, trace=True))
        with engine.tracer.span("stage"):
            engine.map_evaluate(_square, [1, 2, 2], key_fn=str)
        report = engine.report()
        check_report(report)
        (span,) = report["spans"]
        assert span["name"] == "stage"
        assert span["counters"]["engine.requests"] == 3
        assert span["counters"]["engine.evaluations"] == 2  # deduped
        assert span["duration_s"] >= 0.0

    def test_check_report_rejects_drift(self):
        engine = EvaluationEngine()
        report = engine.report()
        del report["spans"]
        with pytest.raises(SchemaError, match="spans"):
            check_report(report)
        report = engine.report()
        report["schema_version"] = 999
        with pytest.raises(SchemaError, match="schema_version"):
            check_report(report)

    def test_batch_and_failure_events_are_emitted(self):
        config = EngineConfig(
            trace=True,
            retry_policy=RetryPolicy(max_attempts=2),
            fault_injector=FaultInjector(rate=1.0, seed=3,
                                         kinds=("convergence",)))
        engine = EvaluationEngine.from_config(config)
        with engine.tracer.span("s"):
            engine.map_evaluate(_square, [1, 2])
        kinds = [e["kind"] for e in engine.tracer.events]
        assert "batch" in kinds and "failure" in kinds and "retry" in kinds
        batch = next(e for e in engine.tracer.events if e["kind"] == "batch")
        assert batch["points"] == 2 and batch["failures"] == 2
        assert batch["retries"] == 2
        failure = next(e for e in engine.tracer.events
                       if e["kind"] == "failure")
        assert failure["exception_type"] == "ConvergenceError"

    def test_all_hit_batch_is_still_an_event(self):
        engine = EvaluationEngine.from_config(
            EngineConfig(cache=True, trace=True))
        with engine.tracer.span("s"):
            engine.map_evaluate(_square, [4], key_fn=str)
            engine.map_evaluate(_square, [4], key_fn=str)
        batches = [e for e in engine.tracer.events if e["kind"] == "batch"]
        assert [b["evaluations"] for b in batches] == [1, 0]
        assert batches[1]["hits"] == 1

    def test_analysis_counters_suspended_during_dispatch(self):
        """In-process (serial) dispatch must not count analysis.* where
        pool workers could not: span attribution is executor-invariant."""
        from repro.analysis import api

        def analysis_eval(x):
            assert current_tracer() is None  # suspended inside dispatch
            return x

        engine = EvaluationEngine.from_config(EngineConfig(trace=True))
        with engine.tracer.span("s") as span:
            engine.map_evaluate(analysis_eval, [1, 2])
        assert not any(k.startswith("analysis.") for k in span.counters)

    def test_worker_eval_timer_recorded(self):
        engine = EvaluationEngine.from_config(EngineConfig(trace=True))
        engine.map_evaluate(_square, [1, 2, 3])
        timers = engine.report()["timers"]
        assert timers["engine.worker_eval"]["calls"] == 1
        assert timers["engine.worker_eval"]["total_s"] >= 0.0


# ----------------------------------------------------------------------
# Manifests: build, validate, digest
# ----------------------------------------------------------------------

def _traced_jobgraph_engine():
    engine = EvaluationEngine.from_config(
        EngineConfig(cache=True, trace=True))
    graph = JobGraph()
    graph.add("prepare", lambda r: [1, 2, 3])
    graph.add("evaluate",
              lambda r: engine.map_evaluate(_square, r["prepare"],
                                            key_fn=str),
              deps=("prepare",))
    with engine.tracer.span("toy_flow"):
        graph.run(engine)
    return engine


class TestManifest:
    def test_manifest_validates_against_schema(self):
        engine = _traced_jobgraph_engine()
        config = EngineConfig(cache=True, trace=True)
        manifest = build_manifest("toy_flow", engine, seed=5, config=config)
        validate_manifest(manifest)  # raises on drift
        assert manifest["schema_version"] == MANIFEST_SCHEMA_VERSION
        assert manifest["run"]["flow"] == "toy_flow"
        assert manifest["run"]["seed"] == 5
        assert manifest["rollups"]["span_count"] == 3
        assert manifest["rollups"]["simulator_calls"] == 3

    def test_manifest_covers_every_stage(self):
        engine = _traced_jobgraph_engine()
        manifest = build_manifest("toy_flow", engine)
        (root,) = manifest["report"]["spans"]
        stage_names = [c["name"] for c in root["children"]]
        assert stage_names == ["prepare", "evaluate"]
        for child in root["children"]:
            assert child["duration_s"] >= 0.0
            assert "counters" in child

    def test_tampered_manifest_is_rejected(self):
        engine = _traced_jobgraph_engine()
        manifest = build_manifest("toy_flow", engine)
        bad = json.loads(json.dumps(manifest))
        del bad["rollups"]["simulator_calls"]
        with pytest.raises(SchemaError, match="simulator_calls"):
            validate_manifest(bad)
        bad = json.loads(json.dumps(manifest))
        bad["report"]["schema_version"] = 1
        with pytest.raises(SchemaError):
            validate_manifest(bad)

    def test_digest_stable_across_reruns(self):
        digests = {manifest_digest(build_manifest(
            "toy_flow", _traced_jobgraph_engine(), seed=5)) for _ in range(2)}
        assert len(digests) == 1

    def test_digest_ignores_wall_clock_but_not_structure(self):
        engine = _traced_jobgraph_engine()
        manifest = build_manifest("toy_flow", engine, seed=5)
        clone = json.loads(json.dumps(manifest))
        clone["rollups"]["wall_s"] = 1e9  # volatile: ignored
        assert manifest_digest(clone) == manifest_digest(manifest)
        clone["rollups"]["simulator_calls"] += 1  # structural: detected
        assert manifest_digest(clone) != manifest_digest(manifest)


# ----------------------------------------------------------------------
# Traced pulse-detector flow (the Table 1 CI artifact path)
# ----------------------------------------------------------------------

QUICK_PD_SCHEDULE = AnnealSchedule(moves_per_temperature=60, cooling=0.8,
                                   max_evaluations=4000)


class TestPulseDetectorFlow:
    def test_manifest_covers_every_stage_and_validates(self, tmp_path):
        from repro.synthesis.pulse_detector import pulse_detector_flow

        run = pulse_detector_flow(
            seed=1, schedule=QUICK_PD_SCHEDULE,
            config=EngineConfig(trace=True, trace_dir=tmp_path))
        validate_manifest(run.manifest)
        check_report(run.report)

        (root,) = run.report["spans"]
        assert root["name"] == "pulse_detector_flow"
        stages = {c["name"] for c in root["children"]}
        assert stages == {"synthesize", "verify", "check"}
        for name in ("synthesize", "verify", "check"):
            assert run.report["timers"][f"stage.{name}"]["total_s"] >= 0.0
        # verify transient-simulates the sized circuit: counted.
        verify = next(c for c in root["children"] if c["name"] == "verify")
        assert verify["counters"]["analysis.tran"] == 1
        assert run.manifest["rollups"]["simulator_calls"] >= 1

        # trace_dir: both artifacts written, both parse, manifest on
        # disk equals the returned one.
        on_disk = json.loads((tmp_path / "manifest.json").read_text())
        assert manifest_digest(on_disk) == manifest_digest(run.manifest)
        events = [json.loads(line) for line in
                  (tmp_path / "trace.jsonl").read_text().splitlines()]
        assert events, "trace.jsonl must hold the event log"
        assert {e["kind"] for e in events} >= {"span_start", "span_end"}


# ----------------------------------------------------------------------
# The differential matrix: seed x executor x fault rate, now for traces
# ----------------------------------------------------------------------

OTA_SPECS = SpecSet([
    Spec.at_least("gain_db", 40.0),
    Spec.at_least("gbw", 10e6),
    Spec.minimize("power", good=1e-4),
])

OTA_SPACE = DesignSpace(
    variables={"w_in": (5e-6, 500e-6), "w_load": (5e-6, 200e-6),
               "w_tail": (5e-6, 200e-6), "i_bias": (2e-6, 500e-6)},
    fixed={"l_in": 2e-6, "l_load": 2e-6, "l_tail": 2e-6,
           "c_load": 2e-12, "vdd": 3.3})

TINY_SCHEDULE = AnnealSchedule(moves_per_temperature=8, cooling=0.7,
                               max_evaluations=64, stop_after_stale=2)


def _traced_sizing(executor_kind, fault_rate, seed=7):
    config = EngineConfig(
        executor=executor_kind, workers=2, cache=True, trace=True,
        retry_policy=RetryPolicy(max_attempts=2),
        fault_injector=(FaultInjector(rate=fault_rate, seed=99)
                        if fault_rate else None))
    evaluator = SimulationEvaluator(builder=five_transistor_ota,
                                    raise_failures=True)
    sizer = SimulationBasedSizer(evaluator, OTA_SPACE, OTA_SPECS,
                                 schedule=TINY_SCHEDULE, seed=seed,
                                 batch_size=4, max_failure_fraction=0.9,
                                 config=config)
    result = sizer.run()
    return result, sizer.engine


class TestDifferentialTraceMatrix:
    """Span trees and report structures must be identical for
    seed x {serial, parallel} x {0, REPRO_FAULT_RATE}."""

    @pytest.mark.parametrize("fault_rate", [0.0, FAULT_RATE])
    def test_trace_structure_is_executor_invariant(self, fault_rate):
        s_result, s_engine = _traced_sizing("serial", fault_rate)
        p_result, p_engine = _traced_sizing("parallel", fault_rate)
        assert s_result.sizes == p_result.sizes
        assert s_engine.tracer.structure() == p_engine.tracer.structure()
        assert s_engine.tracer.event_structure() == \
            p_engine.tracer.event_structure()
        s_report, p_report = s_engine.report(), p_engine.report()
        check_report(s_report)
        check_report(p_report)
        assert sorted(s_report) == sorted(p_report)
        assert s_report["counters"] == p_report["counters"]
        assert strip_volatile(s_report["failures"]) == \
            strip_volatile(p_report["failures"])

    def test_faulted_trace_records_failure_events(self):
        rate = max(FAULT_RATE, 0.1)
        _result, engine = _traced_sizing("serial", rate)
        if engine.failure_count():
            kinds = {e["kind"] for e in engine.tracer.events}
            assert "failure" in kinds
