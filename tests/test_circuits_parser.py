"""Unit tests for the SPICE parser, expression evaluator and writer."""

import pytest

from repro.circuits.devices import (
    Capacitor,
    CurrentSource,
    Mosfet,
    Resistor,
    VoltageSource,
)
from repro.circuits.parser import (
    NetlistParser,
    ParseError,
    evaluate_expression,
    parse_netlist,
)
from repro.circuits.writer import write_netlist


class TestExpressionEvaluator:
    @pytest.mark.parametrize("text,expected", [
        ("1+2", 3.0),
        ("2*3+4", 10.0),
        ("2*(3+4)", 14.0),
        ("10/4", 2.5),
        ("2**3", 8.0),
        ("-3+1", -2.0),
        ("1.5u*2", 3e-6),
        ("sqrt(16)", 4.0),
        ("exp(0)", 1.0),
        ("log10(100)", 2.0),
        ("abs(-2)", 2.0),
    ])
    def test_arithmetic(self, text, expected):
        assert evaluate_expression(text) == pytest.approx(expected)

    def test_parameters(self):
        assert evaluate_expression("w/l", {"w": 10e-6, "l": 2e-6}) == pytest.approx(5.0)

    def test_unknown_parameter_raises(self):
        with pytest.raises(ParseError):
            evaluate_expression("foo+1")

    def test_unbalanced_paren_raises(self):
        with pytest.raises(ParseError):
            evaluate_expression("(1+2")

    def test_trailing_garbage_raises(self):
        with pytest.raises(ParseError):
            evaluate_expression("1 2")


class TestParser:
    def test_rc_deck(self):
        ckt = parse_netlist("""
* simple RC
V1 in 0 dc 1.0 ac 1
R1 in out 1k
C1 out 0 1p
.end
""")
        assert len(ckt.devices) == 3
        r = ckt.device("R1")
        assert isinstance(r, Resistor) and r.value == 1e3
        c = ckt.device("C1")
        assert isinstance(c, Capacitor) and c.value == 1e-12

    def test_title_line_skipped(self):
        ckt = parse_netlist("my amplifier deck\nR1 a 0 1k\n.end")
        assert len(ckt.devices) == 1

    def test_continuation_lines(self):
        ckt = parse_netlist("R1 a 0\n+ 2k\n.end")
        assert ckt.device("R1").value == 2e3

    def test_comments_ignored(self):
        ckt = parse_netlist("* comment\nR1 a 0 1k ; trailing\n.end")
        assert ckt.device("R1").value == 1e3

    def test_sources_with_waveforms(self):
        ckt = parse_netlist("""
V1 a 0 dc 1 ac 0.5 pulse(0 1 1n 1n 1n 5n 20n)
I1 a 0 dc 1m
.end
""")
        v = ckt.device("V1")
        assert isinstance(v, VoltageSource)
        assert v.dc == 1.0 and v.ac == 0.5
        assert v.waveform.kind == "pulse"
        assert v.waveform.params[6] == pytest.approx(20e-9)
        i = ckt.device("I1")
        assert isinstance(i, CurrentSource) and i.dc == 1e-3

    def test_pwl_source(self):
        ckt = parse_netlist("V1 a 0 pwl(0 0 1u 1 2u 0)\n.end")
        wf = ckt.device("V1").waveform
        assert wf.kind == "pwl"
        assert wf.points == ((0.0, 0.0), (1e-6, 1.0), (2e-6, 0.0))

    def test_bare_dc_value(self):
        ckt = parse_netlist("V1 a 0 3.3\n.end")
        assert ckt.device("V1").dc == pytest.approx(3.3)

    def test_mosfet_with_model(self):
        ckt = parse_netlist("""
.model mynmos nmos kp=120u vto=0.6 lambda=0.03
M1 d g 0 0 mynmos w=10u l=1u m=2
.end
""")
        m = ckt.device("M1")
        assert isinstance(m, Mosfet)
        assert m.model.kp == pytest.approx(120e-6)
        assert m.model.vto == pytest.approx(0.6)
        assert m.w == pytest.approx(10e-6)
        assert m.m == 2

    def test_unknown_mos_model_raises(self):
        with pytest.raises(ParseError):
            parse_netlist("* deck\nM1 d g 0 0 nosuch w=1u l=1u\n.end")

    def test_controlled_sources(self):
        ckt = parse_netlist("""
V1 ctrl 0 1
E1 o1 0 ctrl 0 10
G1 o2 0 ctrl 0 1m
F1 o3 0 V1 2
H1 o4 0 V1 1k
R1 o1 0 1k
.end
""")
        assert ckt.device("E1").gain == 10
        assert ckt.device("G1").gm == 1e-3
        assert ckt.device("F1").gain == 2
        assert ckt.device("H1").transres == 1e3

    def test_param_expressions(self):
        ckt = parse_netlist("""
.param rval=2k cval={1p*2}
R1 a 0 {rval}
C1 a 0 {cval*2}
.end
""")
        assert ckt.device("R1").value == pytest.approx(2e3)
        assert ckt.device("C1").value == pytest.approx(4e-12)

    def test_subckt_roundtrip(self):
        ckt = parse_netlist("""
.subckt div in out
R1 in out 1k
R2 out 0 1k
.ends
X1 a b div
V1 a 0 1
.end
""")
        flat = ckt.flattened()
        assert {d.name for d in flat.devices} == {"X1.R1", "X1.R2", "V1"}

    def test_unterminated_subckt(self):
        with pytest.raises(ParseError):
            parse_netlist(".subckt foo a\nR1 a 0 1k\n.end")

    def test_unknown_card_raises(self):
        with pytest.raises(ParseError):
            parse_netlist(".wibble foo\n.end")

    def test_unknown_element_raises(self):
        # Past the title line, unknown elements are hard errors.
        with pytest.raises(ParseError):
            parse_netlist("* deck\nQ1 a b c model\n.end")

    def test_too_few_fields(self):
        with pytest.raises(ParseError):
            parse_netlist("* deck\nR1 a\n.end")

    def test_first_line_forgiven_as_title(self):
        # Even an element-looking-but-broken first line is treated as title.
        ckt = parse_netlist("R1 a\nR2 a 0 1k\n.end")
        assert len(ckt.devices) == 1

    def test_diode(self):
        ckt = parse_netlist("""
.model dd d is=1e-15 n=1.1
D1 a 0 dd area=2
.end
""")
        d = ckt.device("D1")
        assert d.model.i_sat == pytest.approx(1e-15)
        assert d.area == 2.0


class TestWriterRoundtrip:
    def test_roundtrip_preserves_devices(self):
        from repro.circuits.library import two_stage_miller
        original = two_stage_miller()
        text = write_netlist(original)
        reparsed = parse_netlist(text)
        assert len(reparsed.devices) == len(original.devices)
        for dev in original.devices:
            again = reparsed.device(dev.name)
            assert type(again) is type(dev)
            assert tuple(again.nodes) == tuple(dev.nodes)

    def test_roundtrip_mos_sizes(self):
        from repro.circuits.library import five_transistor_ota
        original = five_transistor_ota({"w_in": 33e-6})
        reparsed = parse_netlist(write_netlist(original))
        m1 = reparsed.device("m1")
        assert m1.w == pytest.approx(33e-6)
        assert m1.model.kp == pytest.approx(original.device("m1").model.kp)

    def test_roundtrip_subckt(self):
        from repro.circuits.netlist import Circuit, SubcktDef
        from repro.circuits.devices import SubcktInstance
        body = Circuit("b")
        body.resistor("r1", "p", "0", 1e3)
        top = Circuit("top")
        top.define_subckt(SubcktDef("cell", ("p",), body))
        top.add(SubcktInstance("x1", ("n",), "cell"))
        top.vsource("v1", "n", "0", dc=1.0)
        reparsed = parse_netlist(write_netlist(top))
        assert "cell" in reparsed.subckts
        flat = reparsed.flattened()
        assert {d.name for d in flat.devices} == {"x1.r1", "v1"}

    def test_roundtrip_waveform(self):
        from repro.circuits.netlist import Circuit
        from repro.circuits.devices import Waveform
        c = Circuit("t")
        c.vsource("v1", "a", "0", dc=0.5,
                  waveform=Waveform("pulse", (0, 1, 1e-9, 1e-10, 1e-10, 5e-9, 2e-8)))
        reparsed = parse_netlist(write_netlist(c))
        wf = reparsed.device("v1").waveform
        assert wf.kind == "pulse"
        assert wf.params[1] == pytest.approx(1.0)
