"""Tests for the sharded serving layer (repro.serve.shard / store / client).

The load-bearing guarantees, each pinned by its own test class:

* **Routing determinism** — the consistent-hash ring is a pure function
  of the shard id *set* (hypothesis: permutation-invariant), and the
  shard count changes where a request runs but never what it computes
  (the seed x {1, 2, 4} differential matrix compares result digests).
* **Zero silent drops, fleet-wide** — ``admitted == completed + expired
  + cancelled + errored`` holds on the merged report, the per-shard
  breakdown sums to the fleet totals, and a crashed shard's in-flight
  requests are re-routed once or settled ``errored``, never lost.
* **Shared results** — the :class:`SharedStore` publishes atomically
  under concurrent multi-process writers, and a result computed by one
  shard is a disk hit for another.
* **One wire contract** — the typed :class:`ServeClient` round-trips
  identically against the thread-per-request and asyncio facades, and
  the legacy ``make_server`` kwargs keep working behind a
  ``DeprecationWarning`` (both-at-once is a ``ValueError``).
"""

import json
import multiprocessing
import time

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.engine.cache import EvalCache, canonical_key, publish_pickle
from repro.engine.config import EngineConfig, ServeConfig
from repro.engine.schema import REQUIRED_SHARD_KEYS, check_report
from repro.serve import (
    Broker,
    DeadlineExpiredError,
    HashRing,
    RejectedError,
    RemoteEngineError,
    ServeClient,
    SharedStore,
    ShardRouter,
    Workload,
    make_async_server,
    make_server,
    replay,
)
from repro.serve.shard import route_key


def square(point):
    return {"y": point["x"] ** 2}


def square_key(point):
    return canonical_key("shard-square", point)


def boom(point):
    raise RuntimeError(f"boom on {point!r}")


def make_router(shards, tmp_path=None, **serve_kwargs):
    serve = ServeConfig(shards=shards,
                        shared_store_dir=None if tmp_path is None
                        else str(tmp_path / "store"),
                        **serve_kwargs)
    config = EngineConfig(executor="thread", workers=2, serve=serve)
    router = ShardRouter(config)
    router.register(Workload("square", square, key_fn=square_key))
    return router


# ----------------------------------------------------------------------
# HashRing
# ----------------------------------------------------------------------

class TestHashRing:

    def test_spread_and_determinism(self):
        ring = HashRing(range(4))
        keys = [route_key("square", {"x": i}) for i in range(400)]
        owners = [ring.route(k) for k in keys]
        assert owners == [ring.route(k) for k in keys]
        by_shard = {sid: owners.count(sid) for sid in range(4)}
        assert set(by_shard) == {0, 1, 2, 3}
        assert all(n > 0 for n in by_shard.values())

    def test_exclusion_reassigns_only_the_excluded(self):
        ring = HashRing(range(4))
        keys = [route_key("square", {"x": i}) for i in range(200)]
        before = {k: ring.route(k) for k in keys}
        after = {k: ring.route(k, exclude={2}) for k in keys}
        for k in keys:
            if before[k] != 2:
                assert after[k] == before[k]
            else:
                assert after[k] != 2

    def test_all_excluded_raises(self):
        from repro.serve import ShardCrashError
        ring = HashRing(range(2))
        with pytest.raises(ShardCrashError):
            ring.route("deadbeef", exclude={0, 1})

    @settings(max_examples=50, deadline=None)
    @given(ids=st.permutations(list(range(6))),
           x=st.integers(min_value=0, max_value=10_000))
    def test_routing_stable_under_shard_list_order(self, ids, x):
        canonical = HashRing(range(6))
        permuted = HashRing(ids)
        key = route_key("square", {"x": x})
        assert permuted.route(key) == canonical.route(key)


# ----------------------------------------------------------------------
# SharedStore
# ----------------------------------------------------------------------

def _store_writer(root, worker, n):
    store = SharedStore(root)
    for i in range(n):
        store.put(f"key-{i}", {"value": i, "writer": worker})


class TestSharedStore:

    def test_put_get_roundtrip(self, tmp_path):
        store = SharedStore(tmp_path / "store")
        store.put("k1", {"a": 1})
        assert store.get("k1") == {"a": 1}
        assert store.get("absent", "fallback") == "fallback"
        assert "k1" in store
        assert list(store.keys()) == ["k1"]
        assert store.report() == {"root": str(tmp_path / "store"),
                                  "artifacts": 1}

    def test_concurrent_multiprocess_writers(self, tmp_path):
        """Racing writers of the same keys: every published artifact is
        complete (atomic rename), no temp files leak, and scan_disk on a
        mounted cache sees only whole values."""
        root = tmp_path / "store"
        ctx = multiprocessing.get_context("fork")
        workers = [ctx.Process(target=_store_writer, args=(root, w, 50))
                   for w in range(4)]
        for p in workers:
            p.start()
        store = SharedStore(root)
        # Read concurrently with the writers: never a partial value.
        deadline = time.monotonic() + 30
        while any(p.is_alive() for p in workers) \
                and time.monotonic() < deadline:
            for key in store.keys():
                value = store.get(key)
                assert value is None or set(value) == {"value", "writer"}
        for p in workers:
            p.join(timeout=30)
            assert p.exitcode == 0
        assert len(store) == 50
        for i in range(50):
            assert store.get(f"key-{i}")["value"] == i
        assert not list(root.glob("*.tmp")) and not list(root.glob(".*"))
        scanned = dict(store.make_cache().scan_disk())
        assert len(scanned) == 50

    def test_mounted_cache_sees_other_writers(self, tmp_path):
        """The cross-shard promise in miniature: a value published by
        one cache instance is a disk hit for a fresh one."""
        store = SharedStore(tmp_path / "store")
        writer = store.make_cache()
        writer.put("shared-key", {"y": 42})
        reader = store.make_cache()
        assert reader.get("shared-key") == {"y": 42}
        assert reader.stats.disk_hits == 1

    def test_publish_pickle_atomic_replace(self, tmp_path):
        path = tmp_path / "value.pkl"
        publish_pickle(path, {"v": 1})
        publish_pickle(path, {"v": 2})
        cache = EvalCache(disk_dir=tmp_path)
        assert cache.get("value") == {"v": 2}


# ----------------------------------------------------------------------
# ShardRouter correctness
# ----------------------------------------------------------------------

class TestShardRouter:

    def test_basic_fleet_and_merged_report(self, tmp_path):
        with make_router(3, tmp_path) as router:
            handles = [router.submit("square", {"x": i % 7},
                                     priority="batch", client="t")
                       for i in range(30)]
            assert [h.result(timeout=60)["y"] for h in handles] == \
                [(i % 7) ** 2 for i in range(30)]
            report = router.report()
            check_report(report)
            serve = report["serve"]
            assert serve["admitted"] == 30 == serve["completed"]
            assert serve["admitted"] == (serve["completed"]
                                         + serve["expired"]
                                         + serve["cancelled"]
                                         + serve["errored"])
            assert len(serve["shards"]) == 3
            for entry in serve["shards"]:
                assert set(REQUIRED_SHARD_KEYS) <= set(entry)
            for lane in ("completed", "expired", "cancelled", "errored"):
                assert sum(s[lane] for s in serve["shards"]) == serve[lane]
            # The batching layer ran on the shards and merged back in.
            assert serve["batches"] >= 1
            assert report["cache"]["entries"] >= 7

    def test_identical_requests_route_to_one_shard(self, tmp_path):
        with make_router(4, tmp_path) as router:
            for _ in range(8):
                router.submit("square", {"x": 5}).result(timeout=60)
            shards = router.report()["serve"]["shards"]
            assert sum(1 for s in shards if s["routed"]) == 1

    def test_cross_shard_disk_hit(self, tmp_path):
        """Same fn + key on two workload *names*: the names route
        independently, the shared store collapses the evaluation."""
        serve = ServeConfig(shards=4, shared_store_dir=str(tmp_path / "s"))
        router = ShardRouter(EngineConfig(executor="serial", serve=serve))
        router.register(Workload("square-a", square, key_fn=square_key))
        router.register(Workload("square-b", square, key_fn=square_key))
        with router:
            points = [{"x": i} for i in range(16)]
            for p in points:
                router.submit("square-a", p).result(timeout=60)
            for p in points:
                assert router.submit("square-b", p).result(
                    timeout=60) == square(p)
            report = router.report()
            a_routes = {s["shard"] for s in report["serve"]["shards"]
                        if s["routed"]}
            assert len(a_routes) > 1  # the fleet actually spread the work
            assert report["cache"]["disk_hits"] > 0

    def test_register_after_start_refused(self, tmp_path):
        with make_router(2, tmp_path) as router:
            with pytest.raises(RuntimeError, match="before start"):
                router.register(Workload("late", square))

    def test_unknown_workload_and_bad_priority(self, tmp_path):
        with make_router(2, tmp_path) as router:
            with pytest.raises(KeyError):
                router.submit("nope", {"x": 1})
            with pytest.raises(ValueError, match="priority"):
                router.submit("square", {"x": 1}, priority="vip")

    def test_errored_lane_counts(self, tmp_path):
        serve = ServeConfig(shards=2)
        router = ShardRouter(EngineConfig(executor="serial", serve=serve))
        router.register(Workload("boom", boom))
        with router:
            handles = [router.submit("boom", {"x": i}) for i in range(4)]
            for h in handles:
                with pytest.raises(RuntimeError, match="boom"):
                    h.result(timeout=60)
            serve_report = router.report()["serve"]
            assert serve_report["errored"] == 4
            assert serve_report["admitted"] == (
                serve_report["completed"] + serve_report["expired"]
                + serve_report["cancelled"] + serve_report["errored"])

    def test_draining_rejects(self, tmp_path):
        router = make_router(2, tmp_path)
        with router:
            router.submit("square", {"x": 1}).result(timeout=60)
        with pytest.raises(RejectedError, match="draining"):
            router.submit("square", {"x": 2})
        report = router.report()
        assert report["serve"]["requests"] == \
            report["serve"]["admitted"] + report["serve"]["rejected"]


class TestShardCrash:

    def _crash_shard(self, router, sid):
        shard = router._shards[sid]
        generation = shard.process
        assert router._send(shard, ("crash",))
        deadline = time.monotonic() + 30
        while time.monotonic() < deadline:
            with router._cond:
                if shard.process is not generation and shard.alive:
                    return
                if shard.condemned:
                    return
            time.sleep(0.01)
        raise AssertionError("shard neither respawned nor condemned")

    def test_crash_respawns_and_requeues(self, tmp_path):
        """Kill a shard mid-flight: the fleet respawns it, re-routes the
        orphans, and the invariant still balances — nothing dropped."""
        serve = ServeConfig(shards=2, shared_store_dir=str(tmp_path / "s"))
        router = ShardRouter(EngineConfig(executor="serial", serve=serve))

        def slow_square(point):
            time.sleep(0.05)
            return square(point)

        router.register(Workload("square", slow_square, key_fn=square_key))
        with router:
            handles = [router.submit("square", {"x": i}, priority="batch")
                       for i in range(24)]
            self._crash_shard(router, 0)
            outcomes = []
            for h in handles:
                try:
                    h.result(timeout=120)
                    outcomes.append("completed")
                except Exception:
                    outcomes.append(h.outcome)
            report = router.report()
            serve_report = report["serve"]
            assert serve_report["admitted"] == 24
            assert serve_report["admitted"] == (
                serve_report["completed"] + serve_report["expired"]
                + serve_report["cancelled"] + serve_report["errored"])
            assert outcomes.count("completed") == serve_report["completed"]
            assert report["counters"]["serve.shard_crashes"] >= 1
            shard0 = serve_report["shards"][0]
            assert shard0["restarts"] >= 1
            # Orphans were re-routed (counted), or the crash raced the
            # drain and they settled errored — either way accounted.
            assert shard0["rerouted"] + serve_report["errored"] >= 0
            assert serve_report["completed"] >= 1
            # The respawned shard serves new traffic.
            assert router.submit("square", {"x": 99}).result(
                timeout=120) == {"y": 99 ** 2}

    def test_condemned_after_restart_budget(self, tmp_path):
        serve = ServeConfig(shards=2)
        router = ShardRouter(EngineConfig(executor="serial", serve=serve),
                             max_restarts=1)
        router.register(Workload("square", square, key_fn=square_key))
        with router:
            self._crash_shard(router, 0)
            self._crash_shard(router, 0)
            with router._cond:
                assert router._shards[0].condemned
            # The survivor carries the whole keyspace.
            for i in range(10):
                assert router.submit("square", {"x": i}).result(
                    timeout=60) == {"y": i ** 2}
            health = router.healthz()
            assert health["shards"][0]["condemned"]
            report = router.report()
            assert report["serve"]["shards"][0]["condemned"]
            check_report(report)


# ----------------------------------------------------------------------
# Differential matrix: shard count never changes results
# ----------------------------------------------------------------------

class TestShardDifferential:

    @pytest.mark.parametrize("shards", [1, 2, 4])
    def test_digests_identical_across_shard_counts(self, shards, tmp_path):
        points = [{"x": (7 * i + 3) % 23} for i in range(40)]
        with make_router(shards, tmp_path) as router:
            handles = [router.submit("square", p, priority="batch")
                       for p in points]
            for h in handles:
                h.result(timeout=120)
            digests = {
                (r["workload"], json.dumps(r["point"], sort_keys=True)):
                r["result_digest"]
                for r in router.request_log if r["outcome"] == "completed"}
            report = router.report()
            check_report(report)
            serve = report["serve"]
            assert serve["completed"] == len(points)
            assert serve["admitted"] == (serve["completed"]
                                         + serve["expired"]
                                         + serve["cancelled"]
                                         + serve["errored"])
        # Serial ground truth: one broker, no sharding.
        broker = Broker.from_config(EngineConfig(executor="serial"))
        broker.register(Workload("square", square, key_fn=square_key))
        with broker:
            expected = {}
            for p in points:
                broker.submit("square", p, priority="batch").result(
                    timeout=120)
            for r in broker.request_log:
                if r["outcome"] == "completed":
                    key = (r["workload"],
                           json.dumps(r["point"], sort_keys=True))
                    expected[key] = r["result_digest"]
        assert digests == expected

    @pytest.mark.parametrize("shards", [1, 2, 4])
    def test_replay_trace_across_shard_counts(self, shards, tmp_path):
        points = [{"x": i % 11} for i in range(30)]
        with make_router(shards, tmp_path) as router:
            for p in points:
                router.submit("square", p, priority="batch").result(
                    timeout=120)
            trace = tmp_path / f"requests-{shards}.jsonl"
            router.write_request_trace(trace)
            workloads = router.workloads
        report = replay(trace, workloads)
        report.assert_ok()
        assert report.replayed == len(points)

    def test_replay_merges_multi_shard_trace_list(self, tmp_path):
        """A list of per-source traces replays as one seq-ordered log."""
        with make_router(2, tmp_path) as router:
            for i in range(12):
                router.submit("square", {"x": i}).result(timeout=120)
            log = list(router.request_log)
            workloads = router.workloads
        # Split the log as if each shard had kept its own half.
        part_a = [r for r in log if r.get("shard") == 0]
        part_b = [r for r in log if r.get("shard") != 0]
        report = replay([part_a, part_b], workloads)
        report.assert_ok()
        assert report.replayed == 12
        # File-based multi-trace merge too.
        pa, pb = tmp_path / "a.jsonl", tmp_path / "b.jsonl"
        for path, part in ((pa, part_a), (pb, part_b)):
            with open(path, "w") as fh:
                for r in part:
                    fh.write(json.dumps(r, sort_keys=True) + "\n")
        report = replay([str(pa), str(pb)], workloads)
        report.assert_ok()
        assert report.replayed == 12


# ----------------------------------------------------------------------
# ServeClient against both facades
# ----------------------------------------------------------------------

def _client_roundtrip(server_factory, backend):
    with server_factory(backend) as server:
        with ServeClient(server.url, client="roundtrip") as client:
            assert client.evaluate("square", {"x": 6}) == {"y": 36}
            handle = client.submit("square", {"x": 7})
            assert handle.result(timeout=60) == {"y": 49}
            assert handle.outcome == "completed"
            streamed = sorted(
                value["y"] for _, outcome, value in
                client.stream("square", [{"x": i} for i in range(5)])
                if outcome == "completed")
            assert streamed == [0, 1, 4, 9, 16]
            health = client.healthz()
            assert health["status"] == "ok"
            assert "square" in health["workloads"]
            metrics = client.metrics()
            check_report(metrics)
            with pytest.raises(ValueError):
                client.evaluate("unknown-workload", {"x": 1})


class TestServeClient:

    @pytest.mark.parametrize("server_factory",
                             [make_server, make_async_server],
                             ids=["threaded", "async"])
    def test_roundtrip_over_broker(self, server_factory):
        broker = Broker.from_config(EngineConfig(executor="thread"))
        broker.register(Workload("square", square, key_fn=square_key))
        with broker:
            _client_roundtrip(server_factory, broker)

    @pytest.mark.parametrize("server_factory",
                             [make_server, make_async_server],
                             ids=["threaded", "async"])
    def test_roundtrip_over_shard_router(self, server_factory, tmp_path):
        with make_router(2, tmp_path) as router:
            _client_roundtrip(server_factory, router)

    def test_structured_errors_cross_the_wire(self):
        config = EngineConfig(
            executor="serial",
            serve=ServeConfig(max_queue_depth=1, rate=0.0001, burst=3))
        broker = Broker.from_config(config)

        def slow(point):
            time.sleep(0.2)
            return point

        broker.register(Workload("slow", slow))
        broker.register(Workload("boom", boom))
        with broker:
            with make_async_server(broker) as server:
                with ServeClient(server.url, client="errs") as client:
                    with pytest.raises(RemoteEngineError, match="boom"):
                        client.evaluate("boom", {"x": 1})
                    with pytest.raises(DeadlineExpiredError):
                        client.evaluate("slow", {"x": 1}, deadline_s=1e-6)
                    # The burst of 3 is exhausted by the calls above
                    # plus at most one more: the token bucket then
                    # refuses with a typed reason.
                    with pytest.raises(RejectedError) as exc_info:
                        for _ in range(8):
                            client.evaluate("slow", {"x": 2})
                    assert exc_info.value.reason in ("rate_limited",
                                                     "queue_full")

    def test_timeout_maps_to_pending(self):
        broker = Broker.from_config(EngineConfig(executor="thread"))

        def slow(point):
            time.sleep(0.5)
            return point

        broker.register(Workload("slow", slow))
        with broker:
            with make_async_server(broker) as server:
                with ServeClient(server.url) as client:
                    with pytest.raises(TimeoutError):
                        client.evaluate("slow", {"x": 1}, timeout_s=0.05)


# ----------------------------------------------------------------------
# ServeConfig consolidation + legacy make_server shim
# ----------------------------------------------------------------------

class TestServeConfigMigration:

    def test_new_fields_validate_and_describe(self):
        config = ServeConfig(shards=4, shared_store_dir="/tmp/store",
                             http_host="0.0.0.0", http_port=8080,
                             synthesize_workload="opamp")
        described = config.describe()
        assert described["shards"] == 4
        assert described["shared_store_dir"] == "/tmp/store"
        assert described["http_host"] == "0.0.0.0"
        assert described["http_port"] == 8080
        assert described["synthesize_workload"] == "opamp"
        with pytest.raises(ValueError, match="shards"):
            ServeConfig(shards=0)
        with pytest.raises(ValueError, match="http_port"):
            ServeConfig(http_port=70000)

    def test_config_drives_make_server(self):
        broker = Broker.from_config(EngineConfig(
            serve=ServeConfig(synthesize_workload="square")))
        broker.register(Workload("square", square))
        with broker:
            with make_server(broker) as server:
                assert server.app.synthesize_workload == "square"
                host, _port = server.address
                assert host == "127.0.0.1"

    def test_legacy_kwargs_warn_but_work(self):
        broker = Broker.from_config(EngineConfig())
        broker.register(Workload("square", square))
        with broker:
            with pytest.warns(DeprecationWarning, match="deprecated"):
                server = make_server(broker, host="127.0.0.1", port=0,
                                     synthesize_workload="square")
            with server:
                assert server.app.synthesize_workload == "square"
            with pytest.warns(DeprecationWarning, match="deprecated"):
                async_server = make_async_server(broker, port=0)
            with async_server:
                with ServeClient(async_server.url) as client:
                    assert client.evaluate("square", {"x": 2}) == {"y": 4}

    def test_both_at_once_is_an_error(self):
        broker = Broker.from_config(EngineConfig(
            serve=ServeConfig(synthesize_workload="square")))
        broker.register(Workload("square", square))
        with broker:
            with pytest.raises(ValueError, match="not both"):
                make_server(broker, synthesize_workload="square")
            with pytest.raises(ValueError, match="not both"):
                make_async_server(broker, port=9999)
