"""Unit tests for the specification and cost-function system."""

import math

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.specs import Spec, SpecKind, SpecSet


class TestSpec:
    def test_at_least_satisfied(self):
        s = Spec.at_least("gain_db", 70.0)
        assert s.satisfied(71.0)
        assert not s.satisfied(69.0)

    def test_at_most_satisfied(self):
        s = Spec.at_most("power", 1e-3)
        assert s.satisfied(0.5e-3)
        assert not s.satisfied(2e-3)

    def test_equal_with_tolerance(self):
        s = Spec.equal("gain", 20.0, tolerance=0.05)
        assert s.satisfied(20.9)
        assert not s.satisfied(22.0)

    def test_objective_always_satisfied(self):
        s = Spec.minimize("power")
        assert s.satisfied(1e9)

    def test_nan_constraint_fails(self):
        s = Spec.at_least("gain", 10.0)
        assert not s.satisfied(float("nan"))
        assert s.violation(float("nan")) > 1.0

    def test_violation_normalized(self):
        s = Spec.at_least("gain", 100.0)
        assert s.violation(90.0) == pytest.approx(0.1)
        assert s.violation(100.0) == 0.0
        assert s.violation(150.0) == 0.0

    def test_max_violation_normalized(self):
        s = Spec.at_most("power", 10.0)
        assert s.violation(11.0) == pytest.approx(0.1)

    def test_maximize_objective_decreases_with_perf(self):
        s = Spec.maximize("gain", good=100.0)
        assert s.objective_value(200.0) < s.objective_value(100.0)

    def test_minimize_objective_increases_with_perf(self):
        s = Spec.minimize("power", good=1e-3)
        assert s.objective_value(2e-3) > s.objective_value(1e-3)

    @given(st.floats(min_value=1.0, max_value=1e6),
           st.floats(min_value=1.0, max_value=1e6))
    def test_violation_nonnegative(self, bound, measured):
        for kind in (SpecKind.MIN, SpecKind.MAX, SpecKind.EQUAL):
            s = Spec("x", kind, bound)
            assert s.violation(measured) >= 0.0

    @given(st.floats(min_value=1.0, max_value=1e6),
           st.floats(min_value=1.0, max_value=1e6))
    def test_satisfied_iff_zero_violation(self, bound, measured):
        s = Spec.at_least("x", bound)
        assert s.satisfied(measured) == (s.violation(measured) == 0.0)


class TestSpecSet:
    def _specs(self) -> SpecSet:
        return SpecSet([
            Spec.at_least("gain_db", 60.0),
            Spec.at_most("power", 1e-3),
            Spec.minimize("area", good=1e-8),
        ])

    def test_all_satisfied(self):
        ss = self._specs()
        assert ss.all_satisfied({"gain_db": 70, "power": 0.5e-3, "area": 2e-8})
        assert not ss.all_satisfied({"gain_db": 50, "power": 0.5e-3, "area": 2e-8})

    def test_missing_metric_is_violation(self):
        ss = self._specs()
        assert not ss.all_satisfied({"gain_db": 70})

    def test_cost_prefers_feasible(self):
        ss = self._specs()
        feasible = ss.cost({"gain_db": 70, "power": 0.5e-3, "area": 2e-8})
        infeasible = ss.cost({"gain_db": 30, "power": 0.5e-3, "area": 2e-8})
        assert feasible < infeasible

    def test_cost_prefers_smaller_objective(self):
        ss = self._specs()
        small = ss.cost({"gain_db": 70, "power": 0.5e-3, "area": 1e-8})
        big = ss.cost({"gain_db": 70, "power": 0.5e-3, "area": 5e-8})
        assert small < big

    def test_duplicate_specs_rejected(self):
        with pytest.raises(ValueError):
            SpecSet([Spec.at_least("g", 1.0), Spec.at_least("g", 2.0)])

    def test_same_metric_min_and_max_allowed(self):
        ss = SpecSet([Spec.at_least("v", 1.0), Spec.at_most("v", 2.0)])
        assert ss.all_satisfied({"v": 1.5})
        assert not ss.all_satisfied({"v": 2.5})

    def test_constraints_and_objectives_split(self):
        ss = self._specs()
        assert len(ss.constraints) == 2
        assert len(ss.objectives) == 1

    def test_report_text(self):
        ss = self._specs()
        report = ss.report({"gain_db": 70, "power": 2e-3, "area": 2e-8})
        text = report.to_text()
        assert "gain_db" in text
        assert "NO" in text  # power violated
        assert not report.all_satisfied

    def test_metric_names_unique(self):
        ss = SpecSet([Spec.at_least("v", 1.0), Spec.at_most("v", 2.0),
                      Spec.minimize("p")])
        assert ss.metric_names() == ["v", "p"]
