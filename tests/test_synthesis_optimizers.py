"""Tests for the optimization-based sizing frontends and topology selection."""

import pytest

from repro.core.specs import Spec, SpecSet
from repro.opt.anneal import AnnealSchedule
from repro.circuits.library import five_transistor_ota
from repro.synthesis import (
    AstrxProblem,
    DesignSpace,
    EquationBasedSizer,
    ManufacturableSizer,
    OblxOptimizer,
    SimulationBasedSizer,
    SimulationEvaluator,
    default_candidates,
    interval_feasible,
    select_enumerate,
    select_genetic,
    select_interval,
    select_rule_based,
    standard_corners,
    worst_case_performance,
    yield_estimate,
)

OTA_SPECS = SpecSet([
    Spec.at_least("gain_db", 40.0),
    Spec.at_least("gbw", 10e6),
    Spec.at_least("slew_rate", 5e6),
    Spec.minimize("power", good=1e-4),
])


def _ota_candidate():
    return default_candidates()[0]


def _sim_space() -> DesignSpace:
    return DesignSpace(
        variables={"w_in": (5e-6, 500e-6), "w_load": (5e-6, 200e-6),
                   "w_tail": (5e-6, 200e-6), "i_bias": (2e-6, 500e-6)},
        fixed={"l_in": 2e-6, "l_load": 2e-6, "l_tail": 2e-6,
               "c_load": 2e-12, "vdd": 3.3})


def _ota_builder(sizes):
    keys = ("w_in", "l_in", "w_load", "l_load", "w_tail", "l_tail",
            "i_bias", "c_load", "vdd")
    return five_transistor_ota({k: v for k, v in sizes.items() if k in keys})


class TestEquationBased:
    def test_finds_feasible_design(self):
        cand = _ota_candidate()
        sizer = EquationBasedSizer(cand.model, cand.space, OTA_SPECS, seed=1)
        result = sizer.run()
        assert result.feasible
        assert result.performance["gbw"] >= 10e6 * 0.99

    def test_minimizes_power_subject_to_specs(self):
        cand = _ota_candidate()
        loose = SpecSet([Spec.at_least("gbw", 1e6),
                         Spec.minimize("power", good=1e-4)])
        tight = SpecSet([Spec.at_least("gbw", 100e6),
                         Spec.minimize("power", good=1e-4)])
        p_loose = EquationBasedSizer(cand.model, cand.space, loose,
                                     seed=2).run()
        p_tight = EquationBasedSizer(cand.model, cand.space, tight,
                                     seed=2).run()
        assert p_loose.performance["power"] < p_tight.performance["power"]

    def test_warm_start(self):
        cand = _ota_candidate()
        sizer = EquationBasedSizer(cand.model, cand.space, OTA_SPECS, seed=3)
        x0 = {name: (lo * hi) ** 0.5
              for name, (lo, hi) in cand.space.variables.items()}
        result = sizer.run(x0=x0)
        assert result.feasible

    def test_report_text(self):
        cand = _ota_candidate()
        result = EquationBasedSizer(cand.model, cand.space, OTA_SPECS,
                                    seed=1).run()
        text = result.report(OTA_SPECS)
        assert "feasible=True" in text and "gbw" in text


class TestSimulationBased:
    def test_short_run_improves(self):
        specs = SpecSet([Spec.at_least("gain_db", 40.0),
                         Spec.at_least("gbw", 5e6),
                         Spec.minimize("power", good=1e-4)])
        sizer = SimulationBasedSizer(
            SimulationEvaluator(builder=_ota_builder), _sim_space(), specs,
            schedule=AnnealSchedule(moves_per_temperature=15, cooling=0.75,
                                    max_evaluations=250),
            seed=2)
        result = sizer.run()
        assert result.evaluations <= 260
        assert result.performance.get("gain_db", 0) > 30.0

    def test_evaluator_handles_bad_points(self):
        ev = SimulationEvaluator(builder=_ota_builder)
        # Absurd sizing must return {} rather than raise.
        perf = ev({"w_in": 1e-6, "l_in": 2e-6, "w_load": 1e-6,
                   "l_load": 2e-6, "w_tail": 1e-6, "l_tail": 2e-6,
                   "i_bias": 0.4, "c_load": 2e-12, "vdd": 3.3})
        assert isinstance(perf, dict)

    def test_evaluator_measures_power(self):
        ev = SimulationEvaluator(builder=_ota_builder)
        perf = ev({"w_in": 40e-6, "l_in": 2e-6, "w_load": 20e-6,
                   "l_load": 2e-6, "w_tail": 30e-6, "l_tail": 2e-6,
                   "i_bias": 20e-6, "c_load": 2e-12, "vdd": 3.3})
        assert 1e-6 < perf["power"] < 1e-3


class TestAstrxOblx:
    def test_synthesis_with_dc_free_relaxation(self):
        specs = SpecSet([Spec.at_least("gain_db", 40.0),
                         Spec.at_least("gbw", 5e6),
                         Spec.minimize("power", good=1e-4)])
        problem = AstrxProblem(_ota_builder, _sim_space(), specs)
        opt = OblxOptimizer(problem, schedule=AnnealSchedule(
            moves_per_temperature=80, cooling=0.85, max_evaluations=4000),
            seed=3)
        result = opt.run()
        assert result.feasible
        # Relaxation must have converged: KCL residual small.
        assert result.kcl_residual < 0.05
        # Post-synthesis verification with the real simulator ran.
        assert result.verified
        assert "verified_gain" in result.performance

    def test_compiled_problem_reusable(self):
        specs = SpecSet([Spec.at_least("gain_db", 30.0)])
        problem = AstrxProblem(_ota_builder, _sim_space(), specs)
        import numpy as np
        from repro.synthesis.astrx import _Candidate
        rng = np.random.default_rng(1)
        cand = _Candidate(problem.cont.random_point(rng),
                          np.full(len(problem.free_nodes), 1.5))
        perf1, kcl1 = problem.evaluate(cand)
        perf2, kcl2 = problem.evaluate(cand)
        assert perf1 == perf2 and kcl1 == kcl2


class TestTopologySelection:
    def test_rule_based_excludes_low_gain_topology(self):
        specs = SpecSet([Spec.at_least("gain_db", 75.0)])
        ranked = select_rule_based(specs, default_candidates())
        assert "five_transistor_ota" not in ranked
        assert ranked[0] == "folded_cascode"  # cheapest viable first

    def test_rule_based_prefers_cheap_topology_when_easy(self):
        specs = SpecSet([Spec.at_least("gain_db", 35.0)])
        ranked = select_rule_based(specs, default_candidates())
        assert ranked[0] == "five_transistor_ota"

    def test_interval_proves_infeasibility(self):
        # No opamp in the registry can run below 1 µW (minimum bias is
        # 1 µA at 3.3 V) — the interval hull proves it.
        specs = SpecSet([Spec.at_most("power", 1e-6)])
        cands = default_candidates()
        assert select_interval(specs, cands) == []

    def test_interval_proves_gain_ceiling(self):
        # 400 dB is beyond even the interval over-approximation.
        specs = SpecSet([Spec.at_least("gain_db", 400.0)])
        assert select_interval(specs, default_candidates()) == []

    def test_interval_keeps_feasible(self):
        specs = SpecSet([Spec.at_least("gain_db", 40.0)])
        viable = select_interval(specs, default_candidates())
        assert "five_transistor_ota" in viable

    def test_interval_feasibility_is_conservative(self):
        # Anything the rule-based selector accepts, intervals must not
        # reject (intervals over-approximate the reachable set).
        cands = default_candidates()
        for gain_db in (30.0, 50.0, 70.0):
            specs = SpecSet([Spec.at_least("gain_db", gain_db)])
            ruled = set(select_rule_based(specs, cands))
            interval = set(select_interval(specs, cands))
            assert ruled <= interval

    def test_genetic_selects_working_topology(self):
        specs = SpecSet([Spec.at_least("gain_db", 75.0),
                         Spec.at_least("gbw", 5e6),
                         Spec.minimize("power", good=1e-4)])
        result = select_genetic(specs, default_candidates(),
                                generations=20, population=30, seed=2)
        assert result.topology in ("folded_cascode", "two_stage_miller")
        assert result.sizing.feasible

    def test_enumeration_agrees_with_rules_on_easy_spec(self):
        specs = SpecSet([Spec.at_least("gain_db", 40.0),
                         Spec.at_least("gbw", 5e6),
                         Spec.minimize("power", good=1e-4)])
        result = select_enumerate(specs, default_candidates(), seed=1)
        assert result.sizing.feasible
        # Power-cheapest topology should win the easy spec.
        assert result.topology == "five_transistor_ota"


class TestManufacturability:
    def _specs(self):
        return SpecSet([Spec.at_least("gain_db", 40.0),
                        Spec.at_least("gbw", 8e6),
                        Spec.minimize("power", good=1e-4)])

    def test_worst_case_worse_than_nominal(self):
        cand = _ota_candidate()
        sizes = {n: (lo * hi) ** 0.5
                 for n, (lo, hi) in cand.space.variables.items()}
        sizes = cand.space.complete(sizes)
        specs = self._specs()
        worst, report = worst_case_performance(
            cand.model, sizes, standard_corners(), specs)
        nominal = report.nominal
        assert worst["gbw"] <= nominal["gbw"] * 1.0001

    def test_corner_count(self):
        assert len(standard_corners()) == 9  # nominal + 2^3 vertices

    def test_corner_aware_costs_more_evaluations(self):
        cand = _ota_candidate()
        specs = self._specs()
        sched = AnnealSchedule(moves_per_temperature=40,
                               max_evaluations=800)
        nominal = EquationBasedSizer(cand.model, cand.space, specs,
                                     schedule=sched, seed=1).run()
        corner = ManufacturableSizer(cand.model, cand.space, specs,
                                     schedule=sched, seed=1).run()
        ratio = corner.evaluations / max(nominal.evaluations, 1)
        assert ratio >= 4.0  # the paper's 4x-10x lower bound

    def test_corner_design_robust(self):
        cand = _ota_candidate()
        specs = self._specs()
        corner = ManufacturableSizer(cand.model, cand.space, specs,
                                     seed=2).run()
        assert corner.feasible
        y = yield_estimate(cand.model, corner.sizes, specs, n_samples=200)
        assert y > 0.9

    def test_nominal_design_less_robust_than_corner_design(self):
        cand = _ota_candidate()
        specs = self._specs()
        nominal = EquationBasedSizer(cand.model, cand.space, specs,
                                     seed=2).run()
        corner = ManufacturableSizer(cand.model, cand.space, specs,
                                     seed=2).run()
        y_nom = yield_estimate(cand.model, nominal.sizes, specs,
                               n_samples=300)
        y_cor = yield_estimate(cand.model, corner.sizes, specs,
                               n_samples=300)
        assert y_cor >= y_nom - 0.02
