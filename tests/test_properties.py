"""Cross-module property-based tests: the physics and algorithm invariants.

These are the deep invariants a circuit/layout toolkit must never break,
checked on randomized instances with hypothesis:

* passive RC networks have all poles in the left half-plane and DC gains
  in [0, 1];
* the symbolic analyzer and the numeric simulator agree on random RC
  ladders;
* netlists round-trip through the SPICE writer/parser;
* the maze router's wires connect their pins and never share cells
  between nets;
* the annealing placer always produces legal (overlap-free) placements;
* AWE models of RC networks are stable and match the DC solution.
"""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis import ac_analysis, dc_operating_point, small_signal_system
from repro.awe import reduce_circuit
from repro.circuits.netlist import Circuit
from repro.circuits.parser import parse_netlist
from repro.circuits.writer import write_netlist
from repro.symbolic import SymbolicAnalyzer

# -- strategies ---------------------------------------------------------

resistances = st.floats(min_value=10.0, max_value=1e6)
capacitances = st.floats(min_value=1e-15, max_value=1e-9)


@st.composite
def rc_ladders(draw, max_sections=5):
    n = draw(st.integers(min_value=1, max_value=max_sections))
    rs = [draw(resistances) for _ in range(n)]
    cs = [draw(capacitances) for _ in range(n)]
    ckt = Circuit("ladder")
    ckt.vsource("vin", "n0", "0", dc=1.0, ac=1.0)
    for i in range(n):
        ckt.resistor(f"r{i}", f"n{i}", f"n{i + 1}", rs[i])
        ckt.capacitor(f"c{i}", f"n{i + 1}", "0", cs[i])
    return ckt, n


@st.composite
def rc_meshes(draw, n_nodes=4):
    """Random connected RC network between n internal nodes and ground."""
    ckt = Circuit("mesh")
    ckt.vsource("vin", "n0", "0", dc=1.0, ac=1.0)
    # Spanning chain guarantees connectivity.
    for i in range(n_nodes):
        ckt.resistor(f"rs{i}", f"n{i}", f"n{i + 1}", draw(resistances))
    # Random extra elements.
    n_extra = draw(st.integers(min_value=0, max_value=4))
    for k in range(n_extra):
        a = draw(st.integers(min_value=0, max_value=n_nodes))
        b = draw(st.integers(min_value=0, max_value=n_nodes))
        if a == b:
            continue
        kind = draw(st.sampled_from(["r", "c"]))
        if kind == "r":
            ckt.resistor(f"rx{k}", f"n{a}", f"n{b}", draw(resistances))
        else:
            ckt.capacitor(f"cx{k}", f"n{a}", f"n{b}", draw(capacitances))
    for i in range(1, n_nodes + 1):
        ckt.capacitor(f"cg{i}", f"n{i}", "0", draw(capacitances))
    return ckt, n_nodes


# -- passivity ----------------------------------------------------------

class TestPassivity:
    @given(rc_ladders())
    @settings(max_examples=30, deadline=None)
    def test_rc_transfer_magnitude_bounded(self, ladder):
        ckt, n = ladder
        res = ac_analysis(ckt, np.logspace(0, 10, 8))
        mags = np.abs(res.v(f"n{n}"))
        assert np.all(mags <= 1.0 + 1e-9)

    @given(rc_ladders())
    @settings(max_examples=20, deadline=None)
    def test_awe_poles_stable(self, ladder):
        ckt, n = ladder
        ss = small_signal_system(ckt)
        model = reduce_circuit(ss, f"n{n}", order=3)
        assert np.all(model.poles.real < 0)

    @given(rc_meshes())
    @settings(max_examples=20, deadline=None)
    def test_mesh_dc_between_rails(self, mesh):
        ckt, n = mesh
        op = dc_operating_point(ckt)
        for i in range(1, n + 1):
            assert -1e-6 <= op.v(f"n{i}") <= 1.0 + 1e-6

    @given(rc_ladders())
    @settings(max_examples=20, deadline=None)
    def test_awe_dc_matches_simulator(self, ladder):
        ckt, n = ladder
        ss = small_signal_system(ckt)
        model = reduce_circuit(ss, f"n{n}", order=2)
        assert model.dc_value() == pytest.approx(1.0, rel=1e-3)


# -- symbolic vs numeric --------------------------------------------------

class TestSymbolicNumericAgreement:
    @given(rc_ladders(max_sections=3),
           st.floats(min_value=1e2, max_value=1e9))
    @settings(max_examples=25, deadline=None)
    def test_transfer_functions_agree(self, ladder, freq):
        ckt, n = ladder
        tf = SymbolicAnalyzer(ckt).transfer_function(f"n{n}")
        numeric = ac_analysis(ckt, np.array([freq])).v(f"n{n}")[0]
        symbolic = tf.evaluate_jw(freq)
        # The numeric simulator adds gmin shunts (1e-12 S) that the
        # symbolic model omits; with MOhm resistors that is ~1e-6 relative.
        assert symbolic == pytest.approx(numeric, rel=1e-4, abs=1e-12)

    @given(rc_meshes())
    @settings(max_examples=15, deadline=None)
    def test_mesh_dc_gain_agrees(self, mesh):
        ckt, n = mesh
        tf = SymbolicAnalyzer(ckt).transfer_function(f"n{n}")
        numeric = ac_analysis(ckt, np.array([1e-2])).v(f"n{n}")[0]
        assert abs(tf.evaluate_jw(1e-2)) == pytest.approx(
            abs(numeric), rel=1e-4, abs=1e-12)


# -- netlist round trips ---------------------------------------------------

class TestNetlistRoundtrip:
    @given(rc_meshes())
    @settings(max_examples=25, deadline=None)
    def test_write_parse_preserves_solution(self, mesh):
        ckt, n = mesh
        reparsed = parse_netlist(write_netlist(ckt))
        v_orig = dc_operating_point(ckt)
        v_again = dc_operating_point(reparsed)
        for i in range(1, n + 1):
            assert v_again.v(f"n{i}") == pytest.approx(
                v_orig.v(f"n{i}"), rel=1e-9, abs=1e-12)

    @given(st.integers(min_value=1, max_value=6),
           st.floats(min_value=1e-6, max_value=100e-6),
           st.floats(min_value=0.5e-6, max_value=5e-6))
    @settings(max_examples=25, deadline=None)
    def test_mos_circuit_roundtrip(self, m, w, l):
        from repro.circuits.devices import NMOS_DEFAULT
        ckt = Circuit("m")
        ckt.vsource("vdd_src", "vdd", "0", dc=3.3)
        ckt.vsource("vg", "g", "0", dc=1.2)
        ckt.resistor("rl", "vdd", "d", 10e3)
        ckt.mosfet("m1", "d", "g", "0", "0", NMOS_DEFAULT, w, l, m)
        again = parse_netlist(write_netlist(ckt))
        dev = again.device("m1")
        assert dev.w == pytest.approx(w, rel=1e-5)
        assert dev.l == pytest.approx(l, rel=1e-5)
        assert dev.m == m


# -- router invariants -----------------------------------------------------

class TestRouterInvariants:
    @given(st.lists(
        st.tuples(st.integers(min_value=1, max_value=18),
                  st.integers(min_value=1, max_value=18)),
        min_size=2, max_size=4, unique=True))
    @settings(max_examples=25, deadline=None)
    def test_single_net_connects_all_pins(self, pin_cells):
        from repro.layout.geometry import Rect
        from repro.layout.router import AnagramRouter, RoutingRequest
        pitch = 1200
        router = AnagramRouter(Rect(0, 0, 24_000, 24_000), [],
                               pitch=pitch)
        pins = [(x * pitch, y * pitch, "metal1") for x, y in pin_cells]
        wire = router.route_net(RoutingRequest("n", pins))
        # The wire's occupied cells must include every pin cell.
        occupied = set(router.occupancy[0]) | set(router.occupancy[1])
        for x, y, _ in pins:
            assert router.to_grid(x, y) in occupied

    @given(st.integers(min_value=0, max_value=10),
           st.integers(min_value=0, max_value=10))
    @settings(max_examples=20, deadline=None)
    def test_two_nets_never_share_cells(self, ay, by):
        from repro.layout.geometry import Rect
        from repro.layout.router import AnagramRouter, RoutingRequest
        pitch = 1200
        router = AnagramRouter(Rect(0, 0, 30_000, 30_000), [], pitch=pitch)
        router.route_net(RoutingRequest(
            "a", [(0, ay * pitch, "metal1"),
                  (24_000, ay * pitch, "metal1")]))
        router.route_net(RoutingRequest(
            "b", [(0, (by + 12) * pitch, "metal1"),
                  (24_000, (by + 12) * pitch, "metal1")]))
        for layer in (0, 1):
            nets_in_cells = {}
            for cell, (net, _) in router.occupancy[layer].items():
                assert nets_in_cells.setdefault(cell, net) == net


# -- placer invariants -----------------------------------------------------

class TestPlacerInvariants:
    @given(st.lists(st.floats(min_value=4e-6, max_value=60e-6),
                    min_size=2, max_size=5))
    @settings(max_examples=10, deadline=None)
    def test_random_device_sets_place_legally(self, widths):
        from repro.circuits.devices import NMOS_DEFAULT, Mosfet
        from repro.layout.devicegen import generate_device
        from repro.layout.placer import KoanPlacer, has_overlaps
        from repro.opt.anneal import AnnealSchedule
        layouts = [
            generate_device(Mosfet(f"m{i}", (f"d{i}", f"g{i}", "s", "0"),
                                   NMOS_DEFAULT, w, 1e-6))
            for i, w in enumerate(widths)
        ]
        placer = KoanPlacer(layouts, seed=1)
        result = placer.run(AnnealSchedule(moves_per_temperature=30,
                                           cooling=0.7,
                                           max_evaluations=800))
        assert not has_overlaps(result.placement)


# -- solver invariants: KCL at every converged operating point -------------

def _kcl_residual(ckt):
    """max |G x + f_nl(x) - b_dc| at the converged DC operating point."""
    from repro.analysis.mna import MnaSystem
    system = MnaSystem(ckt)
    G, _C, b_dc, _b_ac = system.linear_stamps()
    op = dc_operating_point(ckt)
    return float(np.max(np.abs(G @ op.x + system.nonlinear_currents(op.x)
                               - b_dc)))


class TestKclResidual:
    """Every converged DC solution must satisfy Kirchhoff's current law:
    the MNA residual at the operating point is zero to solver tolerance.
    This is the ground-truth check that convergence means *solved*, not
    merely *stopped*."""

    # Linear networks solve in one step; residual is machine epsilon.
    KCL_TOL = 1e-9

    @given(rc_ladders())
    @settings(max_examples=25, deadline=None)
    def test_ladder_kcl(self, ladder):
        ckt, _n = ladder
        assert _kcl_residual(ckt) <= self.KCL_TOL

    @given(rc_meshes())
    @settings(max_examples=20, deadline=None)
    def test_mesh_kcl(self, mesh):
        ckt, _n = mesh
        assert _kcl_residual(ckt) <= self.KCL_TOL

    @given(st.floats(min_value=10e-6, max_value=200e-6),
           st.floats(min_value=5e-6, max_value=100e-6),
           st.floats(min_value=5e-6, max_value=100e-6),
           st.floats(min_value=2e-6, max_value=500e-6))
    @settings(max_examples=15, deadline=None)
    def test_nonlinear_ota_kcl(self, w_in, w_load, w_tail, i_bias):
        """Newton's converged answer on the full transistor OTA obeys KCL
        — for every sizing hypothesis finds, not just the library default."""
        from hypothesis import assume
        from repro.analysis.dcop import ConvergenceError
        from repro.circuits.library import five_transistor_ota
        ckt = five_transistor_ota({
            "w_in": w_in, "w_load": w_load, "w_tail": w_tail,
            "i_bias": i_bias,
            "l_in": 2e-6, "l_load": 2e-6, "l_tail": 2e-6,
            "c_load": 2e-12, "vdd": 3.3})
        ckt.vsource("tb_vip", "inp", "0", dc=1.5, ac=1.0)
        ckt.vsource("tb_vin", "inn", "0", dc=1.5)
        try:
            residual = _kcl_residual(ckt)
        except ConvergenceError:
            assume(False)  # a non-converged point asserts nothing
            return
        assert residual <= self.KCL_TOL


# -- cache-key stability ---------------------------------------------------

class TestCacheKeyStability:
    """The engine's content-addressed cache keys on the serialized
    netlist; a round trip through the SPICE writer/parser must therefore
    be key-invariant, or re-parsed netlists would silently miss the
    cache."""

    @given(rc_meshes())
    @settings(max_examples=25, deadline=None)
    def test_key_survives_reserialization(self, mesh):
        from repro.engine.cache import canonical_key
        ckt, _n = mesh
        roundtrip = parse_netlist(write_netlist(ckt))
        assert canonical_key(ckt) == canonical_key(roundtrip)
        # And twice through changes nothing further.
        again = parse_netlist(write_netlist(roundtrip))
        assert canonical_key(roundtrip) == canonical_key(again)

    @given(st.floats(min_value=1e-6, max_value=100e-6),
           st.floats(min_value=0.5e-6, max_value=5e-6))
    @settings(max_examples=25, deadline=None)
    def test_mos_key_survives_reserialization(self, w, l):
        from repro.circuits.devices import NMOS_DEFAULT
        from repro.engine.cache import canonical_key
        ckt = Circuit("m")
        ckt.vsource("vdd_src", "vdd", "0", dc=3.3)
        ckt.vsource("vg", "g", "0", dc=1.2)
        ckt.resistor("rl", "vdd", "d", 10e3)
        ckt.mosfet("m1", "d", "g", "0", "0", NMOS_DEFAULT, w, l)
        assert canonical_key(ckt) == \
            canonical_key(parse_netlist(write_netlist(ckt)))

    def test_key_is_order_insensitive_for_dicts(self):
        from repro.engine.cache import canonical_key
        assert canonical_key({"a": 1, "b": 2}) == \
            canonical_key({"b": 2, "a": 1})
