"""Compositional topology generation: grammar, validity, funnel, schema.

Pins the acceptance criteria of the generated-space subsystem: the
grammar enumerates deterministically and byte-stably, at least 100
structurally distinct compositions pass the electrical validity gate
(parse round-trip, DC solve, KCL), symbolic pruning cuts the sized set
by >= 5x, the funnel's counters roll up into report schema v8 / manifest
v7, and the serve workload routes mixed-structure point streams.
"""

import math

import pytest

from repro.circuits.writer import write_netlist
from repro.core.specs import Spec, SpecSet
from repro.engine.config import EngineConfig
from repro.engine.core import EvaluationEngine
from repro.engine.schema import (
    REQUIRED_TOPOGEN_KEYS,
    check_report,
    topogen_rollup,
)
from repro.engine.telemetry import Telemetry
from repro.opt.anneal import AnnealSchedule
from repro.opt.interval import Interval
from repro.synthesis.compose import (
    TopologyFunnel,
    composed_performance,
    generate_topologies,
    prune_structures,
    rank_structures,
    topogen_workload,
    validate_topology,
)
from repro.synthesis.topology import select_interval, select_rule_based

TABLE1 = SpecSet([Spec.at_least("gain_db", 60.0),
                  Spec.at_least("gbw", 5e6),
                  Spec.minimize("power", good=1e-4)])


@pytest.fixture(scope="module")
def full_space():
    return generate_topologies()


class TestGenerator:
    def test_grammar_emits_at_least_100_structures(self, full_space):
        assert len(full_space) >= 100

    def test_structure_ids_unique_and_sorted(self, full_space):
        ids = [t.structure_id for t in full_space]
        assert len(set(ids)) == len(ids)
        assert ids == sorted(ids)

    def test_enumeration_is_deterministic(self, full_space):
        again = generate_topologies()
        assert [t.structure_id for t in again] == \
            [t.structure_id for t in full_space]

    def test_netlists_are_byte_stable(self, full_space):
        for topo in generate_topologies(seed=0, sample=8):
            text = write_netlist(topo.testbench())
            again = next(t for t in generate_topologies()
                         if t.structure_id == topo.structure_id)
            assert write_netlist(again.testbench()) == text

    def test_netlists_structurally_distinct(self, full_space):
        texts = {write_netlist(t.testbench()) for t in full_space}
        assert len(texts) == len(full_space)

    def test_sampling_is_seed_stable(self, full_space):
        a = generate_topologies(seed=7, sample=20)
        b = generate_topologies(seed=7, sample=20)
        assert [t.structure_id for t in a] == [t.structure_id for t in b]
        assert len(a) == 20
        all_ids = {t.structure_id for t in full_space}
        assert {t.structure_id for t in a} <= all_ids

    def test_spaces_complete_defaults(self, full_space):
        for topo in full_space:
            sizes = topo.default_sizes()
            assert set(topo.space.variables) <= set(sizes)
            for name, (lo, hi) in topo.space.variables.items():
                assert lo <= sizes[name] <= hi


class TestValidity:
    def test_at_least_100_electrically_valid(self, full_space):
        reports = [validate_topology(t) for t in full_space]
        valid = [r for r in reports if r.ok]
        assert len(valid) >= 100, \
            [f"{r.structure_id}: {r.reason}" for r in reports if not r.ok]
        for r in valid:
            assert r.kcl_residual < 1e-6


class TestModelAndCandidates:
    def test_model_is_interval_safe_on_gain(self, full_space):
        topo = full_space[0]
        point = {name: Interval(lo, hi)
                 for name, (lo, hi) in topo.space.variables.items()}
        point.update(topo.space.fixed)
        perf = composed_performance(topo.spec, point)
        assert isinstance(perf["gain_db"], Interval)

    def test_candidates_work_with_legacy_selectors(self, full_space):
        cands = [t.as_candidate() for t in full_space[:30]]
        specs = SpecSet([Spec.at_least("gain_db", 40.0)])
        ruled = select_rule_based(specs, cands)
        assert ruled
        viable = select_interval(specs, cands)
        assert set(ruled) <= set(viable) | set(viable.unproven) \
            or set(ruled) <= set(viable)

    def test_model_matches_candidate_model(self, full_space):
        topo = full_space[0]
        sizes = topo.default_sizes()
        assert topo.as_candidate().model(sizes) == topo.model(sizes)


class TestPruning:
    def test_prune_cuts_sized_set_five_fold(self, full_space):
        ranked = rank_structures(full_space, TABLE1)
        survivors = prune_structures(ranked)
        assert len(ranked) >= 5 * len(survivors)
        assert len(survivors) >= 1

    def test_ranking_is_sorted_and_deterministic(self, full_space):
        subset = generate_topologies(seed=1, sample=20)
        r1 = rank_structures(subset, TABLE1)
        r2 = rank_structures(subset, TABLE1)
        assert [r.structure_id for r in r1] == [r.structure_id for r in r2]
        scores = [r.score for r in r1]
        assert scores == sorted(scores, reverse=True)

    def test_symbolic_path_dominates(self, full_space):
        telemetry = Telemetry()
        rank_structures(generate_topologies(seed=2, sample=15), TABLE1,
                        telemetry=telemetry)
        ranked = telemetry.get("topogen.symbolic_ranked")
        fallbacks = telemetry.get("topogen.symbolic_fallbacks")
        assert ranked + fallbacks == 15
        assert ranked >= fallbacks


class TestFunnel:
    def test_funnel_end_to_end_with_counters(self):
        engine = EvaluationEngine.from_config(EngineConfig(cache=True))
        try:
            funnel = TopologyFunnel(
                TABLE1, engine=engine, seed=3, sample=18, keep=3,
                schedule=AnnealSchedule(moves_per_temperature=8,
                                        cooling=0.6, max_evaluations=48))
            result = funnel.run()
            assert result.generated == 18
            assert result.invalid == 0
            assert len(result.sized) == len(result.survivors) == 3
            assert result.prune_ratio >= 5.0
            assert result.best is not None
            assert not math.isnan(result.best.sizing.cost)

            report = engine.report()
            check_report(report)
            topogen = report["topogen"]
            assert topogen["generated"] == 18
            assert topogen["valid"] == 18
            assert topogen["survivors"] == topogen["sized"] == 3
            assert topogen["prune_ratio"] >= 5.0
        finally:
            engine.close()

    def test_funnel_owns_default_engine(self):
        funnel = TopologyFunnel(
            TABLE1, seed=1, sample=6, keep=1,
            schedule=AnnealSchedule(moves_per_temperature=4,
                                    cooling=0.5, max_evaluations=16))
        result = funnel.run()
        assert result.best is not None
        assert len(result.sized) == 1

    def test_engine_and_config_are_exclusive(self):
        engine = EvaluationEngine.from_config(EngineConfig())
        try:
            with pytest.raises(ValueError):
                TopologyFunnel(TABLE1, engine=engine, config=EngineConfig())
        finally:
            engine.close()


class TestSchemaRollup:
    def test_rollup_keys_and_zero_default(self):
        section = topogen_rollup({})
        assert tuple(section) == REQUIRED_TOPOGEN_KEYS
        assert section["prune_ratio"] is None
        assert all(v == 0 for k, v in section.items()
                   if k != "prune_ratio")

    def test_rollup_folds_counters(self):
        counters = {"topogen.generated": 120, "topogen.valid": 118,
                    "topogen.invalid": 2, "topogen.symbolic_ranked": 100,
                    "topogen.symbolic_fallbacks": 18,
                    "topogen.pruned_out": 98, "topogen.survivors": 20,
                    "topogen.sized": 20,
                    "topology.interval_unproven": 4}
        section = topogen_rollup(counters)
        assert section["generated"] == 120
        assert section["interval_unproven"] == 4
        assert section["prune_ratio"] == pytest.approx(118 / 20)


class TestServeWorkload:
    def test_workload_routes_mixed_structures(self):
        topos = generate_topologies(seed=0, sample=4)
        wl = topogen_workload(topos)
        points = [{"structure": t.structure_id, "sizes": t.default_sizes()}
                  for t in topos[:2]]
        points.append(dict(points[0]))  # duplicate: must dedup cleanly
        engine = EvaluationEngine.from_config(EngineConfig(cache=True))
        try:
            results = engine.map_evaluate(wl.fn, points, key_fn=wl.key_fn,
                                          batcher=wl.batcher)
        finally:
            engine.close()
        assert len(results) == 3
        assert results[0] == results[2]
        assert all("gain_db" in r for r in results)

    def test_unknown_structure_raises(self):
        wl = topogen_workload(generate_topologies(seed=0, sample=2))
        with pytest.raises(KeyError):
            wl.fn({"structure": "nope", "sizes": {}})

    def test_malformed_point_raises(self):
        wl = topogen_workload(generate_topologies(seed=0, sample=2))
        with pytest.raises(ValueError):
            wl.fn({"sizes": {}})

    def test_batcher_groups_by_structure(self):
        topos = generate_topologies(seed=0, sample=3)
        wl = topogen_workload(topos)
        points = [{"structure": topos[0].structure_id,
                   "sizes": topos[0].default_sizes()},
                  {"structure": topos[1].structure_id,
                   "sizes": topos[1].default_sizes()},
                  {"structure": topos[0].structure_id,
                   "sizes": topos[0].default_sizes()},
                  {"structure": "bogus", "sizes": {}}]
        groups = wl.batcher.group(points)
        assert sorted(map(sorted, groups)) == [[0, 2], [1], [3]]
