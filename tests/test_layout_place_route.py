"""Integration tests: placement, routing, compaction, extraction, mapping."""

import pytest

from repro.circuits.library import five_transistor_ota
from repro.layout import (
    DEFAULT_TECH,
    KoanPlacer,
    NOISY,
    SENSITIVE,
    AnagramRouter,
    Rect,
    RoutingRequest,
    annotate_circuit,
    compact_placement,
    extract_constraints,
    extract_parasitics,
    generate_device,
    has_overlaps,
    map_constraints,
    procedural_cell_layout,
    route_placement,
    routed_cell,
    sensitivities_from_circuit,
    symmetry_error,
    template_report,
    verify_bounds,
)
from repro.layout.sensitivity_map import MappingError
from repro.opt.anneal import AnnealSchedule

FAST = AnnealSchedule(moves_per_temperature=80, cooling=0.85,
                      max_evaluations=8000, stop_after_stale=6)


def _placed_ota(seed=2):
    ota = five_transistor_ota()
    cs = extract_constraints(ota)
    layouts = [generate_device(d) for d in ota.mosfets]
    placer = KoanPlacer(layouts, cs, seed=seed)
    return ota, cs, placer, placer.run(schedule=FAST)


def _requests(placer, placement, sensitive=("inp", "inn")):
    nets = {}
    for name, obj in placement.objects.items():
        lay = placer.layouts[name]
        for port, net in lay.port_nets.items():
            if port in lay.cell.ports:
                x, y = obj.port_position(port)
                nets.setdefault(net, []).append(
                    (x, y, lay.cell.ports[port].layer))
    reqs = []
    for net, pins in nets.items():
        if len(pins) < 2:
            continue
        cls = SENSITIVE if net in sensitive else "neutral"
        reqs.append(RoutingRequest(net, pins, cls))
    return reqs


class TestKoanPlacer:
    def test_no_overlaps(self):
        _, _, _, result = _placed_ota()
        assert not has_overlaps(result.placement)

    def test_exact_symmetry(self):
        _, cs, _, result = _placed_ota()
        assert symmetry_error(result.placement, cs) == 0

    def test_packing_reasonable(self):
        _, _, placer, result = _placed_ota()
        assert result.area <= 6 * placer.total_area

    def test_beats_initial_placement(self):
        ota = five_transistor_ota()
        cs = extract_constraints(ota)
        layouts = [generate_device(d) for d in ota.mosfets]
        placer = KoanPlacer(layouts, cs, seed=3)
        import numpy as np
        initial_cost = placer.cost(
            placer.initial_placement(np.random.default_rng(3)))
        result = placer.run(schedule=FAST)
        assert result.cost <= initial_cost

    def test_deterministic_given_seed(self):
        _, _, _, r1 = _placed_ota(seed=5)
        _, _, _, r2 = _placed_ota(seed=5)
        assert r1.area == r2.area and r1.wirelength == r2.wirelength

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            KoanPlacer([], None)


class TestCompaction:
    def test_compaction_never_grows(self):
        _, cs, _, result = _placed_ota()
        report = compact_placement(result.placement, cs)
        assert report.area_after <= report.area_before * 1.05

    def test_compaction_preserves_legality(self):
        _, cs, _, result = _placed_ota()
        compact_placement(result.placement, cs)
        assert not has_overlaps(result.placement)

    def test_compaction_preserves_symmetry(self):
        _, cs, _, result = _placed_ota()
        compact_placement(result.placement, cs)
        assert symmetry_error(result.placement, cs) == 0

    def test_compacts_sparse_placement(self):
        # Spread a placement out, compaction must pull it back in.
        _, cs, _, result = _placed_ota()
        for obj in result.placement.objects.values():
            obj.x *= 3
            obj.y *= 3
        before = result.placement.bbox().area
        report = compact_placement(result.placement, cs)
        assert report.area_after < before


class TestAnagramRouter:
    def test_routes_all_ota_nets(self):
        _, cs, placer, result = _placed_ota()
        reqs = _requests(placer, result.placement)
        routing, router = route_placement(result.placement, reqs,
                                          cs.net_pairs)
        assert not routing.failed
        assert len(routing.wires) == len(reqs)

    def test_wire_shapes_generated(self):
        _, cs, placer, result = _placed_ota()
        reqs = _requests(placer, result.placement)
        routing, router = route_placement(result.placement, reqs,
                                          cs.net_pairs)
        cell = routed_cell(result.placement, routing)
        m2 = cell.shapes_on("metal2")
        assert len(cell.shapes) > 50
        assert routing.total_length > 0

    def test_simple_two_pin_route(self):
        router = AnagramRouter(Rect(0, 0, 100_000, 100_000), [])
        wire = router.route_net(RoutingRequest(
            "n1", [(10_000, 10_000, "metal1"), (80_000, 60_000, "metal1")]))
        assert wire.length_nm >= 70_000 + 50_000 - 2 * router.pitch

    def test_obstacle_forces_detour(self):
        area = Rect(0, 0, 100_000, 40_000)
        wall = Rect(45_000, 0, 55_000, 35_000)
        direct = AnagramRouter(area, [])
        blocked = AnagramRouter(area, [wall], via_cost=1000.0)
        pins = [(10_000, 10_000, "metal1"), (90_000, 10_000, "metal1")]
        w_direct = direct.route_net(RoutingRequest("a", pins))
        w_blocked = blocked.route_net(RoutingRequest("a", pins))
        assert w_blocked.length_nm > w_direct.length_nm

    def test_over_the_device_on_metal2(self):
        # Same wall, but vias allowed: router may hop to metal2 over it.
        area = Rect(0, 0, 100_000, 40_000)
        wall = Rect(45_000, 0, 55_000, 35_000)
        router = AnagramRouter(area, [wall], via_cost=2.0)
        pins = [(10_000, 10_000, "metal1"), (90_000, 10_000, "metal1")]
        wire = router.route_net(RoutingRequest("a", pins))
        assert wire.vias  # crossed on metal2

    def test_crosstalk_avoidance(self):
        """A sensitive net pays to run beside a noisy one and detours."""
        area = Rect(0, 0, 200_000, 100_000)
        router = AnagramRouter(area, [], crosstalk_cost=50.0)
        noisy = router.route_net(RoutingRequest(
            "clk", [(10_000, 50_000, "metal1"),
                    (190_000, 50_000, "metal1")], NOISY))
        sens = router.route_net(RoutingRequest(
            "vin", [(10_000, 52_000, "metal1"),
                    (190_000, 52_000, "metal1")], SENSITIVE))
        adjacencies = router.count_incompatible_adjacencies(None)
        # The sensitive wire must have peeled away from the noisy track.
        assert adjacencies < 10

    def test_conflicting_nets_cannot_cross_same_layer(self):
        router = AnagramRouter(Rect(0, 0, 50_000, 50_000), [])
        router.route_net(RoutingRequest(
            "a", [(5_000, 25_000, "metal1"), (45_000, 25_000, "metal1")]))
        wire_b = router.route_net(RoutingRequest(
            "b", [(25_000, 5_000, "metal1"), (25_000, 45_000, "metal1")]))
        assert wire_b.vias  # must cross on the other layer

    def test_single_pin_rejected(self):
        router = AnagramRouter(Rect(0, 0, 10_000, 10_000), [])
        from repro.layout.router import RoutingError
        with pytest.raises(RoutingError):
            router.route_net(RoutingRequest("x", [(0, 0, "metal1")]))

    def test_parasitic_bound_shortens_net(self):
        area = Rect(0, 0, 200_000, 200_000)
        pins = [(10_000, 10_000, "metal1"), (150_000, 10_000, "metal1")]
        free = AnagramRouter(area, [])
        w_free = free.route_net(RoutingRequest("n", pins))
        bound = DEFAULT_TECH.wire_capacitance(
            160_000, DEFAULT_TECH.min_width_metal)
        tight = AnagramRouter(area, [])
        w_tight = tight.route_net(RoutingRequest("n", pins,
                                                 cap_bound=bound))
        assert w_tight.capacitance <= bound * 1.2


class TestTemplates:
    def test_all_styles_build(self):
        ota = five_transistor_ota()
        for style in ("rows_classic", "rows_wide", "column_compact",
                      "interleaved"):
            template = procedural_cell_layout(ota, style)
            assert not has_overlaps(template.placement)
            report = template_report(template)
            assert report["area_um2"] > 0

    def test_styles_differ(self):
        ota = five_transistor_ota()
        areas = {s: template_report(procedural_cell_layout(ota, s))
                 ["area_um2"] for s in ("rows_classic", "rows_wide")}
        assert areas["rows_wide"] > areas["rows_classic"]

    def test_template_symmetric(self):
        ota = five_transistor_ota()
        template = procedural_cell_layout(ota, "rows_classic")
        assert symmetry_error(template.placement,
                              template.constraints) == 0

    def test_unknown_style(self):
        from repro.layout.templates import TemplateError
        with pytest.raises(TemplateError):
            procedural_cell_layout(five_transistor_ota(), "nope")

    def test_template_routable(self):
        ota = five_transistor_ota()
        template = procedural_cell_layout(ota, "rows_classic")
        placer = KoanPlacer(list(template.layouts.values()),
                            template.constraints)
        reqs = _requests(placer, template.placement)
        routing, _ = route_placement(template.placement, reqs,
                                     template.constraints.net_pairs)
        assert not routing.failed


class TestExtractionAndMapping:
    def test_extraction_totals(self):
        _, cs, placer, result = _placed_ota()
        reqs = _requests(placer, result.placement)
        routing, router = route_placement(result.placement, reqs,
                                          cs.net_pairs)
        extraction = extract_parasitics(routing, router)
        assert extraction.total_wire_cap() > 0
        for net in routing.wires:
            assert extraction.nets[net].resistance >= 0

    def test_coupling_symmetric(self):
        _, cs, placer, result = _placed_ota()
        reqs = _requests(placer, result.placement)
        routing, router = route_placement(result.placement, reqs,
                                          cs.net_pairs)
        extraction = extract_parasitics(routing, router)
        for net, para in extraction.nets.items():
            for other, cap in para.coupling.items():
                assert extraction.coupling_between(other, net) == \
                    pytest.approx(cap)

    def test_annotated_circuit_simulates(self):
        from repro.analysis import ac_analysis, bode_metrics, \
            dc_operating_point, logspace_frequencies
        ota, cs, placer, result = _placed_ota()
        reqs = _requests(placer, result.placement)
        routing, router = route_placement(result.placement, reqs,
                                          cs.net_pairs)
        extraction = extract_parasitics(routing, router)
        annotated = annotate_circuit(ota, extraction)
        assert len(annotated.devices) > len(ota.devices)
        annotated.vsource("vip", "inp", "0", dc=1.5, ac=1.0)
        annotated.vsource("vin_", "inn", "0", dc=1.5)
        m = bode_metrics(
            ac_analysis(annotated, logspace_frequencies(10, 1e9, 4)),
            "out")
        assert m.dc_gain > 10  # parasitics degrade, not destroy

    def test_map_constraints_respects_budget(self):
        sens = {"gbw": {"out": 2e12, "x1": 8e12},
                "gain": {"out": 1e10, "x1": 1e10}}
        budget = {"gbw": 1e6, "gain": 5.0}
        cmap = map_constraints(sens, budget)
        # First-order degradation at the bounds must not exceed budgets.
        for perf, row in sens.items():
            total = sum(abs(s) * cmap.bound_for(p) for p, s in row.items())
            assert total <= budget[perf] * 1.0001

    def test_map_constraints_sensitive_net_gets_less(self):
        sens = {"gbw": {"hot": 1e13, "cold": 1e11}}
        cmap = map_constraints(sens, {"gbw": 1e6})
        assert cmap.bound_for("hot") < cmap.bound_for("cold")

    def test_map_infeasible(self):
        sens = {"gbw": {"n1": 1e15}}
        with pytest.raises(MappingError):
            map_constraints(sens, {"gbw": 1e-3}, min_bound=1e-9)

    def test_sensitivities_from_circuit(self):
        from repro.analysis import ac_analysis, logspace_frequencies, \
            bode_metrics
        ota = five_transistor_ota()
        ota.vsource("vip", "inp", "0", dc=1.5, ac=1.0)
        ota.vsource("vin_", "inn", "0", dc=1.5)

        def gbw(circuit):
            m = bode_metrics(ac_analysis(
                circuit, logspace_frequencies(1e3, 1e9, 4)), "out")
            return m.unity_gain_freq

        sens = sensitivities_from_circuit(ota, gbw, ["out", "tail"])
        # Load cap on the output must reduce GBW.
        assert sens["out"] < 0

    def test_verify_bounds(self):
        _, cs, placer, result = _placed_ota()
        reqs = _requests(placer, result.placement)
        routing, router = route_placement(result.placement, reqs,
                                          cs.net_pairs)
        extraction = extract_parasitics(routing, router)
        from repro.layout.sensitivity_map import ConstraintMap
        generous = ConstraintMap({net: 1.0 for net in extraction.nets})
        assert all(verify_bounds(extraction, generous).values())


class TestSimultaneousPlaceRoute:
    def _spr(self, seed=2):
        from repro.circuits.library import five_transistor_ota
        from repro.layout.simultaneous import SimultaneousPlaceRoute
        ota = five_transistor_ota()
        cs = extract_constraints(ota)
        layouts = [generate_device(d) for d in ota.mosfets]
        return SimultaneousPlaceRoute(layouts, cs,
                                      sensitive_nets=("inp", "inn"),
                                      seed=seed)

    def test_improves_on_initial_routed_cost(self):
        import numpy as np
        spr = self._spr()
        rng = np.random.default_rng(2)
        initial = spr.placer.initial_placement(rng)
        c0, *_ = spr.routed_cost(initial.copy())
        result = spr.run(rounds=15)
        assert result.cost <= c0

    def test_result_fully_routed_and_legal(self):
        spr = self._spr()
        result = spr.run(rounds=10)
        assert not result.routing.failed
        assert not has_overlaps(result.placement)

    def test_symmetry_preserved_through_loop(self):
        spr = self._spr()
        result = spr.run(rounds=10)
        assert symmetry_error(result.placement, spr.constraints) == 0

    def test_wire_metrics_reported(self):
        spr = self._spr()
        result = spr.run(rounds=5)
        assert result.wire_length > 0
        assert result.wire_cap > 0
        assert result.routed_area > 0
