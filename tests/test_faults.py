"""Fault-injection, retry/timeout and differential resilience tests.

The engine's failure model (repro.engine.faults) promises four things:

1. fault schedules are deterministic functions of (seed, point, attempt),
   independent of executor kind and evaluation order;
2. failed evaluations come back as structured EvalFailure records —
   retried per policy, counted in telemetry, never cached, never silently
   swallowed;
3. crashed and hung pool workers are isolated: their pool is condemned
   and the jobs requeued on a fresh one;
4. a seeded synthesis run under an injected fault schedule is
   bit-identical between SerialExecutor and ParallelExecutor, with or
   without faults (the differential matrix).

``REPRO_FAULT_RATE`` (default 0.1) sets the injected fault rate for the
stochastic tests, which is how the CI fault-injection job dials it up.
"""

import os
import time

import pytest

from repro.analysis.dcop import ConvergenceError
from repro.analysis.mna import SingularCircuitError
from repro.circuits.library import five_transistor_ota
from repro.core.specs import Spec, SpecSet
from repro.engine import (
    EvalCache,
    EvalFailure,
    EvalTimeoutError,
    EvaluationEngine,
    FaultInjector,
    JobGraph,
    ParallelExecutor,
    RetryPolicy,
    SerialExecutor,
    WorkerCrashError,
    is_failure,
    point_token,
)
from repro.opt.anneal import AnnealSchedule, ContinuousSpace, anneal_continuous
from repro.opt.genetic import FloatGene, GeneticOptimizer
from repro.synthesis.equation_based import DesignSpace
from repro.synthesis.simulation_based import (
    SimulationBasedSizer,
    SimulationEvaluator,
)

FAULT_RATE = float(os.environ.get("REPRO_FAULT_RATE", "0.1"))


# -- module-level helpers (picklable into worker processes) -------------

def _square(x):
    return x * x


def _raise_type_error(x):
    raise TypeError(f"unexpected bug for {x}")


def _raise_convergence(x):
    raise ConvergenceError("organic non-convergence")


def _sleepy(x):
    time.sleep(x)
    return x


def _crash_once(arg):
    """Hard-kill the worker process on first sight of the marker path."""
    value, marker = arg
    if not os.path.exists(marker):
        with open(marker, "w") as fh:
            fh.write("crashed")
        os._exit(1)
    return value * 10


def _hang_once(arg):
    """Hang well past any test timeout on first sight of the marker path."""
    value, marker = arg
    if not os.path.exists(marker):
        with open(marker, "w") as fh:
            fh.write("hung")
        time.sleep(4.0)
    return value * 10


class _FlakyOnce:
    """Fails each point exactly once, then succeeds (serial-only: stateful)."""

    def __init__(self, exc_type=ConvergenceError):
        self.calls = {}
        self.exc_type = exc_type

    def __call__(self, x):
        n = self.calls.get(x, 0)
        self.calls[x] = n + 1
        if n == 0:
            raise self.exc_type(f"flaky first attempt for {x}")
        return x * 2


# ----------------------------------------------------------------------
# FaultInjector determinism
# ----------------------------------------------------------------------

class TestFaultInjector:
    def test_schedule_is_deterministic(self):
        inj = FaultInjector(rate=0.3, seed=11)
        tokens = [f"point-{i}" for i in range(500)]
        first = [inj.schedule(t) for t in tokens]
        second = [inj.schedule(t) for t in tokens]
        assert first == second

    def test_rate_is_respected(self):
        inj = FaultInjector(rate=0.25, seed=3)
        fired = sum(inj.schedule(f"t{i}") is not None for i in range(4000))
        assert 0.20 < fired / 4000 < 0.30

    def test_zero_rate_never_fires(self):
        inj = FaultInjector(rate=0.0, seed=1)
        assert all(inj.schedule(f"t{i}") is None for i in range(100))

    def test_attempt_changes_the_draw(self):
        inj = FaultInjector(rate=0.5, seed=5)
        tokens = [f"t{i}" for i in range(200)]
        a1 = [inj.schedule(t, attempt=1) for t in tokens]
        a2 = [inj.schedule(t, attempt=2) for t in tokens]
        assert a1 != a2  # retries get a fresh draw

    def test_kinds_are_drawn_from_the_configured_set(self):
        inj = FaultInjector(rate=1.0, seed=2, kinds=("crash",))
        assert inj.schedule("anything") == "crash"

    def test_wrapped_function_raises_the_scheduled_fault(self):
        inj = FaultInjector(rate=1.0, seed=4, kinds=("convergence",))
        wrapped = inj.wrap(_square)
        with pytest.raises(ConvergenceError, match="injected"):
            wrapped(3)

    def test_invalid_configuration_rejected(self):
        with pytest.raises(ValueError):
            FaultInjector(rate=1.5)
        with pytest.raises(ValueError):
            FaultInjector(rate=0.5, kinds=("gremlins",))

    def test_from_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_FAULT_RATE", "0.2")
        inj = FaultInjector.from_env(seed=9)
        assert inj is not None and inj.rate == 0.2
        monkeypatch.delenv("REPRO_FAULT_RATE")
        assert FaultInjector.from_env() is None

    def test_point_token_stable_for_dicts_and_arrays(self):
        import numpy as np
        assert point_token({"a": 1.0, "b": 2.0}) == \
            point_token({"b": 2.0, "a": 1.0})
        assert point_token(np.array([1.0, 2.0])) == \
            point_token([1.0, 2.0])


# ----------------------------------------------------------------------
# RetryPolicy classification
# ----------------------------------------------------------------------

class TestRetryPolicy:
    def test_default_transients_are_retryable(self):
        policy = RetryPolicy()
        for exc in (ConvergenceError("x"), SingularCircuitError("x"),
                    WorkerCrashError("x"), EvalTimeoutError("x")):
            assert policy.is_retryable(exc)

    def test_unexpected_errors_are_fatal_by_default(self):
        policy = RetryPolicy()
        assert not policy.is_retryable(TypeError("bug"))
        assert not policy.is_retryable(ZeroDivisionError())

    def test_fatal_overrides_retryable(self):
        policy = RetryPolicy(fatal=(ConvergenceError,))
        assert not policy.is_retryable(ConvergenceError("x"))

    def test_custom_retryable_set(self):
        policy = RetryPolicy(retryable=(ValueError,))
        assert policy.is_retryable(ValueError("x"))
        assert not policy.is_retryable(ConvergenceError("x"))

    def test_backoff_is_geometric(self):
        policy = RetryPolicy(backoff_s=0.1, backoff_factor=3.0)
        assert policy.delay(1) == pytest.approx(0.1)
        assert policy.delay(2) == pytest.approx(0.3)
        assert policy.delay(3) == pytest.approx(0.9)

    def test_jitter_is_deterministic_per_token(self):
        policy = RetryPolicy(backoff_s=0.1, backoff_factor=3.0, jitter=0.5,
                             jitter_seed=7)
        # Pure function of (seed, attempt, token): identical across calls,
        # bounded by [base, base * (1 + jitter)).
        for attempt, base in ((1, 0.1), (2, 0.3), (3, 0.9)):
            d = policy.delay(attempt, token="tok-a")
            assert d == policy.delay(attempt, token="tok-a")
            assert base <= d < base * 1.5
        # Distinct tokens de-synchronize; distinct seeds reshuffle.
        assert policy.delay(1, token="tok-a") != \
            policy.delay(1, token="tok-b")
        reseeded = RetryPolicy(backoff_s=0.1, backoff_factor=3.0,
                               jitter=0.5, jitter_seed=8)
        assert policy.delay(1, token="tok-a") != \
            reseeded.delay(1, token="tok-a")

    def test_no_jitter_without_token_or_with_zero_jitter(self):
        policy = RetryPolicy(backoff_s=0.1, backoff_factor=3.0, jitter=0.5)
        assert policy.delay(2) == pytest.approx(0.3)
        flat = RetryPolicy(backoff_s=0.1, backoff_factor=3.0, jitter=0.0)
        assert flat.delay(2, token="tok-a") == pytest.approx(0.3)

    def test_validation(self):
        with pytest.raises(ValueError):
            RetryPolicy(max_attempts=0)
        with pytest.raises(ValueError):
            RetryPolicy(timeout_s=0.0)
        with pytest.raises(ValueError):
            RetryPolicy(jitter=-0.1)


# ----------------------------------------------------------------------
# Serial executor resilience
# ----------------------------------------------------------------------

class TestSerialResilience:
    def test_no_policy_keeps_raw_semantics(self):
        with pytest.raises(TypeError):
            SerialExecutor().map_evaluate(_raise_type_error, [1])

    def test_retry_clears_transient_failures(self):
        ex = SerialExecutor(retry_policy=RetryPolicy(max_attempts=2))
        out = ex.map_evaluate(_FlakyOnce(), [1, 2, 3])
        assert out == [2, 4, 6]
        assert ex.retries == 3 and ex.failures == 0

    def test_exhausted_retries_yield_eval_failure(self):
        ex = SerialExecutor(retry_policy=RetryPolicy(max_attempts=3))
        out = ex.map_evaluate(_raise_convergence, [7])
        failure = out[0]
        assert is_failure(failure)
        assert failure.exception_type == "ConvergenceError"
        assert failure.attempts == 3 and failure.retryable
        assert failure.token == point_token(7)

    def test_unexpected_error_becomes_failure_not_swallowed(self):
        """The old bare `except Exception` is gone: a bug in the
        evaluation function surfaces as a structured, fatal EvalFailure
        on its first attempt."""
        ex = SerialExecutor(retry_policy=RetryPolicy(max_attempts=3))
        out = ex.map_evaluate(_raise_type_error, [1, 2])
        assert all(is_failure(f) for f in out)
        assert all(f.exception_type == "TypeError" for f in out)
        assert all(f.attempts == 1 and not f.retryable for f in out)

    def test_mixed_batch_keeps_order(self):
        ex = SerialExecutor(
            retry_policy=RetryPolicy(max_attempts=1),
            fault_injector=FaultInjector(rate=0.5, seed=8),
            token_fn=str)
        out = ex.map_evaluate(_square, list(range(40)))
        assert len(out) == 40
        for i, value in enumerate(out):
            if not is_failure(value):
                assert value == i * i

    def test_timeout_records_eval_timeout(self):
        ex = SerialExecutor(
            retry_policy=RetryPolicy(max_attempts=1, timeout_s=0.2))
        out = ex.map_evaluate(_sleepy, [0.0, 0.6])
        assert out[0] == 0.0
        assert is_failure(out[1])
        assert out[1].exception_type == "EvalTimeoutError"

    def test_injector_without_policy_fails_without_retry(self):
        ex = SerialExecutor(
            fault_injector=FaultInjector(rate=1.0, seed=1,
                                         kinds=("convergence",)))
        out = ex.map_evaluate(_square, [5])
        assert is_failure(out[0]) and out[0].attempts == 1

    def test_describe_counts_retries_and_failures(self):
        ex = SerialExecutor(retry_policy=RetryPolicy(max_attempts=2),
                            fault_injector=FaultInjector(
                                rate=1.0, seed=1, kinds=("convergence",)))
        ex.map_evaluate(_square, [1, 2])
        desc = ex.describe()
        assert desc["retries"] == 2 and desc["failures"] == 2


# ----------------------------------------------------------------------
# Parallel executor resilience: crash/hang isolation, requeueing
# ----------------------------------------------------------------------

class TestParallelResilience:
    def test_injected_faults_match_serial_exactly(self):
        policy = RetryPolicy(max_attempts=3)
        inj = FaultInjector(rate=max(FAULT_RATE, 0.05), seed=21)
        serial = SerialExecutor(retry_policy=policy, fault_injector=inj)
        points = list(range(60))
        expected = serial.map_evaluate(_square, points)
        with ParallelExecutor(workers=2, retry_policy=policy,
                              fault_injector=inj) as pooled:
            got = pooled.map_evaluate(_square, points)
        # EvalFailure equality ignores elapsed time, so this compares
        # values and failure records alike.
        assert got == expected
        assert pooled.retries == serial.retries
        assert pooled.failures == serial.failures

    def test_crashed_worker_is_isolated_and_jobs_requeued(self, tmp_path):
        marker = str(tmp_path / "crash-marker")
        policy = RetryPolicy(max_attempts=2)
        with ParallelExecutor(workers=2, retry_policy=policy) as ex:
            points = [(i, marker) for i in range(6)]
            out = ex.map_evaluate(_crash_once, points)
            assert out == [i * 10 for i in range(6)]
            assert ex.pool_restarts >= 1
            assert ex.retries >= 1
            # The pool still works after the restart.
            assert ex.map_evaluate(_square, list(range(8))) == \
                [i * i for i in range(8)]

    def test_crash_without_retry_budget_reports_failures(self, tmp_path):
        marker = str(tmp_path / "crash-once")
        policy = RetryPolicy(max_attempts=1)
        with ParallelExecutor(workers=2, retry_policy=policy) as ex:
            out = ex.map_evaluate(_crash_once, [(i, marker) for i in range(4)])
        assert all(is_failure(f) for f in out)
        assert all(f.exception_type == "WorkerCrashError" for f in out)

    def test_hung_worker_times_out_and_pool_recovers(self, tmp_path):
        marker = str(tmp_path / "hang-marker")
        policy = RetryPolicy(max_attempts=2, timeout_s=1.0)
        with ParallelExecutor(workers=2, retry_policy=policy) as ex:
            out = ex.map_evaluate(_hang_once, [(3, marker)])
            assert out == [30]  # timed out once, requeued, succeeded
            assert ex.pool_restarts >= 1

    def test_unpicklable_function_falls_back_in_resilient_path(self):
        local = 5
        ex = ParallelExecutor(workers=2,
                              retry_policy=RetryPolicy(max_attempts=1))
        out = ex.map_evaluate(lambda x: x + local, [1, 2])
        assert out == [6, 7]
        assert ex.describe()["serial_fallbacks"] >= 1


# ----------------------------------------------------------------------
# Engine integration: counting, caching, reporting
# ----------------------------------------------------------------------

class TestEngineFailureHandling:
    def test_failures_are_never_cached(self):
        cache = EvalCache()
        engine = EvaluationEngine(
            SerialExecutor(), cache,
            retry_policy=RetryPolicy(max_attempts=1),
            fault_injector=FaultInjector(rate=1.0, seed=1,
                                         kinds=("convergence",)))
        out = engine.map_evaluate(_square, [1, 2, 3], key_fn=str)
        assert all(is_failure(f) for f in out)
        assert len(cache) == 0
        # Clearing the injector lets the same keys evaluate cleanly —
        # nothing poisonous was memoized.
        engine.executor.fault_injector = None
        assert engine.map_evaluate(_square, [1, 2, 3], key_fn=str) == [1, 4, 9]
        assert len(cache) == 3

    def test_cache_put_refuses_failure_records(self):
        cache = EvalCache()
        cache.put("k", EvalFailure("ConvergenceError", "injected"))
        assert len(cache) == 0
        assert cache.get("k") is None
        assert cache.stats.failure_rejects == 1

    def test_report_counts_failures_by_type(self):
        engine = EvaluationEngine(
            SerialExecutor(),
            retry_policy=RetryPolicy(max_attempts=2),
            fault_injector=FaultInjector(rate=1.0, seed=3,
                                         kinds=("singular",)))
        engine.map_evaluate(_square, [1, 2, 3, 4])
        report = engine.report()
        assert report["failures"]["total"] == 4
        assert report["failures"]["by_type"] == {"SingularCircuitError": 4}
        assert len(report["failures"]["records"]) == 4
        record = report["failures"]["records"][0]
        assert record["attempts"] == 2 and record["retryable"]
        assert engine.failure_rate() == pytest.approx(1.0)
        assert "4 evaluation(s) failed" in engine.failure_summary()

    def test_failure_records_are_bounded(self):
        engine = EvaluationEngine(
            SerialExecutor(),
            retry_policy=RetryPolicy(max_attempts=1),
            fault_injector=FaultInjector(rate=1.0, seed=1,
                                         kinds=("crash",)))
        engine.telemetry.max_failure_records = 10
        engine.map_evaluate(_square, list(range(50)))
        report = engine.report()
        assert report["failures"]["total"] == 50
        assert len(report["failures"]["records"]) == 10


# ----------------------------------------------------------------------
# Optimizer degradation: failed candidates get penalty costs
# ----------------------------------------------------------------------

class TestOptimizerDegradation:
    def test_anneal_survives_injected_faults(self):
        space = ContinuousSpace(["x"], [0.1], [10.0])
        ex = SerialExecutor(
            retry_policy=RetryPolicy(max_attempts=2),
            fault_injector=FaultInjector(rate=max(FAULT_RATE, 0.05), seed=17))
        result = anneal_continuous(lambda p: (p["x"] - 5.0) ** 2, space,
                                   seed=2, executor=ex)
        assert result.best_cost < 25.0  # still made progress
        assert result.failures == ex.failures  # accurate accounting

    def test_genetic_survives_injected_faults(self):
        genes = [FloatGene("x", 0.1, 100.0)]
        ex = SerialExecutor(
            retry_policy=RetryPolicy(max_attempts=2),
            fault_injector=FaultInjector(rate=max(FAULT_RATE, 0.05), seed=23))
        ga = GeneticOptimizer(genes, lambda g: (g["x"] - 7.0) ** 2,
                              population=16, seed=4, executor=ex)
        result = ga.run(generations=12)
        assert result.best_fitness < 100.0
        assert result.failures == ex.failures


# ----------------------------------------------------------------------
# JobGraph stage retries (the flows' resilience layer)
# ----------------------------------------------------------------------

class TestJobGraphRetries:
    def test_transient_stage_failure_is_retried(self):
        attempts = []

        def flaky_stage(_r):
            attempts.append(1)
            if len(attempts) == 1:
                raise ConvergenceError("transient stage wobble")
            return "done"

        engine = EvaluationEngine()
        graph = JobGraph()
        graph.add("wobbly", flaky_stage)
        results = graph.run(engine, retry_policy=RetryPolicy(max_attempts=2))
        assert results["wobbly"] == "done"
        assert len(attempts) == 2
        counters = engine.report()["counters"]
        assert counters["jobs.retries"] == 1
        assert counters["jobs.completed"] == 1

    def test_fatal_stage_failure_propagates(self):
        engine = EvaluationEngine()
        graph = JobGraph()
        graph.add("broken", lambda r: (_ for _ in ()).throw(TypeError("bug")))
        with pytest.raises(TypeError):
            graph.run(engine, retry_policy=RetryPolicy(max_attempts=3))
        counters = engine.report()["counters"]
        assert counters["jobs.failed"] == 1
        assert counters["jobs.failed.broken"] == 1

    def test_retryable_failure_out_of_attempts_propagates(self):
        graph = JobGraph()
        graph.add("hopeless",
                  lambda r: (_ for _ in ()).throw(ConvergenceError("always")))
        with pytest.raises(ConvergenceError):
            graph.run(retry_policy=RetryPolicy(max_attempts=2))


# ----------------------------------------------------------------------
# The differential matrix: seed x executor x fault rate (ISSUE satellite)
# ----------------------------------------------------------------------

OTA_SPECS = SpecSet([
    Spec.at_least("gain_db", 40.0),
    Spec.at_least("gbw", 10e6),
    Spec.minimize("power", good=1e-4),
])

OTA_SPACE = DesignSpace(
    variables={"w_in": (5e-6, 500e-6), "w_load": (5e-6, 200e-6),
               "w_tail": (5e-6, 200e-6), "i_bias": (2e-6, 500e-6)},
    fixed={"l_in": 2e-6, "l_load": 2e-6, "l_tail": 2e-6,
           "c_load": 2e-12, "vdd": 3.3})

TINY_SCHEDULE = AnnealSchedule(moves_per_temperature=8, cooling=0.7,
                               max_evaluations=64, stop_after_stale=2)


def _run_sizing(executor, fault_rate, seed=7):
    evaluator = SimulationEvaluator(builder=five_transistor_ota,
                                    raise_failures=True)
    injector = FaultInjector(rate=fault_rate, seed=99) if fault_rate else None
    engine = EvaluationEngine(executor, EvalCache(),
                              retry_policy=RetryPolicy(max_attempts=2),
                              fault_injector=injector)
    sizer = SimulationBasedSizer(evaluator, OTA_SPACE, OTA_SPECS,
                                 schedule=TINY_SCHEDULE, seed=seed,
                                 engine=engine, batch_size=4,
                                 max_failure_fraction=0.9)
    result = sizer.run()
    return result, engine


class TestDifferentialMatrix:
    """Same seed x {Serial, Parallel} x {no faults, injected faults} must
    produce identical optimizer trajectories and final sized netlists."""

    @pytest.mark.parametrize("fault_rate", [0.0, FAULT_RATE])
    def test_serial_equals_parallel(self, fault_rate):
        serial_result, serial_engine = _run_sizing(SerialExecutor(),
                                                   fault_rate)
        with ParallelExecutor(workers=2) as pooled:
            parallel_result, parallel_engine = _run_sizing(pooled, fault_rate)
        assert serial_result.history == parallel_result.history
        assert serial_result.sizes == parallel_result.sizes
        assert serial_result.cost == parallel_result.cost
        assert serial_result.performance == parallel_result.performance
        assert serial_result.failures == parallel_result.failures
        s_fail = serial_engine.report()["failures"]
        p_fail = parallel_engine.report()["failures"]
        assert s_fail["total"] == p_fail["total"]
        assert s_fail["by_type"] == p_fail["by_type"]

    def test_faulted_run_completes_and_reports(self):
        rate = max(FAULT_RATE, 0.1)
        result, engine = _run_sizing(SerialExecutor(), rate)
        report = engine.report()
        # The engine's failure count is exactly what the sizer saw.
        assert result.failures == report["failures"]["total"]
        if result.failures:
            assert result.warnings  # warning summary, not an exception
            assert report["failures"]["records"]
        # No failure ever reached the cache.
        assert report["cache"]["failure_rejects"] == 0

    def test_excessive_failure_rate_raises(self):
        with pytest.raises(RuntimeError, match="evaluations to failures"):
            evaluator = SimulationEvaluator(builder=five_transistor_ota,
                                            raise_failures=True)
            engine = EvaluationEngine(
                SerialExecutor(), EvalCache(),
                retry_policy=RetryPolicy(max_attempts=1),
                fault_injector=FaultInjector(rate=1.0, seed=5))
            SimulationBasedSizer(evaluator, OTA_SPACE, OTA_SPECS,
                                 schedule=TINY_SCHEDULE, seed=7,
                                 engine=engine, batch_size=4,
                                 max_failure_fraction=0.2).run()
