"""Unit tests for repro.core.units."""

import math

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.units import (
    UnitError,
    db20,
    format_si,
    from_db20,
    parse_value,
)


class TestParseValue:
    def test_plain_number(self):
        assert parse_value("42") == 42.0

    def test_float_passthrough(self):
        assert parse_value(1.5) == 1.5

    def test_int_passthrough(self):
        assert parse_value(7) == 7.0

    def test_exponent(self):
        assert parse_value("1e-6") == 1e-6

    def test_exponent_positive(self):
        assert parse_value("2.5e+3") == 2500.0

    @pytest.mark.parametrize("text,expected", [
        ("1.5u", 1.5e-6),
        ("20k", 20e3),
        ("3meg", 3e6),
        ("3MEG", 3e6),
        ("100n", 100e-9),
        ("2p", 2e-12),
        ("5f", 5e-15),
        ("1.2m", 1.2e-3),
        ("7g", 7e9),
        ("1t", 1e12),
        ("4x", 4e6),
        ("2a", 2e-18),
    ])
    def test_suffixes(self, text, expected):
        assert parse_value(text) == pytest.approx(expected)

    def test_suffix_with_unit_name(self):
        assert parse_value("1.5uF") == pytest.approx(1.5e-6)
        assert parse_value("20kOhm") == pytest.approx(20e3)

    def test_unit_without_scale(self):
        # 'V' is not a scale suffix: value passes through.
        assert parse_value("3.3V") == pytest.approx(3.3)

    def test_mil(self):
        assert parse_value("1mil") == pytest.approx(25.4e-6)

    def test_negative(self):
        assert parse_value("-4.7k") == pytest.approx(-4700.0)

    def test_empty_raises(self):
        with pytest.raises(UnitError):
            parse_value("")

    def test_garbage_raises(self):
        with pytest.raises(UnitError):
            parse_value("abc")

    @given(st.floats(min_value=-1e20, max_value=1e20,
                     allow_nan=False, allow_infinity=False))
    def test_roundtrip_plain(self, x):
        assert parse_value(repr(x)) == pytest.approx(x, rel=1e-12, abs=1e-300)


class TestFormatSi:
    def test_zero(self):
        assert format_si(0.0, "F") == "0F"

    def test_micro(self):
        assert format_si(1.5e-6, "F") == "1.5uF"

    def test_kilo(self):
        assert format_si(20e3) == "20k"

    def test_nan(self):
        assert "nan" in format_si(float("nan"))

    @given(st.floats(min_value=1e-17, max_value=1e13, allow_nan=False))
    def test_roundtrip_through_parse(self, x):
        text = format_si(x)
        assert parse_value(text) == pytest.approx(x, rel=1e-3)

    @given(st.floats(min_value=1e-17, max_value=1e13))
    def test_negative_mirrors_positive(self, x):
        assert format_si(-x) == "-" + format_si(x)


class TestDecibels:
    def test_db20_of_10(self):
        assert db20(10.0) == pytest.approx(20.0)

    def test_db20_nonpositive(self):
        assert db20(0.0) == float("-inf")
        assert db20(-1.0) == float("-inf")

    @given(st.floats(min_value=1e-6, max_value=1e6))
    def test_db_roundtrip(self, ratio):
        assert from_db20(db20(ratio)) == pytest.approx(ratio, rel=1e-9)
