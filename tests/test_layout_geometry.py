"""Tests for geometry kernel, technology rules and GDS export."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.layout.gdslite import (
    cell_to_text,
    read_gds_cell_names,
    read_gds_rect_count,
    write_gds,
)
from repro.layout.geometry import Cell, Orientation, Rect, bounding_box, um
from repro.layout.technology import (
    DEFAULT_TECH,
    LAYER_METAL1,
    LAYER_METAL2,
    Technology,
)

coords = st.integers(min_value=-10_000_000, max_value=10_000_000)


class TestRect:
    def test_normalization(self):
        r = Rect.of(10, 20, 0, 5)
        assert (r.x1, r.y1, r.x2, r.y2) == (0, 5, 10, 20)

    def test_dimensions(self):
        r = Rect(0, 0, 30, 40)
        assert r.width == 30 and r.height == 40 and r.area == 1200
        assert r.center == (15, 20)

    def test_moved(self):
        assert Rect(0, 0, 10, 10).moved(5, -5) == Rect(5, -5, 15, 5)

    def test_intersection(self):
        a, b = Rect(0, 0, 10, 10), Rect(5, 5, 20, 20)
        assert a.intersection(b) == Rect(5, 5, 10, 10)
        assert a.intersection(Rect(20, 20, 30, 30)) is None

    def test_touching_rects_do_not_intersect(self):
        assert not Rect(0, 0, 10, 10).intersects(Rect(10, 0, 20, 10))

    def test_union(self):
        assert Rect(0, 0, 1, 1).union(Rect(5, 5, 6, 7)) == Rect(0, 0, 6, 7)

    def test_distance(self):
        assert Rect(0, 0, 10, 10).distance_to(Rect(15, 0, 20, 10)) == 5
        assert Rect(0, 0, 10, 10).distance_to(Rect(5, 5, 20, 20)) == 0
        assert Rect(0, 0, 10, 10).distance_to(Rect(13, 14, 20, 20)) == 7

    def test_expanded(self):
        assert Rect(5, 5, 10, 10).expanded(2) == Rect(3, 3, 12, 12)

    @given(coords, coords, coords, coords)
    def test_area_nonnegative(self, a, b, c, d):
        assert Rect.of(a, b, c, d).area >= 0

    @given(coords, coords, coords, coords, coords, coords)
    @settings(max_examples=50)
    def test_union_contains_both(self, a, b, c, d, e, f):
        r1 = Rect.of(a, b, c, d)
        r2 = Rect.of(c, d, e, f)
        u = r1.union(r2)
        assert u.x1 <= min(r1.x1, r2.x1) and u.x2 >= max(r1.x2, r2.x2)


class TestOrientation:
    def test_r0_identity(self):
        assert Orientation.R0.compose_point(3, 4) == (3, 4)

    def test_r90(self):
        assert Orientation.R90.compose_point(1, 0) == (0, 1)

    def test_my_mirrors_x(self):
        assert Orientation.MY.compose_point(3, 4) == (-3, 4)

    @given(coords, coords)
    @settings(max_examples=30)
    def test_all_orientations_preserve_rect_area(self, x, y):
        r = Rect.of(x, y, x + 100, y + 50)
        for o in Orientation:
            assert r.transformed(o).area == r.area

    def test_r180_twice_is_identity(self):
        r = Rect(1, 2, 5, 9)
        assert r.transformed(Orientation.R180).transformed(
            Orientation.R180) == r


class TestCell:
    def test_bbox(self):
        c = Cell("t")
        c.add_shape(LAYER_METAL1, Rect(0, 0, 10, 10))
        c.add_shape(LAYER_METAL2, Rect(20, -5, 30, 5))
        assert c.bbox() == Rect(0, -5, 30, 10)

    def test_empty_bbox(self):
        assert Cell("e").bbox() == Rect(0, 0, 0, 0)

    def test_duplicate_port_rejected(self):
        c = Cell("t")
        c.add_port("a", LAYER_METAL1, Rect(0, 0, 1, 1))
        with pytest.raises(ValueError):
            c.add_port("a", LAYER_METAL1, Rect(2, 2, 3, 3))

    def test_transform_moves_ports(self):
        c = Cell("t")
        c.add_shape(LAYER_METAL1, Rect(0, 0, 10, 10))
        c.add_port("p", LAYER_METAL1, Rect(0, 0, 2, 2))
        moved = c.transformed(Orientation.R0, 100, 50)
        assert moved.ports["p"].rect == Rect(100, 50, 102, 52)

    def test_shapes_on_layer(self):
        c = Cell("t")
        c.add_shape(LAYER_METAL1, Rect(0, 0, 1, 1))
        c.add_shape(LAYER_METAL2, Rect(0, 0, 1, 1))
        assert len(c.shapes_on(LAYER_METAL1)) == 1


class TestTechnology:
    def test_lambda_scaling(self):
        t = Technology(lambda_nm=400)
        assert t.L(3) == 1200
        assert t.min_width_metal == 1200

    def test_scaled_process(self):
        fine = Technology(name="scmos05", lambda_nm=250)
        assert fine.routing_pitch < DEFAULT_TECH.routing_pitch

    def test_wire_resistance(self):
        r = DEFAULT_TECH.wire_resistance(LAYER_METAL1, 10000, 1000)
        assert r == pytest.approx(0.07 * 10)

    def test_wire_resistance_unknown_layer(self):
        with pytest.raises(KeyError):
            DEFAULT_TECH.wire_resistance("nosuch", 1, 1)

    def test_wire_capacitance_positive_and_scales(self):
        c1 = DEFAULT_TECH.wire_capacitance(10_000, 1200)
        c2 = DEFAULT_TECH.wire_capacitance(20_000, 1200)
        assert 0 < c1 < c2

    def test_um_helper(self):
        assert um(1.5) == 1500


class TestGds:
    def _cell(self):
        c = Cell("opamp_cell")
        c.add_shape(LAYER_METAL1, Rect(0, 0, 1000, 500), net="out")
        c.add_shape(LAYER_METAL2, Rect(0, 0, 500, 1500))
        return c

    def test_roundtrip_names(self):
        data = write_gds([self._cell()], library="lib")
        assert read_gds_cell_names(data) == ["opamp_cell"]

    def test_rect_count(self):
        data = write_gds([self._cell()])
        assert read_gds_rect_count(data) == 2

    def test_header_magic(self):
        data = write_gds([self._cell()])
        # HEADER record: length 6, type 0x0002, version 600.
        assert data[:6] == bytes([0, 6, 0, 2, 2, 88])

    def test_multiple_cells(self):
        cells = [self._cell(), Cell("empty")]
        data = write_gds(cells)
        assert read_gds_cell_names(data) == ["opamp_cell", "empty"]

    def test_deterministic_output(self):
        assert write_gds([self._cell()]) == write_gds([self._cell()])

    def test_name_sanitized(self):
        c = Cell("weird name!@#")
        names = read_gds_cell_names(write_gds([c]))
        assert names == ["weird_name___"]

    def test_text_dump_stable(self):
        text = cell_to_text(self._cell())
        assert "rect metal1 0 0 1000 500 net=out" in text
