"""Tests for the memory-macro subsystem (repro.macro) and its satellites.

Pins the end-to-end acceptance criteria: the tiler is deterministic and
its blockage map is honest (corners free, keepouts carved), the mesh
router's A* routes legal rails around keepouts with every plane stitched
to the pad ring, signoff verifies IR/EM/droop through the sparse grid
path, mesh-density annealing beats the uniform reference on metal area,
the ``macrogen.*`` counters roll up into report schema v9 / manifest v8,
the serve workload round-trips through a 2-shard fleet with the
zero-silent-drops invariant intact, and the two hardening satellites
(non-positive grid widths, fully-blocked routing grids) raise typed
errors instead of degrading silently.
"""

import pytest

from repro.engine.cache import canonical_key
from repro.engine.config import EngineConfig, ServeConfig
from repro.engine.core import EvaluationEngine
from repro.engine.schema import (
    MANIFEST_SCHEMA_VERSION,
    REPORT_SCHEMA_VERSION,
    REQUIRED_MACRO_KEYS,
    check_report,
    macro_rollup,
    validate_manifest,
)
from repro.engine.trace import Tracer, finish_run
from repro.macro import (
    MacroSpec,
    MacroTilingError,
    MeshRoutingError,
    MeshSpec,
    SignoffSpec,
    assign_rail_tracks,
    macro_flow,
    macro_workload,
    optimize_mesh,
    route_mesh,
    signoff_mesh,
    tile_macro,
    uniform_mesh,
)
from repro.msystem import GridSegment, GridWidthError
from repro.serve import ShardRouter, Workload

SMALL = MacroSpec(rows=16, cols=16, strap_every=4, name="m16")


@pytest.fixture(scope="module")
def small_macro():
    return tile_macro(SMALL)


@pytest.fixture(scope="module")
def small_mesh(small_macro):
    return route_mesh(small_macro, MeshSpec(4, 4, 4_000, 4_000))


# ----------------------------------------------------------------------
# tiling
# ----------------------------------------------------------------------

class TestTiling:
    def test_bad_specs_rejected(self):
        with pytest.raises(MacroTilingError):
            MacroSpec(rows=0, cols=4)
        with pytest.raises(MacroTilingError):
            MacroSpec(rows=4, cols=-1)
        with pytest.raises(MacroTilingError):
            MacroSpec(rows=4, cols=4, strap_every=0)
        with pytest.raises(MacroTilingError):
            MacroSpec(rows=4, cols=4, kind="dram")

    def test_dimensions_and_pins(self, small_macro):
        assert small_macro.width_nm == 16 * small_macro.pitch_x
        assert small_macro.height_nm == 16 * small_macro.pitch_y
        assert small_macro.wordline_ports == [f"wl_{r}" for r in range(16)]
        assert small_macro.bitline_ports == [f"bl_{c}" for c in range(16)]
        assert set(small_macro.cell.ports) == \
            set(small_macro.wordline_ports) | set(small_macro.bitline_ports)

    def test_tiling_is_deterministic(self, small_macro):
        again = tile_macro(SMALL)
        assert again.taps == small_macro.taps
        assert again.blockages == small_macro.blockages
        assert [(s.layer, s.rect, s.net) for s in again.cell.shapes] == \
            [(s.layer, s.rect, s.net) for s in small_macro.cell.shapes]

    def test_taps_conserve_units(self, small_macro):
        assert sum(small_macro.taps.values()) == 16 * 16
        for crossing in small_macro.taps:
            assert small_macro.blockages.is_free(*crossing)

    def test_blockage_corners_always_free(self, small_macro):
        b = small_macro.blockages
        for corner in ((0, 0), (b.nx - 1, 0), (0, b.ny - 1),
                       (b.nx - 1, b.ny - 1)):
            assert b.is_free(*corner)

    def test_keepouts_carve_free_corridors(self, small_macro):
        b = small_macro.blockages
        assert b.keepouts  # sense-amp strip + decoder notch exist
        for i, j in b.keepouts:
            assert not b.is_free(i, j)
            # Every keepout sits on what would otherwise be a corridor.
            assert i in b.free_v or j in b.free_h

    def test_off_corridor_crossings_blocked(self, small_macro):
        b = small_macro.blockages
        assert not b.is_free(1, 1)      # interior, no strap
        assert not b.is_free(-1, 0)     # out of bounds
        assert not b.is_free(0, b.ny)

    def test_cap_kind_uses_cap_layers(self):
        macro = tile_macro(MacroSpec(rows=2, cols=2, strap_every=2,
                                     kind="cap", name="c2"))
        layers = {s.layer for s in macro.cell.shapes}
        assert "captop" in layers

    def test_single_cell_array(self):
        macro = tile_macro(MacroSpec(rows=1, cols=1, strap_every=1,
                                     name="m1"))
        assert sum(macro.taps.values()) == 1
        assert macro.blockages.nx == 2 and macro.blockages.ny == 2


# ----------------------------------------------------------------------
# mesh routing
# ----------------------------------------------------------------------

class TestMeshRouting:
    def test_bad_mesh_specs_rejected(self):
        with pytest.raises(MeshRoutingError):
            MeshSpec(1, 4, 1_000, 1_000)
        with pytest.raises(MeshRoutingError):
            MeshSpec(4, 4, 0, 1_000)
        with pytest.raises(MeshRoutingError):
            MeshSpec(4, 4, 1_000, -5)

    def test_track_assignment_spreads_and_clamps(self):
        tracks = assign_rail_tracks([0, 4, 8, 12, 16], 3)
        assert tracks[0] == 0 and tracks[-1] == 16
        assert len(tracks) == 3
        # Requesting more rails than corridors clamps to the corridors.
        assert assign_rail_tracks([0, 8, 16], 10) == [0, 8, 16]
        with pytest.raises(MeshRoutingError):
            assign_rail_tracks([0], 2)

    def test_mesh_is_legal_and_stitched(self, small_macro, small_mesh):
        assert small_mesh.blockage_violations == 0
        assert small_mesh.is_fully_stitched()
        assert small_mesh.vias > 0
        for rail in small_mesh.rails:
            for crossing in rail.path:
                assert small_macro.blockages.is_free(*crossing)

    def test_sense_amp_strip_forces_detour(self, small_mesh):
        bottom = next(r for r in small_mesh.rails
                      if r.orientation == "h" and r.track == 0)
        assert bottom.detoured
        assert any(j != 0 for _, j in bottom.path)

    def test_routing_is_deterministic(self, small_macro, small_mesh):
        again = route_mesh(small_macro, MeshSpec(4, 4, 4_000, 4_000))
        assert [r.path for r in again.rails] == \
            [r.path for r in small_mesh.rails]
        assert again.node_names == small_mesh.node_names
        assert [(s.name, s.node_a, s.node_b, s.length_nm, s.width_nm)
                for s in again.segments] == \
            [(s.name, s.node_a, s.node_b, s.length_nm, s.width_nm)
             for s in small_mesh.segments]

    def test_metal_area_counts_rails_only(self, small_mesh):
        assert small_mesh.metal_area() == \
            sum(s.metal_area for s in small_mesh.rail_segments)
        assert small_mesh.metal_area() < \
            sum(s.metal_area for s in small_mesh.segments)

    def test_pads_are_ring_corners(self, small_mesh):
        assert len(small_mesh.pad_nodes) == 4
        for pad in small_mesh.pad_nodes:
            layer, _, _ = small_mesh.node_pos[pad]
            assert layer == "h"

    def test_counters_emitted(self, small_macro):
        tracer = Tracer()
        with tracer.span("root"):
            route_mesh(small_macro, MeshSpec(3, 3, 2_000, 2_000))
        counters = tracer.telemetry.report()["counters"]
        assert counters["macrogen.rails_routed"] >= 6
        assert counters["macrogen.vias"] > 0
        assert "macrogen.blockage_violations" not in counters


# ----------------------------------------------------------------------
# signoff + optimization
# ----------------------------------------------------------------------

class TestSignoff:
    def test_signoff_reports_all_three_families(self, small_macro,
                                                small_mesh):
        result = signoff_mesh(small_macro, small_mesh, SignoffSpec())
        assert result.worst_ir_drop > 0.0
        assert result.worst_droop > 0.0
        assert result.em_violations == []
        assert result.feasible
        assert result.metal_area == small_mesh.metal_area()

    def test_narrow_rails_fail_em(self, small_macro):
        # 10 nm rails cannot carry milliamps: EM must fire.
        mesh = route_mesh(small_macro, MeshSpec(2, 2, 10, 10))
        result = signoff_mesh(small_macro, mesh,
                              SignoffSpec(cell_avg_a=1e-4))
        assert result.em_violations
        assert not result.feasible

    def test_uniform_mesh_uses_every_corridor(self, small_macro):
        result = uniform_mesh(small_macro, SignoffSpec())
        b = small_macro.blockages
        assert result.mesh.spec.h_rails == len(b.free_h_tracks)
        assert result.mesh.spec.v_rails == len(b.free_v_tracks)
        assert result.feasible

    def test_annealed_beats_uniform_on_metal_area(self, small_macro):
        spec = SignoffSpec()
        uniform = uniform_mesh(small_macro, spec)
        annealed = optimize_mesh(small_macro, spec, seed=1)
        assert annealed.feasible
        assert annealed.metal_area < uniform.metal_area

    def test_macro_flow_spans_and_summary(self):
        tracer = Tracer()
        out = macro_flow(SMALL, tracer=tracer)
        assert out["blockage_violations"] == 0
        assert out["feasible"]
        spans = tracer.span_tree()
        assert spans[0]["name"] == "macro_flow"
        children = [c["name"] for c in spans[0]["children"]]
        assert children == ["tile", "route", "signoff"]


# ----------------------------------------------------------------------
# schema v9 / manifest v8
# ----------------------------------------------------------------------

class TestMacroSchema:
    def test_versions_bumped_in_lockstep(self):
        assert REPORT_SCHEMA_VERSION == 9
        assert MANIFEST_SCHEMA_VERSION == 8

    def test_rollup_shape_and_rates(self):
        counters = {"macrogen.tiled": 2, "macrogen.units": 512,
                    "macrogen.rails_routed": 16,
                    "macrogen.rail_detours": 4, "macrogen.vias": 60,
                    "macrogen.signoffs": 2,
                    "powergrid.width_rejected": 1}
        section = macro_rollup(counters)
        assert tuple(section) == REQUIRED_MACRO_KEYS
        assert section["units"] == 512
        assert section["width_rejected"] == 1
        assert section["detour_rate"] == pytest.approx(0.25)

    def test_rollup_all_zero_without_traffic(self):
        section = macro_rollup({})
        assert section["detour_rate"] is None
        assert all(v == 0 for k, v in section.items()
                   if k != "detour_rate")

    def test_engine_report_carries_macro_section(self):
        engine = EvaluationEngine.from_config(EngineConfig(trace=True))
        try:
            macro_flow(SMALL, tracer=engine.tracer)
            report = engine.report()
        finally:
            engine.close()
        check_report(report)
        assert report["macro"]["tiled"] == 1
        assert report["macro"]["units"] == 256
        assert report["macro"]["signoffs"] == 1
        assert report["macro"]["blockage_violations"] == 0

    def test_traced_manifest_validates(self, tmp_path):
        config = EngineConfig(trace=True, trace_dir=str(tmp_path))
        engine = EvaluationEngine.from_config(config)
        try:
            macro_flow(SMALL, tracer=engine.tracer)
            manifest = finish_run("macro_flow", engine, seed=1,
                                  config=config)
        finally:
            engine.close()
        validate_manifest(manifest)
        assert manifest["schema_version"] == MANIFEST_SCHEMA_VERSION
        assert manifest["rollups"]["macro_tiled"] == 1
        assert manifest["rollups"]["macro_units"] == 256
        assert manifest["rollups"]["macro_blockage_violations"] == 0


# ----------------------------------------------------------------------
# serve workload
# ----------------------------------------------------------------------

def _point(rows=8, cols=8, strap=4, h=3, v=3, hw=3_000, vw=3_000):
    return {"array": {"rows": rows, "cols": cols, "strap_every": strap},
            "mesh": {"h_rails": h, "v_rails": v,
                     "h_width_nm": hw, "v_width_nm": vw}}


class TestMacroWorkload:
    def test_cache_key_content_addressed(self):
        wl = macro_workload()
        assert wl.key_fn(_point()) == wl.key_fn(_point())
        assert wl.key_fn(_point()) != wl.key_fn(_point(hw=3_001))
        assert wl.key_fn(_point()) != wl.key_fn(_point(rows=16))

    def test_malformed_point_raises(self):
        wl = macro_workload()
        with pytest.raises(ValueError):
            wl.fn({"mesh": {}})

    def test_batcher_groups_by_geometry(self):
        wl = macro_workload()
        points = [_point(rows=8), _point(rows=16), _point(rows=8, h=2),
                  {"bogus": 1}]
        groups = wl.batcher.group(points)
        assert sorted(map(sorted, groups)) == [[0, 2], [1], [3]]

    def test_evaluator_reuses_tiling_per_geometry(self):
        wl = macro_workload()
        first = wl.fn(_point())
        macro_obj = wl.fn.tiling_for(_point()["array"])
        assert wl.fn.tiling_for(_point()["array"]) is macro_obj
        assert first["feasible"] in (True, False)
        assert first["array"]["rows"] == 8

    def test_engine_map_evaluate_with_dedup(self):
        wl = macro_workload()
        points = [_point(), _point(h=4), _point()]
        engine = EvaluationEngine.from_config(EngineConfig(cache=True))
        try:
            results = engine.map_evaluate(wl.fn, points, key_fn=wl.key_fn,
                                          batcher=wl.batcher)
        finally:
            engine.close()
        assert results[0] == results[2]
        assert results[0]["mesh"]["h_rails"] == 3
        assert results[1]["mesh"]["h_rails"] == 4


class TestMacroFleet:
    def test_two_shard_round_trip_and_invariant(self, tmp_path):
        serve = ServeConfig(shards=2,
                            shared_store_dir=str(tmp_path / "store"))
        router = ShardRouter(EngineConfig(executor="thread", workers=2,
                                          serve=serve))
        router.register(macro_workload())
        points = [_point(h=h, v=v) for h in (2, 3) for v in (2, 3)]
        points.append(_point(h=2, v=2))  # duplicate across the fleet
        with router:
            handles = [router.submit("macro", p) for p in points]
            results = [h.result(timeout=120) for h in handles]
            report = router.report()
        assert results[0] == results[4]
        assert all(r["feasible"] for r in results)
        serve_section = report["serve"]
        assert serve_section["requests"] == serve_section["admitted"] + \
            serve_section["rejected"]
        assert serve_section["admitted"] == (
            serve_section["completed"] + serve_section["expired"]
            + serve_section["cancelled"] + serve_section["errored"])
        check_report(report)
        assert len(serve_section["shards"]) == 2


# ----------------------------------------------------------------------
# satellites: typed width rejection + bounded spiral search
# ----------------------------------------------------------------------

class TestGridWidthError:
    def test_non_positive_width_rejected(self):
        with pytest.raises(GridWidthError):
            GridSegment("bad", 0, 1, 1_000, 0)
        with pytest.raises(GridWidthError):
            GridSegment("bad", 0, 1, 1_000, -200)

    def test_rejection_counted_on_tracer(self):
        tracer = Tracer()
        with tracer.span("root"):
            with pytest.raises(GridWidthError):
                GridSegment("bad", 0, 1, 1_000, 0)
        counters = tracer.telemetry.report()["counters"]
        assert counters["powergrid.width_rejected"] == 1
        assert macro_rollup(counters)["width_rejected"] == 1

    def test_positive_width_unclamped_resistance(self):
        seg = GridSegment("ok", 0, 1, 1_000, 500)
        assert seg.resistance == pytest.approx(0.04 * 1_000 / 500)


class TestNearestFreeTileSpiral:
    def _router(self, nx=4, ny=4):
        from repro.msystem.global_router import WrenGlobalRouter
        router = WrenGlobalRouter.__new__(WrenGlobalRouter)
        router.nx, router.ny = nx, ny
        router.blocked = set()
        return router

    def test_free_tile_is_identity(self):
        router = self._router()
        assert router._nearest_free_tile((1, 1)) == (1, 1)

    def test_spiral_finds_nearest(self):
        router = self._router()
        router.blocked = {(1, 1), (1, 2), (2, 1)}
        found = router._nearest_free_tile((1, 1))
        assert found not in router.blocked
        assert abs(found[0] - 1) + abs(found[1] - 1) == 1

    def test_fully_blocked_grid_raises(self):
        from repro.msystem.global_router import GlobalRoutingError
        router = self._router(3, 3)
        router.blocked = {(x, y) for x in range(3) for y in range(3)}
        with pytest.raises(GlobalRoutingError):
            router._nearest_free_tile((1, 1))

    def test_spiral_is_deterministic(self):
        router = self._router(6, 6)
        router.blocked = {(x, y) for x in range(6) for y in range(6)
                          if (x + y) % 3}
        results = {router._nearest_free_tile((3, 3)) for _ in range(5)}
        assert len(results) == 1
