"""Tests for the circuit topology library: every builder is healthy.

Each canned topology must (a) build without duplicate names, (b) reach a
DC operating point, (c) put its active devices in sensible regions, and
(d) show the qualitative behaviour it exists to provide.
"""

import numpy as np
import pytest

from repro.analysis import (
    ac_analysis,
    bode_metrics,
    dc_operating_point,
    logspace_frequencies,
    transient,
)
from repro.circuits.devices import Waveform
from repro.circuits.library import (
    charge_sensitive_amplifier,
    common_source_amp,
    five_transistor_ota,
    folded_cascode_ota,
    large_cascode_opamp,
    rc_ladder,
    rlc_tank,
    shaper_stage,
    switched_cap_integrator,
    two_stage_miller,
    voltage_divider,
)


def _with_inputs(circuit, bias=1.5):
    circuit.vsource("tb_vip", "inp", "0", dc=bias, ac=1.0)
    circuit.vsource("tb_vin", "inn", "0", dc=bias)
    return circuit


class TestFoldedCascode:
    def test_dc_converges_all_saturated(self):
        fc = _with_inputs(folded_cascode_ota(), bias=1.65)
        op = dc_operating_point(fc)
        critical = ("m1", "m2", "m8", "m9", "m10", "m11")
        regions = {n: op.mos[n].region for n in critical}
        assert all(r == "saturation" for r in regions.values()), regions

    def test_higher_gain_than_simple_ota(self):
        def gain(builder, bias):
            ckt = _with_inputs(builder(), bias)
            res = ac_analysis(ckt, np.array([10.0]))
            return abs(res.v("out")[0])

        assert gain(folded_cascode_ota, 1.65) > \
            3 * gain(five_transistor_ota, 1.5)

    def test_single_stage_stable(self):
        fc = _with_inputs(folded_cascode_ota(), bias=1.65)
        metrics = bode_metrics(
            ac_analysis(fc, logspace_frequencies(10, 1e9, 5)), "out")
        assert metrics.phase_margin_deg > 45.0

    def test_size_override(self):
        fc = folded_cascode_ota({"i_bias": 80e-6})
        assert fc.device("ib1").dc == pytest.approx(80e-6)


class TestLargeCascodeOpamp:
    def test_device_count_741_class(self):
        big = large_cascode_opamp()
        assert len(big.mosfets) >= 17

    def test_dc_converges(self):
        big = _with_inputs(large_cascode_opamp(), bias=1.65)
        op = dc_operating_point(big)
        assert 0.0 < op.v("outb") < 3.3

    def test_buffer_output_follows(self):
        big = _with_inputs(large_cascode_opamp(), bias=1.65)
        res = ac_analysis(big, np.array([100.0]))
        # Buffered output carries substantial gain from the cascade.
        assert abs(res.v("outb")[0]) > 10.0


class TestChargeSensitiveAmplifier:
    def test_self_biased_operating_point(self):
        csa = charge_sensitive_amplifier()
        op = dc_operating_point(csa)
        # Self-bias through R_fb: V(in) == V(out) at DC.
        assert op.v("in") == pytest.approx(op.v("out"), abs=1e-3)
        assert op.mos["m1"].region == "saturation"

    def test_charge_integration(self):
        """A current impulse deposits Q/C_fb at the output (inverted)."""
        c_fb = 0.5e-12
        csa = charge_sensitive_amplifier({"c_fb": c_fb, "r_fb": 100e6})
        q = 10e-15
        t_pulse = 10e-9
        csa.isource("idet", "in", "0", dc=0.0,
                    waveform=Waveform("pulse",
                                      (0.0, q / t_pulse, 50e-9,
                                       1e-10, 1e-10, t_pulse, 1.0)))
        result = transient(csa, 1.2e-6, 2e-9)
        _, v_pk = result.peak("out")
        baseline = result.v("out")[0]
        # Step height ~= Q/C_fb (within loop-gain/charge-split losses).
        assert abs(v_pk - baseline) == pytest.approx(q / c_fb, rel=0.35)

    def test_reset_through_rfb(self):
        csa = charge_sensitive_amplifier({"c_fb": 0.5e-12, "r_fb": 5e6})
        q = 10e-15
        csa.isource("idet", "in", "0", dc=0.0,
                    waveform=Waveform("pulse",
                                      (0.0, q / 10e-9, 50e-9,
                                       1e-10, 1e-10, 10e-9, 1.0)))
        result = transient(csa, 20e-6, 20e-9)
        baseline = result.v("out")[0]
        # tau = R_fb*C_fb = 2.5 us: by 8 tau the output has recovered.
        assert result.value_at("out", 20e-6 - 1e-9) == pytest.approx(
            baseline, abs=0.1 * abs(result.peak("out")[1] - baseline)
            + 1e-4)


class TestShaperStage:
    def test_lowpass_dc_gain(self):
        stage = shaper_stage(1, tau=1e-6, gain=4.0)
        stage.vsource("vin", "in", "0", dc=0.0, ac=1.0)
        res = ac_analysis(stage, np.array([1.0]))
        assert abs(res.v("out")[0]) == pytest.approx(4.0, rel=0.01)

    def test_differentiator_blocks_dc(self):
        stage = shaper_stage(0, tau=1e-6, gain=4.0, differentiator=True)
        stage.vsource("vin", "in", "0", dc=0.0, ac=1.0)
        res = ac_analysis(stage, np.array([1.0, 1e7]))
        assert abs(res.v("out")[0]) < 0.1          # DC blocked
        assert abs(res.v("out")[1]) == pytest.approx(4.0, rel=0.05)

    def test_corner_at_tau(self):
        tau = 1e-6
        stage = shaper_stage(1, tau=tau, gain=1.0)
        stage.vsource("vin", "in", "0", dc=0.0, ac=1.0)
        f_c = 1 / (2 * np.pi * tau)
        res = ac_analysis(stage, np.array([f_c]))
        assert abs(res.v("out")[0]) == pytest.approx(1 / np.sqrt(2),
                                                     rel=0.02)


class TestMiscBuilders:
    def test_sc_integrator_charge_gain(self):
        # Continuous-time (both switches on) view: a charge amplifier
        # with flat gain C_sample/C_int.
        sc = switched_cap_integrator(c_sample=1e-12, c_int=4e-12)
        res = ac_analysis(sc, np.array([1e3, 1e4]))
        mag = np.abs(res.v("out"))
        assert mag[0] == pytest.approx(0.25, rel=0.01)
        assert mag[1] == pytest.approx(0.25, rel=0.01)

    def test_rc_ladder_validation(self):
        with pytest.raises(ValueError):
            rc_ladder(0)

    def test_rlc_tank_dc_passes(self):
        op = dc_operating_point(rlc_tank())
        assert op.v("out") == pytest.approx(0.0, abs=1e-6)

    def test_divider_values(self):
        d = voltage_divider(2e3, 1e3, 3.0)
        op = dc_operating_point(d)
        assert op.v("out") == pytest.approx(1.0, rel=1e-6)

    def test_common_source_inverts(self):
        cs = common_source_amp(vgs=1.0)
        res = ac_analysis(cs, np.array([100.0]))
        assert np.real(res.v("out")[0]) < 0  # inverting stage

    def test_unknown_size_key_rejected(self):
        with pytest.raises(KeyError):
            five_transistor_ota({"nonsense": 1.0})
