"""Tests for the symbolic expression kernel and the ISAAC-style analyzer."""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis import ac_analysis
from repro.circuits.library import (
    common_source_amp,
    five_transistor_ota,
    voltage_divider,
)
from repro.circuits.netlist import Circuit
from repro.symbolic import (
    RationalFunction,
    SignedSum,
    SPoly,
    SymbolicAnalyzer,
    SymbolicError,
)


class TestSignedSum:
    def test_zero(self):
        assert SignedSum.zero().is_zero
        assert SignedSum.zero().evaluate({}) == 0.0

    def test_symbol_evaluate(self):
        s = SignedSum.symbol("gm")
        assert s.evaluate({"gm": 3.0}) == 3.0

    def test_addition_cancels(self):
        a = SignedSum.symbol("x")
        assert (a + (-a)).is_zero

    def test_multiplication(self):
        a = SignedSum.symbol("x")
        b = SignedSum.symbol("y")
        p = a * b
        assert p.evaluate({"x": 2, "y": 5}) == 10.0
        assert p.term_count() == 1

    def test_powers_accumulate(self):
        a = SignedSum.symbol("x")
        sq = a * a
        assert sq.evaluate({"x": 3}) == 9.0
        assert list(sq.terms) == [(("x", 2),)]

    def test_distribution(self):
        x, y = SignedSum.symbol("x"), SignedSum.symbol("y")
        p = (x + y) * (x + y)
        assert p.evaluate({"x": 1, "y": 2}) == 9.0
        assert p.term_count() == 3  # x², 2xy, y²

    def test_pruned_keeps_dominant(self):
        x = SignedSum.symbol("big") + SignedSum.symbol("small")
        pruned = x.pruned({"big": 1.0, "small": 1e-9}, rel_tol=1e-6)
        assert pruned.term_count() == 1
        assert "big" in pruned.symbols()

    def test_pruned_respects_cancellation(self):
        # big1 - big2 cancels; 'tiny' defines the residual and must survive.
        terms = (SignedSum.symbol("big1") - SignedSum.symbol("big2")
                 + SignedSum.symbol("tiny"))
        values = {"big1": 1.0, "big2": 1.0, "tiny": 1e-6}
        pruned = terms.pruned(values, rel_tol=0.1)
        assert "tiny" in pruned.symbols()

    def test_to_string(self):
        x = SignedSum.symbol("x") - SignedSum.symbol("y")
        text = x.to_string()
        assert "x" in text and "y" in text

    @given(st.integers(min_value=-5, max_value=5),
           st.integers(min_value=-5, max_value=5))
    def test_number_arithmetic(self, a, b):
        sa, sb = SignedSum.number(a), SignedSum.number(b)
        assert (sa + sb).evaluate({}) == a + b
        assert (sa * sb).evaluate({}) == a * b


class TestSPoly:
    def test_constant(self):
        p = SPoly.constant(SignedSum.number(2.0))
        assert p.evaluate(1j, {}) == 2.0

    def test_s_power(self):
        p = SPoly.symbol("c", s_power=1)
        assert p.evaluate(2.0, {"c": 3.0}) == 6.0

    def test_mul_adds_degrees(self):
        p = SPoly.symbol("c", s_power=1) * SPoly.symbol("d", s_power=2)
        assert p.degree() == 3

    def test_add_cancel(self):
        p = SPoly.symbol("x")
        assert (p - p).is_zero

    def test_numeric_coefficients(self):
        p = SPoly.symbol("g") + SPoly.symbol("c", s_power=1)
        coeffs = p.numeric_coefficients({"g": 2.0, "c": 3.0})
        assert list(coeffs) == [2.0, 3.0]


class TestRationalFunction:
    def test_rc_pole(self):
        num = SPoly.symbol("g")
        den = SPoly.symbol("g") + SPoly.symbol("c", s_power=1)
        tf = RationalFunction(num, den, {"g": 1e-3, "c": 1e-9})
        poles = tf.poles()
        assert poles[0] == pytest.approx(-1e6)
        assert tf.dc_gain() == pytest.approx(1.0)

    def test_evaluate_jw(self):
        num = SPoly.symbol("g")
        den = SPoly.symbol("g") + SPoly.symbol("c", s_power=1)
        tf = RationalFunction(num, den, {"g": 1e-3, "c": 1e-9})
        f_pole = 1e6 / (2 * math.pi)
        assert abs(tf.evaluate_jw(f_pole)) == pytest.approx(
            1 / math.sqrt(2), rel=1e-9)


class TestAnalyzer:
    def test_divider_exact(self):
        tf = SymbolicAnalyzer(voltage_divider(2e3, 1e3, 1.0)) \
            .transfer_function("out")
        assert tf.dc_gain() == pytest.approx(1.0 / 3.0)
        # Expression is g_r1/(g_r1+g_r2) up to overall sign.
        syms = tf.num.coefficient(0).symbols()
        assert syms == {"g_r1"}

    def test_rc_matches_numeric(self):
        c = Circuit("rc")
        c.vsource("vin", "a", "0", dc=0, ac=1)
        c.resistor("r1", "a", "out", 1e3)
        c.capacitor("c1", "out", "0", 1e-9)
        tf = SymbolicAnalyzer(c).transfer_function("out")
        for f in (1e3, 1e5, 1e7):
            num = ac_analysis(c, np.array([f])).v("out")[0]
            assert tf.evaluate_jw(f) == pytest.approx(num, rel=1e-9)

    def test_rc_pole_symbolic(self):
        c = Circuit("rc")
        c.vsource("vin", "a", "0", dc=0, ac=1)
        c.resistor("r1", "a", "out", 1e3)
        c.capacitor("c1", "out", "0", 1e-9)
        tf = SymbolicAnalyzer(c).transfer_function("out")
        assert tf.poles()[0] == pytest.approx(-1e6, rel=1e-9)

    def test_common_source_matches_numeric(self):
        cs = common_source_amp(vgs=1.0)
        tf = SymbolicAnalyzer(cs).transfer_function("out")
        for f in (10.0, 1e6, 1e9):
            num = ac_analysis(cs, np.array([f])).v("out")[0]
            assert abs(tf.evaluate_jw(f)) == pytest.approx(abs(num), rel=1e-6)

    def test_ota_matches_numeric(self):
        ota = five_transistor_ota()
        ota.vsource("vip", "inp", "0", dc=1.5, ac=1.0)
        ota.vsource("vin_", "inn", "0", dc=1.5)
        tf = SymbolicAnalyzer(ota).transfer_function("out")
        for f in (10.0, 1e5, 1e8):
            num = ac_analysis(ota, np.array([f])).v("out")[0]
            assert abs(tf.evaluate_jw(f)) == pytest.approx(abs(num), rel=1e-6)

    def test_ac_ground_collapse_shrinks_matrix(self):
        ota = five_transistor_ota()
        ota.vsource("vip", "inp", "0", dc=1.5, ac=1.0)
        ota.vsource("vin_", "inn", "0", dc=1.5)
        sym = SymbolicAnalyzer(ota)
        # vdd, inn merged to ground; unknowns: x1, tail, out, nbias, inp + branch.
        assert sym.matrix_size() <= 7

    def test_pruned_expansion_accuracy(self):
        ota = five_transistor_ota()
        ota.vsource("vip", "inp", "0", dc=1.5, ac=1.0)
        ota.vsource("vin_", "inn", "0", dc=1.5)
        sym = SymbolicAnalyzer(ota)
        exact = sym.transfer_function("out")
        pruned = sym.transfer_function("out", prune_tol=1e-2)
        assert pruned.term_count() < exact.term_count()
        g_exact = abs(exact.evaluate_jw(10.0))
        g_pruned = abs(pruned.evaluate_jw(10.0))
        assert g_pruned == pytest.approx(g_exact, rel=0.05)

    def test_simplified_after_exact(self):
        ota = five_transistor_ota()
        ota.vsource("vip", "inp", "0", dc=1.5, ac=1.0)
        ota.vsource("vin_", "inn", "0", dc=1.5)
        tf = SymbolicAnalyzer(ota).transfer_function("out")
        simp = tf.simplified(0.1)
        assert simp.term_count() < tf.term_count() / 10
        assert simp.dc_gain() == pytest.approx(tf.dc_gain(), rel=0.05)

    def test_gain_formula_structure(self):
        # 5T OTA dc gain must be gm-over-go shaped: numerator carries a gm.
        ota = five_transistor_ota()
        ota.vsource("vip", "inp", "0", dc=1.5, ac=1.0)
        ota.vsource("vin_", "inn", "0", dc=1.5)
        tf = SymbolicAnalyzer(ota).transfer_function("out").simplified(0.2)
        num_syms = tf.num.coefficient(0).symbols()
        assert any(s.startswith("gm_") for s in num_syms)

    def test_multiple_ac_sources_rejected(self):
        c = Circuit("two")
        c.vsource("v1", "a", "0", ac=1.0)
        c.vsource("v2", "b", "0", ac=1.0)
        c.resistor("r", "a", "b", 1e3)
        with pytest.raises(SymbolicError):
            SymbolicAnalyzer(c)

    def test_no_input_rejected(self):
        c = voltage_divider(1e3, 1e3, 1.0)
        c.update_device("vin", ac=0.0)
        sym = SymbolicAnalyzer(c)
        with pytest.raises(SymbolicError):
            sym.transfer_function("out")

    def test_inductor_rejected(self):
        c = Circuit("l")
        c.vsource("v1", "a", "0", ac=1.0)
        c.inductor("l1", "a", "out", 1e-9)
        c.resistor("r1", "out", "0", 50.0)
        with pytest.raises(SymbolicError):
            SymbolicAnalyzer(c)

    def test_output_at_ac_ground_rejected(self):
        cs = common_source_amp()
        sym = SymbolicAnalyzer(cs)
        with pytest.raises(SymbolicError):
            sym.transfer_function("vdd")
