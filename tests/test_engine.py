"""Tests for the evaluation engine: executors, cache, telemetry, job graph,
and the end-to-end guarantees the synthesis loops rely on — parallel runs
identical to serial ones, and warm-cache reruns doing zero simulator work.
"""

import numpy as np
import pytest

from repro.circuits.library import five_transistor_ota
from repro.core.specs import Spec, SpecSet
from repro.engine import (
    EvalCache,
    EvaluationEngine,
    JobGraph,
    JobGraphError,
    ParallelExecutor,
    SerialExecutor,
    Telemetry,
    canonical_key,
)
from repro.opt.anneal import AnnealSchedule, ContinuousSpace, anneal_continuous
from repro.opt.genetic import FloatGene, GeneticOptimizer
from repro.synthesis.equation_based import DesignSpace
from repro.synthesis.simulation_based import (
    SimulationBasedSizer,
    SimulationEvaluator,
)


def _square(x):
    """Module-level so it pickles into worker processes."""
    return x * x


def _genome_cost(g):
    return (g["x"] - 7.0) ** 2


OTA_SPECS = SpecSet([
    Spec.at_least("gain_db", 40.0),
    Spec.at_least("gbw", 10e6),
    Spec.minimize("power", good=1e-4),
])

OTA_SPACE = DesignSpace(
    variables={"w_in": (5e-6, 500e-6), "w_load": (5e-6, 200e-6),
               "w_tail": (5e-6, 200e-6), "i_bias": (2e-6, 500e-6)},
    fixed={"l_in": 2e-6, "l_load": 2e-6, "l_tail": 2e-6,
           "c_load": 2e-12, "vdd": 3.3})

# Small but non-trivial: ~90 evaluations, a couple of seconds of MNA work.
FAST_SCHEDULE = AnnealSchedule(moves_per_temperature=10, cooling=0.7,
                               max_evaluations=120, stop_after_stale=3)


def _sizer(engine, batch_size=4, seed=7):
    evaluator = SimulationEvaluator(builder=five_transistor_ota)
    return SimulationBasedSizer(evaluator, OTA_SPACE, OTA_SPECS,
                                schedule=FAST_SCHEDULE, seed=seed,
                                engine=engine, batch_size=batch_size)


class TestTelemetry:
    def test_counters_accumulate(self):
        t = Telemetry()
        t.count("a")
        t.count("a", 4)
        assert t.get("a") == 5
        assert t.get("missing") == 0

    def test_timer_records_calls_and_time(self):
        t = Telemetry()
        with t.timer("work"):
            pass
        with t.timer("work"):
            pass
        stat = t.timers["work"]
        assert stat.calls == 2
        assert stat.total_s >= 0.0
        assert t.report()["timers"]["work"]["calls"] == 2

    def test_merge(self):
        a, b = Telemetry(), Telemetry()
        a.count("x", 2)
        b.count("x", 3)
        b.record_time("t", 0.5)
        a.merge(b)
        assert a.get("x") == 5
        assert a.timers["t"].total_s == pytest.approx(0.5)


class TestCanonicalKey:
    def test_same_circuit_same_key(self):
        sizes = {"w_in": 5e-5, "i_bias": 5e-5}
        k1 = canonical_key(five_transistor_ota(dict(sizes)))
        k2 = canonical_key(five_transistor_ota(dict(sizes)))
        assert k1 == k2

    def test_different_sizes_different_key(self):
        k1 = canonical_key(five_transistor_ota({"w_in": 5e-5}))
        k2 = canonical_key(five_transistor_ota({"w_in": 6e-5}))
        assert k1 != k2

    def test_dict_order_independent(self):
        assert canonical_key({"a": 1, "b": 2}) == canonical_key(
            {"b": 2, "a": 1})

    def test_numpy_scalars_normalize_to_python_floats(self):
        assert canonical_key({"w": np.float64(1.5)}) == canonical_key(
            {"w": 1.5})

    def test_part_boundaries_matter(self):
        assert canonical_key("ab", "c") != canonical_key("a", "bc")


class TestEvalCache:
    def test_hit_returns_identical_result(self):
        cache = EvalCache()
        value = {"gain": 123.456789012345, "gbw": 9.87e6}
        cache.put("k", value)
        got = cache.get("k")
        assert got is value  # bit-identical: the stored object itself
        assert cache.stats.hits == 1 and cache.stats.misses == 0

    def test_get_or_compute_runs_once(self):
        cache = EvalCache()
        calls = []
        for _ in range(3):
            out = cache.get_or_compute("k", lambda: calls.append(1) or 42)
        assert out == 42
        assert len(calls) == 1
        assert cache.stats.hits == 2 and cache.stats.misses == 1

    def test_lru_eviction(self):
        cache = EvalCache(max_entries=2)
        cache.put("a", 1)
        cache.put("b", 2)
        cache.get("a")          # refresh a: b is now least recent
        cache.put("c", 3)
        assert cache.get("b") is None
        assert cache.get("a") == 1 and cache.get("c") == 3
        assert cache.stats.evictions == 1

    def test_disk_layer_survives_new_instance(self, tmp_path):
        c1 = EvalCache(disk_dir=tmp_path)
        c1.put("k", {"gain": 50.0})
        c2 = EvalCache(disk_dir=tmp_path)
        assert c2.get("k") == {"gain": 50.0}
        assert c2.stats.disk_hits == 1

    def test_report_fields(self):
        cache = EvalCache(max_entries=8)
        cache.put("k", 1)
        rep = cache.report()
        assert rep["entries"] == 1 and rep["max_entries"] == 8
        assert 0.0 <= rep["hit_rate"] <= 1.0


class TestExecutors:
    def test_serial_order(self):
        ex = SerialExecutor()
        assert ex.map_evaluate(_square, [3, 1, 2]) == [9, 1, 4]

    def test_parallel_matches_serial(self):
        with ParallelExecutor(workers=2) as ex:
            points = list(range(23))
            assert ex.map_evaluate(_square, points) == [p * p for p in points]

    def test_parallel_unpicklable_falls_back(self):
        local = 10
        with ParallelExecutor(workers=2) as ex:
            out = ex.map_evaluate(lambda x: x + local, [1, 2, 3])
        assert out == [11, 12, 13]
        assert ex.describe()["serial_fallbacks"] >= 1

    def test_parallel_empty_batch(self):
        with ParallelExecutor(workers=2) as ex:
            assert ex.map_evaluate(_square, []) == []


class TestEvaluationEngine:
    def test_counters_match_actual_evaluations(self):
        calls = []

        def fn(x):
            calls.append(x)
            return x * 2

        engine = EvaluationEngine(SerialExecutor(), EvalCache())
        out = engine.map_evaluate(fn, [1, 2, 1, 3, 2], key_fn=str)
        assert out == [2, 4, 2, 6, 4]
        counters = engine.report()["counters"]
        assert counters["engine.requests"] == 5
        assert counters["engine.evaluations"] == len(calls) == 3
        assert counters["engine.cache_hits"] == 2
        assert counters["engine.cache_misses"] == 3

    def test_no_cache_evaluates_everything(self):
        engine = EvaluationEngine(SerialExecutor())
        engine.map_evaluate(_square, [1, 1, 1])
        assert engine.report()["counters"]["engine.evaluations"] == 3

    def test_single_point_evaluate_with_key(self):
        engine = EvaluationEngine(SerialExecutor(), EvalCache())
        assert engine.evaluate(_square, 4, key="four") == 16
        assert engine.evaluate(_square, 4, key="four") == 16
        assert engine.report()["counters"]["engine.evaluations"] == 1

    def test_keyed_adapter_routes_through_cache(self):
        engine = EvaluationEngine(SerialExecutor(), EvalCache())
        keyed = engine.keyed(str)
        keyed.map_evaluate(_square, [5, 5, 6])
        assert engine.report()["counters"]["engine.cache_hits"] == 1


class TestJobGraph:
    def test_dependency_order_and_results(self):
        graph = JobGraph()
        graph.add("b", lambda r: r["a"] + 1, deps=("a",))
        graph.add("a", lambda r: 1)
        graph.add("c", lambda r: r["a"] + r["b"], deps=("a", "b"))
        results = graph.run()
        assert results == {"a": 1, "b": 2, "c": 3}

    def test_cycle_detected(self):
        graph = JobGraph()
        graph.add("a", lambda r: 1, deps=("b",))
        graph.add("b", lambda r: 2, deps=("a",))
        with pytest.raises(JobGraphError, match="cycle"):
            graph.run()

    def test_unknown_dep_rejected(self):
        graph = JobGraph()
        graph.add("a", lambda r: 1, deps=("ghost",))
        with pytest.raises(JobGraphError, match="unknown"):
            graph.order()

    def test_duplicate_job_rejected(self):
        graph = JobGraph()
        graph.add("a", lambda r: 1)
        with pytest.raises(JobGraphError, match="duplicate"):
            graph.add("a", lambda r: 2)

    def test_stage_telemetry(self):
        engine = EvaluationEngine()
        graph = JobGraph()
        graph.add("size", lambda r: 1)
        graph.add("verify", lambda r: r["size"], deps=("size",))
        graph.run(engine)
        rep = engine.report()
        assert rep["counters"]["jobs.completed"] == 2
        assert set(rep["timers"]) >= {"stage.size", "stage.verify"}


class TestOptimizerHooks:
    def test_anneal_executor_path_matches_plain(self):
        space = ContinuousSpace(["x", "y"], np.array([0.1, 0.1]),
                                np.array([10.0, 10.0]))

        def cost(p):
            return (p["x"] - 2.0) ** 2 + (p["y"] - 3.0) ** 2

        plain = anneal_continuous(cost, space, seed=3)
        hooked = anneal_continuous(cost, space, seed=3,
                                   executor=SerialExecutor())
        assert np.array_equal(plain.best_state, hooked.best_state)
        assert plain.best_cost == hooked.best_cost
        assert plain.evaluations == hooked.evaluations

    def test_anneal_explicit_rng_reproducible(self):
        space = ContinuousSpace(["x"], np.array([0.1]), np.array([10.0]))

        def run():
            return anneal_continuous(lambda p: (p["x"] - 5) ** 2, space,
                                     rng=np.random.default_rng(11))

        a, b = run(), run()
        assert np.array_equal(a.best_state, b.best_state)
        assert a.best_cost == b.best_cost

    def test_anneal_rejects_bad_batch_size(self):
        from repro.opt.anneal import Annealer
        with pytest.raises(ValueError):
            Annealer(lambda s: 0.0, lambda s, r, f: s, batch_size=0)

    def test_genetic_executor_matches_plain(self):
        genes = [FloatGene("x", 0.1, 100.0)]
        plain = GeneticOptimizer(genes, _genome_cost, population=20,
                                 seed=5).run(generations=15)
        with ParallelExecutor(workers=2) as ex:
            pooled = GeneticOptimizer(genes, _genome_cost, population=20,
                                      seed=5, executor=ex).run(generations=15)
        assert plain.best == pooled.best
        assert plain.best_fitness == pooled.best_fitness
        assert plain.history == pooled.history

    def test_genetic_explicit_rng_reproducible(self):
        genes = [FloatGene("x", 0.1, 100.0)]

        def run():
            return GeneticOptimizer(genes, _genome_cost, population=20,
                                    rng=np.random.default_rng(9)
                                    ).run(generations=10)

        assert run().best == run().best


class TestSizingEndToEnd:
    """The PR's acceptance criteria, verbatim."""

    def test_parallel_sizing_identical_to_serial(self):
        serial_engine = EvaluationEngine(SerialExecutor(), EvalCache())
        serial = _sizer(serial_engine).run()
        with ParallelExecutor(workers=2) as ex:
            parallel_engine = EvaluationEngine(ex, EvalCache())
            parallel = _sizer(parallel_engine).run()
        assert serial.sizes == parallel.sizes
        assert serial.cost == parallel.cost
        assert serial.performance == parallel.performance
        assert serial.evaluations == parallel.evaluations
        assert serial.history == parallel.history
        assert serial.feasible == parallel.feasible

    def test_warm_cache_makes_zero_simulator_calls(self):
        engine = EvaluationEngine(SerialExecutor(), EvalCache())
        first = _sizer(engine).run()
        evals_after_first = engine.report()["counters"]["engine.evaluations"]
        assert evals_after_first > 0
        second = _sizer(engine).run()
        counters = engine.report()["counters"]
        assert counters["engine.evaluations"] == evals_after_first
        assert first.sizes == second.sizes
        assert first.performance == second.performance

    def test_evaluator_own_cache_memoizes(self):
        telemetry = Telemetry()
        evaluator = SimulationEvaluator(builder=five_transistor_ota,
                                        cache=EvalCache(),
                                        telemetry=telemetry)
        sizes = {"w_in": 5e-5, "l_in": 2e-6, "w_load": 2e-5, "l_load": 2e-6,
                 "w_tail": 3e-5, "l_tail": 2e-6, "i_bias": 5e-5,
                 "c_load": 2e-12, "vdd": 3.3}
        first = evaluator(sizes)
        second = evaluator(dict(sizes))
        assert first == second
        assert telemetry.get("simulator.calls") == 1
        assert evaluator.cache.stats.hits == 1

    def test_evaluator_pickles_without_cache(self):
        import pickle
        evaluator = SimulationEvaluator(builder=five_transistor_ota,
                                        cache=EvalCache(),
                                        telemetry=Telemetry())
        clone = pickle.loads(pickle.dumps(evaluator))
        assert clone.cache is None and clone.telemetry is None
        assert clone.f_stop == evaluator.f_stop


class TestFlowTelemetry:
    def test_chip_flow_reports_stage_times(self):
        from repro.flows import assemble_chip
        from repro.msystem import demo_mixed_signal_system
        from repro.opt.anneal import AnnealSchedule

        blocks, nets = demo_mixed_signal_system()
        engine = EvaluationEngine()
        plan = assemble_chip(
            blocks, nets, seed=1, engine=engine,
            floorplan_schedule=AnnealSchedule(moves_per_temperature=40,
                                              cooling=0.8,
                                              max_evaluations=2000))
        assert plan.telemetry is not None
        stages = {"stage.floorplan", "stage.route", "stage.snr",
                  "stage.channels", "stage.power"}
        assert stages <= set(plan.telemetry["timers"])
        assert plan.telemetry["counters"]["jobs.completed"] == 5
        # The same flow without an engine carries no telemetry.
        plain = assemble_chip(
            blocks, nets, seed=1,
            floorplan_schedule=AnnealSchedule(moves_per_temperature=40,
                                              cooling=0.8,
                                              max_evaluations=2000))
        assert plain.telemetry is None
        assert plain.floorplan.area == plan.floorplan.area
