"""Tests for the serving layer: admission, deadlines, batching, fairness.

The deterministic tests drive a *paused* broker (constructed but not
started) with an injectable fake clock, so deadline expiry and
rate-limit refill are exact, not sleep-based; the broker is only started
once the queue state under test is in place.  Fake-clock configs always
use ``max_wait_ms=0`` — a batch window that waits on a frozen clock
would never close.
"""

from __future__ import annotations

import json
import threading
import time
import urllib.error
import urllib.request

import pytest

from repro.engine import (
    MANIFEST_SCHEMA_VERSION,
    REPORT_SCHEMA_VERSION,
    EngineConfig,
    EvaluationEngine,
    ServeConfig,
    build_manifest,
    check_report,
    validate_manifest,
)
from repro.serve import (
    Broker,
    DeadlineExpiredError,
    RejectedError,
    RequestCancelledError,
    Session,
    TokenBucket,
    Workload,
    make_server,
    replay,
    result_digest,
)


class FakeClock:
    def __init__(self, t: float = 0.0):
        self.t = t

    def __call__(self) -> float:
        return self.t

    def advance(self, dt: float) -> None:
        self.t += dt


def square(point):
    return {"y": point["x"] ** 2}


def make_broker(serve: ServeConfig | None = None, clock=None,
                **engine_kwargs) -> Broker:
    engine = EvaluationEngine.from_config(EngineConfig(**engine_kwargs))
    kwargs = {"clock": clock} if clock is not None else {}
    broker = Broker(engine, config=serve, owns_engine=True, **kwargs)
    broker.register(Workload("square", square))
    return broker


def serve_section(broker: Broker) -> dict:
    report = broker.report()
    check_report(report)
    return report["serve"]


def assert_accounting(serve: dict) -> None:
    """The zero-silent-drops invariant, with queues drained."""
    assert serve["requests"] == serve["admitted"] + serve["rejected"]
    assert serve["admitted"] == (serve["completed"] + serve["expired"]
                                 + serve["cancelled"] + serve["errored"])


# ----------------------------------------------------------------------
# Token bucket / admission primitives
# ----------------------------------------------------------------------

class TestTokenBucket:
    def test_burst_then_refill(self):
        clock = FakeClock()
        bucket = TokenBucket(rate=2.0, burst=3, clock=clock)
        assert [bucket.try_take() for _ in range(4)] == [
            True, True, True, False]
        clock.advance(0.5)  # one token back at 2/s
        assert bucket.try_take()
        assert not bucket.try_take()

    def test_refill_caps_at_burst(self):
        clock = FakeClock()
        bucket = TokenBucket(rate=10.0, burst=2, clock=clock)
        clock.advance(100.0)
        assert [bucket.try_take() for _ in range(3)] == [True, True, False]

    def test_validation(self):
        with pytest.raises(ValueError):
            TokenBucket(rate=0.0, burst=1)
        with pytest.raises(ValueError):
            TokenBucket(rate=1.0, burst=0)


# ----------------------------------------------------------------------
# Admission: queue bounds, rate limits, draining
# ----------------------------------------------------------------------

class TestAdmission:
    def test_queue_full_rejects_explicitly(self):
        broker = make_broker(ServeConfig(max_queue_depth=2, max_wait_ms=0))
        try:
            broker.submit("square", {"x": 1})
            broker.submit("square", {"x": 2})
            with pytest.raises(RejectedError) as exc_info:
                broker.submit("square", {"x": 3})
            assert exc_info.value.reason == "queue_full"
            serve = serve_section(broker)
            assert serve["requests"] == 3
            assert serve["admitted"] == 2
            assert serve["rejected"] == 1
        finally:
            broker.close()
        assert_accounting(serve_section(broker))

    def test_queue_bound_is_per_priority_class(self):
        broker = make_broker(ServeConfig(max_queue_depth=1, max_wait_ms=0))
        try:
            broker.submit("square", {"x": 1}, priority="interactive")
            # The batch queue is bounded independently.
            broker.submit("square", {"x": 2}, priority="batch")
            with pytest.raises(RejectedError):
                broker.submit("square", {"x": 3}, priority="batch")
        finally:
            broker.close()

    def test_rate_limit_per_client(self):
        clock = FakeClock()
        broker = make_broker(
            ServeConfig(rate=1.0, burst=2, max_wait_ms=0), clock=clock)
        try:
            broker.submit("square", {"x": 1}, client="alice")
            broker.submit("square", {"x": 2}, client="alice")
            with pytest.raises(RejectedError) as exc_info:
                broker.submit("square", {"x": 3}, client="alice")
            assert exc_info.value.reason == "rate_limited"
            # Other clients are unharmed...
            broker.submit("square", {"x": 4}, client="bob")
            # ...and alice recovers as her bucket refills.
            clock.advance(1.0)
            broker.submit("square", {"x": 5}, client="alice")
        finally:
            broker.close(drain=False)
        serve = serve_section(broker)
        assert serve["rejected"] == 1
        assert_accounting(serve)

    def test_draining_broker_rejects(self):
        broker = make_broker(ServeConfig(max_wait_ms=0))
        broker.start()
        broker.close()
        with pytest.raises(RejectedError) as exc_info:
            broker.submit("square", {"x": 1})
        assert exc_info.value.reason == "draining"

    def test_unknown_workload_and_bad_priority(self):
        broker = make_broker()
        try:
            with pytest.raises(KeyError):
                broker.submit("nope", {"x": 1})
            with pytest.raises(ValueError):
                broker.submit("square", {"x": 1}, priority="urgent")
        finally:
            broker.close()


# ----------------------------------------------------------------------
# Deadlines and cancellation
# ----------------------------------------------------------------------

class TestDeadlines:
    def test_expiry_mid_queue(self):
        clock = FakeClock()
        broker = make_broker(ServeConfig(max_wait_ms=0), clock=clock)
        handle = broker.submit("square", {"x": 1}, deadline_s=0.5)
        clock.advance(1.0)  # deadline passes while queued, pre-dispatch
        broker.start()
        with pytest.raises(DeadlineExpiredError):
            handle.result(timeout=5)
        assert handle.outcome == "expired"
        broker.close()
        serve = serve_section(broker)
        assert serve["expired"] == 1 and serve["completed"] == 0
        assert_accounting(serve)

    def test_expiry_at_batch_assembly(self):
        clock = FakeClock()
        broker = make_broker(
            ServeConfig(max_wait_ms=0, max_batch=8), clock=clock)
        alive = broker.submit("square", {"x": 1})
        doomed = broker.submit("square", {"x": 2}, deadline_s=0.5)
        clock.advance(1.0)
        broker.start()
        # The live request is dequeued first and still dispatches; the
        # expired one is dropped while the same batch assembles.
        assert alive.result(timeout=5) == {"y": 1}
        with pytest.raises(DeadlineExpiredError):
            doomed.result(timeout=5)
        broker.close()
        serve = serve_section(broker)
        assert serve["completed"] == 1 and serve["expired"] == 1
        assert serve["batched"] == 1  # the expired one never took a slot
        assert_accounting(serve)

    def test_default_deadline_from_config(self):
        clock = FakeClock()
        broker = make_broker(
            ServeConfig(max_wait_ms=0, default_deadline_s=0.25), clock=clock)
        handle = broker.submit("square", {"x": 1})
        clock.advance(0.5)
        broker.start()
        with pytest.raises(DeadlineExpiredError):
            handle.result(timeout=5)
        broker.close()


class TestCancellation:
    def test_cancel_while_queued(self):
        broker = make_broker(ServeConfig(max_wait_ms=0))
        handle = broker.submit("square", {"x": 1})
        assert handle.cancel() is True
        assert handle.cancel() is False  # already terminal
        with pytest.raises(RequestCancelledError):
            handle.result(timeout=5)
        broker.start()
        broker.close()
        serve = serve_section(broker)
        assert serve["cancelled"] == 1 and serve["completed"] == 0
        assert_accounting(serve)

    def test_cancel_races_dispatch(self):
        """A cancel during execution of an earlier batch still wins for a
        queued request; a cancel after dispatch claimed it loses."""
        release = threading.Event()
        entered = threading.Event()

        def slow(point):
            entered.set()
            release.wait(timeout=10)
            return {"y": point["x"]}

        broker = make_broker(ServeConfig(max_wait_ms=0, max_batch=1))
        broker.register(Workload("slow", slow))
        broker.start()
        first = broker.submit("slow", {"x": 1})
        assert entered.wait(timeout=5)
        assert first.cancel() is False  # claimed by the dispatcher
        second = broker.submit("slow", {"x": 2})
        assert second.cancel() is True  # still queued behind the batch
        release.set()
        assert first.result(timeout=5) == {"y": 1}
        with pytest.raises(RequestCancelledError):
            second.result(timeout=5)
        broker.close()
        assert_accounting(serve_section(broker))

    def test_cancel_loses_once_coalesced_into_open_batch(self):
        """A request drained into an open batch window is claimed at
        drain time, so a racing cancel loses — it must not settle the
        request as cancelled while the batch also completes it."""
        clock = FakeClock()
        # The frozen fake clock keeps the batch window open forever; the
        # batch only closes when max_batch is reached, which makes the
        # open-window state deterministic to observe.
        broker = make_broker(
            ServeConfig(max_wait_ms=1000.0, max_batch=3), clock=clock)
        broker.start()
        first = broker.submit("square", {"x": 1})
        second = broker.submit("square", {"x": 2})
        deadline = time.monotonic() + 5.0
        while not second._request.claimed:
            assert time.monotonic() < deadline, \
                "dispatcher never drained the second request"
            time.sleep(0.005)
        assert second.cancel() is False  # claimed inside the open window
        third = broker.submit("square", {"x": 3})  # closes the batch
        assert [h.result(timeout=5)["y"]
                for h in (first, second, third)] == [1, 4, 9]
        broker.close()
        serve = serve_section(broker)
        assert serve["completed"] == 3 and serve["cancelled"] == 0
        assert serve["batches"] == 1 and serve["batched"] == 3
        assert_accounting(serve)

    def test_close_without_drain_cancels_loudly(self):
        broker = make_broker(ServeConfig(max_wait_ms=0))
        handles = [broker.submit("square", {"x": i}) for i in range(3)]
        broker.close(drain=False)
        for handle in handles:
            with pytest.raises(RequestCancelledError):
                handle.result(timeout=5)
        serve = serve_section(broker)
        assert serve["cancelled"] == 3
        assert_accounting(serve)


# ----------------------------------------------------------------------
# Dispatcher-side engine errors
# ----------------------------------------------------------------------

class TestEngineErrors:
    def test_engine_exception_fails_batch_as_errored(self):
        """``map_evaluate`` raising (no retry policy installed) fails
        every request of that batch in the distinct ``errored`` lane —
        not ``cancelled`` — and the dispatcher survives to serve the
        next batch."""
        def boom(point):
            raise RuntimeError("simulator exploded")

        broker = make_broker(ServeConfig(max_wait_ms=0, max_batch=4))
        broker.register(Workload("boom", boom))
        broker.start()
        doomed = [broker.submit("boom", {"x": i}) for i in range(2)]
        ok = broker.submit("square", {"x": 3})
        assert ok.result(timeout=5) == {"y": 9}
        for handle in doomed:
            with pytest.raises(RuntimeError, match="simulator exploded"):
                handle.result(timeout=5)
            assert handle.outcome == "errored"
        broker.close()
        serve = serve_section(broker)
        assert serve["errored"] == 2
        assert serve["cancelled"] == 0 and serve["completed"] == 1
        assert_accounting(serve)
        outcomes = {r["seq"]: r["outcome"] for r in broker.request_log}
        assert sorted(outcomes.values()) == [
            "completed", "errored", "errored"]
        # The request log is replayable: errored records are skipped.
        rep = replay(broker.request_log, broker.workloads)
        rep.assert_ok()
        assert rep.skipped == 2 and rep.replayed == 1


# ----------------------------------------------------------------------
# Batching and fairness
# ----------------------------------------------------------------------

class TestBatching:
    def test_queued_requests_coalesce_into_one_engine_batch(self):
        broker = make_broker(ServeConfig(max_wait_ms=0, max_batch=16))
        handles = [broker.submit("square", {"x": i}) for i in range(6)]
        broker.start()
        assert [h.result(timeout=5)["y"] for h in handles] == [
            i * i for i in range(6)]
        broker.close()
        serve = serve_section(broker)
        assert serve["batches"] == 1
        assert serve["batched"] == 6
        assert serve["mean_batch_size"] == 6.0
        assert serve["batch_size_hist"] == {"6": 1}
        assert serve["latency_p50_s"] is not None
        assert_accounting(serve)

    def test_max_batch_splits(self):
        broker = make_broker(ServeConfig(max_wait_ms=0, max_batch=4))
        handles = [broker.submit("square", {"x": i}) for i in range(10)]
        broker.start()
        for handle in handles:
            handle.result(timeout=5)
        broker.close()
        serve = serve_section(broker)
        assert serve["batches"] == 3
        assert serve["batch_size_hist"] == {"4": 2, "2": 1}

    def test_incompatible_workloads_never_share_a_batch(self):
        broker = make_broker(ServeConfig(max_wait_ms=0, max_batch=16))
        broker.register(Workload("cube", lambda p: {"y": p["x"] ** 3}))
        hs = [broker.submit("square", {"x": 2}),
              broker.submit("cube", {"x": 2}),
              broker.submit("square", {"x": 3})]
        broker.start()
        assert [h.result(timeout=5)["y"] for h in hs] == [4, 8, 9]
        broker.close()
        assert serve_section(broker)["batches"] == 2

    def test_identical_points_dedup_through_engine_cache(self):
        broker = make_broker(
            ServeConfig(max_wait_ms=0, max_batch=16), cache=True)
        wl = Workload("keyed", square,
                      key_fn=lambda p: f"keyed:{p['x']}")
        broker.register(wl)
        handles = [broker.submit("keyed", {"x": 7}) for _ in range(5)]
        broker.start()
        assert all(h.result(timeout=5) == {"y": 49} for h in handles)
        broker.close()
        report = broker.report()
        # One evaluation served five requests: batch dedup + cache.
        assert report["counters"].get("engine.evaluations", 0) == 1
        assert report["serve"]["completed"] == 5


class TestFairness:
    def test_interactive_burst_prevents_mutual_starvation(self):
        """With both classes saturated, interactive leads but batch-class
        work is served every ``interactive_burst`` dispatches."""
        broker = make_broker(ServeConfig(
            max_wait_ms=0, max_batch=1, interactive_burst=2))
        bulk = [broker.submit("square", {"x": i}, client="sweeper",
                              priority="batch") for i in range(6)]
        inter = [broker.submit("square", {"x": 10 + i}, client="designer")
                 for i in range(4)]
        broker.start()
        broker.close()  # drains everything
        for handle in bulk + inter:
            assert handle.result(timeout=5)["y"] is not None
        order = [(r["priority"], r["seq"]) for r in broker.request_log
                 if r["outcome"] == "completed"]
        priorities = [p for p, _ in order]
        # Interactive jumps the 6 already-queued batch requests...
        assert priorities[0] == "interactive"
        # ...but batch gets a slot within every interactive_burst+1 window
        # while interactive work remains, and nothing is lost.
        assert priorities[2] == "batch"
        assert sorted(priorities) == ["batch"] * 6 + ["interactive"] * 4
        # FIFO within each class.
        for cls in ("interactive", "batch"):
            seqs = [s for p, s in order if p == cls]
            assert seqs == sorted(seqs)
        assert_accounting(serve_section(broker))

    def test_two_clients_both_finish_under_saturation(self):
        broker = make_broker(
            ServeConfig(max_wait_ms=0, max_batch=2, interactive_burst=2))
        sweeper = Session(broker, "sweeper", priority="batch")
        designer = Session(broker, "designer", priority="interactive")
        sweeper.map("square", [{"x": i} for i in range(12)])
        designer.map("square", [{"x": i} for i in range(3)])
        broker.start()
        done = [h for h in designer.results(timeout=5)]
        assert all(h.outcome == "completed" for h in done)
        broker.close()
        serve = serve_section(broker)
        assert serve["completed"] == 15
        assert_accounting(serve)


# ----------------------------------------------------------------------
# Sessions
# ----------------------------------------------------------------------

class TestSession:
    def test_quota_exceeded_is_counted_rejection(self):
        broker = make_broker(ServeConfig(max_wait_ms=0))
        session = Session(broker, "alice", quota=2)
        broker.start()
        session.submit("square", {"x": 1})
        session.submit("square", {"x": 2})
        with pytest.raises(RejectedError) as exc_info:
            session.submit("square", {"x": 3})
        assert exc_info.value.reason == "quota_exceeded"
        list(session.results(timeout=5))
        broker.close()
        serve = serve_section(broker)
        assert serve["requests"] == 3
        assert serve["rejected"] == 1
        assert_accounting(serve)

    def test_streaming_results_completion_order(self):
        broker = make_broker(ServeConfig(max_wait_ms=0, max_batch=1))
        session = Session(broker, "alice")
        session.map("square", [{"x": i} for i in range(5)])
        broker.start()
        seen = [h.result(timeout=5)["y"] for h in session.results(timeout=5)]
        assert sorted(seen) == [0, 1, 4, 9, 16]
        broker.close()

    def test_exit_with_error_cancels_pending(self):
        broker = make_broker(ServeConfig(max_wait_ms=0))
        with pytest.raises(RuntimeError, match="client bug"):
            with Session(broker, "alice") as session:
                session.submit("square", {"x": 1})
                raise RuntimeError("client bug")
        broker.start()
        broker.close()
        serve = serve_section(broker)
        assert serve["cancelled"] == 1
        assert_accounting(serve)


# ----------------------------------------------------------------------
# Replay
# ----------------------------------------------------------------------

class TestReplay:
    def run_traffic(self, tmp_path):
        broker = make_broker(ServeConfig(max_wait_ms=0, max_batch=4))
        with broker:
            handles = [broker.submit("square", {"x": i}) for i in range(8)]
            for handle in handles:
                handle.result(timeout=5)
        path = tmp_path / "requests.jsonl"
        broker.write_request_trace(path)
        return broker, path

    def test_replay_from_disk_matches(self, tmp_path):
        broker, path = self.run_traffic(tmp_path)
        report = replay(path, {"square": square})
        report.assert_ok()
        assert report.replayed == 8 and report.matched == 8

    def test_replay_through_engine_matches(self, tmp_path):
        broker, path = self.run_traffic(tmp_path)
        engine = EvaluationEngine()
        try:
            replay(path, broker.workloads, engine=engine).assert_ok()
        finally:
            engine.close()

    def test_replay_detects_divergence(self, tmp_path):
        _, path = self.run_traffic(tmp_path)
        report = replay(path, {"square": lambda p: {"y": p["x"] ** 2 + 1}})
        assert not report.ok
        assert len(report.mismatched) == 8
        with pytest.raises(AssertionError, match="replay diverged"):
            report.assert_ok()

    def test_result_digest_ignores_failure_wallclock(self):
        from repro.engine import EvalFailure
        a = EvalFailure("ConvergenceError", "boom", elapsed_s=0.1)
        b = EvalFailure("ConvergenceError", "boom", elapsed_s=9.9)
        assert result_digest(a) == result_digest(b)
        assert result_digest(a) != result_digest(
            EvalFailure("ConvergenceError", "other"))


# ----------------------------------------------------------------------
# HTTP facade
# ----------------------------------------------------------------------

class TestHttp:
    def request(self, url, body=None):
        if body is None:
            req = urllib.request.Request(url)
        else:
            req = urllib.request.Request(
                url, data=json.dumps(body).encode(),
                headers={"Content-Type": "application/json"})
        try:
            with urllib.request.urlopen(req, timeout=10) as resp:
                return resp.status, json.loads(resp.read())
        except urllib.error.HTTPError as exc:
            return exc.code, json.loads(exc.read())

    def test_facade_end_to_end(self):
        broker = make_broker(ServeConfig(max_wait_ms=0))
        with broker, make_server(broker,
                                 synthesize_workload="square") as server:
            status, out = self.request(
                server.url + "/evaluate",
                {"workload": "square", "point": {"x": 5}, "client": "web"})
            assert status == 200 and out["result"] == {"y": 25}
            status, out = self.request(
                server.url + "/synthesize", {"point": {"x": 3}})
            assert status == 200 and out["result"] == {"y": 9}
            status, health = self.request(server.url + "/healthz")
            assert status == 200 and health["status"] == "ok"
            assert health["queues"] == {"interactive": 0, "batch": 0}
            status, metrics = self.request(server.url + "/metrics")
            assert status == 200
            check_report(metrics)
            assert metrics["serve"]["completed"] == 2

    def test_facade_error_mapping(self):
        broker = make_broker(ServeConfig(max_wait_ms=0, max_queue_depth=1))
        with make_server(broker) as server:  # broker NOT started: queues
            status, _ = self.request(server.url + "/nope")
            assert status == 404
            status, out = self.request(server.url + "/evaluate",
                                       {"point": {"x": 1}})
            assert status == 400
            status, out = self.request(
                server.url + "/evaluate",
                {"workload": "missing", "point": {"x": 1}})
            assert status == 400
            # Fill the queue, then watch backpressure surface as 429.
            broker.submit("square", {"x": 1})
            status, out = self.request(
                server.url + "/evaluate",
                {"workload": "square", "point": {"x": 2}})
            assert status == 429 and out["reason"] == "queue_full"
        broker.close()

    def test_unbounded_wait_is_capped_server_side(self):
        """No timeout_s and no deadline anywhere: the handler thread is
        released by the ``http_max_wait_s`` ceiling, 504 pending."""
        broker = make_broker(
            ServeConfig(max_wait_ms=0, http_max_wait_s=0.2))
        try:
            with make_server(broker) as server:  # broker NOT started:
                status, out = self.request(      # the request never runs
                    server.url + "/evaluate",
                    {"workload": "square", "point": {"x": 1}})
                assert status == 504 and out["outcome"] == "pending"
        finally:
            broker.close()

    def test_engine_error_maps_to_500(self):
        def boom(point):
            raise RuntimeError("simulator exploded")

        broker = make_broker(ServeConfig(max_wait_ms=0))
        broker.register(Workload("boom", boom))
        with broker, make_server(broker) as server:
            status, out = self.request(
                server.url + "/evaluate",
                {"workload": "boom", "point": {"x": 1}})
            assert status == 500 and out["outcome"] == "errored"
            assert "simulator exploded" in out["error"]


# ----------------------------------------------------------------------
# Schemas: report v4 and manifest v3 carry the serve story
# ----------------------------------------------------------------------

class TestSchemas:
    def test_report_v4_has_serve_section(self):
        engine = EvaluationEngine()
        try:
            report = engine.report()
            assert report["schema_version"] == REPORT_SCHEMA_VERSION == 9
            check_report(report)
            assert report["serve"]["requests"] == 0
            assert report["serve"]["latency_p50_s"] is None
        finally:
            engine.close()

    def test_manifest_v3_rolls_up_serve(self):
        config = EngineConfig(trace=True,
                              serve=ServeConfig(max_wait_ms=0, max_batch=4))
        engine = EvaluationEngine.from_config(config)
        broker = Broker(engine, config=config.serve, owns_engine=True)
        broker.register(Workload("square", square))
        with broker:
            handles = [broker.submit("square", {"x": i}) for i in range(5)]
            for handle in handles:
                handle.result(timeout=5)
        manifest = build_manifest("serve_session", engine, seed=1,
                                  config=config)
        assert manifest["schema_version"] == MANIFEST_SCHEMA_VERSION == 8
        validate_manifest(manifest)
        rollups = manifest["rollups"]
        assert rollups["serve_requests"] == 5
        assert rollups["serve_rejected"] == 0
        assert rollups["serve_batches"] == 2
        assert rollups["serve_mean_batch_size"] == 2.5
        # Serve traffic is traced: the batch spans made it in.
        def walk(span):
            yield span["name"]
            for child in span.get("children", []):
                yield from walk(child)
        names = {name for root in manifest["report"].get("spans", [])
                 for name in walk(root)}
        assert "serve.batch" in names and "serve.request" in names

    def test_serve_request_span_end_events_match_span_tree(self):
        """The ``span_end`` events and the span tree agree on every
        serve.request phase duration (the spans are recorded pre-timed,
        so the event log must not report the ~0 enter/exit time)."""
        config = EngineConfig(trace=True,
                              serve=ServeConfig(max_wait_ms=0, max_batch=4))
        engine = EvaluationEngine.from_config(config)
        broker = Broker(engine, config=config.serve, owns_engine=True)
        broker.register(Workload("square", square))
        with broker:
            for handle in [broker.submit("square", {"x": i})
                           for i in range(4)]:
                handle.result(timeout=5)
        tree: dict[str, list] = {}
        for root in engine.tracer.roots:
            for span in root.walk():
                tree.setdefault(span.path, []).append(span.duration_s)
        events: dict[str, list] = {}
        for record in engine.tracer.events:
            if (record["kind"] == "span_end"
                    and record["span"].startswith("serve.request")):
                events.setdefault(record["span"], []).append(
                    record["duration_s"])
        assert set(events) == {
            "serve.request", "serve.request/queue_wait",
            "serve.request/batch_wait", "serve.request/execute"}
        for path, durations in events.items():
            assert sorted(durations) == sorted(tree[path])
        # The latencies are the real request latencies, not enter/exit.
        assert any(d > 0 for d in events["serve.request"])
