"""Tests for blocks, substrate models and WRIGHT floorplanning."""

import pytest

from repro.msystem.blocks import (
    Block,
    BlockKind,
    PlacedBlock,
    demo_mixed_signal_system,
)
from repro.msystem.floorplan import (
    FloorplanState,
    WrightFloorplanner,
    _is_valid_polish,
    evaluate_polish,
)
from repro.msystem.substrate import (
    SubstrateMesh,
    coupling_kernel,
    floorplan_noise,
)
from repro.opt.anneal import AnnealSchedule

FAST = AnnealSchedule(moves_per_temperature=80, cooling=0.85,
                      max_evaluations=6000)


def _two_blocks():
    return [
        Block("dig", 1000, 1000, BlockKind.DIGITAL, noise_injection=5.0),
        Block("ana", 1000, 1000, BlockKind.ANALOG, noise_sensitivity=5.0),
    ]


class TestBlocks:
    def test_rotation_swaps_dims(self):
        b = Block("b", 200, 100, BlockKind.DIGITAL)
        r = b.rotated()
        assert (r.width, r.height) == (100, 200)

    def test_placed_rect(self):
        b = Block("b", 200, 100, BlockKind.DIGITAL)
        p = PlacedBlock(b, 10, 20)
        assert p.rect().x2 == 210 and p.rect().y2 == 120

    def test_placed_rotated_dims(self):
        b = Block("b", 200, 100, BlockKind.DIGITAL)
        p = PlacedBlock(b, 0, 0, rotated=True)
        assert p.width == 100 and p.height == 200

    def test_pin_position_default_center(self):
        b = Block("b", 200, 100, BlockKind.DIGITAL)
        assert PlacedBlock(b, 0, 0).pin_position("any") == (100, 50)

    def test_demo_system_sane(self):
        blocks, nets = demo_mixed_signal_system()
        names = {b.name for b in blocks}
        for net in nets:
            for block, _ in net.terminals:
                assert block in names


class TestSubstrate:
    def test_kernel_decays(self):
        assert coupling_kernel(0) == 1.0
        assert coupling_kernel(100_000) > coupling_kernel(1_000_000)

    def test_floorplan_noise_distance(self):
        dig, ana = _two_blocks()
        near = [PlacedBlock(dig, 0, 0), PlacedBlock(ana, 1100, 0)]
        far = [PlacedBlock(dig, 0, 0), PlacedBlock(ana, 3_000_000, 0)]
        assert floorplan_noise(near) > 10 * floorplan_noise(far)

    def test_mesh_transfer_reciprocal(self):
        mesh = SubstrateMesh(2_000_000, 2_000_000, nx=15, ny=15)
        a, b = (300_000.0, 300_000.0), (1_500_000.0, 1_200_000.0)
        assert mesh.transfer(a, b) == pytest.approx(mesh.transfer(b, a),
                                                    rel=1e-9)

    def test_mesh_transfer_decays_with_distance(self):
        mesh = SubstrateMesh(4_000_000, 4_000_000, nx=25, ny=25)
        src = (200_000.0, 200_000.0)
        near = mesh.transfer(src, (600_000.0, 200_000.0))
        far = mesh.transfer(src, (3_800_000.0, 3_800_000.0))
        assert near > far > 0

    def test_mesh_agrees_with_kernel_ordering(self):
        """The fast kernel and the mesh must rank floorplans identically."""
        dig, ana = _two_blocks()
        near = [PlacedBlock(dig, 0, 0), PlacedBlock(ana, 1_100, 0)]
        far = [PlacedBlock(dig, 0, 0), PlacedBlock(ana, 1_500_000, 0)]
        mesh = SubstrateMesh(3_000_000, 1_200_000, nx=20, ny=10)
        assert (mesh.floorplan_noise(near) > mesh.floorplan_noise(far)) \
            == (floorplan_noise(near) > floorplan_noise(far))


class TestPolish:
    def test_valid_expression(self):
        assert _is_valid_polish(["a", "b", "V"])
        assert _is_valid_polish(["a", "b", "V", "c", "H"])
        assert not _is_valid_polish(["a", "V", "b"])
        assert not _is_valid_polish(["a", "b"])

    def test_evaluate_side_by_side(self):
        blocks = {"a": Block("a", 100, 50, BlockKind.DIGITAL),
                  "b": Block("b", 200, 80, BlockKind.DIGITAL)}
        placed = evaluate_polish(["a", "b", "V"], blocks, {})
        assert placed["b"].x == 100
        assert placed["a"].y == placed["b"].y == 0

    def test_evaluate_stacked(self):
        blocks = {"a": Block("a", 100, 50, BlockKind.DIGITAL),
                  "b": Block("b", 200, 80, BlockKind.DIGITAL)}
        placed = evaluate_polish(["a", "b", "H"], blocks, {})
        assert placed["b"].y == 50

    def test_rotation_in_eval(self):
        blocks = {"a": Block("a", 100, 50, BlockKind.DIGITAL),
                  "b": Block("b", 100, 50, BlockKind.DIGITAL)}
        placed = evaluate_polish(["a", "b", "V"], blocks, {"b": True})
        assert placed["b"].width == 50

    def test_no_overlap_in_any_tree(self):
        blocks = {n: Block(n, 100 + 30 * i, 70 + 20 * i, BlockKind.DIGITAL)
                  for i, n in enumerate("abcd")}
        placed = evaluate_polish(
            ["a", "b", "V", "c", "H", "d", "V"], blocks, {})
        rects = [p.rect() for p in placed.values()]
        for i, r1 in enumerate(rects):
            for r2 in rects[i + 1:]:
                assert r1.intersection(r2) is None


class TestWrightFloorplanner:
    def test_result_has_no_overlaps(self):
        blocks, nets = demo_mixed_signal_system()
        result = WrightFloorplanner(blocks, nets, seed=1).run(FAST)
        rects = [p.rect() for p in result.placed.values()]
        for i, r1 in enumerate(rects):
            for r2 in rects[i + 1:]:
                assert r1.intersection(r2) is None

    def test_area_reasonable(self):
        blocks, nets = demo_mixed_signal_system()
        result = WrightFloorplanner(blocks, nets, seed=1).run(FAST)
        total = sum(b.area for b in blocks)
        assert result.area < 4 * total

    def test_noise_aware_beats_noise_blind(self):
        """WRIGHT's claim: the substrate term separates noisy and
        sensitive blocks."""
        blocks, nets = demo_mixed_signal_system()
        aware = WrightFloorplanner(blocks, nets, noise_weight=1.5,
                                   seed=3).run(FAST)
        blind = WrightFloorplanner(blocks, nets, noise_weight=0.0,
                                   seed=3).run(FAST)
        assert aware.noise < blind.noise

    def test_deterministic(self):
        blocks, nets = demo_mixed_signal_system()
        r1 = WrightFloorplanner(blocks, nets, seed=7).run(FAST)
        r2 = WrightFloorplanner(blocks, nets, seed=7).run(FAST)
        assert r1.area == r2.area

    def test_needs_two_blocks(self):
        with pytest.raises(ValueError):
            WrightFloorplanner([_two_blocks()[0]], [])

    def test_moves_preserve_validity(self):
        import numpy as np
        blocks, nets = demo_mixed_signal_system()
        fp = WrightFloorplanner(blocks, nets, seed=1)
        state = fp.initial_state()
        rng = np.random.default_rng(0)
        for _ in range(300):
            state = fp.propose(state, rng, 0.5)
            assert _is_valid_polish(state.expression)
            # Every block appears exactly once.
            operands = [t for t in state.expression if t not in "HV"]
            assert sorted(operands) == sorted(fp.blocks)
