"""Tests for SC-filter synthesis and common-centroid capacitor arrays."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.layout.caparray import (
    CapArrayError,
    centroid_errors,
    common_centroid_assignment,
    generate_cap_array,
)
from repro.synthesis.sc_filter import (
    ScBiquad,
    ScSynthesisError,
    BiquadSpec,
    butterworth_biquads,
    quantize_ratios,
    synthesize_sc_filter,
)


class TestButterworth:
    def test_order_2_q(self):
        sections = butterworth_biquads(1e4, 2)
        assert len(sections) == 1
        assert sections[0].q == pytest.approx(1 / math.sqrt(2), rel=1e-9)

    def test_order_4_qs(self):
        sections = butterworth_biquads(1e4, 4)
        qs = sorted(s.q for s in sections)
        assert qs[0] == pytest.approx(0.5412, rel=1e-3)
        assert qs[1] == pytest.approx(1.3066, rel=1e-3)

    def test_odd_order_rejected(self):
        with pytest.raises(ScSynthesisError):
            butterworth_biquads(1e4, 3)

    def test_gain_distributed(self):
        sections = butterworth_biquads(1e4, 4, gain=4.0)
        product = math.prod(s.gain for s in sections)
        assert product == pytest.approx(4.0, rel=1e-9)


class TestScBiquad:
    def test_realized_pole_accuracy(self):
        bq = ScBiquad(BiquadSpec(10e3, 0.707), f_clock=1e6)
        f0, q = bq.effective_f0_q()
        assert f0 == pytest.approx(10e3, rel=0.05)
        assert q == pytest.approx(0.707, rel=0.1)

    def test_stability(self):
        bq = ScBiquad(BiquadSpec(10e3, 2.0), f_clock=1e6)
        assert bq.is_stable()

    def test_low_oversampling_rejected(self):
        with pytest.raises(ScSynthesisError):
            ScBiquad(BiquadSpec(200e3, 1.0), f_clock=1e6)

    def test_higher_clock_better_accuracy(self):
        coarse = ScBiquad(BiquadSpec(10e3, 1.0), f_clock=2e5)
        fine = ScBiquad(BiquadSpec(10e3, 1.0), f_clock=4e6)
        err_coarse = abs(coarse.effective_f0_q()[0] - 10e3)
        err_fine = abs(fine.effective_f0_q()[0] - 10e3)
        assert err_fine < err_coarse

    @given(st.floats(min_value=1e3, max_value=40e3),
           st.floats(min_value=0.52, max_value=5.0))
    @settings(max_examples=40, deadline=None)
    def test_always_stable_at_high_oversampling(self, f0, q):
        bq = ScBiquad(BiquadSpec(f0, q), f_clock=1e6)
        assert bq.is_stable()


class TestQuantization:
    def test_ratio_error_bounded(self):
        bq = ScBiquad(BiquadSpec(10e3, 1.0), f_clock=1e6)
        budget = quantize_ratios(bq, 100e-15)
        assert budget.ratio_error < 0.05
        assert budget.total_units == sum(budget.units.values())

    def test_spread_reported(self):
        bq = ScBiquad(BiquadSpec(10e3, 1.0), f_clock=1e6)
        budget = quantize_ratios(bq, 100e-15)
        assert budget.spread >= 1.0

    def test_ktc_decreases_with_unit_cap(self):
        bq = ScBiquad(BiquadSpec(10e3, 1.0), f_clock=1e6)
        small = quantize_ratios(bq, 50e-15)
        large = quantize_ratios(bq, 500e-15)
        assert large.kt_c_noise_v < small.kt_c_noise_v


class TestFilterSynthesis:
    def test_meets_noise_budget(self):
        design = synthesize_sc_filter(10e3, 4, 1e6,
                                      noise_budget_v=150e-6)
        assert design.worst_noise_v() <= 150e-6

    def test_tighter_noise_costs_area(self):
        loose = synthesize_sc_filter(10e3, 4, 1e6, noise_budget_v=400e-6)
        tight = synthesize_sc_filter(10e3, 4, 1e6, noise_budget_v=100e-6)
        assert tight.area_estimate() >= loose.area_estimate()

    def test_sections_match_order(self):
        design = synthesize_sc_filter(20e3, 6, 2e6)
        assert len(design.sections) == 3

    def test_realized_response_shape(self):
        design = synthesize_sc_filter(10e3, 4, 1e6)
        for section in design.sections:
            f0, _ = section.effective_f0_q()
            assert f0 == pytest.approx(10e3, rel=0.08)


class TestCommonCentroid:
    def test_unit_conservation(self):
        units = {"a": 8, "b": 6, "c": 2}
        grid = common_centroid_assignment(units)
        flat = [cell for row in grid for cell in row]
        for name, count in units.items():
            assert flat.count(name) == count

    def test_even_caps_perfectly_centered(self):
        units = {"a": 8, "b": 8, "c": 4}
        errors = centroid_errors(common_centroid_assignment(units))
        for name in units:
            assert errors[name] == pytest.approx(0.0, abs=1e-9)

    def test_odd_caps_near_center(self):
        units = {"big": 12, "one": 1}
        errors = centroid_errors(common_centroid_assignment(units))
        assert errors["one"] <= 1.5  # the unpaired unit sits near center

    def test_bad_input_rejected(self):
        with pytest.raises(CapArrayError):
            common_centroid_assignment({})
        with pytest.raises(CapArrayError):
            common_centroid_assignment({"a": 0})

    @given(st.dictionaries(
        st.sampled_from(["a", "b", "c", "d"]),
        st.integers(min_value=1, max_value=20),
        min_size=1, max_size=4))
    @settings(max_examples=40, deadline=None)
    def test_property_conservation_and_balance(self, units):
        grid = common_centroid_assignment(units)
        flat = [cell for row in grid for cell in row]
        for name, count in units.items():
            assert flat.count(name) == count
        errors = centroid_errors(grid)
        for name, count in units.items():
            if count % 2 == 0:
                # Even-count caps balance closely (exact unless fallback
                # cells had to be used for geometric reasons).
                assert errors[name] < 1.5


class TestCapArrayLayout:
    def test_layout_generated(self):
        result = generate_cap_array({"a": 4, "b": 4}, 100e-15)
        assert result.cell.shapes
        assert set(result.cell.ports) == {"a", "b"}

    def test_gds_exportable(self):
        from repro.layout.gdslite import read_gds_rect_count, write_gds
        result = generate_cap_array({"a": 4, "b": 4}, 100e-15)
        assert read_gds_rect_count(write_gds([result.cell])) > 10

    def test_units_of(self):
        result = generate_cap_array({"a": 6, "b": 2}, 100e-15)
        assert result.units_of("a") == 6
        assert result.units_of("b") == 2

    def test_sc_filter_array_end_to_end(self):
        design = synthesize_sc_filter(10e3, 2, 1e6)
        budget = design.budgets[0]
        result = generate_cap_array(budget.units, budget.unit_cap)
        # Integrating caps (even counts by construction or large) must be
        # well balanced.
        for name, err in result.centroid_error.items():
            units = budget.units[name]
            if units % 2 == 0:
                assert err < 0.75
            else:
                assert err < 2.5


class TestCapArrayEdgeCases:
    """Small and odd arrays: the corners the macro tiler leans on."""

    def test_single_capacitor_single_unit(self):
        result = generate_cap_array({"solo": 1}, 100e-15)
        assert result.units_of("solo") == 1
        assert set(result.cell.ports) == {"solo"}
        assert result.centroid_error["solo"] < 1.5

    def test_single_capacitor_many_units(self):
        result = generate_cap_array({"solo": 9}, 100e-15)
        assert result.units_of("solo") == 9
        # One cap owns every assigned cell, so its centroid is the
        # centroid of the occupied region — near the array center.
        assert result.centroid_error["solo"] < 1.0

    def test_odd_unit_counts_conserved(self):
        units = {"a": 7, "b": 5, "c": 3, "d": 1}
        result = generate_cap_array(units, 100e-15)
        for name, count in units.items():
            assert result.units_of(name) == count

    @given(st.dictionaries(
        st.sampled_from(["a", "b", "c"]),
        st.integers(min_value=1, max_value=15).filter(lambda n: n % 2 == 1),
        min_size=1, max_size=3))
    @settings(max_examples=30, deadline=None)
    def test_odd_counts_centroid_error_bounded(self, units):
        errors = centroid_errors(common_centroid_assignment(units))
        side = math.ceil(math.sqrt(sum(units.values())))
        for name in units:
            # Odd caps carry one unpaired unit; its offset is bounded by
            # the array radius, and pairing keeps it well inside that.
            assert errors[name] <= max(1.5, side / 2.0)

    @given(st.dictionaries(
        st.sampled_from(["a", "b", "c", "d"]),
        st.integers(min_value=1, max_value=12),
        min_size=1, max_size=4))
    @settings(max_examples=20, deadline=None)
    def test_geometry_round_trip_byte_stable(self, units):
        from repro.layout.gdslite import write_gds
        first = generate_cap_array(units, 100e-15)
        second = generate_cap_array(units, 100e-15)
        assert first.assignment == second.assignment
        assert write_gds([first.cell]) == write_gds([second.cell])
