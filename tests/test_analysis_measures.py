"""Tests for the opamp measurement utilities."""

import pytest

from repro.analysis.measures import (
    cmrr_db,
    common_mode_gain,
    differential_gain,
    full_characterization,
    output_swing,
    psrr_db,
    systematic_offset,
    unity_step_response,
)
from repro.circuits.library import five_transistor_ota, two_stage_miller


@pytest.fixture(scope="module")
def ota():
    return five_transistor_ota()


class TestGains:
    def test_differential_gain_matches_bode(self, ota):
        # Same number the AC/bode path reports.
        assert differential_gain(ota) == pytest.approx(188.5, rel=0.02)

    def test_common_mode_gain_small(self, ota):
        assert common_mode_gain(ota) < 0.1 * differential_gain(ota)

    def test_cmrr_large_for_matched_pair(self, ota):
        # Perfectly matched devices: CMRR limited only by the tail gds.
        assert cmrr_db(ota) > 60.0

    def test_psrr_positive(self, ota):
        assert psrr_db(ota) > 20.0

    def test_cmrr_degrades_at_high_frequency(self, ota):
        assert cmrr_db(ota, freq=1e8) < cmrr_db(ota, freq=10.0)


class TestDcMeasures:
    def test_offset_small_for_symmetric_cell(self, ota):
        # Systematic offset of a balanced OTA is a few mV at most.
        assert abs(systematic_offset(ota)) < 0.05

    def test_swing_within_rails(self, ota):
        lo, hi = output_swing(ota)
        assert 0.0 <= lo < hi <= 3.3
        assert hi - lo > 1.0  # a healthy OTA swings over a volt


class TestStepResponse:
    def test_follower_slew_matches_bias(self, ota):
        response = unity_step_response(ota)
        # SR = I_tail/CL = 20 uA / 2 pF = 1e7 V/s.
        assert response.slew_rate == pytest.approx(1e7, rel=0.3)

    def test_follower_settles(self, ota):
        response = unity_step_response(ota)
        assert 0 < response.settling_time_1pct < 2e-6

    def test_overshoot_bounded(self, ota):
        # PM ~ 80 degrees: essentially no overshoot.
        response = unity_step_response(ota)
        assert response.overshoot_fraction < 0.1


class TestFullCharacterization:
    def test_datasheet_row_complete(self, ota):
        row = full_characterization(ota)
        assert set(row) == {"gain_db", "gbw", "phase_margin", "cmrr_db",
                            "psrr_db", "offset_v", "swing_low",
                            "swing_high"}

    def test_two_stage_has_more_gain_less_swing_headroom(self, ota):
        two_stage = two_stage_miller()
        row1 = full_characterization(ota)
        row2 = full_characterization(two_stage)
        assert row2["gain_db"] > row1["gain_db"] + 20
