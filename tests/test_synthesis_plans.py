"""Tests for design plans, equation models and the DONALD direction solver."""

import math

import pytest

from repro.synthesis.donald import (
    plan_for,
    solve_performance_from_sizes,
    solve_sizes_from_specs,
)
from repro.synthesis.models import (
    OtaDesign,
    TwoStageDesign,
    ota_performance,
    two_stage_performance,
)
from repro.synthesis.plan_library import (
    build_ota_plan,
    build_two_stage_plan,
    default_plan_library,
)
from repro.synthesis.plans import DesignPlan, PlanError, PlanLibrary


class TestModels:
    def _design(self, **over):
        base = dict(w_in=40e-6, l_in=2e-6, w_load=20e-6, l_load=2e-6,
                    w_tail=30e-6, l_tail=2e-6, i_bias=20e-6, c_load=2e-12)
        base.update(over)
        return OtaDesign(**base)

    def test_ota_gbw_formula(self):
        d = self._design()
        perf = ota_performance(d)
        gm = math.sqrt(2 * 100e-6 * 20 * 10e-6)
        assert perf["gbw"] == pytest.approx(gm / (2 * math.pi * 2e-12), rel=1e-9)

    def test_ota_gain_increases_with_length(self):
        # Longer channels: same gm but lower lambda-driven gds... in the
        # level-1 model lambda is fixed, so gain depends on gm/I only; a
        # larger W/L raises gm hence gain.
        lo = ota_performance(self._design(w_in=20e-6))
        hi = ota_performance(self._design(w_in=80e-6))
        assert hi["gain"] > lo["gain"]

    def test_ota_slew_rate(self):
        perf = ota_performance(self._design(i_bias=40e-6, c_load=4e-12))
        assert perf["slew_rate"] == pytest.approx(40e-6 / 4e-12, rel=1e-9)

    def test_ota_power_scales_with_current(self):
        p1 = ota_performance(self._design(i_bias=10e-6))["power"]
        p2 = ota_performance(self._design(i_bias=20e-6))["power"]
        assert p2 == pytest.approx(2 * p1, rel=1e-9)

    def test_ota_model_matches_simulator(self):
        """First-order model within ~35% of the simulator on gain and GBW."""
        import numpy as np
        from repro.analysis import ac_analysis, bode_metrics, \
            logspace_frequencies
        from repro.circuits.library import five_transistor_ota
        d = self._design()
        perf = ota_performance(d)
        ckt = five_transistor_ota(d.sizes())
        ckt.vsource("vip", "inp", "0", dc=1.5, ac=1.0)
        ckt.vsource("vin_", "inn", "0", dc=1.5)
        res = ac_analysis(ckt, logspace_frequencies(10, 1e9, 6))
        m = bode_metrics(res, "out")
        assert m.dc_gain == pytest.approx(perf["gain"], rel=0.35)
        assert m.unity_gain_freq == pytest.approx(perf["gbw"], rel=0.35)

    def test_two_stage_gain_product(self):
        d = TwoStageDesign(w_in=60e-6, l_in=2e-6, w_load=30e-6, l_load=2e-6,
                           w_tail=40e-6, l_tail=2e-6, w_p2=120e-6,
                           l_p2=1.5e-6, c_comp=3e-12, i_bias=25e-6,
                           c_load=5e-12)
        perf = two_stage_performance(d)
        assert perf["gain"] > 30 * ota_performance(self._design())["gain"] / 30
        assert perf["gbw"] == pytest.approx(
            math.sqrt(2 * 100e-6 * 30 * 12.5e-6) / (2 * math.pi * 3e-12),
            rel=1e-6)


class TestPlanInfrastructure:
    def test_feed_forward_enforced(self):
        plan = DesignPlan("p", ["x"], [])
        plan.compute("x", lambda c: 1.0)
        plan.compute("x2", lambda c: c["x"] + 1)
        plan.step("rewrite", lambda c: {"x": 99.0})
        with pytest.raises(PlanError, match="feed-forward"):
            plan.execute({})

    def test_missing_outputs_detected(self):
        plan = DesignPlan("p", ["x", "y"], [])
        plan.compute("x", lambda c: 1.0)
        with pytest.raises(PlanError, match="without producing"):
            plan.execute({})

    def test_check_failure_diagnosed(self):
        plan = DesignPlan("p", [], [])
        plan.check("sanity", lambda c: c["a"] > 0, "a must be positive")
        with pytest.raises(PlanError, match="a must be positive") as ei:
            plan.execute({"a": -1.0})
        assert ei.value.step == "sanity"

    def test_trace_records_steps(self):
        plan = DesignPlan("p", ["x"], [])
        plan.compute("x", lambda c: 2.0, "the answer")
        result = plan.execute({})
        assert len(result.trace) == 1
        assert "x=2" in result.explain()

    def test_subplan_prefixing(self):
        inner = DesignPlan("inner", ["w"], [])
        inner.compute("w", lambda c: c["spec"] * 2)
        outer = DesignPlan("outer", ["stage1_w"], [])
        outer.subplan("stage1", inner, lambda c: {"spec": c["top_spec"]},
                      result_prefix="stage1_")
        result = outer.execute({"top_spec": 5.0})
        assert result.sizes["stage1_w"] == 10.0

    def test_library_duplicate_rejected(self):
        lib = PlanLibrary()
        lib.register(DesignPlan("a", [], []))
        with pytest.raises(ValueError):
            lib.register(DesignPlan("a", [], []))

    def test_library_unknown_plan(self):
        lib = default_plan_library()
        with pytest.raises(KeyError):
            lib.get("nonexistent_topology")
        assert "five_transistor_ota" in lib


class TestOtaPlan:
    SPECS = {"gbw": 10e6, "slew_rate": 5e6, "c_load": 2e-12,
             "gain": 100.0, "vdd": 3.3}

    def test_meets_gbw(self):
        result = build_ota_plan().execute(self.SPECS)
        assert result.performance["gbw"] == pytest.approx(10e6, rel=0.01)

    def test_meets_slew(self):
        result = build_ota_plan().execute(self.SPECS)
        assert result.performance["slew_rate"] >= 5e6 * 0.99

    def test_infeasible_gain_diagnosed(self):
        specs = dict(self.SPECS, gain=20000.0)
        with pytest.raises(PlanError, match="gain"):
            build_ota_plan().execute(specs)

    def test_plan_is_fast(self):
        import time
        plan = build_ota_plan()
        t0 = time.perf_counter()
        for _ in range(100):
            plan.execute(self.SPECS)
        per_run = (time.perf_counter() - t0) / 100
        assert per_run < 2e-3  # plans execute in ~microseconds-to-ms

    def test_sizes_feed_simulator(self):
        """Plan output builds a circuit whose simulated GBW is in range."""
        import numpy as np
        from repro.analysis import ac_analysis, bode_metrics, \
            logspace_frequencies
        from repro.circuits.library import five_transistor_ota
        result = build_ota_plan().execute(self.SPECS)
        sizes = {k: v for k, v in result.sizes.items()}
        ckt = five_transistor_ota(sizes)
        ckt.vsource("vip", "inp", "0", dc=1.5, ac=1.0)
        ckt.vsource("vin_", "inn", "0", dc=1.5)
        m = bode_metrics(
            ac_analysis(ckt, logspace_frequencies(100, 1e9, 6)), "out")
        assert m.unity_gain_freq == pytest.approx(10e6, rel=0.5)


class TestTwoStagePlan:
    SPECS = {"gain": 2000.0, "gbw": 20e6, "slew_rate": 10e6,
             "c_load": 5e-12, "phase_margin": 60.0, "vdd": 3.3}

    def test_meets_gbw_and_gain(self):
        result = build_two_stage_plan().execute(self.SPECS)
        assert result.performance["gbw"] == pytest.approx(20e6, rel=0.02)
        assert result.performance["gain"] >= 2000.0

    def test_phase_margin_positive(self):
        result = build_two_stage_plan().execute(self.SPECS)
        assert result.performance["phase_margin"] > 45.0


class TestDonaldDirections:
    def test_forward_matches_plan_equations(self):
        sol = solve_sizes_from_specs(gbw=10e6, slew_rate=5e6, c_load=2e-12)
        gm = 2 * math.pi * 10e6 * 2e-12
        assert sol["gm_in"] == pytest.approx(gm, rel=1e-6)
        assert sol["i_tail"] == pytest.approx(5e6 * 2e-12, rel=1e-6)

    def test_backward_consistency(self):
        forward = solve_sizes_from_specs(gbw=10e6, slew_rate=5e6,
                                         c_load=2e-12)
        backward = solve_performance_from_sizes(
            w_over_l_in=forward["w_over_l_in"],
            i_tail=forward["i_tail"], c_load=2e-12)
        assert backward["gbw"] == pytest.approx(10e6, rel=1e-4)
        assert backward["slew_rate"] == pytest.approx(5e6, rel=1e-4)

    def test_plan_ordering_is_sequential(self):
        plan = plan_for(["gbw", "slew_rate", "c_load", "vdd"])
        # The OTA model decomposes fully: no simultaneous blocks needed.
        assert all(size == 1 for size in plan.block_sizes())


class TestHierarchicalPlan:
    SPECS = {"gain": 2000.0, "gbw": 20e6, "slew_rate": 10e6,
             "c_load": 5e-12, "vdd": 3.3}

    def test_hierarchical_matches_flat_gbw(self):
        from repro.synthesis.plan_library import (
            build_hierarchical_two_stage_plan,
        )
        hier = build_hierarchical_two_stage_plan().execute(self.SPECS)
        flat = build_two_stage_plan().execute(
            dict(self.SPECS, phase_margin=60.0))
        assert hier.performance["gbw"] == pytest.approx(
            flat.performance["gbw"], rel=0.05)
        assert hier.performance["gain"] >= 2000.0

    def test_subplan_results_prefixed(self):
        from repro.synthesis.plan_library import (
            build_hierarchical_two_stage_plan,
        )
        result = build_hierarchical_two_stage_plan().execute(self.SPECS)
        assert "stage1_w_in" in result.sizes
        assert result.sizes["stage1_w_in"] > 0

    def test_subplan_trace_visible(self):
        from repro.synthesis.plan_library import (
            build_hierarchical_two_stage_plan,
        )
        result = build_hierarchical_two_stage_plan().execute(self.SPECS)
        assert "subplan diff_input_stage" in result.explain()

    def test_input_stage_plan_standalone(self):
        from repro.synthesis.plan_library import build_input_stage_plan
        result = build_input_stage_plan().execute(
            {"gm_target": 1e-4, "i_tail": 20e-6})
        assert result.performance["gm_achieved"] == pytest.approx(
            1e-4, rel=0.01)

    def test_library_has_all_plans(self):
        lib = default_plan_library()
        assert set(lib.names()) >= {
            "five_transistor_ota", "two_stage_miller",
            "diff_input_stage", "two_stage_hierarchical"}
