"""Table 1: AMGIE pulse-detector frontend synthesis vs. expert design.

Paper numbers (manual → synthesis): peaking 1.1 → 1.1 µs, rate 200 → 294
kHz, noise 750 → 905 rms e⁻, gain 20 → 21 V/fC, range ±1 → ±1.5 V,
power 40 → 7 mW (≈5.7×), area 0.7 → 0.6 mm².

Shape checks: all specs met, power reduced by a mid-single-digit to
low-double-digit factor, synthesis noise close to (but under) the bound,
output range larger than manual's.
"""

from conftest import report

from repro.synthesis.pulse_detector import (
    MANUAL_DESIGN,
    pulse_detector_performance,
    pulse_detector_specs,
    synthesize_pulse_detector,
)


def test_table1_pulse_detector(benchmark):
    manual = pulse_detector_performance(MANUAL_DESIGN.sizes())
    specs = pulse_detector_specs()
    assert specs.all_satisfied(manual)

    result = benchmark.pedantic(
        lambda: synthesize_pulse_detector(seed=1), rounds=1, iterations=1)
    synth = result.performance
    assert result.feasible, specs.report(synth).to_text()

    power_ratio = manual["power"] / synth["power"]
    report("Table 1: pulse-detector synthesis", [
        ("peaking time manual (us)", "1.1", f"{manual['peaking_time'] * 1e6:.2f}"),
        ("peaking time synthesis (us)", "1.1",
         f"{synth['peaking_time'] * 1e6:.2f}"),
        ("counting rate manual (kHz)", "200",
         f"{manual['counting_rate'] / 1e3:.0f}"),
        ("counting rate synthesis (kHz)", "294",
         f"{synth['counting_rate'] / 1e3:.0f}"),
        ("noise manual (rms e-)", "750", f"{manual['noise_enc']:.0f}"),
        ("noise synthesis (rms e-)", "905", f"{synth['noise_enc']:.0f}"),
        ("gain synthesis (V/fC)", "21", f"{synth['gain']:.1f}"),
        ("output range manual (V)", "1.0",
         f"{manual['output_range']:.2f}"),
        ("output range synthesis (V)", "1.5",
         f"{synth['output_range']:.2f}"),
        ("power manual (mW)", "40", f"{manual['power'] * 1e3:.1f}"),
        ("power synthesis (mW)", "7", f"{synth['power'] * 1e3:.1f}"),
        ("power reduction", "5.7x", f"{power_ratio:.1f}x"),
        ("area manual (mm^2)", "0.7", f"{manual['area'] * 1e6:.2f}"),
        ("area synthesis (mm^2)", "0.6", f"{synth['area'] * 1e6:.2f}"),
    ])

    # --- shape assertions -------------------------------------------------
    import pytest
    # Manual column calibration.
    assert manual["peaking_time"] == pytest.approx(1.1e-6, rel=0.05)
    assert manual["noise_enc"] == pytest.approx(750, rel=0.1)
    assert manual["power"] == pytest.approx(40e-3, rel=0.1)
    assert manual["area"] == pytest.approx(0.7e-6, rel=0.15)
    # Synthesis beats manual on power by a large factor.
    assert 3.0 <= power_ratio <= 16.0
    # Synthesis trades noise margin for power: closer to the bound.
    assert manual["noise_enc"] < synth["noise_enc"] <= 1000.0
    # Output range grows (paper: ±1 → ±1.5).
    assert synth["output_range"] > manual["output_range"]
    # Area comparable or smaller.
    assert synth["area"] <= manual["area"] * 1.1
