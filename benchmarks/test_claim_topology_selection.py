"""Claim C5: topology selection picks the right topology per spec region.

The tutorial describes rule-based selection (OASYS/OPASYN), interval
boundary checking [15], GA-based selection (DARWIN [28]) and boolean
optimization [26].  The testable shape: across a spec sweep, all
selectors agree with the exhaustive (enumeration) reference — cheap
topologies win easy specs, high-gain topologies win hard ones, and the
interval pre-filter never discards the topology the reference picks.
"""

from conftest import report

from repro.core.specs import Spec, SpecSet
from repro.synthesis import (
    default_candidates,
    select_enumerate,
    select_genetic,
    select_interval,
    select_rule_based,
)

SWEEP = [
    ("easy: 40 dB", SpecSet([Spec.at_least("gain_db", 40.0),
                             Spec.at_least("gbw", 5e6),
                             Spec.minimize("power", good=1e-4)])),
    ("medium: 60 dB", SpecSet([Spec.at_least("gain_db", 60.0),
                               Spec.at_least("gbw", 5e6),
                               Spec.minimize("power", good=1e-4)])),
    ("hard: 80 dB", SpecSet([Spec.at_least("gain_db", 80.0),
                             Spec.at_least("gbw", 5e6),
                             Spec.minimize("power", good=1e-4)])),
]


def test_c5_topology_selection_agreement(benchmark):
    candidates = default_candidates()
    rows = []
    agreements = 0
    for label, specs in SWEEP:
        reference = select_enumerate(specs, candidates, seed=1)
        ruled = select_rule_based(specs, candidates)
        interval = select_interval(specs, candidates)
        ga = select_genetic(specs, candidates, generations=25,
                            population=36, seed=2)
        rows.append((f"{label}: reference (exhaustive)", "-",
                     reference.topology))
        rows.append((f"{label}: rule-based first pick", "agrees",
                     ruled[0] if ruled else "none"))
        rows.append((f"{label}: GA pick", "agrees", ga.topology))
        # Interval filter must never discard the reference winner.
        assert reference.topology in interval
        assert reference.sizing.feasible
        assert ga.sizing.feasible
        if ruled and ruled[0] == reference.topology:
            agreements += 1
    rows.append(("rule-based agreement with reference", "high",
                 f"{agreements}/{len(SWEEP)}"))
    report("Claim C5: topology selection", rows)
    assert agreements >= 2

    easy = SWEEP[0][1]
    benchmark(lambda: select_rule_based(easy, candidates))


def test_c5_generated_space_prune_funnel(benchmark):
    """The compositional generator opens the selection space ~40x (3
    canned registry entries -> 100+ generated structures) while symbolic
    pruning keeps the sized set within a constant factor of the legacy
    enumeration's."""
    from repro.synthesis.compose import (
        generate_topologies,
        prune_structures,
        rank_structures,
    )

    specs = SWEEP[1][1]  # medium: 60 dB
    topologies = generate_topologies()
    ranked = rank_structures(topologies, specs)
    survivors = prune_structures(ranked)
    rows = [
        ("canned registry size", "~7 opamps", str(len(default_candidates()))),
        ("generated structures", ">= 100", str(len(topologies))),
        ("sized after symbolic prune", f"<= {len(ranked) // 5}",
         str(len(survivors))),
        ("prune ratio", ">= 5x",
         f"{len(ranked) / max(len(survivors), 1):.1f}x"),
    ]
    report("Claim C5b: compositional generation + symbolic prune", rows)
    assert len(topologies) >= 100
    assert len(ranked) >= 5 * len(survivors)
    # The reference winner's structural family must survive the prune:
    # the best-ranked survivors are real, simulable opamps.
    assert survivors[0].score > float("-inf")

    subset = generate_topologies(seed=0, sample=12)
    benchmark(lambda: prune_structures(rank_structures(subset, specs)))
