"""Fig. 2: automatic KOAN/ANAGRAM II cell layouts vs. manual-style ones.

The paper shows six layouts of the identical CMOS opamp — four manual,
two automatic — and argues "the automatic layouts compare favorably to
the manual ones".

Here the manual proxies are the four procedural template styles; the
automatic layouts come from the KOAN placer + ANAGRAM router.  Shape
checks: both automatic layouts are legal (no overlap, exactly symmetric,
fully routed) and their area/wirelength are competitive (no worse than
the manual proxies by more than 30%).
"""

import pytest
from conftest import report

from repro.circuits.library import five_transistor_ota
from repro.layout import (
    STYLES,
    KoanPlacer,
    RoutingRequest,
    SENSITIVE,
    compact_placement,
    extract_constraints,
    extract_parasitics,
    generate_device,
    has_overlaps,
    procedural_cell_layout,
    route_placement,
    symmetry_error,
)
from repro.opt.anneal import AnnealSchedule


def _route(placement, layouts, constraints):
    nets = {}
    for name, obj in placement.objects.items():
        lay = layouts[name]
        for port, net in lay.port_nets.items():
            if port in lay.cell.ports:
                x, y = obj.port_position(port)
                nets.setdefault(net, []).append(
                    (x, y, lay.cell.ports[port].layer))
    requests = [
        RoutingRequest(net, pins,
                       SENSITIVE if net in ("inp", "inn") else "neutral")
        for net, pins in nets.items() if len(pins) > 1
    ]
    return route_placement(placement, requests, constraints.net_pairs)


def _layout_metrics(placement, layouts, constraints):
    routing, router = _route(placement, layouts, constraints)
    extraction = extract_parasitics(routing, router)
    return {
        "area": placement.bbox().area / 1e6,
        "wire": routing.total_length / 1e3,
        "cap": extraction.total_wire_cap() * 1e15,
        "failed": len(routing.failed),
    }


def _device_layouts(circuit):
    layouts = {}
    for dev in circuit.devices:
        try:
            layouts[dev.name] = generate_device(dev)
        except TypeError:
            continue
    return layouts


def test_fig2_six_layouts(benchmark):
    circuit = five_transistor_ota()
    constraints = extract_constraints(circuit)

    manual = {}
    for style in STYLES:
        template = procedural_cell_layout(circuit, style)
        manual[style] = _layout_metrics(template.placement,
                                        template.layouts,
                                        template.constraints)
        assert manual[style]["failed"] == 0

    layouts = _device_layouts(circuit)

    def automatic(seed):
        placer = KoanPlacer(list(layouts.values()), constraints, seed=seed)
        result = placer.run(AnnealSchedule(moves_per_temperature=200,
                                           cooling=0.92,
                                           max_evaluations=30000))
        compact_placement(result.placement, constraints)
        return result

    auto_result = benchmark.pedantic(lambda: automatic(1), rounds=1,
                                     iterations=1)
    auto1 = _layout_metrics(auto_result.placement, layouts, constraints)
    auto2_result = automatic(2)
    auto2 = _layout_metrics(auto2_result.placement, layouts, constraints)

    # Legality of the automatic layouts.
    for result in (auto_result, auto2_result):
        assert not has_overlaps(result.placement)
        assert symmetry_error(result.placement, constraints) == 0
    assert auto1["failed"] == 0 and auto2["failed"] == 0

    best_manual_area = min(m["area"] for m in manual.values())
    best_auto_area = min(auto1["area"], auto2["area"])
    rows = [(f"manual {style} area (um^2)", "comparable",
             f"{m['area']:.0f}") for style, m in manual.items()]
    rows += [
        ("automatic #1 area (um^2)", "comparable", f"{auto1['area']:.0f}"),
        ("automatic #2 area (um^2)", "comparable", f"{auto2['area']:.0f}"),
        ("auto/manual best-area ratio", "~1x",
         f"{best_auto_area / best_manual_area:.2f}x"),
        ("auto wirelength (um)", "comparable", f"{auto1['wire']:.0f}"),
    ]
    report("Fig. 2: six layouts of the identical opamp", rows)

    # "Compare favorably": automatic no worse than 1.3x the best manual.
    assert best_auto_area <= 1.3 * best_manual_area
