"""Claim C3: symbolic analysis scales to opamp complexity via simplification.

"Computer-aided symbolic analysis is now possible for the ac behavior ...
of analog circuits up to the complexity of an entire 741 opamp" (§2.2,
[12]) — made possible by magnitude-based term pruning; exact expressions
explode combinatorially.

Shape checks: exact term count grows explosively with circuit size;
prune-during-expansion cuts terms and CPU by large factors at small
accuracy loss; the symbolic function matches the numeric simulator.
"""

import time

import numpy as np
from conftest import report

from repro.analysis import ac_analysis
from repro.circuits.library import (
    common_source_amp,
    five_transistor_ota,
    two_stage_miller,
    voltage_divider,
)
from repro.symbolic import SymbolicAnalyzer


def _testbench(builder):
    ckt = builder()
    ckt.vsource("vip", "inp", "0", dc=1.5, ac=1.0)
    ckt.vsource("vin_", "inn", "0", dc=1.5)
    return ckt


def test_c3_symbolic_scaling(benchmark):
    cases = [
        ("divider (2R)", voltage_divider(1e3, 1e3, 1.0), "out"),
        ("common source (1T)", common_source_amp(vgs=1.0), "out"),
        ("5T OTA", _testbench(five_transistor_ota), "out"),
        ("two-stage opamp (8T)", _testbench(two_stage_miller), "out"),
    ]
    rows = []
    exact_counts = []
    for name, circuit, out in cases:
        analyzer = SymbolicAnalyzer(circuit)
        t0 = time.perf_counter()
        tf = analyzer.transfer_function(out)
        t_exact = time.perf_counter() - t0
        exact_counts.append(tf.term_count())
        rows.append((f"{name}: exact terms", "grows fast",
                     f"{tf.term_count()}"))
        rows.append((f"{name}: exact CPU", "grows fast",
                     f"{t_exact * 1e3:.1f} ms"))
        # Accuracy vs the numeric simulator at DC-ish frequency.
        numeric = abs(ac_analysis(circuit, np.array([10.0])).v(out)[0])
        symbolic = abs(tf.evaluate_jw(10.0))
        assert symbolic == _approx(numeric, 1e-4)

    # Explosive growth: each step at least 5x more terms.
    assert exact_counts[1] > exact_counts[0]
    assert exact_counts[2] > 5 * exact_counts[1]
    assert exact_counts[3] > 5 * exact_counts[2]

    # Simplification (the 741-scale enabler) on the two-stage opamp.
    two_stage = _testbench(two_stage_miller)
    analyzer = SymbolicAnalyzer(two_stage)
    t0 = time.perf_counter()
    exact = analyzer.transfer_function("out")
    t_exact = time.perf_counter() - t0
    t0 = time.perf_counter()
    pruned = analyzer.transfer_function("out", prune_tol=1e-2)
    t_pruned = time.perf_counter() - t0
    g_exact = abs(exact.evaluate_jw(10.0))
    g_pruned = abs(pruned.evaluate_jw(10.0))
    error = abs(g_pruned - g_exact) / g_exact
    rows += [
        ("two-stage pruned terms", "orders smaller",
         f"{pruned.term_count()} (vs {exact.term_count()})"),
        ("two-stage pruned CPU", "orders faster",
         f"{t_pruned * 1e3:.0f} ms (vs {t_exact * 1e3:.0f} ms)"),
        ("pruning dc-gain error", "small", f"{error:.2%}"),
    ]
    report("Claim C3: symbolic analysis scaling", rows)
    assert pruned.term_count() < exact.term_count() / 10
    assert t_pruned < t_exact
    assert error < 0.05

    ota = _testbench(five_transistor_ota)
    benchmark(lambda: SymbolicAnalyzer(ota).transfer_function("out"))


def _approx(ref, rel):
    import pytest
    return pytest.approx(ref, rel=rel)
