"""Claim C4: exact stack enumeration is exponential; the fast extractor
is near-linear and still optimal.

"[43] gave an exact algorithm to extract all the optimal stacks", "which
can be time-consuming since the underlying algorithm is exponential";
"[45] ... extracts one optimal set of stacks very fast" (an O(n)
algorithm, per the DAC'96 reference).

Shape checks: the number of optimal stackings grows super-linearly with
parallel-device count while the fast extractor's runtime grows gently,
and the fast extractor always achieves the Euler lower bound.
"""

import time

from conftest import report

from repro.circuits.devices import NMOS_DEFAULT
from repro.circuits.netlist import Circuit
from repro.layout.stacking import (
    enumerate_stackings,
    extract_stacks,
    group_devices,
    minimum_stack_count,
)


def _parallel_bank(n: int) -> Circuit:
    """n parallel devices between two nets — the enumeration worst case."""
    c = Circuit(f"bank_{n}")
    for i in range(n):
        c.mosfet(f"m{i}", "a", f"g{i}", "b", "0", NMOS_DEFAULT,
                 10e-6, 1e-6)
    return c


def _chain_mesh(n: int) -> Circuit:
    """A chain with cross links — a realistic mixed structure."""
    c = Circuit(f"mesh_{n}")
    for i in range(n):
        c.mosfet(f"m{i}", f"n{i + 1}", f"g{i}", f"n{i}", "0",
                 NMOS_DEFAULT, 10e-6, 1e-6)
    for i in range(0, n - 2, 3):
        c.mosfet(f"x{i}", f"n{i}", f"gx{i}", f"n{i + 2}", "0",
                 NMOS_DEFAULT, 10e-6, 1e-6)
    return c


def test_c4_stacking_complexity(benchmark):
    rows = []
    enum_counts = []
    enum_times = []
    for n in (2, 4, 6, 8):
        bank = _parallel_bank(n)
        t0 = time.perf_counter()
        partitions = enumerate_stackings(bank.mosfets, limit=200_000)
        t_enum = time.perf_counter() - t0
        enum_counts.append(len(partitions))
        enum_times.append(t_enum)
        rows.append((f"exact enumeration n={n}", "exponential count",
                     f"{len(partitions)} in {t_enum * 1e3:.1f} ms"))
    # Super-linear growth in the count of optimal stackings.
    assert enum_counts[0] < enum_counts[1] < enum_counts[2] < enum_counts[3]
    assert enum_counts[3] > 8 * enum_counts[1]

    fast_times = []
    for n in (10, 40, 160):
        mesh = _chain_mesh(n)
        t0 = time.perf_counter()
        result = extract_stacks(mesh)
        fast_times.append(time.perf_counter() - t0)
        expected = sum(minimum_stack_count(devs)
                       for devs in group_devices(mesh).values())
        assert result.stack_count == expected  # provably minimum
        rows.append((f"fast extractor n={n}", "near-linear",
                     f"{fast_times[-1] * 1e3:.2f} ms, "
                     f"{result.stack_count} stacks"))
    # Near-linear: 16x devices costs far less than 16^2 = 256x time.
    assert fast_times[2] < 80 * max(fast_times[0], 1e-5)

    report("Claim C4: stack extraction complexity", rows)

    mesh = _chain_mesh(40)
    benchmark(lambda: extract_stacks(mesh))
