"""Claim C1: manufacturability-aware synthesis costs ≈4×–10× CPU.

"The strategy uses a nonlinear infinite programming formulation to search
for the worst-case corners ... does increase the CPU time required (e.g.,
by roughly 4X-10X)" (§2.2, [31]).

Shape checks: per-candidate model-evaluation cost grows by the corner
count (9 = nominal + 2³ vertices, inside the paper's band when measured
as wall-clock overhead), and the corner-aware design is markedly more
robust under Monte-Carlo variations.
"""

import time

from conftest import report

from repro.core.specs import Spec, SpecSet
from repro.opt.anneal import AnnealSchedule
from repro.synthesis import (
    EquationBasedSizer,
    ManufacturableSizer,
    default_candidates,
    standard_corners,
    yield_estimate,
)

SPECS = SpecSet([
    Spec.at_least("gain_db", 40.0),
    Spec.at_least("gbw", 8e6),
    Spec.minimize("power", good=1e-4),
])
SCHEDULE = AnnealSchedule(moves_per_temperature=80, cooling=0.88,
                          max_evaluations=4000)


def test_c1_corner_overhead_and_robustness(benchmark):
    cand = default_candidates()[0]

    t0 = time.perf_counter()
    nominal = EquationBasedSizer(cand.model, cand.space, SPECS,
                                 schedule=SCHEDULE, seed=1).run()
    t_nominal = time.perf_counter() - t0

    corner_sizer = ManufacturableSizer(cand.model, cand.space, SPECS,
                                       schedule=SCHEDULE, seed=1)
    corner = benchmark.pedantic(corner_sizer.run, rounds=1, iterations=1)
    t_corner = corner.runtime_s

    eval_ratio = corner.evaluations / max(nominal.evaluations, 1)
    time_ratio = t_corner / max(t_nominal, 1e-9)

    y_nominal = yield_estimate(cand.model, nominal.sizes, SPECS,
                               n_samples=400, seed=7)
    y_corner = yield_estimate(cand.model, corner.sizes, SPECS,
                              n_samples=400, seed=7)

    report("Claim C1: manufacturability overhead", [
        ("corner count", "worst-case corners", f"{len(standard_corners())}"),
        ("model evaluations ratio", "4x-10x", f"{eval_ratio:.1f}x"),
        ("wall-clock ratio", "4x-10x", f"{time_ratio:.1f}x"),
        ("nominal-design MC yield", "lower", f"{y_nominal:.2f}"),
        ("corner-design MC yield", "higher", f"{y_corner:.2f}"),
    ])

    assert nominal.feasible and corner.feasible
    # The paper's 4x-10x band, with slack for scheduling noise.
    assert 4.0 <= eval_ratio <= 12.0
    assert 2.0 <= time_ratio <= 15.0
    assert y_corner >= y_nominal
    assert y_corner > 0.9
