"""Fig. 1 + claim C2: knowledge-based vs. optimization-based synthesis.

Fig. 1 contrasts the two paradigms structurally; the prose claims design
plans give "fast performance space explorations" while optimization-based
approaches are open but slow, with simulation-in-the-loop slowest of all
(the FRIDGE "long run times").

Benchmarked: one sizing task per paradigm on the same OTA specs.
Shape checks: every paradigm meets the specs; the runtime ordering is
plan ≪ equation-based ≪ simulation-based, with the plan at least 10×
faster per design point than the equation-based optimizer.
"""

import time

import pytest
from conftest import report

from repro.circuits.library import five_transistor_ota
from repro.core.specs import Spec, SpecSet
from repro.opt.anneal import AnnealSchedule
from repro.synthesis import (
    DesignSpace,
    EquationBasedSizer,
    SimulationBasedSizer,
    SimulationEvaluator,
    default_candidates,
    default_plan_library,
)

SPECS = SpecSet([
    Spec.at_least("gain_db", 40.0),
    Spec.at_least("gbw", 10e6),
    Spec.at_least("slew_rate", 5e6),
    Spec.minimize("power", good=1e-4),
])

PLAN_INPUT = {"gbw": 10e6, "slew_rate": 5e6, "c_load": 2e-12,
              "gain": 100.0, "vdd": 3.3}


def _sim_space():
    return DesignSpace(
        variables={"w_in": (5e-6, 500e-6), "w_load": (5e-6, 200e-6),
                   "w_tail": (5e-6, 200e-6), "i_bias": (2e-6, 500e-6)},
        fixed={"l_in": 2e-6, "l_load": 2e-6, "l_tail": 2e-6,
               "c_load": 2e-12, "vdd": 3.3})


def _ota_builder(sizes):
    keys = ("w_in", "l_in", "w_load", "l_load", "w_tail", "l_tail",
            "i_bias", "c_load", "vdd")
    return five_transistor_ota({k: v for k, v in sizes.items()
                                if k in keys})


def test_fig1_knowledge_based_plan(benchmark):
    plan = default_plan_library().get("five_transistor_ota")
    result = benchmark(lambda: plan.execute(PLAN_INPUT))
    perf = result.performance
    assert perf["gbw"] >= 10e6 * 0.99
    assert perf["slew_rate"] >= 5e6 * 0.99
    assert perf["gain"] >= 100.0


def test_fig1_equation_based_optimization(benchmark):
    cand = default_candidates()[0]
    sizer = EquationBasedSizer(cand.model, cand.space, SPECS, seed=1)
    result = benchmark.pedantic(sizer.run, rounds=1, iterations=1)
    assert result.feasible


def test_fig1_simulation_based_optimization(benchmark):
    sizer = SimulationBasedSizer(
        SimulationEvaluator(builder=_ota_builder), _sim_space(), SPECS,
        schedule=AnnealSchedule(moves_per_temperature=25, cooling=0.8,
                                max_evaluations=700),
        seed=2)
    result = benchmark.pedantic(sizer.run, rounds=1, iterations=1)
    assert result.performance.get("gain_db", 0) >= 40.0
    assert result.performance.get("gbw", 0) >= 10e6 * 0.8


def test_fig1_c2_runtime_ordering(benchmark):
    """Claim C2: plans are orders of magnitude faster per design point."""
    plan = default_plan_library().get("five_transistor_ota")
    t0 = time.perf_counter()
    for _ in range(50):
        plan.execute(PLAN_INPUT)
    t_plan = (time.perf_counter() - t0) / 50

    cand = default_candidates()[0]
    t0 = time.perf_counter()
    eq_result = EquationBasedSizer(cand.model, cand.space, SPECS,
                                   seed=1).run()
    t_eq = time.perf_counter() - t0

    sim_sizer = SimulationBasedSizer(
        SimulationEvaluator(builder=_ota_builder), _sim_space(), SPECS,
        schedule=AnnealSchedule(moves_per_temperature=25, cooling=0.8,
                                max_evaluations=700), seed=2)
    t0 = time.perf_counter()
    sim_sizer.run()
    t_sim = time.perf_counter() - t0

    report("Fig. 1 / C2: synthesis paradigm runtimes", [
        ("design plan per point", "'fast exploration'",
         f"{t_plan * 1e3:.2f} ms"),
        ("equation-based optimization", "minutes-class",
         f"{t_eq:.2f} s"),
        ("simulation-based optimization", "'long run times'",
         f"{t_sim:.2f} s"),
        ("plan vs equation speedup", ">>10x",
         f"{t_eq / t_plan:.0f}x"),
        ("equation vs simulation speedup", ">1x",
         f"{t_sim / t_eq:.1f}x"),
    ])
    assert t_plan * 10 < t_eq, "plans must be >=10x faster than optimization"
    assert t_eq < t_sim, "simulation-in-the-loop must be slowest"
    assert eq_result.feasible
    benchmark(lambda: plan.execute(PLAN_INPUT))
