"""Macro mesh signoff: sparse factor-once metrics vs dense re-solves.

The memory-macro signoff leans on the shared solver layer's sparse,
memoized ``PowerGrid.dc_solve``: the IR-drop, segment-current and EM
metrics of one sized mesh reuse a single CSC factorization + solve.  The
'before' is what a naive signoff does — re-assemble the dense
conductance matrix and ``np.linalg.solve`` it again for every metric —
which at 64x64-macro mesh scale (a few thousand nodes) is the
difference between interactive annealing and minutes per candidate.

Floor: the sparse path must hold >= 5x over the dense re-solve baseline
on the full-density 64x64 mesh.
"""

import time

import numpy as np
from conftest import report

from repro.macro import MacroSpec, MeshSpec, SignoffSpec, route_mesh, tile_macro
from repro.macro.signoff import _attach_loads
from repro.msystem.powergrid import PACKAGE_R

FLOOR = 5.0


def _build_grid():
    macro = tile_macro(MacroSpec(rows=64, cols=64, strap_every=4,
                                 name="bench64"))
    n_h = len(macro.blockages.free_h_tracks)
    n_v = len(macro.blockages.free_v_tracks)
    mesh = route_mesh(macro, MeshSpec(n_h, n_v, 8_000, 8_000))
    spec = SignoffSpec()
    loads, peaks, analog = _attach_loads(macro, mesh, spec)
    return mesh.build_power_grid(loads, peaks, analog)


def _sparse_metrics(grid):
    grid._dc_cache = None  # cold start: one factorization, reused 3x
    ir = grid.worst_ir_drop()
    currents = grid.segment_currents()
    em = grid.em_violations()
    return ir, currents, em


def _dense_resolve_metrics(grid):
    """The naive 'before': dense assembly + np.linalg.solve per metric."""
    n = grid.n_nodes

    def resolve():
        g_mat = np.zeros((n, n))
        for seg in grid.segments:
            g = 1.0 / seg.resistance
            a, b = seg.node_a, seg.node_b
            g_mat[a, a] += g
            g_mat[b, b] += g
            g_mat[a, b] -= g
            g_mat[b, a] -= g
        for pad in grid.pad_nodes:
            g_mat[pad, pad] += 1.0 / PACKAGE_R
        rhs = np.zeros(n)
        for pad in grid.pad_nodes:
            rhs[pad] += grid.vdd / PACKAGE_R
        for node, current in grid.load_currents.items():
            rhs[node] -= current
        return np.linalg.solve(g_mat, rhs)

    v = resolve()
    ir = max(grid.vdd - v[node] for node in grid.load_currents)
    v = resolve()
    currents = {seg.name: abs(v[seg.node_a] - v[seg.node_b]) / seg.resistance
                for seg in grid.segments}
    v = resolve()
    em = [seg.name for seg in grid.segments
          if currents[seg.name] > seg.em_current_limit()]
    return ir, currents, em


def test_macro_signoff_sparse_vs_dense(benchmark):
    grid = _build_grid()
    assert grid.n_nodes > 1_000  # a real mesh, not a toy

    # Conformance first: both paths must report identical physics.
    sparse_ir, sparse_cur, sparse_em = _sparse_metrics(grid)
    dense_ir, dense_cur, dense_em = _dense_resolve_metrics(grid)
    np.testing.assert_allclose(sparse_ir, dense_ir, rtol=1e-8)
    assert sparse_em == dense_em
    for name in sparse_cur:
        np.testing.assert_allclose(sparse_cur[name], dense_cur[name],
                                   rtol=1e-7, atol=1e-15)

    rounds = 3
    t0 = time.perf_counter()
    for _ in range(rounds):
        _dense_resolve_metrics(grid)
    dense_s = (time.perf_counter() - t0) / rounds

    sparse_result = benchmark.pedantic(lambda: _sparse_metrics(grid),
                                       rounds=rounds, iterations=1)
    sparse_s = benchmark.stats.stats.mean
    speedup = dense_s / sparse_s

    report("Macro signoff: sparse factor-once vs dense re-solve (64x64)", [
        ("mesh nodes", "-", f"{grid.n_nodes}"),
        ("mesh segments", "-", f"{len(grid.segments)}"),
        ("dense re-solve per signoff (ms)", "-", f"{dense_s * 1e3:.1f}"),
        ("sparse signoff (ms)", "-", f"{sparse_s * 1e3:.1f}"),
        ("speedup", f">= {FLOOR:.0f}x", f"{speedup:.1f}x"),
        ("worst IR drop (mV)", "-", f"{sparse_result[0] * 1e3:.2f}"),
    ])
    assert speedup >= FLOOR, (
        f"sparse signoff speedup {speedup:.2f}x below the {FLOOR}x floor")
