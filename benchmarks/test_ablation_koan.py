"""Ablation A1: KOAN's analog-specific placement features earn their keep.

KOAN's distinguishing features over a plain digital annealing placer
(§3.1): enforced symmetry groups and the dynamic diffusion-merge reward.
The ablation toggles each feature on the same OTA placement problem:

* without symmetry enforcement, the differential pair ends up asymmetric
  (mismatch — fatal for offset/CMRR, invisible to area/wirelength);
* without the merge bonus, fewer abuttable diffusion pairs end adjacent
  (more junction parasitics);
* both features cost little area.
"""

from conftest import report

from repro.circuits.library import five_transistor_ota
from repro.layout.constraints import ConstraintSet, extract_constraints
from repro.layout.devicegen import generate_device
from repro.layout.placer import KoanPlacer, has_overlaps, symmetry_error
from repro.opt.anneal import AnnealSchedule

SCHEDULE = AnnealSchedule(moves_per_temperature=150, cooling=0.9,
                          max_evaluations=20000, stop_after_stale=8)


def _place(constraints, merge_bonus, seed=1):
    ota = five_transistor_ota()
    layouts = [generate_device(d) for d in ota.mosfets]
    placer = KoanPlacer(layouts, constraints, merge_bonus=merge_bonus,
                        seed=seed)
    result = placer.run(schedule=SCHEDULE)
    return placer, result


def test_a1_koan_feature_ablation(benchmark):
    ota = five_transistor_ota()
    constraints = extract_constraints(ota)

    # merge_bonus=0.4: strong enough that the annealer keeps discovered
    # abutments (the default trades them for area/wirelength).
    placer_full, full = benchmark.pedantic(
        lambda: _place(constraints, merge_bonus=0.4), rounds=1,
        iterations=1)
    _, no_sym = _place(ConstraintSet(), merge_bonus=0.4)
    _, no_merge = _place(constraints, merge_bonus=0.0)

    sym_full = symmetry_error(full.placement, constraints)
    sym_none = symmetry_error(no_sym.placement, constraints)

    report("Ablation A1: KOAN feature toggles", [
        ("symmetry error, full KOAN (nm)", "0", f"{sym_full}"),
        ("symmetry error, no enforcement (nm)", "large",
         f"{sym_none}"),
        ("diffusion merges, full KOAN", ">= ablated",
         f"{full.merged_abutments}"),
        ("diffusion merges, no bonus", "<= full",
         f"{no_merge.merged_abutments}"),
        ("area, full KOAN (um^2)", "comparable",
         f"{full.area / 1e6:.0f}"),
        ("area, no symmetry (um^2)", "comparable",
         f"{no_sym.area / 1e6:.0f}"),
    ])

    # All variants must stay legal.
    for result in (full, no_sym, no_merge):
        assert not has_overlaps(result.placement)
    # Symmetry enforcement: exact with it, (almost surely) broken without.
    assert sym_full == 0
    assert sym_none > 0
    # Merge reward: the full placer keeps diffusion abutments the ablated
    # one gives up.
    assert full.merged_abutments >= 1
    assert full.merged_abutments > no_merge.merged_abutments
    # Feature cost stays bounded.
    assert full.area <= 2.5 * no_sym.area
