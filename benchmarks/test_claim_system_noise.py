"""Claim C6: noise-aware system assembly reduces digital→analog coupling.

WRIGHT floorplans with "a fast substrate noise coupling evaluator so that
a simplified view of substrate noise influences the floorplan" [57];
WREN's routers "strive to comply with designer-specified noise rejection
limits" [56].  Shape checks: with the noise terms enabled, the substrate
noise figure of the floorplan and the sensitive-net exposure of the
routing both drop versus the noise-blind runs, at bounded area/length
cost.  The detailed substrate mesh confirms the fast kernel's ranking.
"""

from conftest import report

from repro.msystem.floorplan import WrightFloorplanner
from repro.msystem.global_router import WrenGlobalRouter
from repro.msystem.substrate import SubstrateMesh
from repro.opt.anneal import AnnealSchedule

SCHEDULE = AnnealSchedule(moves_per_temperature=120, cooling=0.88,
                          max_evaluations=10000)


def test_c6_noise_aware_assembly(benchmark, demo_system):
    blocks, nets = demo_system

    def floorplan(noise_weight):
        return WrightFloorplanner(blocks, nets, noise_weight=noise_weight,
                                  seed=3).run(SCHEDULE)

    aware = benchmark.pedantic(lambda: floorplan(1.5), rounds=1,
                               iterations=1)
    blind = floorplan(0.0)

    # Detailed mesh validation of the fast kernel on one fixed die:
    # move the noisiest digital block next to / far from the most
    # sensitive analog block and check both models rank the two layouts
    # identically.
    from repro.msystem.blocks import PlacedBlock
    from repro.msystem.substrate import floorplan_noise
    digital = max(blocks, key=lambda b: b.noise_injection)
    analog = max(blocks, key=lambda b: b.noise_sensitivity)
    die_w, die_h = 6_000_000, 3_000_000
    near = [PlacedBlock(digital, 0, 0),
            PlacedBlock(analog, digital.width + 100_000, 0)]
    far = [PlacedBlock(digital, 0, 0),
           PlacedBlock(analog, die_w - analog.width,
                       die_h - analog.height)]
    mesh = SubstrateMesh(die_w, die_h, nx=30, ny=30)
    mesh_agrees = ((mesh.floorplan_noise(near) > mesh.floorplan_noise(far))
                   == (floorplan_noise(near) > floorplan_noise(far)))

    routing_aware = WrenGlobalRouter(aware, noise_aware=True).route(nets)
    routing_blind = WrenGlobalRouter(aware, noise_aware=False).route(nets)

    report("Claim C6: noise-aware system assembly", [
        ("floorplan noise (fast kernel), aware", "lower",
         f"{aware.noise:.2f}"),
        ("floorplan noise (fast kernel), blind", "higher",
         f"{blind.noise:.2f}"),
        ("mesh vs kernel rank agreement", "agree",
         "yes" if mesh_agrees else "NO"),
        ("area cost of noise awareness", "bounded",
         f"{aware.area / blind.area:.2f}x"),
        ("routing exposure, aware (mm)", "lower",
         f"{routing_aware.total_exposure / 1e6:.2f}"),
        ("routing exposure, blind (mm)", "higher",
         f"{routing_blind.total_exposure / 1e6:.2f}"),
        ("routing length cost", "bounded",
         f"{routing_aware.total_length / max(routing_blind.total_length, 1):.2f}x"),
    ])

    assert aware.noise < blind.noise
    assert mesh_agrees
    assert aware.area <= 2.0 * blind.area  # bounded area cost
    assert routing_aware.total_exposure <= routing_blind.total_exposure
    assert routing_aware.total_length <= \
        1.5 * routing_blind.total_length
