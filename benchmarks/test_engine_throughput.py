"""Evaluation-engine throughput: cached vs. uncached OTA sizing.

The paper's cost argument for smarter synthesis loops is CPU time — it
flags 4×–10× overhead for manufacturability-aware synthesis and "long run
times" for simulation-in-the-loop sizing.  The engine attacks that bill
two ways: batched dispatch and content-addressed memoization.

Benchmarked: the same seeded `five_transistor_ota` simulation-based
sizing run, cold (every point simulated) then warm (same engine, cache
populated).  Reported: evaluations/second and the cache hit rate.
Thresholds are deliberately tolerant for CI: the warm run must do zero
new simulator evaluations and be at least 2× faster wall-clock.
"""

import time

from conftest import report

from repro.circuits.library import five_transistor_ota
from repro.core.specs import Spec, SpecSet
from repro.engine import EngineConfig, EvalCache, EvaluationEngine, \
    SerialExecutor
from repro.opt.anneal import AnnealSchedule
from repro.synthesis import (
    DesignSpace,
    SimulationBasedSizer,
    SimulationEvaluator,
)

SPECS = SpecSet([
    Spec.at_least("gain_db", 40.0),
    Spec.at_least("gbw", 10e6),
    Spec.minimize("power", good=1e-4),
])

SPACE = DesignSpace(
    variables={"w_in": (5e-6, 500e-6), "w_load": (5e-6, 200e-6),
               "w_tail": (5e-6, 200e-6), "i_bias": (2e-6, 500e-6)},
    fixed={"l_in": 2e-6, "l_load": 2e-6, "l_tail": 2e-6,
           "c_load": 2e-12, "vdd": 3.3})

SCHEDULE = AnnealSchedule(moves_per_temperature=20, cooling=0.8,
                          max_evaluations=400, stop_after_stale=4)


def _run(engine):
    evaluator = SimulationEvaluator(builder=five_transistor_ota)
    sizer = SimulationBasedSizer(evaluator, SPACE, SPECS, schedule=SCHEDULE,
                                 seed=11, engine=engine, batch_size=8)
    t0 = time.perf_counter()
    result = sizer.run()
    return result, time.perf_counter() - t0


def test_cache_hit_speedup():
    engine = EvaluationEngine(SerialExecutor(), EvalCache())

    cold_result, cold_s = _run(engine)
    counters = engine.report()["counters"]
    cold_evals = counters["engine.evaluations"]
    cold_requests = counters["engine.requests"]

    warm_result, warm_s = _run(engine)
    counters = engine.report()["counters"]
    warm_evals = counters["engine.evaluations"] - cold_evals
    hit_rate = engine.cache.stats.hit_rate

    report("engine throughput: cached vs uncached OTA sizing", [
        ("cold evaluations (simulator runs)", "--", str(cold_evals)),
        ("cold evaluations/second", "--", f"{cold_evals / cold_s:.0f}"),
        ("warm new simulator runs", "0", str(warm_evals)),
        ("warm requests/second", "--",
         f"{cold_requests / max(warm_s, 1e-9):.0f}"),
        ("overall cache hit rate", "--", f"{hit_rate:.3f}"),
        ("warm speedup", ">= 2x", f"{cold_s / max(warm_s, 1e-9):.1f}x"),
    ])

    assert cold_evals > 0
    assert warm_evals == 0, "warm rerun must be fully served by the cache"
    assert warm_result.sizes == cold_result.sizes
    assert warm_result.performance == cold_result.performance
    # Tolerant threshold: cache hits skip MNA entirely, so even slow CI
    # machines clear 2x comfortably (locally this is >10x).
    assert cold_s / max(warm_s, 1e-9) >= 2.0
    assert hit_rate >= 0.4  # one full run of hits over two runs of lookups


def test_tracing_overhead_on_warm_cache_path():
    """Tracing must cost < 5% on the warm (all-cache-hits) path.

    The hot loop only touches the tracer for per-batch events and
    counter bookkeeping, so the overhead bound is tight.  Timed as
    min-of-N with alternated traced/untraced runs (fresh engine per run,
    one shared pre-warmed cache) so scheduler noise hits both sides
    equally; a small absolute slack absorbs timer granularity on runs
    this short.
    """
    cache = EvalCache()
    _run(EvaluationEngine(SerialExecutor(), cache))  # warm the cache once

    untraced_s, traced_s = [], []
    for _ in range(3):
        engine = EvaluationEngine(SerialExecutor(), cache)
        result_u, dt = _run(engine)
        untraced_s.append(dt)
        assert engine.report()["spans"] == []

        engine = EvaluationEngine.from_config(
            EngineConfig(cache=cache, trace=True))
        with engine.tracer.span("bench"):
            result_t, dt = _run(engine)
        traced_s.append(dt)
        span = engine.report()["spans"][0]
        assert span["counters"].get("engine.evaluations", 0) == 0  # warm
        assert span["counters"]["engine.cache_hits"] > 0
        assert result_t.sizes == result_u.sizes

    overhead = min(traced_s) / max(min(untraced_s), 1e-9) - 1.0
    report("tracing overhead: warm-cache sizing run", [
        ("untraced warm run (min of 3)", "--", f"{min(untraced_s):.3f} s"),
        ("traced warm run (min of 3)", "--", f"{min(traced_s):.3f} s"),
        ("overhead", "< 5%", f"{overhead * 100:+.1f}%"),
    ])
    assert min(traced_s) <= min(untraced_s) * 1.05 + 0.1
