"""Evaluation-engine throughput: cached vs. uncached OTA sizing.

The paper's cost argument for smarter synthesis loops is CPU time — it
flags 4×–10× overhead for manufacturability-aware synthesis and "long run
times" for simulation-in-the-loop sizing.  The engine attacks that bill
two ways: batched dispatch and content-addressed memoization.

Benchmarked: the same seeded `five_transistor_ota` simulation-based
sizing run, cold (every point simulated) then warm (same engine, cache
populated).  Reported: evaluations/second and the cache hit rate.
Thresholds are deliberately tolerant for CI: the warm run must do zero
new simulator evaluations and be at least 2× faster wall-clock.
"""

import math
import time

import numpy as np
from conftest import report

from repro.analysis import noise_analysis, small_signal_system
from repro.analysis.noise import _noise_injections
from repro.circuits.library import five_transistor_ota, rc_ladder
from repro.msystem.powergrid import (
    DECAP_PER_AMP,
    PACKAGE_L,
    PACKAGE_R,
    SWITCH_RISE_S,
    GridSegment,
    PowerGrid,
)
from repro.core.specs import Spec, SpecSet
from repro.engine import EngineConfig, EvalCache, EvaluationEngine, \
    SerialExecutor
from repro.opt.anneal import AnnealSchedule
from repro.synthesis import (
    DesignSpace,
    SimulationBasedSizer,
    SimulationEvaluator,
)

SPECS = SpecSet([
    Spec.at_least("gain_db", 40.0),
    Spec.at_least("gbw", 10e6),
    Spec.minimize("power", good=1e-4),
])

SPACE = DesignSpace(
    variables={"w_in": (5e-6, 500e-6), "w_load": (5e-6, 200e-6),
               "w_tail": (5e-6, 200e-6), "i_bias": (2e-6, 500e-6)},
    fixed={"l_in": 2e-6, "l_load": 2e-6, "l_tail": 2e-6,
           "c_load": 2e-12, "vdd": 3.3})

SCHEDULE = AnnealSchedule(moves_per_temperature=20, cooling=0.8,
                          max_evaluations=400, stop_after_stale=4)


def _run(engine):
    evaluator = SimulationEvaluator(builder=five_transistor_ota)
    sizer = SimulationBasedSizer(evaluator, SPACE, SPECS, schedule=SCHEDULE,
                                 seed=11, engine=engine, batch_size=8)
    t0 = time.perf_counter()
    result = sizer.run()
    return result, time.perf_counter() - t0


def test_cache_hit_speedup():
    engine = EvaluationEngine(SerialExecutor(), EvalCache())

    cold_result, cold_s = _run(engine)
    counters = engine.report()["counters"]
    cold_evals = counters["engine.evaluations"]
    cold_requests = counters["engine.requests"]

    warm_result, warm_s = _run(engine)
    counters = engine.report()["counters"]
    warm_evals = counters["engine.evaluations"] - cold_evals
    hit_rate = engine.cache.stats.hit_rate

    report("engine throughput: cached vs uncached OTA sizing", [
        ("cold evaluations (simulator runs)", "--", str(cold_evals)),
        ("cold evaluations/second", "--", f"{cold_evals / cold_s:.0f}"),
        ("warm new simulator runs", "0", str(warm_evals)),
        ("warm requests/second", "--",
         f"{cold_requests / max(warm_s, 1e-9):.0f}"),
        ("overall cache hit rate", "--", f"{hit_rate:.3f}"),
        ("warm speedup", ">= 2x", f"{cold_s / max(warm_s, 1e-9):.1f}x"),
    ])

    assert cold_evals > 0
    assert warm_evals == 0, "warm rerun must be fully served by the cache"
    assert warm_result.sizes == cold_result.sizes
    assert warm_result.performance == cold_result.performance
    # Tolerant threshold: cache hits skip MNA entirely, so even slow CI
    # machines clear 2x comfortably (locally this is >10x).
    assert cold_s / max(warm_s, 1e-9) >= 2.0
    assert hit_rate >= 0.4  # one full run of hits over two runs of lookups


def test_tracing_overhead_on_warm_cache_path():
    """Tracing must cost < 5% on the warm (all-cache-hits) path.

    The hot loop only touches the tracer for per-batch events and
    counter bookkeeping, so the overhead bound is tight.  Timed as
    min-of-N with alternated traced/untraced runs (fresh engine per run,
    one shared pre-warmed cache) so scheduler noise hits both sides
    equally; a small absolute slack absorbs timer granularity on runs
    this short.
    """
    cache = EvalCache()
    _run(EvaluationEngine(SerialExecutor(), cache))  # warm the cache once

    untraced_s, traced_s = [], []
    for _ in range(3):
        engine = EvaluationEngine(SerialExecutor(), cache)
        result_u, dt = _run(engine)
        untraced_s.append(dt)
        assert engine.report()["spans"] == []

        engine = EvaluationEngine.from_config(
            EngineConfig(cache=cache, trace=True))
        with engine.tracer.span("bench"):
            result_t, dt = _run(engine)
        traced_s.append(dt)
        span = engine.report()["spans"][0]
        assert span["counters"].get("engine.evaluations", 0) == 0  # warm
        assert span["counters"]["engine.cache_hits"] > 0
        assert result_t.sizes == result_u.sizes

    overhead = min(traced_s) / max(min(untraced_s), 1e-9) - 1.0
    report("tracing overhead: warm-cache sizing run", [
        ("untraced warm run (min of 3)", "--", f"{min(untraced_s):.3f} s"),
        ("traced warm run (min of 3)", "--", f"{min(traced_s):.3f} s"),
        ("overhead", "< 5%", f"{overhead * 100:+.1f}%"),
    ])
    assert min(traced_s) <= min(untraced_s) * 1.05 + 0.1


# ----------------------------------------------------------------------
# solver layer: factor-once/solve-many vs the seed dense path
# ----------------------------------------------------------------------

def _seed_ac_noise_sweep(ss, iout, freqs):
    """The pre-solver-layer path, replicated verbatim: every solve pays
    its own dense LU (``np.linalg.solve``) and rebuilds ``G + jωC`` —
    one LU for the AC response, one for the noise adjoint, one for the
    noise gain, per frequency."""
    injections = _noise_injections(ss)
    e = np.zeros(ss.system.size, dtype=complex)
    e[iout] = 1.0
    response = np.zeros(len(freqs), dtype=complex)
    psd = np.zeros(len(freqs))
    gain = np.zeros(len(freqs))
    for k, f in enumerate(freqs):
        s = 2j * math.pi * f
        response[k] = np.linalg.solve(ss.G + s * ss.C, ss.b_ac)[iout]
        A = ss.G + s * ss.C
        z = np.linalg.solve(A.T.conj(), e)
        total = 0.0
        for a, b, psd_fn in injections.values():
            za = z[a] if a >= 0 else 0.0
            zb = z[b] if b >= 0 else 0.0
            total += abs(np.conj(za - zb)) ** 2 * psd_fn(f)
        psd[k] = total
        gain[k] = abs(np.linalg.solve(ss.G + s * ss.C, ss.b_ac)[iout])
    return response, psd, gain


def test_noise_sweep_solver_speedup():
    """AC response + noise sweep: one factorization per frequency (shared
    through the SmallSignalSystem's cache) vs three seed dense LUs."""
    ckt = rc_ladder(360)
    out = "n360"
    freqs = np.logspace(3, 9, 24)

    ss_seed = small_signal_system(ckt)
    iout = ss_seed.system.node(out)
    t0 = time.perf_counter()
    r_seed, psd_seed, gain_seed = _seed_ac_noise_sweep(ss_seed, iout, freqs)
    seed_s = time.perf_counter() - t0

    ss = small_signal_system(ckt)
    t0 = time.perf_counter()
    r_new = np.array([ss.solve_at(f)[iout] for f in freqs])
    nres = noise_analysis(ckt, out, freqs, op=ss.op, ss=ss)
    new_s = time.perf_counter() - t0

    np.testing.assert_allclose(r_new, r_seed, rtol=1e-9)
    np.testing.assert_allclose(nres.output_psd, psd_seed, rtol=1e-9)
    np.testing.assert_allclose(nres.gain, gain_seed, rtol=1e-9)

    speedup = seed_s / max(new_s, 1e-9)
    report("solver layer: AC + noise sweep (rc_ladder(360), 24 freqs)", [
        ("seed path (3 dense LUs per freq)", "--", f"{seed_s:.3f} s"),
        ("solver path (1 LU + 3 solves per freq)", "--", f"{new_s:.3f} s"),
        ("factorizations", str(len(freqs)), str(ss._factors.misses)),
        ("speedup", ">= 3x", f"{speedup:.1f}x"),
    ])
    assert ss._factors.misses == len(freqs)
    assert speedup >= 3.0


def _mesh_grid(nx: int, ny: int, width_nm: int = 10_000) -> PowerGrid:
    """Synthetic nx-by-ny mesh power grid: pads at corners, loads inside."""
    def node(i, j):
        return i * ny + j

    segments = []
    for i in range(nx):
        for j in range(ny):
            if i + 1 < nx:
                segments.append(GridSegment(
                    f"h_{i}_{j}", node(i, j), node(i + 1, j),
                    50_000, width_nm))
            if j + 1 < ny:
                segments.append(GridSegment(
                    f"v_{i}_{j}", node(i, j), node(i, j + 1),
                    50_000, width_nm))
    names = [f"n{i}_{j}" for i in range(nx) for j in range(ny)]
    pads = [node(0, 0), node(0, ny - 1), node(nx - 1, 0),
            node(nx - 1, ny - 1)]
    loads = {node(i, j): 1e-3 * (1 + (i * ny + j) % 5)
             for i in range(1, nx - 1) for j in range(1, ny - 1)}
    peaks = {n: 5e-3 for n in list(loads)[::3]}
    return PowerGrid(segments, names, pads, loads, peaks,
                     analog_nodes=[node(nx // 2, ny // 2)])


def _seed_grid_metrics(grid):
    """The seed metric set, replicated verbatim: each metric re-assembles
    the dense conductance matrix and pays its own ``np.linalg.solve``."""
    def dc_solve():
        n = grid.n_nodes
        G = np.zeros((n, n))
        for seg in grid.segments:
            g = 1.0 / seg.resistance
            a, b = seg.node_a, seg.node_b
            G[a, a] += g
            G[b, b] += g
            G[a, b] -= g
            G[b, a] -= g
        for pad in grid.pad_nodes:
            G[pad, pad] += 1.0 / PACKAGE_R
        b = np.zeros(n)
        for pad in grid.pad_nodes:
            b[pad] += grid.vdd / PACKAGE_R
        for node, current in grid.load_currents.items():
            b[node] -= current
        return np.linalg.solve(G, b)

    v = dc_solve()
    ir = max(grid.vdd - v[node] for node in grid.load_currents)
    v = dc_solve()
    em = [seg.name for seg in grid.segments
          if abs(v[seg.node_a] - v[seg.node_b]) / seg.resistance
          > seg.em_current_limit()]
    v = dc_solve()
    total_peak = sum(grid.peak_currents.values())
    di_dt = total_peak / SWITCH_RISE_S
    l_eff = PACKAGE_L / max(len(grid.pad_nodes), 1)
    c_total = sum(DECAP_PER_AMP * p for p in grid.peak_currents.values())
    sag = total_peak * SWITCH_RISE_S / max(c_total, 1e-15)
    resistive = max(grid.vdd - v[node] for node in grid.load_currents)
    bound = min(l_eff * di_dt, sag) + resistive
    return ir, em, bound


def test_power_grid_solver_speedup():
    """40x40 mesh (1600 nodes): sparse factor-once + memoized dc_solve vs
    three seed dense assemble-and-solve passes."""
    grid = _mesh_grid(40, 40)
    t0 = time.perf_counter()
    ir_seed, em_seed, bound_seed = _seed_grid_metrics(grid)
    seed_s = time.perf_counter() - t0

    grid_new = _mesh_grid(40, 40)
    t0 = time.perf_counter()
    ir = grid_new.worst_ir_drop()
    em = grid_new.em_violations()
    bound = grid_new._droop_bound(grid_new.analog_nodes[0])
    new_s = time.perf_counter() - t0

    np.testing.assert_allclose(ir, ir_seed, rtol=1e-9)
    assert em == em_seed
    np.testing.assert_allclose(bound, bound_seed, rtol=1e-9)

    speedup = seed_s / max(new_s, 1e-9)
    report("solver layer: power-grid metric set (40x40 mesh, 1600 nodes)", [
        ("seed path (3 dense assemble+solve)", "--", f"{seed_s:.3f} s"),
        ("solver path (1 sparse LU, memoized)", "--", f"{new_s:.3f} s"),
        ("speedup", ">= 5x", f"{speedup:.0f}x"),
    ])
    assert speedup >= 5.0


# ----------------------------------------------------------------------
# surrogate layer: screened vs unscreened pulse-detector sizing
# ----------------------------------------------------------------------

def test_surrogate_screening_sim_reduction():
    """Cache-trained surrogate screening on the Table 1 pulse detector.

    The paper's sizing bill is dominated by simulator calls, so the
    screen's job is to spend most of each batch on predictions and only
    simulate the candidates that matter (top-ranked, high-uncertainty,
    claimed winners).  Gates, pinned at seed 7 where the run is fully
    deterministic: >= 2x fewer real evaluations than the unscreened
    baseline at equal-or-better final cost (5% tolerance), and warm
    per-batch surrogate overhead under 10% of one real transient
    simulation.
    """
    from repro.engine import SurrogateConfig, canonical_key
    from repro.opt.anneal import anneal_continuous
    from repro.surrogate import FeatureSpec, SurrogateScreen
    from repro.synthesis.pulse_detector import (
        MANUAL_DESIGN,
        pulse_detector_performance,
        pulse_detector_space,
        pulse_detector_specs,
        verified_peaking_time,
    )

    specs = pulse_detector_specs()
    space = pulse_detector_space()
    schedule = AnnealSchedule(moves_per_temperature=24, cooling=0.7,
                              max_evaluations=600, stop_after_stale=5)

    def cost(point):
        return specs.cost(pulse_detector_performance(point))

    def run(screened):
        cont = space.to_continuous()
        engine = EvaluationEngine.from_config(EngineConfig(cache=True))
        screen = None
        if screened:
            spec = FeatureSpec.from_continuous(cont)
            screen = SurrogateScreen(
                featurize=lambda x: spec.encode(cont.to_dict(x)),
                config=SurrogateConfig(min_fit=32, refit_every=16),
                telemetry=engine.telemetry)
        result = anneal_continuous(
            cost, cont, schedule=schedule, seed=7,
            executor=engine.keyed(lambda x: canonical_key("pd", x)),
            batch_size=8, surrogate=screen)
        predict_s = list(engine.telemetry.sample_values(
            "surrogate.predict_s"))
        rep = engine.report()
        engine.close()
        return result, rep, predict_s

    off, r_off, _ = run(screened=False)
    on, r_on, predict_s = run(screened=True)

    evals_off = r_off["counters"]["engine.evaluations"]
    evals_on = r_on["counters"]["engine.evaluations"]
    ratio = evals_off / max(evals_on, 1)
    sur = r_on["surrogate"]
    # Warm overhead: one prediction pass per screened batch.
    per_batch_s = sum(predict_s) / max(len(predict_s), 1)
    t0 = time.perf_counter()
    verified_peaking_time(MANUAL_DESIGN)
    sim_s = time.perf_counter() - t0

    report("surrogate screening: pulse-detector sizing (seed 7)", [
        ("unscreened simulator evals", "--", str(evals_off)),
        ("screened simulator evals", "--", str(evals_on)),
        ("eval reduction", ">= 2x", f"{ratio:.2f}x"),
        ("sims avoided", "--", str(sur["sims_avoided"])),
        ("verify misses", "--", str(sur["verify_misses"])),
        ("unscreened final cost", "--", f"{off.best_cost:.4f}"),
        ("screened final cost", "<= 1.05x base", f"{on.best_cost:.4f}"),
        ("surrogate overhead / batch", "< 10% of sim",
         f"{per_batch_s * 1e3:.2f} ms"),
        ("one real transient sim", "--", f"{sim_s * 1e3:.0f} ms"),
    ])

    assert ratio >= 2.0, "screen must at least halve real simulator evals"
    # Pinned per-seed tolerance: at seed 7 the screened run actually
    # finds a *better* design; 5% slack absorbs any future retuning.
    assert on.best_cost <= off.best_cost * 1.05
    assert sur["sims_avoided"] > 0
    # The winner rule keeps the reported best honest — re-check for real.
    best_point = space.to_continuous().to_dict(on.best_state)
    assert on.best_cost == cost(best_point)
    assert per_batch_s < 0.1 * sim_s


# ----------------------------------------------------------------------
# serving layer: batched service vs serial request-at-a-time
# ----------------------------------------------------------------------

def test_serve_saturation_throughput():
    """Saturating service load: micro-batched dispatch through a thread
    executor vs one request at a time through the same engine stack.

    The workload models a simulator call as a 10 ms blocking evaluation
    (typical SPICE-ish floor; pure I/O from the engine's point of view).
    The serial baseline is the pre-serve shape — each client request
    waits for the previous one to finish before dispatching.  The served
    path lets the broker coalesce the queued backlog into micro-batches
    that a ThreadExecutor overlaps.  Thresholds stay tolerant for CI:
    >= 3x throughput and a p99 latency bounded by a few batch rounds
    even with the queue saturated (locally the ratio is ~10x).
    """
    from repro.engine import ServeConfig, ThreadExecutor
    from repro.serve import Broker, Workload

    eval_s = 0.010
    n_requests = 48

    def simulate(point):
        time.sleep(eval_s)
        return {"y": point["x"] * 2}

    # Serial baseline: request-at-a-time through the same broker stack,
    # so dispatch overhead is identical and only batching+overlap differ.
    serial = Broker(EvaluationEngine(SerialExecutor()),
                    config=ServeConfig(max_batch=1, max_wait_ms=0),
                    owns_engine=True)
    serial.register(Workload("sim", simulate))
    with serial:
        t0 = time.perf_counter()
        for i in range(n_requests):
            serial.submit("sim", {"x": i}).result(timeout=30)
        serial_s = time.perf_counter() - t0

    batched = Broker(EvaluationEngine(ThreadExecutor(workers=16)),
                     config=ServeConfig(max_batch=16, max_wait_ms=5.0),
                     owns_engine=True)
    batched.register(Workload("sim", simulate))
    with batched:
        t0 = time.perf_counter()
        handles = [batched.submit("sim", {"x": i})
                   for i in range(n_requests)]
        values = [h.result(timeout=30) for h in handles]
        batched_s = time.perf_counter() - t0
        serve = batched.report()["serve"]

    assert values == [{"y": 2 * i} for i in range(n_requests)]
    assert serve["completed"] == n_requests
    assert serve["requests"] == serve["admitted"] + serve["rejected"]

    ratio = serial_s / max(batched_s, 1e-9)
    p99 = serve["latency_p99_s"]
    # Bounded tail under saturation: every request rides one of
    # ceil(48/16) = 3 batch rounds, so p99 is a few rounds of eval time
    # plus scheduling slack -- far below the 0.48 s serial backlog.
    p99_bound = 10 * eval_s + 0.2
    report("serving layer: saturating load, batched vs serial", [
        ("requests", "--", str(n_requests)),
        ("serial request-at-a-time", "--", f"{serial_s:.3f} s"),
        ("served (batch=16, thread executor)", "--", f"{batched_s:.3f} s"),
        ("throughput ratio", ">= 3x", f"{ratio:.1f}x"),
        ("mean batch size", "--", f"{serve['mean_batch_size']:.1f}"),
        ("p50 latency", "--", f"{serve['latency_p50_s'] * 1e3:.0f} ms"),
        ("p99 latency", f"< {p99_bound * 1e3:.0f} ms",
         f"{p99 * 1e3:.0f} ms"),
    ])
    assert ratio >= 3.0
    assert serve["mean_batch_size"] >= 4.0
    assert p99 < p99_bound


def test_shard_saturation_throughput():
    """Saturating service load: a 4-shard router fleet vs one batched
    broker over the identical engine stack and the identical request mix.

    The single broker's ceiling is its one engine: 16 worker threads
    overlap at most 16 of the 10 ms simulator calls at a time, however
    well the micro-batcher packs them.  The router consistent-hashes the
    same mixed-priority stream onto 4 broker/engine worker processes
    (4 x 16 workers), so the fleet's ceiling is 4x higher and the
    speedup survives hash imbalance and IPC overhead.  The gate also
    holds the fleet to the same zero-silent-drops contract as one
    broker: the merged accounting invariant must hold exactly and the
    per-shard breakdown must sum to the fleet totals.
    """
    from repro.engine import ServeConfig
    from repro.serve import Broker, ShardRouter, Workload

    eval_s = 0.040
    n_requests = 640
    expected = [{"y": 2 * i} for i in range(n_requests)]

    def simulate(point):
        time.sleep(eval_s)
        return {"y": point["x"] * 2}

    def drive(backend):
        # Same mixed-priority saturating load for both backends: 8
        # concurrent clients, a quarter interactive, the rest bulk
        # sweeps.
        from concurrent.futures import ThreadPoolExecutor

        def one(i):
            return backend.submit(
                "sim", {"x": i},
                priority="interactive" if i % 4 == 0 else "batch")

        t0 = time.perf_counter()
        with ThreadPoolExecutor(max_workers=8) as pool:
            handles = list(pool.map(one, range(n_requests)))
        values = [h.result(timeout=60) for h in handles]
        return values, time.perf_counter() - t0

    def config(shards):
        return EngineConfig(
            executor="thread", workers=16,
            serve=ServeConfig(max_batch=16, max_wait_ms=5.0,
                              max_queue_depth=1024, shards=shards))

    single = Broker.from_config(config(1))
    single.register(Workload("sim", simulate))
    with single:
        values, single_s = drive(single)
    assert values == expected

    router = ShardRouter(config(4))
    router.register(Workload("sim", simulate))
    with router:  # spawn cost sits outside the timed window
        values, fleet_s = drive(router)
        serve = router.report()["serve"]
    assert values == expected

    assert serve["requests"] == serve["admitted"] + serve["rejected"]
    assert serve["admitted"] == (serve["completed"] + serve["expired"]
                                 + serve["cancelled"] + serve["errored"])
    assert serve["completed"] == n_requests
    assert len(serve["shards"]) == 4
    for lane in ("completed", "expired", "cancelled", "errored"):
        assert sum(s[lane] for s in serve["shards"]) == serve[lane]

    ratio = single_s / max(fleet_s, 1e-9)
    spread = [s["completed"] for s in serve["shards"]]
    report("serving layer: 4-shard fleet vs single batched broker", [
        ("requests", "--", str(n_requests)),
        ("single broker (batch=16, 16 workers)", "--",
         f"{single_s:.3f} s"),
        ("4-shard fleet (4 x 16 workers)", "--", f"{fleet_s:.3f} s"),
        ("throughput ratio", ">= 2.5x", f"{ratio:.1f}x"),
        ("completed per shard", "--", str(spread)),
        ("fleet p99 latency", "--",
         f"{serve['latency_p99_s'] * 1e3:.0f} ms"),
    ])
    assert ratio >= 2.5
    assert all(spread), "every shard must take a share of the keyspace"


# ----------------------------------------------------------------------
# vectorized kernels: symbolic-once / evaluate-many vs per-point scalar
# ----------------------------------------------------------------------

def test_batched_kernel_speedup():
    """K=32 same-topology DC + AC sweeps: one stacked LU per frequency vs
    32 scalar passes, with the scalar fallback exercised in the same run.

    The batched path builds one ``StampPlan`` for the shared topology,
    assembles the (K, n, n) tensors with ``np.add.at``, and factors the
    stacked systems; the scalar loop re-stamps and re-factors per member.
    The floor is deliberately below the locally measured ratio (~8x) to
    stay robust on loaded CI machines.
    """
    from repro.analysis import api
    from repro.analysis.api import AcSpec, DcSpec
    from repro.analysis.batch import run_batch
    from repro.circuits.library import common_source_amp
    from repro.engine.trace import Tracer

    K = 32
    circuits = [rc_ladder(12, r=1e3 * (1.0 + 0.03 * k),
                          c=1e-12 * (1.0 + 0.02 * k)) for k in range(K)]
    freqs = np.logspace(1, 9, 33)
    specs = [DcSpec(), AcSpec(freqs=tuple(freqs))]

    # Warm both paths once (plan construction, import costs).
    run_batch(circuits[:2], DcSpec())
    api.run(circuits[0], DcSpec())

    t0 = time.perf_counter()
    scalar = [[api.run(c, spec) for c in circuits] for spec in specs]
    scalar_s = time.perf_counter() - t0

    tracer = Tracer()
    with tracer.span("bench"):
        t0 = time.perf_counter()
        batched = [run_batch(circuits, spec) for spec in specs]
        batched_s = time.perf_counter() - t0

        # Same run, fallback leg: a nonlinear topology must decline the
        # stacked DC solve and replay per member through the scalar path.
        mos = [common_source_amp(w=20e-6 * (1.0 + 0.1 * k))
               for k in range(4)]
        fallback_ops = run_batch(mos, DcSpec())
    counters = tracer.telemetry.counters

    for spec_idx in range(len(specs)):
        for s_res, b_res in zip(scalar[spec_idx], batched[spec_idx]):
            if spec_idx == 0:
                np.testing.assert_allclose(b_res.x, s_res.x, rtol=1e-9)
            else:
                np.testing.assert_allclose(b_res.v("n12"), s_res.v("n12"),
                                           rtol=1e-9)
    assert len(fallback_ops) == 4
    assert counters.get("kernel.fallback.dc", 0) >= 4
    assert counters.get("kernel.batched_solves", 0) > 0

    ratio = scalar_s / max(batched_s, 1e-9)
    report("vectorized kernels: K=32 same-topology DC + AC sweep", [
        ("scalar loop (32 x stamp + LU)", "--", f"{scalar_s:.3f} s"),
        ("batched (stacked tensors)", "--", f"{batched_s:.3f} s"),
        ("speedup", ">= 5x", f"{ratio:.1f}x"),
        ("batched solves", "> 0",
         str(counters.get("kernel.batched_solves", 0))),
        ("scalar fallbacks (nonlinear DC)", ">= 4",
         str(counters.get("kernel.fallback.dc", 0))),
    ])
    assert ratio >= 5.0
