"""Fig. 3: RAIL power-grid design meeting dc/ac/transient constraints.

The paper's Fig. 3 shows a RAIL redesign of the power grid of an IBM
mixed-signal data-channel chip "in which a demanding set of dc, ac and
transient performance constraints were met automatically".

Our substitute chip is the synthetic data channel (fast digital DSP +
clocking next to a sensitive analog front-end).  Shape checks: a naive
uniform grid violates the constraints; the RAIL synthesis meets *all* of
them automatically; and it does so with less metal than the cheapest
feasible uniform grid.
"""

from conftest import report

from repro.msystem.powergrid import (
    RailSpec,
    synthesize_rail,
    uniform_grid_result,
)

UNIFORM_WIDTHS = (20_000, 40_000, 60_000, 80_000, 120_000, 200_000)


def test_fig3_rail_powergrid(benchmark, demo_floorplan):
    spec = RailSpec()
    naive = uniform_grid_result(demo_floorplan, width_nm=4_000, spec=spec)
    assert not naive.feasible, "the 'before' grid must violate the specs"

    rail = benchmark.pedantic(
        lambda: synthesize_rail(demo_floorplan, spec, seed=1),
        rounds=1, iterations=1)
    assert rail.feasible
    assert rail.worst_ir_drop <= spec.max_ir_drop
    assert rail.worst_droop <= spec.max_droop
    assert not rail.em_violations

    cheapest_uniform = None
    for width in UNIFORM_WIDTHS:
        u = uniform_grid_result(demo_floorplan, width, spec=spec)
        if u.feasible:
            cheapest_uniform = u
            break
    assert cheapest_uniform is not None

    report("Fig. 3: RAIL power-grid synthesis", [
        ("naive grid IR drop (mV)", "violates",
         f"{naive.worst_ir_drop * 1e3:.0f}"),
        ("naive grid droop (mV)", "violates",
         f"{naive.worst_droop * 1e3:.0f}"),
        ("RAIL IR drop (mV)", f"<= {spec.max_ir_drop * 1e3:.0f}",
         f"{rail.worst_ir_drop * 1e3:.0f}"),
        ("RAIL transient droop (mV)", f"<= {spec.max_droop * 1e3:.0f}",
         f"{rail.worst_droop * 1e3:.0f}"),
        ("RAIL EM violations", "0", f"{len(rail.em_violations)}"),
        ("RAIL metal area (mm^2)", "minimal",
         f"{rail.metal_area / 1e12:.3f}"),
        ("cheapest feasible uniform (mm^2)", "larger",
         f"{cheapest_uniform.metal_area / 1e12:.3f}"),
        ("metal saving vs uniform", ">1x",
         f"{cheapest_uniform.metal_area / rail.metal_area:.2f}x"),
    ])
    assert rail.metal_area < cheapest_uniform.metal_area
