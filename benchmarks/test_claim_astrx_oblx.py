"""Claim C7 (§2.2, [23]): ASTRX/OBLX's efficiency machinery works.

Two efficiency devices define the tool: "the linear small-signal
characteristics are simulated efficiently using AWE", and "a dc-free
biasing formulation ... where the dc constraints are solved by relaxation
throughout the optimization run" (instead of a full Newton solve per
candidate).

Shape checks: one compiled (AWE + dc-free) candidate evaluation is
several times cheaper than a full simulator evaluation (Newton DC + AC
sweep); the annealing run drives the relaxed KCL residual to (near)
zero; and the post-synthesis verification with the real simulator
confirms the synthesized cell.
"""

import time

import numpy as np
from conftest import report

from repro.circuits.library import five_transistor_ota
from repro.core.specs import Spec, SpecSet
from repro.opt.anneal import AnnealSchedule
from repro.synthesis import (
    AstrxProblem,
    DesignSpace,
    OblxOptimizer,
    SimulationEvaluator,
)
from repro.synthesis.astrx import _Candidate

SPECS = SpecSet([
    Spec.at_least("gain_db", 40.0),
    Spec.at_least("gbw", 5e6),
    Spec.minimize("power", good=1e-4),
])


def _space():
    return DesignSpace(
        variables={"w_in": (5e-6, 500e-6), "w_load": (5e-6, 200e-6),
                   "w_tail": (5e-6, 200e-6), "i_bias": (2e-6, 500e-6)},
        fixed={"l_in": 2e-6, "l_load": 2e-6, "l_tail": 2e-6,
               "c_load": 2e-12, "vdd": 3.3})


def _builder(sizes):
    keys = ("w_in", "l_in", "w_load", "l_load", "w_tail", "l_tail",
            "i_bias", "c_load", "vdd")
    return five_transistor_ota({k: v for k, v in sizes.items()
                                if k in keys})


def test_c7_astrx_oblx(benchmark):
    problem = AstrxProblem(_builder, _space(), SPECS)
    rng = np.random.default_rng(1)
    candidates = [
        _Candidate(problem.cont.random_point(rng),
                   np.full(len(problem.free_nodes), 1.65))
        for _ in range(40)
    ]

    # Compiled AWE + dc-free evaluation cost.
    t0 = time.perf_counter()
    for cand in candidates:
        problem.evaluate(cand)
    t_compiled = (time.perf_counter() - t0) / len(candidates)

    # Full-simulation evaluation cost on the same points.
    evaluator = SimulationEvaluator(builder=_builder)
    space = _space()
    t0 = time.perf_counter()
    for cand in candidates:
        evaluator(space.complete(problem.cont.to_dict(cand.sizes)))
    t_full = (time.perf_counter() - t0) / len(candidates)
    speedup = t_full / t_compiled

    # The OBLX run: relaxation must converge and verification must pass.
    opt = OblxOptimizer(problem, schedule=AnnealSchedule(
        moves_per_temperature=100, cooling=0.85, max_evaluations=6000),
        seed=3)
    result = benchmark.pedantic(opt.run, rounds=1, iterations=1)

    report("Claim C7: ASTRX/OBLX efficiency", [
        ("compiled (AWE + dc-free) eval", "cheap",
         f"{t_compiled * 1e3:.2f} ms"),
        ("full simulator eval (NR + AC)", "expensive",
         f"{t_full * 1e3:.2f} ms"),
        ("evaluation speedup", ">2x", f"{speedup:.1f}x"),
        ("final KCL residual (relaxed dc)", "-> 0",
         f"{result.kcl_residual:.2e}"),
        ("specs met (compiled view)", "yes",
         "yes" if result.feasible else "NO"),
        ("verified by full simulator", "yes",
         "yes" if result.verified else "NO"),
        ("verified gain (V/V)", "-",
         f"{result.performance.get('verified_gain', 0):.0f}"),
    ])

    assert speedup > 2.0
    assert result.kcl_residual < 0.05
    assert result.feasible
    assert result.verified
