"""Shared fixtures for the reproduction benchmarks.

Every benchmark prints a ``paper vs measured`` block so EXPERIMENTS.md can
be regenerated from ``pytest benchmarks/ --benchmark-only -s``.
"""

import pytest

from repro.msystem import demo_mixed_signal_system
from repro.msystem.floorplan import WrightFloorplanner
from repro.opt.anneal import AnnealSchedule


def report(title: str, rows: list[tuple[str, str, str]]) -> None:
    """Print a paper-vs-measured table block."""
    print(f"\n=== {title} ===")
    print(f"{'quantity':<38}{'paper':>18}{'measured':>18}")
    for name, paper, measured in rows:
        print(f"{name:<38}{paper:>18}{measured:>18}")


@pytest.fixture(scope="session")
def demo_system():
    return demo_mixed_signal_system()


@pytest.fixture(scope="session")
def demo_floorplan(demo_system):
    blocks, nets = demo_system
    return WrightFloorplanner(blocks, nets, seed=1).run(
        AnnealSchedule(moves_per_temperature=120, cooling=0.88,
                       max_evaluations=10000))
