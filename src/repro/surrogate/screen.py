"""Trust-region screening policy over the optimizer batch hooks.

The screen sits between an optimizer and its real evaluation path: it
receives each candidate batch, decides which candidates earn a real
simulation, and answers the rest with model predictions.  Three states:

* **cold** — fewer than ``min_fit`` training points: simulate
  everything, grow the corpus (screening that cannot be trusted is not
  screening).
* **active** — rank the batch by predicted cost and simulate the top
  ``simulate_fraction``, plus the ``explore_fraction`` highest-
  uncertainty points (model improvement), plus every *claimed winner* —
  any candidate whose prediction undercuts the best real cost seen so
  far (within ``winner_margin``).  The winner rule is the safety
  invariant: a prediction can never become the run's best cost, because
  any prediction good enough to be the best is promoted to a real
  simulation first.
* **fallback** — when the rolling verify-miss rate over the last
  ``miss_window`` real simulations exceeds ``max_miss_rate``, the model
  has lost the plot (the optimizer moved to a region the corpus does
  not cover): simulate everything for ``fallback_batches`` batches
  while retraining, then retry.

Every real result (from any state) feeds the corpus; the model refits
every ``refit_every`` fresh points — immediately after a batch with
verify misses.  All decisions are deterministic functions of the
(seeded) candidate stream and the config: ranking uses stable argsort,
the corpus is insertion-ordered, and the model's training is
byte-stable — so screened runs stay identical serial vs parallel, and
fit/predict wall times flow only into ``_s``-suffixed telemetry samples
that the structural manifest digest strips.

Counter vocabulary (all under ``surrogate.``): ``fits``,
``predictions`` (points ranked by the model), ``screened`` (points
entering an active screen), ``simulated`` (of those, sent to the real
evaluator), ``sims_avoided`` (answered with a prediction),
``verify_misses``, ``fallbacks``.
"""

from __future__ import annotations

import math
import time
from collections import deque
from typing import Any, Callable, Sequence

import numpy as np

from repro.engine.config import SurrogateConfig
from repro.surrogate.corpus import Corpus, CorpusRecord
from repro.surrogate.model import RbfSurrogate


class SurrogateScreen:
    """Batch-evaluation filter implementing the trust-region policy.

    Parameters
    ----------
    featurize:
        ``state -> feature vector`` for whatever states the optimizer
        batches (sizing dicts for the GA, parameter vectors for the
        annealer — the sizer binds ``spec.encode ∘ space.to_dict``).
    config:
        :class:`~repro.engine.config.SurrogateConfig` policy knobs.
    telemetry / tracer:
        The engine's observability stack; both optional (the screen
        works standalone in tests).
    model / corpus:
        Injectable for warm starts — ``corpus`` may be pre-loaded from
        ``corpus.jsonl`` or a cache harvest.
    """

    def __init__(self, featurize: Callable[[Any], Sequence[float]],
                 config: SurrogateConfig | None = None,
                 telemetry=None, tracer=None,
                 model: RbfSurrogate | None = None,
                 corpus: Corpus | None = None):
        self.featurize = featurize
        self.config = config if config is not None else SurrogateConfig()
        self.telemetry = telemetry
        self.tracer = tracer
        cfg = self.config
        self.model = model if model is not None else RbfSurrogate(
            length_scale=cfg.length_scale, ridge=cfg.ridge,
            max_centers=cfg.max_centers, seed=cfg.seed)
        self.corpus = corpus if corpus is not None else Corpus(
            max_records=cfg.max_corpus)
        self.best_real = float("inf")
        self._since_fit = len(self.corpus)  # unfit data counts as fresh
        self._miss_window: deque[bool] = deque(maxlen=cfg.miss_window)
        self._fallback_left = 0

    # -- bookkeeping helpers ------------------------------------------
    def _count(self, name: str, n: int = 1) -> None:
        if self.telemetry is not None and n:
            self.telemetry.count(name, n)

    def _sample(self, name: str, value: float) -> None:
        if self.telemetry is not None:
            self.telemetry.record_sample(name, value)

    def _is_failure(self, value: Any) -> bool:
        from repro.engine.faults import is_failure
        return is_failure(value)

    def _absorb(self, state: Any, features: np.ndarray, value: Any) -> None:
        """Fold one real result into corpus / best-cost bookkeeping."""
        if self._is_failure(value):
            return
        cost = float(value)
        sizes = dict(state) if isinstance(state, dict) else None
        if self.corpus.add(CorpusRecord(
                features=tuple(float(v) for v in features), cost=cost,
                sizes=sizes)):
            self._since_fit += 1
        if math.isfinite(cost) and cost < self.best_real:
            self.best_real = cost

    def _maybe_fit(self, force: bool = False) -> None:
        cfg = self.config
        if len(self.corpus) < cfg.min_fit:
            return
        if self.model.is_fit and not force \
                and self._since_fit < cfg.refit_every:
            return
        X, y = self.corpus.matrix()
        if len(y) < 2:
            return
        from repro.engine.trace import span_if
        with span_if(self.tracer, "surrogate.fit"):
            t0 = time.perf_counter()
            try:
                self.model.fit(X, y)
            except (ValueError, np.linalg.LinAlgError):
                return  # degenerate data: stay cold, keep collecting
            self._sample("surrogate.fit_s", time.perf_counter() - t0)
            self._count("surrogate.fits")
        self._since_fit = 0

    # -- the policy ----------------------------------------------------
    def screen(self, evaluate: Callable[[list], list],
               states: Sequence[Any]) -> list:
        """Answer a candidate batch, simulating only what matters.

        ``evaluate`` is the optimizer's raw batch path (executor + cache
        behind it); the return list is positionally aligned with
        ``states`` and mixes real results (floats or ``EvalFailure``
        pass-throughs) with predicted costs (plain floats).
        """
        states = list(states)
        if not states:
            return []
        cfg = self.config
        self._maybe_fit()
        if not self.model.is_fit or self._fallback_left > 0:
            # Cold or in fallback: simulate everything, keep learning.
            if self._fallback_left > 0:
                self._fallback_left -= 1
            results = list(evaluate(states))
            for state, value in zip(states, results):
                self._absorb(state, np.asarray(
                    self.featurize(state), dtype=float), value)
            return results

        from repro.engine.trace import span_if
        with span_if(self.tracer, "surrogate.screen"):
            X = np.array([self.featurize(s) for s in states], dtype=float)
            k = len(states)
            t0 = time.perf_counter()
            mu = self.model.predict(X)
            sigma = self.model.uncertainty(X)
            self._sample("surrogate.predict_s", time.perf_counter() - t0)
            self._count("surrogate.predictions", k)
            self._count("surrogate.screened", k)

            chosen: set[int] = set()
            by_cost = np.argsort(mu, kind="stable")
            chosen.update(int(i) for i in
                          by_cost[:math.ceil(cfg.simulate_fraction * k)])
            n_explore = math.ceil(cfg.explore_fraction * k)
            if n_explore:
                by_sigma = np.argsort(-sigma, kind="stable")
                chosen.update(int(i) for i in by_sigma[:n_explore])
            # Claimed winners: any prediction that would beat (or crowd)
            # the best real cost must be verified for real.
            if math.isfinite(self.best_real):
                bar = self.best_real + cfg.winner_margin * max(
                    abs(self.best_real), 1e-12)
            else:
                bar = float("inf")
            chosen.update(int(i) for i in np.nonzero(mu <= bar)[0])

            order = sorted(chosen)
            real = list(evaluate([states[i] for i in order]))
            self._count("surrogate.simulated", len(order))
            self._count("surrogate.sims_avoided", k - len(order))

            results: list = [None] * k
            misses = 0
            for i, value in zip(order, real):
                results[i] = value
                self._absorb(states[i], X[i], value)
                if self._is_failure(value):
                    continue
                cost = float(value)
                err = abs(cost - float(mu[i]))
                miss = err > cfg.miss_tol * max(abs(cost), 1.0) \
                    if math.isfinite(cost) else True
                self._miss_window.append(miss)
                misses += int(miss)
            for i in range(k):
                if results[i] is None:
                    results[i] = float(mu[i])
            self._count("surrogate.verify_misses", misses)
            if misses:
                self._maybe_fit(force=True)
            if len(self._miss_window) == cfg.miss_window and (
                    sum(self._miss_window) / cfg.miss_window
                    > cfg.max_miss_rate):
                self._fallback_left = cfg.fallback_batches
                self._miss_window.clear()
                self._count("surrogate.fallbacks")
        return results
