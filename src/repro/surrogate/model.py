"""RBF-ridge surrogate with byte-stable, seeded training (numpy only).

Kernel ridge regression with a Gaussian radial basis function over the
[0, 1]-scaled feature space (:mod:`repro.surrogate.features`), plus the
GP-style posterior variance that the screening policy uses as its
``uncertainty`` signal.  Everything is deliberately boring: a Cholesky
factorization of the regularized kernel matrix, a deterministic
(seeded, sorted-index) subsample when the corpus outgrows
``max_centers``, and no iterative fitting — so two fits of the same data
on the same machine produce bit-identical coefficients, which is what
keeps surrogate-screened runs a pure function of (seed, config).
"""

from __future__ import annotations

import numpy as np


class RbfSurrogate:
    """Gaussian-RBF kernel ridge regressor with posterior uncertainty.

    Parameters
    ----------
    length_scale:
        Kernel length scale in the scaled feature space, per unit of
        normalized distance (distances are divided by ``sqrt(dim)`` so
        the default works across space dimensionalities).
    ridge:
        Tikhonov regularizer added to the kernel diagonal; also the
        observation-noise term of the posterior variance.
    max_centers:
        Training-set bound.  Beyond it a seeded subsample of rows is
        used; indices are sorted after drawing so the kernel matrix
        layout (and therefore the arithmetic) is order-deterministic.
    seed:
        Seed for the center subsample.
    """

    def __init__(self, length_scale: float = 0.5, ridge: float = 1e-6,
                 max_centers: int = 512, seed: int = 0):
        if length_scale <= 0:
            raise ValueError("length_scale must be positive")
        if ridge <= 0:
            raise ValueError("ridge must be positive")
        if max_centers < 1:
            raise ValueError("max_centers must be >= 1")
        self.length_scale = length_scale
        self.ridge = ridge
        self.max_centers = max_centers
        self.seed = seed
        self._centers: np.ndarray | None = None
        self._alpha: np.ndarray | None = None
        self._chol: np.ndarray | None = None
        self._y_mean = 0.0
        self._y_std = 1.0
        self.n_fit = 0  # rows actually used by the last fit

    @property
    def is_fit(self) -> bool:
        return self._centers is not None

    # -- kernel --------------------------------------------------------
    def _kernel(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        # Normalize squared distances by the dimension so length_scale
        # means the same thing for a 2-D toy space and a 12-D sizer.
        dim = max(a.shape[1], 1)
        sq = (np.sum(a * a, axis=1)[:, None]
              + np.sum(b * b, axis=1)[None, :]
              - 2.0 * (a @ b.T))
        np.maximum(sq, 0.0, out=sq)
        return np.exp(-sq / (2.0 * self.length_scale ** 2 * dim))

    # -- fit / predict / uncertainty ----------------------------------
    def fit(self, X: np.ndarray, y: np.ndarray) -> "RbfSurrogate":
        """Fit on feature rows ``X`` and scalar targets ``y``.

        Rows with non-finite targets (failed/infeasible evaluations with
        infinite cost) are dropped — the model learns the shape of the
        feasible landscape and the screening policy's verification step
        handles the rest.  Raises ``ValueError`` when fewer than two
        finite rows remain.
        """
        X = np.asarray(X, dtype=float)
        y = np.asarray(y, dtype=float)
        if X.ndim != 2 or y.shape != (X.shape[0],):
            raise ValueError("X must be (n, d) and y (n,)")
        keep = np.isfinite(y) & np.all(np.isfinite(X), axis=1)
        X, y = X[keep], y[keep]
        if len(y) < 2:
            raise ValueError("need at least 2 finite training rows")
        if len(y) > self.max_centers:
            rng = np.random.default_rng(self.seed)
            idx = np.sort(rng.choice(len(y), size=self.max_centers,
                                     replace=False))
            X, y = X[idx], y[idx]
        self._y_mean = float(np.mean(y))
        std = float(np.std(y))
        self._y_std = std if std > 1e-12 else 1.0
        z = (y - self._y_mean) / self._y_std
        K = self._kernel(X, X)
        K[np.diag_indices_from(K)] += self.ridge
        self._chol = np.linalg.cholesky(K)
        self._alpha = self._solve_chol(z)
        self._centers = X
        self.n_fit = len(y)
        return self

    def _solve_chol(self, b: np.ndarray) -> np.ndarray:
        """Solve ``K v = b`` through the stored Cholesky factor."""
        tmp = np.linalg.solve(self._chol, b)
        return np.linalg.solve(self._chol.T, tmp)

    def predict(self, X: np.ndarray) -> np.ndarray:
        """Posterior mean cost for each feature row."""
        if not self.is_fit:
            raise RuntimeError("predict() before fit()")
        X = np.atleast_2d(np.asarray(X, dtype=float))
        k = self._kernel(X, self._centers)
        return k @ self._alpha * self._y_std + self._y_mean

    def uncertainty(self, X: np.ndarray) -> np.ndarray:
        """Posterior standard deviation (same units as the targets).

        High where the corpus has never been — the exploration signal
        that keeps the screen from trusting extrapolations.
        """
        if not self.is_fit:
            raise RuntimeError("uncertainty() before fit()")
        X = np.atleast_2d(np.asarray(X, dtype=float))
        k = self._kernel(X, self._centers)
        # var = k(x,x) - k_xc K^-1 k_xc^T, with k(x,x) = 1 for this kernel.
        v = np.linalg.solve(self._chol, k.T)
        var = 1.0 + self.ridge - np.sum(v * v, axis=0)
        return np.sqrt(np.maximum(var, 0.0)) * self._y_std
