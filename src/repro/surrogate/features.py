"""Deterministic featurization of sizing dicts.

A surrogate is only as reproducible as its inputs.  A sizing point in
this toolkit is a ``{name: value}`` dict, and dict key order is an
accident of construction — so the feature vector is defined over the
*sorted* parameter names, and each coordinate is scaled into roughly
[0, 1] using the same per-parameter log/linear convention the search
space itself uses (:class:`~repro.opt.anneal.ContinuousSpace`,
:class:`~repro.opt.genetic.FloatGene`).  Device sizes and currents span
decades; feeding raw values to an RBF kernel would let one parameter's
magnitude drown the rest.

The encoding round-trips: ``decode(encode(point)) == point`` up to
floating-point, which is what makes the spec usable for offline corpus
inspection (``scripts/export_corpus.py``) as well as online screening.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Any, Mapping, Sequence

import numpy as np


@dataclass(frozen=True)
class FeatureSpec:
    """Fixed featurization contract for one search space.

    ``names`` is sorted at construction (use the ``from_*`` builders);
    ``categories`` maps categorical parameter names to their ordered
    choice tuples — a categorical encodes as ``index / (n_choices - 1)``
    so every coordinate lives on the same [0, 1] footing.
    """

    names: tuple[str, ...]
    lower: tuple[float, ...]
    upper: tuple[float, ...]
    log_scale: tuple[bool, ...]
    categories: tuple[tuple[str, tuple], ...] = ()

    def __post_init__(self) -> None:
        if list(self.names) != sorted(self.names):
            raise ValueError("FeatureSpec names must be sorted")
        if len(set(self.names)) != len(self.names):
            raise ValueError("duplicate feature names")
        if not (len(self.names) == len(self.lower) == len(self.upper)
                == len(self.log_scale)):
            raise ValueError("names/lower/upper/log_scale length mismatch")
        cat = dict(self.categories)
        for name, lo, hi, log in zip(self.names, self.lower, self.upper,
                                     self.log_scale):
            if name in cat:
                continue
            if lo >= hi:
                raise ValueError(f"feature {name}: bad bounds [{lo}, {hi}]")
            if log and lo <= 0:
                raise ValueError(f"feature {name}: log scale needs > 0 bounds")

    @property
    def dim(self) -> int:
        return len(self.names)

    def _category(self, name: str) -> tuple | None:
        for cat_name, choices in self.categories:
            if cat_name == name:
                return choices
        return None

    # -- encode / decode ----------------------------------------------
    def encode(self, point: Mapping[str, Any]) -> np.ndarray:
        """Sorted-key, per-parameter-scaled feature vector of a point.

        Key order of ``point`` is irrelevant; extra keys are ignored
        (sizers pass complete designs that include fixed parameters);
        a missing parameter raises ``ValueError`` naming it.
        """
        out = np.empty(self.dim, dtype=float)
        for i, name in enumerate(self.names):
            if name not in point:
                raise ValueError(f"point is missing parameter {name!r}")
            value = point[name]
            choices = self._category(name)
            if choices is not None:
                try:
                    idx = choices.index(value)
                except ValueError:
                    raise ValueError(
                        f"{name!r}: {value!r} not in {choices!r}") from None
                out[i] = idx / max(len(choices) - 1, 1)
                continue
            v = float(value)
            lo, hi = self.lower[i], self.upper[i]
            if self.log_scale[i]:
                out[i] = (math.log(v) - math.log(lo)) / (
                    math.log(hi) - math.log(lo))
            else:
                out[i] = (v - lo) / (hi - lo)
        return out

    def decode(self, vector: Sequence[float]) -> dict[str, Any]:
        """Inverse of :meth:`encode` (categoricals snap to nearest index)."""
        vector = np.asarray(vector, dtype=float)
        if vector.shape != (self.dim,):
            raise ValueError(
                f"expected a vector of dim {self.dim}, got {vector.shape}")
        out: dict[str, Any] = {}
        for i, name in enumerate(self.names):
            choices = self._category(name)
            u = float(vector[i])
            if choices is not None:
                idx = int(round(u * max(len(choices) - 1, 1)))
                out[name] = choices[min(max(idx, 0), len(choices) - 1)]
                continue
            lo, hi = self.lower[i], self.upper[i]
            if self.log_scale[i]:
                out[name] = math.exp(
                    math.log(lo) + u * (math.log(hi) - math.log(lo)))
            else:
                out[name] = lo + u * (hi - lo)
        return out

    # -- builders ------------------------------------------------------
    @classmethod
    def from_continuous(cls, space) -> "FeatureSpec":
        """Build from a :class:`~repro.opt.anneal.ContinuousSpace`."""
        order = sorted(range(len(space.names)),
                       key=lambda i: space.names[i])
        return cls(
            names=tuple(space.names[i] for i in order),
            lower=tuple(float(space.lower[i]) for i in order),
            upper=tuple(float(space.upper[i]) for i in order),
            log_scale=tuple(bool(space.log_scale) for _ in order),
        )

    @classmethod
    def from_space(cls, space) -> "FeatureSpec":
        """Build from a :class:`~repro.synthesis.DesignSpace`."""
        return cls.from_continuous(space.to_continuous())

    @classmethod
    def from_genes(cls, genes) -> "FeatureSpec":
        """Build from a mixed :class:`FloatGene`/:class:`CategoricalGene`
        list (the :class:`~repro.opt.genetic.GeneticOptimizer` genome)."""
        names, lower, upper, log, cats = [], [], [], [], []
        for gene in sorted(genes, key=lambda g: g.name):
            names.append(gene.name)
            if hasattr(gene, "choices"):
                cats.append((gene.name, tuple(gene.choices)))
                lower.append(0.0)
                upper.append(1.0)
                log.append(False)
            else:
                lower.append(float(gene.lower))
                upper.append(float(gene.upper))
                log.append(bool(gene.log_scale))
        return cls(names=tuple(names), lower=tuple(lower),
                   upper=tuple(upper), log_scale=tuple(log),
                   categories=tuple(cats))

    def describe(self) -> dict:
        """JSON-safe summary (recorded by ``scripts/export_corpus.py``)."""
        return {
            "names": list(self.names),
            "lower": list(self.lower),
            "upper": list(self.upper),
            "log_scale": list(self.log_scale),
            "categories": {n: list(c) for n, c in self.categories},
        }
