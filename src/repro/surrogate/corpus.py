"""Training-pair harvesting and storage for the surrogate.

The :class:`~repro.engine.cache.EvalCache` already holds every
performance result the toolkit ever computed — but it is content
addressed, so the *sizings* behind the SHA-256 keys are not recoverable
from the cache alone.  The missing half is the :class:`CorpusIndex`: an
append-only JSONL sidecar (``corpus_index.jsonl``) mapping cache key →
sizing dict, written wherever evaluations happen (the sizer's engine
batches, the serve broker's completion loop).  :func:`harvest_cache`
joins the two into a :class:`Corpus` of ``(features, cost,
performance)`` records — which is how heavy traffic through the
engine/serve stack literally becomes training data.

The corpus itself is a bounded, key-deduplicated record list with JSONL
persistence (``corpus.jsonl``), so a warm surrogate survives across
sizing runs and can be inspected offline (``scripts/export_corpus.py``).
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Callable, IO

import numpy as np

from repro.surrogate.features import FeatureSpec


@dataclass
class CorpusRecord:
    """One training pair.

    ``features`` and ``cost`` are what the model trains on; ``sizes``,
    ``performance`` and the cache ``key`` are kept (when known) for
    offline inspection and re-featurization under a different spec.
    """

    features: tuple[float, ...]
    cost: float
    key: str | None = None
    sizes: dict | None = None
    performance: dict | None = None

    def to_json(self) -> dict:
        return {
            "features": list(self.features),
            "cost": self.cost,
            "key": self.key,
            "sizes": self.sizes,
            "performance": self.performance,
        }

    @classmethod
    def from_json(cls, obj: dict) -> "CorpusRecord":
        return cls(
            features=tuple(float(v) for v in obj["features"]),
            cost=float(obj["cost"]),
            key=obj.get("key"),
            sizes=obj.get("sizes"),
            performance=obj.get("performance"),
        )


class Corpus:
    """Bounded, deduplicated store of :class:`CorpusRecord`.

    Deduplication key is the cache key when present, else the feature
    bytes — re-harvesting a cache or re-screening a revisited annealer
    state never double-counts a training pair.  When ``max_records`` is
    exceeded the oldest records are evicted (the newest data tracks the
    optimizer's current trust region).
    """

    def __init__(self, max_records: int = 4096):
        if max_records < 1:
            raise ValueError("max_records must be >= 1")
        self.max_records = max_records
        self.records: list[CorpusRecord] = []
        self._seen: set = set()

    @staticmethod
    def _dedup_key(record: CorpusRecord):
        if record.key is not None:
            return record.key
        return np.asarray(record.features, dtype=float).tobytes()

    def add(self, record: CorpusRecord) -> bool:
        """Append one record; returns False on duplicate."""
        dk = self._dedup_key(record)
        if dk in self._seen:
            return False
        self._seen.add(dk)
        self.records.append(record)
        while len(self.records) > self.max_records:
            evicted = self.records.pop(0)
            self._seen.discard(self._dedup_key(evicted))
        return True

    def __len__(self) -> int:
        return len(self.records)

    def matrix(self) -> tuple[np.ndarray, np.ndarray]:
        """Training arrays ``(X, y)`` over records with finite cost."""
        rows = [r for r in self.records
                if np.isfinite(r.cost)
                and np.all(np.isfinite(r.features))]
        if not rows:
            return (np.empty((0, 0)), np.empty((0,)))
        X = np.array([r.features for r in rows], dtype=float)
        y = np.array([r.cost for r in rows], dtype=float)
        return X, y

    # -- persistence ---------------------------------------------------
    def to_jsonl(self, path: str | Path) -> Path:
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        tmp = path.with_suffix(".tmp")
        with open(tmp, "w") as fh:
            for record in self.records:
                fh.write(json.dumps(record.to_json(), sort_keys=True) + "\n")
        tmp.replace(path)
        return path

    @classmethod
    def from_jsonl(cls, path: str | Path,
                   max_records: int = 4096) -> "Corpus":
        """Load a corpus dump; malformed lines are skipped, not fatal."""
        corpus = cls(max_records=max_records)
        path = Path(path)
        if not path.exists():
            return corpus
        with open(path) as fh:
            for line in fh:
                line = line.strip()
                if not line:
                    continue
                try:
                    corpus.add(CorpusRecord.from_json(json.loads(line)))
                except (json.JSONDecodeError, KeyError, TypeError,
                        ValueError):
                    continue
        return corpus

    def merge(self, other: "Corpus") -> int:
        """Add every record of ``other``; returns how many were new."""
        return sum(self.add(r) for r in other.records)


class CorpusIndex:
    """Append-only JSONL sidecar mapping cache key → sizing dict.

    The writer half lives next to whatever computes evaluations (sizer
    engine batches, the serve broker); :meth:`load` is the reader half
    :func:`harvest_cache` joins against.  Records are one JSON object
    per line (``{"key": ..., "sizes": {...}}``), flushed per write so a
    crash loses at most the line in flight.
    """

    def __init__(self, path: str | Path):
        self.path = Path(path)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self._fh: IO[str] | None = open(self.path, "a")
        self._written: set[str] = set()

    def record(self, key: str, sizes: dict) -> bool:
        """Append one mapping; dedups keys already written this session."""
        if self._fh is None:
            raise RuntimeError("CorpusIndex is closed")
        if key in self._written:
            return False
        line = json.dumps({"key": key, "sizes": sizes}, sort_keys=True)
        self._fh.write(line + "\n")
        self._fh.flush()
        self._written.add(key)
        return True

    def close(self) -> None:
        if self._fh is not None:
            self._fh.close()
            self._fh = None

    def __enter__(self) -> "CorpusIndex":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    @staticmethod
    def load(path: str | Path) -> dict[str, dict]:
        """Read a sidecar into ``{key: sizes}`` (last write wins;
        malformed lines skipped)."""
        out: dict[str, dict] = {}
        path = Path(path)
        if not path.exists():
            return out
        with open(path) as fh:
            for line in fh:
                line = line.strip()
                if not line:
                    continue
                try:
                    obj = json.loads(line)
                    out[str(obj["key"])] = dict(obj["sizes"])
                except (json.JSONDecodeError, KeyError, TypeError,
                        ValueError):
                    continue
        return out


def harvest_cache(cache, index: dict[str, dict] | str | Path,
                  feature_spec: FeatureSpec | None = None,
                  cost_fn: Callable[[dict], float] | None = None,
                  corpus: Corpus | None = None,
                  max_records: int = 4096) -> Corpus:
    """Join an :class:`~repro.engine.cache.EvalCache` with a sidecar index.

    Enumerates both cache layers (the in-memory LRU via ``items()`` and
    the disk layer via ``scan_disk()``, memory winning on key overlap),
    looks each key up in ``index`` (a loaded dict or a path to a
    ``corpus_index.jsonl``), and emits one record per match.  Cached
    dict values are performance dicts — ``cost_fn`` (typically
    ``specs.cost``) turns them into training targets; plain numeric
    values are used as the cost directly.  Entries without a usable
    cost, without an index entry, or (when a ``feature_spec`` is given)
    without the spec's parameters are skipped — harvesting is best
    effort over whatever traffic happened to flow.
    """
    if not isinstance(index, dict):
        index = CorpusIndex.load(index)
    corpus = corpus if corpus is not None else Corpus(max_records=max_records)
    entries: dict[str, Any] = {}
    for key, value in cache.scan_disk():
        entries[key] = value
    for key, value in cache.items():
        entries[key] = value
    for key in sorted(entries):
        sizes = index.get(key)
        if sizes is None:
            continue
        value = entries[key]
        performance = None
        if isinstance(value, dict):
            performance = value
            if cost_fn is None:
                continue
            try:
                cost = float(cost_fn(value))
            except (TypeError, ValueError, KeyError, ZeroDivisionError,
                    OverflowError):
                continue
        else:
            try:
                cost = float(value)
            except (TypeError, ValueError):
                continue
        if feature_spec is not None:
            try:
                features = tuple(float(v)
                                 for v in feature_spec.encode(sizes))
            except (ValueError, TypeError):
                continue
        else:
            features = tuple(float(v) for v in
                             (sizes[k] for k in sorted(sizes)))
        corpus.add(CorpusRecord(features=features, cost=cost, key=key,
                                sizes=dict(sizes),
                                performance=performance))
    return corpus
