"""Cache-trained surrogate screening for the sizing hot path.

The paper's frontend thesis is that simulation-in-the-loop sizing is the
bottleneck of mixed-signal synthesis; the ML-enabled AMS synthesis
literature answers with cheap learned performance predictors that let
the optimizer simulate only promising candidates.  This package is that
layer, built entirely from infrastructure the toolkit already owns: the
content-addressed :class:`~repro.engine.cache.EvalCache` is a free
training set (every entry is a ``(sizing, performance)`` pair), the
telemetry/trace stack gives the screening layer the same observability
as every other subsystem, and the optimizer batch hooks give it a seam
to sit in without touching the search logic.

Four modules, data-flow order:

* :mod:`repro.surrogate.features` — deterministic featurization of
  sizing dicts (sorted-key vectors, per-parameter log/linear scaling
  from the search-space bounds);
* :mod:`repro.surrogate.corpus` — training-pair harvesting from the
  cache (plus a JSONL sidecar index, since the cache stores hashes) and
  a bounded, deduplicated record store;
* :mod:`repro.surrogate.model` — an RBF-ridge surrogate with
  ``fit`` / ``predict`` / ``uncertainty`` and seeded, byte-stable
  training (numpy only);
* :mod:`repro.surrogate.screen` — the trust-region policy that decides,
  per candidate batch, what gets a real simulation and what gets a
  prediction.  Claimed winners are always verified for real.
"""

from repro.surrogate.corpus import (
    Corpus,
    CorpusIndex,
    CorpusRecord,
    harvest_cache,
)
from repro.surrogate.features import FeatureSpec
from repro.surrogate.model import RbfSurrogate
from repro.surrogate.screen import SurrogateScreen

__all__ = [
    "Corpus",
    "CorpusIndex",
    "CorpusRecord",
    "FeatureSpec",
    "RbfSurrogate",
    "SurrogateScreen",
    "harvest_cache",
]
