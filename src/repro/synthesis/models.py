"""Analytic (equation-based) performance models for opamp topologies.

These are the "(simplified) analytic design equations" of the
equation-based optimization tools (OPASYN, OPTIMAN, STAIC): square-law
first-order expressions for gain, bandwidth, slew rate, swing, noise,
power and area as functions of device sizes and bias currents.

The same equations serve three masters:

* the knowledge-based design plans invert them in a fixed order;
* the equation-based optimizer evaluates them inside annealing;
* the topology selector evaluates them over *intervals* for feasibility.

Every function takes and returns plain floats so interval objects can flow
through unchanged wherever the expression is interval-compatible.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.circuits.devices import (
    BOLTZMANN,
    ROOM_TEMP_K,
    MosModel,
    NMOS_DEFAULT,
    PMOS_DEFAULT,
)

FOUR_KT = 4.0 * BOLTZMANN * ROOM_TEMP_K



def db20_value(gain):
    """20·log10(gain) for floats or intervals (interval-safe)."""
    if hasattr(gain, "log"):
        return gain.log() * (20.0 / math.log(10.0))
    return 20.0 * math.log10(gain)

def gm_saturation(kp: float, w_over_l: float, i_d: float):
    """gm = sqrt(2·kp·(W/L)·Id) — works for floats and intervals."""
    x = 2.0 * kp * w_over_l * i_d
    if hasattr(x, "sqrt"):
        return x.sqrt()
    return math.sqrt(x)


def gds_saturation(lambda_: float, i_d: float):
    """Output conductance gds = λ·Id."""
    return lambda_ * i_d


def overdrive(kp: float, w_over_l: float, i_d: float):
    """Vov = sqrt(2·Id/(kp·W/L))."""
    x = 2.0 * i_d / (kp * w_over_l)
    if hasattr(x, "sqrt"):
        return x.sqrt()
    return math.sqrt(x)


@dataclass(frozen=True)
class OtaDesign:
    """Design variables of the 5-transistor OTA (shared by all frontends)."""

    w_in: float
    l_in: float
    w_load: float
    l_load: float
    w_tail: float
    l_tail: float
    i_bias: float
    c_load: float
    vdd: float = 3.3

    def sizes(self) -> dict[str, float]:
        return {
            "w_in": self.w_in, "l_in": self.l_in,
            "w_load": self.w_load, "l_load": self.l_load,
            "w_tail": self.w_tail, "l_tail": self.l_tail,
            "i_bias": self.i_bias, "c_load": self.c_load,
            "vdd": self.vdd,
        }

    @staticmethod
    def from_sizes(sizes: dict[str, float]) -> "OtaDesign":
        return OtaDesign(
            w_in=sizes["w_in"], l_in=sizes["l_in"],
            w_load=sizes["w_load"], l_load=sizes["l_load"],
            w_tail=sizes["w_tail"], l_tail=sizes["l_tail"],
            i_bias=sizes["i_bias"], c_load=sizes["c_load"],
            vdd=sizes.get("vdd", 3.3))


def ota_performance(design: OtaDesign,
                    nmos: MosModel = NMOS_DEFAULT,
                    pmos: MosModel = PMOS_DEFAULT) -> dict[str, float]:
    """First-order performance of the 5T OTA (NMOS pair, PMOS mirror).

    Returned metrics: ``gain`` (V/V), ``gain_db``, ``gbw`` (Hz), ``slew_rate``
    (V/s), ``power`` (W), ``area`` (m² of active devices), ``swing`` (V),
    ``input_noise_density`` (V/√Hz at white floor), ``vov_in`` (V).
    """
    i_tail = design.i_bias  # 1:1 tail mirror
    i_half = i_tail / 2.0
    gm_in = gm_saturation(nmos.kp, design.w_in / design.l_in, i_half)
    gds2 = gds_saturation(nmos.lambda_, i_half)
    gds4 = gds_saturation(pmos.lambda_, i_half)
    gain = gm_in / (gds2 + gds4)
    gbw = gm_in / (2.0 * math.pi * design.c_load)
    slew = i_tail / design.c_load
    power = design.vdd * (i_tail + design.i_bias)  # tail + reference branch
    area = 2 * (design.w_in * design.l_in
                + design.w_load * design.l_load
                + design.w_tail * design.l_tail) * 1.5  # wiring overhead
    vov_in = overdrive(nmos.kp, design.w_in / design.l_in, i_half)
    vov_tail = overdrive(nmos.kp, design.w_tail / design.l_tail, i_tail)
    vov_load = overdrive(pmos.kp, design.w_load / design.l_load, i_half)
    swing = design.vdd - vov_tail - vov_in - vov_load
    gm_load = gm_saturation(pmos.kp, design.w_load / design.l_load, i_half)
    # Input-referred white noise density of the pair + mirrored load.
    noise2 = 2.0 * FOUR_KT * (2.0 / 3.0) / gm_in * (1.0 + gm_load / gm_in)
    if hasattr(noise2, "sqrt"):
        noise = noise2.sqrt()
    else:
        noise = math.sqrt(noise2)
    gain_db = db20_value(gain)
    return {
        "gain": gain,
        "gain_db": gain_db,
        "gbw": gbw,
        "slew_rate": slew,
        "power": power,
        "area": area,
        "swing": swing,
        "input_noise_density": noise,
        "vov_in": vov_in,
    }


@dataclass(frozen=True)
class TwoStageDesign:
    """Design variables of the Miller two-stage opamp."""

    w_in: float
    l_in: float
    w_load: float
    l_load: float
    w_tail: float
    l_tail: float
    w_p2: float
    l_p2: float
    c_comp: float
    i_bias: float
    c_load: float
    vdd: float = 3.3

    def sizes(self) -> dict[str, float]:
        # The library's second-stage sink is ratio-derived for bias balance.
        w_n2 = (self.w_p2 / self.l_p2) / (self.w_load / self.l_load) \
            * (self.w_tail / 1.0) * 0.5 * 2e-6
        return {
            "w_in": self.w_in, "l_in": self.l_in,
            "w_load": self.w_load, "l_load": self.l_load,
            "w_tail": self.w_tail, "l_tail": self.l_tail,
            "w_p2": self.w_p2, "l_p2": self.l_p2,
            "w_n2": max(w_n2, 2e-6), "l_n2": 2e-6,
            "c_comp": self.c_comp,
            "i_bias": self.i_bias, "c_load": self.c_load,
            "vdd": self.vdd,
        }


def two_stage_performance(design: TwoStageDesign,
                          nmos: MosModel = NMOS_DEFAULT,
                          pmos: MosModel = PMOS_DEFAULT) -> dict[str, float]:
    """First-order performance of the Miller-compensated two-stage opamp."""
    i_tail = design.i_bias
    i_half = i_tail / 2.0
    # Second-stage current from the mirror ratio (balanced design).
    i2 = i_half * (design.w_p2 / design.l_p2) / (design.w_load / design.l_load)
    gm1 = gm_saturation(nmos.kp, design.w_in / design.l_in, i_half)
    gm6 = gm_saturation(pmos.kp, design.w_p2 / design.l_p2, i2)
    gds2 = gds_saturation(nmos.lambda_, i_half)
    gds4 = gds_saturation(pmos.lambda_, i_half)
    gds6 = gds_saturation(pmos.lambda_, i2)
    gds7 = gds_saturation(nmos.lambda_, i2)
    gain1 = gm1 / (gds2 + gds4)
    gain2 = gm6 / (gds6 + gds7)
    gain = gain1 * gain2
    gbw = gm1 / (2.0 * math.pi * design.c_comp)
    # Nondominant pole at gm6/CL: phase margin from the two-pole model.
    p2 = gm6 / (2.0 * math.pi * design.c_load)
    pm = 90.0 - math.degrees(math.atan(gbw / p2)) if isinstance(gbw, float) \
        else 90.0
    slew = min(i_tail / design.c_comp, i2 / design.c_load) \
        if isinstance(i2, float) else i_tail / design.c_comp
    power = design.vdd * (i_tail + i2 + design.i_bias)
    area = (2 * (design.w_in * design.l_in + design.w_load * design.l_load)
            + design.w_tail * design.l_tail + design.w_p2 * design.l_p2
            + design.c_comp / 1e-3) * 1.5  # 1 mF/m² MiM-style cap density
    vov_in = overdrive(nmos.kp, design.w_in / design.l_in, i_half)
    vov6 = overdrive(pmos.kp, design.w_p2 / design.l_p2, i2)
    swing = design.vdd - vov6 - overdrive(nmos.lambda_ * 0 + nmos.kp,
                                          design.w_tail / design.l_tail,
                                          i2)
    noise2 = 2.0 * FOUR_KT * (2.0 / 3.0) / gm1
    noise = noise2.sqrt() if hasattr(noise2, "sqrt") else math.sqrt(noise2)
    gain_db = db20_value(gain)
    return {
        "gain": gain,
        "gain_db": gain_db,
        "gbw": gbw,
        "phase_margin": pm,
        "slew_rate": slew,
        "power": power,
        "area": area,
        "swing": swing,
        "input_noise_density": noise,
        "vov_in": vov_in,
    }


def folded_cascode_performance(sizes: dict[str, float],
                               nmos: MosModel = NMOS_DEFAULT,
                               pmos: MosModel = PMOS_DEFAULT) -> dict[str, float]:
    """First-order performance of the folded-cascode OTA.

    ``sizes`` uses the keys of ``FOLDED_CASCODE_DEFAULTS`` in the circuit
    library.  Single-stage: GBW = gm_in/(2π·CL); gain boosted by the
    cascode factor gm·ro.
    """
    i_tail = sizes["i_bias"]
    i_half = i_tail / 2.0
    c_load = sizes["c_load"]
    vdd = sizes.get("vdd", 3.3)
    gm_in = gm_saturation(nmos.kp, sizes["w_in"] / sizes["l_in"], i_half)
    # Cascode legs carry the source current minus half the tail, i.e.
    # i_tail/2 (written as a single term so interval evaluation does not
    # suffer the dependency problem of i_tail - i_tail/2).
    i_leg = i_tail / 2.0
    gm_cn = gm_saturation(nmos.kp, sizes["w_ncas"] / sizes["l_ncas"], i_leg)
    gm_cp = gm_saturation(pmos.kp, sizes["w_pcas"] / sizes["l_pcas"], i_leg)
    go_n = gds_saturation(nmos.lambda_, i_leg)
    go_p = gds_saturation(pmos.lambda_, i_leg)
    r_down = gm_cn / (go_n * go_n)          # cascoded NMOS mirror
    r_up = gm_cp / (go_p * (go_p + gds_saturation(nmos.lambda_, i_half)))
    r_out = 1.0 / (1.0 / r_down + 1.0 / r_up)
    gain = gm_in * r_out
    gbw = gm_in / (2.0 * math.pi * c_load)
    slew = i_tail / c_load
    power = vdd * (2 * i_tail + 2 * sizes["i_bias"])
    area = sum(sizes[w] * sizes[l] for w, l in (
        ("w_in", "l_in"), ("w_tail", "l_tail"), ("w_psrc", "l_psrc"),
        ("w_pcas", "l_pcas"), ("w_ncas", "l_ncas"), ("w_nsrc", "l_nsrc"),
    )) * 2 * 1.5
    noise2 = 2.0 * FOUR_KT * (2.0 / 3.0) / gm_in * 1.5
    noise = noise2.sqrt() if hasattr(noise2, "sqrt") else math.sqrt(noise2)
    vov_in = overdrive(nmos.kp, sizes["w_in"] / sizes["l_in"], i_half)
    swing = vdd - 4.0 * 0.25  # four stacked overdrives, nominal
    gain_db = db20_value(gain)
    return {
        "gain": gain,
        "gain_db": gain_db,
        "gbw": gbw,
        "slew_rate": slew,
        "power": power,
        "area": area,
        "swing": swing,
        "input_noise_density": noise,
        "vov_in": vov_in,
    }
