"""BLADES-style rule-based circuit sizing [El-Turky & Perry, TCAD'89].

"Other ways to encode the knowledge have been explored as well, such as
in BLADES which is a rule-based system to size analog circuits" (§2.2,
[7]).  Where IDAC encodes expertise as *ordered plans*, BLADES encodes it
as an unordered base of IF-THEN rules fired by a forward-chaining
inference engine — the classic expert-system architecture.

This module provides the engine (:class:`RuleEngine`: working memory,
conflict resolution by priority then recency, refraction so a rule fires
once per matching state) and an OTA sizing rule base expressing the same
expertise as the design plan, rule by rule.  A consultation either
derives a complete sizing or reports which goals it could not establish —
the explainability that motivated rule-based CAD.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Callable

from repro.circuits.devices import NMOS_DEFAULT, PMOS_DEFAULT


class InferenceError(RuntimeError):
    """Raised when the engine cannot establish the requested goals."""


@dataclass(frozen=True)
class Rule:
    """IF ``condition(facts)`` THEN assert ``action(facts)``.

    ``produces`` declares the fact keys the rule can assert — used for
    refraction (a rule never re-fires once its facts exist) and for the
    explanation trace.
    """

    name: str
    condition: Callable[[dict], bool]
    action: Callable[[dict], dict]
    produces: tuple[str, ...]
    priority: int = 0
    explanation: str = ""


@dataclass
class Firing:
    rule: str
    asserted: dict
    cycle: int


@dataclass
class Consultation:
    """Result of one inference run: final facts plus the firing trace."""

    facts: dict
    trace: list[Firing]
    goals_met: bool

    def explain(self) -> str:
        lines = []
        for firing in self.trace:
            facts = ", ".join(f"{k}={_fmt(v)}"
                              for k, v in firing.asserted.items())
            lines.append(f"cycle {firing.cycle}: [{firing.rule}] {facts}")
        return "\n".join(lines)


def _fmt(value) -> str:
    if isinstance(value, float):
        return f"{value:.4g}"
    return str(value)


class RuleEngine:
    """Forward-chaining inference with priority + refraction."""

    def __init__(self, rules: list[Rule]):
        names = [r.name for r in rules]
        if len(names) != len(set(names)):
            raise ValueError("duplicate rule names")
        self.rules = list(rules)

    def run(self, initial_facts: dict, goals: tuple[str, ...] = (),
            max_cycles: int = 200) -> Consultation:
        """Fire rules until quiescence (or all goals established)."""
        facts = dict(initial_facts)
        fired: set[str] = set()
        trace: list[Firing] = []
        for cycle in range(1, max_cycles + 1):
            if goals and all(g in facts for g in goals):
                break
            # Conflict set: eligible rules whose products are still absent.
            eligible = [
                r for r in self.rules
                if r.name not in fired
                and any(p not in facts for p in r.produces)
                and _safe(r.condition, facts)
            ]
            if not eligible:
                break
            eligible.sort(key=lambda r: -r.priority)
            rule = eligible[0]
            asserted = _safe_action(rule, facts)
            fired.add(rule.name)
            new_facts = {k: v for k, v in asserted.items()
                         if k not in facts}
            facts.update(new_facts)
            trace.append(Firing(rule.name, new_facts, cycle))
        goals_met = all(g in facts for g in goals)
        return Consultation(facts, trace, goals_met)

    def consult(self, initial_facts: dict,
                goals: tuple[str, ...]) -> Consultation:
        """Like :meth:`run` but raises with the missing goals on failure."""
        result = self.run(initial_facts, goals)
        if not result.goals_met:
            missing = [g for g in goals if g not in result.facts]
            raise InferenceError(
                f"could not establish {missing}; "
                f"fired {[f.rule for f in result.trace]}")
        return result


def _safe(condition: Callable[[dict], bool], facts: dict) -> bool:
    try:
        return bool(condition(facts))
    except KeyError:
        return False


def _safe_action(rule: Rule, facts: dict) -> dict:
    try:
        return rule.action(facts) or {}
    except (KeyError, ValueError, ZeroDivisionError) as exc:
        raise InferenceError(
            f"rule {rule.name!r} failed to execute: {exc}") from exc


# ----------------------------------------------------------------------
# The OTA sizing knowledge base
# ----------------------------------------------------------------------

def ota_rule_base(nmos=NMOS_DEFAULT, pmos=PMOS_DEFAULT) -> list[Rule]:
    """The 5T-OTA expertise as unordered rules.

    Input facts: ``gbw``, ``slew_rate``, ``c_load``, optionally ``gain``
    and ``vdd``.  Goal facts: the six device sizes plus ``i_bias``.
    """
    vov = 0.2
    l_analog = 2e-6

    return [
        Rule("tail-from-slew",
             lambda f: "slew_rate" in f and "c_load" in f,
             lambda f: {"i_tail": max(f["slew_rate"] * f["c_load"], 2e-6)},
             produces=("i_tail",), priority=10,
             explanation="slew rate fixes the tail current: I = SR*CL"),
        Rule("gm-from-gbw",
             lambda f: "gbw" in f and "c_load" in f,
             lambda f: {"gm_in": 2 * math.pi * f["gbw"] * f["c_load"]},
             produces=("gm_in",), priority=10,
             explanation="GBW fixes the input gm: gm = 2*pi*GBW*CL"),
        Rule("input-pair-size",
             lambda f: "gm_in" in f and "i_tail" in f,
             lambda f: {
                 "l_in": l_analog,
                 "w_in": max(f["gm_in"] ** 2
                             / (2 * nmos.kp * f["i_tail"] / 2) * l_analog,
                             2e-6),
             },
             produces=("w_in", "l_in"), priority=5,
             explanation="invert gm = sqrt(2*kp*(W/L)*Id)"),
        Rule("load-size",
             lambda f: "i_tail" in f,
             lambda f: {
                 "l_load": l_analog,
                 "w_load": max(2 * (f["i_tail"] / 2)
                               / (pmos.kp * vov ** 2) * l_analog, 2e-6),
             },
             produces=("w_load", "l_load"), priority=5,
             explanation="mirror load at nominal overdrive"),
        Rule("tail-size",
             lambda f: "i_tail" in f,
             lambda f: {
                 "l_tail": l_analog,
                 "w_tail": max(2 * f["i_tail"]
                               / (nmos.kp * vov ** 2) * l_analog, 2e-6),
             },
             produces=("w_tail", "l_tail"), priority=5,
             explanation="tail source at nominal overdrive"),
        Rule("bias-reference",
             lambda f: "i_tail" in f,
             lambda f: {"i_bias": f["i_tail"]},
             produces=("i_bias",), priority=5,
             explanation="1:1 tail mirror reference"),
        Rule("gain-check",
             lambda f: "gm_in" in f and "i_tail" in f and "gain" in f,
             lambda f: {
                 "gain_achieved": f["gm_in"]
                 / ((nmos.lambda_ + pmos.lambda_) * f["i_tail"] / 2),
                 "gain_ok": f["gm_in"]
                 / ((nmos.lambda_ + pmos.lambda_) * f["i_tail"] / 2)
                 >= f["gain"],
             },
             produces=("gain_achieved", "gain_ok"), priority=1,
             explanation="single-stage gain = gm/((ln+lp)*Id)"),
    ]


OTA_SIZE_GOALS = ("w_in", "l_in", "w_load", "l_load", "w_tail", "l_tail",
                  "i_bias")


def size_ota_with_rules(gbw: float, slew_rate: float, c_load: float,
                        gain: float | None = None) -> Consultation:
    """Run the BLADES-style consultation for the 5T OTA."""
    engine = RuleEngine(ota_rule_base())
    facts: dict = {"gbw": gbw, "slew_rate": slew_rate, "c_load": c_load}
    goals = OTA_SIZE_GOALS
    if gain is not None:
        facts["gain"] = gain
        goals = goals + ("gain_ok",)
    result = engine.consult(facts, goals)
    if gain is not None and not result.facts["gain_ok"]:
        raise InferenceError(
            f"gain goal unreachable: achieved "
            f"{result.facts['gain_achieved']:.1f} < required {gain:.1f}")
    return result
