"""Manufacturability-aware synthesis: worst-case corner optimization.

Reproduces the extension of ASTRX/OBLX described in [Mukherjee, Carley &
Rutenbar, ICCAD'95]: instead of optimizing only the nominal circuit, every
candidate is evaluated at operating/process *corners* and the worst case
must meet the specs.  The paper reports ~4×–10× CPU overhead; the
``benchmarks`` suite measures our ratio.

The corner search follows the nonlinear infinite-programming flavour of
the original: the constraint "for all corners: spec met" is approximated
by maximizing each spec violation over the corner box — here over the
2^k corner vertices plus the nominal point, which is exact for the
monotone first-order models.
"""

from __future__ import annotations

import itertools
import time
from dataclasses import dataclass, field
from typing import Callable

from repro.core.specs import SpecSet
from repro.opt.anneal import AnnealSchedule
from repro.synthesis.equation_based import (
    DesignSpace,
    EquationBasedSizer,
    SizingResult,
)

# An environment/process corner: multiplicative or additive shifts applied
# to quantities the performance model reads from its input dict.
CornerTransform = Callable[[dict[str, float]], dict[str, float]]


@dataclass(frozen=True)
class Corner:
    """One named corner: supply/temperature/process parameter shifts."""

    name: str
    vdd_scale: float = 1.0
    kp_scale: float = 1.0       # mobility (fast/slow process, temperature)
    vto_shift: float = 0.0      # threshold shift (V)

    def apply(self, sizes: dict[str, float]) -> dict[str, float]:
        out = dict(sizes)
        out["vdd"] = sizes.get("vdd", 3.3) * self.vdd_scale
        out["_kp_scale"] = self.kp_scale
        out["_vto_shift"] = self.vto_shift
        return out


NOMINAL = Corner("nominal")


def standard_corners(vdd_tol: float = 0.1) -> list[Corner]:
    """Nominal + the 2³ box vertices of (vdd, mobility, threshold)."""
    corners = [NOMINAL]
    for dv, dk, dt in itertools.product((-1, 1), repeat=3):
        corners.append(Corner(
            name=f"v{'+' if dv > 0 else '-'}"
                 f"k{'+' if dk > 0 else '-'}"
                 f"t{'+' if dt > 0 else '-'}",
            vdd_scale=1.0 + dv * vdd_tol,
            kp_scale=1.0 + dk * 0.15,
            vto_shift=dt * 0.05,
        ))
    return corners


def corner_aware_model(model: Callable[[dict], dict]) -> Callable[[dict], dict]:
    """Wrap an equation model so corner scale factors reach it.

    Models read ``_kp_scale``/``_vto_shift`` if they support process
    corners; the default models fold kp scaling into the bias current
    (first-order equivalent) so any model works unmodified.
    """

    def wrapped(sizes: dict) -> dict:
        kp_scale = sizes.pop("_kp_scale", 1.0)
        sizes.pop("_vto_shift", 0.0)
        adjusted = dict(sizes)
        # gm ∝ sqrt(kp·I): mobility scaling is equivalent to scaling the
        # W/L of every device; widths carry it here.
        for key in list(adjusted):
            if key.startswith("w_"):
                adjusted[key] = adjusted[key] * kp_scale
        return model(adjusted)

    return wrapped


@dataclass
class WorstCaseReport:
    """Per-metric worst corner and value."""

    worst_value: dict[str, float]
    worst_corner: dict[str, str]
    nominal: dict[str, float]


def worst_case_performance(model: Callable[[dict], dict],
                           sizes: dict[str, float],
                           corners: list[Corner],
                           specs: SpecSet) -> tuple[dict[str, float], WorstCaseReport]:
    """Evaluate all corners; per spec, keep the worst value.

    'Worst' is spec-directional: for a MIN spec the smallest value, for a
    MAX spec the largest.  Objectives report the nominal value.
    """
    wrapped = corner_aware_model(model)
    by_corner = {c.name: wrapped(c.apply(sizes)) for c in corners}
    nominal = by_corner.get("nominal") or wrapped(NOMINAL.apply(sizes))
    worst: dict[str, float] = dict(nominal)
    worst_corner: dict[str, str] = {m: "nominal" for m in nominal}
    for spec in specs.constraints:
        metric = spec.name
        for corner_name, perf in by_corner.items():
            if metric not in perf:
                continue
            value = perf[metric]
            current = worst.get(metric)
            if current is None or spec.violation(value) > spec.violation(current):
                worst[metric] = value
                worst_corner[metric] = corner_name
    report = WorstCaseReport(dict(worst), worst_corner, dict(nominal))
    return worst, report


@dataclass
class ManufacturableSizer:
    """Corner-aware variant of the equation-based sizer.

    Each annealing evaluation costs ``len(corners)`` model calls instead
    of one — the CPU multiplier the paper quotes as 4×–10×.
    """

    model: Callable[[dict], dict]
    space: DesignSpace
    specs: SpecSet
    corners: list[Corner] = field(default_factory=standard_corners)
    seed: int = 1
    schedule: AnnealSchedule | None = None

    def run(self) -> SizingResult:
        def worst_model(sizes: dict) -> dict:
            worst, _ = worst_case_performance(
                self.model, sizes, self.corners, self.specs)
            return worst

        sizer = EquationBasedSizer(worst_model, self.space, self.specs,
                                   schedule=self.schedule, seed=self.seed)
        t0 = time.perf_counter()
        result = sizer.run()
        result.runtime_s = time.perf_counter() - t0
        # Count model calls, not annealing iterations.
        result.evaluations = sizer.evaluations * len(self.corners)
        return result


def yield_estimate(model: Callable[[dict], dict], sizes: dict[str, float],
                   specs: SpecSet, n_samples: int = 500,
                   vdd_sigma: float = 0.03, kp_sigma: float = 0.05,
                   vto_sigma: float = 0.015, seed: int = 1) -> float:
    """Monte-Carlo parametric yield of a sized design.

    Gaussian process/environment variations; returns the fraction of
    samples meeting every spec — the robustness number industrial practice
    "expects" per the tutorial's closing remark on synthesis.
    """
    import numpy as np
    rng = np.random.default_rng(seed)
    wrapped = corner_aware_model(model)
    passed = 0
    for _ in range(n_samples):
        corner = Corner(
            name="mc",
            vdd_scale=float(1.0 + rng.normal(0, vdd_sigma)),
            kp_scale=float(1.0 + rng.normal(0, kp_sigma)),
            vto_shift=float(rng.normal(0, vto_sigma)),
        )
        perf = wrapped(corner.apply(sizes))
        if specs.all_satisfied(perf):
            passed += 1
    return passed / n_samples
