"""Topology selection: rules, interval feasibility, GA and enumeration.

The tutorial describes four generations of topology selection, all
reproduced here over a shared candidate registry:

* **rule-based** (OASYS/OPASYN): heuristic if-then rules on the specs;
* **boundary checking / interval analysis** [15]: evaluate the analytic
  performance equations over the *intervals* of the design parameters and
  discard topologies whose achievable performance interval cannot meet the
  spec;
* **GA-based** (DARWIN [28]): a genetic algorithm over topology choice
  plus sizing genes;
* **mixed boolean optimization** [26]: exhaustive relaxation over the
  (small) boolean topology space, each evaluated by sizing — the exact
  version of the MINLP formulation.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable

from repro.core.specs import Spec, SpecKind, SpecSet
from repro.opt.genetic import CategoricalGene, FloatGene, GeneticOptimizer
from repro.opt.interval import Interval, IntervalError
from repro.synthesis.equation_based import (
    DesignSpace,
    EquationBasedSizer,
    SizingResult,
)
from repro.synthesis.models import (
    OtaDesign,
    TwoStageDesign,
    folded_cascode_performance,
    ota_performance,
    two_stage_performance,
)

if TYPE_CHECKING:  # pragma: no cover - typing only, avoids an import cycle
    from repro.engine.telemetry import Telemetry


@dataclass
class TopologyCandidate:
    """One selectable circuit topology with its equation model and space."""

    name: str
    model: Callable[[dict], dict]
    space: DesignSpace
    # Qualitative attributes consumed by the rule-based selector.
    stages: int = 1
    max_gain_db: float = 60.0
    relative_power: float = 1.0  # heuristic power rank (1 = cheapest)


def _ota_model(sizes: dict) -> dict:
    return ota_performance(OtaDesign.from_sizes(sizes))


def _two_stage_model(sizes: dict) -> dict:
    return two_stage_performance(TwoStageDesign(
        w_in=sizes["w_in"], l_in=sizes["l_in"],
        w_load=sizes["w_load"], l_load=sizes["l_load"],
        w_tail=sizes["w_tail"], l_tail=sizes["l_tail"],
        w_p2=sizes["w_p2"], l_p2=sizes["l_p2"],
        c_comp=sizes["c_comp"], i_bias=sizes["i_bias"],
        c_load=sizes["c_load"], vdd=sizes.get("vdd", 3.3)))


def _folded_model(sizes: dict) -> dict:
    return folded_cascode_performance(sizes)


def default_candidates(c_load: float = 2e-12) -> list[TopologyCandidate]:
    """The registry of opamp topologies the selector chooses between."""
    common = {"c_load": c_load, "vdd": 3.3}
    ota_space = DesignSpace(
        variables={
            "w_in": (2e-6, 1000e-6), "l_in": (1e-6, 10e-6),
            "w_load": (2e-6, 500e-6), "l_load": (1e-6, 10e-6),
            "w_tail": (2e-6, 500e-6), "l_tail": (1e-6, 10e-6),
            "i_bias": (1e-6, 2e-3),
        }, fixed=dict(common))
    two_stage_space = DesignSpace(
        variables={
            "w_in": (2e-6, 1000e-6), "l_in": (1e-6, 10e-6),
            "w_load": (2e-6, 500e-6), "l_load": (1e-6, 10e-6),
            "w_tail": (2e-6, 500e-6), "l_tail": (1e-6, 10e-6),
            "w_p2": (2e-6, 2000e-6), "l_p2": (1e-6, 5e-6),
            "c_comp": (0.2e-12, 20e-12),
            "i_bias": (1e-6, 2e-3),
        }, fixed=dict(common))
    folded_space = DesignSpace(
        variables={
            "w_in": (2e-6, 1000e-6), "l_in": (1e-6, 10e-6),
            "w_tail": (2e-6, 500e-6), "l_tail": (1e-6, 10e-6),
            "w_psrc": (2e-6, 1000e-6), "l_psrc": (1e-6, 10e-6),
            "w_pcas": (2e-6, 1000e-6), "l_pcas": (1e-6, 10e-6),
            "w_ncas": (2e-6, 500e-6), "l_ncas": (1e-6, 10e-6),
            "w_nsrc": (2e-6, 500e-6), "l_nsrc": (1e-6, 10e-6),
            "i_bias": (1e-6, 2e-3),
        }, fixed=dict(common))
    return [
        TopologyCandidate("five_transistor_ota", _ota_model, ota_space,
                          stages=1, max_gain_db=52.0, relative_power=1.0),
        TopologyCandidate("folded_cascode", _folded_model, folded_space,
                          stages=1, max_gain_db=80.0, relative_power=2.0),
        TopologyCandidate("two_stage_miller", _two_stage_model,
                          two_stage_space, stages=2, max_gain_db=95.0,
                          relative_power=2.5),
    ]


# ----------------------------------------------------------------------
# 1. Rule-based selection
# ----------------------------------------------------------------------

def select_rule_based(specs: SpecSet,
                      candidates: list[TopologyCandidate]) -> list[str]:
    """Heuristic ranking: cheapest topology whose gain headroom suffices.

    Returns candidate names best-first — the OASYS behaviour of proposing
    a topology and falling back on failure.
    """
    gain_req = _required_gain_db(specs)
    viable = [c for c in candidates if c.max_gain_db >= gain_req + 3.0]
    if not viable:
        viable = sorted(candidates, key=lambda c: -c.max_gain_db)
    return [c.name for c in sorted(viable, key=lambda c: c.relative_power)]


def _required_gain_db(specs: SpecSet) -> float:
    for s in specs.constraints:
        if s.name == "gain_db" and s.kind is SpecKind.MIN:
            return s.value
        if s.name == "gain" and s.kind is SpecKind.MIN:
            return 20.0 * math.log10(s.value)
    return 0.0


def _cost_improves(challenger: float, incumbent: float) -> bool:
    """NaN-safe ``challenger < incumbent``.

    A NaN challenger never wins; a NaN incumbent always loses.  Mirrors the
    NaN-safe acceptance rule in :mod:`repro.opt.anneal` so a NaN-cost first
    candidate cannot win a selection forever.
    """
    if math.isnan(challenger):
        return False
    if math.isnan(incumbent):
        return True
    return challenger < incumbent


# ----------------------------------------------------------------------
# 2. Interval / boundary-checking feasibility
# ----------------------------------------------------------------------

def interval_feasible(candidate: TopologyCandidate,
                      specs: SpecSet,
                      telemetry: "Telemetry | None" = None) -> bool:
    """Is any point of the design space possibly spec-compliant?

    Evaluates the candidate's performance model with *interval* design
    variables; a constraint whose achievable interval misses the spec
    proves infeasibility (the converse is not a proof — interval arithmetic
    over-approximates — which is exactly how [15] used it: as a fast
    pre-filter).

    A model that is not interval-safe yields no proof either way; the
    candidate passes, but the pass is *unproven* and is counted on
    ``telemetry`` as ``topology.interval_unproven`` so whole topologies can
    no longer skip pruning without a trace.
    """
    point: dict[str, object] = {
        name: Interval(lo, hi)
        for name, (lo, hi) in candidate.space.variables.items()
    }
    point.update(candidate.space.fixed)
    try:
        performance = candidate.model(point)
    except (IntervalError, TypeError, ValueError):
        # Model not interval-safe for this topology: no proof.
        if telemetry is not None:
            telemetry.count("topology.interval_unproven")
        return True
    for spec in specs.constraints:
        achieved = performance.get(spec.name)
        if achieved is None or not isinstance(achieved, Interval):
            continue
        if spec.kind is SpecKind.MIN and achieved.hi < spec.value:
            return False
        if spec.kind is SpecKind.MAX and achieved.lo > spec.value:
            return False
        if spec.kind is SpecKind.EQUAL and not achieved.contains(spec.value):
            return False
    return True


class IntervalSelection(list):
    """Ranked viable-topology names plus which passes were unproven.

    Behaves exactly like the ``list[str]`` the selector used to return, but
    carries ``unproven``: the candidate names whose models were not
    interval-safe and therefore passed without an actual feasibility proof.
    """

    def __init__(self, names: list[str], unproven: tuple[str, ...] = ()):
        super().__init__(names)
        self.unproven = unproven


def select_interval(specs: SpecSet,
                    candidates: list[TopologyCandidate],
                    telemetry: "Telemetry | None" = None) -> IntervalSelection:
    """Filter candidates by interval feasibility, rank by power heuristic."""
    viable: list[TopologyCandidate] = []
    unproven: list[str] = []
    for cand in candidates:
        sentinel = _UnprovenSentinel()
        if interval_feasible(cand, specs, telemetry=sentinel):
            viable.append(cand)
            if sentinel.hits:
                unproven.append(cand.name)
        if telemetry is not None:
            for _ in range(sentinel.hits):
                telemetry.count("topology.interval_unproven")
    names = [c.name for c in sorted(viable, key=lambda c: c.relative_power)]
    return IntervalSelection(names, unproven=tuple(unproven))


class _UnprovenSentinel:
    """Minimal Telemetry stand-in to observe unproven interval passes."""

    def __init__(self) -> None:
        self.hits = 0

    def count(self, name: str, n: int = 1) -> int:
        self.hits += n
        return self.hits


# ----------------------------------------------------------------------
# 3. GA-based simultaneous topology selection + sizing (DARWIN)
# ----------------------------------------------------------------------

@dataclass
class TopologySelectionResult:
    topology: str
    sizing: SizingResult
    evaluations: int = 0


def select_genetic(specs: SpecSet, candidates: list[TopologyCandidate],
                   generations: int = 25, population: int = 40,
                   seed: int = 1) -> TopologySelectionResult:
    """DARWIN: one genome carries the topology gene plus the *union* of all
    sizing genes; fitness sizes whichever topology the genome selects."""
    by_name = {c.name: c for c in candidates}
    genes: list = [CategoricalGene("topology",
                                   tuple(c.name for c in candidates))]
    seen: set[str] = set()
    for cand in candidates:
        for var, (lo, hi) in cand.space.variables.items():
            if var not in seen:
                seen.add(var)
                genes.append(FloatGene(var, lo, hi))

    def fitness(genome: dict) -> float:
        cand = by_name[genome["topology"]]
        point = {v: genome[v] for v in cand.space.variables}
        try:
            perf = cand.model(cand.space.complete(point))
        except (ValueError, ZeroDivisionError, OverflowError):
            return 1e6
        return specs.cost(perf)

    ga = GeneticOptimizer(genes, fitness, population=population, seed=seed)
    result = ga.run(generations=generations)
    winner = by_name[result.best["topology"]]
    point = {v: result.best[v] for v in winner.space.variables}
    # The winner genome may still be one whose model raises (every genome
    # scored 1e6); guard the re-evaluation with the same exception
    # vocabulary as the fitness function and report it as infeasible
    # rather than crashing the whole selection.
    try:
        perf = winner.model(winner.space.complete(point))
    except (ValueError, ZeroDivisionError, OverflowError):
        sizing = SizingResult(
            sizes=winner.space.complete(point), performance={},
            cost=result.best_fitness, feasible=False,
            evaluations=result.evaluations, runtime_s=0.0,
            warnings=["winner model raised during re-evaluation"])
        return TopologySelectionResult(winner.name, sizing,
                                       result.evaluations)
    sizing = SizingResult(
        sizes=winner.space.complete(point), performance=perf,
        cost=result.best_fitness,
        feasible=specs.all_satisfied(perf),
        evaluations=result.evaluations, runtime_s=0.0)
    return TopologySelectionResult(winner.name, sizing, result.evaluations)


# ----------------------------------------------------------------------
# 4. Boolean enumeration (exact version of the MINLP formulation [26])
# ----------------------------------------------------------------------

def select_enumerate(specs: SpecSet, candidates: list[TopologyCandidate],
                     seed: int = 1) -> TopologySelectionResult:
    """Size *every* candidate and keep the best — exact 'boolean' optimum.

    [26] relaxed the boolean topology variables inside one optimization;
    with a handful of candidates the exact enumeration is affordable and
    gives the reference answer the benchmarks compare the other selectors
    against.
    """
    best: TopologySelectionResult | None = None
    total_evals = 0
    for cand in candidates:
        sizer = EquationBasedSizer(cand.model, cand.space, specs, seed=seed)
        result = sizer.run()
        total_evals += result.evaluations
        if best is None or _cost_improves(result.cost, best.sizing.cost):
            best = TopologySelectionResult(cand.name, result)
    assert best is not None
    best.evaluations = total_evals
    return best
