"""Concrete design plans: the hand-derived expertise of IDAC/OASYS.

Each plan inverts the first-order equations of
:mod:`repro.synthesis.models` in a fixed, topology-specific order — the
"prearranged design plans" of IDAC.  The OTA plan follows the classic
gm/overdrive design recipe; the two-stage plan demonstrates OASYS-style
hierarchy by invoking the OTA-stage reasoning for its input stage.
"""

from __future__ import annotations

import math

from repro.circuits.devices import NMOS_DEFAULT, PMOS_DEFAULT
from repro.synthesis.models import (
    OtaDesign,
    TwoStageDesign,
    ota_performance,
    two_stage_performance,
)
from repro.synthesis.plans import DesignPlan, PlanError, PlanLibrary

# Technology-derived plan constants (synthetic 0.8 µm process).
_L_MIN = 1e-6
_L_ANALOG = 2e-6
_VOV_NOM = 0.20          # nominal overdrive the plans design for
_W_MIN, _W_MAX = 2e-6, 2000e-6


def _w_over_l_for(gm: float, i_d: float, kp: float) -> float:
    """Invert gm = sqrt(2·kp·(W/L)·Id)."""
    return gm * gm / (2.0 * kp * i_d)


def build_ota_plan() -> DesignPlan:
    """Plan for the 5-transistor OTA.

    Specs consumed: ``gbw`` (Hz), ``slew_rate`` (V/s), ``c_load`` (F),
    ``gain`` (V/V, checked), ``vdd``.  Strategy: slew rate fixes the tail
    current, GBW fixes gm of the input pair, overdrive targets fix W/L.
    """
    nmos, pmos = NMOS_DEFAULT, PMOS_DEFAULT
    plan = DesignPlan(
        "five_transistor_ota",
        size_keys=["w_in", "l_in", "w_load", "l_load", "w_tail", "l_tail",
                   "i_bias", "c_load", "vdd"],
        performance_keys=["gain", "gain_db", "gbw", "slew_rate", "power",
                          "area", "swing", "input_noise_density"],
    )
    plan.compute(
        "i_tail", lambda c: max(c["slew_rate"] * c["c_load"], 2e-6),
        "tail current from slew-rate spec: I = SR·CL")
    plan.compute(
        "gm_in", lambda c: 2.0 * math.pi * c["gbw"] * c["c_load"],
        "input gm from GBW spec: gm = 2π·GBW·CL")
    plan.compute(
        "w_over_l_in",
        lambda c: _w_over_l_for(c["gm_in"], c["i_tail"] / 2, nmos.kp),
        "input W/L from gm at Id = Itail/2")
    plan.compute("l_in", lambda c: _L_ANALOG, "analog L for matching/gain")
    plan.compute(
        "w_in", lambda c: c["w_over_l_in"] * c["l_in"])
    plan.check(
        "w_in_range", lambda c: _W_MIN <= c["w_in"] <= _W_MAX,
        "input width out of range — GBW/slew combination infeasible")
    plan.compute(
        "w_over_l_load",
        lambda c: 2.0 * (c["i_tail"] / 2) / (pmos.kp * _VOV_NOM ** 2),
        "load W/L for nominal overdrive")
    plan.compute("l_load", lambda c: _L_ANALOG)
    plan.compute("w_load", lambda c: max(
        c["w_over_l_load"] * c["l_load"], _W_MIN))
    plan.compute(
        "w_over_l_tail",
        lambda c: 2.0 * c["i_tail"] / (nmos.kp * _VOV_NOM ** 2),
        "tail W/L for nominal overdrive")
    plan.compute("l_tail", lambda c: _L_ANALOG)
    plan.compute("w_tail", lambda c: max(
        c["w_over_l_tail"] * c["l_tail"], _W_MIN))
    plan.compute("i_bias", lambda c: c["i_tail"], "1:1 tail mirror")

    def finish(ctx: dict) -> dict:
        design = OtaDesign(
            w_in=ctx["w_in"], l_in=ctx["l_in"],
            w_load=ctx["w_load"], l_load=ctx["l_load"],
            w_tail=ctx["w_tail"], l_tail=ctx["l_tail"],
            i_bias=ctx["i_bias"], c_load=ctx["c_load"],
            vdd=ctx.get("vdd", 3.3))
        perf = ota_performance(design)
        if "gain" in ctx and perf["gain"] < ctx["gain"]:
            raise PlanError(
                f"five_transistor_ota: achievable gain {perf['gain']:.1f} "
                f"< required {ctx['gain']:.1f} — choose a cascode/two-stage "
                "topology", step="verify_gain")
        out = dict(perf)
        out["vdd"] = design.vdd
        return out

    plan.step("evaluate", finish, "evaluate first-order performance")
    return plan


def build_two_stage_plan() -> DesignPlan:
    """Plan for the Miller two-stage opamp.

    Specs: ``gain`` (V/V), ``gbw``, ``slew_rate``, ``c_load``,
    ``phase_margin`` (deg), ``vdd``.  Classic recipe: Cc from CL and phase
    margin, gm1 from GBW·Cc, tail from SR·Cc, second stage gm from the
    nondominant pole requirement.
    """
    nmos, pmos = NMOS_DEFAULT, PMOS_DEFAULT
    plan = DesignPlan(
        "two_stage_miller",
        size_keys=["w_in", "l_in", "w_load", "l_load", "w_tail", "l_tail",
                   "w_p2", "l_p2", "c_comp", "i_bias", "c_load", "vdd"],
        performance_keys=["gain", "gain_db", "gbw", "phase_margin",
                          "slew_rate", "power", "area", "swing",
                          "input_noise_density"],
    )
    plan.compute(
        "c_comp",
        lambda c: max(0.3 * c["c_load"] * math.tan(
            math.radians(c.get("phase_margin", 60.0))) / math.tan(
            math.radians(60.0)), 0.2e-12),
        "Miller cap: Cc ≈ 0.3·CL scaled by phase-margin demand")
    plan.compute(
        "i_tail", lambda c: max(c["slew_rate"] * c["c_comp"], 2e-6),
        "tail current from SR through Cc")
    plan.compute(
        "gm1", lambda c: 2.0 * math.pi * c["gbw"] * c["c_comp"],
        "first-stage gm from GBW")
    plan.compute(
        "w_over_l_in",
        lambda c: _w_over_l_for(c["gm1"], c["i_tail"] / 2, nmos.kp))
    plan.compute("l_in", lambda c: _L_ANALOG)
    plan.compute("w_in", lambda c: c["w_over_l_in"] * c["l_in"])
    plan.check("w_in_range", lambda c: _W_MIN <= c["w_in"] <= _W_MAX,
               "input width infeasible for GBW/SR specs")
    plan.compute(
        "gm6_req",
        lambda c: 2.0 * math.pi * (3.0 * c["gbw"]) * c["c_load"],
        "second-stage gm: nondominant pole at 3·GBW for phase margin")
    plan.compute("l_load", lambda c: _L_ANALOG)
    plan.compute(
        "w_load",
        lambda c: max(2.0 * (c["i_tail"] / 2)
                      / (pmos.kp * _VOV_NOM ** 2) * c["l_load"], _W_MIN))
    plan.compute("l_tail", lambda c: _L_ANALOG)
    plan.compute(
        "w_tail",
        lambda c: max(2.0 * c["i_tail"] / (nmos.kp * _VOV_NOM ** 2)
                      * c["l_tail"], _W_MIN))
    plan.compute("l_p2", lambda c: 1.5e-6)

    def second_stage(ctx: dict) -> dict:
        # Choose the mirror ratio so the second stage carries enough
        # current to realize gm6 at the nominal overdrive.
        i2 = ctx["gm6_req"] * _VOV_NOM / 2.0
        i2 = max(i2, ctx["i_tail"])
        w_over_l = _w_over_l_for(ctx["gm6_req"], i2, pmos.kp)
        return {"i2": i2, "w_p2": max(w_over_l * ctx["l_p2"], _W_MIN)}

    plan.step("second_stage", second_stage,
              "second-stage current and width for gm6")
    plan.compute("i_bias", lambda c: c["i_tail"], "1:1 reference")

    def finish(ctx: dict) -> dict:
        design = TwoStageDesign(
            w_in=ctx["w_in"], l_in=ctx["l_in"],
            w_load=ctx["w_load"], l_load=ctx["l_load"],
            w_tail=ctx["w_tail"], l_tail=ctx["l_tail"],
            w_p2=ctx["w_p2"], l_p2=ctx["l_p2"],
            c_comp=ctx["c_comp"], i_bias=ctx["i_bias"],
            c_load=ctx["c_load"], vdd=ctx.get("vdd", 3.3))
        perf = two_stage_performance(design)
        if "gain" in ctx and perf["gain"] < ctx["gain"]:
            raise PlanError(
                f"two_stage_miller: achievable gain {perf['gain']:.0f} < "
                f"required {ctx['gain']:.0f}", step="verify_gain")
        out = dict(perf)
        out["vdd"] = design.vdd
        return out

    plan.step("evaluate", finish, "evaluate first-order performance")
    return plan


def build_input_stage_plan() -> DesignPlan:
    """Reusable sub-plan: size a differential input stage for (gm, I).

    This is the OASYS building block: a lower-level cell plan invoked by
    higher-level topology plans.  Specs consumed: ``gm_target`` (S),
    ``i_tail`` (A).  Produces pair + load + tail sizes.
    """
    nmos, pmos = NMOS_DEFAULT, PMOS_DEFAULT
    plan = DesignPlan(
        "diff_input_stage",
        size_keys=["w_in", "l_in", "w_load", "l_load", "w_tail", "l_tail"],
        performance_keys=["gm_achieved", "vov_in"],
    )
    plan.compute(
        "w_over_l_in",
        lambda c: _w_over_l_for(c["gm_target"], c["i_tail"] / 2, nmos.kp),
        "pair W/L from the gm target")
    plan.compute("l_in", lambda c: _L_ANALOG)
    plan.compute("w_in", lambda c: max(c["w_over_l_in"] * c["l_in"],
                                       _W_MIN))
    plan.check("w_in_range", lambda c: c["w_in"] <= _W_MAX,
               "input device too wide for the gm/I combination")
    plan.compute("l_load", lambda c: _L_ANALOG)
    plan.compute(
        "w_load",
        lambda c: max(2.0 * (c["i_tail"] / 2)
                      / (pmos.kp * _VOV_NOM ** 2) * c["l_load"], _W_MIN))
    plan.compute("l_tail", lambda c: _L_ANALOG)
    plan.compute(
        "w_tail",
        lambda c: max(2.0 * c["i_tail"] / (nmos.kp * _VOV_NOM ** 2)
                      * c["l_tail"], _W_MIN))
    plan.compute(
        "gm_achieved",
        lambda c: math.sqrt(2.0 * nmos.kp * (c["w_in"] / c["l_in"])
                            * c["i_tail"] / 2.0))
    plan.compute(
        "vov_in",
        lambda c: math.sqrt(2.0 * (c["i_tail"] / 2)
                            / (nmos.kp * c["w_in"] / c["l_in"])))
    return plan


def build_hierarchical_two_stage_plan() -> DesignPlan:
    """Two-stage plan that delegates its first stage to the sub-plan.

    Demonstrates OASYS-style hierarchy: "Hierarchy allowed to reuse
    design plans of lower-level cells while building up higher-level cell
    design plans" (§2.2).  Functionally interchangeable with
    :func:`build_two_stage_plan`; size keys come back with the
    ``stage1_`` prefix from the sub-plan invocation.
    """
    pmos = PMOS_DEFAULT
    plan = DesignPlan(
        "two_stage_hierarchical",
        size_keys=["stage1_w_in", "stage1_l_in", "stage1_w_load",
                   "stage1_l_load", "stage1_w_tail", "stage1_l_tail",
                   "w_p2", "l_p2", "c_comp", "i_bias", "c_load", "vdd"],
        performance_keys=["gain", "gbw", "phase_margin", "power"],
    )
    plan.compute(
        "c_comp",
        lambda c: max(0.3 * c["c_load"], 0.2e-12),
        "Miller cap from the load")
    plan.compute(
        "i_tail", lambda c: max(c["slew_rate"] * c["c_comp"], 2e-6))
    plan.compute(
        "gm1", lambda c: 2.0 * math.pi * c["gbw"] * c["c_comp"])
    plan.subplan(
        "input_stage", build_input_stage_plan(),
        lambda c: {"gm_target": c["gm1"], "i_tail": c["i_tail"]},
        result_prefix="stage1_")
    plan.compute(
        "gm6_req",
        lambda c: 2.0 * math.pi * (3.0 * c["gbw"]) * c["c_load"])
    plan.compute("l_p2", lambda c: 1.5e-6)

    def second_stage(ctx: dict) -> dict:
        i2 = max(ctx["gm6_req"] * _VOV_NOM / 2.0, ctx["i_tail"])
        w_over_l = _w_over_l_for(ctx["gm6_req"], i2, pmos.kp)
        return {"i2": i2, "w_p2": max(w_over_l * ctx["l_p2"], _W_MIN)}

    plan.step("second_stage", second_stage)
    plan.compute("i_bias", lambda c: c["i_tail"])

    def finish(ctx: dict) -> dict:
        design = TwoStageDesign(
            w_in=ctx["stage1_w_in"], l_in=ctx["stage1_l_in"],
            w_load=ctx["stage1_w_load"], l_load=ctx["stage1_l_load"],
            w_tail=ctx["stage1_w_tail"], l_tail=ctx["stage1_l_tail"],
            w_p2=ctx["w_p2"], l_p2=ctx["l_p2"],
            c_comp=ctx["c_comp"], i_bias=ctx["i_bias"],
            c_load=ctx["c_load"], vdd=ctx.get("vdd", 3.3))
        perf = two_stage_performance(design)
        if "gain" in ctx and perf["gain"] < ctx["gain"]:
            raise PlanError(
                f"two_stage_hierarchical: gain {perf['gain']:.0f} < "
                f"required {ctx['gain']:.0f}", step="verify_gain")
        return {"gain": perf["gain"], "gbw": perf["gbw"],
                "phase_margin": perf["phase_margin"],
                "power": perf["power"], "vdd": ctx.get("vdd", 3.3)}

    plan.step("evaluate", finish)
    return plan


def default_plan_library() -> PlanLibrary:
    """The plan library shipped with the tool (IDAC's 'initial schematics')."""
    lib = PlanLibrary()
    lib.register(build_ota_plan())
    lib.register(build_two_stage_plan())
    lib.register(build_input_stage_plan())
    lib.register(build_hierarchical_two_stage_plan())
    return lib
