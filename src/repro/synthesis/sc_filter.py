"""Switched-capacitor filter synthesis — the silicon-compiler application.

The tutorial cites SC filters twice: as a synthesis success ("not only
operational amplifiers but also filters [30]") and as the canonical
procedural-generation workload at the system level ("switched capacitor
filters [52]").  This module implements the frontend half of such a
silicon compiler:

1. continuous-time prototype: cascade of biquads from a lowpass spec
   (Butterworth pole placement);
2. discrete-time mapping: bilinear transform at the switching rate;
3. capacitor-ratio synthesis for the standard parasitic-insensitive
   switched-capacitor biquad (Fleischer–Laker style), with unit-cap
   quantization;
4. area/spread optimization: choose the unit capacitance so that kT/C
   noise and total capacitor area trade off under a matching-driven
   minimum unit size.

The backend half (the common-centroid unit-capacitor array generator)
lives in :mod:`repro.layout.caparray`; together they form the [52]-style
generator pipeline.
"""

from __future__ import annotations

import cmath
import math
from dataclasses import dataclass, field

from repro.circuits.devices import BOLTZMANN, ROOM_TEMP_K


class ScSynthesisError(ValueError):
    pass


@dataclass(frozen=True)
class BiquadSpec:
    """One second-order section: pole frequency and quality factor."""

    f0: float
    q: float
    gain: float = 1.0


def butterworth_biquads(f_cutoff: float, order: int,
                        gain: float = 1.0) -> list[BiquadSpec]:
    """Butterworth lowpass prototype as cascaded biquads.

    Even orders only (each section is second-order), poles at the
    standard equally-spaced positions on the circle of radius ω_c.
    """
    if order < 2 or order % 2 != 0:
        raise ScSynthesisError("order must be even and >= 2")
    sections = []
    n_sections = order // 2
    for k in range(n_sections):
        theta = math.pi * (2 * k + 1) / (2 * order)
        q = 1.0 / (2.0 * math.sin(theta))
        section_gain = gain ** (1.0 / n_sections)
        sections.append(BiquadSpec(f_cutoff, q, section_gain))
    return sections


@dataclass
class ScBiquad:
    """Capacitor ratios of one parasitic-insensitive SC biquad.

    Uses the classic low-Q Fleischer–Laker assignment: integrating caps
    ``a`` (normalized to 1), switched input/feedback caps ``k1, k2, k3``
    realized as ratios to the unit capacitor.
    """

    spec: BiquadSpec
    f_clock: float
    # Ratios relative to the integrating capacitor.
    k1: float = field(init=False)
    k2: float = field(init=False)
    k3: float = field(init=False)

    def __post_init__(self):
        if self.f_clock < 10.0 * self.spec.f0:
            raise ScSynthesisError(
                "switching rate must be >= 10x the pole frequency "
                f"(got {self.f_clock:g} vs f0 {self.spec.f0:g})")
        # Bilinear prewarping of the pole frequency.
        t = 1.0 / self.f_clock
        w0 = 2.0 / t * math.tan(math.pi * self.spec.f0 * t)
        # Classic design equations for the low-Q biquad:
        #   k1 = w0·T/Q (damping), k2 = (w0·T)^2 (resonance),
        #   k3 = gain·k2 (input).
        w0t = w0 * t
        self.k2 = w0t * w0t
        self.k1 = w0t / self.spec.q
        self.k3 = self.spec.gain * self.k2

    def z_poles(self) -> tuple[complex, complex]:
        """Poles of the discrete-time transfer function."""
        # Denominator: z^2 + (k1·k2... ) — use the standard mapping
        # D(z) = z² + (k1 + k2 - 2)z + (1 - k1).
        b = self.k1 + self.k2 - 2.0
        c = 1.0 - self.k1
        disc = cmath.sqrt(b * b - 4.0 * c)
        return ((-b + disc) / 2.0, (-b - disc) / 2.0)

    def is_stable(self) -> bool:
        return all(abs(p) < 1.0 for p in self.z_poles())

    def effective_f0_q(self) -> tuple[float, float]:
        """Realized pole frequency/Q back-computed from the z-poles."""
        p = self.z_poles()[0]
        s = cmath.log(p) * self.f_clock  # z = exp(sT)
        w0 = abs(s)
        q = -w0 / (2.0 * s.real) if s.real != 0 else float("inf")
        return w0 / (2.0 * math.pi), q


@dataclass
class CapacitorBudget:
    """Unit-capacitor realization of one biquad's ratios."""

    unit_cap: float
    units: dict[str, int]            # cap name -> number of unit caps
    total_cap: float
    total_units: int
    spread: float                    # largest/smallest cap ratio
    ratio_error: float               # worst quantization error
    kt_c_noise_v: float              # rms noise of the smallest sampler


def quantize_ratios(biquad: ScBiquad, unit_cap: float,
                    max_units: int = 4096) -> CapacitorBudget:
    """Realize the biquad's ratios as integer multiples of a unit cap.

    The integrating capacitor gets enough units that the smallest
    switched cap is at least one unit; ratio errors are the relative
    quantization residuals the matching-driven layout must preserve.
    """
    ratios = {"c_int1": 1.0, "c_int2": 1.0, "k1": biquad.k1,
              "k2": biquad.k2, "k3": biquad.k3}
    smallest = min(r for r in ratios.values() if r > 0)
    scale = max(1.0, 1.0 / smallest)
    units = {}
    worst_err = 0.0
    for name, ratio in ratios.items():
        n = max(1, round(ratio * scale))
        if n > max_units:
            raise ScSynthesisError(
                f"capacitor spread too large: {name} needs {n} units")
        units[name] = n
        realized = n / scale
        worst_err = max(worst_err, abs(realized - ratio) / ratio)
    total_units = sum(units.values())
    total_cap = total_units * unit_cap
    spread = max(units.values()) / min(units.values())
    smallest_cap = min(units.values()) * unit_cap
    ktc = math.sqrt(BOLTZMANN * ROOM_TEMP_K / smallest_cap)
    return CapacitorBudget(unit_cap, units, total_cap, total_units,
                           spread, worst_err, ktc)


@dataclass
class ScFilterDesign:
    """A synthesized SC filter: biquads + capacitor budgets."""

    sections: list[ScBiquad]
    budgets: list[CapacitorBudget]
    f_clock: float

    @property
    def total_capacitance(self) -> float:
        return sum(b.total_cap for b in self.budgets)

    @property
    def total_units(self) -> int:
        return sum(b.total_units for b in self.budgets)

    def worst_noise_v(self) -> float:
        return max(b.kt_c_noise_v for b in self.budgets)

    def area_estimate(self, cap_density: float = 1e-3,
                      overhead: float = 1.6) -> float:
        """m² of capacitor array including routing/matching overhead."""
        return self.total_capacitance / cap_density * overhead


def synthesize_sc_filter(f_cutoff: float, order: int, f_clock: float,
                         noise_budget_v: float = 200e-6,
                         unit_cap_min: float = 50e-15,
                         gain: float = 1.0) -> ScFilterDesign:
    """Synthesize a Butterworth SC lowpass meeting a kT/C noise budget.

    The unit capacitor is the design degree of freedom: grown until the
    worst sampler's kT/C noise is inside the budget, floored at the
    matching-driven minimum.
    """
    specs = butterworth_biquads(f_cutoff, order, gain)
    sections = [ScBiquad(s, f_clock) for s in specs]
    for section in sections:
        if not section.is_stable():
            raise ScSynthesisError("unstable discrete-time section")
    unit = unit_cap_min
    for _ in range(40):
        budgets = [quantize_ratios(b, unit) for b in sections]
        design = ScFilterDesign(sections, budgets, f_clock)
        if design.worst_noise_v() <= noise_budget_v:
            return design
        unit *= 1.5
    raise ScSynthesisError(
        f"noise budget {noise_budget_v:g} V unreachable below 40 unit-cap "
        "growth steps")
