"""Simulation-based optimization sizing (FRIDGE / DELIGHT.SPICE style).

The performance of every annealing trial point is measured by *running the
simulator* (DC operating point + AC sweep + optional noise) on the actual
transistor netlist.  Introducing a new schematic costs nothing beyond a
circuit builder function — the openness the tutorial credits to this
approach — at the price of long run times, which the Fig. 1 benchmark
quantifies against plans and equation-based sizing.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Callable

import numpy as np

from repro.analysis.ac import ac_analysis, bode_metrics, logspace_frequencies
from repro.analysis.dcop import ConvergenceError, dc_operating_point
from repro.analysis.mna import SingularCircuitError
from repro.analysis.noise import noise_analysis
from repro.circuits.netlist import Circuit
from repro.core.specs import SpecSet
from repro.opt.anneal import AnnealSchedule, anneal_continuous
from repro.synthesis.equation_based import DesignSpace, SizingResult

CircuitBuilder = Callable[[dict[str, float]], Circuit]


@dataclass
class SimulationEvaluator:
    """Measures a standard opamp performance dict by simulation.

    The builder must return a circuit with differential inputs ``inp``/
    ``inn``; the evaluator adds the testbench sources (AC drive on
    ``inp``), finds the operating point, and extracts gain/GBW/PM, power,
    and optionally input noise.
    """

    builder: CircuitBuilder
    output: str = "out"
    supply: str = "vdd_src"
    input_bias: float = 1.5
    f_start: float = 10.0
    f_stop: float = 1e9
    points_per_decade: int = 4
    with_noise: bool = False
    saturation_devices: tuple[str, ...] = ()

    def build_testbench(self, sizes: dict[str, float]) -> Circuit:
        circuit = self.builder(sizes)
        circuit.vsource("tb_vip", "inp", "0", dc=self.input_bias, ac=1.0)
        circuit.vsource("tb_vin", "inn", "0", dc=self.input_bias)
        return circuit

    def __call__(self, sizes: dict[str, float]) -> dict[str, float]:
        try:
            circuit = self.build_testbench(sizes)
            op = dc_operating_point(circuit)
            freqs = logspace_frequencies(self.f_start, self.f_stop,
                                         self.points_per_decade)
            ac = ac_analysis(circuit, freqs, op=op)
            metrics = bode_metrics(ac, self.output)
        except (ConvergenceError, SingularCircuitError, ValueError, KeyError):
            return {}
        performance = {
            "gain": metrics.dc_gain,
            "gain_db": metrics.dc_gain_db,
            "gbw": metrics.unity_gain_freq,
            "bandwidth": metrics.bandwidth_3db,
            "phase_margin": metrics.phase_margin_deg,
            "power": op.power((self.supply,), circuit),
        }
        for name in self.saturation_devices:
            performance[f"sat_{name}"] = (
                1.0 if op.mos[name].region == "saturation" else 0.0)
        if self.with_noise:
            noise = noise_analysis(circuit, self.output,
                                   np.logspace(2, 7, 11), op=op)
            inp = noise.input_referred_psd()
            performance["input_noise_density"] = float(np.sqrt(inp[-1]))
        return performance


class SimulationBasedSizer:
    """FRIDGE: full simulation inside the annealing loop."""

    def __init__(self, evaluator: Callable[[dict[str, float]], dict[str, float]],
                 space: DesignSpace, specs: SpecSet,
                 schedule: AnnealSchedule | None = None, seed: int = 1):
        self.evaluator = evaluator
        self.space = space
        self.specs = specs
        # Simulation evaluations are expensive: default budget is modest.
        self.schedule = schedule or AnnealSchedule(
            moves_per_temperature=30, cooling=0.8, max_evaluations=2000)
        self.seed = seed
        self.evaluations = 0

    def cost(self, point: dict[str, float]) -> float:
        self.evaluations += 1
        return self.specs.cost(self.evaluator(self.space.complete(point)))

    def run(self, x0: dict[str, float] | None = None) -> SizingResult:
        self.evaluations = 0
        cont = self.space.to_continuous()
        start = np.array([x0[n] for n in cont.names]) if x0 else None
        t0 = time.perf_counter()
        result = anneal_continuous(self.cost, cont, schedule=self.schedule,
                                   seed=self.seed, x0=start)
        runtime = time.perf_counter() - t0
        best = cont.to_dict(result.best_state)
        performance = self.evaluator(self.space.complete(best))
        return SizingResult(
            sizes=self.space.complete(best),
            performance=performance,
            cost=result.best_cost,
            feasible=self.specs.all_satisfied(performance),
            evaluations=self.evaluations,
            runtime_s=runtime,
            history=result.history,
        )
