"""Simulation-based optimization sizing (FRIDGE / DELIGHT.SPICE style).

The performance of every annealing trial point is measured by *running the
simulator* (DC operating point + AC sweep + optional noise) on the actual
transistor netlist.  Introducing a new schematic costs nothing beyond a
circuit builder function — the openness the tutorial credits to this
approach — at the price of long run times, which the Fig. 1 benchmark
quantifies against plans and equation-based sizing.

That run-time price is exactly what :mod:`repro.engine` attacks: hand
:class:`SimulationBasedSizer` an :class:`repro.engine.EvaluationEngine`
and every annealing batch is evaluated through the engine's executor
(serial or process pool) with results memoized in its content-addressed
cache, keyed on the serialized testbench netlist plus analysis
parameters.  A :class:`SimulationEvaluator` can also carry its own cache
for direct, non-engine use.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Callable

import numpy as np

from repro.analysis.ac import ac_analysis, bode_metrics, logspace_frequencies
from repro.analysis.dcop import ConvergenceError, dc_operating_point
from repro.analysis.mna import SingularCircuitError
from repro.analysis.noise import noise_analysis
from repro.circuits.netlist import Circuit
from repro.core.specs import SpecSet
from repro.engine.cache import EvalCache, canonical_key
from repro.engine.config import EngineConfig, resolve_flow_engine
from repro.engine.core import EvaluationEngine
from repro.engine.faults import is_failure
from repro.engine.telemetry import Telemetry
from repro.engine.trace import span_if
from repro.opt.anneal import AnnealSchedule, anneal_continuous
from repro.synthesis.equation_based import DesignSpace, SizingResult

CircuitBuilder = Callable[[dict[str, float]], Circuit]


@dataclass
class SimulationEvaluator:
    """Measures a standard opamp performance dict by simulation.

    The builder must return a circuit with differential inputs ``inp``/
    ``inn``; the evaluator adds the testbench sources (AC drive on
    ``inp``), finds the operating point, and extracts gain/GBW/PM, power,
    and optionally input noise.

    With a ``cache`` attached, calls are memoized on
    :meth:`cache_key` — a content hash of the built testbench netlist
    (device sizes included) and the analysis parameters — so re-evaluating
    an already-simulated sizing point costs one netlist serialization
    instead of a simulation.  ``telemetry`` (optional) counts actual
    simulator runs under ``simulator.calls``.  Neither travels through
    pickling: worker processes always simulate raw and the parent owns the
    cache.
    """

    builder: CircuitBuilder
    output: str = "out"
    supply: str = "vdd_src"
    input_bias: float = 1.5
    f_start: float = 10.0
    f_stop: float = 1e9
    points_per_decade: int = 4
    with_noise: bool = False
    saturation_devices: tuple[str, ...] = ()
    cache: EvalCache | None = None
    telemetry: Telemetry | None = None
    # True routes simulator failures to the caller as exceptions, the
    # contract the engine's resilience layer expects (retry/penalty/record
    # instead of a silent {}).  False keeps the legacy empty-dict return
    # for direct, engine-less use.
    raise_failures: bool = False

    def __getstate__(self) -> dict:
        state = self.__dict__.copy()
        state["cache"] = None
        state["telemetry"] = None
        return state

    def build_testbench(self, sizes: dict[str, float]) -> Circuit:
        circuit = self.builder(sizes)
        circuit.vsource("tb_vip", "inp", "0", dc=self.input_bias, ac=1.0)
        circuit.vsource("tb_vin", "inn", "0", dc=self.input_bias)
        return circuit

    def analysis_descriptor(self) -> dict:
        """Everything, besides the netlist, that determines the result."""
        analyses = "dcop+ac" + ("+noise" if self.with_noise else "")
        return {
            "analysis": analyses,
            "output": self.output,
            "supply": self.supply,
            "f_start": self.f_start,
            "f_stop": self.f_stop,
            "points_per_decade": self.points_per_decade,
            "saturation_devices": list(self.saturation_devices),
        }

    def cache_key(self, sizes: dict[str, float]) -> str:
        """Content-addressed key: (testbench netlist, analysis params)."""
        try:
            circuit = self.build_testbench(sizes)
        except (ValueError, KeyError):
            # Unbuildable point: key on the raw sizes so the failure
            # result ({}) is still memoized.
            return canonical_key("unbuildable", sizes,
                                 self.analysis_descriptor())
        return canonical_key(circuit, self.analysis_descriptor())

    def __call__(self, sizes: dict[str, float]) -> dict[str, float]:
        if self.cache is None:
            return self.simulate(sizes)
        return self.cache.get_or_compute(
            self.cache_key(sizes), lambda: self.simulate(sizes))

    def simulate(self, sizes: dict[str, float]) -> dict[str, float]:
        """Run the analyses unconditionally (the cache-miss path).

        Simulator failures (non-convergence, singular MNA, unbuildable
        point) either re-raise (``raise_failures=True``, the engine
        resilience path) or collapse to ``{}`` (the legacy direct path —
        :meth:`repro.core.specs.SpecSet.cost` turns a missing metric into
        a fixed penalty).
        """
        if self.telemetry is not None:
            self.telemetry.count("simulator.calls")
        try:
            circuit = self.build_testbench(sizes)
            op = dc_operating_point(circuit)
            freqs = logspace_frequencies(self.f_start, self.f_stop,
                                         self.points_per_decade)
            ac = ac_analysis(circuit, freqs, op=op)
            metrics = bode_metrics(ac, self.output)
        except (ConvergenceError, SingularCircuitError, ValueError, KeyError):
            if self.telemetry is not None:
                self.telemetry.count("simulator.failures")
            if self.raise_failures:
                raise
            return {}
        return self._performance(circuit, op, metrics)

    def _performance(self, circuit: Circuit, op, metrics) -> dict[str, float]:
        """Assemble the performance dict from solved analyses.

        Shared by the scalar path (:meth:`simulate`) and the vectorized
        kernel path (:class:`BatchEvaluator`), so both report the exact
        same metric set for a given operating point and Bode summary.
        """
        performance = {
            "gain": metrics.dc_gain,
            "gain_db": metrics.dc_gain_db,
            "gbw": metrics.unity_gain_freq,
            "bandwidth": metrics.bandwidth_3db,
            "phase_margin": metrics.phase_margin_deg,
            "power": op.power((self.supply,), circuit),
        }
        for name in self.saturation_devices:
            performance[f"sat_{name}"] = (
                1.0 if op.mos[name].region == "saturation" else 0.0)
        if self.with_noise:
            noise = noise_analysis(circuit, self.output,
                                   np.logspace(2, 7, 11), op=op)
            inp = noise.input_referred_psd()
            performance["input_noise_density"] = float(np.sqrt(inp[-1]))
        return performance


@dataclass
class BatchEvaluator:
    """Same-topology vectorized kernel for :class:`SimulationEvaluator`.

    Satisfies the three-member batcher protocol of
    :meth:`repro.engine.EvaluationEngine.map_evaluate`: ``group`` buckets
    cache-miss sizing points by the topology signature of their built
    testbench (sizings of one schematic share a signature — values are
    excluded), and ``evaluate`` runs one bucket through the
    symbolic-once/evaluate-many kernels in :mod:`repro.analysis.batch`:
    per-member DC operating points (nonlinear Newton stays scalar, so
    results match the scalar path bitwise) followed by one stacked AC
    sweep solved as a batched dense LU.

    Every member the kernel cannot take — unbuildable sizing,
    non-convergent or singular DC, a member :func:`~repro.analysis.mna.
    solve_dense_batched` flags as singular (removed and the rest
    retried), or a metric-extraction error — is returned as
    :data:`~repro.engine.core.BATCH_FALLBACK` so the engine re-runs it
    through the ordinary scalar executor path with identical failure
    counting, retry and record semantics.
    """

    evaluator: SimulationEvaluator
    min_batch: int = 2

    def group(self, points: list[dict[str, float]]) -> list[list[int]]:
        from repro.analysis.batch import topology_signature
        groups: dict[str, list[int]] = {}
        for i, sizes in enumerate(points):
            try:
                sig = topology_signature(
                    self.evaluator.build_testbench(sizes))
            except (ValueError, KeyError):
                # Unbuildable: a unique singleton signature keeps it under
                # min_batch so the scalar path owns the failure.
                sig = f"__unbuildable__:{i}"
            groups.setdefault(sig, []).append(i)
        return list(groups.values())

    def evaluate(self, points: list[dict[str, float]]) -> list:
        from repro.analysis.batch import batched_ac
        from repro.analysis.mna import BatchSingularError
        from repro.engine.core import BATCH_FALLBACK

        ev = self.evaluator
        results: list = [BATCH_FALLBACK] * len(points)
        circuits: list = [None] * len(points)
        ops: list = [None] * len(points)
        good: list[int] = []
        for i, sizes in enumerate(points):
            try:
                circuits[i] = ev.build_testbench(sizes)
                ops[i] = dc_operating_point(circuits[i])
                good.append(i)
            except (ConvergenceError, SingularCircuitError,
                    ValueError, KeyError):
                pass  # BATCH_FALLBACK: the scalar re-run owns the failure
        freqs = logspace_frequencies(ev.f_start, ev.f_stop,
                                     ev.points_per_decade)
        acs = None
        while len(good) >= 2:
            try:
                acs = batched_ac([circuits[i] for i in good], freqs,
                                 ops=[ops[i] for i in good])
                break
            except BatchSingularError as err:
                # Drop the members the stacked LU flagged and retry the
                # rest; the dropped ones fall back to the scalar path,
                # which reports the per-member SingularCircuitError.
                bad = {good[m] for m in err.members}
                good = [i for i in good if i not in bad]
        if acs is None:
            return results
        for i, ac in zip(good, acs):
            try:
                metrics = bode_metrics(ac, ev.output)
                performance = ev._performance(circuits[i], ops[i], metrics)
            except (ConvergenceError, SingularCircuitError,
                    ValueError, KeyError):
                continue  # fall back: scalar re-run reproduces the error
            results[i] = performance
            if ev.telemetry is not None:
                # One batched member == one simulator run; fallback
                # members are counted by the scalar re-run instead.
                ev.telemetry.count("simulator.calls")
        return results


@dataclass
class _EngineBatch:
    """Batch-evaluation hook routing annealer states through the engine.

    The annealer hands over raw parameter vectors together with its
    scalarized cost function; this adapter re-derives the evaluation so
    the engine's cache stores *simulator output* keyed on netlist content
    — spec-independent and reusable across runs — and applies the spec
    cost in the parent process.  Only ``evaluator.simulate`` (a pure
    sizes → performance mapping) is ever dispatched to workers.
    """

    engine: EvaluationEngine
    evaluator: SimulationEvaluator
    space: DesignSpace
    names: list[str]
    specs: SpecSet
    # Optional repro.surrogate.CorpusIndex: records cache key → sizes for
    # every successful evaluation, which is what lets a later run harvest
    # this run's disk cache as surrogate training data.
    corpus_index: object | None = None
    # Optional BatchEvaluator: routes same-topology cache misses through
    # the vectorized kernels instead of per-point executor dispatch.
    batcher: object | None = None

    def _sizes(self, x) -> dict[str, float]:
        point = {n: float(v) for n, v in zip(self.names, x)}
        return self.space.complete(point)

    def map_evaluate(self, _fn, states) -> list[float]:
        points = [self._sizes(x) for x in states]
        perfs = self.engine.map_evaluate(self.evaluator.simulate, points,
                                         key_fn=self.evaluator.cache_key,
                                         batcher=self.batcher)
        if self.corpus_index is not None:
            for point, perf in zip(points, perfs):
                if not is_failure(perf):
                    self.corpus_index.record(
                        self.evaluator.cache_key(point), point)
        # A failed candidate gets the same deterministic penalty an empty
        # performance dict would (every spec at its fixed miss penalty),
        # so injected-fault runs stay bit-identical across executors.
        failure_cost = self.specs.cost({})
        return [failure_cost if is_failure(p) else self.specs.cost(p)
                for p in perfs]


class SimulationBasedSizer:
    """FRIDGE: full simulation inside the annealing loop.

    With an ``engine``, annealing moves are proposed in batches of
    ``batch_size`` and evaluated through
    :meth:`repro.engine.EvaluationEngine.map_evaluate` — cached, counted,
    and (with a :class:`repro.engine.ParallelExecutor`) fanned out over
    worker processes.  The sizing result is identical for serial and
    parallel executors at a fixed seed, because all randomness stays in
    the parent process.

    ``surrogate`` opts the annealing loop into cache-trained surrogate
    screening (:mod:`repro.surrogate`): pass a ready
    :class:`~repro.surrogate.SurrogateScreen`, a
    :class:`~repro.engine.config.SurrogateConfig`, or set
    ``EngineConfig(surrogate=...)`` — the sizer then builds the feature
    spec from its own design space, warm-starts the corpus from
    ``surrogate.corpus_dir`` (``corpus.jsonl`` plus a harvest of the
    engine's cache against ``corpus_index.jsonl``) and persists the
    grown corpus there after the run.  The final reported sizing is
    always re-measured with a real simulation, screened or not.

    ``batch_kernel=True`` (or ``EngineConfig(batch_kernel=True)``) opts
    cache-miss evaluation into the vectorized same-topology kernels: a
    :class:`BatchEvaluator` groups each annealing batch by testbench
    topology signature and solves one stacked AC sweep per group
    (:mod:`repro.analysis.batch`), with per-member scalar fallback for
    anything the kernel declines.  ``kernel.*`` counters in
    ``engine.report()`` show the batched/scalar split.
    """

    def __init__(self, evaluator: Callable[[dict[str, float]], dict[str, float]],
                 space: DesignSpace, specs: SpecSet,
                 schedule: AnnealSchedule | None = None, seed: int = 1,
                 engine: EvaluationEngine | None = None,
                 batch_size: int = 1,
                 max_failure_fraction: float = 0.5,
                 config: EngineConfig | None = None,
                 surrogate=None,
                 batch_kernel: bool | None = None):
        self.evaluator = evaluator
        self.space = space
        self.specs = specs
        # Simulation evaluations are expensive: default budget is modest.
        self.schedule = schedule or AnnealSchedule(
            moves_per_temperature=30, cooling=0.8, max_evaluations=2000)
        self.seed = seed
        engine, _, self._owns_engine = resolve_flow_engine(
            engine, None, config, "SimulationBasedSizer")
        self.engine = engine
        self.config = config
        if surrogate is None and config is not None:
            surrogate = config.surrogate
        self.surrogate = surrogate
        if batch_kernel is None:
            batch_kernel = bool(config.batch_kernel) \
                if config is not None else False
        self.batch_kernel = bool(batch_kernel)
        self.batch_size = batch_size
        self.evaluations = 0
        # Tolerated fraction of failed evaluations before the run itself
        # is declared failed; below it the run completes with a warning
        # summary in the result instead of raising.
        self.max_failure_fraction = max_failure_fraction

    def cost(self, point: dict[str, float]) -> float:
        self.evaluations += 1
        return self.specs.cost(self.evaluator(self.space.complete(point)))

    def _build_screen(self, cont):
        """Resolve the ``surrogate`` option into a live screen.

        Returns ``(screen, corpus_path)``; ``corpus_path`` is where the
        grown corpus is rewritten after the run (None without a
        ``corpus_dir``).  A ready-made ``SurrogateScreen`` passes
        through untouched — its owner manages persistence.
        """
        if self.surrogate is None:
            return None, None
        from repro.engine.config import SurrogateConfig
        if not isinstance(self.surrogate, SurrogateConfig):
            return self.surrogate, None
        from pathlib import Path

        from repro.surrogate import (
            Corpus,
            FeatureSpec,
            SurrogateScreen,
            harvest_cache,
        )
        cfg = self.surrogate
        spec = FeatureSpec.from_continuous(cont)
        corpus = Corpus(max_records=cfg.max_corpus)
        corpus_path = None
        if cfg.corpus_dir is not None:
            corpus_dir = Path(cfg.corpus_dir)
            corpus_path = corpus_dir / "corpus.jsonl"
            corpus.merge(Corpus.from_jsonl(corpus_path,
                                           max_records=cfg.max_corpus))
            cache = self.engine.cache if self.engine is not None else None
            if cache is not None:
                harvest_cache(cache, corpus_dir / "corpus_index.jsonl",
                              feature_spec=spec, cost_fn=self.specs.cost,
                              corpus=corpus)
        telemetry = self.engine.telemetry if self.engine is not None else None
        tracer = getattr(self.engine, "tracer", None) \
            if self.engine is not None else None
        screen = SurrogateScreen(
            featurize=lambda x: spec.encode(cont.to_dict(x)),
            config=cfg, telemetry=telemetry, tracer=tracer, corpus=corpus)
        return screen, corpus_path

    def run(self, x0: dict[str, float] | None = None) -> SizingResult:
        self.evaluations = 0
        cont = self.space.to_continuous()
        start = np.array([x0[n] for n in cont.names]) if x0 else None
        executor = None
        failures_before = 0
        screen, corpus_path = self._build_screen(cont)
        corpus_index = None
        if corpus_path is not None:
            from repro.surrogate import CorpusIndex
            corpus_index = CorpusIndex(
                corpus_path.with_name("corpus_index.jsonl"))
        if self.engine is not None:
            if not isinstance(self.evaluator, SimulationEvaluator):
                raise TypeError(
                    "engine-backed sizing needs a SimulationEvaluator "
                    "(it provides simulate() and cache_key())")
            batcher = BatchEvaluator(self.evaluator) \
                if self.batch_kernel else None
            executor = _EngineBatch(self.engine, self.evaluator,
                                    self.space, cont.names, self.specs,
                                    corpus_index=corpus_index,
                                    batcher=batcher)
            failures_before = self.engine.failure_count()
        tracer = getattr(self.engine, "tracer", None) \
            if self.engine is not None else None
        t0 = time.perf_counter()
        try:
            with span_if(tracer, "sizing"):
                result = anneal_continuous(self.cost, cont,
                                           schedule=self.schedule,
                                           seed=self.seed, x0=start,
                                           executor=executor,
                                           batch_size=self.batch_size,
                                           surrogate=screen)
        finally:
            if corpus_index is not None:
                corpus_index.close()
        if screen is not None and corpus_path is not None:
            screen.corpus.to_jsonl(corpus_path)
        runtime = time.perf_counter() - t0
        best = cont.to_dict(result.best_state)
        warnings: list[str] = []
        failures = 0
        if executor is not None:
            sizes = executor._sizes(result.best_state)
            performance = self.engine.evaluate(
                self.evaluator.simulate, sizes,
                key=self.evaluator.cache_key(sizes))
            if is_failure(performance):
                warnings.append(f"best-point re-evaluation failed: "
                                f"{performance}")
                performance = {}
            self.evaluations = result.evaluations
            failures = self.engine.failure_count() - failures_before
            if result.evaluations:
                fraction = failures / result.evaluations
                if fraction > self.max_failure_fraction:
                    raise RuntimeError(
                        f"sizing lost {fraction:.0%} of {result.evaluations} "
                        f"evaluations to failures (budget "
                        f"{self.max_failure_fraction:.0%}); see "
                        f"engine.report() for the failure records")
            if failures:
                summary = self.engine.failure_summary()
                if summary:
                    warnings.append(summary)
        else:
            sizes = self.space.complete(best)
            performance = self.evaluator(sizes)
        if self._owns_engine:
            # Config-built engines belong to the sizer: shut the executor
            # down (report()/telemetry stay readable afterwards).
            self.engine.close()
        return SizingResult(
            sizes=sizes,
            performance=performance,
            cost=result.best_cost,
            feasible=self.specs.all_satisfied(performance),
            evaluations=self.evaluations,
            runtime_s=runtime,
            history=result.history,
            failures=failures,
            warnings=warnings,
        )
