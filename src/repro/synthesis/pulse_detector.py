"""AMGIE pulse-detector frontend synthesis — the Table 1 experiment.

The paper's one quantitative table reports synthesis of a *pulse detector
frontend*: a charge-sensitive amplifier (CSA) followed by a 4-stage
pulse-shaping amplifier, with specs on peaking time, counting rate, noise
(ENC), charge gain, output range, and power/area to be minimized.  The
expert design consumed 40 mW / 0.7 mm²; the AMGIE synthesis met the same
specs at 7 mW / 0.6 mm² — a ~6× power reduction.

This module provides:

* :func:`pulse_detector_performance` — the analytic performance model
  (classic CSA + semi-Gaussian shaper theory: charge gain 1/C_fb, peaking
  time n·τ, ENC² series/parallel/flicker decomposition);
* :data:`MANUAL_DESIGN` — the expert baseline, calibrated to reproduce the
  manual column of Table 1 through the model;
* :func:`pulse_detector_specs` / :func:`pulse_detector_space` — the
  synthesis problem;
* :func:`synthesize_pulse_detector` — the optimization-based synthesis run
  (DONALD-ordered model inside simulated annealing);
* :func:`build_pulse_detector_circuit` — a transistor/behavioural circuit
  of a sized design, used to *verify* peaking time and gain by transient
  simulation of a detector charge impulse;
* :func:`pulse_detector_flow` — the synthesize → verify → check pipeline
  as a traced :class:`~repro.engine.jobs.JobGraph` run, producing the
  per-run manifest CI archives for the Table 1 experiment.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.circuits.devices import (
    BOLTZMANN,
    NMOS_DEFAULT,
    Q_ELECTRON,
    ROOM_TEMP_K,
    Waveform,
)
from repro.circuits.library import charge_sensitive_amplifier, shaper_stage
from repro.circuits.netlist import Circuit
from repro.core.specs import Spec, SpecSet
from repro.opt.anneal import AnnealSchedule
from repro.synthesis.equation_based import (
    DesignSpace,
    EquationBasedSizer,
    SizingResult,
)

FOUR_KT = 4.0 * BOLTZMANN * ROOM_TEMP_K
N_STAGES = 4          # CR-RC⁴ semi-Gaussian shaper
VDD = 5.0             # detector frontends of the era ran at 5 V
C_DET = 5e-12         # detector capacitance (fixed by the application)

# Shape factors of the CR-RC⁴ weighting function (detector literature).
A_SERIES = 0.45
A_PARALLEL = 0.51
A_FLICKER = 3.58
# Calibration to the era: the 1996 process/detector combination (leakage,
# noisier devices) is folded into one ENC multiplier chosen so that the
# expert design reproduces the manual column of Table 1 (750 rms e-).
ERA_NOISE_SCALE = 15.0
# Fraction of the CSA reset time constant that limits pile-up recovery.
RESET_OCCUPANCY = 0.28
# Maximum achievable 4-stage shaper passband gain at this current budget.
A_SHAPER_MAX = 4000.0
# Parasitic load each shaper stage must drive; with per-stage gain A and
# time constant tau the stage needs gm >= C·A/tau, i.e. a current floor.
C_SHAPER_NODE = 10e-12
VOV_SHAPER = 0.2


@dataclass(frozen=True)
class PulseDetectorDesign:
    """Design variables of the CSA + shaper chain."""

    i_csa: float      # CSA input-branch current (A)
    w_in: float       # CSA input device width (m); L fixed at 1.2 µm
    c_fb: float       # CSA feedback capacitor (F)
    r_fb: float       # CSA continuous-reset resistor (Ohm)
    tau: float        # shaper time constant per stage (s)
    i_shaper: float   # current per shaper stage (A)

    L_IN = 1.2e-6

    def sizes(self) -> dict[str, float]:
        return {
            "i_csa": self.i_csa, "w_in": self.w_in, "c_fb": self.c_fb,
            "r_fb": self.r_fb, "tau": self.tau, "i_shaper": self.i_shaper,
        }

    @staticmethod
    def from_sizes(sizes: dict[str, float]) -> "PulseDetectorDesign":
        return PulseDetectorDesign(
            i_csa=sizes["i_csa"], w_in=sizes["w_in"], c_fb=sizes["c_fb"],
            r_fb=sizes["r_fb"], tau=sizes["tau"],
            i_shaper=sizes["i_shaper"])


def pulse_detector_performance(sizes: dict[str, float]) -> dict[str, float]:
    """Analytic performance of a pulse-detector design point.

    Metrics (matching Table 1):
    ``peaking_time`` (s), ``counting_rate`` (Hz), ``noise_enc`` (rms
    electrons), ``gain`` (V/fC), ``output_range`` (V, single-sided),
    ``power`` (W), ``area`` (m²).
    """
    d = PulseDetectorDesign.from_sizes(sizes)
    nmos = NMOS_DEFAULT
    # --- CSA small-signal quantities -----------------------------------
    gm_in = math.sqrt(2.0 * nmos.kp * (d.w_in / d.L_IN) * d.i_csa)
    cgs_in = (2.0 / 3.0) * nmos.cox * d.w_in * d.L_IN
    c_tot = C_DET + cgs_in + d.c_fb

    # --- timing ----------------------------------------------------------
    peaking = N_STAGES * d.tau
    # Pile-up/reset limited counting rate: pulses must clear the shaper
    # and the CSA must recover through R_fb·C_fb.
    rate = 1.0 / (2.0 * peaking + RESET_OCCUPANCY * d.r_fb * d.c_fb)

    # --- charge gain -------------------------------------------------------
    # CSA converts Q to Q/C_fb; the shaper adds its passband gain, chosen
    # so the chain nominally delivers the spec gain — the free variable is
    # C_fb (smaller C_fb needs more shaper gain, which costs swing,
    # captured in output_range below).
    gain_csa = 1e-15 / d.c_fb  # V per fC at the CSA output
    a_needed = 20.0 / gain_csa
    a_shaper = min(a_needed, A_SHAPER_MAX)
    gain = gain_csa * a_shaper

    # --- noise (ENC in rms electrons) --------------------------------------
    series = (A_SERIES * (c_tot ** 2 / d.tau)
              * (FOUR_KT * (2.0 / 3.0) / gm_in))
    parallel = A_PARALLEL * d.tau * (FOUR_KT / d.r_fb)
    flicker = (A_FLICKER * c_tot ** 2
               * nmos.kf / (nmos.cox * d.w_in * d.L_IN))
    enc = (math.sqrt(series + parallel + flicker) / Q_ELECTRON
           * ERA_NOISE_SCALE)

    # --- output range -------------------------------------------------------
    # The shaper output stage swings VDD/2 minus a bias margin minus the
    # overdrive needed to carry its current; harder-driven stages lose
    # swing.  Per-stage gain pressure also costs linear range.
    gain_per_stage = a_shaper ** (1.0 / N_STAGES)
    # Each stage must realize gm = C·A/tau: this sets a current floor
    # (gm·Vov/2), so the effective stage current cannot be annealed away.
    i_sh_required = (C_SHAPER_NODE * gain_per_stage / d.tau) * VOV_SHAPER / 2.0
    i_sh_eff = max(d.i_shaper, i_sh_required)
    vov_sh = math.sqrt(2.0 * i_sh_eff / (nmos.kp * 300.0))
    output_range = VDD / 2.0 - 0.7 - vov_sh - 0.06 * gain_per_stage

    # --- power and area ------------------------------------------------------
    # CSA branch + cascode bias overhead + four shaper stages.
    power = VDD * (d.i_csa * 1.5 + N_STAGES * i_sh_eff)
    area = _area_estimate(d)
    return {
        "peaking_time": peaking,
        "counting_rate": rate,
        "noise_enc": enc,
        "gain": gain,
        "output_range": output_range,
        "power": power,
        "area": area,
    }


def _area_estimate(d: PulseDetectorDesign) -> float:
    """Layout area model: capacitors and the reset resistor dominate."""
    cap_density = 1e-3          # F/m² (double-poly capacitor)
    res_density = 4e3           # Ohm per square, high-resistivity poly
    a_cfb = d.c_fb / cap_density
    a_rfb = (d.r_fb / res_density) * (2e-6 * 2e-6)
    # Shaper: per stage one C of tau/R_unit plus R_unit; R_unit fixed 100k.
    r_unit = 100e3
    a_shaper = N_STAGES * ((d.tau / r_unit) / cap_density
                           + (r_unit / res_density) * (2e-6 * 2e-6))
    a_devices = 60.0 * (d.w_in * d.L_IN)       # CSA + bias + buffers
    a_shaper_devices = N_STAGES * 2e-9 * (d.i_shaper / 100e-6 + 1.0)
    fixed_overhead = 0.2e-6                    # routing, pads, guard rings
    return (a_cfb + a_rfb + a_shaper + a_devices + a_shaper_devices
            + fixed_overhead) * 1.35


# ----------------------------------------------------------------------
# Table 1 problem definition
# ----------------------------------------------------------------------

#: The expert ("manual") design: calibrated so the model reproduces the
#: manual column of Table 1 — all specs met, 40 mW, 0.7 mm².
MANUAL_DESIGN = PulseDetectorDesign(
    i_csa=3.2e-3,       # heavily over-biased input device for noise margin
    w_in=1500e-6,
    c_fb=0.1e-12,
    r_fb=97e6,
    tau=0.275e-6,
    i_shaper=0.8e-3,
)


def pulse_detector_specs() -> SpecSet:
    """The Table 1 specification column."""
    return SpecSet([
        Spec.at_most("peaking_time", 1.5e-6, unit="s"),
        Spec.at_least("counting_rate", 200e3, unit="Hz"),
        Spec.at_most("noise_enc", 1000.0, unit="rms e-"),
        Spec.equal("gain", 20.0, tolerance=0.08, unit="V/fC"),
        Spec.at_least("output_range", 1.0, unit="V"),
        Spec.minimize("power", good=10e-3, weight=1.0, unit="W"),
        Spec.minimize("area", good=1e-6, weight=0.25, unit="m^2"),
    ])


def pulse_detector_space() -> DesignSpace:
    return DesignSpace(variables={
        "i_csa": (20e-6, 5e-3),
        "w_in": (50e-6, 3000e-6),
        "c_fb": (30e-15, 1e-12),
        "r_fb": (1e6, 500e6),
        "tau": (0.05e-6, 0.37e-6),
        "i_shaper": (20e-6, 2e-3),
    })


def synthesize_pulse_detector(seed: int = 1,
                              schedule: AnnealSchedule | None = None) -> SizingResult:
    """Run the optimization-based synthesis of the pulse detector.

    Returns the sized design; the benchmark compares its power/area to
    :data:`MANUAL_DESIGN` expecting the ≈6× reduction of Table 1.
    """
    sizer = EquationBasedSizer(
        pulse_detector_performance, pulse_detector_space(),
        pulse_detector_specs(),
        schedule=schedule or AnnealSchedule(
            moves_per_temperature=250, cooling=0.9, max_evaluations=40000),
        seed=seed)
    return sizer.run(x0=MANUAL_DESIGN.sizes())


# ----------------------------------------------------------------------
# Structural verification
# ----------------------------------------------------------------------

def build_pulse_detector_circuit(design: PulseDetectorDesign,
                                 q_injected: float = 0.05e-15) -> Circuit:
    """Circuit of the sized frontend with a charge-impulse testbench.

    The CSA is at transistor level; the shaper stages are behavioural
    active-RC sections (ideal-opamp), reflecting the hierarchical
    methodology of §2.1 where only the block under design is at device
    level.  The detector pulse is a narrow current pulse delivering
    ``q_injected`` coulombs into the CSA input.
    """
    csa = charge_sensitive_amplifier({
        "w_in": design.w_in,
        "i_bias": design.i_csa,
        "c_fb": design.c_fb,
        "r_fb": design.r_fb,
        "vdd": VDD,
    })
    chain = Circuit("pulse_detector")
    for dev in csa.devices:
        chain.add(dev.renamed({"out": "csa_out"}))
    # Behavioural shaper: one CR differentiator + N_STAGES RC stages give
    # the semi-Gaussian CR-RC⁴.  A CSA step of height V0 peaks at
    # V0·G·4⁴e⁻⁴/4! at t = 4τ, so the chain gain G compensates that peak
    # fraction to deliver the specified V/fC charge gain.
    peak_fraction = (N_STAGES ** N_STAGES) * math.exp(-N_STAGES) \
        / math.factorial(N_STAGES)
    gain_csa = 1e-15 / design.c_fb
    a_total = min(20.0 / gain_csa, A_SHAPER_MAX) / peak_fraction
    per_stage = a_total ** (1.0 / (N_STAGES + 1))
    prev = "csa_out"
    for k in range(N_STAGES + 1):
        stage = shaper_stage(k, design.tau, per_stage,
                             differentiator=(k == 0))
        mapping = {"in": prev, "out": f"sh{k}", "vx": f"shx{k}",
                   "mid": f"shm{k}"}
        for dev in stage.devices:
            chain.add(dev.renamed(mapping).with_prefix(f"s{k}_"))
        prev = f"sh{k}"
    # Detector impulse: 10 ns current pulse carrying q_injected.
    t_pulse = 10e-9
    chain.isource("idet", "in", "0", dc=0.0,
                  waveform=Waveform("pulse",
                                    (0.0, q_injected / t_pulse, 0.2e-6,
                                     1e-10, 1e-10, t_pulse, 1.0)))
    return chain


# ----------------------------------------------------------------------
# Transistor-level CSA sizing on the vectorized kernels
# ----------------------------------------------------------------------

CSA_SIM_SPACE_VARIABLES = {
    "w_in": (50e-6, 400e-6),
    "i_bias": (50e-6, 400e-6),
    "r_fb": (5e6, 50e6),
}


def csa_testbench(sizes: dict[str, float]) -> Circuit:
    """CSA wired for :class:`~repro.synthesis.SimulationEvaluator`.

    The charge-sensitive amplifier is single-ended; renaming its ``in``
    node to ``inp`` lets the evaluator's standard differential testbench
    (AC drive on ``inp``) measure it as a common-source gain stage.  The
    unused ``inn`` input is tied off by the evaluator's own bias source.
    """
    csa = charge_sensitive_amplifier(sizes)
    c = Circuit("csa_tb")
    for dev in csa.devices:
        c.add(dev.renamed({"in": "inp"}))
    return c


def csa_sim_specs() -> SpecSet:
    """Open-loop CSA specs for the simulation-based sizing demo."""
    return SpecSet([
        Spec.at_least("gain_db", 40.0),
        Spec.at_least("gbw", 100e6),
        Spec.minimize("power", good=1e-3),
    ])


def synthesize_csa_batched(seed: int = 7,
                           schedule: AnnealSchedule | None = None,
                           batch_kernel: bool = True,
                           batch_size: int = 6) -> SizingResult:
    """Size the CSA by simulation on the vectorized same-topology kernels.

    Every annealing batch shares the CSA topology, so with
    ``batch_kernel=True`` the engine assembles one stacked AC system per
    batch instead of simulating the members one by one
    (:mod:`repro.analysis.batch`).  The trajectory is pinned in
    ``tests/golden/pulse_detector.json`` under ``batched_sizing`` — by
    construction it must be *identical* to the ``batch_kernel=False``
    run, so the golden also guards the batched≡scalar contract at the
    whole-flow level.
    """
    from repro.circuits.library import CSA_DEFAULTS
    from repro.engine.config import EngineConfig
    from repro.synthesis.simulation_based import (
        SimulationBasedSizer,
        SimulationEvaluator,
    )

    space = DesignSpace(
        variables=dict(CSA_SIM_SPACE_VARIABLES),
        fixed={k: v for k, v in CSA_DEFAULTS.items()
               if k not in CSA_SIM_SPACE_VARIABLES})
    schedule = schedule or AnnealSchedule(
        moves_per_temperature=12, cooling=0.8, max_evaluations=60,
        stop_after_stale=4)
    evaluator = SimulationEvaluator(builder=csa_testbench, input_bias=0.9,
                                    raise_failures=True)
    sizer = SimulationBasedSizer(
        evaluator, space, csa_sim_specs(), schedule=schedule, seed=seed,
        batch_size=batch_size,
        config=EngineConfig(cache=True, trace=True,
                            batch_kernel=batch_kernel))
    return sizer.run()


@dataclass
class PulseDetectorRun:
    """Outcome of :func:`pulse_detector_flow`."""

    result: SizingResult
    verification: dict[str, float]
    check: dict[str, float]
    manifest: dict | None
    report: dict


def pulse_detector_flow(seed: int = 1,
                        schedule: AnnealSchedule | None = None,
                        config=None,
                        q_injected: float = 0.05e-15) -> PulseDetectorRun:
    """Synthesize, simulate and check the Table 1 pulse detector, traced.

    Three :class:`~repro.engine.jobs.JobGraph` stages under one flow span:

    * ``synthesize`` — :func:`synthesize_pulse_detector` (annealing over
      the analytic model);
    * ``verify`` — transient simulation of the sized circuit
      (:func:`verified_peaking_time`);
    * ``check`` — model-vs-simulation agreement and spec satisfaction.

    ``config`` is an :class:`~repro.engine.config.EngineConfig`; tracing
    defaults on, and with ``config.trace_dir`` set the run writes
    ``manifest.json`` + ``trace.jsonl`` there.
    """
    from repro.engine.config import EngineConfig
    from repro.engine.core import EvaluationEngine
    from repro.engine.jobs import JobGraph
    from repro.engine.trace import finish_run, span_if

    config = config if config is not None else EngineConfig(trace=True)
    engine = EvaluationEngine.from_config(config)
    specs = pulse_detector_specs()

    def _synthesize(_results: dict) -> SizingResult:
        return synthesize_pulse_detector(seed=seed, schedule=schedule)

    def _verify(results: dict) -> dict[str, float]:
        design = PulseDetectorDesign.from_sizes(results["synthesize"].sizes)
        return verified_peaking_time(design, q_injected)

    def _check(results: dict) -> dict[str, float]:
        predicted = results["synthesize"].performance
        measured = results["verify"]
        rel_err = (abs(measured["peaking_time"] - predicted["peaking_time"])
                   / predicted["peaking_time"])
        return {
            "peaking_time_rel_err": rel_err,
            "feasible": float(results["synthesize"].feasible),
            "specs_met": float(specs.all_satisfied(predicted)),
        }

    graph = JobGraph()
    graph.add("synthesize", _synthesize)
    graph.add("verify", _verify, deps=["synthesize"])
    graph.add("check", _check, deps=["synthesize", "verify"])

    from repro.analysis.dcop import ConvergenceError
    from repro.analysis.mna import SingularCircuitError

    try:
        with span_if(engine.tracer, "pulse_detector_flow"):
            results = graph.run(engine=engine,
                                retry_policy=config.retry_policy)
    except (ConvergenceError, SingularCircuitError):
        # Domain failures of the synthesize/verify stages get an
        # error-status manifest; anything else is a programming error
        # and propagates without one — same contract as
        # measures.output_swing.
        finish_run("pulse_detector_flow", engine, seed=seed, config=config,
                   status="error")
        engine.close()
        raise
    except BaseException:
        engine.close()
        raise
    manifest = finish_run("pulse_detector_flow", engine, seed=seed,
                          config=config, status="ok")
    report = engine.report()
    engine.close()
    return PulseDetectorRun(
        result=results["synthesize"],
        verification=results["verify"],
        check=results["check"],
        manifest=manifest,
        report=report,
    )


def verified_peaking_time(design: PulseDetectorDesign,
                          q_injected: float = 0.05e-15) -> dict[str, float]:
    """Transient-simulate the built circuit; measure peaking time and gain.

    Returns ``{"peaking_time": s, "gain": V/fC}`` measured at the shaper
    output — the "design verification" step of the top-down flow.
    """
    from repro.analysis.transient import transient
    circuit = build_pulse_detector_circuit(design, q_injected)
    t_stop = 0.2e-6 + 10.0 * N_STAGES * design.tau
    result = transient(circuit, t_stop, design.tau / 25.0)
    out = f"sh{N_STAGES}"
    t_pk, v_pk = result.peak(out)
    baseline = result.v(out)[0]
    gain_v_per_fc = abs(v_pk - baseline) / (q_injected / 1e-15)
    return {
        "peaking_time": t_pk - 0.2e-6,
        "gain": gain_v_per_fc,
    }
