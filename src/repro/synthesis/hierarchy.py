"""The hierarchical performance-driven design methodology of §2.1.

Most experimental analog CAD systems of the tutorial share one flow
skeleton, alternating between hierarchy levels:

* top-down:  topology selection → specification translation (sizing) →
  design verification;
* bottom-up: layout generation → detailed (extracted) verification;
* redesign iterations whenever a step fails its checks.

:class:`DesignTask` captures one block at one hierarchy level with
pluggable strategy functions, so the same engine drives an opamp cell, the
pulse-detector macroblock, or a full mixed-signal frontend.  The engine
records every step in a :class:`FlowLog` — the audit trail a
performance-driven methodology needs for constraint pass-down.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Callable

from repro.core.specs import SpecSet


class StepKind(enum.Enum):
    TOPOLOGY = "topology_selection"
    TRANSLATE = "specification_translation"
    VERIFY = "design_verification"
    LAYOUT = "layout_generation"
    EXTRACT_VERIFY = "detailed_verification"
    REDESIGN = "redesign_iteration"


@dataclass
class FlowEvent:
    block: str
    step: StepKind
    ok: bool
    detail: str = ""


@dataclass
class FlowLog:
    events: list[FlowEvent] = field(default_factory=list)

    def record(self, block: str, step: StepKind, ok: bool,
               detail: str = "") -> None:
        self.events.append(FlowEvent(block, step, ok, detail))

    def failures(self) -> list[FlowEvent]:
        return [e for e in self.events if not e.ok]

    def to_text(self) -> str:
        return "\n".join(
            f"[{e.block}] {e.step.value}: {'ok' if e.ok else 'FAIL'}"
            + (f" — {e.detail}" if e.detail else "")
            for e in self.events)


class FlowError(RuntimeError):
    """Raised when redesign iterations are exhausted without success."""


# Strategy signatures.  `select` returns candidate topology names
# best-first; `translate` sizes one topology against specs returning
# (sizes, predicted_performance); `verify` re-measures performance of a
# sized design (simulation), returning the measured dict; `layout`
# produces a layout artifact and the parasitic-degraded performance.
SelectFn = Callable[[SpecSet], list[str]]
TranslateFn = Callable[[str, SpecSet], tuple[dict, dict]]
VerifyFn = Callable[[str, dict], dict]
LayoutFn = Callable[[str, dict], tuple[object, dict]]


@dataclass
class DesignTask:
    """One block to design at one hierarchy level."""

    name: str
    specs: SpecSet
    select: SelectFn
    translate: TranslateFn
    verify: VerifyFn | None = None
    layout: LayoutFn | None = None
    max_redesigns: int = 3


@dataclass
class DesignOutcome:
    block: str
    topology: str
    sizes: dict
    predicted: dict
    verified: dict | None
    layout_artifact: object | None
    extracted: dict | None
    log: FlowLog


def run_design_task(task: DesignTask,
                    log: FlowLog | None = None) -> DesignOutcome:
    """Execute the top-down/bottom-up flow for one block.

    Tries each selected topology in order; within a topology, verification
    or extraction failures trigger redesign iterations (re-translation
    with the same specs — strategies may be stochastic) up to
    ``max_redesigns``; exhausted topologies fall through to the next
    candidate.
    """
    log = log if log is not None else FlowLog()
    candidates = task.select(task.specs)
    log.record(task.name, StepKind.TOPOLOGY, bool(candidates),
               f"candidates: {candidates}")
    if not candidates:
        raise FlowError(f"{task.name}: no viable topology")
    last_failure = "no attempt"
    for topology in candidates:
        for attempt in range(task.max_redesigns):
            if attempt > 0:
                log.record(task.name, StepKind.REDESIGN, True,
                           f"attempt {attempt + 1} on {topology}")
            try:
                sizes, predicted = task.translate(topology, task.specs)
            except (RuntimeError, ValueError, KeyError, ZeroDivisionError,
                    OverflowError) as exc:
                # The translation tools' actual failure vocabulary:
                # PlanError / ConvergenceError / FlowError are
                # RuntimeErrors, NetlistError (incl. SingularCircuitError)
                # is a ValueError, plan arithmetic raises the rest.
                # Programming errors (TypeError, AttributeError, ...)
                # propagate instead of being logged as redesign fodder.
                log.record(task.name, StepKind.TRANSLATE, False, str(exc))
                last_failure = f"translate({topology}): {exc}"
                break  # sizing failure is structural: try next topology
            ok_pred = task.specs.all_satisfied(predicted)
            log.record(task.name, StepKind.TRANSLATE, ok_pred,
                       f"{topology}: predicted cost "
                       f"{task.specs.cost(predicted):.4g}")
            if not ok_pred:
                last_failure = f"{topology}: predicted specs not met"
                continue
            verified = None
            if task.verify is not None:
                verified = task.verify(topology, sizes)
                ok_ver = task.specs.all_satisfied(verified)
                log.record(task.name, StepKind.VERIFY, ok_ver,
                           f"{topology}: verification")
                if not ok_ver:
                    last_failure = f"{topology}: verification failed"
                    continue
            artifact, extracted = None, None
            if task.layout is not None:
                artifact, extracted = task.layout(topology, sizes)
                ok_ext = task.specs.all_satisfied(extracted)
                log.record(task.name, StepKind.EXTRACT_VERIFY, ok_ext,
                           f"{topology}: extracted verification")
                if not ok_ext:
                    last_failure = f"{topology}: extracted specs not met"
                    continue
            return DesignOutcome(task.name, topology, sizes, predicted,
                                 verified, artifact, extracted, log)
    raise FlowError(
        f"{task.name}: all topologies exhausted after redesigns "
        f"(last failure: {last_failure})")
