"""Frontend analog circuit synthesis: the §2 tool landscape.

Knowledge-based plans (IDAC/OASYS), equation-based optimization (OPTIMAN),
simulation-based optimization (FRIDGE), compiled AWE synthesis
(ASTRX/OBLX), topology selection, DONALD constraint models,
manufacturability corners, and the Table 1 pulse-detector and RF
front-end applications.
"""

from repro.synthesis.astrx import AstrxProblem, AstrxResult, OblxOptimizer
from repro.synthesis.blades import (
    Consultation,
    InferenceError,
    Rule,
    RuleEngine,
    ota_rule_base,
    size_ota_with_rules,
)
from repro.synthesis.donald import (
    ota_equations,
    plan_for,
    solve_performance_from_sizes,
    solve_sizes_from_specs,
)
from repro.synthesis.equation_based import (
    DesignSpace,
    EquationBasedSizer,
    SizingResult,
)
from repro.synthesis.hierarchy import (
    DesignOutcome,
    DesignTask,
    FlowError,
    FlowLog,
    StepKind,
    run_design_task,
)
from repro.synthesis.manufacturability import (
    Corner,
    ManufacturableSizer,
    standard_corners,
    worst_case_performance,
    yield_estimate,
)
from repro.synthesis.models import (
    OtaDesign,
    TwoStageDesign,
    folded_cascode_performance,
    ota_performance,
    two_stage_performance,
)
from repro.synthesis.plan_library import (
    build_ota_plan,
    build_two_stage_plan,
    default_plan_library,
)
from repro.synthesis.plans import (
    DesignPlan,
    PlanError,
    PlanLibrary,
    PlanResult,
)
from repro.synthesis.pulse_detector import (
    MANUAL_DESIGN,
    PulseDetectorDesign,
    PulseDetectorRun,
    build_pulse_detector_circuit,
    pulse_detector_flow,
    pulse_detector_performance,
    pulse_detector_space,
    pulse_detector_specs,
    synthesize_pulse_detector,
    verified_peaking_time,
)
from repro.synthesis.rf_frontend import (
    BlockSpec,
    cascade_iip3_dbm,
    cascade_noise_figure,
    optimize_receiver,
    receiver_performance,
    receiver_specs,
)
from repro.synthesis.sc_filter import (
    BiquadSpec,
    ScBiquad,
    ScFilterDesign,
    ScSynthesisError,
    butterworth_biquads,
    quantize_ratios,
    synthesize_sc_filter,
)
from repro.synthesis.simulation_based import (
    BatchEvaluator,
    SimulationBasedSizer,
    SimulationEvaluator,
)
from repro.synthesis.topology import (
    TopologyCandidate,
    TopologySelectionResult,
    default_candidates,
    interval_feasible,
    select_enumerate,
    select_genetic,
    select_interval,
    select_rule_based,
)

__all__ = [
    "AstrxProblem",
    "Consultation",
    "InferenceError",
    "Rule",
    "RuleEngine",
    "ota_rule_base",
    "size_ota_with_rules",
    "BiquadSpec",
    "ScBiquad",
    "ScFilterDesign",
    "ScSynthesisError",
    "butterworth_biquads",
    "quantize_ratios",
    "synthesize_sc_filter",
    "AstrxResult",
    "BlockSpec",
    "Corner",
    "DesignOutcome",
    "DesignPlan",
    "DesignSpace",
    "DesignTask",
    "EquationBasedSizer",
    "FlowError",
    "FlowLog",
    "MANUAL_DESIGN",
    "ManufacturableSizer",
    "OblxOptimizer",
    "OtaDesign",
    "PlanError",
    "PlanLibrary",
    "PlanResult",
    "PulseDetectorDesign",
    "BatchEvaluator",
    "SimulationBasedSizer",
    "SimulationEvaluator",
    "SizingResult",
    "StepKind",
    "TopologyCandidate",
    "TopologySelectionResult",
    "TwoStageDesign",
    "build_ota_plan",
    "PulseDetectorRun",
    "build_pulse_detector_circuit",
    "pulse_detector_flow",
    "build_two_stage_plan",
    "cascade_iip3_dbm",
    "cascade_noise_figure",
    "default_candidates",
    "default_plan_library",
    "folded_cascode_performance",
    "interval_feasible",
    "optimize_receiver",
    "ota_equations",
    "ota_performance",
    "plan_for",
    "pulse_detector_performance",
    "pulse_detector_space",
    "pulse_detector_specs",
    "receiver_performance",
    "receiver_specs",
    "run_design_task",
    "select_enumerate",
    "select_genetic",
    "select_interval",
    "select_rule_based",
    "solve_performance_from_sizes",
    "solve_sizes_from_specs",
    "standard_corners",
    "synthesize_pulse_detector",
    "two_stage_performance",
    "verified_peaking_time",
    "worst_case_performance",
    "yield_estimate",
]
