"""Compositional analytic performance model for generated structures.

The same square-law first-order expressions as
:mod:`repro.synthesis.models`, assembled *per block* instead of per
canned topology: the input pair contributes gm, the load its output
resistance, the tail its current law, the second stage its gain and
nondominant pole.  Every expression is interval-safe (floats and
:class:`repro.opt.interval.Interval` flow through identically), which is
what lets every generated structure participate in boundary-checking
selection and be bounded for ``max_gain_db`` — phase margin and slew are
the usual float-only exceptions, guarded the same way as
:func:`repro.synthesis.models.two_stage_performance`.
"""

from __future__ import annotations

import math
from typing import TYPE_CHECKING

from repro.circuits.devices import NMOS_DEFAULT, PMOS_DEFAULT, MosModel
from repro.synthesis.models import (
    FOUR_KT,
    db20_value,
    gds_saturation,
    gm_saturation,
    overdrive,
)

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.synthesis.compose.generator import StructureSpec

# Nominal voltage headroom across a resistor tail: the input common mode
# minus one V_GS (NMOS pair) or the complement of it (PMOS pair).  Kept a
# constant so interval evaluation stays monotone in r_tail.
_TAIL_HEADROOM = {"n": 0.6, "p": 0.9}


def _sqrt(x):
    return x.sqrt() if hasattr(x, "sqrt") else math.sqrt(x)


def composed_performance(spec: "StructureSpec", sizes: dict,
                         nmos: MosModel = NMOS_DEFAULT,
                         pmos: MosModel = PMOS_DEFAULT) -> dict:
    """First-order performance of one composed structure.

    Metrics: ``gain``, ``gain_db``, ``gbw`` (Hz), ``power`` (W), ``area``
    (m²), ``swing`` (V), ``input_noise_density`` (V/√Hz), ``vov_in`` (V),
    plus ``phase_margin`` and ``slew_rate`` on float inputs.
    """
    in_model, load_model = (nmos, pmos) if spec.pair == "n" else (pmos, nmos)
    vdd = sizes.get("vdd", 3.3)
    c_load = sizes["c_load"]

    # -- tail: bias current --------------------------------------------
    if spec.tail == "resistor":
        i_tail = _TAIL_HEADROOM[spec.pair] / sizes["r_tail"]
        i_ref = sizes.get("i_bias", 0.0)
        vov_tail = 0.0
    else:
        i_tail = sizes["i_bias"]
        i_ref = sizes["i_bias"]
        vov_tail = overdrive(in_model.kp, sizes["w_tail"] / sizes["l_tail"],
                             i_tail)
        if spec.tail == "cascode":
            vov_tail = 2.0 * vov_tail
    i_half = i_tail / 2.0

    # -- input pair ----------------------------------------------------
    wl_in = sizes["w_in"] / sizes["l_in"]
    gm_in = gm_saturation(in_model.kp, wl_in, i_half)
    go_in = gds_saturation(in_model.lambda_, i_half)
    vov_in = overdrive(in_model.kp, wl_in, i_half)

    # -- load: first-stage output conductance and noise factor ---------
    if spec.load == "resistor":
        go_load = 1.0 / sizes["r_load"]
        noise_factor = 1.2
        vov_load_drop = 1.0  # nominal IR drop across the load resistor
    else:
        wl_load = sizes["w_load"] / sizes["l_load"]
        go_l = gds_saturation(load_model.lambda_, i_half)
        gm_l = gm_saturation(load_model.kp, wl_load, i_half)
        vov_load_drop = overdrive(load_model.kp, wl_load, i_half)
        noise_factor = 1.0 + gm_l / gm_in
        if spec.load == "mirror":
            go_load = go_l
        elif spec.load == "cascode_mirror":
            go_load = go_l * go_l / gm_l  # cascode-boosted r_out
            vov_load_drop = 2.0 * vov_load_drop
        else:  # diode: the connection makes the load look like 1/gm
            go_load = gm_l + go_l
    gain1 = gm_in / (go_in + go_load)

    # -- second stage --------------------------------------------------
    area = _device_area(spec, sizes)
    if spec.stage2 == "none":
        gain = gain1
        gbw = gm_in / (2.0 * math.pi * c_load)
        i2 = 0.0
        gm2 = None
    else:
        wl_p2 = sizes["w_p2"] / sizes["l_p2"]
        wl_n2 = sizes["w_n2"] / sizes["l_n2"]
        if spec.stage2 == "class_a":
            # The sink mirrors the reference: 1:1 off a resistor tail
            # (the reference diode *is* the sink's twin), ratioed off the
            # tail mirror otherwise.
            wl_sink = wl_n2 if spec.pair == "n" else wl_p2
            if spec.tail == "resistor":
                i2 = sizes["i_bias"]
            else:
                wl_tail = sizes["w_tail"] / sizes["l_tail"]
                i2 = sizes["i_bias"] * wl_sink / wl_tail
            wl_drv = wl_p2 if spec.pair == "n" else wl_n2
            drv_model = load_model
            gm2 = gm_saturation(drv_model.kp, wl_drv, i2)
        else:  # class_ab: push-pull, both devices transconduct
            i2 = 0.5 * i_tail * wl_p2 / wl_in
            gm2 = gm_saturation(pmos.kp, wl_p2, i2) \
                + gm_saturation(nmos.kp, wl_n2, i2)
        go2 = gds_saturation(pmos.lambda_, i2) \
            + gds_saturation(nmos.lambda_, i2)
        gain2 = gm2 / go2
        gain = gain1 * gain2
        gbw = gm_in / (2.0 * math.pi * sizes["c_comp"])

    power = vdd * (i_tail + i_ref + i2)
    swing = vdd - vov_tail - vov_in - vov_load_drop
    noise2 = 2.0 * FOUR_KT * (2.0 / 3.0) / gm_in * noise_factor
    performance = {
        "gain": gain,
        "gain_db": db20_value(gain),
        "gbw": gbw,
        "power": power,
        "area": area,
        "swing": swing,
        "input_noise_density": _sqrt(noise2),
        "vov_in": vov_in,
    }
    if isinstance(gbw, float):
        if gm2 is not None and isinstance(gm2, float):
            p2 = gm2 / (2.0 * math.pi * c_load)
            performance["phase_margin"] = \
                90.0 - math.degrees(math.atan(gbw / p2))
            performance["slew_rate"] = min(
                i_tail / sizes["c_comp"], i2 / c_load)
        elif gm2 is None:
            performance["phase_margin"] = 85.0  # single stage: load pole
            performance["slew_rate"] = i_tail / c_load
    return performance


def _device_area(spec: "StructureSpec", sizes: dict):
    """Active area: Σ W·L over stamped devices + MiM-style cap area."""
    area = 2.0 * sizes["w_in"] * sizes["l_in"]
    if spec.load in ("mirror", "diode"):
        area = area + 2.0 * sizes["w_load"] * sizes["l_load"]
    elif spec.load == "cascode_mirror":
        area = area + 4.0 * sizes["w_load"] * sizes["l_load"]
    if spec.tail in ("simple", "cascode"):
        n_tail = 2.0 if spec.tail == "simple" else 3.0  # + reference diode
        area = area + n_tail * sizes["w_tail"] * sizes["l_tail"]
    if spec.stage2 != "none":
        area = area + sizes["w_p2"] * sizes["l_p2"] \
            + sizes["w_n2"] * sizes["l_n2"]
    if spec.comp in ("miller", "miller_rz"):
        area = area + sizes["c_comp"] / 1e-3  # 1 mF/m² cap density
    return area * 1.5  # wiring overhead
