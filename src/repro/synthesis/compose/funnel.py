"""The generate → validate → prune → size funnel over composed structures.

:class:`TopologyFunnel` chains the whole compositional flow:

1. **generate** the structure space (:func:`generate_topologies`);
2. **validate** each structure electrically (parse round-trip, DC solve,
   KCL residual) — invalid structures are counted, never sized;
3. **pre-filter** with the interval selector over the auto-registered
   :class:`TopologyCandidate` bridge (unproven passes surface through
   ``topology.interval_unproven``);
4. **rank** the survivors symbolically (:mod:`.prune`) and keep the
   top-k — a ≥ 5× cut of the sized set by default;
5. **size** each survivor through :class:`SimulationBasedSizer` with the
   batched kernels and optional surrogate screening enabled, and pick
   the best sized design NaN-safely.

Progress is counted on the engine's telemetry under ``topogen.*`` and
rolled into report schema v8 / manifest v7.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass, field

from repro.core.specs import SpecSet
from repro.engine.config import EngineConfig
from repro.engine.core import EvaluationEngine
from repro.engine.trace import span_if
from repro.opt.anneal import AnnealSchedule
from repro.synthesis.compose.generator import (
    ComposedTopology,
    INPUT_BIAS,
    generate_topologies,
    validate_topology,
)
from repro.synthesis.compose.prune import (
    StructureRank,
    prune_structures,
    rank_structures,
)
from repro.synthesis.simulation_based import (
    SimulationBasedSizer,
    SimulationEvaluator,
)
from repro.synthesis.topology import (
    TopologySelectionResult,
    _cost_improves,
    select_interval,
)


class StructureBuilder:
    """Picklable sizes → Circuit builder for one composed structure."""

    def __init__(self, topology: ComposedTopology):
        self.topology = topology

    def __call__(self, sizes: dict[str, float]):
        return self.topology.build(sizes)


@dataclass
class FunnelResult:
    """Everything the funnel produced, stage by stage."""

    generated: int
    valid: list[ComposedTopology]
    invalid: int
    interval_viable: list[str]
    interval_unproven: tuple[str, ...]
    ranked: list[StructureRank]
    survivors: list[StructureRank]
    sized: list[TopologySelectionResult] = field(default_factory=list)
    best: TopologySelectionResult | None = None

    @property
    def prune_ratio(self) -> float:
        return len(self.ranked) / max(len(self.survivors), 1)


class TopologyFunnel:
    """Compositional topology synthesis end to end.

    Pass either a live ``engine`` (shared telemetry/cache/tracer — the
    serve-layer integration) or a ``config`` to build one; with neither,
    a default serial engine is built and closed after :meth:`run`.
    """

    def __init__(self, specs: SpecSet,
                 engine: EvaluationEngine | None = None,
                 config: EngineConfig | None = None,
                 seed: int = 0,
                 sample: int | None = None,
                 keep: int | None = None,
                 prune_ratio: float = 6.0,
                 prune_tol: float = 0.05,
                 schedule: AnnealSchedule | None = None,
                 batch_size: int = 8,
                 batch_kernel: bool | None = None,
                 surrogate=None):
        self.specs = specs
        if engine is not None and config is not None:
            raise ValueError("TopologyFunnel: pass engine= or config=, "
                             "not both")
        if engine is None:
            config = config if config is not None else EngineConfig()
            engine = EvaluationEngine.from_config(config)
            self._owns_engine = True
        else:
            self._owns_engine = False
        self.engine = engine
        self.seed = seed
        self.sample = sample
        self.keep = keep
        self.prune_ratio = prune_ratio
        self.prune_tol = prune_tol
        # Simulation budget per survivor is deliberately modest: the
        # funnel's job is breadth; depth belongs to a follow-up sizing
        # run of the winning structure.
        self.schedule = schedule or AnnealSchedule(
            moves_per_temperature=16, cooling=0.7, max_evaluations=160)
        self.batch_size = batch_size
        if batch_kernel is None:
            batch_kernel = bool(config.batch_kernel) \
                if config is not None else True
        self.batch_kernel = batch_kernel
        if surrogate is None and config is not None:
            surrogate = config.surrogate
        self.surrogate = surrogate

    # -- stages --------------------------------------------------------
    def run(self) -> FunnelResult:
        telemetry = self.engine.telemetry
        tracer = getattr(self.engine, "tracer", None)
        try:
            with span_if(tracer, "topogen"):
                with span_if(tracer, "topogen.generate"):
                    topos = generate_topologies(seed=self.seed,
                                                sample=self.sample)
                    telemetry.count("topogen.generated", len(topos))
                with span_if(tracer, "topogen.validate"):
                    valid, invalid = self._validate(topos, telemetry)
                with span_if(tracer, "topogen.prefilter"):
                    viable, unproven, viable_topos = \
                        self._interval_prefilter(valid, telemetry)
                with span_if(tracer, "topogen.rank"):
                    ranked = rank_structures(viable_topos, self.specs,
                                             prune_tol=self.prune_tol,
                                             telemetry=telemetry)
                survivors = prune_structures(ranked, keep=self.keep,
                                             ratio=self.prune_ratio)
                telemetry.count("topogen.pruned_out",
                                len(ranked) - len(survivors))
                telemetry.count("topogen.survivors", len(survivors))
                result = FunnelResult(
                    generated=len(topos), valid=valid, invalid=invalid,
                    interval_viable=list(viable),
                    interval_unproven=unproven,
                    ranked=ranked, survivors=survivors)
                with span_if(tracer, "topogen.size"):
                    self._size_survivors(result, telemetry)
            return result
        finally:
            if self._owns_engine:
                self.engine.close()

    def _validate(self, topos: list[ComposedTopology], telemetry):
        valid: list[ComposedTopology] = []
        invalid = 0
        for topo in topos:
            report = validate_topology(topo)
            if report.ok:
                valid.append(topo)
                telemetry.count("topogen.valid")
            else:
                invalid += 1
                telemetry.count("topogen.invalid")
        return valid, invalid

    def _interval_prefilter(self, valid: list[ComposedTopology], telemetry):
        candidates = [t.as_candidate() for t in valid]
        selection = select_interval(self.specs, candidates,
                                    telemetry=telemetry)
        keep = set(selection)
        viable_topos = [t for t in valid if t.structure_id in keep]
        return selection, selection.unproven, viable_topos

    def _size_survivors(self, result: FunnelResult, telemetry) -> None:
        for rank in result.survivors:
            topo = rank.topology
            evaluator = SimulationEvaluator(
                builder=StructureBuilder(topo), input_bias=INPUT_BIAS,
                telemetry=telemetry)
            with warnings.catch_warnings():
                # The shared engine is deliberate here: one telemetry,
                # one cache, one tracer across every survivor's sizing.
                warnings.simplefilter("ignore", DeprecationWarning)
                sizer = SimulationBasedSizer(
                    evaluator, topo.space, self.specs,
                    schedule=self.schedule, seed=self.seed,
                    engine=self.engine, batch_size=self.batch_size,
                    surrogate=self.surrogate,
                    batch_kernel=self.batch_kernel)
            sizing = sizer.run(x0=self._x0(topo))
            telemetry.count("topogen.sized")
            selection = TopologySelectionResult(
                topo.structure_id, sizing, sizing.evaluations)
            result.sized.append(selection)
            if result.best is None or _cost_improves(
                    sizing.cost, result.best.sizing.cost):
                result.best = selection

    def _x0(self, topo: ComposedTopology) -> dict[str, float]:
        defaults = topo.default_sizes()
        return {name: defaults[name] for name in topo.space.variables}
