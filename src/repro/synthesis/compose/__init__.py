"""Compositional topology generation over library functional blocks.

Opens the topology-selection scenario space from the ~7 canned library
opamps to a generated space: a grammar of functional blocks
(:mod:`.blocks`) is enumerated into electrically-validated
:class:`ComposedTopology` netlists with auto-derived design spaces
(:mod:`.generator`), interval-safe analytic models (:mod:`.model`),
symbolic pre-sizing ranking (:mod:`.prune`), a
generate→validate→prune→size funnel (:mod:`.funnel`), and a serve-layer
workload over the whole space (:mod:`.workload`).
"""

from repro.synthesis.compose.blocks import (
    Block,
    FIXED,
    REGISTRIES,
    ROLES,
    compatible,
    enumerate_choices,
)
from repro.synthesis.compose.funnel import (
    FunnelResult,
    StructureBuilder,
    TopologyFunnel,
)
from repro.synthesis.compose.generator import (
    ComposedTopology,
    StructureSpec,
    ValidationReport,
    generate_topologies,
    validate_topology,
)
from repro.synthesis.compose.model import composed_performance
from repro.synthesis.compose.prune import (
    StructureRank,
    prune_structures,
    rank_structures,
)
from repro.synthesis.compose.workload import (
    GeneratedSpaceBatcher,
    GeneratedSpaceEvaluator,
    topogen_workload,
)

__all__ = [
    "Block",
    "ComposedTopology",
    "FIXED",
    "FunnelResult",
    "GeneratedSpaceBatcher",
    "GeneratedSpaceEvaluator",
    "REGISTRIES",
    "ROLES",
    "StructureBuilder",
    "StructureRank",
    "StructureSpec",
    "TopologyFunnel",
    "ValidationReport",
    "compatible",
    "composed_performance",
    "enumerate_choices",
    "generate_topologies",
    "prune_structures",
    "rank_structures",
    "topogen_workload",
    "validate_topology",
]
