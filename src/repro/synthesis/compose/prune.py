"""Symbolic pruning: rank generated structures before numeric sizing.

The tutorial's "741-complexity" claim is that symbolic analysis can
characterize an opamp-sized circuit fast enough to *rank* structures
without a single sizing loop.  This pass runs
:func:`repro.symbolic.characterize_structure` on each generated
structure's testbench at its default sizes (exact small-signal gain and
dominant pole from the symbolic transfer function) and condenses the
result to a deterministic score:

* achievable gain, capped a fixed margin above the required gain — a
  structure with 40 dB of *surplus* gain is not better, just hungrier;
* a gain-bandwidth proxy penalty when the spec asks for more GBW than
  the analytic model predicts the structure can reach;
* a power estimate penalty (dB of the analytic power at default sizes).

Structures whose testbenches the symbolic engine declines (and any DC
failure under it) fall back to the analytic model, counted separately —
the fallback is visible in ``topogen.symbolic_fallbacks``, never silent.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.analysis.dcop import ConvergenceError
from repro.analysis.mna import SingularCircuitError
from repro.core.specs import SpecKind, SpecSet
from repro.symbolic import SymbolicError, characterize_structure
from repro.synthesis.compose.generator import ComposedTopology

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.engine.telemetry import Telemetry

# Gain above requirement + margin buys nothing; power is 10·log10 dB
# relative to 0.1 mW.
GAIN_CAP_MARGIN_DB = 20.0
_POWER_REF_W = 1e-4


@dataclass(frozen=True)
class StructureRank:
    """One structure's pre-sizing rank."""

    topology: ComposedTopology
    gain_db: float
    dominant_pole_hz: float
    power_estimate: float
    score: float
    symbolic: bool  # False: analytic fallback characterized this one

    @property
    def structure_id(self) -> str:
        return self.topology.structure_id


def _required(specs: SpecSet, name: str) -> float | None:
    for s in specs.constraints:
        if s.name == name and s.kind is SpecKind.MIN:
            return s.value
    return None


def rank_structures(topologies: list[ComposedTopology], specs: SpecSet,
                    prune_tol: float = 0.05,
                    telemetry: "Telemetry | None" = None
                    ) -> list[StructureRank]:
    """Rank structures best-first by the symbolic/analytic score."""
    gain_req = _required(specs, "gain_db") or 0.0
    gbw_req = _required(specs, "gbw")
    ranks: list[StructureRank] = []
    for topo in topologies:
        perf = topo.model(topo.default_sizes())
        power_est = float(perf["power"])
        gbw_est = float(perf["gbw"])
        try:
            char = characterize_structure(topo.testbench(), "out",
                                          prune_tol=prune_tol)
            gain_db = char.gain_db
            pole = char.dominant_pole_hz
            symbolic = True
            if telemetry is not None:
                telemetry.count("topogen.symbolic_ranked")
        except (SymbolicError, ConvergenceError, SingularCircuitError,
                ValueError, KeyError):
            gain_db = float(perf["gain_db"])
            pole = gbw_est / max(float(perf["gain"]), 1.0)
            symbolic = False
            if telemetry is not None:
                telemetry.count("topogen.symbolic_fallbacks")
        score = min(gain_db, gain_req + GAIN_CAP_MARGIN_DB)
        if gbw_req is not None and gbw_est < gbw_req:
            score -= 10.0 * math.log10(gbw_req / gbw_est)
        score -= 10.0 * math.log10(max(power_est, 1e-12) / _POWER_REF_W)
        ranks.append(StructureRank(
            topology=topo, gain_db=gain_db, dominant_pole_hz=pole,
            power_estimate=power_est, score=score, symbolic=symbolic))
    # Deterministic: score descending, structure id as total tie-break.
    ranks.sort(key=lambda r: (-r.score, r.structure_id))
    return ranks


def prune_structures(ranks: list[StructureRank],
                     keep: int | None = None,
                     ratio: float = 6.0) -> list[StructureRank]:
    """Keep the top-k survivors (default: a ``ratio``-fold cut)."""
    if keep is None:
        keep = max(1, math.ceil(len(ranks) / ratio))
    return ranks[:keep]
