"""Deterministic, seed-stable generation of composed opamp topologies.

:func:`generate_topologies` enumerates (or seed-stably samples) the valid
block compositions of :mod:`repro.synthesis.compose.blocks` and lowers
each one to a :class:`ComposedTopology`: a netlist builder over the
library's block stamps, an auto-derived :class:`DesignSpace` (the union
of the chosen blocks' variables), an interval-safe analytic performance
model, and a :meth:`ComposedTopology.as_candidate` bridge that makes the
generated structure a first-class :class:`TopologyCandidate` for all four
existing selectors.

:func:`validate_topology` is the electrical gate each generated structure
must pass before entering a funnel: the netlist serializes and re-parses
byte-identically, the parsed circuit DC-solves, and the converged
operating point satisfies KCL to solver tolerance.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from functools import cached_property

import numpy as np

from repro.analysis.dcop import ConvergenceError, dc_operating_point
from repro.analysis.mna import MnaSystem, SingularCircuitError
from repro.circuits.library import (
    VSS,
    stamp_bias_reference,
    stamp_cascode_mirror_load,
    stamp_class_a_stage,
    stamp_class_ab_stage,
    stamp_diff_pair,
    stamp_diode_load,
    stamp_miller_comp,
    stamp_mirror_load,
    stamp_resistive_load,
    stamp_resistor_tail,
    stamp_supply,
    stamp_tail_source,
)
from repro.circuits.netlist import Circuit
from repro.circuits.parser import parse_netlist
from repro.circuits.writer import write_netlist
from repro.opt.interval import Interval, IntervalError
from repro.synthesis.compose.blocks import (
    FIXED,
    REGISTRIES,
    ROLES,
    enumerate_choices,
)
from repro.synthesis.compose.model import composed_performance
from repro.synthesis.equation_based import DesignSpace
from repro.synthesis.topology import TopologyCandidate

# Input common-mode the testbench and the analytic model agree on.
INPUT_BIAS = 1.5

# ``i_bias`` re-added when a resistor tail meets a class-A second stage
# (the sink mirror still needs a current reference).
_I_BIAS_BOUNDS = (1e-6, 2e-3)
_I_BIAS_DEFAULT = 20e-6

KCL_TOL = 1e-6


@dataclass(frozen=True)
class StructureSpec:
    """The block choice tuple naming one generated structure."""

    pair: str
    load: str
    tail: str
    stage2: str
    comp: str

    @property
    def structure_id(self) -> str:
        return ".".join((f"{self.pair}pair", self.load, f"{self.tail}tail",
                         self.stage2, self.comp))

    @property
    def stages(self) -> int:
        return 1 if self.stage2 == "none" else 2

    def blocks(self):
        choices = (self.pair, self.load, self.tail, self.stage2, self.comp)
        return [REGISTRIES[role][name] for role, name in zip(ROLES, choices)]


class ComposedTopology:
    """One generated structure: builder + design space + analytic model."""

    def __init__(self, spec: StructureSpec):
        self.spec = spec
        variables: dict[str, tuple[float, float]] = {}
        defaults: dict[str, float] = {}
        for block in spec.blocks():
            variables.update(block.variables)
            defaults.update(block.defaults)
        if self._needs_bias_reference() and "i_bias" not in variables:
            variables["i_bias"] = _I_BIAS_BOUNDS
            defaults["i_bias"] = _I_BIAS_DEFAULT
        self.space = DesignSpace(variables=variables, fixed=dict(FIXED))
        self._defaults = defaults

    # -- identity ------------------------------------------------------
    @property
    def structure_id(self) -> str:
        return self.spec.structure_id

    def __repr__(self) -> str:
        return f"ComposedTopology({self.structure_id})"

    def default_sizes(self) -> dict[str, float]:
        """Hand-reasonable starting sizes (the blocks' defaults)."""
        return self.space.complete(dict(self._defaults))

    def _needs_bias_reference(self) -> bool:
        """Mirror tails always mirror a reference; a resistor tail only
        needs one when a class-A output sink must be biased."""
        return self.spec.tail != "resistor" or self.spec.stage2 == "class_a"

    # -- netlist construction ------------------------------------------
    def build(self, sizes: dict[str, float]) -> Circuit:
        """Lower the block composition to a transistor netlist.

        ``sizes`` must cover every design variable (missing keys raise
        ``KeyError``, the evaluator's unbuildable-point contract).  Ports:
        ``inp``/``inn`` (floating gates for the testbench to bias),
        ``out``, and the supply rails.
        """
        spec = self.spec
        p = self.space.complete(dict(sizes))
        vdd = p["vdd"]
        pair, load_pol = (("n", "p") if spec.pair == "n" else ("p", "n"))
        c = Circuit(self.structure_id)
        stamp_supply(c, vdd)

        bias = None
        if self._needs_bias_reference():
            # The reference diode matches the tail mirror when there is
            # one; with a resistor tail it matches the class-A sink so
            # the output stage mirrors the reference 1:1.
            if spec.tail == "resistor":
                w_ref, l_ref = self._sink_dims(p)
            else:
                w_ref, l_ref = p["w_tail"], p["l_tail"]
            bias = stamp_bias_reference(c, pair, w_ref, l_ref, p["i_bias"])

        if spec.tail == "resistor":
            tail = stamp_resistor_tail(c, pair, p["r_tail"])
        else:
            tail = stamp_tail_source(c, pair, bias, p["w_tail"], p["l_tail"],
                                     vdd, cascode=(spec.tail == "cascode"))

        out1 = "out" if spec.stage2 == "none" else "x2"
        stamp_diff_pair(c, pair, tail, "x1", out1, p["w_in"], p["l_in"])

        if spec.load == "mirror":
            stamp_mirror_load(c, load_pol, "x1", out1,
                              p["w_load"], p["l_load"])
        elif spec.load == "cascode_mirror":
            stamp_cascode_mirror_load(c, load_pol, "x1", out1,
                                      p["w_load"], p["l_load"], vdd)
        elif spec.load == "diode":
            stamp_diode_load(c, load_pol, "x1", out1,
                             p["w_load"], p["l_load"])
        else:
            stamp_resistive_load(c, load_pol, "x1", out1, p["r_load"])

        if spec.stage2 == "class_a":
            # The driver is the opposite polarity of the input pair (its
            # gate sits near the load rail); the sink mirrors the bias.
            drv = load_pol
            if drv == "p":
                w_drv, l_drv = p["w_p2"], p["l_p2"]
                w_snk, l_snk = p["w_n2"], p["l_n2"]
            else:
                w_drv, l_drv = p["w_n2"], p["l_n2"]
                w_snk, l_snk = p["w_p2"], p["l_p2"]
            stamp_class_a_stage(c, drv, out1, bias, "out",
                                w_drv, l_drv, w_snk, l_snk)
        elif spec.stage2 == "class_ab":
            stamp_class_ab_stage(c, out1, "out", p["w_p2"], p["l_p2"],
                                 p["w_n2"], p["l_n2"])

        if spec.comp == "miller":
            stamp_miller_comp(c, out1, "out", p["c_comp"])
        elif spec.comp == "miller_rz":
            stamp_miller_comp(c, out1, "out", p["c_comp"], p["r_zero"])

        c.capacitor("c_l", "out", VSS, p["c_load"])
        return c

    def _sink_dims(self, p: dict[str, float]) -> tuple[float, float]:
        """Dimensions of the class-A sink device (polarity-dependent)."""
        if self.spec.pair == "n":
            return p["w_n2"], p["l_n2"]
        return p["w_p2"], p["l_p2"]

    def testbench(self, sizes: dict[str, float] | None = None) -> Circuit:
        """The built structure plus input bias/AC drive sources."""
        c = self.build(sizes if sizes is not None else self.default_sizes())
        c.vsource("vip_tb", "inp", VSS, dc=INPUT_BIAS, ac=1.0)
        c.vsource("vin_tb", "inn", VSS, dc=INPUT_BIAS)
        return c

    # -- performance model ---------------------------------------------
    def model(self, sizes: dict) -> dict:
        """Interval-safe analytic performance (selector-compatible)."""
        return composed_performance(self.spec, sizes)

    # -- candidate bridge ----------------------------------------------
    @cached_property
    def max_gain_db(self) -> float:
        """Achievable-gain bound from interval evaluation of the model."""
        point: dict[str, object] = {
            name: Interval(lo, hi)
            for name, (lo, hi) in self.space.variables.items()}
        point.update(self.space.fixed)
        try:
            hi = self.model(point)["gain_db"].hi
        except (IntervalError, TypeError, ValueError, KeyError,
                AttributeError):
            # Not interval-provable: fall back to a structural heuristic.
            hi = 40.0 + 25.0 * (self.spec.stages - 1) \
                + (20.0 if self.spec.load == "cascode_mirror" else 0.0)
        return min(float(hi), 140.0)

    @property
    def relative_power(self) -> float:
        """Deterministic power rank mirroring the legacy registry."""
        rank = 1.0
        if self.spec.stage2 != "none":
            rank += 1.0
        if self.spec.load == "cascode_mirror":
            rank += 0.5
        if self.spec.tail == "cascode":
            rank += 0.2
        if self.spec.load == "resistor":
            rank -= 0.1
        return rank

    def as_candidate(self) -> TopologyCandidate:
        """Register the generated structure for the existing selectors."""
        return TopologyCandidate(
            name=self.structure_id, model=self.model, space=self.space,
            stages=self.spec.stages, max_gain_db=self.max_gain_db,
            relative_power=self.relative_power)


def generate_topologies(seed: int = 0,
                        sample: int | None = None) -> list[ComposedTopology]:
    """Enumerate (or seed-stably subsample) the composed structure space.

    The full enumeration is deterministic and independent of ``seed``;
    with ``sample`` < the grammar size, a ``random.Random(seed)`` draw
    picks a stable subset (same seed → byte-identical netlists).
    """
    specs = [StructureSpec(*choice) for choice in enumerate_choices()]
    if sample is not None and sample < len(specs):
        rng = random.Random(seed)
        specs = sorted(rng.sample(specs, sample),
                       key=lambda s: s.structure_id)
    return [ComposedTopology(spec) for spec in specs]


@dataclass(frozen=True)
class ValidationReport:
    """Outcome of the electrical validity gate for one structure."""

    structure_id: str
    ok: bool
    reason: str = ""
    kcl_residual: float = float("nan")


def validate_topology(topo: ComposedTopology,
                      kcl_tol: float = KCL_TOL) -> ValidationReport:
    """Parse round-trip + DC solve + KCL residual at the default sizes.

    The DC solve runs on the *re-parsed* netlist, proving the serialized
    form is complete, not merely that the in-memory object simulates.
    """
    sid = topo.structure_id
    try:
        tb = topo.testbench()
        text = write_netlist(tb)
        parsed = parse_netlist(text, name=tb.name)
        if write_netlist(parsed) != text:
            return ValidationReport(sid, False, "netlist round-trip mismatch")
        op = dc_operating_point(parsed)
    except (ConvergenceError, SingularCircuitError, ValueError,
            KeyError) as exc:
        return ValidationReport(sid, False, f"{type(exc).__name__}: {exc}")
    system = MnaSystem(parsed)
    g_mat, _c_mat, b_dc, _b_ac = system.linear_stamps()
    residual = float(np.max(np.abs(
        g_mat @ op.x + system.nonlinear_currents(op.x) - b_dc)))
    if not residual < kcl_tol:
        return ValidationReport(sid, False,
                                f"KCL residual {residual:.3e} > {kcl_tol:g}",
                                kcl_residual=residual)
    return ValidationReport(sid, True, kcl_residual=residual)
