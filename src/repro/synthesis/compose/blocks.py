"""The functional-block grammar of the compositional topology generator.

FUBOCO-style structure synthesis: an opamp is a composition of
*functional blocks* — an input differential pair, a load, a tail current
source, optionally a second (output) stage, and compensation.  Each
block contributes devices (stamped by the primitives in
:mod:`repro.circuits.library`), design variables with bounds, and
hand-reasonable defaults.  The grammar below is the cartesian product of
the block choices, restricted by :func:`compatible`:

========  =======================================================
role      choices
========  =======================================================
pair      ``n`` (NMOS input), ``p`` (PMOS input)
load      ``mirror``, ``cascode_mirror``, ``diode``, ``resistor``
tail      ``simple``, ``cascode``, ``resistor``
stage2    ``none``, ``class_a``, ``class_ab``
comp      ``none``, ``miller``, ``miller_rz``
========  =======================================================

Compensation requires a second stage (a single-stage OTA is compensated
by its load capacitor), and a second stage requires compensation — every
two-stage structure gets a Miller loop, with or without the nulling
resistor.  That yields 2·4·3·(1 + 2·2) = 120 structures.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from itertools import product

Bounds = tuple[float, float]


@dataclass(frozen=True)
class Block:
    """One functional block: a grammar terminal with its design variables."""

    role: str
    name: str
    variables: dict[str, Bounds] = field(default_factory=dict)
    defaults: dict[str, float] = field(default_factory=dict)

    def __post_init__(self) -> None:
        missing = set(self.variables) - set(self.defaults)
        if missing:
            raise ValueError(f"block {self.role}/{self.name} has variables "
                             f"without defaults: {sorted(missing)}")


def _registry(blocks: list[Block]) -> dict[str, Block]:
    return {b.name: b for b in blocks}


# Bounds follow the legacy candidate registry in
# :func:`repro.synthesis.topology.default_candidates` so generated and
# canned topologies compete over comparable spaces.
_W_IN: Bounds = (2e-6, 1000e-6)
_W_LOAD: Bounds = (2e-6, 500e-6)
_W_OUT: Bounds = (2e-6, 2000e-6)
_L: Bounds = (1e-6, 10e-6)
_L_OUT: Bounds = (1e-6, 5e-6)

PAIRS = _registry([
    Block("pair", "n", {"w_in": _W_IN, "l_in": _L},
          {"w_in": 40e-6, "l_in": 2e-6}),
    Block("pair", "p", {"w_in": _W_IN, "l_in": _L},
          {"w_in": 80e-6, "l_in": 2e-6}),
])

LOADS = _registry([
    Block("load", "mirror", {"w_load": _W_LOAD, "l_load": _L},
          {"w_load": 20e-6, "l_load": 2e-6}),
    Block("load", "cascode_mirror", {"w_load": _W_LOAD, "l_load": _L},
          {"w_load": 40e-6, "l_load": 2e-6}),
    # Both branch devices diode-connected: low gain (gm ratio), wide band.
    Block("load", "diode", {"w_load": _W_LOAD, "l_load": _L},
          {"w_load": 10e-6, "l_load": 2e-6}),
    Block("load", "resistor", {"r_load": (5e3, 1e6)}, {"r_load": 60e3}),
])

_I_BIAS: Bounds = (1e-6, 2e-3)

TAILS = _registry([
    Block("tail", "simple",
          {"w_tail": _W_LOAD, "l_tail": _L, "i_bias": _I_BIAS},
          {"w_tail": 30e-6, "l_tail": 2e-6, "i_bias": 20e-6}),
    Block("tail", "cascode",
          {"w_tail": _W_LOAD, "l_tail": _L, "i_bias": _I_BIAS},
          {"w_tail": 60e-6, "l_tail": 2e-6, "i_bias": 20e-6}),
    # Passive tail: the bias current is set by the input common mode
    # across ``r_tail`` (no mirror).  A class-A second stage still needs
    # a mirror reference; the generator adds ``i_bias`` back for it.
    Block("tail", "resistor", {"r_tail": (5e3, 2e6)}, {"r_tail": 30e3}),
])

# ``w_p2``/``w_n2`` always name the PMOS/NMOS output device; whether
# each acts as driver or mirrored sink depends on the input polarity
# (class A) or neither (class AB push-pull).
_STAGE2_VARS: dict[str, Bounds] = {
    "w_p2": _W_OUT, "l_p2": _L_OUT,
    "w_n2": (2e-6, 1000e-6), "l_n2": _L_OUT,
}
_STAGE2_DEFAULTS = {"w_p2": 120e-6, "l_p2": 1.5e-6,
                    "w_n2": 60e-6, "l_n2": 2e-6}

STAGE2S = _registry([
    Block("stage2", "none"),
    Block("stage2", "class_a", dict(_STAGE2_VARS), dict(_STAGE2_DEFAULTS)),
    Block("stage2", "class_ab", dict(_STAGE2_VARS), dict(_STAGE2_DEFAULTS)),
])

COMPS = _registry([
    Block("comp", "none"),
    Block("comp", "miller", {"c_comp": (0.2e-12, 20e-12)},
          {"c_comp": 3e-12}),
    Block("comp", "miller_rz",
          {"c_comp": (0.2e-12, 20e-12), "r_zero": (500.0, 50e3)},
          {"c_comp": 3e-12, "r_zero": 3e3}),
])

ROLES = ("pair", "load", "tail", "stage2", "comp")
REGISTRIES = {"pair": PAIRS, "load": LOADS, "tail": TAILS,
              "stage2": STAGE2S, "comp": COMPS}

# Shared fixed parameters of every generated structure.
FIXED = {"c_load": 2e-12, "vdd": 3.3}


def compatible(pair: str, load: str, tail: str,
               stage2: str, comp: str) -> bool:
    """Grammar restriction: compensation iff there is a second stage."""
    if stage2 == "none":
        return comp == "none"
    return comp in ("miller", "miller_rz")


def enumerate_choices() -> list[tuple[str, str, str, str, str]]:
    """All valid block combinations, in deterministic sorted order."""
    axes = [sorted(REGISTRIES[role]) for role in ROLES]
    return [combo for combo in product(*axes) if compatible(*combo)]
