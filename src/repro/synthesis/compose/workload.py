"""Serve-layer integration: the generated space as a `Workload`.

The sharded serving fleet's second heavyweight workload type: a request
names a generated structure and a sizing point, the fleet simulates it.
Points are dicts ``{"structure": <structure_id>, "sizes": {...}}`` so
one workload covers the *whole* generated space — the consistent-hash
router spreads structures over shards while the content-addressed cache
collapses repeated sizings fleet-wide.

:class:`GeneratedSpaceEvaluator` routes each point to a lazily-built
per-structure :class:`SimulationEvaluator`;
:class:`GeneratedSpaceBatcher` buckets cache misses by structure id so
same-structure requests run through the vectorized batch kernels.
"""

from __future__ import annotations

from repro.engine.cache import canonical_key
from repro.serve.broker import Workload
from repro.synthesis.compose.generator import (
    ComposedTopology,
    INPUT_BIAS,
    generate_topologies,
)
from repro.synthesis.simulation_based import (
    BatchEvaluator,
    SimulationEvaluator,
)


class GeneratedSpaceEvaluator:
    """Point → performance over the whole generated structure space."""

    def __init__(self, topologies: list[ComposedTopology] | None = None):
        if topologies is None:
            topologies = generate_topologies()
        self._by_id = {t.structure_id: t for t in topologies}
        self._evaluators: dict[str, SimulationEvaluator] = {}

    @property
    def structure_ids(self) -> list[str]:
        return sorted(self._by_id)

    def evaluator_for(self, structure_id: str) -> SimulationEvaluator:
        ev = self._evaluators.get(structure_id)
        if ev is None:
            topo = self._by_id.get(structure_id)
            if topo is None:
                raise KeyError(f"unknown structure {structure_id!r}")
            from repro.synthesis.compose.funnel import StructureBuilder
            ev = SimulationEvaluator(builder=StructureBuilder(topo),
                                     input_bias=INPUT_BIAS)
            self._evaluators[structure_id] = ev
        return ev

    def _split(self, point: dict) -> tuple[str, dict]:
        try:
            return point["structure"], point["sizes"]
        except (TypeError, KeyError):
            raise ValueError(
                "topogen points are {'structure': id, 'sizes': {...}} "
                f"dicts, got {point!r}") from None

    def __call__(self, point: dict) -> dict:
        structure_id, sizes = self._split(point)
        return self.evaluator_for(structure_id).simulate(sizes)

    def cache_key(self, point: dict) -> str:
        structure_id, sizes = self._split(point)
        try:
            ev = self.evaluator_for(structure_id)
        except KeyError:
            return canonical_key("topogen-unknown", point)
        return canonical_key("topogen", structure_id, ev.cache_key(sizes))


class GeneratedSpaceBatcher:
    """Same-structure batching over mixed-structure point streams."""

    min_batch: int = 2

    def __init__(self, evaluator: GeneratedSpaceEvaluator):
        self.evaluator = evaluator

    def group(self, points: list[dict]) -> list[list[int]]:
        groups: dict[str, list[int]] = {}
        for i, point in enumerate(points):
            try:
                structure_id, _ = self.evaluator._split(point)
                if structure_id not in self.evaluator._by_id:
                    raise KeyError(structure_id)
            except (ValueError, KeyError):
                structure_id = f"__invalid__:{i}"
            groups.setdefault(structure_id, []).append(i)
        return list(groups.values())

    def evaluate(self, points: list[dict]) -> list:
        structure_id, _ = self.evaluator._split(points[0])
        inner = BatchEvaluator(self.evaluator.evaluator_for(structure_id))
        return inner.evaluate([p["sizes"] for p in points])


def topogen_workload(topologies: list[ComposedTopology] | None = None,
                     name: str = "topogen",
                     batched: bool = True) -> Workload:
    """Build the generated-space serve workload (broker-registrable)."""
    evaluator = GeneratedSpaceEvaluator(topologies)
    batcher = GeneratedSpaceBatcher(evaluator) if batched else None
    return Workload(name=name, fn=evaluator,
                    key_fn=evaluator.cache_key, batcher=batcher)
