"""ASTRX/OBLX-style synthesis: compiled cost function + annealing search.

ASTRX compiles a synthesis problem (circuit template + specs) into an
executable cost function; OBLX minimizes it by simulated annealing.  Two
signature techniques of the tool are reproduced:

* **AWE small-signal evaluation** — instead of full AC sweeps, the
  linearized circuit is reduced to a pole/residue model (one LU + a few
  back-solves per evaluation), from which gain, bandwidth and unity-gain
  frequency are read;
* **dc-free biasing** — node voltages are *optimization variables*, not
  the solution of a per-evaluation Newton run.  Kirchhoff current-law
  residuals enter the cost as penalties ("solved by relaxation throughout
  the optimization run"), vanishing as the anneal converges.

After the search, the winning sizes are re-verified with the real
simulator (full Newton DC + AC sweep), so reported results are honest.
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from repro.analysis.ac import ac_analysis, bode_metrics, logspace_frequencies
from repro.analysis.dcop import (
    ConvergenceError,
    OperatingPoint,
    dc_operating_point,
)
from repro.analysis.mna import MnaSystem, SingularCircuitError
from repro.awe import PadeError, reduce_circuit
from repro.analysis.ac import small_signal_system
from repro.circuits.devices import Mosfet, VoltageSource
from repro.circuits.netlist import Circuit
from repro.core.specs import SpecSet
from repro.opt.anneal import AnnealSchedule, Annealer
from repro.synthesis.equation_based import DesignSpace, SizingResult

CircuitBuilder = Callable[[dict[str, float]], Circuit]


@dataclass
class _Candidate:
    """OBLX search state: sizes plus relaxed node voltages."""

    sizes: np.ndarray        # in design-space order
    voltages: np.ndarray     # free-node voltages

    def copy(self) -> "_Candidate":
        return _Candidate(self.sizes.copy(), self.voltages.copy())


@dataclass
class AstrxResult(SizingResult):
    kcl_residual: float = 0.0
    verified: bool = False


class AstrxProblem:
    """The compiled synthesis problem (the output of the 'ASTRX' step)."""

    def __init__(self, builder: CircuitBuilder, space: DesignSpace,
                 specs: SpecSet, output: str = "out",
                 input_bias: float = 1.5, supply: str = "vdd_src",
                 kcl_weight: float = 30.0):
        self.builder = builder
        self.space = space
        self.specs = specs
        self.output = output
        self.input_bias = input_bias
        self.supply = supply
        self.kcl_weight = kcl_weight
        self.cont = space.to_continuous()
        # Compile: build once at the space midpoint to freeze structure.
        mid = {n: math.sqrt(lo * hi) for n, (lo, hi) in
               space.variables.items()}
        template = self._testbench(mid)
        self.system = MnaSystem(template)
        self._classify_nodes(template)
        self.evaluations = 0

    # ------------------------------------------------------------------
    def _testbench(self, sizes: dict[str, float]) -> Circuit:
        circuit = self.builder(self.space.complete(sizes))
        circuit.vsource("tb_vip", "inp", "0", dc=self.input_bias, ac=1.0)
        circuit.vsource("tb_vin", "inn", "0", dc=self.input_bias)
        return circuit

    def _classify_nodes(self, circuit: Circuit) -> None:
        """Split nodes into source-driven (fixed) and free (relaxed)."""
        driven: dict[int, float] = {}
        for dev in circuit.devices:
            if isinstance(dev, VoltageSource):
                a, b = (self.system.node(n) for n in dev.nodes)
                if b == -1 and a >= 0:
                    driven[a] = dev.dc
                elif a == -1 and b >= 0:
                    driven[b] = -dev.dc
                else:
                    raise ValueError(
                        "dc-free formulation requires voltage sources "
                        f"referenced to ground; {dev.name} is floating")
        self.driven = driven
        n_nodes = len(self.system.node_names)
        self.free_nodes = [i for i in range(n_nodes) if i not in driven]
        self.vdd_value = max((v for v in driven.values()), default=3.3)

    # ------------------------------------------------------------------
    def assemble_x(self, candidate: _Candidate) -> np.ndarray:
        x = np.zeros(self.system.size)
        for node, value in self.driven.items():
            x[node] = value
        for k, node in enumerate(self.free_nodes):
            x[node] = candidate.voltages[k]
        return x

    def kcl_residual(self, system: MnaSystem, G: np.ndarray,
                     b: np.ndarray, x: np.ndarray) -> float:
        """Normalized KCL residual over the free (relaxed) nodes."""
        f = G @ x + system.nonlinear_currents(x) - b
        res = f[self.free_nodes]
        # Normalize by a representative current so the penalty is unitless.
        scale = max(np.max(np.abs(b)) if b.size else 0.0, 1e-6)
        return float(np.linalg.norm(res) / scale)

    def _pseudo_op(self, system: MnaSystem, x: np.ndarray) -> OperatingPoint:
        voltages = {n: float(x[i]) for n, i in system.node_index.items()}
        mos = {d.name: system.mos_op(d, x) for d in system.nonlinear
               if isinstance(d, Mosfet)}
        return OperatingPoint(voltages, {}, mos, 0, x=x)

    def evaluate(self, candidate: _Candidate) -> tuple[dict[str, float], float]:
        """Performance dict + KCL residual at a candidate point."""
        self.evaluations += 1
        sizes = self.cont.to_dict(candidate.sizes)
        try:
            circuit = self._testbench(sizes)
            system = MnaSystem(circuit)
            G, _, b, _ = system.linear_stamps()
            x = self.assemble_x(candidate)
            kcl = self.kcl_residual(system, G, b, x)
            op = self._pseudo_op(system, x)
            ss = small_signal_system(circuit, op)
            model = reduce_circuit(ss, self.output, order=3)
            gain = abs(model.dc_value())
            bw = abs(model.dominant_pole().real) / (2 * math.pi)
            gbw = gain * bw
            # Supply current: device currents into the supply node.
            f_full = G @ x + system.nonlinear_currents(x) - b
            supply_node = self._supply_node(circuit)
            i_dd = abs(f_full[supply_node]) if supply_node >= 0 else 0.0
            performance = {
                "gain": gain,
                "gain_db": 20 * math.log10(max(gain, 1e-12)),
                "gbw": gbw,
                "bandwidth": bw,
                "power": self.vdd_value * i_dd,
            }
            return performance, kcl
        except (SingularCircuitError, PadeError, ValueError, KeyError):
            return {}, 100.0

    def _supply_node(self, circuit: Circuit) -> int:
        dev = circuit.device(self.supply)
        return self.system.node(dev.nodes[0])

    def cost(self, candidate: _Candidate) -> float:
        performance, kcl = self.evaluate(candidate)
        return self.specs.cost(performance) + self.kcl_weight * kcl


class OblxOptimizer:
    """The annealing search over the compiled ASTRX problem."""

    def __init__(self, problem: AstrxProblem,
                 schedule: AnnealSchedule | None = None, seed: int = 1):
        self.problem = problem
        self.schedule = schedule or AnnealSchedule(
            moves_per_temperature=120, cooling=0.85, max_evaluations=12000)
        self.seed = seed

    def _propose(self, cand: _Candidate, rng: np.random.Generator,
                 frac: float) -> _Candidate:
        p = self.problem
        if rng.random() < 0.5:
            cand.sizes = p.cont.perturb(cand.sizes, rng, frac)
        else:
            k = rng.integers(len(cand.voltages))
            step = (0.02 + 0.4 * frac) * p.vdd_value
            cand.voltages[k] = float(np.clip(
                cand.voltages[k] + rng.normal(0.0, step),
                0.0, p.vdd_value))
        return cand

    def run(self) -> AstrxResult:
        p = self.problem
        p.evaluations = 0
        rng = np.random.default_rng(self.seed)
        start = _Candidate(
            sizes=p.cont.random_point(rng),
            voltages=np.full(len(p.free_nodes), p.vdd_value / 2.0),
        )
        annealer = Annealer(p.cost, self._propose, schedule=self.schedule,
                            copy_state=lambda c: c.copy(), seed=self.seed)
        t0 = time.perf_counter()
        result = annealer.run(start)
        runtime = time.perf_counter() - t0
        best = result.best_state
        sizes = p.space.complete(p.cont.to_dict(best.sizes))
        performance, kcl = p.evaluate(best)
        verified = self._verify(sizes, performance)
        return AstrxResult(
            sizes=sizes,
            performance=performance,
            cost=result.best_cost,
            feasible=p.specs.all_satisfied(performance),
            evaluations=p.evaluations,
            runtime_s=runtime,
            history=result.history,
            kcl_residual=kcl,
            verified=verified,
        )

    def _verify(self, sizes: dict[str, float],
                performance: dict[str, float]) -> bool:
        """Post-synthesis check with the real simulator (full Newton DC)."""
        p = self.problem
        try:
            circuit = p._testbench(
                {k: sizes[k] for k in p.space.variables})
            op = dc_operating_point(circuit)
            freqs = logspace_frequencies(1.0, 1e9, 4)
            metrics = bode_metrics(ac_analysis(circuit, freqs, op=op),
                                   p.output)
        except (ConvergenceError, SingularCircuitError, ValueError):
            return False
        performance["verified_gain"] = metrics.dc_gain
        performance["verified_gbw"] = metrics.unity_gain_freq
        performance["verified_power"] = op.power((p.supply,), circuit)
        return True
