"""Declarative OTA design model for DONALD-style exploration.

DONALD's promise: state the design equations *once*, unordered, then let
constraint propagation order them for whatever direction the designer (or
the AMGIE synthesis loop) wants to explore — sizes from specs, specs from
sizes, or anything in between.

This module captures the 5-transistor OTA as such a declarative model and
exposes convenience solvers for the two canonical directions.  It is the
engine the pulse-detector synthesis (Table 1) uses for its nested sizing
steps.
"""

from __future__ import annotations

import math

from repro.circuits.devices import NMOS_DEFAULT, PMOS_DEFAULT
from repro.opt.ordering import Equation, EvaluationPlan, order_equations

TWO_PI = 2.0 * math.pi


def ota_equations(nmos=NMOS_DEFAULT, pmos=PMOS_DEFAULT) -> list[Equation]:
    """The unordered design-equation set of the 5T OTA.

    Variables: ``i_tail, gm_in, w_over_l_in, vov_in, gain, gbw, slew_rate,
    power, c_load, vdd``.
    """
    return [
        Equation.make(
            "gm_def", {"gm_in", "w_over_l_in", "i_tail"},
            lambda v: v["gm_in"]
            - math.sqrt(max(2.0 * nmos.kp * v["w_over_l_in"]
                            * (v["i_tail"] / 2.0), 0.0))),
        Equation.make(
            "vov_def", {"vov_in", "w_over_l_in", "i_tail"},
            lambda v: v["vov_in"]
            - math.sqrt(max(2.0 * (v["i_tail"] / 2.0)
                            / (nmos.kp * v["w_over_l_in"]), 1e-30))),
        Equation.make(
            "gain_def", {"gain", "gm_in", "i_tail"},
            lambda v: v["gain"] - v["gm_in"]
            / ((nmos.lambda_ + pmos.lambda_) * (v["i_tail"] / 2.0))),
        Equation.make(
            "gbw_def", {"gbw", "gm_in", "c_load"},
            lambda v: v["gbw"] - v["gm_in"] / (TWO_PI * v["c_load"])),
        Equation.make(
            "slew_def", {"slew_rate", "i_tail", "c_load"},
            lambda v: v["slew_rate"] - v["i_tail"] / v["c_load"]),
        Equation.make(
            "power_def", {"power", "i_tail", "vdd"},
            lambda v: v["power"] - 2.0 * v["i_tail"] * v["vdd"]),
    ]


def plan_for(knowns: list[str]) -> EvaluationPlan:
    """Order the OTA model for a given set of known quantities."""
    return order_equations(ota_equations(), knowns)


def solve_sizes_from_specs(gbw: float, slew_rate: float, c_load: float,
                           vdd: float = 3.3) -> dict[str, float]:
    """Forward synthesis direction: specs → sizes and derived performance."""
    plan = plan_for(["gbw", "slew_rate", "c_load", "vdd"])
    guess = {"i_tail": 1e-5, "gm_in": 1e-4, "w_over_l_in": 10.0,
             "gain": 100.0, "vov_in": 0.2, "power": 1e-4}
    return plan.solve({"gbw": gbw, "slew_rate": slew_rate,
                       "c_load": c_load, "vdd": vdd}, guess=guess)


def solve_performance_from_sizes(w_over_l_in: float, i_tail: float,
                                 c_load: float,
                                 vdd: float = 3.3) -> dict[str, float]:
    """Analysis direction: sizes → performance, same declarative model."""
    plan = plan_for(["w_over_l_in", "i_tail", "c_load", "vdd"])
    guess = {"gm_in": 1e-4, "gain": 100.0, "gbw": 1e6,
             "slew_rate": 1e6, "vov_in": 0.2, "power": 1e-4}
    return plan.solve({"w_over_l_in": w_over_l_in, "i_tail": i_tail,
                       "c_load": c_load, "vdd": vdd}, guess=guess)
