"""Knowledge-based synthesis: IDAC/OASYS-style design plans.

A *design plan* is a hand-derived, pre-ordered procedure that maps
specifications directly to device sizes — no search.  Executing a plan is
microseconds (the tutorial: plans allow "fast performance space
explorations"), but each plan encodes topology-specific expertise that the
paper reports takes ~4× the effort of designing the circuit once.

This module provides the plan *infrastructure*: step sequencing with an
execution trace (the OASYS explanation facility), failure diagnosis when a
spec is unreachable, and hierarchical plan composition (OASYS's key
addition over IDAC: plans for higher-level cells invoke sub-plans).
Concrete plans live in :mod:`repro.synthesis.plan_library`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

Context = dict


class PlanError(RuntimeError):
    """Raised when a plan cannot meet its specifications.

    ``diagnosis`` names the step and quantity that failed — the hook OASYS
    used for backtracking and redesign at a higher hierarchy level.
    """

    def __init__(self, message: str, step: str | None = None):
        super().__init__(message)
        self.step = step


@dataclass
class PlanStep:
    """One plan action: compute values, check a constraint, or run a subplan."""

    name: str
    action: Callable[[Context], dict]
    description: str = ""

    def execute(self, ctx: Context) -> dict:
        try:
            return self.action(ctx) or {}
        except PlanError:
            raise
        except (ValueError, ZeroDivisionError, OverflowError, KeyError) as exc:
            raise PlanError(f"step {self.name!r} failed: {exc}",
                            step=self.name) from exc


@dataclass
class TraceEntry:
    step: str
    produced: dict
    description: str = ""


@dataclass
class PlanResult:
    """Plan output: sizes, predicted performance and the execution trace."""

    sizes: dict
    performance: dict
    trace: list[TraceEntry] = field(default_factory=list)

    def explain(self) -> str:
        lines = []
        for entry in self.trace:
            produced = ", ".join(
                f"{k}={_fmt(v)}" for k, v in entry.produced.items())
            text = f"  [{entry.step}] {produced}"
            if entry.description:
                text += f"   ({entry.description})"
            lines.append(text)
        return "\n".join(lines)


def _fmt(value) -> str:
    if isinstance(value, float):
        return f"{value:.4g}"
    return str(value)


class DesignPlan:
    """An ordered list of steps executed against a specification context.

    The context starts as a copy of the input specs; each step reads it and
    returns new key/value pairs merged back in.  Keys listed in
    ``size_keys`` form the sizing result; keys in ``performance_keys`` the
    predicted performance.
    """

    def __init__(self, name: str, size_keys: list[str],
                 performance_keys: list[str]):
        self.name = name
        self.size_keys = list(size_keys)
        self.performance_keys = list(performance_keys)
        self.steps: list[PlanStep] = []

    # -- construction ---------------------------------------------------
    def step(self, name: str, action: Callable[[Context], dict],
             description: str = "") -> "DesignPlan":
        self.steps.append(PlanStep(name, action, description))
        return self

    def compute(self, name: str, fn: Callable[[Context], float],
                description: str = "") -> "DesignPlan":
        """Add a step producing one named value."""
        return self.step(name, lambda ctx: {name: fn(ctx)}, description)

    def check(self, name: str, predicate: Callable[[Context], bool],
              message: str) -> "DesignPlan":
        """Add a feasibility check; failing it aborts with diagnosis."""

        def action(ctx: Context) -> dict:
            if not predicate(ctx):
                raise PlanError(f"{self.name}: {message}", step=name)
            return {}

        return self.step(name, action, f"check: {message}")

    def subplan(self, name: str, plan: "DesignPlan",
                spec_map: Callable[[Context], dict],
                result_prefix: str = "") -> "DesignPlan":
        """Invoke another plan with specs derived from the current context.

        This is OASYS-style hierarchy: the sub-plan's sizes come back
        prefixed so several instances can coexist in one context.
        """

        def action(ctx: Context) -> dict:
            sub_result = plan.execute(spec_map(ctx))
            merged = {}
            for k, v in {**sub_result.sizes, **sub_result.performance}.items():
                merged[result_prefix + k] = v
            return merged

        return self.step(name, action, f"subplan {plan.name}")

    # -- execution --------------------------------------------------------
    def execute(self, specs: dict) -> PlanResult:
        ctx: Context = dict(specs)
        trace: list[TraceEntry] = []
        for step in self.steps:
            produced = step.execute(ctx)
            overlap = set(produced) & set(ctx)
            stale = {k for k in overlap if ctx[k] != produced[k]
                     and k not in specs}
            if stale:
                raise PlanError(
                    f"step {step.name!r} rewrites already-computed values "
                    f"{sorted(stale)}; plans must be feed-forward",
                    step=step.name)
            ctx.update(produced)
            trace.append(TraceEntry(step.name, produced, step.description))
        missing = [k for k in self.size_keys + self.performance_keys
                   if k not in ctx]
        if missing:
            raise PlanError(
                f"plan {self.name!r} finished without producing {missing}")
        sizes = {k: ctx[k] for k in self.size_keys}
        performance = {k: ctx[k] for k in self.performance_keys}
        return PlanResult(sizes, performance, trace)


class PlanLibrary:
    """Named plan registry — one entry per supported topology."""

    def __init__(self) -> None:
        self._plans: dict[str, DesignPlan] = {}

    def register(self, plan: DesignPlan) -> DesignPlan:
        if plan.name in self._plans:
            raise ValueError(f"duplicate plan {plan.name!r}")
        self._plans[plan.name] = plan
        return plan

    def get(self, name: str) -> DesignPlan:
        if name not in self._plans:
            raise KeyError(
                f"no plan for topology {name!r}; available: "
                f"{sorted(self._plans)}")
        return self._plans[name]

    def names(self) -> list[str]:
        return sorted(self._plans)

    def __contains__(self, name: str) -> bool:
        return name in self._plans
