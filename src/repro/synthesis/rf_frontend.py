"""High-level RF receiver front-end optimization [Crols et al., ICCAD'95].

The paper's example of simulation-based optimization applied *above* the
circuit level: a receiver chain (LNA → mixer → filter → VGA/ADC) is
described with behavioural models (gain, noise figure, IIP3, power
estimators per block); a dedicated evaluator computes the ratio of wanted
signal to all unwanted contributions (noise + distortion) in the band of
interest; and an optimization loop distributes gain/noise/linearity specs
over the blocks for minimum total power.

The cascade mathematics are the standard Friis (noise) and IIP3 (third-
order intercept) formulas; the power estimators embody the usual analog
trade-offs (power grows with dynamic range demanded of a block).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.core.specs import Spec, SpecSet
from repro.opt.anneal import AnnealSchedule
from repro.synthesis.equation_based import (
    DesignSpace,
    EquationBasedSizer,
    SizingResult,
)


@dataclass(frozen=True)
class BlockSpec:
    """Behavioural description of one receiver block."""

    name: str
    gain_db: float       # voltage gain
    nf_db: float         # noise figure
    iip3_dbm: float      # input-referred third-order intercept

    @property
    def gain_lin(self) -> float:
        return 10.0 ** (self.gain_db / 10.0)  # power gain

    @property
    def noise_factor(self) -> float:
        return 10.0 ** (self.nf_db / 10.0)

    @property
    def iip3_mw(self) -> float:
        return 10.0 ** (self.iip3_dbm / 10.0)


def cascade_noise_figure(blocks: list[BlockSpec]) -> float:
    """Friis formula; returns the cascade noise figure in dB."""
    f_total = 0.0
    gain_product = 1.0
    for i, blk in enumerate(blocks):
        if i == 0:
            f_total = blk.noise_factor
        else:
            f_total += (blk.noise_factor - 1.0) / gain_product
        gain_product *= blk.gain_lin
    return 10.0 * math.log10(f_total)


def cascade_iip3_dbm(blocks: list[BlockSpec]) -> float:
    """Cascade IIP3 (dBm), coherent worst-case combination."""
    inv = 0.0
    gain_product = 1.0
    for blk in blocks:
        inv += gain_product / blk.iip3_mw
        gain_product *= blk.gain_lin
    return 10.0 * math.log10(1.0 / inv)


def cascade_gain_db(blocks: list[BlockSpec]) -> float:
    return sum(b.gain_db for b in blocks)


# Power estimators: each block's power grows with its gain and with the
# dynamic range (low NF, high IIP3) demanded of it.  Constants are chosen
# to land in the tens-of-mW regime of mid-90s receivers.
_BLOCK_POWER_BASE = {"lna": 2e-3, "mixer": 3e-3, "filter": 1.5e-3,
                     "vga": 1e-3}


def block_power(kind: str, gain_db: float, nf_db: float,
                iip3_dbm: float) -> float:
    base = _BLOCK_POWER_BASE[kind]
    # Lower NF is exponentially expensive; so is higher IIP3 and gain.
    noise_cost = 10.0 ** ((3.0 - nf_db) / 10.0)
    lin_cost = 10.0 ** ((iip3_dbm + 10.0) / 15.0)
    gain_cost = 1.0 + max(gain_db, 0.0) / 15.0
    return base * (0.3 + noise_cost) * lin_cost * gain_cost


def receiver_performance(params: dict[str, float]) -> dict[str, float]:
    """Front-end performance from per-block behavioural parameters.

    ``params`` carries ``<block>_gain/<block>_nf/<block>_iip3`` for blocks
    lna, mixer, vga (the filter is passive/fixed).  Metrics: cascade
    ``gain_db``, ``nf_db``, ``iip3_dbm``, ``sndr_db`` (signal to noise+
    distortion for the standard test signal) and total ``power``.
    """
    blocks = [
        BlockSpec("lna", params["lna_gain"], params["lna_nf"],
                  params["lna_iip3"]),
        BlockSpec("mixer", params["mixer_gain"], params["mixer_nf"],
                  params["mixer_iip3"]),
        BlockSpec("filter", -2.0, 2.0, 40.0),   # passive filter, fixed
        BlockSpec("vga", params["vga_gain"], params["vga_nf"],
                  params["vga_iip3"]),
    ]
    gain = cascade_gain_db(blocks)
    nf = cascade_noise_figure(blocks)
    iip3 = cascade_iip3_dbm(blocks)
    # Standard scenario: -70 dBm wanted signal, -40 dBm adjacent blockers,
    # 200 kHz noise bandwidth at 290 K (-174 dBm/Hz thermal floor).
    p_signal = -70.0
    p_blocker = -40.0
    noise_floor = -174.0 + 10.0 * math.log10(200e3) + nf
    # Third-order intermodulation of the two blockers lands in-band.
    p_im3 = 3.0 * p_blocker - 2.0 * iip3
    snr = p_signal - noise_floor
    sdr = p_signal - p_im3
    sndr = -10.0 * math.log10(10 ** (-snr / 10.0) + 10 ** (-sdr / 10.0))
    power = (block_power("lna", params["lna_gain"], params["lna_nf"],
                         params["lna_iip3"])
             + block_power("mixer", params["mixer_gain"],
                           params["mixer_nf"], params["mixer_iip3"])
             + block_power("filter", 0.0, 3.0, 10.0)
             + block_power("vga", params["vga_gain"], params["vga_nf"],
                           params["vga_iip3"]))
    return {
        "gain_db": gain,
        "nf_db": nf,
        "iip3_dbm": iip3,
        "sndr_db": sndr,
        "power": power,
    }


def receiver_specs(sndr_min_db: float = 12.0,
                   gain_min_db: float = 70.0) -> SpecSet:
    """Signal-quality specs for the given application (e.g. GSM-like)."""
    return SpecSet([
        Spec.at_least("sndr_db", sndr_min_db),
        Spec.at_least("gain_db", gain_min_db),
        Spec.minimize("power", good=30e-3),
    ])


def receiver_space() -> DesignSpace:
    return DesignSpace(variables={
        "lna_gain": (5.0, 25.0), "lna_nf": (1.0, 8.0),
        "lna_iip3": (-15.0, 10.0),
        "mixer_gain": (0.0, 20.0), "mixer_nf": (4.0, 18.0),
        "mixer_iip3": (-10.0, 15.0),
        "vga_gain": (10.0, 60.0), "vga_nf": (8.0, 30.0),
        "vga_iip3": (-5.0, 20.0),
    }, log_scale=False)


def optimize_receiver(sndr_min_db: float = 12.0,
                      gain_min_db: float = 70.0,
                      seed: int = 1) -> SizingResult:
    """Distribute block specs for minimum front-end power (the [29] loop)."""
    sizer = EquationBasedSizer(
        receiver_performance, receiver_space(),
        receiver_specs(sndr_min_db, gain_min_db),
        schedule=AnnealSchedule(moves_per_temperature=200, cooling=0.9,
                                max_evaluations=30000),
        seed=seed)
    return sizer.run()
