"""WREN-style SNR constraints and the chip→segment constraint mapper.

"WREN introduced the notion of SNR-style (signal-to-noise ratio)
constraints for incompatible signals ... WREN incorporates a constraint
mapper that transforms input noise rejection constraints from the
across-the-whole-chip form used by the global router into the per-channel
per-segment form necessary for the channel router" (§3.2, [56]).

The model: a sensitive net with an ``snr_limit_db`` may accumulate at
most ``C_budget`` of coupling capacitance to noisy aggressors across its
whole route.  The mapper splits this budget over the segments (tiles or
channels) the global route traverses, proportionally to segment length —
so the detailed router of every region gets a local, checkable bound.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.msystem.blocks import SignalNet

# Electrical assumptions for converting SNR to a coupling-cap budget:
# aggressor swing, victim signal level, and the victim's total ground
# capacitance scale.
AGGRESSOR_SWING_V = 3.3
VICTIM_SIGNAL_V = 0.3


@dataclass
class SnrBudget:
    """Total coupling-capacitance budget of one sensitive net."""

    net: str
    snr_limit_db: float
    coupling_budget: float   # F

    @staticmethod
    def for_net(net: SignalNet, net_ground_cap: float) -> "SnrBudget":
        if net.snr_limit_db is None:
            raise ValueError(f"net {net.name!r} has no SNR limit")
        # Coupled noise ≈ Cc/Cg·Vswing must stay snr below the signal:
        # Cc ≤ Cg·(Vsig/Vswing)·10^(−SNR/20).
        ratio = (VICTIM_SIGNAL_V / AGGRESSOR_SWING_V
                 * 10.0 ** (-net.snr_limit_db / 20.0))
        return SnrBudget(net.name, net.snr_limit_db,
                         net_ground_cap * ratio)


@dataclass
class SegmentBudget:
    segment: str
    length_nm: int
    coupling_bound: float


def map_budget_to_segments(budget: SnrBudget,
                           segments: list[tuple[str, int]],
                           reserve: float = 0.1) -> list[SegmentBudget]:
    """Distribute a net's coupling budget over its route segments.

    ``segments`` is ``[(segment_id, length_nm)]`` from the global route;
    ``reserve`` holds back a fraction for the unmodelled regions (pins,
    vias).  Allocation is proportional to length — the per-channel
    per-segment form of [56].
    """
    total_len = sum(length for _, length in segments)
    if total_len <= 0:
        raise ValueError("route has zero length")
    usable = budget.coupling_budget * (1.0 - reserve)
    return [
        SegmentBudget(seg_id, length, usable * length / total_len)
        for seg_id, length in segments
    ]


def achieved_snr_db(coupled_cap: float, ground_cap: float) -> float:
    """SNR implied by an extracted coupling capacitance."""
    import math
    if coupled_cap <= 0:
        return float("inf")
    noise_v = coupled_cap / ground_cap * AGGRESSOR_SWING_V
    if noise_v <= 0:
        return float("inf")
    return 20.0 * math.log10(VICTIM_SIGNAL_V / noise_v)


def verify_segment_budgets(budgets: list[SegmentBudget],
                           measured: dict[str, float]) -> dict[str, bool]:
    """Audit per-segment extracted coupling against the mapped bounds."""
    return {
        b.segment: measured.get(b.segment, 0.0) <= b.coupling_bound
        for b in budgets
    }
