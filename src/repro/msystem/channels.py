"""Channel definition: from floorplan + global routes to channel problems.

The missing middle of the §3.2 flow: WREN's global router decides *which
region* each net crosses; the channel router of [53, 54, 55] needs
concrete per-channel problems (pin columns on two edges, net classes).
This module extracts the channels — the free corridors between facing
block edges — assigns each global route's crossings to them, and builds
the :class:`~repro.msystem.channel_router.ChannelNet` instances, so one
call details an entire chip's channels with shields and segregation.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.layout.geometry import Rect
from repro.msystem.blocks import SignalNet
from repro.msystem.channel_router import (
    ChannelNet,
    ChannelResult,
    ChannelRoutingError,
    route_channel,
)
from repro.msystem.floorplan import FloorplanResult
from repro.msystem.global_router import GlobalRoutingResult


@dataclass
class Channel:
    """One routing corridor between two facing block edges."""

    name: str
    rect: Rect
    horizontal: bool         # True: corridor runs left-right
    block_a: str             # block below/left
    block_b: str             # block above/right

    @property
    def length(self) -> int:
        return self.rect.width if self.horizontal else self.rect.height

    @property
    def span(self) -> tuple[int, int]:
        if self.horizontal:
            return (self.rect.x1, self.rect.x2)
        return (self.rect.y1, self.rect.y2)


def define_channels(floorplan: FloorplanResult,
                    min_width: int = 10_000,
                    max_width: int = 1_000_000) -> list[Channel]:
    """Find corridors between facing block edges.

    For every ordered pair of blocks whose projections overlap and whose
    gap is within [min_width, max_width], the overlap region between the
    facing edges becomes a channel.  Corridors wider than ``max_width``
    are open field, not channels.
    """
    channels: list[Channel] = []
    placed = list(floorplan.placed.values())

    def free_of_blocks(rect: Rect, a_name: str, b_name: str) -> bool:
        """A corridor is only a channel if no third block occupies it."""
        for other in placed:
            if other.block.name in (a_name, b_name):
                continue
            if rect.intersection(other.rect()) is not None:
                return False
        return True

    for i, a in enumerate(placed):
        for b in placed[i + 1:]:
            ra, rb = a.rect(), b.rect()
            # Horizontal channel: a below b (or vice versa).
            x_overlap = min(ra.x2, rb.x2) - max(ra.x1, rb.x1)
            if x_overlap > 0:
                low, high = (ra, rb) if ra.y2 <= rb.y1 else (rb, ra)
                gap = high.y1 - low.y2
                if 0 < gap <= max_width and gap >= min_width:
                    rect = Rect(max(ra.x1, rb.x1), low.y2,
                                min(ra.x2, rb.x2), high.y1)
                    lo_name = a.block.name if low is ra else b.block.name
                    hi_name = b.block.name if low is ra else a.block.name
                    if free_of_blocks(rect, lo_name, hi_name):
                        channels.append(Channel(
                            f"ch_h_{lo_name}_{hi_name}", rect, True,
                            lo_name, hi_name))
            # Vertical channel: a left of b (or vice versa).
            y_overlap = min(ra.y2, rb.y2) - max(ra.y1, rb.y1)
            if y_overlap > 0:
                left, right = (ra, rb) if ra.x2 <= rb.x1 else (rb, ra)
                gap = right.x1 - left.x2
                if 0 < gap <= max_width and gap >= min_width:
                    rect = Rect(left.x2, max(ra.y1, rb.y1),
                                right.x1, min(ra.y2, rb.y2))
                    l_name = a.block.name if left is ra else b.block.name
                    r_name = b.block.name if left is ra else a.block.name
                    if free_of_blocks(rect, l_name, r_name):
                        channels.append(Channel(
                            f"ch_v_{l_name}_{r_name}", rect, False,
                            l_name, r_name))
    return channels


@dataclass
class ChannelProblem:
    """One channel plus the nets crossing it (ready for detailed routing)."""

    channel: Channel
    nets: list[ChannelNet] = field(default_factory=list)


def assign_nets_to_channels(channels: list[Channel],
                            routing: GlobalRoutingResult,
                            nets: list[SignalNet],
                            tile_nm: int | None = None,
                            column_pitch: int = 20_000,
                            ) -> list[ChannelProblem]:
    """Build per-channel routing problems from the global routes.

    A net belongs to a channel when any of its global-route tiles falls
    inside the channel rectangle.  The crossing position along the
    channel becomes the pin column; entry direction (which half of the
    corridor the adjacent tiles occupy) decides top vs. bottom pin.  The
    approximation is crude — exactly the hand-off fidelity a 1990s
    global/detailed split had — but it preserves what matters: which
    incompatible nets share which channel.
    """
    tile_nm = tile_nm if tile_nm is not None else routing.tile_nm
    by_name = {n.name: n for n in nets}
    problems = {ch.name: ChannelProblem(ch) for ch in channels}
    for net_name, route in routing.routes.items():
        net = by_name.get(net_name)
        net_class = net.net_class if net is not None else "neutral"
        for ch in channels:
            cols_top: list[int] = []
            cols_bottom: list[int] = []
            for k, (ix, iy) in enumerate(route.tiles):
                x = ix * tile_nm + tile_nm // 2
                y = iy * tile_nm + tile_nm // 2
                if not ch.rect.contains_point(x, y):
                    continue
                along = (x - ch.rect.x1 if ch.horizontal
                         else y - ch.rect.y1)
                column = max(0, along // column_pitch)
                across_mid = (ch.rect.y1 + ch.rect.y2) // 2 \
                    if ch.horizontal else (ch.rect.x1 + ch.rect.x2) // 2
                across = y if ch.horizontal else x
                if across >= across_mid:
                    cols_top.append(int(column))
                else:
                    cols_bottom.append(int(column))
            if cols_top or cols_bottom:
                # A channel crossing needs pins on both edges; a net that
                # only grazes one side enters and leaves there.
                if not cols_top:
                    cols_top = [cols_bottom[-1]]
                if not cols_bottom:
                    cols_bottom = [cols_top[-1]]
                problems[ch.name].nets.append(ChannelNet(
                    net_name, sorted(set(cols_top)),
                    sorted(set(cols_bottom)), net_class=net_class))
    return [p for p in problems.values() if p.nets]


@dataclass
class DetailedChannelReport:
    results: dict[str, ChannelResult]
    unroutable: list[str]

    @property
    def total_tracks(self) -> int:
        return sum(r.height for r in self.results.values())

    @property
    def total_shields(self) -> int:
        return sum(r.shields for r in self.results.values())


def route_all_channels(problems: list[ChannelProblem],
                       insert_shields: bool = True,
                       segregate: bool = False) -> DetailedChannelReport:
    """Run the constraint-based channel router on every channel problem."""
    results: dict[str, ChannelResult] = {}
    unroutable: list[str] = []
    for problem in problems:
        try:
            results[problem.channel.name] = route_channel(
                problem.nets, insert_shields=insert_shields,
                segregate=segregate)
        except ChannelRoutingError:
            unroutable.append(problem.channel.name)
    return DetailedChannelReport(results, unroutable)
