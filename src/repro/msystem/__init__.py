"""Mixed-signal system assembly: floorplanning, routing, power (§3.2)."""

from repro.msystem.blocks import (
    Block,
    BlockKind,
    PlacedBlock,
    SignalNet,
    demo_mixed_signal_system,
)
from repro.msystem.channels import (
    Channel,
    ChannelProblem,
    DetailedChannelReport,
    assign_nets_to_channels,
    define_channels,
    route_all_channels,
)
from repro.msystem.channel_router import (
    ChannelNet,
    ChannelResult,
    ChannelRoutingError,
    TrackAssignment,
    channel_density,
    route_channel,
)
from repro.msystem.floorplan import (
    FloorplanResult,
    FloorplanState,
    WrightFloorplanner,
    evaluate_polish,
)
from repro.msystem.global_router import (
    GlobalRoute,
    GlobalRoutingError,
    GlobalRoutingResult,
    WrenGlobalRouter,
)
from repro.msystem.noise_constraints import (
    SegmentBudget,
    SnrBudget,
    achieved_snr_db,
    map_budget_to_segments,
    verify_segment_budgets,
)
from repro.msystem.powergrid import (
    GridSegment,
    GridWidthError,
    PowerGrid,
    RailResult,
    RailSpec,
    build_grid,
    synthesize_rail,
    uniform_grid_result,
)
from repro.msystem.substrate import (
    SubstrateMesh,
    coupling_kernel,
    floorplan_noise,
)

__all__ = [
    "Block",
    "BlockKind",
    "Channel",
    "ChannelNet",
    "ChannelProblem",
    "DetailedChannelReport",
    "assign_nets_to_channels",
    "define_channels",
    "route_all_channels",
    "ChannelResult",
    "ChannelRoutingError",
    "FloorplanResult",
    "FloorplanState",
    "GlobalRoute",
    "GlobalRoutingError",
    "GlobalRoutingResult",
    "GridSegment",
    "GridWidthError",
    "PlacedBlock",
    "PowerGrid",
    "RailResult",
    "RailSpec",
    "SegmentBudget",
    "SignalNet",
    "SnrBudget",
    "SubstrateMesh",
    "TrackAssignment",
    "WrenGlobalRouter",
    "WrightFloorplanner",
    "achieved_snr_db",
    "build_grid",
    "channel_density",
    "coupling_kernel",
    "demo_mixed_signal_system",
    "evaluate_polish",
    "floorplan_noise",
    "map_budget_to_segments",
    "route_channel",
    "synthesize_rail",
    "uniform_grid_result",
    "verify_segment_budgets",
]
