"""Mixed-signal system description: functional blocks and signal nets.

"A mixed-signal system is a set of custom analog and digital functional
blocks" (§3.2).  Blocks carry the attributes the assembly tools need:
footprint, pin positions, whether they inject switching noise into the
substrate (digital) or are sensitive to it (analog), and their supply
current profile for power-grid design.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro.layout.geometry import Rect


class BlockKind(enum.Enum):
    ANALOG = "analog"
    DIGITAL = "digital"


@dataclass
class Block:
    """One functional block of the mixed-signal system."""

    name: str
    width: int                    # nm
    height: int                   # nm
    kind: BlockKind
    # Substrate interaction (per WRIGHT): digital blocks inject, analog
    # blocks are sensitive; magnitudes are relative weights.
    noise_injection: float = 0.0
    noise_sensitivity: float = 0.0
    # Supply profile (per RAIL): average and peak switching current.
    supply_avg: float = 1e-3      # A
    supply_peak: float = 5e-3     # A
    pins: dict[str, tuple[int, int]] = field(default_factory=dict)

    @property
    def area(self) -> int:
        return self.width * self.height

    def rotated(self) -> "Block":
        out = Block(self.name, self.height, self.width, self.kind,
                    self.noise_injection, self.noise_sensitivity,
                    self.supply_avg, self.supply_peak,
                    {k: (y, x) for k, (x, y) in self.pins.items()})
        return out


@dataclass
class SignalNet:
    """A chip-level net connecting block pins.

    ``net_class`` mirrors the cell-level router classes; ``snr_limit_db``
    is the WREN-style noise rejection requirement for sensitive nets.
    """

    name: str
    terminals: list[tuple[str, str]]   # (block, pin)
    net_class: str = "neutral"         # "noisy" | "sensitive" | "neutral"
    snr_limit_db: float | None = None


@dataclass
class PlacedBlock:
    block: Block
    x: int
    y: int
    rotated: bool = False

    @property
    def width(self) -> int:
        return self.block.height if self.rotated else self.block.width

    @property
    def height(self) -> int:
        return self.block.width if self.rotated else self.block.height

    def rect(self) -> Rect:
        return Rect(self.x, self.y, self.x + self.width,
                    self.y + self.height)

    def pin_position(self, pin: str) -> tuple[int, int]:
        px, py = self.block.pins.get(pin, (self.block.width // 2,
                                           self.block.height // 2))
        if self.rotated:
            px, py = py, px
        return self.x + min(px, self.width), self.y + min(py, self.height)

    @property
    def center(self) -> tuple[int, int]:
        return self.rect().center


def demo_mixed_signal_system() -> tuple[list[Block], list[SignalNet]]:
    """A synthetic data-channel-like chip: DSP + clocking next to a
    sensitive analog front-end — the Fig. 3 / claim-C6 workload."""
    mm = 1_000_000  # nm
    blocks = [
        Block("dsp_core", int(2.0 * mm), int(1.6 * mm), BlockKind.DIGITAL,
              noise_injection=10.0, supply_avg=40e-3, supply_peak=400e-3),
        Block("clockgen", int(0.6 * mm), int(0.5 * mm), BlockKind.DIGITAL,
              noise_injection=6.0, supply_avg=8e-3, supply_peak=120e-3),
        Block("digital_filter", int(1.2 * mm), int(1.0 * mm),
              BlockKind.DIGITAL, noise_injection=4.0, supply_avg=15e-3,
              supply_peak=150e-3),
        Block("adc", int(1.0 * mm), int(0.9 * mm), BlockKind.ANALOG,
              noise_sensitivity=6.0, supply_avg=12e-3, supply_peak=30e-3),
        Block("vga_afe", int(0.9 * mm), int(0.8 * mm), BlockKind.ANALOG,
              noise_sensitivity=10.0, supply_avg=10e-3, supply_peak=20e-3),
        Block("pll", int(0.7 * mm), int(0.6 * mm), BlockKind.ANALOG,
              noise_sensitivity=8.0, noise_injection=1.0,
              supply_avg=6e-3, supply_peak=15e-3),
        Block("bias_ref", int(0.4 * mm), int(0.4 * mm), BlockKind.ANALOG,
              noise_sensitivity=4.0, supply_avg=1e-3, supply_peak=2e-3),
    ]
    nets = [
        SignalNet("adc_out", [("adc", "dout"), ("dsp_core", "din")],
                  net_class="noisy"),
        SignalNet("afe_to_adc", [("vga_afe", "out"), ("adc", "ain")],
                  net_class="sensitive", snr_limit_db=60.0),
        SignalNet("clk_dsp", [("clockgen", "clk"), ("dsp_core", "clk")],
                  net_class="noisy"),
        SignalNet("clk_adc", [("pll", "clk"), ("adc", "clk")],
                  net_class="noisy"),
        SignalNet("ref_afe", [("bias_ref", "ref"), ("vga_afe", "ref")],
                  net_class="sensitive", snr_limit_db=66.0),
        SignalNet("ref_adc", [("bias_ref", "ref2"), ("adc", "ref")],
                  net_class="sensitive", snr_limit_db=60.0),
        SignalNet("dsp_filt", [("dsp_core", "fout"),
                               ("digital_filter", "fin")],
                  net_class="noisy"),
        SignalNet("pll_fb", [("pll", "fb"), ("clockgen", "fbin")],
                  net_class="neutral"),
    ]
    return blocks, nets
