"""Substrate noise coupling models.

"Substrate coupling is an increasingly difficult problem as more and
faster digital logic is placed side-by-side with sensitive analog parts"
(§3.2, [58, 59]).  Two evaluators:

* :func:`coupling_kernel` — the fast closed-form estimator WRIGHT's
  floorplanner calls inside its annealing loop ("a fast substrate noise
  coupling evaluator so that a simplified view of substrate noise
  influences the floorplan"): coupling decays with separation over a
  characteristic substrate length;
* :class:`SubstrateMesh` — a resistive-mesh Laplace solve (sparse) used
  for detailed verification of a finished floorplan, the reference the
  fast kernel is validated against.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np
import scipy.sparse as sp
import scipy.sparse.linalg as spla

from repro.msystem.blocks import PlacedBlock

# Characteristic decay length of lateral substrate coupling (nm): for an
# epi-type substrate a few hundred µm.
DECAY_LENGTH_NM = 400_000.0


def coupling_kernel(distance_nm: float,
                    decay_nm: float = DECAY_LENGTH_NM) -> float:
    """Relative substrate coupling vs. separation (1 at contact)."""
    if distance_nm <= 0:
        return 1.0
    return math.exp(-distance_nm / decay_nm)


def floorplan_noise(placed: list[PlacedBlock],
                    decay_nm: float = DECAY_LENGTH_NM) -> float:
    """WRIGHT's scalar substrate-noise figure of a candidate floorplan.

    Sum over (injector, victim) pairs of injection · sensitivity ·
    kernel(separation).  Lower is better.
    """
    injectors = [p for p in placed if p.block.noise_injection > 0]
    victims = [p for p in placed if p.block.noise_sensitivity > 0]
    total = 0.0
    for src in injectors:
        for dst in victims:
            if src.block.name == dst.block.name:
                continue
            d = src.rect().distance_to(dst.rect())
            total += (src.block.noise_injection
                      * dst.block.noise_sensitivity
                      * coupling_kernel(d, decay_nm))
    return total


@dataclass
class SubstrateMesh:
    """Uniform resistive mesh over the chip area (detailed evaluator)."""

    width_nm: int
    height_nm: int
    nx: int = 40
    ny: int = 40
    sheet_res: float = 500.0        # Ohm/sq of the bulk sheet
    backplane_res: float = 2e4      # Ohm from each node to the backplane

    def __post_init__(self):
        self.dx = self.width_nm / self.nx
        self.dy = self.height_nm / self.ny
        self._factor = None

    def _node(self, ix: int, iy: int) -> int:
        return iy * self.nx + ix

    def _system(self):
        if self._factor is not None:
            return self._factor
        n = self.nx * self.ny
        g_h = self.sheet_res * (self.dx / self.dy)
        g_v = self.sheet_res * (self.dy / self.dx)
        rows, cols, vals = [], [], []
        diag = np.full(n, 1.0 / self.backplane_res)

        def add(i, j, g):
            rows.append(i)
            cols.append(j)
            vals.append(-g)
            diag[i] += g

        for iy in range(self.ny):
            for ix in range(self.nx):
                i = self._node(ix, iy)
                if ix + 1 < self.nx:
                    j = self._node(ix + 1, iy)
                    g = 1.0 / max(g_v, 1e-9)
                    add(i, j, g)
                    add(j, i, g)
                if iy + 1 < self.ny:
                    j = self._node(ix, iy + 1)
                    g = 1.0 / max(g_h, 1e-9)
                    add(i, j, g)
                    add(j, i, g)
        rows.extend(range(n))
        cols.extend(range(n))
        vals.extend(diag)
        G = sp.csc_matrix((vals, (rows, cols)), shape=(n, n))
        self._factor = spla.factorized(G)
        return self._factor

    def node_of(self, x_nm: float, y_nm: float) -> int:
        ix = min(max(int(x_nm / self.dx), 0), self.nx - 1)
        iy = min(max(int(y_nm / self.dy), 0), self.ny - 1)
        return self._node(ix, iy)

    def transfer(self, src_xy: tuple[float, float],
                 dst_xy: tuple[float, float]) -> float:
        """Substrate voltage at dst per ampere injected at src."""
        solve = self._system()
        b = np.zeros(self.nx * self.ny)
        b[self.node_of(*src_xy)] = 1.0
        v = solve(b)
        return float(v[self.node_of(*dst_xy)])

    def coupling_matrix(self, placed: list[PlacedBlock]) -> np.ndarray:
        """Pairwise substrate transfer (V/A) between block centers."""
        n = len(placed)
        out = np.zeros((n, n))
        solve = self._system()
        for i, src in enumerate(placed):
            b = np.zeros(self.nx * self.ny)
            b[self.node_of(*src.center)] = 1.0
            v = solve(b)
            for j, dst in enumerate(placed):
                out[i, j] = float(v[self.node_of(*dst.center)])
        return out

    def floorplan_noise(self, placed: list[PlacedBlock]) -> float:
        """Detailed counterpart of :func:`floorplan_noise`."""
        transfer = self.coupling_matrix(placed)
        total = 0.0
        for i, src in enumerate(placed):
            if src.block.noise_injection <= 0:
                continue
            for j, dst in enumerate(placed):
                if i == j or dst.block.noise_sensitivity <= 0:
                    continue
                total += (src.block.noise_injection
                          * dst.block.noise_sensitivity * transfer[i, j])
        return total
