"""Constraint-based analog channel routing [53, 54, 55].

A classic two-row channel router extended with the analog features the
tutorial describes:

* **variable wire widths and separations** — "a well-known digital
  channel routing algorithm could be easily extended to handle critical
  analog problems that involve varying wire widths and wire separations
  needed to isolate interacting signals" [54];
* **shield insertion** — grounded tracks placed between incompatible
  signals sharing adjacent tracks [55];
* **segregated channels** [53] — noisy and sensitive nets are assigned to
  disjoint track regions with a guard band between them.

The core algorithm is the constrained left-edge algorithm: horizontal
intervals per net, vertical constraint graph (VCG) from column pin
ordering, greedy track filling in VCG-topological order.
"""

from __future__ import annotations

from dataclasses import dataclass, field

NOISY = "noisy"
SENSITIVE = "sensitive"
NEUTRAL = "neutral"


@dataclass
class ChannelNet:
    """One net crossing the channel: pins on top/bottom edges by column."""

    name: str
    top_pins: list[int]
    bottom_pins: list[int]
    net_class: str = NEUTRAL
    width: int = 1          # track widths are in abstract units
    spacing: int = 1        # required clearance to any neighbour

    @property
    def columns(self) -> list[int]:
        return sorted(set(self.top_pins) | set(self.bottom_pins))

    @property
    def interval(self) -> tuple[int, int]:
        cols = self.columns
        if not cols:
            raise ValueError(f"net {self.name!r} has no pins")
        return cols[0], cols[-1]


class ChannelRoutingError(RuntimeError):
    pass


@dataclass
class TrackAssignment:
    net: str
    track_y: int            # center position of the wire in track units
    interval: tuple[int, int]
    width: int
    is_shield: bool = False


@dataclass
class ChannelResult:
    assignments: list[TrackAssignment]
    height: int              # total channel height in track units
    shields: int

    def track_of(self, net: str) -> TrackAssignment:
        for a in self.assignments:
            if not a.is_shield and (a.net == net
                                    or base_net_name(a.net) == net):
                return a
        raise KeyError(net)

    def adjacent_incompatible_pairs(
            self, nets: dict[str, ChannelNet]) -> list[tuple[str, str]]:
        """Pairs of noisy/sensitive nets adjacent with overlapping spans
        and no shield between them."""
        wires = sorted((a for a in self.assignments),
                       key=lambda a: a.track_y)
        bad = []
        for i, a in enumerate(wires):
            if a.is_shield:
                continue
            for b in wires[i + 1:]:
                if b.track_y - a.track_y > (a.width + b.width):
                    break
                if b.is_shield:
                    break  # a shield separates everything above
                if not _spans_overlap(a.interval, b.interval):
                    continue
                ca = nets[base_net_name(a.net)].net_class
                cb = nets[base_net_name(b.net)].net_class
                if {ca, cb} == {NOISY, SENSITIVE}:
                    bad.append((a.net, b.net))
        return bad


def _spans_overlap(a: tuple[int, int], b: tuple[int, int]) -> bool:
    return a[0] <= b[1] and b[0] <= a[1]


def _vertical_constraints(nets: list[ChannelNet]) -> dict[str, set[str]]:
    """VCG: net A above net B when A has a top pin and B a bottom pin in
    the same column."""
    above: dict[str, set[str]] = {n.name: set() for n in nets}
    by_col_top: dict[int, str] = {}
    by_col_bottom: dict[int, str] = {}
    for n in nets:
        for c in n.top_pins:
            by_col_top[c] = n.name
        for c in n.bottom_pins:
            by_col_bottom[c] = n.name
    for col, top_net in by_col_top.items():
        bottom_net = by_col_bottom.get(col)
        if bottom_net and bottom_net != top_net:
            above[top_net].add(bottom_net)
    return above


def _topological_layers(above: dict[str, set[str]]) -> list[str]:
    """Order nets top-to-bottom respecting the VCG (cycle → error)."""
    indeg = {n: 0 for n in above}
    for n, below in above.items():
        for b in below:
            indeg[b] += 1
    ready = sorted(n for n, d in indeg.items() if d == 0)
    order = []
    while ready:
        n = ready.pop(0)
        order.append(n)
        for b in sorted(above[n]):
            indeg[b] -= 1
            if indeg[b] == 0:
                ready.append(b)
    if len(order) != len(above):
        raise ChannelRoutingError(
            "cyclic vertical constraints (needs doglegs, not supported)")
    return order


def _break_cycles_with_doglegs(nets: list[ChannelNet],
                               max_splits: int = 20) -> list[ChannelNet]:
    """Split nets until the VCG is acyclic — the classic dogleg move.

    A net on a cycle is split at its median column into a top half (its
    top pins, ending in a bottom dogleg pin) and a bottom half (its
    bottom pins, starting from a top dogleg pin); both carry the original
    net name with a suffix so callers can still group them.
    """
    current = list(nets)
    for split_round in range(max_splits):
        above = _vertical_constraints(current)
        cycle = _find_cycle(above)
        if cycle is None:
            return current
        # Split the cycle member with the widest span (most slack).
        by_name = {n.name: n for n in current}
        candidates = [by_name[name] for name in cycle
                      if len(by_name[name].columns) >= 2]
        if not candidates:
            raise ChannelRoutingError(
                "cyclic vertical constraints with no splittable net")
        victim = max(candidates,
                     key=lambda n: n.interval[1] - n.interval[0])
        cols = victim.columns
        dogleg = cols[len(cols) // 2]
        top_half = ChannelNet(
            f"{victim.name}~t{split_round}", list(victim.top_pins),
            [dogleg], victim.net_class, victim.width, victim.spacing)
        bottom_half = ChannelNet(
            f"{victim.name}~b{split_round}", [dogleg],
            list(victim.bottom_pins), victim.net_class, victim.width,
            victim.spacing)
        current = [n for n in current if n.name != victim.name]
        current.extend([top_half, bottom_half])
    raise ChannelRoutingError("dogleg splitting did not converge")


def _find_cycle(above: dict[str, set[str]]) -> list[str] | None:
    """Return the nodes of one directed cycle, or None if acyclic."""
    WHITE, GRAY, BLACK = 0, 1, 2
    color = {n: WHITE for n in above}
    stack: list[str] = []

    def dfs(node: str) -> list[str] | None:
        color[node] = GRAY
        stack.append(node)
        for nxt in above[node]:
            if color[nxt] == GRAY:
                return stack[stack.index(nxt):]
            if color[nxt] == WHITE:
                found = dfs(nxt)
                if found is not None:
                    return found
        stack.pop()
        color[node] = BLACK
        return None

    for node in above:
        if color[node] == WHITE:
            found = dfs(node)
            if found is not None:
                return found
    return None


def base_net_name(track_net: str) -> str:
    """Original net name of a (possibly dogleg-split) track."""
    return track_net.split("~")[0]


def route_channel(nets: list[ChannelNet],
                  insert_shields: bool = True,
                  segregate: bool = False,
                  allow_doglegs: bool = True) -> ChannelResult:
    """Route one channel; returns track assignments top-to-bottom.

    ``segregate=True`` forces all noisy nets into the upper region and
    all sensitive nets into the lower region with a guard band, the [53]
    discipline; otherwise nets share tracks greedily and shields are
    inserted between incompatible neighbours when ``insert_shields``.
    Cyclic vertical constraints are broken by dogleg splitting unless
    ``allow_doglegs=False``.
    """
    if not nets:
        return ChannelResult([], 0, 0)
    by_name = {n.name: n for n in nets}
    if len(by_name) != len(nets):
        raise ChannelRoutingError("duplicate net names")
    if allow_doglegs:
        nets = _break_cycles_with_doglegs(nets)
        by_name = {n.name: n for n in nets}
    above = _vertical_constraints(nets)
    order = _topological_layers(above)
    if segregate:
        rank = {NOISY: 0, NEUTRAL: 1, SENSITIVE: 2}
        order = sorted(order,
                       key=lambda n: (rank[by_name[n].net_class],
                                      order.index(n)))
    assignments: list[TrackAssignment] = []
    shields = 0
    # Greedy track packing: maintain rows; each row holds non-overlapping
    # intervals; a net may enter an existing row only if all its VCG
    # ancestors are strictly above.
    rows: list[list[TrackAssignment]] = []
    row_class: list[str] = []
    net_row: dict[str, int] = {}

    def ancestors_above(net: str, row_idx: int) -> bool:
        for parent, children in above.items():
            if net in children and parent in net_row:
                if net_row[parent] >= row_idx:
                    return False
        return True

    for name in order:
        net = by_name[name]
        placed = False
        for idx, row in enumerate(rows):
            if segregate and row_class[idx] != net.net_class:
                continue
            if not segregate and insert_shields:
                pass
            if any(_spans_overlap(net.interval, a.interval)
                   for a in row):
                continue
            if not ancestors_above(name, idx):
                continue
            if not segregate and _would_be_incompatible(
                    net, row, by_name):
                continue
            row.append(TrackAssignment(name, 0, net.interval, net.width))
            net_row[name] = idx
            placed = True
            break
        if not placed:
            rows.append([TrackAssignment(name, 0, net.interval,
                                         net.width)])
            row_class.append(net.net_class)
            net_row[name] = len(rows) - 1

    # Assign physical y positions top-to-bottom with widths, spacings and
    # shields between incompatible adjacent rows.
    y = 0
    prev_classes: set[str] = set()
    prev_spacing = 0
    for idx, row in enumerate(rows):
        classes = {by_name[a.net].net_class for a in row}
        max_width = max(by_name[a.net].width for a in row)
        max_spacing = max(by_name[a.net].spacing for a in row)
        if prev_classes:
            gap = max(prev_spacing, max_spacing)
            incompatible = (NOISY in prev_classes and SENSITIVE in classes
                            ) or (SENSITIVE in prev_classes
                                  and NOISY in classes)
            if incompatible and insert_shields:
                y += gap
                span = (min(a.interval[0] for a in row),
                        max(a.interval[1] for a in row))
                assignments.append(TrackAssignment(
                    f"shield_{shields}", y, span, 1, is_shield=True))
                shields += 1
                y += 1
            y += gap
        y += max_width
        for a in row:
            a.track_y = y
            assignments.append(a)
        prev_classes = classes
        prev_spacing = max_spacing
    return ChannelResult(assignments, y + 1, shields)


def _would_be_incompatible(net: ChannelNet, row: list[TrackAssignment],
                           by_name: dict[str, ChannelNet]) -> bool:
    """Sharing a row with an incompatible class is never allowed."""
    for a in row:
        other = by_name[a.net].net_class
        if {net.net_class, other} == {NOISY, SENSITIVE}:
            return True
    return False


def channel_density(nets: list[ChannelNet]) -> int:
    """Max number of nets crossing any column — the track lower bound."""
    events: dict[int, int] = {}
    for n in nets:
        lo, hi = n.interval
        events[lo] = events.get(lo, 0) + 1
        events[hi + 1] = events.get(hi + 1, 0) - 1
    density = 0
    current = 0
    for col in sorted(events):
        current += events[col]
        density = max(density, current)
    return density
