"""WRIGHT-style mixed-signal floorplanning: slicing-tree annealing with a
substrate-noise term.

"WRIGHT uses a KOAN-style annealer to floorplan the blocks, but with a
fast substrate noise coupling evaluator so that a simplified view of
substrate noise influences the floorplan" (§3.2, [57]).

The floorplan representation is the classic normalized Polish expression
of Wong & Liu with their three move types (plus block rotation); the cost
adds the :func:`~repro.msystem.substrate.floorplan_noise` kernel to the
usual area + wirelength objectives, so noisy digital blocks migrate away
from sensitive analog ones exactly as in the paper.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.layout.geometry import Rect
from repro.msystem.blocks import Block, PlacedBlock, SignalNet
from repro.msystem.substrate import floorplan_noise
from repro.opt.anneal import Annealer, AnnealSchedule

H, V = "H", "V"  # horizontal cut (stack), vertical cut (side by side)


@dataclass
class FloorplanState:
    expression: list[str]            # normalized Polish expression
    rotated: dict[str, bool]

    def copy(self) -> "FloorplanState":
        return FloorplanState(list(self.expression), dict(self.rotated))


@dataclass
class FloorplanResult:
    placed: dict[str, PlacedBlock]
    width: int
    height: int
    area: int
    wirelength: int
    noise: float
    cost: float
    evaluations: int

    def placed_list(self) -> list[PlacedBlock]:
        return list(self.placed.values())

    def chip_rect(self) -> Rect:
        return Rect(0, 0, self.width, self.height)


def _is_valid_polish(expr: list[str]) -> bool:
    count = 0
    for tok in expr:
        if tok in (H, V):
            count -= 1
        else:
            count += 1
        if count < 1:
            return False
    return count == 1


def evaluate_polish(expr: list[str], blocks: dict[str, Block],
                    rotated: dict[str, bool],
                    spacing: int = 0) -> dict[str, PlacedBlock]:
    """Pack the slicing tree; returns placed blocks at (0,0)-anchored
    coordinates."""
    stack: list[tuple[int, int, list]] = []
    for tok in expr:
        if tok not in (H, V):
            block = blocks[tok]
            rot = rotated.get(tok, False)
            w = (block.height if rot else block.width) + spacing
            h = (block.width if rot else block.height) + spacing
            stack.append((w, h, [(tok, 0, 0, rot)]))
        else:
            w2, h2, items2 = stack.pop()
            w1, h1, items1 = stack.pop()
            if tok == V:  # side by side
                moved = [(n, x + w1, y, r) for n, x, y, r in items2]
                stack.append((w1 + w2, max(h1, h2), items1 + moved))
            else:         # stacked
                moved = [(n, x, y + h1, r) for n, x, y, r in items2]
                stack.append((max(w1, w2), h1 + h2, items1 + moved))
    if len(stack) != 1:
        raise ValueError("malformed Polish expression")
    _, _, items = stack[0]
    return {
        name: PlacedBlock(blocks[name], x, y, rot)
        for name, x, y, rot in items
    }


class WrightFloorplanner:
    """Annealing slicing floorplanner with substrate-noise awareness."""

    def __init__(self, blocks: list[Block], nets: list[SignalNet],
                 noise_weight: float = 1.0,
                 wirelength_weight: float = 0.3,
                 spacing: int = 120_000,
                 seed: int = 1):
        if len(blocks) < 2:
            raise ValueError("floorplanning needs at least two blocks")
        self.blocks = {b.name: b for b in blocks}
        self.nets = nets
        self.noise_weight = noise_weight
        self.wirelength_weight = wirelength_weight
        self.spacing = spacing
        self.seed = seed
        self.total_area = sum(b.area for b in blocks)
        self.scale = int(np.sqrt(self.total_area))
        # Normalize the noise term against the worst case: everything
        # adjacent (kernel=1).
        worst = sum(
            a.noise_injection * b.noise_sensitivity
            for a in blocks for b in blocks if a.name != b.name)
        self.noise_norm = max(worst, 1e-9)
        self.evaluations = 0

    # ------------------------------------------------------------------
    def initial_state(self) -> FloorplanState:
        names = list(self.blocks)
        expr = [names[0]]
        for i, name in enumerate(names[1:]):
            expr += [name, V if i % 2 == 0 else H]
        return FloorplanState(expr, {n: False for n in names})

    # ------------------------------------------------------------------
    def cost(self, state: FloorplanState) -> float:
        self.evaluations += 1
        placed = evaluate_polish(state.expression, self.blocks,
                                 state.rotated, self.spacing)
        plist = list(placed.values())
        width = max(p.x + p.width for p in plist)
        height = max(p.y + p.height for p in plist)
        area = width * height
        wl = self._wirelength(placed)
        noise = floorplan_noise(plist)
        return (area / self.total_area
                + self.wirelength_weight * wl / (4 * self.scale)
                + self.noise_weight * noise / self.noise_norm)

    def _wirelength(self, placed: dict[str, PlacedBlock]) -> int:
        total = 0
        for net in self.nets:
            xs, ys = [], []
            for block_name, pin in net.terminals:
                if block_name not in placed:
                    continue
                x, y = placed[block_name].pin_position(pin)
                xs.append(x)
                ys.append(y)
            if len(xs) >= 2:
                total += (max(xs) - min(xs)) + (max(ys) - min(ys))
        return total

    # ------------------------------------------------------------------
    def propose(self, state: FloorplanState, rng: np.random.Generator,
                frac: float) -> FloorplanState:
        expr = state.expression
        move = rng.random()
        if move < 0.3:
            self._swap_adjacent_operands(expr, rng)
        elif move < 0.55:
            self._complement_chain(expr, rng)
        elif move < 0.8:
            self._swap_operand_operator(expr, rng)
        else:
            names = list(state.rotated)
            name = names[rng.integers(len(names))]
            state.rotated[name] = not state.rotated[name]
        return state

    @staticmethod
    def _operand_positions(expr: list[str]) -> list[int]:
        return [i for i, tok in enumerate(expr) if tok not in (H, V)]

    def _swap_adjacent_operands(self, expr: list[str],
                                rng: np.random.Generator) -> None:
        ops = self._operand_positions(expr)
        if len(ops) < 2:
            return
        k = rng.integers(len(ops) - 1)
        i, j = ops[k], ops[k + 1]
        expr[i], expr[j] = expr[j], expr[i]

    def _complement_chain(self, expr: list[str],
                          rng: np.random.Generator) -> None:
        chains = [i for i, tok in enumerate(expr) if tok in (H, V)]
        if not chains:
            return
        start = chains[rng.integers(len(chains))]
        i = start
        while i < len(expr) and expr[i] in (H, V):
            expr[i] = H if expr[i] == V else V
            i += 1

    def _swap_operand_operator(self, expr: list[str],
                               rng: np.random.Generator) -> None:
        candidates = [
            i for i in range(len(expr) - 1)
            if (expr[i] in (H, V)) != (expr[i + 1] in (H, V))
        ]
        rng.shuffle(candidates)
        for i in candidates:
            expr[i], expr[i + 1] = expr[i + 1], expr[i]
            if _is_valid_polish(expr) and _no_double_operator(expr, i):
                return
            expr[i], expr[i + 1] = expr[i + 1], expr[i]

    # ------------------------------------------------------------------
    def run(self, schedule: AnnealSchedule | None = None) -> FloorplanResult:
        self.evaluations = 0
        schedule = schedule or AnnealSchedule(
            moves_per_temperature=150, cooling=0.9, max_evaluations=25000)
        annealer = Annealer(self.cost, self.propose, schedule=schedule,
                            copy_state=lambda s: s.copy(), seed=self.seed)
        result = annealer.run(self.initial_state())
        state = result.best_state
        placed = evaluate_polish(state.expression, self.blocks,
                                 state.rotated, self.spacing)
        plist = list(placed.values())
        width = max(p.x + p.width for p in plist)
        height = max(p.y + p.height for p in plist)
        return FloorplanResult(
            placed=placed,
            width=width,
            height=height,
            area=width * height,
            wirelength=self._wirelength(placed),
            noise=floorplan_noise(plist),
            cost=result.best_cost,
            evaluations=self.evaluations,
        )


def _no_double_operator(expr: list[str], pos: int) -> bool:
    """Normalized Polish expressions forbid identical adjacent operators."""
    for i in range(max(0, pos - 1), min(len(expr) - 1, pos + 2)):
        if expr[i] in (H, V) and expr[i + 1] == expr[i]:
            return False
    return True
