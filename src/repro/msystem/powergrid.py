"""RAIL-style mixed-signal power-grid synthesis [58, 60] — Fig. 3.

"The RAIL system addresses these concerns by casting mixed-signal power
grid synthesis as a routing problem that uses fast AWE-based linear
system evaluation to electrically model the entire power grid, package
and substrate during layout" (§3.2).

The grid topology: corner supply pads, a peripheral ring, and one strap
from every block to its nearest ring point (an arbitrary non-tree grid —
rings are exactly what digital tree-based tools could not handle).  Each
segment's width is a design variable.  Evaluation:

* **dc** — sparse nodal solve of the resistive grid with average block
  currents → worst IR drop;
* **EM** — per-segment current density against the electromigration
  limit;
* **transient** — MNA of grid (R) + decaps (C) + package (R, L) reduced
  by AWE; the worst supply droop is the peak of the reduced model's
  response to the aligned switching-current step of all digital blocks.

Synthesis minimizes metal area subject to all three constraint families —
the dc/ac/transient constraint set of the Fig. 3 redesign.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np
import scipy.sparse as sp

from repro.analysis import solver as _solver
from repro.awe import MomentEngine, PadeError, pade_model
from repro.msystem.blocks import BlockKind
from repro.msystem.floorplan import FloorplanResult
from repro.opt.anneal import AnnealSchedule, ContinuousSpace, anneal_continuous

SHEET_RES = 0.04          # Ohm/sq supply metal
EM_LIMIT_A_PER_M = 1e3    # ~1 mA per µm of width
PACKAGE_R = 0.05          # Ohm per pad
PACKAGE_L = 2e-9          # H per pad
DECAP_PER_AMP = 2e-9      # F of local decap per ampere of peak current
SWITCH_RISE_S = 2e-9      # digital current-edge rise time


class GridWidthError(ValueError):
    """A grid segment sized to a non-positive width.

    Historically ``resistance`` silently clamped ``width_nm`` to 1 nm,
    which turned a sizing bug into a 40 Ohm/sq segment that quietly
    dominated every IR/EM metric.  Rejection is counted as
    ``powergrid.width_rejected`` on the active tracer.
    """


@dataclass
class GridSegment:
    name: str
    node_a: int
    node_b: int
    length_nm: int
    width_nm: int

    def __post_init__(self) -> None:
        if self.width_nm <= 0:
            from repro.engine.trace import current_tracer
            tracer = current_tracer()
            if tracer is not None:
                tracer.count("powergrid.width_rejected")
            raise GridWidthError(
                f"segment {self.name!r} has non-positive width "
                f"{self.width_nm} nm")

    @property
    def resistance(self) -> float:
        return SHEET_RES * self.length_nm / self.width_nm

    @property
    def metal_area(self) -> int:
        return self.length_nm * self.width_nm

    def em_current_limit(self) -> float:
        return EM_LIMIT_A_PER_M * (self.width_nm * 1e-9)


@dataclass
class PowerGrid:
    """Electrical model of one sized grid over a floorplan."""

    segments: list[GridSegment]
    node_names: list[str]
    pad_nodes: list[int]
    load_currents: dict[int, float]      # node -> average current (A)
    peak_currents: dict[int, float]      # node -> switching peak (A)
    analog_nodes: list[int]
    vdd: float = 3.3
    extra_decap: dict[int, float] = field(default_factory=dict)
    _dc_cache: tuple | None = field(default=None, repr=False, compare=False)

    @property
    def n_nodes(self) -> int:
        return len(self.node_names)

    def metal_area(self) -> int:
        return sum(s.metal_area for s in self.segments)

    # ------------------------------------------------------------------
    def _segment_triplets(self, rows: list, cols: list, vals: list) -> None:
        for seg in self.segments:
            g = 1.0 / seg.resistance
            a, b = seg.node_a, seg.node_b
            rows.extend((a, b, a, b))
            cols.extend((a, b, b, a))
            vals.extend((g, g, -g, -g))

    def _conductance_matrix(self) -> sp.csc_matrix:
        n = self.n_nodes
        rows: list[int] = []
        cols: list[int] = []
        vals: list[float] = []
        self._segment_triplets(rows, cols, vals)
        for pad in self.pad_nodes:
            rows.append(pad)
            cols.append(pad)
            vals.append(1.0 / PACKAGE_R)
        return sp.csc_matrix(
            sp.coo_matrix((vals, (rows, cols)), shape=(n, n)))

    def _widths_key(self) -> tuple:
        return tuple(seg.width_nm for seg in self.segments)

    def dc_solve(self) -> np.ndarray:
        """Node voltages with average loads (pads at vdd through R_pkg).

        A sparse nodal solve (CSC + sparse LU through the shared solver
        layer), memoized per segment sizing: the IR-drop, EM-current and
        droop-bound metrics all reuse one factorization + solve instead
        of each re-assembling and re-solving the grid from scratch.
        """
        key = self._widths_key()
        if self._dc_cache is not None and self._dc_cache[0] == key:
            return self._dc_cache[1]
        G = self._conductance_matrix()
        b = np.zeros(self.n_nodes)
        for pad in self.pad_nodes:
            b[pad] += self.vdd / PACKAGE_R
        for node, current in self.load_currents.items():
            b[node] -= current
        v = _solver.factorize(G, prefer_sparse=True).solve(b)
        self._dc_cache = (key, v)
        return v

    def ir_drops(self) -> dict[int, float]:
        v = self.dc_solve()
        return {node: self.vdd - v[node]
                for node in self.load_currents}

    def worst_ir_drop(self) -> float:
        drops = self.ir_drops()
        return max(drops.values()) if drops else 0.0

    def segment_currents(self) -> dict[str, float]:
        v = self.dc_solve()
        return {
            seg.name: abs(v[seg.node_a] - v[seg.node_b]) / seg.resistance
            for seg in self.segments
        }

    def em_violations(self) -> list[str]:
        currents = self.segment_currents()
        return [seg.name for seg in self.segments
                if currents[seg.name] > seg.em_current_limit()]

    # ------------------------------------------------------------------
    def transient_droop(self, victim: int | None = None,
                        order: int = 3) -> float:
        """Peak droop (V) at the victim node for aligned switching edges.

        Builds the (G + sC) MNA with package inductance branches, reduces
        the composite-current → victim-voltage transfer with AWE, and
        takes the worst excursion of the response to the switching-current
        ramp (modelled as a step through the ramp's dominant content).
        """
        if victim is None:
            victim = self._default_victim()
        n = self.n_nodes
        n_l = len(self.pad_nodes)
        size = n + n_l
        G = np.zeros((size, size))
        C = np.zeros((size, size))
        G[:n, :n] = self._grid_only_conductance()
        # Package branches: pad -> ideal vdd through R_pkg + L_pkg, as a
        # branch current unknown per pad.
        for k, pad in enumerate(self.pad_nodes):
            row = n + k
            G[pad, row] += 1.0   # branch current leaves the pad node
            G[row, pad] += 1.0
            G[row, row] -= PACKAGE_R
            C[row, row] -= PACKAGE_L
        for node, peak in self.peak_currents.items():
            C[node, node] += DECAP_PER_AMP * peak + 1e-12
        for node in self.analog_nodes:
            C[node, node] += 50e-12  # analog blocks carry local decap
        for node, cap in self.extra_decap.items():
            C[node, node] += cap
        b = np.zeros(size)
        total = 0.0
        for node, peak in self.peak_currents.items():
            b[node] -= peak
            total += peak
        if total == 0.0:
            return 0.0
        engine = MomentEngine(G, C, b)
        for q in range(order, 0, -1):
            try:
                model = pade_model(engine.moments(victim, 2 * q), q)
                break
            except PadeError:
                continue
        else:
            # Classic AWE failure (all Padé poles unstable on this RLC
            # grid): fall back to the conservative analytic bound
            # L·di/dt through the package plus resistive drop.
            return self._droop_bound(victim)
        t = np.linspace(0.0, 100e-9, 600)
        response = model.step_response(t)
        return float(np.max(np.abs(response)))

    def _droop_bound(self, victim: int) -> float:
        """Conservative droop estimate: the smaller of the package
        L·di/dt spike and the decap-limited sag, plus resistive drop."""
        total_peak = sum(self.peak_currents.values())
        di_dt = total_peak / SWITCH_RISE_S
        l_eff = PACKAGE_L / max(len(self.pad_nodes), 1)
        c_total = sum(self.extra_decap.values()) \
            + sum(DECAP_PER_AMP * p for p in self.peak_currents.values())
        sag = total_peak * SWITCH_RISE_S / max(c_total, 1e-15)
        v = self.dc_solve()
        resistive = max(self.vdd - v[node]
                        for node in self.load_currents) if \
            self.load_currents else 0.0
        return min(l_eff * di_dt, sag) + resistive

    def _grid_only_conductance(self) -> np.ndarray:
        n = self.n_nodes
        rows: list[int] = []
        cols: list[int] = []
        vals: list[float] = []
        self._segment_triplets(rows, cols, vals)
        G = np.zeros((n, n))
        np.add.at(G, (rows, cols), vals)
        return G

    def _default_victim(self) -> int:
        if self.analog_nodes:
            return self.analog_nodes[0]
        return next(iter(self.load_currents))


# ----------------------------------------------------------------------
# grid construction from a floorplan
# ----------------------------------------------------------------------

def build_grid(floorplan: FloorplanResult,
               widths: dict[str, int] | None = None,
               default_width_nm: int = 10_000,
               vdd: float = 3.3,
               decaps: dict[str, float] | None = None) -> PowerGrid:
    """Ring + strap grid over a floorplan's blocks.

    Ring nodes: the four corners plus the projection of each block center
    onto the nearest chip edge; one strap per block.
    """
    W, Hh = floorplan.width, floorplan.height
    corners = [(0, 0), (W, 0), (W, Hh), (0, Hh)]
    node_names: list[str] = [f"pad{i}" for i in range(4)]
    node_xy: list[tuple[int, int]] = list(corners)

    def add_node(name: str, xy: tuple[int, int]) -> int:
        node_names.append(name)
        node_xy.append(xy)
        return len(node_names) - 1

    blocks = list(floorplan.placed.values())
    taps: dict[str, tuple[int, int, int]] = {}  # block -> (node, ring node)
    ring_points: list[tuple[int, int, int]] = []  # (perimeter_pos, node, -)
    for placed in blocks:
        cx, cy = placed.center
        edge_pts = {
            "bottom": (cx, 0), "top": (cx, Hh),
            "left": (0, cy), "right": (W, cy),
        }
        dists = {k: abs(cy) if k == "bottom" else (
            abs(Hh - cy) if k == "top" else (
                abs(cx) if k == "left" else abs(W - cx)))
            for k in edge_pts}
        edge = min(dists, key=dists.get)
        ring_xy = edge_pts[edge]
        ring_node = add_node(f"ring_{placed.block.name}", ring_xy)
        block_node = add_node(f"blk_{placed.block.name}", (cx, cy))
        taps[placed.block.name] = (block_node, ring_node,
                                   abs(cx - ring_xy[0])
                                   + abs(cy - ring_xy[1]))
        ring_points.append((_perimeter_pos(ring_xy, W, Hh), ring_node, 0))
    for i, corner in enumerate(corners):
        ring_points.append((_perimeter_pos(corner, W, Hh), i, 0))
    ring_points.sort()

    widths = widths or {}
    segments: list[GridSegment] = []
    perimeter = 2 * (W + Hh)
    for k in range(len(ring_points)):
        pos_a, node_a, _ = ring_points[k]
        pos_b, node_b, _ = ring_points[(k + 1) % len(ring_points)]
        length = (pos_b - pos_a) % perimeter
        if length == 0:
            length = 1
        name = f"ring_{k}"
        segments.append(GridSegment(
            name, node_a, node_b, length,
            widths.get(name, default_width_nm)))
    for block_name, (block_node, ring_node, length) in taps.items():
        name = f"strap_{block_name}"
        segments.append(GridSegment(
            name, block_node, ring_node, max(length, 1_000),
            widths.get(name, default_width_nm)))

    load = {}
    peak = {}
    analog_nodes = []
    extra_decap = {}
    decaps = decaps or {}
    for placed in blocks:
        node = taps[placed.block.name][0]
        load[node] = placed.block.supply_avg
        if placed.block.kind is BlockKind.DIGITAL:
            peak[node] = placed.block.supply_peak
        else:
            analog_nodes.append(node)
        if placed.block.name in decaps:
            extra_decap[node] = decaps[placed.block.name]
    return PowerGrid(segments, node_names, [0, 1, 2, 3], load, peak,
                     analog_nodes, vdd, extra_decap)


def _perimeter_pos(xy: tuple[int, int], w: int, h: int) -> int:
    x, y = xy
    if y == 0:
        return x
    if x == w:
        return w + y
    if y == h:
        return w + h + (w - x)
    return 2 * w + h + (h - y)


# ----------------------------------------------------------------------
# synthesis
# ----------------------------------------------------------------------

@dataclass
class RailSpec:
    max_ir_drop: float = 0.1          # V at any load
    max_droop: float = 0.25           # V transient at analog victims
    min_width_nm: int = 2_000
    max_width_nm: int = 200_000


@dataclass
class RailResult:
    grid: PowerGrid
    widths: dict[str, int]
    metal_area: int
    worst_ir_drop: float
    worst_droop: float
    em_violations: list[str]
    feasible: bool
    evaluations: int


DECAP_DENSITY = 1e-3      # F/m² of decap area
DECAP_MIN, DECAP_MAX = 10e-12, 20e-9


def evaluate_grid(floorplan: FloorplanResult, widths: dict[str, int],
                  spec: RailSpec,
                  decaps: dict[str, float] | None = None,
                  ) -> tuple[PowerGrid, float, float, int]:
    grid = build_grid(floorplan, widths, decaps=decaps)
    ir = grid.worst_ir_drop()
    droop = grid.transient_droop()
    em = len(grid.em_violations())
    return grid, ir, droop, em


def synthesize_rail(floorplan: FloorplanResult,
                    spec: RailSpec | None = None,
                    seed: int = 1,
                    schedule: AnnealSchedule | None = None) -> RailResult:
    """Size every grid segment (and per-block decap) to meet dc/EM/
    transient constraints with minimum metal+decap area — the Fig. 3
    redesign loop."""
    spec = spec or RailSpec()
    template = build_grid(floorplan)
    seg_names = [seg.name for seg in template.segments]
    block_names = sorted(floorplan.placed)
    decap_names = [f"decap_{b}" for b in block_names]
    names = seg_names + decap_names
    lower = np.concatenate([
        np.full(len(seg_names), float(spec.min_width_nm)),
        np.full(len(decap_names), DECAP_MIN)])
    upper = np.concatenate([
        np.full(len(seg_names), float(spec.max_width_nm)),
        np.full(len(decap_names), DECAP_MAX)])
    space = ContinuousSpace(names, lower, upper, log_scale=True)
    evaluations = [0]
    area_norm = len(seg_names) * floorplan.width * spec.min_width_nm

    def split(point: dict[str, float]):
        widths = {k: int(point[k]) for k in seg_names}
        decaps = {b: point[f"decap_{b}"] for b in block_names}
        return widths, decaps

    def cost(point: dict[str, float]) -> float:
        evaluations[0] += 1
        widths, decaps = split(point)
        grid, ir, droop, em = evaluate_grid(floorplan, widths, spec,
                                            decaps)
        decap_area = sum(decaps.values()) / DECAP_DENSITY * 1e18  # nm²
        area_term = (grid.metal_area() + decap_area) / area_norm
        penalty = 0.0
        if ir > spec.max_ir_drop:
            penalty += 20.0 * (ir / spec.max_ir_drop - 1.0)
        if droop > spec.max_droop:
            penalty += 20.0 * (droop / spec.max_droop - 1.0)
        penalty += 5.0 * em
        return area_term + penalty

    schedule = schedule or AnnealSchedule(
        moves_per_temperature=80, cooling=0.85, max_evaluations=6000)
    # Warm start from a deliberately over-designed grid: the anneal then
    # *shrinks* metal while staying feasible, mirroring RAIL's refinement
    # of a working but wasteful grid.
    x0 = np.concatenate([
        np.full(len(seg_names), float(spec.max_width_nm) * 0.5),
        np.full(len(decap_names), DECAP_MAX * 0.5)])
    result = anneal_continuous(cost, space, schedule=schedule, seed=seed,
                               x0=x0)
    widths, decaps = split(space.to_dict(result.best_state))
    # Greedy repair: widen the segments that still violate (EM first,
    # then the highest-current segments for IR), grow decaps for droop.
    # Monotone and bounded, so it terminates; max sizing is feasible.
    stall = 0
    prev_droop = float("inf")
    for _ in range(60):
        grid, ir, droop, em = evaluate_grid(floorplan, widths, spec,
                                            decaps)
        evaluations[0] += 1
        em_names = grid.em_violations()
        if (ir <= spec.max_ir_drop and droop <= spec.max_droop
                and not em_names):
            break
        stall = stall + 1 if droop >= prev_droop * 0.98 else 0
        prev_droop = droop
        if stall >= 3:
            # Plateau (LC ringing defeats local moves): escalate to the
            # heavy-handed fix — maximum decap and much wider metal.
            stall = 0
            decaps = {b: DECAP_MAX for b in decaps}
            for name in widths:
                widths[name] = min(int(widths[name] * 2.0),
                                   spec.max_width_nm)
            continue
        if em_names:
            for name in em_names:
                widths[name] = min(int(widths[name] * 1.4),
                                   spec.max_width_nm)
        if ir > spec.max_ir_drop:
            currents = grid.segment_currents()
            for name in sorted(currents, key=currents.get,
                               reverse=True)[:3]:
                widths[name] = min(int(widths[name] * 1.4),
                                   spec.max_width_nm)
        if droop > spec.max_droop:
            # Droop is fought on two fronts: low-impedance straps so the
            # decap can actually supply the blocks, and the decap itself.
            # More decap usually helps, but with package inductance the
            # grid can ring (underdamped LC): try both directions and
            # keep whichever actually lowers the droop.
            for name in list(widths):
                if name.startswith("strap_"):
                    widths[name] = min(int(widths[name] * 1.3),
                                       spec.max_width_nm)
            up = {b: min(c * 2.0, DECAP_MAX) for b, c in decaps.items()}
            down = {b: max(c / 2.0, DECAP_MIN) for b, c in decaps.items()}
            _, _, droop_up, _ = evaluate_grid(floorplan, widths, spec, up)
            _, _, droop_dn, _ = evaluate_grid(floorplan, widths, spec,
                                              down)
            evaluations[0] += 2
            if droop_up <= min(droop_dn, droop):
                decaps = up
            elif droop_dn < droop:
                decaps = down
    # Greedy shrink: walk every width/decap down while feasibility holds
    # — the metal-minimization half of the RAIL loop.
    def is_feasible(w, d) -> bool:
        evaluations[0] += 1
        g, ir_, droop_, _ = evaluate_grid(floorplan, w, spec, d)
        return (ir_ <= spec.max_ir_drop and droop_ <= spec.max_droop
                and not g.em_violations())

    if is_feasible(widths, decaps):
        for _ in range(4):
            changed = False
            for name in seg_names:
                trial = dict(widths)
                trial[name] = max(int(widths[name] * 0.7),
                                  spec.min_width_nm)
                if trial[name] < widths[name] and \
                        is_feasible(trial, decaps):
                    widths = trial
                    changed = True
            for b in block_names:
                trial = dict(decaps)
                trial[b] = max(decaps[b] * 0.6, DECAP_MIN)
                if trial[b] < decaps[b] and is_feasible(widths, trial):
                    decaps = trial
                    changed = True
            if not changed:
                break
    grid, ir, droop, em = evaluate_grid(floorplan, widths, spec, decaps)
    em_names = grid.em_violations()
    feasible = (ir <= spec.max_ir_drop and droop <= spec.max_droop
                and not em_names)
    return RailResult(grid, widths, grid.metal_area(), ir, droop,
                      em_names, feasible, evaluations[0])


def uniform_grid_result(floorplan: FloorplanResult, width_nm: int,
                        spec: RailSpec | None = None) -> RailResult:
    """Reference point: a naive uniform-width grid (the 'before' of
    Fig. 3's redesign)."""
    spec = spec or RailSpec()
    template = build_grid(floorplan)
    widths = {seg.name: width_nm for seg in template.segments}
    grid, ir, droop, em = evaluate_grid(floorplan, widths, spec)
    em_names = grid.em_violations()
    feasible = (ir <= spec.max_ir_drop and droop <= spec.max_droop
                and not em_names)
    return RailResult(grid, widths, grid.metal_area(), ir, droop,
                      em_names, feasible, 1)
