"""WREN-style mixed-signal global routing over a floorplan.

The chip area is tiled into global-routing cells (gcells); tiles covered
by blocks are obstacles (wiring goes around blocks, in the channels).
Nets are routed by Dijkstra over the tile graph with:

* per-tile capacity (congestion cost as occupancy approaches capacity);
* noise-aware adjacency cost — a *sensitive* net pays for entering a tile
  that noisy wiring already crosses, and vice versa (WREN's SNR-driven
  avoidance);
* per-net coupling accounting, so achieved noise exposure can be checked
  against the :mod:`~repro.msystem.noise_constraints` budgets.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field

from repro.msystem.blocks import SignalNet
from repro.msystem.floorplan import FloorplanResult

NOISY = "noisy"
SENSITIVE = "sensitive"
NEUTRAL = "neutral"
_INCOMPATIBLE = {(NOISY, SENSITIVE), (SENSITIVE, NOISY)}


class GlobalRoutingError(RuntimeError):
    pass


@dataclass
class GlobalRoute:
    net: str
    net_class: str
    tiles: list[tuple[int, int]]
    length_nm: int
    exposure_nm: int       # route length adjacent to incompatible wiring

    def segments(self, tile_nm: int) -> list[tuple[str, int]]:
        """(segment_id, length) pairs for the SNR constraint mapper."""
        return [(f"tile_{ix}_{iy}", tile_nm) for ix, iy in self.tiles]


@dataclass
class GlobalRoutingResult:
    routes: dict[str, GlobalRoute]
    failed: list[str]
    tile_nm: int

    @property
    def total_length(self) -> int:
        return sum(r.length_nm for r in self.routes.values())

    @property
    def total_exposure(self) -> int:
        return sum(r.exposure_nm for r in self.routes.values())


class WrenGlobalRouter:
    """Tile-graph router with congestion and noise-class costs."""

    def __init__(self, floorplan: FloorplanResult,
                 tiles_x: int = 48, tiles_y: int = 48,
                 capacity: int = 6,
                 congestion_cost: float = 4.0,
                 noise_cost: float = 20.0,
                 noise_aware: bool = True):
        self.fp = floorplan
        self.nx = tiles_x
        self.ny = tiles_y
        self.tile_w = max(floorplan.width // tiles_x, 1)
        self.tile_h = max(floorplan.height // tiles_y, 1)
        self.capacity = capacity
        self.congestion_cost = congestion_cost
        self.noise_cost = noise_cost
        self.noise_aware = noise_aware
        self.blocked = self._blocked_tiles()
        self.usage: dict[tuple[int, int], int] = {}
        self.classes: dict[tuple[int, int], set[str]] = {}

    def _blocked_tiles(self) -> set[tuple[int, int]]:
        blocked = set()
        for placed in self.fp.placed.values():
            rect = placed.rect()
            # Interior tiles only: a tile is blocked when its center is
            # strictly inside a block (edges stay routable as channels).
            for ix in range(self.nx):
                for iy in range(self.ny):
                    cx = ix * self.tile_w + self.tile_w // 2
                    cy = iy * self.tile_h + self.tile_h // 2
                    margin = min(self.tile_w, self.tile_h) // 2
                    inner = rect.expanded(-margin)
                    if inner.width > 0 and inner.height > 0 and \
                            inner.contains_point(cx, cy):
                        blocked.add((ix, iy))
        return blocked

    def tile_of(self, x: int, y: int) -> tuple[int, int]:
        return (min(max(x // self.tile_w, 0), self.nx - 1),
                min(max(y // self.tile_h, 0), self.ny - 1))

    # ------------------------------------------------------------------
    def _tile_cost(self, tile: tuple[int, int], net_class: str) -> float | None:
        if tile in self.blocked:
            return None
        cost = 1.0
        used = self.usage.get(tile, 0)
        if used >= self.capacity:
            return None
        cost += self.congestion_cost * (used / self.capacity) ** 2
        if self.noise_aware:
            for other in self.classes.get(tile, ()):  # same tile
                if (net_class, other) in _INCOMPATIBLE:
                    cost += self.noise_cost
            for dx, dy in ((1, 0), (-1, 0), (0, 1), (0, -1)):
                for other in self.classes.get((tile[0] + dx,
                                               tile[1] + dy), ()):
                    if (net_class, other) in _INCOMPATIBLE:
                        cost += self.noise_cost * 0.5
        return cost

    def _dijkstra(self, sources: set[tuple[int, int]],
                  targets: set[tuple[int, int]],
                  net_class: str) -> list[tuple[int, int]] | None:
        dist: dict[tuple[int, int], float] = {t: 0.0 for t in sources}
        parent: dict[tuple[int, int], tuple[int, int] | None] = {
            t: None for t in sources}
        heap = [(0.0, t) for t in sources]
        heapq.heapify(heap)
        while heap:
            d, tile = heapq.heappop(heap)
            if d > dist.get(tile, float("inf")):
                continue
            if tile in targets:
                path = [tile]
                while parent[tile] is not None:
                    tile = parent[tile]
                    path.append(tile)
                path.reverse()
                return path
            ix, iy = tile
            for dx, dy in ((1, 0), (-1, 0), (0, 1), (0, -1)):
                nxt = (ix + dx, iy + dy)
                if not (0 <= nxt[0] < self.nx and 0 <= nxt[1] < self.ny):
                    continue
                cost = self._tile_cost(nxt, net_class)
                if cost is None:
                    continue
                nd = d + cost
                if nd < dist.get(nxt, float("inf")):
                    dist[nxt] = nd
                    parent[nxt] = tile
                    heapq.heappush(heap, (nd, nxt))
        return None

    # ------------------------------------------------------------------
    def route(self, nets: list[SignalNet]) -> GlobalRoutingResult:
        order = sorted(nets, key=lambda n: {SENSITIVE: 0, NEUTRAL: 1,
                                            NOISY: 2}[n.net_class])
        routes: dict[str, GlobalRoute] = {}
        failed: list[str] = []
        tile_nm = (self.tile_w + self.tile_h) // 2
        for net in order:
            tiles = self._route_net(net)
            if tiles is None:
                failed.append(net.name)
                continue
            for tile in tiles:
                self.usage[tile] = self.usage.get(tile, 0) + 1
                self.classes.setdefault(tile, set()).add(net.net_class)
            routes[net.name] = GlobalRoute(
                net.name, net.net_class, tiles,
                length_nm=len(tiles) * tile_nm, exposure_nm=0)
        # Exposure is a property of the *finished* routing: recompute per
        # net once every wire is committed.
        for route in routes.values():
            route.exposure_nm = self._exposure(
                route.tiles, route.net_class) * tile_nm
        return GlobalRoutingResult(routes, failed, tile_nm)

    def _route_net(self, net: SignalNet) -> list[tuple[int, int]] | None:
        pins = []
        for block_name, pin in net.terminals:
            placed = self.fp.placed.get(block_name)
            if placed is None:
                raise GlobalRoutingError(
                    f"net {net.name!r} references unknown block "
                    f"{block_name!r}")
            tile = self.tile_of(*placed.pin_position(pin))
            # Block-interior pins escape to the nearest channel tile (the
            # block's pin is on its edge; the tile grid is coarser).
            pins.append(self._nearest_free_tile(tile))
        tree = {pins[0]}
        all_tiles = [pins[0]]
        for pin in pins[1:]:
            if pin in tree:
                continue
            path = self._dijkstra(tree, {pin}, net.net_class)
            if path is None:
                return None
            for tile in path:
                if tile not in tree:
                    tree.add(tile)
                    all_tiles.append(tile)
        return all_tiles

    def _nearest_free_tile(self, tile: tuple[int, int]) -> tuple[int, int]:
        """Bounded spiral to the closest unblocked tile.

        Scans Manhattan rings of growing radius (deterministic order:
        radius, then x, then y) up to the grid diameter; a grid with no
        free tile at all raises :class:`GlobalRoutingError` instead of
        silently handing the blocked tile back to the router.
        """
        if tile not in self.blocked:
            return tile
        x0, y0 = tile
        for radius in range(1, self.nx + self.ny):
            ring = []
            for dx in range(-radius, radius + 1):
                dy = radius - abs(dx)
                ring.append((x0 + dx, y0 + dy))
                if dy:
                    ring.append((x0 + dx, y0 - dy))
            for nxt in sorted(ring):
                if not (0 <= nxt[0] < self.nx and 0 <= nxt[1] < self.ny):
                    continue
                if nxt not in self.blocked:
                    return nxt
        raise GlobalRoutingError(
            f"no free routing tile anywhere on the {self.nx}x{self.ny} "
            f"grid (pin tile {tile} and every alternative are blocked)")

    def _exposure(self, tiles: list[tuple[int, int]],
                  net_class: str) -> int:
        exposure = 0
        for tile in tiles:
            hit = False
            for other in self.classes.get(tile, ()):
                if (net_class, other) in _INCOMPATIBLE:
                    hit = True
            for dx, dy in ((1, 0), (-1, 0), (0, 1), (0, -1)):
                for other in self.classes.get((tile[0] + dx, tile[1] + dy),
                                              ()):
                    if (net_class, other) in _INCOMPATIBLE:
                        hit = True
            if hit:
                exposure += 1
        return exposure
