"""Circuit simulator: MNA, DC, AC, transient, noise and sensitivities."""

from repro.analysis.ac import (
    AcResult,
    BodeMetrics,
    SmallSignalSystem,
    ac_analysis,
    bode_metrics,
    logspace_frequencies,
    small_signal_system,
)
from repro.analysis.dcop import (
    ConvergenceError,
    OperatingPoint,
    dc_operating_point,
    dc_sweep,
)
from repro.analysis.measures import (
    StepResponse,
    cmrr_db,
    common_mode_gain,
    differential_gain,
    full_characterization,
    output_swing,
    psrr_db,
    systematic_offset,
    unity_step_response,
)
from repro.analysis.mismatch import (
    MismatchSigma,
    OffsetStatistics,
    area_for_offset,
    gradient_offset,
    monte_carlo_offsets,
    pair_offset_statistics,
    pelgrom_sigma,
)
from repro.analysis.mna import (
    MnaSystem,
    MosOperatingPoint,
    SingularCircuitError,
    mos_level1,
    threshold_voltage,
)
from repro.analysis.noise import (
    NoiseResult,
    equivalent_noise_charge,
    noise_analysis,
)
from repro.analysis.sensitivity import (
    AcSensitivity,
    ParameterRef,
    ac_adjoint_sensitivities,
    finite_difference_sensitivities,
    normalized,
)
from repro.analysis import solver
from repro.analysis.solver import (
    FactorizationCache,
    FactorizedOperator,
    factorize,
    solve_once,
)
from repro.analysis.transient import TransientResult, transient
from repro.analysis import api
from repro.analysis.api import (
    AcSpec,
    AnalysisSpec,
    DcSpec,
    NoiseSpec,
    TranSpec,
)
from repro.analysis import batch
from repro.analysis.batch import (
    BatchTopologyError,
    StampPlan,
    batched_ac,
    batched_dc,
    batched_noise,
    batched_transient,
    run_batch,
    topology_signature,
)
from repro.analysis.mna import BatchSingularError, solve_dense_batched

__all__ = [
    "AcResult",
    "AcSpec",
    "AnalysisSpec",
    "DcSpec",
    "NoiseSpec",
    "TranSpec",
    "api",
    "batch",
    "BatchSingularError",
    "BatchTopologyError",
    "StampPlan",
    "batched_ac",
    "batched_dc",
    "batched_noise",
    "batched_transient",
    "run_batch",
    "solve_dense_batched",
    "topology_signature",
    "StepResponse",
    "MismatchSigma",
    "OffsetStatistics",
    "area_for_offset",
    "gradient_offset",
    "monte_carlo_offsets",
    "pair_offset_statistics",
    "pelgrom_sigma",
    "cmrr_db",
    "common_mode_gain",
    "differential_gain",
    "full_characterization",
    "output_swing",
    "psrr_db",
    "systematic_offset",
    "unity_step_response",
    "AcSensitivity",
    "BodeMetrics",
    "ConvergenceError",
    "FactorizationCache",
    "FactorizedOperator",
    "factorize",
    "solve_once",
    "solver",
    "MnaSystem",
    "MosOperatingPoint",
    "NoiseResult",
    "OperatingPoint",
    "ParameterRef",
    "SingularCircuitError",
    "SmallSignalSystem",
    "TransientResult",
    "ac_adjoint_sensitivities",
    "ac_analysis",
    "bode_metrics",
    "dc_operating_point",
    "dc_sweep",
    "equivalent_noise_charge",
    "finite_difference_sensitivities",
    "logspace_frequencies",
    "mos_level1",
    "noise_analysis",
    "normalized",
    "small_signal_system",
    "threshold_voltage",
    "transient",
]
