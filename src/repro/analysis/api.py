"""Typed analysis API: one spec per analysis kind, one ``run`` entry point.

The simulator grew as four free functions (``dc_operating_point``,
``ac_analysis``, ``transient``, ``noise_analysis``) with positional
argument lists that every caller — sizers, measures, flows — repeats.
This module gives each analysis a frozen spec dataclass and a single
dispatcher::

    from repro.analysis import api
    op  = api.run(circuit, api.DcSpec())
    ac  = api.run(circuit, api.AcSpec(freqs=freqs))
    tr  = api.run(circuit, api.TranSpec(t_stop=1e-6, dt=1e-9))
    nz  = api.run(circuit, api.NoiseSpec(out="out", freqs=freqs))

The legacy free functions still exist and behave identically — they are
thin wrappers that build the spec and call :func:`run` — so nothing
downstream (including cache keys, which hash the same netlist + analysis
parameters as before) changes.

:func:`run` is also the observability chokepoint: every dispatch bumps an
``analysis.<kind>`` counter on the active tracer (see
:mod:`repro.engine.trace`), which is how spans attribute simulator calls
to flow stages.  The engine suspends the tracer around executor dispatch,
so these counters record *parent-side* analysis work only — identically
under serial and parallel executors.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from repro.analysis.ac import AcResult, SmallSignalSystem, _ac_analysis_impl
from repro.analysis.dcop import OperatingPoint, _dc_operating_point_impl
from repro.analysis.noise import NoiseResult, _noise_analysis_impl
from repro.analysis.transient import TransientResult, _transient_impl
from repro.engine.trace import current_tracer


@dataclass(frozen=True)
class DcSpec:
    """DC operating point (Newton with gmin/source stepping fallbacks)."""

    kind = "dc"
    x0: Any = None
    gmin: float = 1e-12


@dataclass(frozen=True)
class AcSpec:
    """Small-signal sweep of ``(G + jωC)x = b_ac`` over ``freqs`` (Hz)."""

    kind = "ac"
    freqs: Any = None
    op: OperatingPoint | None = None
    ss: SmallSignalSystem | None = None


@dataclass(frozen=True)
class TranSpec:
    """Transient integration from 0 to ``t_stop`` with base step ``dt``."""

    kind = "tran"
    t_stop: float = 0.0
    dt: float = 0.0
    x0: Any = None
    use_ic_op: bool = True
    max_halvings: int = 8


@dataclass(frozen=True)
class NoiseSpec:
    """Output noise spectrum at net ``out`` over ``freqs`` (Hz)."""

    kind = "noise"
    out: str = ""
    freqs: Any = None
    op: OperatingPoint | None = None
    ss: SmallSignalSystem | None = None


AnalysisSpec = DcSpec | AcSpec | TranSpec | NoiseSpec


def run(circuit, spec: AnalysisSpec):
    """Dispatch ``spec`` against ``circuit`` and return the typed result.

    ``DcSpec → OperatingPoint``, ``AcSpec → AcResult``,
    ``TranSpec → TransientResult``, ``NoiseSpec → NoiseResult``.
    Raises ``TypeError`` for anything that is not one of the four specs.
    """
    tracer = current_tracer()
    if tracer is not None:
        tracer.count(f"analysis.{spec.kind}")
    if isinstance(spec, DcSpec):
        return _dc_operating_point_impl(circuit, x0=spec.x0, gmin=spec.gmin)
    if isinstance(spec, AcSpec):
        return _ac_analysis_impl(circuit, spec.freqs, op=spec.op, ss=spec.ss)
    if isinstance(spec, TranSpec):
        return _transient_impl(circuit, spec.t_stop, spec.dt, x0=spec.x0,
                               use_ic_op=spec.use_ic_op,
                               max_halvings=spec.max_halvings)
    if isinstance(spec, NoiseSpec):
        return _noise_analysis_impl(circuit, spec.out, spec.freqs,
                                    op=spec.op, ss=spec.ss)
    raise TypeError(f"not an analysis spec: {spec!r}")


__all__ = [
    "AcResult",
    "AcSpec",
    "AnalysisSpec",
    "DcSpec",
    "NoiseResult",
    "NoiseSpec",
    "OperatingPoint",
    "TranSpec",
    "TransientResult",
    "run",
]
