"""DC operating-point analysis: damped Newton–Raphson with homotopies.

The solver applies the classic SPICE escalation ladder:

1. plain damped Newton–Raphson from a flat start (or a supplied guess);
2. *gmin stepping* — solve with a large shunt conductance on every node,
   then relax it geometrically toward the target gmin;
3. *source stepping* — ramp all independent sources from 0 to 100%.

Analog cells with well-defined bias (the circuits the synthesis tools
produce) almost always converge in stage 1; the later stages make the
simulator robust inside optimization loops where intermediate sizings can
be electrically absurd — exactly the situation FRIDGE-style tools face.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.analysis.mna import (
    MnaSystem,
    MosOperatingPoint,
    SingularCircuitError,
)
from repro.analysis import solver as _solver
from repro.circuits.devices import CurrentSource, Mosfet, VoltageSource
from repro.circuits.netlist import Circuit

MAX_NR_ITERATIONS = 150
VOLTAGE_ABS_TOL = 1e-6
CURRENT_ABS_TOL = 1e-9
MAX_STEP_VOLTS = 0.5


class ConvergenceError(RuntimeError):
    """Raised when all homotopy stages fail to converge."""


@dataclass
class OperatingPoint:
    """DC solution: node voltages, branch currents and MOS small-signal data."""

    voltages: dict[str, float]
    branch_currents: dict[str, float]
    mos: dict[str, MosOperatingPoint]
    iterations: int
    x: np.ndarray = field(repr=False, default=None)  # raw solution vector

    def v(self, net: str) -> float:
        if net == "0":
            return 0.0
        return self.voltages[net]

    def i(self, source_name: str) -> float:
        return self.branch_currents[source_name]

    def supply_current(self, source_name: str = "vdd_src") -> float:
        """Magnitude of the current delivered by a supply source."""
        return abs(self.branch_currents[source_name])

    def power(self, supply_names: tuple[str, ...] = ("vdd_src",),
              circuit: Circuit | None = None) -> float:
        """Total power drawn from the named supplies (requires the circuit
        to look up supply voltages when provided; otherwise assumes the
        branch voltage equals the source dc value is unavailable and uses
        the stored node voltages)."""
        total = 0.0
        for name in supply_names:
            i = abs(self.branch_currents.get(name, 0.0))
            if circuit is not None:
                dev = circuit.device(name)
                v = abs(getattr(dev, "dc", 0.0))
            else:
                v = 0.0
            total += v * i
        return total

    def saturated(self, *names: str) -> bool:
        """True when every named MOSFET operates in saturation."""
        return all(self.mos[n].region == "saturation" for n in names)


def dc_operating_point(circuit: Circuit,
                       x0: np.ndarray | None = None,
                       gmin: float = 1e-12) -> OperatingPoint:
    """Solve the DC operating point of ``circuit``.

    Raises :class:`ConvergenceError` when Newton, gmin stepping and source
    stepping all fail.

    Thin wrapper over :func:`repro.analysis.api.run` with a ``DcSpec`` —
    same behaviour, but dispatches through the typed analysis API so the
    call is traced.
    """
    from repro.analysis import api
    return api.run(circuit, api.DcSpec(x0=x0, gmin=gmin))


def _dc_operating_point_impl(circuit: Circuit,
                             x0: np.ndarray | None = None,
                             gmin: float = 1e-12) -> OperatingPoint:
    system = MnaSystem(circuit, gmin=gmin)
    G, _, b_dc, _ = system.linear_stamps()
    x = np.zeros(system.size) if x0 is None else np.asarray(x0, dtype=float)
    if x.shape != (system.size,):
        x = np.zeros(system.size)

    x, iters, ok = _newton(system, G, b_dc, x)
    total_iters = iters
    if not ok:
        x, iters, ok = _gmin_stepping(system, G, b_dc)
        total_iters += iters
    if not ok:
        x, iters, ok = _source_stepping(system, circuit, gmin)
        total_iters += iters
    if not ok:
        raise ConvergenceError(
            f"DC operating point of {circuit.name!r} did not converge "
            f"after {total_iters} total Newton iterations")
    return _package(system, x, total_iters)


def _package(system: MnaSystem, x: np.ndarray, iterations: int) -> OperatingPoint:
    voltages = {n: float(x[i]) for n, i in system.node_index.items()}
    currents = {name: float(x[k]) for name, k in system.branch_index.items()}
    mos = {
        d.name: system.mos_op(d, x)
        for d in system.nonlinear if isinstance(d, Mosfet)
    }
    return OperatingPoint(voltages, currents, mos, iterations, x=x)


def _newton(system: MnaSystem, G_lin: np.ndarray, b: np.ndarray,
            x0: np.ndarray, gmin_extra: float = 0.0,
            max_iter: int = MAX_NR_ITERATIONS):
    """Damped NR iteration.  Returns (x, iterations, converged).

    Routes every solve through :mod:`repro.analysis.solver`.  For a
    purely linear circuit the Jacobian never changes, so the LU
    factorization is computed once and reused by every iteration;
    nonlinear circuits re-stamp and re-factor per iteration as Newton
    requires.
    """
    x = x0.copy()
    n_nodes = len(system.node_names)
    linear_only = not system.nonlinear
    base_op = None
    for it in range(1, max_iter + 1):
        rhs = b.copy()
        try:
            if linear_only:
                if base_op is None:
                    A = G_lin.copy()
                    if gmin_extra:
                        A[:n_nodes, :n_nodes] += np.eye(n_nodes) * gmin_extra
                    base_op = _solver.factorize(A)
                x_new = base_op.solve(rhs)
            else:
                A = G_lin.copy()
                if gmin_extra:
                    A[:n_nodes, :n_nodes] += np.eye(n_nodes) * gmin_extra
                system.stamp_nonlinear(x, A, rhs)
                x_new = _solver.solve_once(A, rhs)
        except SingularCircuitError:
            return x, it, False
        delta = x_new - x
        # Damp node-voltage updates; branch currents are left free.
        dv = delta[:n_nodes]
        max_dv = np.max(np.abs(dv)) if n_nodes else 0.0
        if max_dv > MAX_STEP_VOLTS:
            delta = delta * (MAX_STEP_VOLTS / max_dv)
        x = x + delta
        if _converged(delta, x, n_nodes):
            return x, it, True
    return x, max_iter, False


def _converged(delta: np.ndarray, x: np.ndarray, n_nodes: int) -> bool:
    dv = np.abs(delta[:n_nodes])
    di = np.abs(delta[n_nodes:])
    v_ok = np.all(dv <= VOLTAGE_ABS_TOL + 1e-6 * np.abs(x[:n_nodes]))
    i_ok = np.all(di <= CURRENT_ABS_TOL + 1e-6 * np.abs(x[n_nodes:]))
    return bool(v_ok and i_ok)


def _gmin_stepping(system: MnaSystem, G_lin: np.ndarray, b: np.ndarray):
    x = np.zeros(system.size)
    total = 0
    gmin_extra = 1e-2
    while gmin_extra >= 1e-12:
        x_new, iters, ok = _newton(system, G_lin, b, x, gmin_extra=gmin_extra,
                                   max_iter=60)
        total += iters
        if not ok:
            return x, total, False
        x = x_new
        gmin_extra /= 10.0
    # Final solve without the extra shunt.
    x, iters, ok = _newton(system, G_lin, b, x, max_iter=60)
    return x, total + iters, ok


def _source_stepping(system: MnaSystem, circuit: Circuit, gmin: float):
    """Ramp all independent sources from 10% to 100%."""
    total = 0
    x = np.zeros(system.size)
    for scale in (0.1, 0.3, 0.5, 0.7, 0.85, 1.0):
        scaled = circuit.map_devices(lambda d: _scale_source(d, scale))
        sys_scaled = MnaSystem(scaled, gmin=gmin)
        G, _, b_dc, _ = sys_scaled.linear_stamps()
        x, iters, ok = _newton(sys_scaled, G, b_dc, x, max_iter=80)
        total += iters
        if not ok:
            return x, total, False
    return x, total, True


def _scale_source(dev, scale: float):
    from dataclasses import replace
    if isinstance(dev, (VoltageSource, CurrentSource)):
        return replace(dev, dc=dev.dc * scale)
    return dev


def dc_sweep(circuit: Circuit, source_name: str,
             values: np.ndarray) -> list[OperatingPoint]:
    """Sweep the DC value of one source, warm-starting each point."""
    results: list[OperatingPoint] = []
    x_prev: np.ndarray | None = None
    for value in values:
        swept = circuit.copy()
        swept.update_device(source_name, dc=float(value))
        op = dc_operating_point(swept, x0=x_prev)
        results.append(op)
        x_prev = op.x
    return results
