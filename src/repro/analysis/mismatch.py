"""Device mismatch analysis: Pelgrom statistics and layout gradients.

The tutorial's closing point on synthesis — industry "expects high
robustness and yield in the light of ... statistical process tolerances
and mismatches" — and the entire matching discipline of the backend
(common centroid, symmetric placement) exist because of two mismatch
mechanisms:

* **random (Pelgrom) mismatch** — σ(ΔVt) = A_vt/√(W·L): halved by 4× the
  gate area;
* **gradient mismatch** — a linear process gradient across the die adds
  an offset proportional to the distance between the devices' centroids,
  which is exactly what common-centroid layout nulls.

This module provides both models plus the resulting opamp offset/yield
statistics, so the frontend tools can reason quantitatively about the
area-vs-matching trade and the backend's centroid errors translate into
millivolts.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.circuits.devices import Mosfet

# Synthetic 0.8 µm process matching coefficients (typical published data).
A_VT = 15e-9          # V·m  (15 mV·µm)
A_BETA = 0.02e-6      # relative·m (2 %·µm)
GRADIENT_VT_PER_M = 2.0e-3 / 1e-3   # 2 mV per mm of centroid separation


@dataclass(frozen=True)
class MismatchSigma:
    """Standard deviations of the pair's threshold/current-factor deltas."""

    sigma_vt: float       # V
    sigma_beta_rel: float  # relative ΔΒ/Β

    def offset_sigma(self, gm_over_id: float) -> float:
        """Input-referred offset σ of a differential pair.

        σ_vos² = σ_Vt² + (σ_β/ (gm/Id))² — the β term referred through
        the bias point.
        """
        beta_term = self.sigma_beta_rel / gm_over_id
        return math.sqrt(self.sigma_vt ** 2 + beta_term ** 2)


def pelgrom_sigma(dev: Mosfet, a_vt: float = A_VT,
                  a_beta: float = A_BETA) -> MismatchSigma:
    """Pelgrom-law mismatch of one device pair with this geometry."""
    area = dev.w * dev.l * dev.m
    if area <= 0:
        raise ValueError("device area must be positive")
    sqrt_area = math.sqrt(area)
    return MismatchSigma(a_vt / sqrt_area, a_beta / sqrt_area)


def gradient_offset(centroid_distance_m: float,
                    gradient: float = GRADIENT_VT_PER_M) -> float:
    """Systematic ΔVt from a linear gradient across the pair's centroids.

    Zero for a perfect common-centroid layout — the quantitative payoff of
    :mod:`repro.layout.caparray`'s balancing.
    """
    return gradient * abs(centroid_distance_m)


@dataclass
class OffsetStatistics:
    sigma_random: float      # V, Pelgrom
    systematic: float        # V, gradient-induced
    gm_over_id: float

    @property
    def three_sigma(self) -> float:
        return self.systematic + 3.0 * self.sigma_random

    def yield_within(self, limit_v: float) -> float:
        """Fraction of pairs whose |offset| stays within ±limit (Gaussian)."""
        from math import erf, sqrt
        if self.sigma_random <= 0:
            return 1.0 if abs(self.systematic) <= limit_v else 0.0
        lo = (-limit_v - self.systematic) / (self.sigma_random * sqrt(2))
        hi = (limit_v - self.systematic) / (self.sigma_random * sqrt(2))
        return 0.5 * (erf(hi) - erf(lo))


def pair_offset_statistics(dev: Mosfet, gm_over_id: float = 10.0,
                           centroid_distance_m: float = 0.0,
                           a_vt: float = A_VT,
                           a_beta: float = A_BETA) -> OffsetStatistics:
    """Offset statistics of a differential pair built from ``dev``."""
    sigma = pelgrom_sigma(dev, a_vt, a_beta)
    return OffsetStatistics(
        sigma_random=sigma.offset_sigma(gm_over_id),
        systematic=gradient_offset(centroid_distance_m),
        gm_over_id=gm_over_id,
    )


def monte_carlo_offsets(dev: Mosfet, n: int = 1000,
                        gm_over_id: float = 10.0,
                        centroid_distance_m: float = 0.0,
                        seed: int = 1) -> np.ndarray:
    """Sampled input offsets (V) of n pair instances."""
    stats = pair_offset_statistics(dev, gm_over_id, centroid_distance_m)
    rng = np.random.default_rng(seed)
    return stats.systematic + rng.normal(0.0, stats.sigma_random, size=n)


def area_for_offset(sigma_target_v: float, gm_over_id: float = 10.0,
                    a_vt: float = A_VT, a_beta: float = A_BETA) -> float:
    """Minimum gate area (m²) for a target random-offset σ.

    The inverse Pelgrom law the sizing tools use when a matching spec is
    present: area = (A_vt² + (A_β/(gm/Id))²) / σ².
    """
    if sigma_target_v <= 0:
        raise ValueError("offset target must be positive")
    numerator = a_vt ** 2 + (a_beta / gm_over_id) ** 2
    return numerator / sigma_target_v ** 2
