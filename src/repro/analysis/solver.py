"""Shared factor-once/solve-many linear-solver layer.

Every frontend tool the tutorial surveys reduces to thousands of calls
into the circuit evaluator, and the backend RAIL claim hinges on solving
power grids far larger than cell-level MNA.  Both workloads share one
algebraic shape: the *same* matrix is solved against many right-hand
sides — an AC matrix ``G + jωC`` serves the response and every
noise-injection adjoint transfer at that frequency, a transient matrix
``G + C/h`` serves every Newton iteration and timestep of a linear
circuit, the AWE moment recursion reuses one factorization of ``G``, and
a power grid's conductance matrix serves the IR-drop, EM and droop-bound
metrics.  Re-factoring per solve (what the seed code did, dense
``np.linalg.solve`` everywhere) pays the O(n³) cost each time; this
module pays it once.

Two pieces:

* :class:`FactorizedOperator` — one LU factorization of ``A`` serving
  repeated forward (``A x = b``), transpose (``Aᵀ x = b``) and adjoint
  (``Aᴴ x = b``) solves.  Dense (``scipy.linalg.lu_factor``) or sparse
  (``scipy.sparse.linalg.splu`` on CSC) storage is auto-selected by
  matrix size and density — cell-level MNA stays dense, power grids go
  sparse — or forced with ``prefer_sparse``.
* :class:`FactorizationCache` — a keyed LRU of operators with local
  hit/miss counters, so sweeps that revisit a matrix (AC then noise at
  the same frequencies, repeated timesteps at one ``h``) skip even the
  single factorization.

Telemetry: every factorization, solve and cache lookup is counted on the
active tracer (``solver.factorizations``, ``solver.factor_dense`` /
``solver.factor_sparse``, ``solver.solves``, ``solver.cache_hits`` /
``solver.cache_misses``), which is how the counters reach
``engine.report()['solver']`` and the run-manifest rollups.  Counting
goes through :func:`repro.engine.trace.current_tracer` exactly like the
``analysis.*`` counters, so it is suspended during executor dispatch and
serial and parallel runs attribute identically.
"""

from __future__ import annotations

import warnings
from collections import OrderedDict
from typing import Any, Callable, Hashable

import numpy as np
import scipy.linalg as sla
import scipy.sparse as sp
import scipy.sparse.linalg as spla

from repro.analysis.mna import SingularCircuitError
from repro.engine.trace import current_tracer

#: Matrices at least this large are candidates for sparse factorization.
SPARSE_SIZE_THRESHOLD = 128

#: ...provided their density (nonzeros / n²) is at most this.
SPARSE_DENSITY_THRESHOLD = 0.25

#: Default LRU capacity of a :class:`FactorizationCache`.
DEFAULT_CACHE_ENTRIES = 256


def _count(name: str, n: int = 1) -> None:
    tracer = current_tracer()
    if tracer is not None:
        tracer.count(name, n)


class FactorizedOperator:
    """One LU factorization of ``A``, serving repeated solves.

    Build through :func:`factorize` (which picks the storage) rather
    than directly.  All three solve directions share the single
    factorization: ``solve`` for ``A x = b``, ``solve_transpose`` for
    ``Aᵀ x = b`` (the adjoint-network trick for real-arithmetic
    sensitivities) and ``solve_adjoint`` for ``Aᴴ x = b`` (the complex
    conjugate-transpose the noise analysis needs).
    """

    _TRANS_DENSE = {"N": 0, "T": 1, "H": 2}

    def __init__(self, factors: Any, mode: str, size: int, dtype: np.dtype):
        self._factors = factors
        self.mode = mode          # "dense" | "sparse"
        self.size = size
        self.dtype = dtype

    # -- solving -------------------------------------------------------
    def _solve(self, b: np.ndarray, trans: str) -> np.ndarray:
        _count("solver.solves")
        b = np.asarray(b)
        if self.mode == "dense":
            x = sla.lu_solve(self._factors, b,
                             trans=self._TRANS_DENSE[trans])
        else:
            if np.iscomplexobj(b) and not np.issubdtype(
                    self.dtype, np.complexfloating):
                # SuperLU solves in the factorization's dtype only.
                x = (self._factors.solve(np.ascontiguousarray(b.real),
                                         trans=trans)
                     + 1j * self._factors.solve(
                         np.ascontiguousarray(b.imag), trans=trans))
            else:
                x = self._factors.solve(
                    np.ascontiguousarray(b, dtype=self.dtype), trans=trans)
        if not np.all(np.isfinite(x)):
            raise SingularCircuitError(
                "linear solve produced non-finite values — matrix is "
                "singular or badly scaled")
        return x

    def solve(self, b: np.ndarray) -> np.ndarray:
        """Solve ``A x = b``."""
        return self._solve(b, "N")

    def solve_transpose(self, b: np.ndarray) -> np.ndarray:
        """Solve ``Aᵀ x = b`` (plain transpose, no conjugation)."""
        return self._solve(b, "T")

    def solve_adjoint(self, b: np.ndarray) -> np.ndarray:
        """Solve ``Aᴴ x = b`` (conjugate transpose)."""
        return self._solve(b, "H")


def factorize(A: Any, prefer_sparse: bool | None = None) -> FactorizedOperator:
    """LU-factorize ``A`` once, auto-selecting dense or sparse storage.

    ``A`` may be a dense ndarray or any scipy sparse matrix.  Dense
    inputs switch to sparse when the matrix is both large
    (``SPARSE_SIZE_THRESHOLD``) and sparse enough
    (``SPARSE_DENSITY_THRESHOLD``); sparse inputs densify when tiny.
    ``prefer_sparse`` overrides the heuristic in either direction.
    Raises :class:`~repro.analysis.mna.SingularCircuitError` for a
    structurally or numerically singular matrix.
    """
    is_sparse_input = sp.issparse(A)
    n = A.shape[0]
    if A.shape[0] != A.shape[1]:
        raise ValueError(f"matrix must be square, got {A.shape}")
    if prefer_sparse is None:
        if is_sparse_input:
            use_sparse = n >= SPARSE_SIZE_THRESHOLD or \
                A.nnz <= SPARSE_DENSITY_THRESHOLD * n * n
        elif n >= SPARSE_SIZE_THRESHOLD:
            density = np.count_nonzero(A) / (n * n)
            use_sparse = density <= SPARSE_DENSITY_THRESHOLD
        else:
            use_sparse = False
    else:
        use_sparse = prefer_sparse

    _count("solver.factorizations")
    if use_sparse:
        _count("solver.factor_sparse")
        M = sp.csc_matrix(A)
        try:
            with warnings.catch_warnings():
                warnings.simplefilter("ignore", spla.MatrixRankWarning)
                factors = spla.splu(M)
        except (RuntimeError, ValueError) as exc:
            raise SingularCircuitError(
                "sparse LU failed — matrix is singular") from exc
        return FactorizedOperator(factors, "sparse", n, M.dtype)

    _count("solver.factor_dense")
    M = A.toarray() if is_sparse_input else np.asarray(A)
    try:
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", sla.LinAlgWarning)
            lu, piv = sla.lu_factor(M)
    except (ValueError, sla.LinAlgError) as exc:
        raise SingularCircuitError(
            "dense LU failed — matrix is singular") from exc
    if np.any(np.diag(lu) == 0) or not np.all(np.isfinite(lu)):
        raise SingularCircuitError(
            "MNA matrix is singular — check for floating nodes or "
            "voltage-source loops")
    return FactorizedOperator((lu, piv), "dense", n, M.dtype)


def solve_once(A: Any, b: np.ndarray,
               prefer_sparse: bool | None = None) -> np.ndarray:
    """One-shot ``factorize(A).solve(b)`` with the layer's counting."""
    return factorize(A, prefer_sparse=prefer_sparse).solve(b)


class FactorizationCache:
    """Keyed LRU of :class:`FactorizedOperator` instances.

    The key must capture everything the matrix depends on — the AC layer
    keys per frequency on a per-system cache, the transient layer per
    (step size, integration scheme).  Hits and misses are tracked both
    locally (``hits`` / ``misses``, for direct assertions) and on the
    active tracer (``solver.cache_hits`` / ``solver.cache_misses``, for
    the engine report and run manifest).
    """

    def __init__(self, max_entries: int = DEFAULT_CACHE_ENTRIES):
        if max_entries < 1:
            raise ValueError("max_entries must be >= 1")
        self.max_entries = max_entries
        self._entries: OrderedDict[Hashable, FactorizedOperator] = \
            OrderedDict()
        self.hits = 0
        self.misses = 0

    def __len__(self) -> int:
        return len(self._entries)

    @property
    def hit_rate(self) -> float:
        lookups = self.hits + self.misses
        return self.hits / lookups if lookups else 0.0

    def get_or_factorize(self, key: Hashable,
                         build: Callable[[], Any],
                         prefer_sparse: bool | None = None
                         ) -> FactorizedOperator:
        """The cached operator for ``key``, factorizing ``build()`` on miss."""
        op = self._entries.get(key)
        if op is not None:
            self._entries.move_to_end(key)
            self.hits += 1
            _count("solver.cache_hits")
            return op
        self.misses += 1
        _count("solver.cache_misses")
        op = factorize(build(), prefer_sparse=prefer_sparse)
        self._entries[key] = op
        while len(self._entries) > self.max_entries:
            self._entries.popitem(last=False)
        return op

    def clear(self) -> None:
        self._entries.clear()

    def stats(self) -> dict:
        return {"entries": len(self._entries), "hits": self.hits,
                "misses": self.misses, "hit_rate": self.hit_rate}


__all__ = [
    "DEFAULT_CACHE_ENTRIES",
    "FactorizationCache",
    "FactorizedOperator",
    "SPARSE_DENSITY_THRESHOLD",
    "SPARSE_SIZE_THRESHOLD",
    "factorize",
    "solve_once",
]
