"""Sensitivity analysis: the glue between performance and layout decisions.

The tutorial singles out sensitivity analysis as "the critical glue that
links the various approaches being taken for cell level layout and system
assembly" (§3.1, [46]).  Two engines are provided:

* :func:`finite_difference_sensitivities` — generic, works for any scalar
  performance function of device parameters (used by the synthesis tools
  and the manufacturability corner search);
* :func:`ac_adjoint_sensitivities` — exact small-signal sensitivities of an
  output voltage w.r.t. every R and C value from one adjoint solve (used by
  the constraint mapper to bound layout parasitics).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable

import numpy as np

from repro.analysis.ac import SmallSignalSystem
from repro.circuits.devices import Capacitor, Resistor
from repro.circuits.netlist import Circuit


@dataclass(frozen=True)
class ParameterRef:
    """Names one scalar device parameter, e.g. ('m1', 'w')."""

    device: str
    field: str

    def get(self, circuit: Circuit) -> float:
        return getattr(circuit.device(self.device), self.field)

    def set(self, circuit: Circuit, value: float) -> None:
        circuit.update_device(self.device, **{self.field: value})


def finite_difference_sensitivities(
        circuit: Circuit,
        performance: Callable[[Circuit], float],
        parameters: list[ParameterRef],
        rel_step: float = 1e-3) -> dict[ParameterRef, float]:
    """Central-difference d(performance)/d(parameter) for each parameter.

    Each evaluation uses a fresh copy of the circuit so the caller's
    instance is never mutated.
    """
    sensitivities: dict[ParameterRef, float] = {}
    for ref in parameters:
        nominal = ref.get(circuit)
        step = abs(nominal) * rel_step
        if step == 0.0:
            step = rel_step
        up = circuit.copy()
        ref.set(up, nominal + step)
        down = circuit.copy()
        ref.set(down, nominal - step)
        f_up = performance(up)
        f_down = performance(down)
        sensitivities[ref] = (f_up - f_down) / (2.0 * step)
    return sensitivities


def normalized(sensitivities: dict[ParameterRef, float],
               circuit: Circuit,
               performance_value: float) -> dict[ParameterRef, float]:
    """Convert to relative sensitivities (p/f)·df/dp."""
    out = {}
    for ref, ds in sensitivities.items():
        p = ref.get(circuit)
        if performance_value == 0:
            out[ref] = 0.0
        else:
            out[ref] = ds * p / performance_value
    return out


@dataclass
class AcSensitivity:
    """d|V(out)|/d(value) for one linear element at one frequency."""

    device: str
    value: float
    d_mag: float          # derivative of |V(out)| w.r.t. element value
    relative: float       # (value/|V|)·d|V|/d(value)


def ac_adjoint_sensitivities(ss: SmallSignalSystem, out: str,
                             freq_hz: float) -> list[AcSensitivity]:
    """Exact sensitivities of |V(out)| to all R and C values at one frequency.

    Uses the adjoint-network identity:  dV_out/dp = -zᵀ (dA/dp) x, where
    ``A x = b`` is the forward system and ``Aᵀ z = e_out`` the adjoint.
    One forward and one adjoint solve cover every element.
    """
    system = ss.system
    iout = system.node(out)
    if iout < 0:
        raise ValueError("output cannot be ground")
    s = 2j * math.pi * freq_hz
    # One factorization (shared with AC/noise sweeps at this frequency)
    # serves both the forward and the adjoint solve.
    op = ss.factorized_at(freq_hz)
    x = op.solve(ss.b_ac)
    e = np.zeros(system.size, dtype=complex)
    e[iout] = 1.0
    z = op.solve_transpose(e)
    v_out = x[iout]
    results: list[AcSensitivity] = []
    for dev in system.circuit.devices:
        if isinstance(dev, Resistor):
            dv = _two_terminal_sensitivity(system, dev.nodes, x, z)
            # A contains g = 1/R: dA/dR = -(1/R²)·(pattern)
            d_vout = dv * (-1.0 / dev.value ** 2) * (-1.0)
            results.append(_pack(dev.name, dev.value, v_out, d_vout))
        elif isinstance(dev, Capacitor):
            dv = _two_terminal_sensitivity(system, dev.nodes, x, z)
            d_vout = -dv * s
            results.append(_pack(dev.name, dev.value, v_out, d_vout))
    return results


def _two_terminal_sensitivity(system, nodes, x, z) -> complex:
    """zᵀ·(pattern)·x for the standard two-terminal conductance pattern."""
    a, b = system.node(nodes[0]), system.node(nodes[1])
    xa = x[a] if a >= 0 else 0.0
    xb = x[b] if b >= 0 else 0.0
    za = z[a] if a >= 0 else 0.0
    zb = z[b] if b >= 0 else 0.0
    return (za - zb) * (xa - xb)


def _pack(name: str, value: float, v_out: complex,
          d_vout: complex) -> AcSensitivity:
    mag = abs(v_out)
    if mag == 0:
        d_mag = 0.0
    else:
        # d|V| = Re(conj(V)·dV)/|V|
        d_mag = float(np.real(np.conj(v_out) * d_vout) / mag)
    rel = d_mag * value / mag if mag else 0.0
    return AcSensitivity(name, value, d_mag, rel)
