"""Standard opamp measurements: CMRR, PSRR, offset, swing, settling.

Every synthesis system in the tutorial reports these figures; they are
the vocabulary of "design verification" in the §2.1 methodology.  Each
measurement builds the appropriate testbench around a differential cell
(ports ``inp``/``inn``/``out`` plus a ``vdd_src`` supply) and runs the
simulator.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.analysis.ac import ac_analysis, bode_metrics, logspace_frequencies
from repro.analysis.dcop import ConvergenceError, dc_operating_point
from repro.analysis.mna import SingularCircuitError
from repro.analysis.transient import transient
from repro.circuits.devices import Waveform
from repro.circuits.netlist import Circuit


def _with_sources(circuit: Circuit, vip_ac: float, vin_ac: float,
                  bias: float, vdd_ac: float = 0.0) -> Circuit:
    tb = circuit.copy()
    tb.vsource("tb_vip", "inp", "0", dc=bias, ac=vip_ac)
    tb.vsource("tb_vin", "inn", "0", dc=bias, ac=vin_ac)
    if vdd_ac:
        tb.update_device("vdd_src", ac=vdd_ac)
    return tb


def differential_gain(circuit: Circuit, freq: float = 10.0,
                      bias: float = 1.5, output: str = "out") -> float:
    """|V(out)| per unit differential input (single-ended drive)."""
    tb = _with_sources(circuit, 1.0, 0.0, bias)
    result = ac_analysis(tb, np.array([freq]))
    return float(abs(result.v(output)[0]))


def common_mode_gain(circuit: Circuit, freq: float = 10.0,
                     bias: float = 1.5, output: str = "out") -> float:
    """|V(out)| per unit common-mode input (both inputs driven)."""
    tb = _with_sources(circuit, 1.0, 1.0, bias)
    result = ac_analysis(tb, np.array([freq]))
    return float(abs(result.v(output)[0]))


def cmrr_db(circuit: Circuit, freq: float = 10.0, bias: float = 1.5,
            output: str = "out") -> float:
    """Common-mode rejection ratio in dB at one frequency."""
    a_dm = differential_gain(circuit, freq, bias, output)
    a_cm = common_mode_gain(circuit, freq, bias, output)
    if a_cm <= 0:
        return float("inf")
    return 20.0 * math.log10(a_dm / a_cm)


def psrr_db(circuit: Circuit, freq: float = 10.0, bias: float = 1.5,
            output: str = "out") -> float:
    """Power-supply rejection ratio in dB (supply ripple → output)."""
    a_dm = differential_gain(circuit, freq, bias, output)
    tb = _with_sources(circuit, 0.0, 0.0, bias, vdd_ac=1.0)
    a_ps = float(abs(ac_analysis(tb, np.array([freq])).v(output)[0]))
    if a_ps <= 0:
        return float("inf")
    return 20.0 * math.log10(a_dm / a_ps)


def systematic_offset(circuit: Circuit, bias: float = 1.5,
                      output: str = "out",
                      target: float | None = None) -> float:
    """Input-referred systematic offset: output deviation / gain."""
    tb = _with_sources(circuit, 0.0, 0.0, bias)
    op = dc_operating_point(tb)
    vdd = abs(circuit.device("vdd_src").dc)
    reference = target if target is not None else vdd / 2.0
    gain = differential_gain(circuit, 10.0, bias, output)
    return (op.v(output) - reference) / max(gain, 1e-12)


def output_swing(circuit: Circuit, bias: float = 1.5,
                 output: str = "out",
                 gain_floor_fraction: float = 0.25,
                 n_points: int = 41) -> tuple[float, float]:
    """(low, high) output levels where incremental gain stays above
    ``gain_floor_fraction`` of its peak — the usable swing."""
    vdd = abs(circuit.device("vdd_src").dc)
    tb = _with_sources(circuit, 0.0, 0.0, bias)
    offsets = np.linspace(-0.05, 0.05, n_points)
    outs = []
    for off in offsets:
        sweep_tb = tb.copy()
        sweep_tb.update_device("tb_vip", dc=bias + off)
        try:
            outs.append(dc_operating_point(sweep_tb).v(output))
        except (ConvergenceError, SingularCircuitError):
            # Expected numerical failures at extreme sweep points: record
            # a gap and keep sweeping.  Anything else (KeyError on a bad
            # port name, TypeError, ...) is a programming error and must
            # propagate instead of silently reading as "no swing here".
            outs.append(float("nan"))
    outs_arr = np.array(outs)
    gains = np.abs(np.gradient(outs_arr, offsets))
    peak = np.nanmax(gains)
    active = gains >= gain_floor_fraction * peak
    if not active.any():
        return (vdd / 2.0, vdd / 2.0)
    lo = float(np.nanmin(outs_arr[active]))
    hi = float(np.nanmax(outs_arr[active]))
    return (lo, hi)


@dataclass
class StepResponse:
    """Closed-loop unity-follower step measurement."""

    slew_rate: float
    settling_time_1pct: float
    overshoot_fraction: float


def unity_step_response(circuit: Circuit, step: float = 0.5,
                        bias: float = 1.2, t_stop: float = 4e-6,
                        output: str = "out") -> StepResponse:
    """Connect the cell as a unity follower and measure the step response.

    Requires a differential cell; ``inn`` is tied to ``out`` (feedback)
    and ``inp`` receives the step.
    """
    tb = circuit.copy()
    tb.vsource("tb_vip", "inp", "0", dc=bias,
               waveform=Waveform("pulse",
                                 (bias, bias + step, 50e-9,
                                  1e-10, 1e-10, 1.0, 2.0)))
    # Feedback: inn follows out (ideal wire via a tiny resistor).
    tb.resistor("tb_fb", output, "inn", 1.0)
    result = transient(tb, t_stop, t_stop / 2000.0)
    wave = result.v(output)
    t = result.times
    v0 = wave[0]
    v_final = wave[-1]
    rise = v_final - v0
    if abs(rise) < 1e-6:
        return StepResponse(0.0, 0.0, 0.0)
    # Slew rate: steepest 10-90% segment.
    mask = (t >= 50e-9)
    dv = np.gradient(wave[mask], t[mask])
    slew = float(np.max(np.abs(dv)))
    settle = result.settling_time(output, final=float(v_final), band=0.01)
    peak = np.max(wave) if rise > 0 else np.min(wave)
    overshoot = max(0.0, (peak - v_final) / rise) if rise > 0 else \
        max(0.0, (v_final - peak) / abs(rise))
    return StepResponse(slew, settle, float(overshoot))


def full_characterization(circuit: Circuit, bias: float = 1.5,
                          output: str = "out") -> dict[str, float]:
    """The standard datasheet row: gain/GBW/PM/CMRR/PSRR/offset/swing."""
    tb = _with_sources(circuit, 1.0, 0.0, bias)
    metrics = bode_metrics(
        ac_analysis(tb, logspace_frequencies(10, 1e9, 5)), output)
    lo, hi = output_swing(circuit, bias, output)
    return {
        "gain_db": metrics.dc_gain_db,
        "gbw": metrics.unity_gain_freq,
        "phase_margin": metrics.phase_margin_deg,
        "cmrr_db": cmrr_db(circuit, bias=bias, output=output),
        "psrr_db": psrr_db(circuit, bias=bias, output=output),
        "offset_v": systematic_offset(circuit, bias=bias, output=output),
        "swing_low": lo,
        "swing_high": hi,
    }
