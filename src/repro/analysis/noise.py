"""Noise analysis: output and input-referred spectral densities.

Each noisy element contributes a current-noise power spectral density
injected across its terminals:

* resistor — thermal, ``4kT/R``;
* MOSFET — channel thermal ``4kT·(2/3)·gm`` plus flicker
  ``KF·Id^AF / (Cox·W·L·f)`` (SPICE-style), both across drain–source.

Transfers from every injection point to the output are obtained from one
adjoint solve per frequency, so the cost is independent of the number of
noise sources — the same trick the sensitivity-driven layout tools of the
tutorial rely on.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.analysis.ac import SmallSignalSystem, small_signal_system
from repro.analysis.dcop import OperatingPoint
from repro.circuits.devices import BOLTZMANN, ROOM_TEMP_K, Mosfet, Resistor
from repro.circuits.netlist import Circuit

FOUR_KT = 4.0 * BOLTZMANN * ROOM_TEMP_K


@dataclass
class NoiseContribution:
    device: str
    kind: str  # "thermal" | "flicker"
    psd: np.ndarray  # output-referred V²/Hz per frequency


@dataclass
class NoiseResult:
    """Output noise spectrum and per-device breakdown."""

    freqs: np.ndarray
    output_psd: np.ndarray              # total, V²/Hz
    contributions: list[NoiseContribution]
    gain: np.ndarray | None = None      # |V(out)/ac input| if available

    def output_rms(self, f_lo: float | None = None,
                   f_hi: float | None = None) -> float:
        """Integrated output noise voltage over [f_lo, f_hi] (trapezoid)."""
        mask = np.ones_like(self.freqs, dtype=bool)
        if f_lo is not None:
            mask &= self.freqs >= f_lo
        if f_hi is not None:
            mask &= self.freqs <= f_hi
        f = self.freqs[mask]
        p = self.output_psd[mask]
        if len(f) < 2:
            return 0.0
        return math.sqrt(float(np.trapezoid(p, f)))

    def input_referred_psd(self) -> np.ndarray:
        if self.gain is None:
            raise ValueError("no AC input source: gain unavailable")
        return self.output_psd / np.maximum(self.gain ** 2, 1e-300)

    def dominant_contributor(self) -> str:
        totals = [(float(np.trapezoid(c.psd, self.freqs)), c.device)
                  for c in self.contributions]
        return max(totals)[1]


def noise_analysis(circuit: Circuit, out: str, freqs: np.ndarray,
                   op: OperatingPoint | None = None,
                   ss: SmallSignalSystem | None = None) -> NoiseResult:
    """Compute the output noise spectrum at net ``out`` over ``freqs``.

    Thin wrapper over :func:`repro.analysis.api.run` with a ``NoiseSpec``.
    """
    from repro.analysis import api
    return api.run(circuit, api.NoiseSpec(out=out, freqs=freqs, op=op, ss=ss))


def _noise_analysis_impl(circuit: Circuit, out: str, freqs: np.ndarray,
                         op: OperatingPoint | None = None,
                         ss: SmallSignalSystem | None = None) -> NoiseResult:
    freqs = np.asarray(freqs, dtype=float)
    if ss is None:
        ss = small_signal_system(circuit, op)
    system = ss.system
    iout = system.node(out)
    if iout < 0:
        raise ValueError("noise output cannot be the ground net")

    injections = _noise_injections(ss)
    psd_per = {key: np.zeros(len(freqs)) for key in injections}
    gain = np.zeros(len(freqs))
    has_input = bool(np.any(np.abs(ss.b_ac) > 0))

    e = np.zeros(system.size, dtype=complex)
    e[iout] = 1.0
    for k, f in enumerate(freqs):
        # One factorization of G + jωC per frequency serves the adjoint
        # solve (all injections at once) and the gain solve — and is
        # shared with any AC sweep over the same SmallSignalSystem.
        op = ss.factorized_at(f)
        z = op.solve_adjoint(e)  # adjoint solution
        for key, (a, b, psd_fn) in injections.items():
            za = z[a] if a >= 0 else 0.0
            zb = z[b] if b >= 0 else 0.0
            h2 = abs(np.conj(za - zb)) ** 2
            psd_per[key][k] = h2 * psd_fn(f)
        if has_input:
            x = op.solve(ss.b_ac)
            gain[k] = abs(x[iout])

    contributions = [
        NoiseContribution(device=key[0], kind=key[1], psd=psd_per[key])
        for key in injections
    ]
    total = np.sum([c.psd for c in contributions], axis=0) if contributions \
        else np.zeros(len(freqs))
    return NoiseResult(freqs, total, contributions,
                       gain=gain if has_input else None)


def _noise_injections(ss: SmallSignalSystem):
    """Map (device, kind) → (node_a, node_b, psd(f)) for each noise source."""
    system = ss.system
    injections = {}
    for dev in system.circuit.devices:
        if isinstance(dev, Resistor):
            a, b = system.node(dev.nodes[0]), system.node(dev.nodes[1])
            value = dev.value
            injections[(dev.name, "thermal")] = (
                a, b, _const_psd(FOUR_KT / value))
        elif isinstance(dev, Mosfet):
            mop = ss.op.mos[dev.name]
            d, s = system.node(dev.drain), system.node(dev.source)
            gm = max(mop.gm, 0.0)
            injections[(dev.name, "thermal")] = (
                d, s, _const_psd(FOUR_KT * (2.0 / 3.0) * gm))
            model = dev.model
            if model.kf > 0 and abs(mop.ids) > 0:
                num = model.kf * abs(mop.ids) ** model.af
                den = model.cox * dev.w * dev.l * dev.m
                injections[(dev.name, "flicker")] = (
                    d, s, _flicker_psd(num / den))
    return injections


def _const_psd(value: float):
    return lambda f: value


def _flicker_psd(scale: float):
    return lambda f: scale / max(f, 1e-3)


def equivalent_noise_charge(result: NoiseResult, gain_v_per_coulomb: float,
                            f_lo: float = 1e2, f_hi: float = 1e7) -> float:
    """ENC in rms electrons given the charge gain of a CSA chain.

    ENC = output rms noise / (charge gain) / q — the figure of merit of the
    Table 1 pulse detector ("noise < 1000 rms e-").
    """
    from repro.circuits.devices import Q_ELECTRON
    vn = result.output_rms(f_lo, f_hi)
    return vn / gain_v_per_coulomb / Q_ELECTRON
