"""Small-signal AC analysis and Bode-plot metrics.

Linearizes the circuit at a DC operating point (MOSFETs become
gm/gds/gmb + Meyer capacitances, diodes become gd + junction cap) and
solves ``(G + jωC)x = b_ac`` over a frequency sweep.  The same linearized
matrices feed the AWE engine (:mod:`repro.awe`) and the noise analysis.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

import numpy as np

from repro.analysis.dcop import OperatingPoint, dc_operating_point
from repro.analysis.mna import (
    MnaSystem,
    SingularCircuitError,
    mos_capacitances,
)
from repro.analysis.solver import FactorizationCache, FactorizedOperator
from repro.circuits.devices import THERMAL_VOLTAGE, Diode, Mosfet
from repro.circuits.netlist import Circuit


@dataclass
class SmallSignalSystem:
    """Linearized MNA matrices at one operating point.

    Holds a per-system :class:`~repro.analysis.solver.FactorizationCache`
    keyed by frequency: the first solve at a frequency LU-factorizes
    ``G + jωC`` once, and every later solve at that frequency — the AC
    response, the noise adjoint, every injection transfer, the
    sensitivity adjoint — reuses the same factorization.
    """

    system: MnaSystem
    G: np.ndarray
    C: np.ndarray
    b_ac: np.ndarray
    op: OperatingPoint
    _factors: FactorizationCache = field(
        default_factory=FactorizationCache, repr=False, compare=False)

    def node(self, net: str) -> int:
        return self.system.node(net)

    def factorized_at(self, freq_hz: float) -> FactorizedOperator:
        """The (cached) LU factorization of ``G + jωC`` at one frequency."""
        f = float(freq_hz)
        return self._factors.get_or_factorize(
            f, lambda: self.G + (2j * math.pi * f) * self.C)

    def solve_at(self, freq_hz: float) -> np.ndarray:
        return self.factorized_at(freq_hz).solve(self.b_ac)

    def transfer_from_current(self, inject_plus: str, inject_minus: str,
                              out: str, freq_hz: float) -> complex:
        """V(out) per unit AC current injected between two nets.

        Used by the noise analysis; solves the adjoint system through
        the per-frequency factorization cache, so all injection
        transfers at one frequency genuinely share a single
        factorization (the seed code claimed this but re-built and
        re-factored ``G + sC`` on every call).
        """
        e = np.zeros(self.system.size, dtype=complex)
        iout = self.node(out)
        if iout < 0:
            return 0.0 + 0.0j
        e[iout] = 1.0
        z = self.factorized_at(freq_hz).solve_transpose(e)
        ip, im = self.node(inject_plus), self.node(inject_minus)
        zp = z[ip] if ip >= 0 else 0.0
        zm = z[im] if im >= 0 else 0.0
        return complex(zp - zm)


def small_signal_system(circuit: Circuit,
                        op: OperatingPoint | None = None) -> SmallSignalSystem:
    """Build the linearized (G, C, b_ac) system at an operating point."""
    system = MnaSystem(circuit)
    G, C, _, b_ac = system.linear_stamps()
    if op is None:
        op = dc_operating_point(circuit)
    x = op.x
    for dev in system.nonlinear:
        if isinstance(dev, Mosfet):
            _stamp_mos_small_signal(system, dev, op, G, C)
        elif isinstance(dev, Diode):
            _stamp_diode_small_signal(system, dev, x, G, C)
    return SmallSignalSystem(system, G, C, b_ac, op)


def _stamp_mos_small_signal(system: MnaSystem, dev: Mosfet,
                            op: OperatingPoint, G: np.ndarray,
                            C: np.ndarray) -> None:
    mop = op.mos[dev.name]
    d, g, s, b = (system.node(n) for n in dev.nodes)
    if mop.vds < 0:  # device conducting in reverse: swap roles
        d, s = s, d
    add = system._add
    gm, gds, gmb = mop.gm, mop.gds, mop.gmb
    add(G, d, g, gm)
    add(G, d, d, gds)
    add(G, d, b, gmb)
    add(G, d, s, -(gm + gds + gmb))
    add(G, s, g, -gm)
    add(G, s, d, -gds)
    add(G, s, b, -gmb)
    add(G, s, s, gm + gds + gmb)
    # Meyer capacitances between gate and each terminal.
    cgs, cgd, cgb = mos_capacitances(dev, mop.region)
    _stamp_cap(system, C, g, s, cgs)
    _stamp_cap(system, C, g, d, cgd)
    _stamp_cap(system, C, g, b, cgb)
    # Junction capacitances drain/source to bulk (area ~ W * 2.5 L_diff).
    diff_area = dev.w * dev.m * 2.5 * dev.l
    cj = dev.model.cj * diff_area + dev.model.cjsw * 2 * (dev.w * dev.m)
    _stamp_cap(system, C, d, b, cj)
    _stamp_cap(system, C, s, b, cj)


def _stamp_diode_small_signal(system: MnaSystem, dev: Diode, x: np.ndarray,
                              G: np.ndarray, C: np.ndarray) -> None:
    a, c = system.node(dev.nodes[0]), system.node(dev.nodes[1])
    va = x[a] if a >= 0 else 0.0
    vc = x[c] if c >= 0 else 0.0
    n_vt = dev.model.emission * THERMAL_VOLTAGE
    i_s = dev.model.i_sat * dev.area
    gd = i_s * math.exp(min((va - vc) / n_vt, 40.0)) / n_vt
    system._add(G, a, a, gd)
    system._add(G, c, c, gd)
    system._add(G, a, c, -gd)
    system._add(G, c, a, -gd)
    _stamp_cap(system, C, a, c, dev.model.cj0 * dev.area)


def _stamp_cap(system: MnaSystem, C: np.ndarray, a: int, b: int,
               value: float) -> None:
    if value == 0.0:
        return
    system._add(C, a, a, value)
    system._add(C, b, b, value)
    system._add(C, a, b, -value)
    system._add(C, b, a, -value)


@dataclass
class AcResult:
    """Frequency sweep result: per-net complex voltage arrays."""

    freqs: np.ndarray
    phasors: dict[str, np.ndarray]

    def v(self, net: str) -> np.ndarray:
        if net == "0":
            return np.zeros_like(self.freqs, dtype=complex)
        return self.phasors[net]

    def magnitude_db(self, net: str) -> np.ndarray:
        mag = np.abs(self.v(net))
        return 20.0 * np.log10(np.maximum(mag, 1e-300))

    def phase_deg(self, net: str) -> np.ndarray:
        return np.unwrap(np.angle(self.v(net))) * 180.0 / math.pi


def ac_analysis(circuit: Circuit, freqs: np.ndarray,
                op: OperatingPoint | None = None,
                ss: SmallSignalSystem | None = None) -> AcResult:
    """Sweep ``(G + jωC)x = b_ac`` over ``freqs`` (Hz).

    Thin wrapper over :func:`repro.analysis.api.run` with an ``AcSpec``.
    """
    from repro.analysis import api
    return api.run(circuit, api.AcSpec(freqs=freqs, op=op, ss=ss))


def _ac_analysis_impl(circuit: Circuit, freqs: np.ndarray,
                      op: OperatingPoint | None = None,
                      ss: SmallSignalSystem | None = None) -> AcResult:
    freqs = np.asarray(freqs, dtype=float)
    if ss is None:
        ss = small_signal_system(circuit, op)
    n_nodes = len(ss.system.node_names)
    data = np.zeros((len(freqs), n_nodes), dtype=complex)
    for k, f in enumerate(freqs):
        x = ss.solve_at(f)
        data[k, :] = x[:n_nodes]
    phasors = {
        net: data[:, i] for net, i in ss.system.node_index.items()
    }
    return AcResult(freqs, phasors)


def logspace_frequencies(f_start: float = 1.0, f_stop: float = 1e9,
                         points_per_decade: int = 10) -> np.ndarray:
    decades = math.log10(f_stop / f_start)
    n = max(2, int(round(decades * points_per_decade)) + 1)
    return np.logspace(math.log10(f_start), math.log10(f_stop), n)


@dataclass
class BodeMetrics:
    """Standard opamp AC metrics extracted from a sweep."""

    dc_gain: float            # linear V/V
    dc_gain_db: float
    bandwidth_3db: float      # Hz
    unity_gain_freq: float    # Hz (GBW)
    phase_margin_deg: float


def bode_metrics(result: AcResult, out: str) -> BodeMetrics:
    """Extract gain/bandwidth/phase-margin numbers from an AC sweep.

    Assumes the sweep starts well below the dominant pole.  Interpolates
    crossings on the log-frequency axis.
    """
    mag = np.abs(result.v(out))
    if mag[0] <= 0:
        raise ValueError(f"zero output magnitude at {out!r}")
    phase = np.unwrap(np.angle(result.v(out)))
    freqs = result.freqs
    dc_gain = float(mag[0])
    dc_gain_db = 20.0 * math.log10(dc_gain)

    bandwidth = _crossing(freqs, mag, dc_gain / math.sqrt(2.0))
    unity = _crossing(freqs, mag, 1.0)
    if unity is None:
        pm = float("nan")
    else:
        ph_at_unity = float(np.interp(
            math.log10(unity), np.log10(freqs), phase))
        ph0 = phase[0]
        # Phase margin: 180° minus accumulated phase lag from DC.
        pm = 180.0 - abs(ph_at_unity - ph0) * 180.0 / math.pi
    return BodeMetrics(
        dc_gain=dc_gain,
        dc_gain_db=dc_gain_db,
        bandwidth_3db=bandwidth if bandwidth is not None else float("nan"),
        unity_gain_freq=unity if unity is not None else float("nan"),
        phase_margin_deg=pm,
    )


def _crossing(freqs: np.ndarray, mag: np.ndarray,
              level: float) -> float | None:
    """First downward crossing of ``mag`` through ``level`` (log interp)."""
    below = mag < level
    if not below.any():
        return None
    if below[0]:
        return float(freqs[0])
    k = int(np.argmax(below))
    f0, f1 = freqs[k - 1], freqs[k]
    m0, m1 = mag[k - 1], mag[k]
    if m0 == m1:
        return float(f1)
    t = (math.log10(m0 / level)) / math.log10(m0 / m1)
    return float(10 ** (math.log10(f0) + t * math.log10(f1 / f0)))
