"""Modified nodal analysis: matrix construction for the circuit simulator.

The builder assigns one unknown per non-ground net plus one branch-current
unknown per voltage-defined element (independent V sources, VCVS, CCVS and
inductors).  Linear elements stamp into a conductance matrix ``G``, a
susceptance/storage matrix ``C`` (so the s-domain system is ``(G + sC)x =
b``), and source vectors.  Nonlinear devices (MOSFETs, diodes) are evaluated
per Newton iteration through :meth:`MnaSystem.stamp_nonlinear`.

Matrices are dense numpy arrays: cell-level analog circuits have tens of
nodes, for which dense LU is faster than sparse bookkeeping.  The power-grid
tool, which needs thousands of nodes, builds its own sparse system.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.circuits.devices import (
    BOLTZMANN,
    Q_ELECTRON,
    ROOM_TEMP_K,
    THERMAL_VOLTAGE,
    Capacitor,
    Cccs,
    Ccvs,
    CurrentSource,
    Diode,
    Inductor,
    Mosfet,
    Resistor,
    SubcktInstance,
    Vccs,
    Vcvs,
    VoltageSource,
)
from repro.circuits.netlist import GROUND, Circuit, NetlistError

GMIN_DEFAULT = 1e-12


class SingularCircuitError(NetlistError):
    """Raised when the MNA matrix is structurally or numerically singular."""


@dataclass
class MosOperatingPoint:
    """Small-signal view of one MOSFET at a DC operating point."""

    name: str
    region: str           # "cutoff" | "triode" | "saturation"
    ids: float            # drain current (positive into drain for NMOS)
    vgs: float
    vds: float
    vbs: float
    vth: float
    vov: float            # overdrive vgs - vth
    gm: float
    gds: float
    gmb: float
    cgs: float
    cgd: float
    cgb: float

    @property
    def vdsat(self) -> float:
        return max(self.vov, 0.0)


class MnaSystem:
    """Index assignment plus stamping for one flattened circuit."""

    def __init__(self, circuit: Circuit, gmin: float = GMIN_DEFAULT):
        flat = circuit.flattened() if circuit.subckts else circuit
        if any(isinstance(d, SubcktInstance) for d in flat.devices):
            raise NetlistError("circuit contains unresolved subckt instances")
        self.circuit = flat
        self.gmin = gmin
        nets = flat.nets()
        if GROUND not in nets:
            raise NetlistError(
                "circuit has no ground net '0'; analyses need a reference")
        self.node_names = [n for n in nets if n != GROUND]
        self.node_index = {n: i for i, n in enumerate(self.node_names)}
        # Branch-current unknowns.
        self.branch_devices = [
            d for d in flat.devices
            if isinstance(d, (VoltageSource, Vcvs, Ccvs, Inductor))
        ]
        self.branch_index = {
            d.name: len(self.node_names) + k
            for k, d in enumerate(self.branch_devices)
        }
        self.size = len(self.node_names) + len(self.branch_devices)
        self.nonlinear = [
            d for d in flat.devices if isinstance(d, (Mosfet, Diode))
        ]
        self._validate_controls(flat)

    def _validate_controls(self, flat: Circuit) -> None:
        for d in flat.devices:
            if isinstance(d, (Cccs, Ccvs)):
                if d.control not in self.branch_index:
                    # CCVS defines its own branch; its *control* must be a V source.
                    names = {b.name for b in self.branch_devices
                             if isinstance(b, VoltageSource)}
                    if d.control not in names:
                        raise NetlistError(
                            f"{d.name}: control source {d.control!r} is not a "
                            "voltage source in the circuit")

    # ------------------------------------------------------------------
    def node(self, net: str) -> int:
        """Index of a net, or -1 for ground."""
        if net == GROUND:
            return -1
        return self.node_index[net]

    def _add(self, mat: np.ndarray, i: int, j: int, value: float) -> None:
        if i >= 0 and j >= 0:
            mat[i, j] += value

    def _add_rhs(self, vec: np.ndarray, i: int, value: float) -> None:
        if i >= 0:
            vec[i] += value

    # ------------------------------------------------------------------
    def linear_stamps(self) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        """Return (G, C, b_dc, b_ac) for all linear elements.

        ``b_ac`` is complex: AC magnitudes are stamped with zero phase.
        """
        n = self.size
        G = np.zeros((n, n))
        C = np.zeros((n, n))
        b_dc = np.zeros(n)
        b_ac = np.zeros(n, dtype=complex)
        for dev in self.circuit.devices:
            self._stamp_linear_device(dev, G, C, b_dc, b_ac)
        # gmin from every node to ground aids DC convergence and makes
        # floating nodes solvable.
        for i in range(len(self.node_names)):
            G[i, i] += self.gmin
        return G, C, b_dc, b_ac

    def _stamp_linear_device(self, dev, G, C, b_dc, b_ac) -> None:
        if isinstance(dev, Resistor):
            g = 1.0 / dev.value
            a, b = self.node(dev.nodes[0]), self.node(dev.nodes[1])
            self._stamp_conductance(G, a, b, g)
        elif isinstance(dev, Capacitor):
            a, b = self.node(dev.nodes[0]), self.node(dev.nodes[1])
            self._stamp_conductance(C, a, b, dev.value)
        elif isinstance(dev, Inductor):
            a, b = self.node(dev.nodes[0]), self.node(dev.nodes[1])
            k = self.branch_index[dev.name]
            self._add(G, a, k, 1.0)
            self._add(G, b, k, -1.0)
            self._add(G, k, a, 1.0)
            self._add(G, k, b, -1.0)
            C[k, k] -= dev.value  # v = sL·i  →  row: v_a - v_b - sL·i = 0
        elif isinstance(dev, VoltageSource):
            a, b = self.node(dev.nodes[0]), self.node(dev.nodes[1])
            k = self.branch_index[dev.name]
            self._add(G, a, k, 1.0)
            self._add(G, b, k, -1.0)
            self._add(G, k, a, 1.0)
            self._add(G, k, b, -1.0)
            b_dc[k] += dev.dc
            b_ac[k] += dev.ac
        elif isinstance(dev, CurrentSource):
            a, b = self.node(dev.nodes[0]), self.node(dev.nodes[1])
            # Positive current flows from node[0] through the source to node[1].
            self._add_rhs(b_dc, a, -dev.dc)
            self._add_rhs(b_dc, b, dev.dc)
            if dev.ac:
                if a >= 0:
                    b_ac[a] += -dev.ac
                if b >= 0:
                    b_ac[b] += dev.ac
        elif isinstance(dev, Vcvs):
            op, om, cp, cm = (self.node(n) for n in dev.nodes)
            k = self.branch_index[dev.name]
            self._add(G, op, k, 1.0)
            self._add(G, om, k, -1.0)
            self._add(G, k, op, 1.0)
            self._add(G, k, om, -1.0)
            self._add(G, k, cp, -dev.gain)
            self._add(G, k, cm, dev.gain)
        elif isinstance(dev, Vccs):
            op, om, cp, cm = (self.node(n) for n in dev.nodes)
            self._add(G, op, cp, dev.gm)
            self._add(G, op, cm, -dev.gm)
            self._add(G, om, cp, -dev.gm)
            self._add(G, om, cm, dev.gm)
        elif isinstance(dev, Cccs):
            a, b = self.node(dev.nodes[0]), self.node(dev.nodes[1])
            kc = self.branch_index[dev.control]
            self._add(G, a, kc, dev.gain)
            self._add(G, b, kc, -dev.gain)
        elif isinstance(dev, Ccvs):
            a, b = self.node(dev.nodes[0]), self.node(dev.nodes[1])
            k = self.branch_index[dev.name]
            kc = self.branch_index[dev.control]
            self._add(G, a, k, 1.0)
            self._add(G, b, k, -1.0)
            self._add(G, k, a, 1.0)
            self._add(G, k, b, -1.0)
            self._add(G, k, kc, -dev.transres)
        elif isinstance(dev, (Mosfet, Diode)):
            pass  # handled per Newton iteration
        else:
            raise NetlistError(f"cannot stamp device type {type(dev).__name__}")

    def _stamp_conductance(self, mat, a: int, b: int, g: float) -> None:
        self._add(mat, a, a, g)
        self._add(mat, b, b, g)
        self._add(mat, a, b, -g)
        self._add(mat, b, a, -g)

    # ------------------------------------------------------------------
    # Nonlinear device evaluation
    # ------------------------------------------------------------------
    def voltage(self, x: np.ndarray, net: str) -> float:
        i = self.node(net)
        return 0.0 if i < 0 else float(x[i])

    def stamp_nonlinear(self, x: np.ndarray, G: np.ndarray,
                        rhs: np.ndarray, gmin: float | None = None) -> None:
        """Add companion-model stamps of all nonlinear devices at point ``x``.

        ``rhs`` receives the Newton linearization sources so that solving
        ``(G_lin + G_nl) x_new = b + rhs`` performs one NR step.

        ``x``/``G``/``rhs`` must be the scalar per-circuit arrays: one
        solution vector of length ``size`` and one ``(size, size)``
        matrix.  Stacked ``(K, ...)`` batch tensors are rejected —
        the per-device stamping below indexes scalars and would silently
        produce garbage on a batch axis; batched evaluation goes through
        :mod:`repro.analysis.batch` instead.
        """
        x = np.asarray(x)
        if x.ndim != 1 or x.shape[0] != self.size:
            raise ValueError(
                f"stamp_nonlinear expects a 1-D solution vector of length "
                f"{self.size}, got shape {x.shape}; stacked (K, n) batch "
                f"tensors belong in repro.analysis.batch, not here")
        if not np.issubdtype(x.dtype, np.floating):
            raise TypeError(
                f"stamp_nonlinear expects a real float solution vector, "
                f"got dtype {x.dtype}")
        if np.asarray(G).shape != (self.size, self.size):
            raise ValueError(
                f"stamp_nonlinear expects a ({self.size}, {self.size}) "
                f"Jacobian, got shape {np.asarray(G).shape}; stacked "
                f"(K, n, n) batch tensors belong in repro.analysis.batch")
        gmin = self.gmin if gmin is None else gmin
        for dev in self.nonlinear:
            if isinstance(dev, Mosfet):
                self._stamp_mosfet(dev, x, G, rhs, gmin)
            else:
                self._stamp_diode(dev, x, G, rhs, gmin)

    def _stamp_mosfet(self, dev: Mosfet, x, G, rhs, gmin: float) -> None:
        d, g, s, b = (self.node(n) for n in dev.nodes)
        vd = 0.0 if d < 0 else x[d]
        vg = 0.0 if g < 0 else x[g]
        vs = 0.0 if s < 0 else x[s]
        vb = 0.0 if b < 0 else x[b]
        # Level-1 devices are symmetric: if vds < 0 in device polarity,
        # stamp with drain and source exchanged.
        if dev.model.sign * (vd - vs) < 0:
            d, s = s, d
            vd, vs = vs, vd
        ids, gm, gds, gmb, _ = mos_level1(dev, vd, vg, vs, vb)
        gds = gds + gmin
        # Newton companion: i_eq = ids - gm·vgs - gds·vds - gmb·vbs.
        ieq = ids - gm * (vg - vs) - gds * (vd - vs) - gmb * (vb - vs)
        # ids flows from drain node to source node through the device.
        self._add(G, d, g, gm)
        self._add(G, d, d, gds)
        self._add(G, d, b, gmb)
        self._add(G, d, s, -(gm + gds + gmb))
        self._add(G, s, g, -gm)
        self._add(G, s, d, -gds)
        self._add(G, s, b, -gmb)
        self._add(G, s, s, gm + gds + gmb)
        self._add_rhs(rhs, d, -ieq)
        self._add_rhs(rhs, s, ieq)

    def _stamp_diode(self, dev: Diode, x, G, rhs, gmin: float) -> None:
        a, c = self.node(dev.nodes[0]), self.node(dev.nodes[1])
        va = 0.0 if a < 0 else x[a]
        vc = 0.0 if c < 0 else x[c]
        vd = va - vc
        i_s = dev.model.i_sat * dev.area
        n_vt = dev.model.emission * THERMAL_VOLTAGE
        # Limit the exponent for numeric safety (SPICE-style pnjlim).
        vcrit = n_vt * math.log(n_vt / (math.sqrt(2.0) * i_s))
        vd_lim = min(vd, vcrit + 5 * n_vt)
        ex = math.exp(vd_lim / n_vt)
        idio = i_s * (ex - 1.0)
        gd = i_s * ex / n_vt + gmin
        ieq = idio - gd * vd
        self._add(G, a, a, gd)
        self._add(G, c, c, gd)
        self._add(G, a, c, -gd)
        self._add(G, c, a, -gd)
        self._add_rhs(rhs, a, -ieq)
        self._add_rhs(rhs, c, ieq)

    def nonlinear_currents(self, x: np.ndarray) -> np.ndarray:
        """Vector of nonlinear device currents flowing *into* each node.

        This is f_nl(x) in the residual form ``G·x + f_nl(x) + C·ẋ = b``;
        the transient integrator needs it for the trapezoidal history term.
        """
        f = np.zeros(self.size)
        for dev in self.nonlinear:
            if isinstance(dev, Mosfet):
                d, g, s, b = (self.node(n) for n in dev.nodes)
                vd = 0.0 if d < 0 else x[d]
                vg = 0.0 if g < 0 else x[g]
                vs = 0.0 if s < 0 else x[s]
                vb = 0.0 if b < 0 else x[b]
                if dev.model.sign * (vd - vs) < 0:
                    d, s = s, d
                    vd, vs = vs, vd
                ids, _, _, _, _ = mos_level1(dev, vd, vg, vs, vb)
                self._add_rhs(f, d, ids)
                self._add_rhs(f, s, -ids)
            else:
                a, c = self.node(dev.nodes[0]), self.node(dev.nodes[1])
                va = 0.0 if a < 0 else x[a]
                vc = 0.0 if c < 0 else x[c]
                n_vt = dev.model.emission * THERMAL_VOLTAGE
                i_s = dev.model.i_sat * dev.area
                idio = i_s * (math.exp(min((va - vc) / n_vt, 40.0)) - 1.0)
                self._add_rhs(f, a, idio)
                self._add_rhs(f, c, -idio)
        return f

    # ------------------------------------------------------------------
    def mos_op(self, dev: Mosfet, x: np.ndarray) -> MosOperatingPoint:
        """Full operating-point record for one MOSFET at solution ``x``."""
        vd = self.voltage(x, dev.drain)
        vg = self.voltage(x, dev.gate)
        vs = self.voltage(x, dev.source)
        vb = self.voltage(x, dev.bulk)
        flipped = dev.model.sign * (vd - vs) < 0
        if flipped:
            vd, vs = vs, vd
        ids, gm, gds, gmb, info = mos_level1(dev, vd, vg, vs, vb)
        if flipped:
            ids = -ids
            region, vth, vov, vgs, vds, vbs = info
            info = (region, vth, vov, vgs, -vds, vbs)
        region, vth, vov, vgs_eff, vds_eff, vbs_eff = info
        cgs, cgd, cgb = mos_capacitances(dev, region)
        return MosOperatingPoint(
            name=dev.name, region=region, ids=ids,
            vgs=vgs_eff, vds=vds_eff, vbs=vbs_eff, vth=vth, vov=vov,
            gm=gm, gds=gds, gmb=gmb, cgs=cgs, cgd=cgd, cgb=cgb)


def mos_level1(dev: Mosfet, vd: float, vg: float, vs: float, vb: float):
    """Level-1 MOS evaluation at given terminal voltages.

    The caller must orient the device so that ``vds >= 0`` in device
    polarity (level-1 devices are symmetric; :class:`MnaSystem` swaps the
    terminal indices when needed).

    Returns ``(ids, gm, gds, gmb, info)``: ``ids`` is the current flowing
    from the drain node to the source node through the channel (negative
    for PMOS conduction), the conductances are small-signal derivatives
    w.r.t. the circuit terminal voltages (always >= 0), and ``info`` is
    ``(region, vth, vov, vgs, vds, vbs)`` in device polarity.
    """
    model = dev.model
    sign = model.sign
    vgs = sign * (vg - vs)
    vds = sign * (vd - vs)
    vbs = sign * (vb - vs)
    vth = threshold_voltage(model, vbs)
    vov = vgs - vth
    beta = dev.beta
    # Body-effect transconductance factor dVth/dVbs.
    sq = math.sqrt(max(model.phi - vbs, 0.05))
    dvth_dvbs = -model.gamma / (2.0 * sq)
    lam = model.lambda_
    if vov <= 0:
        region = "cutoff"
        ids = 0.0
        gm = gds = gmb = 0.0
    elif vds >= vov:
        region = "saturation"
        ids = 0.5 * beta * vov * vov * (1.0 + lam * vds)
        gm = beta * vov * (1.0 + lam * vds)
        gds = 0.5 * beta * vov * vov * lam
        gmb = -gm * dvth_dvbs
    else:
        region = "triode"
        core = vov * vds - 0.5 * vds * vds
        ids = beta * core * (1.0 + lam * vds)
        gm = beta * vds * (1.0 + lam * vds)
        gds = beta * ((vov - vds) * (1.0 + lam * vds) + core * lam)
        gmb = -gm * dvth_dvbs
    # In circuit polarity the PMOS channel current flows source -> drain.
    info = (region, vth, vov, vgs, vds, vbs)
    return sign * ids, gm, gds, gmb, info


def threshold_voltage(model, vbs: float) -> float:
    """Body-effect-adjusted threshold: Vt = Vto + γ(√(φ−Vbs) − √φ)."""
    sq = math.sqrt(max(model.phi - vbs, 0.05))
    return model.vto + model.gamma * (sq - math.sqrt(model.phi))


def mos_capacitances(dev: Mosfet, region: str) -> tuple[float, float, float]:
    """Meyer-style gate capacitances (cgs, cgd, cgb) by operating region.

    Scalar-only: ``dev.w``/``dev.l`` must be plain floats.  A device
    carrying batched parameter arrays would silently produce array-valued
    capacitances that downstream stamping cannot index, so it is rejected
    here; batched evaluation keeps per-member scalar devices and stacks
    the assembled matrices instead (:mod:`repro.analysis.batch`).
    """
    if np.ndim(dev.w) != 0 or np.ndim(dev.l) != 0 or np.ndim(dev.m) != 0:
        raise TypeError(
            f"mos_capacitances({dev.name!r}) expects scalar W/L/m, got "
            f"shapes {np.shape(dev.w)}/{np.shape(dev.l)}/{np.shape(dev.m)}; "
            f"batched parameter arrays belong in repro.analysis.batch")
    if region not in ("saturation", "triode", "cutoff"):
        raise ValueError(
            f"mos_capacitances({dev.name!r}): unknown operating region "
            f"{region!r} (expected 'saturation', 'triode' or 'cutoff')")
    model = dev.model
    cox_total = model.cox * dev.w * dev.l * dev.m
    cov = model.cgdo * dev.w * dev.m
    if region == "saturation":
        return (2.0 / 3.0) * cox_total + cov, cov, 0.1 * cox_total
    if region == "triode":
        return 0.5 * cox_total + cov, 0.5 * cox_total + cov, 0.0
    return cov, cov, cox_total  # cutoff: gate sees bulk


def solve_dense(A: np.ndarray, b: np.ndarray) -> np.ndarray:
    """LU solve with a singularity guard and a helpful error message.

    Every failure mode is normalized onto :class:`SingularCircuitError`:
    LAPACK's ``LinAlgError`` (singular pivot), non-finite matrix entries
    (a zero-valued resistor stamps an infinite conductance and LAPACK
    returns NaNs instead of raising), and non-finite solutions.  Stacked
    ``(K, n, n)`` inputs are rejected — ``np.linalg.solve`` would happily
    broadcast them and return a tensor where callers expect a vector; the
    batched path is :func:`solve_dense_batched`, which also reports
    *which* member failed.
    """
    A = np.asarray(A)
    if A.ndim != 2:
        raise ValueError(
            f"solve_dense expects one (n, n) system, got shape {A.shape}; "
            f"use solve_dense_batched for stacked (K, n, n) batches")
    if not np.all(np.isfinite(A)):
        raise SingularCircuitError(
            "MNA matrix contains non-finite entries — check for "
            "zero-valued resistors or capacitors")
    try:
        x = np.linalg.solve(A, b)
    except np.linalg.LinAlgError as exc:
        raise SingularCircuitError(
            "MNA matrix is singular — check for floating nodes or "
            "voltage-source loops") from exc
    if not np.all(np.isfinite(x)):
        raise SingularCircuitError("MNA solution contains non-finite values")
    return x


class BatchSingularError(SingularCircuitError):
    """Singular member(s) inside a stacked batch solve.

    ``members`` holds the 0-based stack indices of every offending
    system, so a batched evaluator can drop exactly those candidates to
    the scalar fallback path and keep the rest vectorized.
    """

    def __init__(self, message: str, members: tuple[int, ...] = ()):
        super().__init__(message)
        self.members = tuple(int(m) for m in members)


def solve_dense_batched(A: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Solve ``K`` stacked dense systems ``A[k] @ x[k] = b[k]`` at once.

    ``A`` is ``(K, n, n)``; ``b`` is ``(K, n)`` or a single ``(n,)``
    right-hand side shared by every member.  Returns the ``(K, n)``
    solution stack.  One LAPACK call covers the whole batch; on failure
    the members are probed individually and a :class:`BatchSingularError`
    names every singular (or non-finite) member so callers can fall back
    per-point instead of discarding the batch.
    """
    A = np.asarray(A)
    if A.ndim != 3 or A.shape[-1] != A.shape[-2]:
        raise ValueError(
            f"solve_dense_batched expects a (K, n, n) stack, got shape "
            f"{A.shape}; use solve_dense for a single system")
    b = np.asarray(b)
    if b.ndim == 1:
        b = np.broadcast_to(b, (A.shape[0], b.shape[0]))
    if b.shape != A.shape[:2]:
        raise ValueError(
            f"solve_dense_batched: rhs shape {b.shape} does not match "
            f"matrix stack {A.shape} (expected {A.shape[:2]})")
    finite_in = np.all(np.isfinite(A), axis=(1, 2))
    if not np.all(finite_in):
        bad = tuple(int(k) for k in np.nonzero(~finite_in)[0])
        raise BatchSingularError(
            f"batch members {list(bad)} have non-finite MNA entries — "
            f"check for zero-valued resistors or capacitors", bad)
    try:
        # NumPy >= 2.0 treats a 2-D rhs as a broadcast *matrix*; the
        # explicit column dimension keeps it a stack of vectors.
        x = np.linalg.solve(A, b[..., None])[..., 0]
    except np.linalg.LinAlgError as exc:
        bad = _singular_members(A, b)
        raise BatchSingularError(
            f"batch members {list(bad)} are singular — check for floating "
            f"nodes or voltage-source loops", bad) from exc
    finite = np.all(np.isfinite(x), axis=1)
    if not np.all(finite):
        bad = tuple(int(k) for k in np.nonzero(~finite)[0])
        raise BatchSingularError(
            f"batch members {list(bad)} produced non-finite solutions", bad)
    return x


def _singular_members(A: np.ndarray, b: np.ndarray) -> tuple[int, ...]:
    """Probe each stack member on its own to attribute a batched failure."""
    bad = []
    for k in range(A.shape[0]):
        try:
            xk = np.linalg.solve(A[k], b[k])
        except np.linalg.LinAlgError:
            bad.append(k)
            continue
        if not np.all(np.isfinite(xk)):
            bad.append(k)
    if not bad:
        # LAPACK refused the stack but no member reproduces it alone;
        # blame every member rather than mask the failure.
        bad = list(range(A.shape[0]))
    return tuple(bad)
