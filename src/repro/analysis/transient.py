"""Transient analysis: trapezoidal integration with Newton at each step.

Solves ``G·x + f_nl(x) + C·ẋ = b(t)`` with the theta-method: backward Euler
for the first step (damps the inconsistent-initial-condition transient) and
trapezoidal afterwards.  Fixed time step with optional step halving when
Newton fails — good enough for the shaped-pulse and power-grid waveforms the
benchmarks need, and simple enough to audit.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.analysis.dcop import (
    ConvergenceError,
    _converged,
    dc_operating_point,
)
from repro.analysis.mna import MnaSystem, SingularCircuitError, solve_dense
from repro.analysis.solver import FactorizationCache
from repro.circuits.devices import CurrentSource, VoltageSource
from repro.circuits.netlist import Circuit
from repro.engine.trace import current_tracer


@dataclass
class TransientResult:
    """Time sweep result with convenience measurements."""

    times: np.ndarray
    voltages: dict[str, np.ndarray]
    branch_currents: dict[str, np.ndarray]

    def v(self, net: str) -> np.ndarray:
        if net == "0":
            return np.zeros_like(self.times)
        return self.voltages[net]

    def peak(self, net: str) -> tuple[float, float]:
        """(time, value) of the maximum-magnitude excursion from t=0 value."""
        wave = self.v(net)
        rel = wave - wave[0]
        k = int(np.argmax(np.abs(rel)))
        return float(self.times[k]), float(wave[k])

    def value_at(self, net: str, t: float) -> float:
        return float(np.interp(t, self.times, self.v(net)))

    def settling_time(self, net: str, final: float | None = None,
                      band: float = 0.01) -> float:
        """Last time the waveform leaves the ±band·|final| envelope."""
        wave = self.v(net)
        target = wave[-1] if final is None else final
        tol = band * max(abs(target), 1e-12)
        outside = np.abs(wave - target) > tol
        if not outside.any():
            return float(self.times[0])
        last = int(np.max(np.nonzero(outside)))
        if last + 1 >= len(self.times):
            return float(self.times[-1])
        return float(self.times[last + 1])


def transient(circuit: Circuit, t_stop: float, dt: float,
              x0: np.ndarray | None = None,
              use_ic_op: bool = True,
              max_halvings: int = 8) -> TransientResult:
    """Integrate the circuit from 0 to ``t_stop`` with base step ``dt``.

    Thin wrapper over :func:`repro.analysis.api.run` with a ``TranSpec``.
    """
    from repro.analysis import api
    return api.run(circuit, api.TranSpec(t_stop=t_stop, dt=dt, x0=x0,
                                         use_ic_op=use_ic_op,
                                         max_halvings=max_halvings))


def _transient_impl(circuit: Circuit, t_stop: float, dt: float,
                    x0: np.ndarray | None = None,
                    use_ic_op: bool = True,
                    max_halvings: int = 8) -> TransientResult:
    if t_stop <= 0 or dt <= 0:
        raise ValueError("t_stop and dt must be positive")
    system = MnaSystem(circuit)
    G, C, _, _ = system.linear_stamps()
    sources = [
        d for d in system.circuit.devices
        if isinstance(d, (VoltageSource, CurrentSource))
    ]

    if x0 is None and use_ic_op:
        ic_circuit = circuit.map_devices(_source_at_time_zero)
        x = dc_operating_point(ic_circuit).x
    elif x0 is not None:
        x = np.asarray(x0, dtype=float).copy()
    else:
        x = np.zeros(system.size)

    times = [0.0]
    states = [x.copy()]
    t = 0.0
    step = dt
    first_step = True
    # For circuits with an empty nonlinear stamp the theta-method matrix
    # G + (theta/h)·C depends only on (h, scheme): factor it once and
    # reuse it across every Newton iteration and timestep.  Nonlinear
    # circuits fall back transparently to per-iteration factorization.
    factors = FactorizationCache() if not system.nonlinear else None
    while t < t_stop - 1e-15 * t_stop:
        h = min(step, t_stop - t)
        ok, x_new = _step(system, G, C, sources, x, t, h,
                          backward_euler=first_step, factors=factors)
        halvings = 0
        while not ok and halvings < max_halvings:
            h /= 2.0
            halvings += 1
            ok, x_new = _step(system, G, C, sources, x, t, h,
                              backward_euler=True, factors=factors)
        if not ok:
            raise ConvergenceError(
                f"transient step at t={t:.4g}s failed after "
                f"{max_halvings} halvings")
        t += h
        x = x_new
        times.append(t)
        states.append(x.copy())
        first_step = False

    data = np.array(states)
    tvec = np.array(times)
    voltages = {
        net: data[:, i] for net, i in system.node_index.items()
    }
    currents = {
        name: data[:, k] for name, k in system.branch_index.items()
    }
    return TransientResult(tvec, voltages, currents)


def _source_at_time_zero(dev):
    from dataclasses import replace
    if isinstance(dev, (VoltageSource, CurrentSource)):
        return replace(dev, dc=dev.waveform.value_at(0.0, dev.dc))
    return dev


def _rhs_at_time(system: MnaSystem, sources, t: float) -> np.ndarray:
    """Source vector b(t) with waveforms evaluated at time t."""
    b = np.zeros(system.size)
    for dev in sources:
        value = dev.waveform.value_at(t, dev.dc)
        if isinstance(dev, VoltageSource):
            b[system.branch_index[dev.name]] += value
        else:
            a, bb = system.node(dev.nodes[0]), system.node(dev.nodes[1])
            if a >= 0:
                b[a] -= value
            if bb >= 0:
                b[bb] += value
    return b


def _newton_nonconv(t: float, h: float) -> None:
    """Count an exhausted Newton loop on the active tracer.

    A step that burns through all 60 iterations used to return
    ``(False, x)`` with no trace: the integrator either silently halved
    the step or raised much later with no record of *where* Newton
    struggled.  The counter (``analysis.newton_nonconv``) flows into
    ``engine.report()`` and the run manifest like every other
    ``analysis.*`` counter.
    """
    tracer = current_tracer()
    if tracer is not None:
        tracer.count("analysis.newton_nonconv")


def _step(system: MnaSystem, G: np.ndarray, C: np.ndarray, sources,
          x0: np.ndarray, t: float, h: float,
          backward_euler: bool,
          factors: FactorizationCache | None = None
          ) -> tuple[bool, np.ndarray]:
    """One theta-method step; returns (converged, x_new).

    ``factors`` (only passed for circuits with no nonlinear devices)
    caches the LU factorization of ``G + (theta/h)·C`` keyed by
    ``(h, scheme)`` so repeated timesteps — and repeated halvings to the
    same ``h`` — skip straight to the triangular solves.
    """
    b1 = _rhs_at_time(system, sources, t + h)
    if backward_euler:
        # (G + C/h + J) x1 = b1 + C/h·x0 + NR terms
        const = b1 + C @ x0 / h
        mat_c = C / h
    else:
        b0 = _rhs_at_time(system, sources, t)
        f0 = system.nonlinear_currents(x0)
        const = b1 + b0 - G @ x0 - f0 + (2.0 / h) * (C @ x0)
        mat_c = 2.0 * C / h
    x = x0.copy()
    n_nodes = len(system.node_names)
    base_op = None
    if factors is not None:
        try:
            base_op = factors.get_or_factorize(
                (h, backward_euler), lambda: G + mat_c)
        except SingularCircuitError:
            return False, x
    for _ in range(60):
        rhs = const.copy()
        try:
            if base_op is not None:
                x_new = base_op.solve(rhs)
            else:
                A = G + mat_c
                system.stamp_nonlinear(x, A, rhs)
                x_new = solve_dense(A, rhs)
        except SingularCircuitError:
            return False, x
        delta = x_new - x
        dv = delta[:n_nodes]
        max_dv = np.max(np.abs(dv)) if n_nodes else 0.0
        if max_dv > 1.0:
            delta = delta * (1.0 / max_dv)
        x = x + delta
        if _converged(delta, x, n_nodes):
            return True, x
    _newton_nonconv(t, h)
    return False, x
