"""Batched multi-point evaluation kernels: stamp once, evaluate K sizings.

A sizing sweep evaluates many *same-topology* candidates — an annealer
population, a GA generation, a ``MicroBatcher`` same-workload batch.  The
scalar path re-runs Python MNA assembly and a fresh LU for every candidate.
This module replaces that inner loop with a symbolic-once/evaluate-many
kernel:

* :class:`StampPlan` — built once per topology.  It walks the flattened
  device list in the *exact* order :meth:`MnaSystem.linear_stamps` does and
  records, for every scalar stamp, the (row, col) target and a
  parameter-slot + value-op (``+p``, ``-p``, ``+1/p``, ``-1/p``, ``±1``).
  A batch of K sizings then assembles into stacked ``(K, n, n)`` G/C
  tensors with a single ``np.add.at`` per matrix — bit-identical per slice
  to K scalar stamping passes, because ``np.add.at`` accumulates
  duplicate indices sequentially and the entries are emitted k-major /
  stamp-order-minor.
* :func:`batched_dc` / :func:`batched_ac` / :func:`batched_transient` /
  :func:`batched_noise` — linear analyses as batched dense LU
  (:func:`~repro.analysis.mna.solve_dense_batched`) over the stacked axis.
  Nonlinear members keep their per-member Newton (``analysis.dcop``) and
  only the linear(ized) sweeps are stacked.
* :func:`run_batch` — the dispatch front door mirroring
  :func:`repro.analysis.api.run`: takes one spec and K circuits, batches
  what it can, and falls back to the per-point scalar path for everything
  else (nonlinear DC/transient, warm starts, shared ``op``/``ss`` objects,
  singular members) with ``kernel.fallback.<kind>`` counters explaining
  every non-vectorized evaluation.

Numerical contract (enforced by ``tests/test_batch_kernels.py``):

* assembled stamps are **bitwise identical** to ``MnaSystem.linear_stamps``;
* a singleton batch delegates to the scalar path and is **bit-identical**;
* K >= 2 batched results match scalar results to rtol 1e-9 — the batched
  LAPACK ``gesv`` stack and the scalar scipy LU factorizations are not
  bit-equal, so exact equality is deliberately *not* promised there.
"""

from __future__ import annotations

import hashlib
import math

import numpy as np

from repro.analysis.ac import AcResult, small_signal_system
from repro.analysis.dcop import ConvergenceError, OperatingPoint, _converged
from repro.analysis.mna import (
    GMIN_DEFAULT,
    BatchSingularError,
    MnaSystem,
    solve_dense_batched,
)
from repro.analysis.noise import (
    FOUR_KT,
    NoiseContribution,
    NoiseResult,
    _const_psd,
    _noise_injections,
)
from repro.analysis.transient import (
    TransientResult,
    _source_at_time_zero,
)
from repro.circuits.devices import (
    Capacitor,
    Cccs,
    Ccvs,
    CurrentSource,
    Diode,
    Inductor,
    Mosfet,
    Resistor,
    Vccs,
    Vcvs,
    VoltageSource,
)
from repro.circuits.netlist import Circuit, NetlistError
from repro.engine.trace import current_tracer


class BatchTopologyError(NetlistError):
    """A circuit does not fit the batch: wrong topology or unbatchable spec."""


def _count(name: str, n: int = 1) -> None:
    tracer = current_tracer()
    if tracer is not None:
        tracer.count(name, n)


def _flat(circuit: Circuit) -> Circuit:
    return circuit.flattened() if circuit.subckts else circuit


def topology_signature(circuit: Circuit) -> str:
    """Structural fingerprint: device classes, names, nodes and models.

    Two circuits with the same signature differ only in element *values*
    (R/C/L, source levels, controlled-source gains, MOS W/L) and can share
    one :class:`StampPlan` / one batch.  Values are deliberately excluded.
    """
    parts = []
    for dev in _flat(circuit).devices:
        model = getattr(dev, "model", None)
        parts.append((
            type(dev).__name__,
            dev.name,
            tuple(dev.nodes),
            getattr(dev, "control", "") or "",
            getattr(model, "name", "") if model is not None else "",
        ))
    blob = repr(parts).encode("utf-8")
    return hashlib.sha256(blob).hexdigest()


# Value ops for one recorded stamp entry: how the stamped coefficient is
# derived from the device parameter in slot ``s`` of the parameter vector.
_ID = 0        # +p        (capacitor value, source level, gm, gain)
_NEG = 1       # -p        (inductor C[k,k], -gain, -transres)
_INV = 2       # +1/p      (resistor conductance)
_NEG_INV = 3   # -1/p
_ONE = 4       # +1.0      (branch incidence)
_NEG_ONE = 5   # -1.0

_NEGATED = {_ID: _NEG, _INV: _NEG_INV, _ONE: _NEG_ONE}

# Linear parameter attributes read per device class, in stamp order.
_PARAM_ATTRS = {
    Resistor: ("value",),
    Capacitor: ("value",),
    Inductor: ("value",),
    VoltageSource: ("dc", "ac"),
    CurrentSource: ("dc", "ac"),
    Vcvs: ("gain",),
    Vccs: ("gm",),
    Cccs: ("gain",),
    Ccvs: ("transres",),
    Mosfet: (),
    Diode: (),
}


class StampPlan:
    """Symbolic stamp recording for one topology.

    Built once from a template circuit; :meth:`extract_params` pulls the
    per-candidate parameter vector out of any same-topology circuit (and
    rejects everything else with :class:`BatchTopologyError`), and
    :meth:`assemble` turns a ``(K, P)`` parameter block into stacked
    ``(K, n, n)`` G/C tensors plus ``(K, n)`` source vectors.
    """

    def __init__(self, circuit: Circuit, gmin: float = GMIN_DEFAULT):
        system = MnaSystem(circuit, gmin=gmin)
        self.system = system
        self.signature = topology_signature(circuit)
        self.size = system.size
        self.n_nodes = len(system.node_names)
        self.gmin = gmin
        self.nonlinear = bool(system.nonlinear)
        self._schema: list[tuple[str, str, tuple, str, tuple]] = []
        self.n_params = 0
        # Per-target entry lists; matrices carry (row, col), vectors (row,).
        self._entries = {"G": ([], [], [], []), "C": ([], [], [], []),
                         "b_dc": ([], [], []), "b_ac": ([], [], [])}
        for dev in system.circuit.devices:
            self._plan_device(dev, system)
        # Freeze to index arrays for np.add.at.
        self._mat = {}
        for key in ("G", "C"):
            rows, cols, kinds, slots = self._entries[key]
            self._mat[key] = (np.asarray(rows, dtype=np.intp),
                              np.asarray(cols, dtype=np.intp),
                              tuple(kinds), tuple(slots))
        self._vec = {}
        for key in ("b_dc", "b_ac"):
            rows, kinds, slots = self._entries[key]
            self._vec[key] = (np.asarray(rows, dtype=np.intp),
                              tuple(kinds), tuple(slots))
        del self._entries
        _count("kernel.plan_builds")

    # -- construction --------------------------------------------------
    def _slot(self) -> int:
        s = self.n_params
        self.n_params += 1
        return s

    def _mat_entry(self, target: str, i: int, j: int, kind: int,
                   slot: int = -1) -> None:
        if i >= 0 and j >= 0:
            rows, cols, kinds, slots = self._entries[target]
            rows.append(i)
            cols.append(j)
            kinds.append(kind)
            slots.append(slot)

    def _vec_entry(self, target: str, i: int, kind: int, slot: int) -> None:
        if i >= 0:
            rows, kinds, slots = self._entries[target]
            rows.append(i)
            kinds.append(kind)
            slots.append(slot)

    def _quad(self, target: str, a: int, b: int, kind: int,
              slot: int) -> None:
        # Mirrors MnaSystem._stamp_conductance entry order exactly.
        self._mat_entry(target, a, a, kind, slot)
        self._mat_entry(target, b, b, kind, slot)
        self._mat_entry(target, a, b, _NEGATED[kind], slot)
        self._mat_entry(target, b, a, _NEGATED[kind], slot)

    def _branch_quad(self, a: int, b: int, k: int) -> None:
        self._mat_entry("G", a, k, _ONE)
        self._mat_entry("G", b, k, _NEG_ONE)
        self._mat_entry("G", k, a, _ONE)
        self._mat_entry("G", k, b, _NEG_ONE)

    def _plan_device(self, dev, system: MnaSystem) -> None:
        node = system.node
        attrs = _PARAM_ATTRS.get(type(dev))
        if attrs is None:
            raise NetlistError(
                f"cannot plan device type {type(dev).__name__}")
        self._schema.append((
            type(dev).__name__, dev.name, tuple(dev.nodes),
            getattr(dev, "control", "") or "", attrs))
        if isinstance(dev, Resistor):
            s = self._slot()
            a, b = node(dev.nodes[0]), node(dev.nodes[1])
            self._quad("G", a, b, _INV, s)
        elif isinstance(dev, Capacitor):
            s = self._slot()
            a, b = node(dev.nodes[0]), node(dev.nodes[1])
            self._quad("C", a, b, _ID, s)
        elif isinstance(dev, Inductor):
            s = self._slot()
            a, b = node(dev.nodes[0]), node(dev.nodes[1])
            k = system.branch_index[dev.name]
            self._branch_quad(a, b, k)
            self._mat_entry("C", k, k, _NEG, s)
        elif isinstance(dev, VoltageSource):
            s_dc, s_ac = self._slot(), self._slot()
            a, b = node(dev.nodes[0]), node(dev.nodes[1])
            k = system.branch_index[dev.name]
            self._branch_quad(a, b, k)
            self._vec_entry("b_dc", k, _ID, s_dc)
            self._vec_entry("b_ac", k, _ID, s_ac)
        elif isinstance(dev, CurrentSource):
            s_dc, s_ac = self._slot(), self._slot()
            a, b = node(dev.nodes[0]), node(dev.nodes[1])
            self._vec_entry("b_dc", a, _NEG, s_dc)
            self._vec_entry("b_dc", b, _ID, s_dc)
            # The scalar path guards this stamp with ``if dev.ac:`` —
            # always recording it is bit-identical (x + ±0.0 == x).
            self._vec_entry("b_ac", a, _NEG, s_ac)
            self._vec_entry("b_ac", b, _ID, s_ac)
        elif isinstance(dev, Vcvs):
            s = self._slot()
            op, om, cp, cm = (node(n) for n in dev.nodes)
            k = system.branch_index[dev.name]
            self._branch_quad(op, om, k)
            self._mat_entry("G", k, cp, _NEG, s)
            self._mat_entry("G", k, cm, _ID, s)
        elif isinstance(dev, Vccs):
            s = self._slot()
            op, om, cp, cm = (node(n) for n in dev.nodes)
            self._mat_entry("G", op, cp, _ID, s)
            self._mat_entry("G", op, cm, _NEG, s)
            self._mat_entry("G", om, cp, _NEG, s)
            self._mat_entry("G", om, cm, _ID, s)
        elif isinstance(dev, Cccs):
            s = self._slot()
            a, b = node(dev.nodes[0]), node(dev.nodes[1])
            kc = system.branch_index[dev.control]
            self._mat_entry("G", a, kc, _ID, s)
            self._mat_entry("G", b, kc, _NEG, s)
        elif isinstance(dev, Ccvs):
            s = self._slot()
            a, b = node(dev.nodes[0]), node(dev.nodes[1])
            k = system.branch_index[dev.name]
            kc = system.branch_index[dev.control]
            self._branch_quad(a, b, k)
            self._mat_entry("G", k, kc, _NEG, s)
        # Mosfet / Diode: no linear stamps — handled per Newton iteration.

    # -- per-candidate parameter extraction ----------------------------
    def extract_params(self, circuit: Circuit) -> np.ndarray:
        """Parameter vector of one candidate, validated against the plan."""
        devices = _flat(circuit).devices
        if len(devices) != len(self._schema):
            raise BatchTopologyError(
                f"candidate has {len(devices)} devices, plan topology has "
                f"{len(self._schema)}")
        out = np.empty(self.n_params)
        i = 0
        for dev, (cls, name, nodes, control, attrs) in zip(
                devices, self._schema):
            if (type(dev).__name__ != cls or dev.name != name
                    or tuple(dev.nodes) != nodes
                    or (getattr(dev, "control", "") or "") != control):
                raise BatchTopologyError(
                    f"device {dev.name!r} ({type(dev).__name__} on "
                    f"{dev.nodes}) does not match plan device {name!r} "
                    f"({cls} on {nodes})")
            for attr in attrs:
                out[i] = float(getattr(dev, attr))
                i += 1
        return out

    def param_block(self, circuits) -> np.ndarray:
        """Stacked ``(K, P)`` parameter block for a list of candidates."""
        return np.stack([self.extract_params(c) for c in circuits])

    # -- assembly ------------------------------------------------------
    def _entry_values(self, params: np.ndarray, kinds, slots) -> np.ndarray:
        K = params.shape[0]
        vals = np.empty((K, len(kinds)))
        for j, (kind, slot) in enumerate(zip(kinds, slots)):
            if kind == _ID:
                vals[:, j] = params[:, slot]
            elif kind == _NEG:
                vals[:, j] = -params[:, slot]
            elif kind == _INV:
                vals[:, j] = 1.0 / params[:, slot]
            elif kind == _NEG_INV:
                vals[:, j] = -(1.0 / params[:, slot])
            elif kind == _ONE:
                vals[:, j] = 1.0
            else:
                vals[:, j] = -1.0
        return vals

    def assemble(self, params: np.ndarray
                 ) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        """Stacked ``(G, C, b_dc, b_ac)`` for a ``(K, P)`` parameter block.

        Each ``[k]`` slice is bitwise equal to
        ``MnaSystem(circuit_k, gmin).linear_stamps()``: the flattened
        ``np.add.at`` entry list is k-major / stamp-order-minor, and
        unbuffered ``add.at`` accumulates duplicates in exactly that
        order, so every slice repeats the scalar accumulation sequence.
        """
        params = np.asarray(params, dtype=float)
        if params.ndim != 2 or params.shape[1] != self.n_params:
            raise ValueError(
                f"assemble expects a (K, {self.n_params}) parameter "
                f"block, got shape {params.shape}")
        K, n = params.shape[0], self.size
        G = np.zeros((K, n, n))
        C = np.zeros((K, n, n))
        b_dc = np.zeros((K, n))
        b_ac = np.zeros((K, n), dtype=complex)
        for key, arr in (("G", G), ("C", C)):
            rows, cols, kinds, slots = self._mat[key]
            if rows.size:
                vals = self._entry_values(params, kinds, slots)
                k_idx = np.repeat(np.arange(K), rows.size)
                np.add.at(arr, (k_idx, np.tile(rows, K), np.tile(cols, K)),
                          vals.ravel())
        for key, arr in (("b_dc", b_dc), ("b_ac", b_ac)):
            rows, kinds, slots = self._vec[key]
            if rows.size:
                vals = self._entry_values(params, kinds, slots)
                k_idx = np.repeat(np.arange(K), rows.size)
                np.add.at(arr, (k_idx, np.tile(rows, K)), vals.ravel())
        # gmin shunt on every node diagonal, after all device stamps —
        # same ordering as MnaSystem.linear_stamps.
        diag = np.arange(self.n_nodes)
        G[:, diag, diag] += self.gmin
        _count("kernel.assemblies")
        return G, C, b_dc, b_ac

    def stamps_for(self, circuit: Circuit
                   ) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        """Scalar-shaped ``(G, C, b_dc, b_ac)`` of one candidate via the
        plan — the K=1 slice of :meth:`assemble`, used by the
        conformance tests against ``linear_stamps``."""
        G, C, b_dc, b_ac = self.assemble(self.extract_params(circuit)[None])
        return G[0], C[0], b_dc[0], b_ac[0]

    # -- packaging -----------------------------------------------------
    def package_op(self, x: np.ndarray) -> OperatingPoint:
        system = self.system
        voltages = {n: float(x[i]) for n, i in system.node_index.items()}
        currents = {name: float(x[k])
                    for name, k in system.branch_index.items()}
        # Linear circuits only — no MOS records; ``iterations`` counts
        # stacked solves (one), not scalar Newton steps.
        return OperatingPoint(voltages, currents, {}, 1, x=x)


# ----------------------------------------------------------------------
# Batched analyses
# ----------------------------------------------------------------------

def _require_linear(plan: StampPlan, what: str) -> None:
    if plan.nonlinear:
        raise BatchTopologyError(
            f"{what} needs per-member Newton for nonlinear devices; "
            f"use run_batch for automatic scalar fallback")


def _solve_stack(A: np.ndarray, b: np.ndarray) -> np.ndarray:
    x = solve_dense_batched(A, b)
    _count("kernel.batched_solves")
    return x


def batched_dc(circuits, gmin: float = GMIN_DEFAULT,
               plan: StampPlan | None = None) -> list[OperatingPoint]:
    """Stacked DC solve for K linear same-topology circuits.

    Linear DC is one direct solve per member (the scalar damped-Newton
    ramp converges onto exactly this solution), so the whole batch is a
    single LAPACK call.  Nonlinear topologies raise
    :class:`BatchTopologyError` — :func:`run_batch` catches that and runs
    the scalar path per member.
    """
    circuits = list(circuits)
    if plan is None:
        plan = StampPlan(circuits[0], gmin=gmin)
    _require_linear(plan, "batched_dc")
    G, _, b_dc, _ = plan.assemble(plan.param_block(circuits))
    X = _solve_stack(G, b_dc)
    return [plan.package_op(X[k]) for k in range(len(circuits))]


def _stacked_linearization(circuits, ops, plan: StampPlan | None):
    """(G, C, b_ac, system) stacks: plan-assembled for linear topologies,
    per-member :func:`small_signal_system` (bitwise equal to the scalar
    AC path's matrices) when MOS/diode linearization is needed."""
    circuits = list(circuits)
    if plan is None:
        plan = StampPlan(circuits[0])
    if not plan.nonlinear and ops is None:
        G, C, _, b_ac = plan.assemble(plan.param_block(circuits))
        return G, C, b_ac, plan.system
    if ops is None:
        ops = [None] * len(circuits)
    sss = [small_signal_system(c, op) for c, op in zip(circuits, ops)]
    G = np.stack([ss.G for ss in sss])
    C = np.stack([ss.C for ss in sss])
    b_ac = np.stack([ss.b_ac for ss in sss])
    return G, C, b_ac, sss[0].system


def batched_ac(circuits, freqs, ops=None,
               plan: StampPlan | None = None) -> list[AcResult]:
    """Stacked AC sweep: one ``(K, n, n)`` solve per frequency.

    ``ops`` (optional, one per member) supplies precomputed operating
    points for nonlinear circuits; without it each member solves its own
    scalar DC first — the batching win is the sweep itself, which costs
    ``len(freqs)`` LAPACK calls total instead of K·len(freqs).
    """
    circuits = list(circuits)
    freqs = np.asarray(freqs, dtype=float)
    G, C, b_ac, system = _stacked_linearization(circuits, ops, plan)
    K, n_nodes = len(circuits), len(system.node_names)
    data = np.empty((K, len(freqs), n_nodes), dtype=complex)
    for j, f in enumerate(freqs):
        A = G + (2j * math.pi * float(f)) * C
        X = _solve_stack(A, b_ac)
        data[:, j, :] = X[:, :n_nodes]
    return [
        AcResult(freqs, {net: data[k, :, i]
                         for net, i in system.node_index.items()})
        for k in range(K)
    ]


def batched_noise(circuits, out: str, freqs, ops=None,
                  plan: StampPlan | None = None) -> list[NoiseResult]:
    """Stacked noise sweep: one adjoint + one gain stack solve per
    frequency, mirroring the scalar adjoint-transfer trick
    (:mod:`repro.analysis.noise`) across the batch axis."""
    circuits = list(circuits)
    freqs = np.asarray(freqs, dtype=float)
    if plan is None:
        plan = StampPlan(circuits[0])
    if not plan.nonlinear and ops is None:
        G, C, _, b_ac = plan.assemble(plan.param_block(circuits))
        system = plan.system
        # Linear topology: the only noisy elements are resistors, whose
        # injections depend on values alone — no DC solve needed.
        member_injections = []
        for circuit in circuits:
            injections = {}
            for dev in _flat(circuit).devices:
                if isinstance(dev, Resistor):
                    a, b = system.node(dev.nodes[0]), system.node(dev.nodes[1])
                    injections[(dev.name, "thermal")] = (
                        a, b, _const_psd(FOUR_KT / dev.value))
            member_injections.append(injections)
    else:
        if ops is None:
            ops = [None] * len(circuits)
        sss = [small_signal_system(c, op) for c, op in zip(circuits, ops)]
        G = np.stack([ss.G for ss in sss])
        C = np.stack([ss.C for ss in sss])
        b_ac = np.stack([ss.b_ac for ss in sss])
        system = sss[0].system
        member_injections = [_noise_injections(ss) for ss in sss]

    iout = system.node(out)
    if iout < 0:
        raise ValueError("noise output cannot be the ground net")
    K = len(circuits)
    psd_per = [{key: np.zeros(len(freqs)) for key in inj}
               for inj in member_injections]
    gain = np.zeros((K, len(freqs)))
    has_input = [bool(np.any(np.abs(b_ac[k]) > 0)) for k in range(K)]
    any_input = any(has_input)

    e = np.zeros(system.size, dtype=complex)
    e[iout] = 1.0
    for j, f in enumerate(freqs):
        f = float(f)
        A = G + (2j * math.pi * f) * C
        AH = np.conj(np.transpose(A, (0, 2, 1)))
        Z = _solve_stack(AH, e)
        for k in range(K):
            zk = Z[k]
            for key, (a, b, psd_fn) in member_injections[k].items():
                za = zk[a] if a >= 0 else 0.0
                zb = zk[b] if b >= 0 else 0.0
                psd_per[k][key][j] = abs(np.conj(za - zb)) ** 2 * psd_fn(f)
        if any_input:
            X = _solve_stack(A, b_ac)
            gain[:, j] = np.abs(X[:, iout])

    results = []
    for k in range(K):
        contributions = [
            NoiseContribution(device=key[0], kind=key[1], psd=psd_per[k][key])
            for key in member_injections[k]
        ]
        total = (np.sum([c.psd for c in contributions], axis=0)
                 if contributions else np.zeros(len(freqs)))
        results.append(NoiseResult(
            freqs, total, contributions,
            gain=gain[k] if has_input[k] else None))
    return results


def batched_transient(circuits, t_stop: float, dt: float,
                      use_ic_op: bool = True,
                      plan: StampPlan | None = None) -> list[TransientResult]:
    """Stacked theta-method integration for K linear circuits.

    Mirrors the scalar integrator step for step: backward Euler first,
    trapezoidal after, same damped update loop — but every timestep is
    one stacked solve instead of K.  Per-member step halving is a
    nonlinear-convergence remedy the linear path never needs; a singular
    member raises :class:`BatchSingularError` and :func:`run_batch`
    replays the whole batch through the scalar integrator instead.
    """
    if t_stop <= 0 or dt <= 0:
        raise ValueError("t_stop and dt must be positive")
    circuits = list(circuits)
    if plan is None:
        plan = StampPlan(circuits[0])
    _require_linear(plan, "batched_transient")
    system = plan.system
    K, n = len(circuits), plan.size
    n_nodes = plan.n_nodes
    G, C, _, _ = plan.assemble(plan.param_block(circuits))
    member_sources = [
        [d for d in _flat(c).devices
         if isinstance(d, (VoltageSource, CurrentSource))]
        for c in circuits
    ]

    if use_ic_op:
        ic_circuits = [c.map_devices(_source_at_time_zero) for c in circuits]
        ic_ops = batched_dc(ic_circuits, plan=plan)
        X = np.stack([op.x for op in ic_ops])
    else:
        X = np.zeros((K, n))

    def rhs_stack(t: float) -> np.ndarray:
        B = np.zeros((K, n))
        for k, sources in enumerate(member_sources):
            bk = B[k]
            for dev in sources:
                value = dev.waveform.value_at(t, dev.dc)
                if isinstance(dev, VoltageSource):
                    bk[system.branch_index[dev.name]] += value
                else:
                    a = system.node(dev.nodes[0])
                    b = system.node(dev.nodes[1])
                    if a >= 0:
                        bk[a] -= value
                    if b >= 0:
                        bk[b] += value
        return B

    times = [0.0]
    states = [X.copy()]
    t = 0.0
    first_step = True
    while t < t_stop - 1e-15 * t_stop:
        h = min(dt, t_stop - t)
        B1 = rhs_stack(t + h)
        if first_step:
            const = B1 + _matvec(C, X) / h
            A = G + C / h
        else:
            B0 = rhs_stack(t)
            const = B1 + B0 - _matvec(G, X) + (2.0 / h) * _matvec(C, X)
            A = G + 2.0 * C / h
        X_target = _solve_stack(A, const)
        # Same damped update as the scalar Newton loop; for a linear
        # step the target never moves, so this converges in a handful
        # of vector ops.
        for _ in range(60):
            delta = X_target - X
            if n_nodes:
                max_dv = np.max(np.abs(delta[:, :n_nodes]), axis=1)
            else:
                max_dv = np.zeros(K)
            scale = np.where(max_dv > 1.0,
                             1.0 / np.maximum(max_dv, 1e-300), 1.0)
            delta = delta * scale[:, None]
            X = X + delta
            if all(_converged(delta[k], X[k], n_nodes) for k in range(K)):
                break
        else:
            raise ConvergenceError(
                f"batched transient step at t={t:.4g}s did not settle")
        t += h
        times.append(t)
        states.append(X.copy())
        first_step = False

    data = np.array(states)  # (T, K, n)
    tvec = np.array(times)
    results = []
    for k in range(K):
        voltages = {net: data[:, k, i]
                    for net, i in system.node_index.items()}
        currents = {name: data[:, k, i]
                    for name, i in system.branch_index.items()}
        results.append(TransientResult(tvec, voltages, currents))
    return results


def _matvec(A: np.ndarray, x: np.ndarray) -> np.ndarray:
    """Stacked matrix-vector product: (K, n, n) @ (K, n) → (K, n)."""
    return np.matmul(A, x[..., None])[..., 0]


# ----------------------------------------------------------------------
# Dispatch front door
# ----------------------------------------------------------------------

def run_batch(circuits, spec, plan: StampPlan | None = None) -> list:
    """Evaluate one analysis spec against K same-topology circuits.

    The batched mirror of :func:`repro.analysis.api.run`: returns one
    result per circuit, in order, with the same result types the scalar
    dispatcher produces.  Batches everything it can; everything it cannot
    runs through the scalar path per member, counted as
    ``kernel.fallback.<kind>`` on the active tracer:

    * a singleton batch always delegates to the scalar path
      (bit-identical results by construction);
    * nonlinear DC / transient need per-member Newton;
    * warm starts (``x0``) and shared ``op``/``ss`` objects are
      scalar-path concepts;
    * a singular member aborts the stacked solve
      (``kernel.batch_aborts``) and the whole batch replays through the
      scalar path so failure semantics — which member raises, and with
      what message — match the scalar loop exactly.
    """
    from repro.analysis import api

    circuits = list(circuits)
    if not circuits:
        return []
    if len(circuits) == 1:
        return [api.run(circuits[0], spec)]
    sig0 = topology_signature(circuits[0])
    for c in circuits[1:]:
        if topology_signature(c) != sig0:
            raise BatchTopologyError(
                "run_batch needs same-topology circuits; group candidates "
                "by topology_signature first")
    _count("kernel.run_batch")

    try:
        if isinstance(spec, api.DcSpec):
            if spec.x0 is not None:
                return _scalar_loop(circuits, spec, "warm start")
            return batched_dc(circuits, gmin=spec.gmin, plan=plan)
        if isinstance(spec, api.AcSpec):
            if spec.op is not None or spec.ss is not None:
                return _scalar_loop(circuits, spec, "shared op/ss")
            return batched_ac(circuits, spec.freqs, plan=plan)
        if isinstance(spec, api.TranSpec):
            if spec.x0 is not None:
                return _scalar_loop(circuits, spec, "warm start")
            return batched_transient(circuits, spec.t_stop, spec.dt,
                                     use_ic_op=spec.use_ic_op, plan=plan)
        if isinstance(spec, api.NoiseSpec):
            if spec.op is not None or spec.ss is not None:
                return _scalar_loop(circuits, spec, "shared op/ss")
            return batched_noise(circuits, spec.out, spec.freqs, plan=plan)
    except BatchTopologyError:
        return _scalar_loop(circuits, spec, "nonlinear topology")
    except BatchSingularError:
        _count("kernel.batch_aborts")
        return _scalar_loop(circuits, spec, "singular member")
    raise TypeError(f"not an analysis spec: {spec!r}")


def _scalar_loop(circuits, spec, reason: str) -> list:
    from repro.analysis import api
    _count(f"kernel.fallback.{spec.kind}", len(circuits))
    return [api.run(c, spec) for c in circuits]


__all__ = [
    "BatchTopologyError",
    "StampPlan",
    "batched_ac",
    "batched_dc",
    "batched_noise",
    "batched_transient",
    "run_batch",
    "topology_signature",
]
