"""Moment computation for Asymptotic Waveform Evaluation (AWE).

Given the linear(ized) system ``(G + sC)x(s) = b`` the transfer function at
an output node expands as ``H(s) = m0 + m1·s + m2·s² + ...`` with

    G·x0 = b,      G·x_{k+1} = -C·x_k,      m_k = x_k[out].

One LU factorization of ``G`` serves every moment — the property that made
AWE fast enough for the ASTRX/OBLX inner loop and the RAIL power-grid
evaluator [Pillage & Rohrer 1990].
"""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp

from repro.analysis.mna import SingularCircuitError
from repro.analysis.solver import factorize


class MomentEngine:
    """Factorizes G once and produces state moment vectors on demand.

    The factorization goes through the shared solver layer
    (:mod:`repro.analysis.solver`), which auto-selects dense LU for
    cell-level MNA and sparse LU for the thousands-of-nodes power grids
    RAIL evaluates; ``G`` and ``C`` may each be dense or scipy-sparse.
    """

    def __init__(self, G, C, b: np.ndarray):
        self.G = G if sp.issparse(G) else np.asarray(G, dtype=float)
        self.C = C if sp.issparse(C) else np.asarray(C, dtype=float)
        self.b = np.asarray(b, dtype=float)
        try:
            self._op = factorize(self.G)
        except (ValueError, SingularCircuitError) as exc:
            raise SingularCircuitError("G matrix is singular") from exc
        self._states: list[np.ndarray] = []

    def state(self, k: int) -> np.ndarray:
        """k-th moment state vector x_k (cached)."""
        while len(self._states) <= k:
            if not self._states:
                nxt = self._op.solve(self.b)
            else:
                nxt = self._op.solve(-(self.C @ self._states[-1]))
            if not np.all(np.isfinite(nxt)):
                raise SingularCircuitError("moment recursion diverged")
            self._states.append(nxt)
        return self._states[k]

    def moments(self, out_index: int, count: int) -> np.ndarray:
        """First ``count`` transfer-function moments m_0..m_{count-1}."""
        return np.array([self.state(k)[out_index] for k in range(count)])


def moments_from_system(G: np.ndarray, C: np.ndarray, b: np.ndarray,
                        out_index: int, count: int) -> np.ndarray:
    """Convenience wrapper: moments of one output in one call."""
    return MomentEngine(G, C, b).moments(out_index, count)
