"""Moment computation for Asymptotic Waveform Evaluation (AWE).

Given the linear(ized) system ``(G + sC)x(s) = b`` the transfer function at
an output node expands as ``H(s) = m0 + m1·s + m2·s² + ...`` with

    G·x0 = b,      G·x_{k+1} = -C·x_k,      m_k = x_k[out].

One LU factorization of ``G`` serves every moment — the property that made
AWE fast enough for the ASTRX/OBLX inner loop and the RAIL power-grid
evaluator [Pillage & Rohrer 1990].
"""

from __future__ import annotations

import numpy as np
import scipy.linalg as sla

from repro.analysis.mna import SingularCircuitError


class MomentEngine:
    """Factorizes G once and produces state moment vectors on demand."""

    def __init__(self, G: np.ndarray, C: np.ndarray, b: np.ndarray):
        self.G = np.asarray(G, dtype=float)
        self.C = np.asarray(C, dtype=float)
        self.b = np.asarray(b, dtype=float)
        try:
            self._lu = sla.lu_factor(self.G)
        except (ValueError, sla.LinAlgError) as exc:
            raise SingularCircuitError("G matrix is singular") from exc
        self._states: list[np.ndarray] = []

    def state(self, k: int) -> np.ndarray:
        """k-th moment state vector x_k (cached)."""
        while len(self._states) <= k:
            if not self._states:
                nxt = sla.lu_solve(self._lu, self.b)
            else:
                nxt = sla.lu_solve(self._lu, -self.C @ self._states[-1])
            if not np.all(np.isfinite(nxt)):
                raise SingularCircuitError("moment recursion diverged")
            self._states.append(nxt)
        return self._states[k]

    def moments(self, out_index: int, count: int) -> np.ndarray:
        """First ``count`` transfer-function moments m_0..m_{count-1}."""
        return np.array([self.state(k)[out_index] for k in range(count)])


def moments_from_system(G: np.ndarray, C: np.ndarray, b: np.ndarray,
                        out_index: int, count: int) -> np.ndarray:
    """Convenience wrapper: moments of one output in one call."""
    return MomentEngine(G, C, b).moments(out_index, count)
