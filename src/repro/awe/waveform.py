"""Waveform-level conveniences on top of AWE reduced-order models.

These are the quantities the tools in the tutorial actually consume:
ASTRX/OBLX wants bandwidth/pole estimates of the linearized amplifier,
RAIL wants supply-bounce peaks and settling under switching-current
excitation.
"""

from __future__ import annotations

import numpy as np

from repro.analysis.ac import SmallSignalSystem
from repro.awe.moments import MomentEngine
from repro.awe.pade import PadeError, ReducedOrderModel, pade_model


def reduce_circuit(ss: SmallSignalSystem, out: str,
                   order: int = 4) -> ReducedOrderModel:
    """AWE model of V(out)/input for a linearized circuit.

    Falls back to lower orders when the Hankel system degenerates (fewer
    physical poles than requested) — standard AWE practice.
    """
    out_index = ss.node(out)
    if out_index < 0:
        raise ValueError("output cannot be the ground net")
    engine = MomentEngine(ss.G, ss.C, np.real(ss.b_ac))
    for q in range(order, 0, -1):
        try:
            return pade_model(engine.moments(out_index, 2 * q), q)
        except PadeError:
            continue
    raise PadeError(f"no AWE model of any order <= {order} for {out!r}")


def bandwidth_estimate(model: ReducedOrderModel) -> float:
    """-3 dB bandwidth estimate in Hz from the dominant pole."""
    return abs(model.dominant_pole().real) / (2.0 * np.pi)


def delay_estimate(model: ReducedOrderModel,
                   threshold: float = 0.5) -> float:
    """Elmore-like delay: time for the step response to cross ``threshold``
    of its final value (bisection on the analytic step response)."""
    final = model.dc_value()
    if final == 0.0:
        return 0.0
    target = threshold * final
    tau = model.time_constant()
    lo, hi = 0.0, 50.0 * tau
    resp = model.step_response(np.array([hi]))[0]
    if (resp - target) * np.sign(final) < 0:
        return float("inf")
    for _ in range(80):
        mid = 0.5 * (lo + hi)
        val = model.step_response(np.array([mid]))[0]
        if (val - target) * np.sign(final) >= 0:
            hi = mid
        else:
            lo = mid
    return hi


def peak_response(model: ReducedOrderModel, t_max: float,
                  n_points: int = 2000) -> tuple[float, float]:
    """(time, value) of the maximum-magnitude step-response excursion."""
    t = np.linspace(0.0, t_max, n_points)
    y = model.step_response(t)
    k = int(np.argmax(np.abs(y)))
    return float(t[k]), float(y[k])
