"""Padé approximation of moment series: the heart of AWE.

From ``2q`` moments a ``q``-pole reduced-order model is produced:

    H(s) ≈ Σ_i k_i / (s - p_i)   (+ direct constant for proper systems)

The denominator follows from the classic Hankel system over moments, the
poles from its roots, and the residues from a Vandermonde solve against the
low-order moments.  Unstable right-half-plane poles — the well-known AWE
failure mode — are handled by dropping them and re-fitting residues, which
preserves moment matching of the dominant (stable) behaviour.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


class PadeError(ValueError):
    """Raised when a Padé model cannot be constructed from the moments."""


@dataclass
class ReducedOrderModel:
    """Pole/residue model H(s) = Σ k_i/(s − p_i)."""

    poles: np.ndarray      # complex, strictly stable if stabilized
    residues: np.ndarray   # complex, conjugate-paired with poles
    moments: np.ndarray    # the moments the model was fitted to

    @property
    def order(self) -> int:
        return len(self.poles)

    def transfer(self, s: complex) -> complex:
        return complex(np.sum(self.residues / (s - self.poles)))

    def frequency_response(self, freqs_hz: np.ndarray) -> np.ndarray:
        s = 2j * np.pi * np.asarray(freqs_hz, dtype=float)
        return np.array([self.transfer(sv) for sv in s])

    def dc_value(self) -> float:
        return float(np.real(np.sum(-self.residues / self.poles)))

    def impulse_response(self, t: np.ndarray) -> np.ndarray:
        t = np.asarray(t, dtype=float)
        out = np.zeros_like(t, dtype=complex)
        for p, k in zip(self.poles, self.residues):
            out += k * np.exp(p * t)
        return np.real(out)

    def step_response(self, t: np.ndarray) -> np.ndarray:
        """Response to a unit step input (assuming H maps input→output)."""
        t = np.asarray(t, dtype=float)
        out = np.zeros_like(t, dtype=complex)
        for p, k in zip(self.poles, self.residues):
            out += (k / p) * (np.exp(p * t) - 1.0)
        return np.real(out)

    def dominant_pole(self) -> complex:
        """The stable pole closest to the jω axis."""
        if self.order == 0:
            raise PadeError("empty model has no poles")
        return self.poles[np.argmin(np.abs(self.poles.real))]

    def time_constant(self) -> float:
        return float(1.0 / abs(self.dominant_pole().real))


def pade_model(moments: np.ndarray, order: int,
               stabilize: bool = True) -> ReducedOrderModel:
    """Fit a ``order``-pole model to the leading ``2·order`` moments."""
    moments = np.asarray(moments, dtype=float)
    if len(moments) < 2 * order:
        raise PadeError(
            f"need {2 * order} moments for order {order}, got {len(moments)}")
    if order < 1:
        raise PadeError("order must be >= 1")
    poles = _pade_poles(moments, order)
    if stabilize:
        stable = poles[poles.real < 0]
        if len(stable) == 0:
            raise PadeError("no stable poles found in Padé model")
        poles = stable
    residues = _fit_residues(moments, poles)
    return ReducedOrderModel(poles, residues, moments[:2 * order])


def _pade_poles(moments: np.ndarray, order: int) -> np.ndarray:
    """Solve the Hankel moment system for denominator coefficients."""
    q = order
    # Hankel matrix M a = -m_tail.
    M = np.empty((q, q))
    for i in range(q):
        M[i, :] = moments[i:i + q]
    rhs = -moments[q:2 * q]
    try:
        a = np.linalg.solve(M, rhs)
    except np.linalg.LinAlgError:
        # Degenerate (fewer true poles than requested): reduce the order.
        if q == 1:
            raise PadeError("Hankel system singular at order 1")
        return _pade_poles(moments, q - 1)
    # Denominator polynomial: a0 + a1 z + ... + a_{q-1} z^{q-1} + z^q,
    # whose roots are the *reciprocal* poles (z = 1/s expansion).
    coeffs = np.concatenate(([1.0], a[::-1]))  # descending in z
    recip = np.roots(coeffs)
    recip = recip[np.abs(recip) > 1e-30]
    if len(recip) == 0:
        raise PadeError("all Padé poles at infinity")
    return 1.0 / recip


def _fit_residues(moments: np.ndarray, poles: np.ndarray) -> np.ndarray:
    """Least-squares residue fit: m_k = -Σ_i k_i / p_i^{k+1}."""
    q = len(poles)
    n_eq = min(len(moments), 2 * q)
    V = np.empty((n_eq, q), dtype=complex)
    for k in range(n_eq):
        V[k, :] = -1.0 / poles ** (k + 1)
    residues, *_ = np.linalg.lstsq(V, moments[:n_eq].astype(complex),
                                   rcond=None)
    return residues
