"""Asymptotic Waveform Evaluation: moments, Padé models, waveforms."""

from repro.awe.moments import MomentEngine, moments_from_system
from repro.awe.pade import PadeError, ReducedOrderModel, pade_model
from repro.awe.waveform import (
    bandwidth_estimate,
    delay_estimate,
    peak_response,
    reduce_circuit,
)

__all__ = [
    "MomentEngine",
    "PadeError",
    "ReducedOrderModel",
    "bandwidth_estimate",
    "delay_estimate",
    "moments_from_system",
    "pade_model",
    "peak_response",
    "reduce_circuit",
]
